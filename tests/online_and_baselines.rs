//! Property tests for the online heuristic and the baseline stack:
//! feasibility on random sporadic sets, single-arrival equivalence with the
//! offline optimum, and the YDS ≤ OA / YDS ≤ AVR energy orderings.

use proptest::prelude::*;
use sdem::baselines::{avr, css, mbkp, oa, yds};
use sdem::core::{common_release, online};
use sdem::power::{CorePower, MemoryPower, Platform};
use sdem::sim::{simulate, SleepPolicy};
use sdem::types::{Cycles, Task, TaskSet, Time, Watts};

fn platform(alpha: f64, alpha_m: f64) -> Platform {
    Platform::new(
        CorePower::simple(alpha, 1.0, 3.0),
        MemoryPower::new(Watts::new(alpha_m)),
    )
}

fn sporadic_tasks(max_n: usize) -> impl Strategy<Value = TaskSet> {
    prop::collection::vec((0.0f64..6.0, 0.5f64..8.0, 0.1f64..4.0), 1..=max_n).prop_map(|specs| {
        let mut release = 0.0;
        TaskSet::new(
            specs
                .into_iter()
                .enumerate()
                .map(|(i, (gap, window, w))| {
                    release += gap;
                    Task::new(
                        i,
                        Time::from_secs(release),
                        Time::from_secs(release + window),
                        Cycles::new(w),
                    )
                })
                .collect(),
        )
        .expect("valid tasks")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn online_schedules_always_validate(
        tasks in sporadic_tasks(10),
        alpha in 0.0f64..5.0,
        alpha_m in 0.1f64..10.0,
    ) {
        let p = platform(alpha, alpha_m);
        let schedule = online::schedule_online(&tasks, &p).unwrap();
        schedule.validate(&tasks).unwrap();
    }

    #[test]
    fn online_equals_offline_for_common_release(
        specs in prop::collection::vec((1.0f64..20.0, 0.1f64..5.0), 1..8),
        alpha in 0.0f64..5.0,
        alpha_m in 0.5f64..10.0,
    ) {
        let tasks = TaskSet::new(
            specs.into_iter().enumerate()
                .map(|(i, (d, w))| Task::new(i, Time::ZERO, Time::from_secs(d), Cycles::new(w)))
                .collect(),
        ).unwrap();
        let p = platform(alpha, alpha_m);
        let schedule = online::schedule_online(&tasks, &p).unwrap();
        let online_e = simulate(&schedule, &tasks, &p, SleepPolicy::WhenProfitable)
            .unwrap().total().value();
        let offline = if alpha == 0.0 {
            common_release::schedule_alpha_zero(&tasks, &p).unwrap()
        } else {
            common_release::schedule_alpha_nonzero(&tasks, &p).unwrap()
        };
        let off_e = offline.predicted_energy().value();
        prop_assert!((online_e - off_e).abs() <= 1e-6 * off_e.max(1.0),
            "online {online_e} vs offline optimum {off_e}");
    }

    #[test]
    fn yds_is_never_beaten_by_oa_or_avr(tasks in sporadic_tasks(8)) {
        let p = platform(0.0, 0.0);
        let e = |sched: &sdem::types::Schedule| {
            simulate(sched, &tasks, &p, SleepPolicy::NeverSleep)
                .unwrap().core_dynamic.value()
        };
        let yds_e = e(&yds::schedule_single_core(&tasks, &p).unwrap());
        let oa_e = e(&oa::schedule_single_core_online(&tasks, &p).unwrap());
        let avr_e = e(&avr::schedule_single_core(&tasks, &p).unwrap());
        prop_assert!(yds_e <= oa_e * (1.0 + 1e-7), "YDS {yds_e} > OA {oa_e}");
        prop_assert!(yds_e <= avr_e * (1.0 + 1e-7), "YDS {yds_e} > AVR {avr_e}");
    }

    #[test]
    fn all_baseline_schedules_validate(tasks in sporadic_tasks(8)) {
        let p = platform(0.0, 1.0);
        yds::schedule_single_core(&tasks, &p).unwrap().validate(&tasks).unwrap();
        oa::schedule_single_core_online(&tasks, &p).unwrap().validate(&tasks).unwrap();
        avr::schedule_single_core(&tasks, &p).unwrap().validate(&tasks).unwrap();
        for cores in [1usize, 2, 4] {
            for policy in [mbkp::Assignment::RoundRobin, mbkp::Assignment::LeastLoaded] {
                let s = mbkp::schedule_online(&tasks, &p, cores, policy).unwrap();
                s.validate(&tasks).unwrap();
                prop_assert!(s.cores_used() <= cores);
            }
        }
    }

    #[test]
    fn css_never_loses_to_yds_system_wide_with_free_transitions(
        tasks in sporadic_tasks(8),
        alpha in 0.1f64..5.0,
        alpha_m in 0.1f64..10.0,
    ) {
        // With ξ = ξ_m = 0 every freed gap sleeps for free, so clamping to
        // the joint critical speed can only help (per-run convexity).
        let p = platform(alpha, alpha_m);
        let yds_sched = yds::schedule_single_core(&tasks, &p).unwrap();
        let css_sched = css::schedule_single_core_css(&tasks, &p).unwrap();
        css_sched.validate(&tasks).unwrap();
        let e = |s: &sdem::types::Schedule| {
            simulate(s, &tasks, &p, SleepPolicy::WhenProfitable)
                .unwrap().total().value()
        };
        prop_assert!(
            e(&css_sched) <= e(&yds_sched) * (1.0 + 1e-9),
            "CSS {} worse than YDS {}",
            e(&css_sched),
            e(&yds_sched)
        );
    }

    #[test]
    fn spreading_over_more_cores_never_raises_dynamic_energy(
        tasks in sporadic_tasks(8),
    ) {
        // With a convex power curve, splitting the same jobs over more
        // cores (same YDS policy per core) cannot increase dynamic energy.
        let p = platform(0.0, 0.0);
        let e = |cores: usize| {
            let s = mbkp::schedule_offline(&tasks, &p, cores, mbkp::Assignment::RoundRobin)
                .unwrap();
            simulate(&s, &tasks, &p, SleepPolicy::NeverSleep)
                .unwrap().core_dynamic.value()
        };
        let one = e(1);
        let many = e(4);
        prop_assert!(many <= one * (1.0 + 1e-7), "4 cores {many} > 1 core {one}");
    }
}
