//! Property tests for the online heuristic and the baseline stack:
//! feasibility on random sporadic sets, single-arrival equivalence with the
//! offline optimum, and the YDS ≤ OA / YDS ≤ AVR energy orderings. Each
//! property runs over a fixed number of seeded cases (deterministic,
//! offline).

use sdem::baselines::{avr, css, mbkp, oa, yds};
use sdem::core::{solve, Scheme, Solution};
use sdem::power::{CorePower, MemoryPower, Platform};
use sdem::prng::{ChaCha8Rng, Rng, SeedableRng};
use sdem::sim::{simulate, SleepPolicy};
use sdem::types::{Cycles, Task, TaskSet, Time, Watts};

const CASES: u64 = 48;

fn rng_for(property: u64, case: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(0x0B1B_0000 + property * 1000 + case)
}

fn platform(alpha: f64, alpha_m: f64) -> Platform {
    Platform::new(
        CorePower::simple(alpha, 1.0, 3.0),
        MemoryPower::new(Watts::new(alpha_m)),
    )
}

fn sporadic_tasks(rng: &mut ChaCha8Rng, max_n: usize) -> TaskSet {
    let n = rng.gen_range(1usize..=max_n);
    let mut release = 0.0;
    TaskSet::new(
        (0..n)
            .map(|i| {
                let gap = rng.gen_range(0.0f64..6.0);
                let window = rng.gen_range(0.5f64..8.0);
                let w = rng.gen_range(0.1f64..4.0);
                release += gap;
                Task::new(
                    i,
                    Time::from_secs(release),
                    Time::from_secs(release + window),
                    Cycles::new(w),
                )
            })
            .collect(),
    )
    .expect("valid tasks")
}

#[test]
fn online_schedules_always_validate() {
    for case in 0..CASES {
        let mut rng = rng_for(1, case);
        let tasks = sporadic_tasks(&mut rng, 10);
        let alpha = rng.gen_range(0.0f64..5.0);
        let alpha_m = rng.gen_range(0.1f64..10.0);
        let p = platform(alpha, alpha_m);
        let schedule = solve(&tasks, &p, Scheme::Online)
            .map(Solution::into_schedule)
            .unwrap();
        schedule.validate(&tasks).unwrap();
    }
}

#[test]
fn online_equals_offline_for_common_release() {
    for case in 0..CASES {
        let mut rng = rng_for(2, case);
        let n = rng.gen_range(1usize..8);
        let tasks = TaskSet::new(
            (0..n)
                .map(|i| {
                    let d = rng.gen_range(1.0f64..20.0);
                    let w = rng.gen_range(0.1f64..5.0);
                    Task::new(i, Time::ZERO, Time::from_secs(d), Cycles::new(w))
                })
                .collect(),
        )
        .unwrap();
        let alpha = if case % 8 == 0 {
            0.0
        } else {
            rng.gen_range(0.0f64..5.0)
        };
        let alpha_m = rng.gen_range(0.5f64..10.0);
        let p = platform(alpha, alpha_m);
        let schedule = solve(&tasks, &p, Scheme::Online)
            .map(Solution::into_schedule)
            .unwrap();
        let online_e = simulate(&schedule, &tasks, &p, SleepPolicy::WhenProfitable)
            .unwrap()
            .total()
            .value();
        let offline = if alpha == 0.0 {
            solve(&tasks, &p, Scheme::CommonReleaseAlphaZero).unwrap()
        } else {
            solve(&tasks, &p, Scheme::CommonReleaseAlphaNonzero).unwrap()
        };
        let off_e = offline.predicted_energy().value();
        assert!(
            (online_e - off_e).abs() <= 1e-6 * off_e.max(1.0),
            "online {online_e} vs offline optimum {off_e}"
        );
    }
}

#[test]
fn yds_is_never_beaten_by_oa_or_avr() {
    for case in 0..CASES {
        let mut rng = rng_for(3, case);
        let tasks = sporadic_tasks(&mut rng, 8);
        let p = platform(0.0, 0.0);
        let e = |sched: &sdem::types::Schedule| {
            simulate(sched, &tasks, &p, SleepPolicy::NeverSleep)
                .unwrap()
                .core_dynamic
                .value()
        };
        let yds_e = e(&yds::schedule_single_core(&tasks, &p).unwrap());
        let oa_e = e(&oa::schedule_single_core_online(&tasks, &p).unwrap());
        let avr_e = e(&avr::schedule_single_core(&tasks, &p).unwrap());
        assert!(yds_e <= oa_e * (1.0 + 1e-7), "YDS {yds_e} > OA {oa_e}");
        assert!(yds_e <= avr_e * (1.0 + 1e-7), "YDS {yds_e} > AVR {avr_e}");
    }
}

#[test]
fn all_baseline_schedules_validate() {
    for case in 0..CASES {
        let mut rng = rng_for(4, case);
        let tasks = sporadic_tasks(&mut rng, 8);
        let p = platform(0.0, 1.0);
        yds::schedule_single_core(&tasks, &p)
            .unwrap()
            .validate(&tasks)
            .unwrap();
        oa::schedule_single_core_online(&tasks, &p)
            .unwrap()
            .validate(&tasks)
            .unwrap();
        avr::schedule_single_core(&tasks, &p)
            .unwrap()
            .validate(&tasks)
            .unwrap();
        for cores in [1usize, 2, 4] {
            for policy in [mbkp::Assignment::RoundRobin, mbkp::Assignment::LeastLoaded] {
                let s = mbkp::schedule_online(&tasks, &p, cores, policy).unwrap();
                s.validate(&tasks).unwrap();
                assert!(s.cores_used() <= cores);
            }
        }
    }
}

#[test]
fn css_never_loses_to_yds_system_wide_with_free_transitions() {
    for case in 0..CASES {
        let mut rng = rng_for(5, case);
        let tasks = sporadic_tasks(&mut rng, 8);
        let alpha = rng.gen_range(0.1f64..5.0);
        let alpha_m = rng.gen_range(0.1f64..10.0);
        // With ξ = ξ_m = 0 every freed gap sleeps for free, so clamping to
        // the joint critical speed can only help (per-run convexity).
        let p = platform(alpha, alpha_m);
        let yds_sched = yds::schedule_single_core(&tasks, &p).unwrap();
        let css_sched = css::schedule_single_core_css(&tasks, &p).unwrap();
        css_sched.validate(&tasks).unwrap();
        let e = |s: &sdem::types::Schedule| {
            simulate(s, &tasks, &p, SleepPolicy::WhenProfitable)
                .unwrap()
                .total()
                .value()
        };
        assert!(
            e(&css_sched) <= e(&yds_sched) * (1.0 + 1e-9),
            "CSS {} worse than YDS {}",
            e(&css_sched),
            e(&yds_sched)
        );
    }
}

#[test]
fn spreading_over_more_cores_never_raises_dynamic_energy() {
    for case in 0..CASES {
        let mut rng = rng_for(6, case);
        let tasks = sporadic_tasks(&mut rng, 8);
        // With a convex power curve, splitting the same jobs over more
        // cores (same YDS policy per core) cannot increase dynamic energy.
        let p = platform(0.0, 0.0);
        let e = |cores: usize| {
            let s =
                mbkp::schedule_offline(&tasks, &p, cores, mbkp::Assignment::RoundRobin).unwrap();
            simulate(&s, &tasks, &p, SleepPolicy::NeverSleep)
                .unwrap()
                .core_dynamic
                .value()
        };
        let one = e(1);
        let many = e(4);
        assert!(many <= one * (1.0 + 1e-7), "4 cores {many} > 1 core {one}");
    }
}
