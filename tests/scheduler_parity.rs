//! The unified `Scheduler`/`Scheme` entry point must be a pure re-routing
//! layer: every variant's energy must match the underlying free function
//! to 1e-9 J, and `Scheme::Auto` must pick the same scheme the shape
//! analysis dictates.

// This suite's whole point is comparing the deprecated allocating
// wrappers against their replacements, so it keeps calling them.
#![allow(deprecated)]

use sdem::core::{agreeable, common_release, online, overhead, solve, Scheme};
use sdem::power::{CorePower, MemoryPower, Platform, PlatformBuilder};
use sdem::types::{Cycles, Task, TaskSet, Time, Watts};

fn assert_close(a: f64, b: f64, what: &str) {
    assert!((a - b).abs() <= 1e-9, "{what}: {a} vs {b}");
}

fn common_release_set() -> TaskSet {
    TaskSet::new(vec![
        Task::new(0, Time::ZERO, Time::from_millis(40.0), Cycles::new(8.0e6)),
        Task::new(1, Time::ZERO, Time::from_millis(70.0), Cycles::new(12.0e6)),
        Task::new(2, Time::ZERO, Time::from_millis(110.0), Cycles::new(20.0e6)),
    ])
    .unwrap()
}

fn agreeable_set() -> TaskSet {
    TaskSet::new(vec![
        Task::new(0, Time::ZERO, Time::from_millis(50.0), Cycles::new(6.0e6)),
        Task::new(
            1,
            Time::from_millis(20.0),
            Time::from_millis(90.0),
            Cycles::new(9.0e6),
        ),
        Task::new(
            2,
            Time::from_millis(60.0),
            Time::from_millis(150.0),
            Cycles::new(14.0e6),
        ),
    ])
    .unwrap()
}

fn general_set() -> TaskSet {
    // Neither common-release nor agreeable: the second task's window nests
    // inside the first's.
    TaskSet::new(vec![
        Task::new(0, Time::ZERO, Time::from_millis(120.0), Cycles::new(10.0e6)),
        Task::new(
            1,
            Time::from_millis(20.0),
            Time::from_millis(60.0),
            Cycles::new(6.0e6),
        ),
        Task::new(
            2,
            Time::from_millis(80.0),
            Time::from_millis(200.0),
            Cycles::new(12.0e6),
        ),
    ])
    .unwrap()
}

/// A zero-break-even platform so the non-overhead schemes apply.
fn free_transition_platform() -> Platform {
    Platform::new(
        CorePower::from_paper_units(310.0, 2.53e-7, 3.0, 700.0, 1900.0),
        MemoryPower::new(Watts::new(4.0)),
    )
}

#[test]
fn common_release_schemes_match_free_functions() {
    let tasks = common_release_set();
    let p = free_transition_platform();
    assert_close(
        solve(&tasks, &p, Scheme::CommonReleaseAlphaNonzero)
            .unwrap()
            .predicted_energy()
            .value(),
        common_release::schedule_alpha_nonzero(&tasks, &p)
            .unwrap()
            .predicted_energy()
            .value(),
        "§4.2 via Scheme",
    );

    let alpha_zero = Platform::new(
        CorePower::from_paper_units(0.0, 2.53e-7, 3.0, 700.0, 1900.0),
        MemoryPower::new(Watts::new(4.0)),
    );
    assert_close(
        solve(&tasks, &alpha_zero, Scheme::CommonReleaseAlphaZero)
            .unwrap()
            .predicted_energy()
            .value(),
        common_release::schedule_alpha_zero(&tasks, &alpha_zero)
            .unwrap()
            .predicted_energy()
            .value(),
        "§4.1 via Scheme",
    );

    let overhead_p = PlatformBuilder::new()
        .core_break_even(Time::from_millis(2.0))
        .memory_break_even(Time::from_millis(40.0))
        .build()
        .unwrap();
    assert_close(
        solve(&tasks, &overhead_p, Scheme::CommonReleaseOverhead)
            .unwrap()
            .predicted_energy()
            .value(),
        overhead::schedule_common_release(&tasks, &overhead_p)
            .unwrap()
            .predicted_energy()
            .value(),
        "§7 via Scheme",
    );
    // Auto on a common-release set with positive break-evens routes to §7.
    assert_close(
        solve(&tasks, &overhead_p, Scheme::Auto)
            .unwrap()
            .predicted_energy()
            .value(),
        overhead::schedule_common_release(&tasks, &overhead_p)
            .unwrap()
            .predicted_energy()
            .value(),
        "Auto → §7",
    );
}

#[test]
fn agreeable_schemes_match_free_functions() {
    let tasks = agreeable_set();
    let p = free_transition_platform();
    assert_close(
        solve(&tasks, &p, Scheme::Agreeable)
            .unwrap()
            .predicted_energy()
            .value(),
        agreeable::schedule(&tasks, &p)
            .unwrap()
            .predicted_energy()
            .value(),
        "§5 DP via Scheme",
    );
    assert_close(
        solve(&tasks, &p, Scheme::AgreeableStrict)
            .unwrap()
            .predicted_energy()
            .value(),
        agreeable::schedule_strict(&tasks, &p)
            .unwrap()
            .predicted_energy()
            .value(),
        "strict DP via Scheme",
    );
    assert_close(
        solve(&tasks, &p, Scheme::Auto)
            .unwrap()
            .predicted_energy()
            .value(),
        agreeable::schedule(&tasks, &p)
            .unwrap()
            .predicted_energy()
            .value(),
        "Auto → §5 DP",
    );
}

#[test]
fn online_scheme_matches_free_function() {
    let tasks = general_set();
    let p = free_transition_platform();
    let via_scheme = solve(&tasks, &p, Scheme::Online).unwrap();
    let free = online::schedule_online(&tasks, &p).unwrap();
    // The free function returns a bare schedule; the Scheme wraps it with
    // the analytic meter, so compare schedule shape plus metered energy.
    assert_eq!(
        via_scheme.schedule().placements().len(),
        free.placements().len()
    );
    let auto = solve(&tasks, &p, Scheme::Auto).unwrap();
    assert_close(
        auto.predicted_energy().value(),
        via_scheme.predicted_energy().value(),
        "Auto → SDEM-ON on a general set",
    );
}
