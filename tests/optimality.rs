//! Property tests for the optimality claims of the offline schemes:
//! the §4 case analyses against an independent grid oracle, the three
//! §4.1 drivers against each other, and the §5 DP against brute-force
//! partition enumeration.

use proptest::prelude::*;
use sdem::core::{agreeable, common_release};
use sdem::power::{CorePower, MemoryPower, Platform};
use sdem::types::{Cycles, Task, TaskSet, Time, Watts};

/// A dimensionless platform: β = 1, λ = 3.
fn platform(alpha: f64, alpha_m: f64) -> Platform {
    Platform::new(
        CorePower::simple(alpha, 1.0, 3.0),
        MemoryPower::new(Watts::new(alpha_m)),
    )
}

/// Strategy: 1–10 tasks with deadlines in [1, 20] s, work in [0.1, 5].
fn common_release_tasks() -> impl Strategy<Value = TaskSet> {
    prop::collection::vec((1.0f64..20.0, 0.1f64..5.0), 1..10).prop_map(|specs| {
        TaskSet::new(
            specs
                .into_iter()
                .enumerate()
                .map(|(i, (d, w))| Task::new(i, Time::ZERO, Time::from_secs(d), Cycles::new(w)))
                .collect(),
        )
        .expect("valid tasks")
    })
}

/// Strategy: agreeable sets — sorted releases, non-decreasing deadlines.
fn agreeable_tasks(max_n: usize) -> impl Strategy<Value = TaskSet> {
    prop::collection::vec((0.0f64..10.0, 0.5f64..8.0, 0.1f64..4.0), 1..=max_n).prop_map(|specs| {
        let mut release = 0.0;
        let mut deadline = 0.0f64;
        TaskSet::new(
            specs
                .into_iter()
                .enumerate()
                .map(|(i, (gap, window, w))| {
                    release += gap;
                    deadline = (release + window).max(deadline + 1e-6);
                    Task::new(
                        i,
                        Time::from_secs(release),
                        Time::from_secs(deadline),
                        Cycles::new(w),
                    )
                })
                .collect(),
        )
        .expect("valid tasks")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn alpha_zero_drivers_agree(tasks in common_release_tasks(), alpha_m in 0.1f64..20.0) {
        let p = platform(0.0, alpha_m);
        let a = common_release::schedule_alpha_zero(&tasks, &p).unwrap();
        let b = common_release::schedule_alpha_zero_scan(&tasks, &p).unwrap();
        let c = common_release::schedule_alpha_zero_binary_search(&tasks, &p).unwrap();
        let e = a.predicted_energy().value();
        prop_assert!((b.predicted_energy().value() - e).abs() <= 1e-7 * e.max(1.0),
            "scan {} vs exhaustive {}", b.predicted_energy().value(), e);
        prop_assert!((c.predicted_energy().value() - e).abs() <= 1e-7 * e.max(1.0),
            "binary search {} vs exhaustive {}", c.predicted_energy().value(), e);
        a.schedule().validate(&tasks).unwrap();
    }

    #[test]
    fn alpha_zero_beats_grid_oracle(tasks in common_release_tasks(), alpha_m in 0.1f64..20.0) {
        let p = platform(0.0, alpha_m);
        let scheme = common_release::schedule_alpha_zero(&tasks, &p).unwrap();
        let oracle = common_release::reference_optimum(&tasks, &p, 3000).unwrap().value();
        let e = scheme.predicted_energy().value();
        prop_assert!(e <= oracle * (1.0 + 1e-9), "scheme {e} worse than oracle {oracle}");
        prop_assert!(e >= oracle * (1.0 - 1e-2), "scheme {e} far below continuum oracle {oracle}");
    }

    #[test]
    fn alpha_nonzero_beats_grid_oracle(
        tasks in common_release_tasks(),
        alpha in 0.1f64..10.0,
        alpha_m in 0.0f64..20.0,
    ) {
        let p = platform(alpha, alpha_m);
        let scheme = common_release::schedule_alpha_nonzero(&tasks, &p).unwrap();
        let oracle = common_release::reference_optimum(&tasks, &p, 3000).unwrap().value();
        let e = scheme.predicted_energy().value();
        prop_assert!(e <= oracle * (1.0 + 1e-9), "scheme {e} worse than oracle {oracle}");
        prop_assert!(e >= oracle * (1.0 - 1e-2), "scheme {e} far below continuum oracle {oracle}");
        scheme.schedule().validate(&tasks).unwrap();
    }

    #[test]
    fn agreeable_dp_matches_bruteforce_partitions(
        tasks in agreeable_tasks(5),
        alpha in 0.0f64..6.0,
        alpha_m in 0.2f64..10.0,
    ) {
        let p = platform(alpha, alpha_m);
        let dp = agreeable::schedule(&tasks, &p).unwrap();

        // Brute force: every contiguous partition of the deadline order.
        let sorted = tasks.sorted_by_deadline();
        let n = sorted.len();
        let mut best = f64::INFINITY;
        for mask in 0u32..(1 << (n - 1)) {
            let mut cuts = vec![0usize];
            for b in 0..n - 1 {
                if mask & (1 << b) != 0 {
                    cuts.push(b + 1);
                }
            }
            cuts.push(n);
            let mut total = 0.0;
            for w in cuts.windows(2) {
                let subset = TaskSet::new(sorted[w[0]..w[1]].to_vec()).unwrap();
                total += agreeable::solve_single_block(
                    &subset,
                    &p,
                    agreeable::BlockSolverKind::BestResponse,
                )
                .unwrap()
                .value();
            }
            best = best.min(total);
        }
        let e = dp.predicted_energy().value();
        prop_assert!((e - best).abs() <= 1e-6 * best.max(1.0),
            "DP {e} vs brute-force partitions {best}");
        dp.schedule().validate(&tasks).unwrap();
    }

    #[test]
    fn block_solvers_agree(
        tasks in agreeable_tasks(4),
        alpha in 0.0f64..6.0,
        alpha_m in 0.2f64..10.0,
    ) {
        let p = platform(alpha, alpha_m);
        let br = agreeable::solve_single_block(&tasks, &p, agreeable::BlockSolverKind::BestResponse)
            .unwrap()
            .value();
        let it = agreeable::solve_single_block(&tasks, &p, agreeable::BlockSolverKind::PaperIterative)
            .unwrap()
            .value();
        prop_assert!((br - it).abs() <= 1e-4 * br.max(1.0),
            "best-response {br} vs Algorithm 1 {it}");
        // Both must beat (or match) a moderately dense oracle.
        let oracle = agreeable::single_block_oracle(&tasks, &p, 150).unwrap().value();
        prop_assert!(br <= oracle * (1.0 + 1e-6), "best-response {br} worse than oracle {oracle}");
    }

    #[test]
    fn strict_dp_is_disjoint_and_never_under_reports(
        tasks in agreeable_tasks(6),
        alpha in 0.0f64..6.0,
        alpha_m in 0.2f64..10.0,
    ) {
        let p = platform(alpha, alpha_m);
        let strict = agreeable::schedule_strict(&tasks, &p).unwrap();
        strict.schedule().validate(&tasks).unwrap();
        let plain = agreeable::schedule(&tasks, &p).unwrap();
        // Strict can only merge blocks ⇒ never cheaper than the plain DP's
        // optimistic value.
        prop_assert!(
            strict.predicted_energy().value() >= plain.predicted_energy().value() * (1.0 - 1e-9),
            "strict {} below plain {}",
            strict.predicted_energy().value(),
            plain.predicted_energy().value()
        );
        // And its prediction is an upper bound on the simulated energy.
        let sim = sdem::sim::simulate(
            strict.schedule(), &tasks, &p, sdem::sim::SleepPolicy::WhenProfitable,
        ).unwrap().total().value();
        prop_assert!(
            sim <= strict.predicted_energy().value() * (1.0 + 1e-9),
            "strict under-reports: sim {sim} vs {}",
            strict.predicted_energy().value()
        );
    }

    #[test]
    fn lemma3_closed_forms_match_generic_solver(
        tasks in agreeable_tasks(5),
        alpha_m in 0.2f64..12.0,
    ) {
        let p = platform(0.0, alpha_m);
        let lemma3 = agreeable::solve_single_block_lemma3(&tasks, &p)
            .unwrap()
            .value();
        let generic = agreeable::solve_single_block(
            &tasks, &p, agreeable::BlockSolverKind::BestResponse,
        ).unwrap().value();
        prop_assert!(
            (lemma3 - generic).abs() <= 1e-5 * generic.max(1.0),
            "Lemma 3 {lemma3} vs generic {generic}"
        );
    }

    #[test]
    fn agreeable_dp_on_common_release_matches_section4(
        tasks in common_release_tasks(),
        alpha_m in 0.5f64..10.0,
    ) {
        let p = platform(0.0, alpha_m);
        let dp = agreeable::schedule(&tasks, &p).unwrap();
        let cr = common_release::schedule_alpha_zero(&tasks, &p).unwrap();
        let (a, b) = (dp.predicted_energy().value(), cr.predicted_energy().value());
        prop_assert!((a - b).abs() <= 1e-5 * b.max(1.0), "agreeable {a} vs §4.1 {b}");
    }
}
