//! Property tests for the optimality claims of the offline schemes:
//! the §4 case analyses against an independent grid oracle, the three
//! §4.1 drivers against each other, and the §5 DP against brute-force
//! partition enumeration. Each property runs over a fixed number of
//! seeded cases (deterministic, offline — no external framework).

use sdem::core::{agreeable, common_release, solve, Scheme};
use sdem::power::{CorePower, MemoryPower, Platform};
use sdem::prng::{ChaCha8Rng, Rng, SeedableRng};
use sdem::types::{Cycles, Task, TaskSet, Time, Watts};

const CASES: u64 = 48;

fn rng_for(property: u64, case: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(0x0971_0000 + property * 1000 + case)
}

/// A dimensionless platform: β = 1, λ = 3.
fn platform(alpha: f64, alpha_m: f64) -> Platform {
    Platform::new(
        CorePower::simple(alpha, 1.0, 3.0),
        MemoryPower::new(Watts::new(alpha_m)),
    )
}

/// 1–10 common-release tasks with deadlines in [1, 20] s, work in [0.1, 5].
fn common_release_tasks(rng: &mut ChaCha8Rng) -> TaskSet {
    let n = rng.gen_range(1usize..10);
    TaskSet::new(
        (0..n)
            .map(|i| {
                let d = rng.gen_range(1.0f64..20.0);
                let w = rng.gen_range(0.1f64..5.0);
                Task::new(i, Time::ZERO, Time::from_secs(d), Cycles::new(w))
            })
            .collect(),
    )
    .expect("valid tasks")
}

/// Agreeable sets — sorted releases, non-decreasing deadlines.
fn agreeable_tasks(rng: &mut ChaCha8Rng, max_n: usize) -> TaskSet {
    let n = rng.gen_range(1usize..=max_n);
    let mut release = 0.0;
    let mut deadline = 0.0f64;
    TaskSet::new(
        (0..n)
            .map(|i| {
                let gap = rng.gen_range(0.0f64..10.0);
                let window = rng.gen_range(0.5f64..8.0);
                let w = rng.gen_range(0.1f64..4.0);
                release += gap;
                deadline = (release + window).max(deadline + 1e-6);
                Task::new(
                    i,
                    Time::from_secs(release),
                    Time::from_secs(deadline),
                    Cycles::new(w),
                )
            })
            .collect(),
    )
    .expect("valid tasks")
}

#[test]
fn alpha_zero_drivers_agree() {
    for case in 0..CASES {
        let mut rng = rng_for(1, case);
        let tasks = common_release_tasks(&mut rng);
        let alpha_m = rng.gen_range(0.1f64..20.0);
        let p = platform(0.0, alpha_m);
        let a = solve(&tasks, &p, Scheme::CommonReleaseAlphaZero).unwrap();
        let b = common_release::schedule_alpha_zero_scan(&tasks, &p).unwrap();
        let c = common_release::schedule_alpha_zero_binary_search(&tasks, &p).unwrap();
        let e = a.predicted_energy().value();
        assert!(
            (b.predicted_energy().value() - e).abs() <= 1e-7 * e.max(1.0),
            "scan {} vs exhaustive {}",
            b.predicted_energy().value(),
            e
        );
        assert!(
            (c.predicted_energy().value() - e).abs() <= 1e-7 * e.max(1.0),
            "binary search {} vs exhaustive {}",
            c.predicted_energy().value(),
            e
        );
        a.schedule().validate(&tasks).unwrap();
    }
}

#[test]
fn alpha_zero_beats_grid_oracle() {
    for case in 0..CASES {
        let mut rng = rng_for(2, case);
        let tasks = common_release_tasks(&mut rng);
        let alpha_m = rng.gen_range(0.1f64..20.0);
        let p = platform(0.0, alpha_m);
        let scheme = solve(&tasks, &p, Scheme::CommonReleaseAlphaZero).unwrap();
        let oracle = common_release::reference_optimum(&tasks, &p, 3000)
            .unwrap()
            .value();
        let e = scheme.predicted_energy().value();
        assert!(
            e <= oracle * (1.0 + 1e-9),
            "scheme {e} worse than oracle {oracle}"
        );
        assert!(
            e >= oracle * (1.0 - 1e-2),
            "scheme {e} far below continuum oracle {oracle}"
        );
    }
}

#[test]
fn alpha_nonzero_beats_grid_oracle() {
    for case in 0..CASES {
        let mut rng = rng_for(3, case);
        let tasks = common_release_tasks(&mut rng);
        let alpha = rng.gen_range(0.1f64..10.0);
        let alpha_m = rng.gen_range(0.0f64..20.0);
        let p = platform(alpha, alpha_m);
        let scheme = solve(&tasks, &p, Scheme::CommonReleaseAlphaNonzero).unwrap();
        let oracle = common_release::reference_optimum(&tasks, &p, 3000)
            .unwrap()
            .value();
        let e = scheme.predicted_energy().value();
        assert!(
            e <= oracle * (1.0 + 1e-9),
            "scheme {e} worse than oracle {oracle}"
        );
        assert!(
            e >= oracle * (1.0 - 1e-2),
            "scheme {e} far below continuum oracle {oracle}"
        );
        scheme.schedule().validate(&tasks).unwrap();
    }
}

#[test]
fn agreeable_dp_matches_bruteforce_partitions() {
    for case in 0..CASES {
        let mut rng = rng_for(4, case);
        let tasks = agreeable_tasks(&mut rng, 5);
        let alpha = rng.gen_range(0.0f64..6.0);
        let alpha_m = rng.gen_range(0.2f64..10.0);
        let p = platform(alpha, alpha_m);
        let dp = solve(&tasks, &p, Scheme::Agreeable).unwrap();

        // Brute force: every contiguous partition of the deadline order.
        let sorted = tasks.sorted_by_deadline();
        let n = sorted.len();
        let mut best = f64::INFINITY;
        for mask in 0u32..(1 << (n - 1)) {
            let mut cuts = vec![0usize];
            for b in 0..n - 1 {
                if mask & (1 << b) != 0 {
                    cuts.push(b + 1);
                }
            }
            cuts.push(n);
            let mut total = 0.0;
            for w in cuts.windows(2) {
                let subset = TaskSet::new(sorted[w[0]..w[1]].to_vec()).unwrap();
                total += agreeable::solve_single_block(
                    &subset,
                    &p,
                    agreeable::BlockSolverKind::BestResponse,
                )
                .unwrap()
                .value();
            }
            best = best.min(total);
        }
        let e = dp.predicted_energy().value();
        assert!(
            (e - best).abs() <= 1e-6 * best.max(1.0),
            "DP {e} vs brute-force partitions {best}"
        );
        dp.schedule().validate(&tasks).unwrap();
    }
}

#[test]
fn block_solvers_agree() {
    for case in 0..CASES {
        let mut rng = rng_for(5, case);
        let tasks = agreeable_tasks(&mut rng, 4);
        let alpha = rng.gen_range(0.0f64..6.0);
        let alpha_m = rng.gen_range(0.2f64..10.0);
        let p = platform(alpha, alpha_m);
        let br =
            agreeable::solve_single_block(&tasks, &p, agreeable::BlockSolverKind::BestResponse)
                .unwrap()
                .value();
        let it =
            agreeable::solve_single_block(&tasks, &p, agreeable::BlockSolverKind::PaperIterative)
                .unwrap()
                .value();
        assert!(
            (br - it).abs() <= 1e-4 * br.max(1.0),
            "best-response {br} vs Algorithm 1 {it}"
        );
        // Both must beat (or match) a moderately dense oracle.
        let oracle = agreeable::single_block_oracle(&tasks, &p, 150)
            .unwrap()
            .value();
        assert!(
            br <= oracle * (1.0 + 1e-6),
            "best-response {br} worse than oracle {oracle}"
        );
    }
}

#[test]
fn strict_dp_is_disjoint_and_never_under_reports() {
    for case in 0..CASES {
        let mut rng = rng_for(6, case);
        let tasks = agreeable_tasks(&mut rng, 6);
        let alpha = rng.gen_range(0.0f64..6.0);
        let alpha_m = rng.gen_range(0.2f64..10.0);
        let p = platform(alpha, alpha_m);
        let strict = solve(&tasks, &p, Scheme::AgreeableStrict).unwrap();
        strict.schedule().validate(&tasks).unwrap();
        let plain = solve(&tasks, &p, Scheme::Agreeable).unwrap();
        // Strict can only merge blocks ⇒ never cheaper than the plain DP's
        // optimistic value.
        assert!(
            strict.predicted_energy().value() >= plain.predicted_energy().value() * (1.0 - 1e-9),
            "strict {} below plain {}",
            strict.predicted_energy().value(),
            plain.predicted_energy().value()
        );
        // And its prediction is an upper bound on the simulated energy.
        let sim = sdem::sim::simulate(
            strict.schedule(),
            &tasks,
            &p,
            sdem::sim::SleepPolicy::WhenProfitable,
        )
        .unwrap()
        .total()
        .value();
        assert!(
            sim <= strict.predicted_energy().value() * (1.0 + 1e-9),
            "strict under-reports: sim {sim} vs {}",
            strict.predicted_energy().value()
        );
    }
}

#[test]
fn lemma3_closed_forms_match_generic_solver() {
    for case in 0..CASES {
        let mut rng = rng_for(7, case);
        let tasks = agreeable_tasks(&mut rng, 5);
        let alpha_m = rng.gen_range(0.2f64..12.0);
        let p = platform(0.0, alpha_m);
        let lemma3 = agreeable::solve_single_block_lemma3(&tasks, &p)
            .unwrap()
            .value();
        let generic =
            agreeable::solve_single_block(&tasks, &p, agreeable::BlockSolverKind::BestResponse)
                .unwrap()
                .value();
        assert!(
            (lemma3 - generic).abs() <= 1e-5 * generic.max(1.0),
            "Lemma 3 {lemma3} vs generic {generic}"
        );
    }
}

#[test]
fn agreeable_dp_on_common_release_matches_section4() {
    for case in 0..CASES {
        let mut rng = rng_for(8, case);
        let tasks = common_release_tasks(&mut rng);
        let alpha_m = rng.gen_range(0.5f64..10.0);
        let p = platform(0.0, alpha_m);
        let dp = solve(&tasks, &p, Scheme::Agreeable).unwrap();
        let cr = solve(&tasks, &p, Scheme::CommonReleaseAlphaZero).unwrap();
        let (a, b) = (dp.predicted_energy().value(), cr.predicted_energy().value());
        assert!(
            (a - b).abs() <= 1e-5 * b.max(1.0),
            "agreeable {a} vs §4.1 {b}"
        );
    }
}
