//! Property tests for the simulator: the interval meter and the
//! event-driven engine must agree on every schedule and policy, and the
//! analytic energies of the offline schemes must match the metered values.
//! Each property runs over a fixed number of seeded cases (deterministic,
//! offline).

use sdem::core::{solve, Scheme, Solution};
use sdem::power::{CorePower, MemoryPower, Platform};
use sdem::prng::{ChaCha8Rng, Rng, SeedableRng};
use sdem::sim::{simulate_event_driven, simulate_with_options, SimOptions, SleepPolicy};
use sdem::types::{Cycles, Task, TaskSet, Time, Watts};

const CASES: u64 = 48;

fn rng_for(property: u64, case: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(0x51AA_0000 + property * 1000 + case)
}

fn platform(alpha: f64, alpha_m: f64, xi: f64, xi_m: f64) -> Platform {
    Platform::new(
        CorePower::simple(alpha, 1.0, 3.0).with_break_even(Time::from_secs(xi)),
        MemoryPower::new(Watts::new(alpha_m)).with_break_even(Time::from_secs(xi_m)),
    )
}

fn sporadic_tasks(rng: &mut ChaCha8Rng) -> TaskSet {
    let n = rng.gen_range(1usize..8);
    let mut release = 0.0;
    TaskSet::new(
        (0..n)
            .map(|i| {
                let gap = rng.gen_range(0.0f64..6.0);
                let window = rng.gen_range(0.5f64..8.0);
                let w = rng.gen_range(0.1f64..4.0);
                release += gap;
                Task::new(
                    i,
                    Time::from_secs(release),
                    Time::from_secs(release + window),
                    Cycles::new(w),
                )
            })
            .collect(),
    )
    .expect("valid tasks")
}

fn common_release_tasks(rng: &mut ChaCha8Rng, max_n: usize) -> TaskSet {
    let n = rng.gen_range(1usize..max_n);
    TaskSet::new(
        (0..n)
            .map(|i| {
                let d = rng.gen_range(1.0f64..20.0);
                let w = rng.gen_range(0.1f64..5.0);
                Task::new(i, Time::ZERO, Time::from_secs(d), Cycles::new(w))
            })
            .collect(),
    )
    .unwrap()
}

#[test]
fn meter_and_engine_agree_on_online_schedules() {
    for case in 0..CASES {
        let mut rng = rng_for(1, case);
        let tasks = sporadic_tasks(&mut rng);
        let alpha = rng.gen_range(0.0f64..5.0);
        let alpha_m = rng.gen_range(0.1f64..10.0);
        let xi = rng.gen_range(0.0f64..2.0);
        let xi_m = rng.gen_range(0.0f64..2.0);
        let policy_idx = rng.gen_range(0usize..3);
        let use_horizon = case % 2 == 0;
        let p = platform(alpha, alpha_m, xi, xi_m);
        let schedule = solve(&tasks, &p, Scheme::Online)
            .map(Solution::into_schedule)
            .unwrap();
        let policy = [
            SleepPolicy::NeverSleep,
            SleepPolicy::AlwaysSleep,
            SleepPolicy::WhenProfitable,
        ][policy_idx];
        let mut opts = SimOptions::uniform(policy);
        if use_horizon {
            opts = opts.with_horizon(Time::ZERO, tasks.latest_deadline());
        }
        let a = simulate_with_options(&schedule, &tasks, &p, opts).unwrap();
        let b = simulate_event_driven(&schedule, &tasks, &p, opts).unwrap();
        let tol = 1e-9 * a.total().value().max(1.0);
        assert!(
            (a.total().value() - b.total().value()).abs() <= tol,
            "meter {} vs engine {}",
            a.total(),
            b.total()
        );
        assert_eq!(a.memory_sleeps, b.memory_sleeps);
        assert_eq!(a.core_sleeps, b.core_sleeps);
        assert!((a.memory_sleep_time - b.memory_sleep_time).abs().as_secs() <= 1e-9);
        assert!((a.memory_awake_time - b.memory_awake_time).abs().as_secs() <= 1e-9);
    }
}

#[test]
fn predicted_matches_metered_common_release() {
    for case in 0..CASES {
        let mut rng = rng_for(2, case);
        let tasks = common_release_tasks(&mut rng, 10);
        let alpha = if case % 8 == 0 {
            0.0
        } else {
            rng.gen_range(0.0f64..6.0)
        };
        let alpha_m = rng.gen_range(0.1f64..12.0);
        let p = platform(alpha, alpha_m, 0.0, 0.0);
        let sol = if alpha == 0.0 {
            solve(&tasks, &p, Scheme::CommonReleaseAlphaZero).unwrap()
        } else {
            solve(&tasks, &p, Scheme::CommonReleaseAlphaNonzero).unwrap()
        };
        let report = simulate_with_options(
            sol.schedule(),
            &tasks,
            &p,
            SimOptions::uniform(SleepPolicy::WhenProfitable),
        )
        .unwrap();
        let predicted = sol.predicted_energy().value();
        assert!(
            (report.total().value() - predicted).abs() <= 1e-7 * predicted.max(1.0),
            "sim {} vs predicted {predicted}",
            report.total()
        );
    }
}

#[test]
fn predicted_matches_metered_overhead_scheme() {
    for case in 0..CASES {
        let mut rng = rng_for(3, case);
        let tasks = common_release_tasks(&mut rng, 8);
        let alpha = rng.gen_range(0.1f64..6.0);
        let alpha_m = rng.gen_range(0.1f64..12.0);
        let xi = rng.gen_range(0.0f64..3.0);
        let xi_m = rng.gen_range(0.0f64..3.0);
        let p = platform(alpha, alpha_m, xi, xi_m);
        let sol = solve(&tasks, &p, Scheme::CommonReleaseOverhead).unwrap();
        let opts = SimOptions::uniform(SleepPolicy::WhenProfitable)
            .with_horizon(Time::ZERO, tasks.latest_deadline());
        let report = simulate_with_options(sol.schedule(), &tasks, &p, opts).unwrap();
        let predicted = sol.predicted_energy().value();
        assert!(
            (report.total().value() - predicted).abs() <= 1e-7 * predicted.max(1.0),
            "sim {} vs predicted {predicted}",
            report.total()
        );
    }
}

#[test]
fn profitable_policy_is_never_beaten() {
    for case in 0..CASES {
        let mut rng = rng_for(4, case);
        let tasks = sporadic_tasks(&mut rng);
        let alpha = rng.gen_range(0.0f64..5.0);
        let alpha_m = rng.gen_range(0.1f64..10.0);
        let xi_m = rng.gen_range(0.0f64..2.0);
        // WhenProfitable is the component-wise optimal gap decision, so it
        // can never lose to NeverSleep or AlwaysSleep on the same schedule.
        let p = platform(alpha, alpha_m, 0.0, xi_m);
        let schedule = solve(&tasks, &p, Scheme::Online)
            .map(Solution::into_schedule)
            .unwrap();
        let totals: Vec<f64> = [
            SleepPolicy::WhenProfitable,
            SleepPolicy::NeverSleep,
            SleepPolicy::AlwaysSleep,
        ]
        .iter()
        .map(|&pol| {
            simulate_with_options(&schedule, &tasks, &p, SimOptions::uniform(pol))
                .unwrap()
                .total()
                .value()
        })
        .collect();
        assert!(
            totals[0] <= totals[1] * (1.0 + 1e-12),
            "profitable loses to never"
        );
        assert!(
            totals[0] <= totals[2] * (1.0 + 1e-12),
            "profitable loses to always"
        );
    }
}
