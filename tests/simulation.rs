//! Property tests for the simulator: the interval meter and the
//! event-driven engine must agree on every schedule and policy, and the
//! analytic energies of the offline schemes must match the metered values.

use proptest::prelude::*;
use sdem::core::{common_release, online, overhead};
use sdem::power::{CorePower, MemoryPower, Platform};
use sdem::sim::{simulate_event_driven, simulate_with_options, SimOptions, SleepPolicy};
use sdem::types::{Cycles, Task, TaskSet, Time, Watts};

fn platform(alpha: f64, alpha_m: f64, xi: f64, xi_m: f64) -> Platform {
    Platform::new(
        CorePower::simple(alpha, 1.0, 3.0).with_break_even(Time::from_secs(xi)),
        MemoryPower::new(Watts::new(alpha_m)).with_break_even(Time::from_secs(xi_m)),
    )
}

fn sporadic_tasks() -> impl Strategy<Value = TaskSet> {
    prop::collection::vec((0.0f64..6.0, 0.5f64..8.0, 0.1f64..4.0), 1..8).prop_map(|specs| {
        let mut release = 0.0;
        TaskSet::new(
            specs
                .into_iter()
                .enumerate()
                .map(|(i, (gap, window, w))| {
                    release += gap;
                    Task::new(
                        i,
                        Time::from_secs(release),
                        Time::from_secs(release + window),
                        Cycles::new(w),
                    )
                })
                .collect(),
        )
        .expect("valid tasks")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn meter_and_engine_agree_on_online_schedules(
        tasks in sporadic_tasks(),
        alpha in 0.0f64..5.0,
        alpha_m in 0.1f64..10.0,
        xi in 0.0f64..2.0,
        xi_m in 0.0f64..2.0,
        policy_idx in 0usize..3,
        use_horizon in any::<bool>(),
    ) {
        let p = platform(alpha, alpha_m, xi, xi_m);
        let schedule = online::schedule_online(&tasks, &p).unwrap();
        let policy = [
            SleepPolicy::NeverSleep,
            SleepPolicy::AlwaysSleep,
            SleepPolicy::WhenProfitable,
        ][policy_idx];
        let mut opts = SimOptions::uniform(policy);
        if use_horizon {
            opts = opts.with_horizon(Time::ZERO, tasks.latest_deadline());
        }
        let a = simulate_with_options(&schedule, &tasks, &p, opts).unwrap();
        let b = simulate_event_driven(&schedule, &tasks, &p, opts).unwrap();
        let tol = 1e-9 * a.total().value().max(1.0);
        prop_assert!((a.total().value() - b.total().value()).abs() <= tol,
            "meter {} vs engine {}", a.total(), b.total());
        prop_assert_eq!(a.memory_sleeps, b.memory_sleeps);
        prop_assert_eq!(a.core_sleeps, b.core_sleeps);
        prop_assert!((a.memory_sleep_time - b.memory_sleep_time).abs().as_secs() <= 1e-9);
        prop_assert!((a.memory_awake_time - b.memory_awake_time).abs().as_secs() <= 1e-9);
    }

    #[test]
    fn predicted_matches_metered_common_release(
        tasks in prop::collection::vec((1.0f64..20.0, 0.1f64..5.0), 1..10),
        alpha in 0.0f64..6.0,
        alpha_m in 0.1f64..12.0,
    ) {
        let tasks = TaskSet::new(
            tasks.into_iter().enumerate()
                .map(|(i, (d, w))| Task::new(i, Time::ZERO, Time::from_secs(d), Cycles::new(w)))
                .collect(),
        ).unwrap();
        let p = platform(alpha, alpha_m, 0.0, 0.0);
        let sol = if alpha == 0.0 {
            common_release::schedule_alpha_zero(&tasks, &p).unwrap()
        } else {
            common_release::schedule_alpha_nonzero(&tasks, &p).unwrap()
        };
        let report = simulate_with_options(
            sol.schedule(), &tasks, &p, SimOptions::uniform(SleepPolicy::WhenProfitable),
        ).unwrap();
        let predicted = sol.predicted_energy().value();
        prop_assert!((report.total().value() - predicted).abs() <= 1e-7 * predicted.max(1.0),
            "sim {} vs predicted {predicted}", report.total());
    }

    #[test]
    fn predicted_matches_metered_overhead_scheme(
        tasks in prop::collection::vec((1.0f64..20.0, 0.1f64..5.0), 1..8),
        alpha in 0.1f64..6.0,
        alpha_m in 0.1f64..12.0,
        xi in 0.0f64..3.0,
        xi_m in 0.0f64..3.0,
    ) {
        let tasks = TaskSet::new(
            tasks.into_iter().enumerate()
                .map(|(i, (d, w))| Task::new(i, Time::ZERO, Time::from_secs(d), Cycles::new(w)))
                .collect(),
        ).unwrap();
        let p = platform(alpha, alpha_m, xi, xi_m);
        let sol = overhead::schedule_common_release(&tasks, &p).unwrap();
        let opts = SimOptions::uniform(SleepPolicy::WhenProfitable)
            .with_horizon(Time::ZERO, tasks.latest_deadline());
        let report = simulate_with_options(sol.schedule(), &tasks, &p, opts).unwrap();
        let predicted = sol.predicted_energy().value();
        prop_assert!((report.total().value() - predicted).abs() <= 1e-7 * predicted.max(1.0),
            "sim {} vs predicted {predicted}", report.total());
    }

    #[test]
    fn profitable_policy_is_never_beaten(
        tasks in sporadic_tasks(),
        alpha in 0.0f64..5.0,
        alpha_m in 0.1f64..10.0,
        xi_m in 0.0f64..2.0,
    ) {
        // WhenProfitable is the component-wise optimal gap decision, so it
        // can never lose to NeverSleep or AlwaysSleep on the same schedule.
        let p = platform(alpha, alpha_m, 0.0, xi_m);
        let schedule = online::schedule_online(&tasks, &p).unwrap();
        let totals: Vec<f64> = [
            SleepPolicy::WhenProfitable,
            SleepPolicy::NeverSleep,
            SleepPolicy::AlwaysSleep,
        ].iter().map(|&pol| {
            simulate_with_options(&schedule, &tasks, &p, SimOptions::uniform(pol))
                .unwrap().total().value()
        }).collect();
        prop_assert!(totals[0] <= totals[1] * (1.0 + 1e-12), "profitable loses to never");
        prop_assert!(totals[0] <= totals[2] * (1.0 + 1e-12), "profitable loses to always");
    }
}
