//! The degenerate-input zoo: every public scheduler is fed pathological
//! task sets — singletons, zero work, duplicated deadlines, extreme scales,
//! near-infeasible densities — and must either return a *valid* schedule or
//! a proper error. Panics are the only forbidden outcome.

use sdem::baselines::{avr, css, mbkp, oa, yds};
use sdem::core::agreeable;
use sdem::power::{CorePower, MemoryPower, Platform};
use sdem::prelude::*;
use sdem::sim::{simulate, SleepPolicy};

fn zoo() -> Vec<(&'static str, TaskSet)> {
    let sec = Time::from_secs;
    let t = |id: usize, r: f64, d: f64, w: f64| Task::new(id, sec(r), sec(d), Cycles::new(w));
    vec![
        ("single", TaskSet::new(vec![t(0, 0.0, 1.0, 0.5)]).unwrap()),
        (
            "zero_work_only",
            TaskSet::new(vec![t(0, 0.0, 1.0, 0.0), t(1, 0.0, 2.0, 0.0)]).unwrap(),
        ),
        (
            "mixed_zero_work",
            TaskSet::new(vec![t(0, 0.0, 1.0, 0.0), t(1, 0.0, 2.0, 1.0)]).unwrap(),
        ),
        (
            "identical_tasks",
            TaskSet::new((0..5).map(|i| t(i, 0.0, 4.0, 1.0)).collect()).unwrap(),
        ),
        (
            "duplicate_deadlines",
            TaskSet::new(vec![
                t(0, 0.0, 3.0, 1.0),
                t(1, 0.0, 3.0, 2.0),
                t(2, 0.0, 7.0, 1.0),
                t(3, 0.0, 7.0, 0.5),
            ])
            .unwrap(),
        ),
        (
            "tiny_scale",
            TaskSet::new(vec![t(0, 0.0, 1e-6, 1e-9), t(1, 0.0, 2e-6, 1e-9)]).unwrap(),
        ),
        (
            "huge_scale",
            TaskSet::new(vec![t(0, 0.0, 1e6, 1e7), t(1, 0.0, 2e6, 2e7)]).unwrap(),
        ),
        (
            "wildly_mixed_scales",
            TaskSet::new(vec![t(0, 0.0, 1e-3, 1e-4), t(1, 0.0, 1e3, 1e2)]).unwrap(),
        ),
        (
            "near_max_density",
            // Filled speed 0.999999 × s_up (s_up = 10 below).
            TaskSet::new(vec![t(0, 0.0, 1.0, 9.99999), t(1, 0.0, 5.0, 1.0)]).unwrap(),
        ),
        (
            "staggered_bursts",
            TaskSet::new(vec![
                t(0, 0.0, 2.0, 1.0),
                t(1, 0.0, 2.0, 1.0),
                t(2, 100.0, 102.0, 1.0),
                t(3, 100.0, 103.0, 1.0),
                t(4, 100.0, 104.0, 0.0),
            ])
            .unwrap(),
        ),
    ]
}

fn platforms() -> Vec<(&'static str, Platform)> {
    let cap = |c: CorePower| c.with_max_speed(Speed::from_hz(10.0));
    vec![
        (
            "alpha_zero",
            Platform::new(
                cap(CorePower::simple(0.0, 1.0, 3.0)),
                MemoryPower::new(Watts::new(2.0)),
            ),
        ),
        (
            "alpha_nonzero",
            Platform::new(
                cap(CorePower::simple(1.5, 1.0, 3.0)),
                MemoryPower::new(Watts::new(4.0)),
            ),
        ),
        (
            "with_overheads",
            Platform::new(
                cap(CorePower::simple(1.5, 1.0, 3.0)).with_break_even(Time::from_secs(0.5)),
                MemoryPower::new(Watts::new(4.0)).with_break_even(Time::from_secs(1.0)),
            ),
        ),
        (
            "free_memory",
            Platform::new(
                cap(CorePower::simple(0.0, 1.0, 2.0)),
                MemoryPower::new(Watts::new(0.0)),
            ),
        ),
    ]
}

/// Runs one scheduler outcome through validation + simulation.
fn check(label: &str, tasks: &TaskSet, platform: &Platform, result: Result<Schedule, String>) {
    // A proper error is acceptable for infeasible combos; panics are not.
    let Ok(schedule) = result else { return };
    schedule
        .validate(tasks)
        .unwrap_or_else(|e| panic!("{label}: invalid schedule: {e}"));
    for policy in [
        SleepPolicy::NeverSleep,
        SleepPolicy::AlwaysSleep,
        SleepPolicy::WhenProfitable,
    ] {
        let report = simulate(&schedule, tasks, platform, policy)
            .unwrap_or_else(|e| panic!("{label}: simulation failed: {e}"));
        assert!(
            report.total().is_finite() && report.total().value() >= 0.0,
            "{label}: non-finite energy"
        );
    }
}

#[test]
fn every_scheduler_survives_the_zoo() {
    for (pname, platform) in platforms() {
        for (zname, tasks) in zoo() {
            let label = |s: &str| format!("{s} on {zname}/{pname}");
            let sol = |r: Result<sdem::core::Solution, sdem::core::SdemError>| {
                r.map(sdem::core::Solution::into_schedule)
                    .map_err(|e| e.to_string())
            };
            check(
                &label("cr_alpha_zero"),
                &tasks,
                &platform,
                sol(solve(&tasks, &platform, Scheme::CommonReleaseAlphaZero)),
            );
            check(
                &label("cr_alpha_nonzero"),
                &tasks,
                &platform,
                sol(solve(&tasks, &platform, Scheme::CommonReleaseAlphaNonzero)),
            );
            check(
                &label("cr_overhead"),
                &tasks,
                &platform,
                sol(solve(&tasks, &platform, Scheme::CommonReleaseOverhead)),
            );
            check(
                &label("agreeable"),
                &tasks,
                &platform,
                sol(solve(&tasks, &platform, Scheme::Agreeable)),
            );
            check(
                &label("agreeable_strict"),
                &tasks,
                &platform,
                sol(solve(&tasks, &platform, Scheme::AgreeableStrict)),
            );
            check(
                &label("agreeable_iterative"),
                &tasks,
                &platform,
                sol(agreeable::schedule_with_solver(
                    &tasks,
                    &platform,
                    agreeable::BlockSolverKind::PaperIterative,
                )),
            );
            check(
                &label("online"),
                &tasks,
                &platform,
                solve(&tasks, &platform, Scheme::Online)
                    .map(Solution::into_schedule)
                    .map_err(|e| e.to_string()),
            );
            for cores in [1usize, 2] {
                check(
                    &label(&format!("online_bounded_{cores}")),
                    &tasks,
                    &platform,
                    solve(&tasks, &platform, Scheme::OnlineBounded(cores))
                        .map(Solution::into_schedule)
                        .map_err(|e| e.to_string()),
                );
                check(
                    &label(&format!("mbkp_{cores}")),
                    &tasks,
                    &platform,
                    mbkp::schedule_online(&tasks, &platform, cores, mbkp::Assignment::RoundRobin)
                        .map_err(|e| e.to_string()),
                );
            }
            check(
                &label("yds"),
                &tasks,
                &platform,
                yds::schedule_single_core(&tasks, &platform).map_err(|e| e.to_string()),
            );
            check(
                &label("oa"),
                &tasks,
                &platform,
                oa::schedule_single_core_online(&tasks, &platform).map_err(|e| e.to_string()),
            );
            check(
                &label("avr"),
                &tasks,
                &platform,
                avr::schedule_single_core(&tasks, &platform).map_err(|e| e.to_string()),
            );
            check(
                &label("css"),
                &tasks,
                &platform,
                css::schedule_single_core_css(&tasks, &platform).map_err(|e| e.to_string()),
            );
        }
    }
}

#[test]
fn bounded_exact_and_lpt_survive_common_deadline_zoo() {
    let platform = Platform::new(
        CorePower::simple(0.0, 1.0, 3.0).with_max_speed(Speed::from_hz(10.0)),
        MemoryPower::new(Watts::new(2.0)),
    );
    let sec = Time::from_secs;
    let sets = [
        vec![0.5],
        vec![0.0, 0.0, 0.0],
        vec![1.0, 1.0, 1.0, 1.0],
        vec![5.0, 0.001, 0.001],
    ];
    for works in sets {
        let tasks = TaskSet::new(
            works
                .iter()
                .enumerate()
                .map(|(i, &w)| Task::new(i, sec(0.0), sec(10.0), Cycles::new(w)))
                .collect(),
        )
        .unwrap();
        for cores in [1usize, 2, 3] {
            if let Ok(sol) = solve(&tasks, &platform, Scheme::BoundedExact(cores)) {
                sol.schedule().validate(&tasks).unwrap();
            }
            if let Ok(sol) = solve(&tasks, &platform, Scheme::BoundedLpt(cores)) {
                sol.schedule().validate(&tasks).unwrap();
            }
        }
    }
}
