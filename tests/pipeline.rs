//! Deterministic end-to-end pipelines: workload generation → scheduling →
//! simulation → cross-algorithm comparisons, on fixed seeds that mirror the
//! paper's evaluation setup.

use sdem::baselines::mbkp::{self, Assignment};
use sdem::core::bounded;
use sdem::power::{CorePower, MemoryPower, Platform};
use sdem::prelude::*;
use sdem::sim::{simulate_with_options, SimOptions};
use sdem::workload::dspstone::{stream, Benchmark};
use sdem::workload::synthetic::{self, SyntheticConfig};

#[test]
fn dspstone_trial_matches_paper_ordering() {
    let platform = Platform::paper_defaults();
    let benches = [Benchmark::fft_1024(), Benchmark::matrix_24()];
    for u in [2.0, 5.0, 9.0] {
        let tasks = stream(&benches, u, 15, 7);
        let sdem_schedule = solve(&tasks, &platform, Scheme::Online)
            .map(Solution::into_schedule)
            .unwrap();
        sdem_schedule.validate(&tasks).unwrap();
        let mbkp_schedule =
            mbkp::schedule_online(&tasks, &platform, 8, Assignment::RoundRobin).unwrap();
        mbkp_schedule.validate(&tasks).unwrap();

        let profit = SimOptions::uniform(SleepPolicy::WhenProfitable);
        let never = SimOptions {
            memory_policy: SleepPolicy::NeverSleep,
            ..profit
        };
        let e_sdem = simulate_with_options(&sdem_schedule, &tasks, &platform, profit)
            .unwrap()
            .total()
            .value();
        let e_mbkp = simulate_with_options(&mbkp_schedule, &tasks, &platform, never)
            .unwrap()
            .total()
            .value();
        let e_mbkps = simulate_with_options(&mbkp_schedule, &tasks, &platform, profit)
            .unwrap()
            .total()
            .value();

        // The paper's ordering: SDEM-ON ≤ MBKPS ≤ MBKP.
        assert!(
            e_sdem <= e_mbkps * (1.0 + 1e-9),
            "U={u}: SDEM-ON {e_sdem} worse than MBKPS {e_mbkps}"
        );
        assert!(
            e_mbkps <= e_mbkp * (1.0 + 1e-9),
            "U={u}: MBKPS {e_mbkps} worse than MBKP {e_mbkp}"
        );
        // SDEM-ON must respect the 8-core platform on this workload.
        assert!(sdem_schedule.cores_used() <= 8);
    }
}

#[test]
fn synthetic_sweep_point_is_stable() {
    // One Fig. 7-style cell, fixed seed: SDEM-ON beats MBKPS and the
    // result is identical across runs (pure functions of the seed).
    let platform = Platform::paper_defaults();
    let cfg = SyntheticConfig::paper(40, Time::from_millis(400.0));
    let tasks = synthetic::sporadic(&cfg, 12345);
    let run = || {
        let sdem_schedule = solve(&tasks, &platform, Scheme::Online)
            .map(Solution::into_schedule)
            .unwrap();
        let profit = SimOptions::uniform(SleepPolicy::WhenProfitable);
        simulate_with_options(&sdem_schedule, &tasks, &platform, profit)
            .unwrap()
            .total()
            .value()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "online scheduling must be deterministic");
}

#[test]
fn offline_hierarchy_on_common_release_sets() {
    // On a common-release set: the agreeable DP, the §4 scheme and the §7
    // scheme (with zero overheads) agree; the online heuristic matches them
    // (single arrival); MBKP on one core can only be worse system-wide.
    let p = Platform::new(
        CorePower::simple(2.0, 1.0, 3.0),
        MemoryPower::new(Watts::new(5.0)),
    );
    let tasks = TaskSet::new(vec![
        Task::new(0, Time::ZERO, Time::from_secs(6.0), Cycles::new(2.0)),
        Task::new(1, Time::ZERO, Time::from_secs(9.0), Cycles::new(3.5)),
        Task::new(2, Time::ZERO, Time::from_secs(14.0), Cycles::new(1.5)),
    ])
    .unwrap();

    let e_42 = solve(&tasks, &p, Scheme::CommonReleaseAlphaNonzero)
        .unwrap()
        .predicted_energy()
        .value();
    let e_dp = solve(&tasks, &p, Scheme::Agreeable)
        .unwrap()
        .predicted_energy()
        .value();
    assert!(
        (e_42 - e_dp).abs() <= 1e-5 * e_42,
        "§4.2 {e_42} vs DP {e_dp}"
    );

    let e_7 = solve(&tasks, &p, Scheme::CommonReleaseOverhead)
        .unwrap()
        .predicted_energy()
        .value();
    assert!((e_42 - e_7).abs() <= 1e-7 * e_42, "§4.2 {e_42} vs §7 {e_7}");

    let online_sched = solve(&tasks, &p, Scheme::Online)
        .map(Solution::into_schedule)
        .unwrap();
    let e_online = sdem::sim::simulate(&online_sched, &tasks, &p, SleepPolicy::WhenProfitable)
        .unwrap()
        .total()
        .value();
    assert!(
        (e_online - e_42).abs() <= 1e-6 * e_42,
        "online {e_online} vs offline {e_42}"
    );
}

#[test]
fn bounded_core_partition_structure() {
    // Theorem 1's instance family: equal release/deadline, PARTITION-able
    // works. The exact solver must find the balanced split and beat every
    // unbalanced alternative priced by Eq. 3.
    let p = Platform::new(
        CorePower::simple(0.0, 1.0, 3.0),
        MemoryPower::new(Watts::new(4.0)),
    );
    let works = [5.0, 4.0, 3.0, 2.0, 1.0, 1.0]; // total 16 ⇒ balanced 8/8
    let tasks = TaskSet::new(
        works
            .iter()
            .enumerate()
            .map(|(i, &w)| Task::new(i, Time::ZERO, Time::from_secs(200.0), Cycles::new(w)))
            .collect(),
    )
    .unwrap();
    let sol = solve(&tasks, &p, Scheme::BoundedExact(2)).unwrap();
    sol.schedule().validate(&tasks).unwrap();
    let balanced = bounded::partition_min_energy(&[8.0, 8.0], &p).value();
    assert!(
        (sol.predicted_energy().value() - balanced).abs() <= 1e-9 * balanced,
        "exact {} vs balanced closed form {balanced}",
        sol.predicted_energy().value()
    );
    let unbalanced = bounded::partition_min_energy(&[10.0, 6.0], &p).value();
    assert!(balanced < unbalanced);
}

#[test]
fn two_hundred_task_stream_schedules_quickly_and_validates() {
    // Scale sanity: a 200-task sporadic stream through the full pipeline.
    let platform = Platform::paper_defaults();
    let cfg = SyntheticConfig::paper(200, Time::from_millis(150.0));
    let tasks = synthetic::sporadic(&cfg, 424242);
    let started = std::time::Instant::now();
    let sdem_schedule = solve(&tasks, &platform, Scheme::Online)
        .map(Solution::into_schedule)
        .unwrap();
    sdem_schedule.validate(&tasks).unwrap();
    let mbkp_schedule =
        mbkp::schedule_online(&tasks, &platform, 8, Assignment::RoundRobin).unwrap();
    mbkp_schedule.validate(&tasks).unwrap();
    let profit = SimOptions::uniform(SleepPolicy::WhenProfitable);
    let r = simulate_with_options(&sdem_schedule, &tasks, &platform, profit).unwrap();
    assert!(r.total().value() > 0.0);
    assert!(
        started.elapsed() < std::time::Duration::from_secs(30),
        "pipeline too slow: {:?}",
        started.elapsed()
    );
}

#[test]
fn sdem_on_wins_more_at_lower_utilization() {
    // The Fig. 6a trend: memory savings grow as utilization drops.
    let platform = Platform::paper_defaults();
    let benches = [Benchmark::fft_1024(), Benchmark::matrix_24()];
    let saving = |u: f64| {
        let tasks = stream(&benches, u, 12, 3);
        let sdem_schedule = solve(&tasks, &platform, Scheme::Online)
            .map(Solution::into_schedule)
            .unwrap();
        let mbkp_schedule =
            mbkp::schedule_online(&tasks, &platform, 8, Assignment::RoundRobin).unwrap();
        let profit = SimOptions::uniform(SleepPolicy::WhenProfitable);
        let never = SimOptions {
            memory_policy: SleepPolicy::NeverSleep,
            ..profit
        };
        let s = simulate_with_options(&sdem_schedule, &tasks, &platform, profit)
            .unwrap()
            .memory_total()
            .value();
        let m = simulate_with_options(&mbkp_schedule, &tasks, &platform, never)
            .unwrap()
            .memory_total()
            .value();
        1.0 - s / m
    };
    let high_util = saving(2.0);
    let low_util = saving(9.0);
    assert!(
        low_util > high_util,
        "expected larger memory savings at lower utilization: U=2 → {high_util}, U=9 → {low_util}"
    );
}
