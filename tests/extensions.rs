//! Property tests for the extension features: the discrete-voltage
//! transform, heterogeneous cores, the §7 overhead scheme's dominance, the
//! periodic substrate and the power-trace export.

use proptest::prelude::*;
use sdem::core::discrete::{quantize_schedule, SpeedLevels};
use sdem::core::{common_release, online, overhead};
use sdem::power::{CorePower, MemoryPower, Platform};
use sdem::sim::{power_trace, simulate_with_options, SimOptions, SleepPolicy};
use sdem::types::{Cycles, Speed, Task, TaskSet, Time, Watts};
use sdem::workload::periodic::{unroll, PeriodicTask};

fn platform(alpha: f64, alpha_m: f64) -> Platform {
    Platform::new(
        CorePower::simple(alpha, 1.0, 3.0).with_max_speed(Speed::from_hz(100.0)),
        MemoryPower::new(Watts::new(alpha_m)),
    )
}

fn sporadic_tasks(max_n: usize) -> impl Strategy<Value = TaskSet> {
    prop::collection::vec((0.0f64..6.0, 0.5f64..8.0, 0.1f64..4.0), 1..=max_n).prop_map(|specs| {
        let mut release = 0.0;
        TaskSet::new(
            specs
                .into_iter()
                .enumerate()
                .map(|(i, (gap, window, w))| {
                    release += gap;
                    Task::new(
                        i,
                        Time::from_secs(release),
                        Time::from_secs(release + window),
                        Cycles::new(w),
                    )
                })
                .collect(),
        )
        .expect("valid tasks")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn quantized_online_schedules_stay_valid_and_cost_at_least_continuous(
        tasks in sporadic_tasks(8),
        alpha in 0.0f64..4.0,
        alpha_m in 0.1f64..8.0,
        n_levels in 2usize..12,
    ) {
        let p = platform(alpha, alpha_m);
        let continuous = online::schedule_online(&tasks, &p).unwrap();
        let table = SpeedLevels::evenly_spaced(p.core(), n_levels);
        let q = quantize_schedule(&continuous, &table).unwrap();
        q.validate(&tasks).unwrap();
        let opts = SimOptions::uniform(SleepPolicy::WhenProfitable);
        let e_cont = simulate_with_options(&continuous, &tasks, &p, opts).unwrap();
        let e_disc = simulate_with_options(&q, &tasks, &p, opts).unwrap();
        // Same work, convex power ⇒ discrete dynamic energy can only grow;
        // busy time can only shrink (early finishes), so static/memory can
        // shrink — assert the dynamic share specifically.
        prop_assert!(
            e_disc.core_dynamic.value() >= e_cont.core_dynamic.value() * (1.0 - 1e-9),
            "discrete dynamic {} below continuous {}",
            e_disc.core_dynamic.value(),
            e_cont.core_dynamic.value()
        );
    }

    #[test]
    fn heterogeneous_with_identical_cores_matches_homogeneous(
        specs in prop::collection::vec((1.0f64..20.0, 0.1f64..5.0), 1..8),
        alpha in 0.1f64..6.0,
        alpha_m in 0.1f64..10.0,
    ) {
        let tasks = TaskSet::new(
            specs.into_iter().enumerate()
                .map(|(i, (d, w))| Task::new(i, Time::ZERO, Time::from_secs(d), Cycles::new(w)))
                .collect(),
        ).unwrap();
        let core = CorePower::simple(alpha, 1.0, 3.0);
        let memory = MemoryPower::new(Watts::new(alpha_m));
        let cores = vec![core; tasks.len()];
        let het = common_release::schedule_heterogeneous(&tasks, &cores, &memory).unwrap();
        let hom = common_release::schedule_alpha_nonzero(&tasks, &Platform::new(core, memory))
            .unwrap();
        let (a, b) = (het.predicted_energy().value(), hom.predicted_energy().value());
        prop_assert!((a - b).abs() <= 1e-5 * b.max(1.0), "het {a} vs hom {b}");
    }

    #[test]
    fn overhead_scheme_dominates_naive_under_horizon_pricing(
        specs in prop::collection::vec((1.0f64..20.0, 0.1f64..5.0), 1..8),
        alpha in 0.1f64..5.0,
        alpha_m in 0.1f64..10.0,
        xi in 0.0f64..4.0,
        xi_m in 0.0f64..4.0,
    ) {
        let tasks = TaskSet::new(
            specs.into_iter().enumerate()
                .map(|(i, (d, w))| Task::new(i, Time::ZERO, Time::from_secs(d), Cycles::new(w)))
                .collect(),
        ).unwrap();
        let p = Platform::new(
            CorePower::simple(alpha, 1.0, 3.0).with_break_even(Time::from_secs(xi)),
            MemoryPower::new(Watts::new(alpha_m)).with_break_even(Time::from_secs(xi_m)),
        );
        let opts = SimOptions::uniform(SleepPolicy::WhenProfitable)
            .with_horizon(Time::ZERO, tasks.latest_deadline());
        let aware = overhead::schedule_common_release(&tasks, &p).unwrap();
        let naive = common_release::schedule_alpha_nonzero(&tasks, &p).unwrap();
        let e_aware = simulate_with_options(aware.schedule(), &tasks, &p, opts)
            .unwrap().total().value();
        let e_naive = simulate_with_options(naive.schedule(), &tasks, &p, opts)
            .unwrap().total().value();
        prop_assert!(e_aware <= e_naive * (1.0 + 1e-9),
            "overhead-aware {e_aware} worse than naive {e_naive}");
    }

    #[test]
    fn unrolled_periodic_systems_schedule_online(
        periods in prop::collection::vec((0.05f64..0.5, 0.01f64..2.0), 1..4),
    ) {
        let tasks: Vec<PeriodicTask> = periods
            .iter()
            .enumerate()
            .map(|(i, &(period, w))| {
                PeriodicTask::implicit(i, Time::from_secs(period), Cycles::new(w))
            })
            .collect();
        let horizon = Time::from_secs(2.0);
        prop_assume!(tasks.iter().any(|t| t.offset() + t.relative_deadline() <= horizon));
        let jobs = unroll(&tasks, horizon).unwrap();
        let p = platform(1.0, 4.0);
        prop_assume!(jobs.max_filled_speed() <= p.core().max_speed());
        let sched = online::schedule_online(&jobs, &p).unwrap();
        sched.validate(&jobs).unwrap();
    }

    #[test]
    fn memory_access_energy_is_schedule_invariant(
        tasks in sporadic_tasks(6),
        per_cycle in 1e-12f64..1e-9,
    ) {
        // The paper's justification for excluding memory dynamic energy:
        // every feasible schedule executes the same cycles, so the access
        // bill is identical across schedulers and cannot change rankings.
        let base = platform(1.0, 4.0);
        let p = base.with_memory(base.memory().with_access_energy(per_cycle));
        let opts = SimOptions::uniform(SleepPolicy::WhenProfitable);
        let a = online::schedule_online(&tasks, &p).unwrap();
        let ra = simulate_with_options(&a, &tasks, &p, opts).unwrap();
        // A second, different schedule of the same tasks: everything at its
        // filled speed on its own core.
        let b = sdem::types::Schedule::new(
            tasks.iter().enumerate().map(|(i, t)| {
                sdem::types::Placement::single(
                    t.id(), sdem::types::CoreId(i), t.release(), t.deadline(), t.filled_speed(),
                )
            }).collect(),
        );
        let rb = simulate_with_options(&b, &tasks, &p, opts).unwrap();
        let expected = per_cycle * tasks.total_work().value();
        prop_assert!((ra.memory_dynamic.value() - expected).abs() <= 1e-9 * expected.max(1e-12));
        prop_assert!(
            (ra.memory_dynamic.value() - rb.memory_dynamic.value()).abs()
                <= 1e-9 * expected.max(1e-12),
            "access energy differs across schedules of the same work"
        );
    }

    #[test]
    fn power_trace_integral_matches_meter(
        tasks in sporadic_tasks(6),
        alpha in 0.0f64..4.0,
        alpha_m in 0.1f64..8.0,
    ) {
        let p = platform(alpha, alpha_m);
        let sched = online::schedule_online(&tasks, &p).unwrap();
        let opts = SimOptions::uniform(SleepPolicy::NeverSleep);
        let metered = simulate_with_options(&sched, &tasks, &p, opts).unwrap().total().value();
        let Some((t0, t1)) = sched.span() else {
            return Ok(());
        };
        let samples = 40_000;
        let trace = power_trace(&sched, &p, opts, samples);
        let dt = (t1 - t0).as_secs() / samples as f64;
        let integrated: f64 = trace.iter().map(|s| s.total().value() * dt).sum();
        // NeverSleep has no transition impulses, so the integral converges
        // to the metered value as the sampling densifies.
        prop_assert!(
            (integrated - metered).abs() <= 2e-2 * metered.max(1e-9),
            "integrated {integrated} vs metered {metered}"
        );
    }
}
