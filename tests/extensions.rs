//! Property tests for the extension features: the discrete-voltage
//! transform, heterogeneous cores, the §7 overhead scheme's dominance, the
//! periodic substrate and the power-trace export. Each property runs over
//! a fixed number of seeded cases (deterministic, offline).

use sdem::core::discrete::{quantize_schedule, SpeedLevels};
use sdem::core::{common_release, solve, Scheme, Solution};
use sdem::power::{CorePower, MemoryPower, Platform};
use sdem::prng::{ChaCha8Rng, Rng, SeedableRng};
use sdem::sim::{power_trace, simulate_with_options, SimOptions, SleepPolicy};
use sdem::types::{Cycles, Speed, Task, TaskSet, Time, Watts};
use sdem::workload::periodic::{unroll, PeriodicTask};

const CASES: u64 = 40;

fn rng_for(property: u64, case: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(0xE87E_0000 + property * 1000 + case)
}

fn platform(alpha: f64, alpha_m: f64) -> Platform {
    Platform::new(
        CorePower::simple(alpha, 1.0, 3.0).with_max_speed(Speed::from_hz(100.0)),
        MemoryPower::new(Watts::new(alpha_m)),
    )
}

fn sporadic_tasks(rng: &mut ChaCha8Rng, max_n: usize) -> TaskSet {
    let n = rng.gen_range(1usize..=max_n);
    let mut release = 0.0;
    TaskSet::new(
        (0..n)
            .map(|i| {
                let gap = rng.gen_range(0.0f64..6.0);
                let window = rng.gen_range(0.5f64..8.0);
                let w = rng.gen_range(0.1f64..4.0);
                release += gap;
                Task::new(
                    i,
                    Time::from_secs(release),
                    Time::from_secs(release + window),
                    Cycles::new(w),
                )
            })
            .collect(),
    )
    .expect("valid tasks")
}

fn common_release_specs(rng: &mut ChaCha8Rng, max_n: usize) -> TaskSet {
    let n = rng.gen_range(1usize..max_n);
    TaskSet::new(
        (0..n)
            .map(|i| {
                let d = rng.gen_range(1.0f64..20.0);
                let w = rng.gen_range(0.1f64..5.0);
                Task::new(i, Time::ZERO, Time::from_secs(d), Cycles::new(w))
            })
            .collect(),
    )
    .unwrap()
}

#[test]
fn quantized_online_schedules_stay_valid_and_cost_at_least_continuous() {
    for case in 0..CASES {
        let mut rng = rng_for(1, case);
        let tasks = sporadic_tasks(&mut rng, 8);
        let alpha = rng.gen_range(0.0f64..4.0);
        let alpha_m = rng.gen_range(0.1f64..8.0);
        let n_levels = rng.gen_range(2usize..12);
        let p = platform(alpha, alpha_m);
        let continuous = solve(&tasks, &p, Scheme::Online)
            .map(Solution::into_schedule)
            .unwrap();
        let table = SpeedLevels::evenly_spaced(p.core(), n_levels);
        let q = quantize_schedule(&continuous, &table).unwrap();
        q.validate(&tasks).unwrap();
        let opts = SimOptions::uniform(SleepPolicy::WhenProfitable);
        let e_cont = simulate_with_options(&continuous, &tasks, &p, opts).unwrap();
        let e_disc = simulate_with_options(&q, &tasks, &p, opts).unwrap();
        // Same work, convex power ⇒ discrete dynamic energy can only grow;
        // busy time can only shrink (early finishes), so static/memory can
        // shrink — assert the dynamic share specifically.
        assert!(
            e_disc.core_dynamic.value() >= e_cont.core_dynamic.value() * (1.0 - 1e-9),
            "discrete dynamic {} below continuous {}",
            e_disc.core_dynamic.value(),
            e_cont.core_dynamic.value()
        );
    }
}

#[test]
fn heterogeneous_with_identical_cores_matches_homogeneous() {
    for case in 0..CASES {
        let mut rng = rng_for(2, case);
        let tasks = common_release_specs(&mut rng, 8);
        let alpha = rng.gen_range(0.1f64..6.0);
        let alpha_m = rng.gen_range(0.1f64..10.0);
        let core = CorePower::simple(alpha, 1.0, 3.0);
        let memory = MemoryPower::new(Watts::new(alpha_m));
        let cores = vec![core; tasks.len()];
        let het = common_release::schedule_heterogeneous(&tasks, &cores, &memory).unwrap();
        let hom = solve(
            &tasks,
            &Platform::new(core, memory),
            Scheme::CommonReleaseAlphaNonzero,
        )
        .unwrap();
        let (a, b) = (
            het.predicted_energy().value(),
            hom.predicted_energy().value(),
        );
        assert!((a - b).abs() <= 1e-5 * b.max(1.0), "het {a} vs hom {b}");
    }
}

#[test]
fn overhead_scheme_dominates_naive_under_horizon_pricing() {
    for case in 0..CASES {
        let mut rng = rng_for(3, case);
        let tasks = common_release_specs(&mut rng, 8);
        let alpha = rng.gen_range(0.1f64..5.0);
        let alpha_m = rng.gen_range(0.1f64..10.0);
        let xi = rng.gen_range(0.0f64..4.0);
        let xi_m = rng.gen_range(0.0f64..4.0);
        let p = Platform::new(
            CorePower::simple(alpha, 1.0, 3.0).with_break_even(Time::from_secs(xi)),
            MemoryPower::new(Watts::new(alpha_m)).with_break_even(Time::from_secs(xi_m)),
        );
        let opts = SimOptions::uniform(SleepPolicy::WhenProfitable)
            .with_horizon(Time::ZERO, tasks.latest_deadline());
        let aware = solve(&tasks, &p, Scheme::CommonReleaseOverhead).unwrap();
        let naive = solve(&tasks, &p, Scheme::CommonReleaseAlphaNonzero).unwrap();
        let e_aware = simulate_with_options(aware.schedule(), &tasks, &p, opts)
            .unwrap()
            .total()
            .value();
        let e_naive = simulate_with_options(naive.schedule(), &tasks, &p, opts)
            .unwrap()
            .total()
            .value();
        assert!(
            e_aware <= e_naive * (1.0 + 1e-9),
            "overhead-aware {e_aware} worse than naive {e_naive}"
        );
    }
}

#[test]
fn unrolled_periodic_systems_schedule_online() {
    let mut checked = 0u64;
    let mut case = 0u64;
    // Keep drawing until CASES sets survive the feasibility filters (the
    // proptest original used prop_assume! the same way).
    while checked < CASES && case < CASES * 20 {
        let mut rng = rng_for(4, case);
        case += 1;
        let n = rng.gen_range(1usize..4);
        let tasks: Vec<PeriodicTask> = (0..n)
            .map(|i| {
                let period = rng.gen_range(0.05f64..0.5);
                let w = rng.gen_range(0.01f64..2.0);
                PeriodicTask::implicit(i, Time::from_secs(period), Cycles::new(w))
            })
            .collect();
        let horizon = Time::from_secs(2.0);
        if !tasks
            .iter()
            .any(|t| t.offset() + t.relative_deadline() <= horizon)
        {
            continue;
        }
        let jobs = unroll(&tasks, horizon).unwrap();
        let p = platform(1.0, 4.0);
        if jobs.max_filled_speed() > p.core().max_speed() {
            continue;
        }
        let sched = solve(&jobs, &p, Scheme::Online)
            .map(Solution::into_schedule)
            .unwrap();
        sched.validate(&jobs).unwrap();
        checked += 1;
    }
    assert!(
        checked >= CASES / 2,
        "too few feasible periodic draws: {checked}"
    );
}

#[test]
fn memory_access_energy_is_schedule_invariant() {
    for case in 0..CASES {
        let mut rng = rng_for(5, case);
        let tasks = sporadic_tasks(&mut rng, 6);
        let per_cycle = rng.gen_range(1e-12f64..1e-9);
        // The paper's justification for excluding memory dynamic energy:
        // every feasible schedule executes the same cycles, so the access
        // bill is identical across schedulers and cannot change rankings.
        let base = platform(1.0, 4.0);
        let p = base.with_memory(base.memory().with_access_energy(per_cycle));
        let opts = SimOptions::uniform(SleepPolicy::WhenProfitable);
        let a = solve(&tasks, &p, Scheme::Online)
            .map(Solution::into_schedule)
            .unwrap();
        let ra = simulate_with_options(&a, &tasks, &p, opts).unwrap();
        // A second, different schedule of the same tasks: everything at its
        // filled speed on its own core.
        let b = sdem::types::Schedule::new(
            tasks
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    sdem::types::Placement::single(
                        t.id(),
                        sdem::types::CoreId(i),
                        t.release(),
                        t.deadline(),
                        t.filled_speed(),
                    )
                })
                .collect(),
        );
        let rb = simulate_with_options(&b, &tasks, &p, opts).unwrap();
        let expected = per_cycle * tasks.total_work().value();
        assert!((ra.memory_dynamic.value() - expected).abs() <= 1e-9 * expected.max(1e-12));
        assert!(
            (ra.memory_dynamic.value() - rb.memory_dynamic.value()).abs()
                <= 1e-9 * expected.max(1e-12),
            "access energy differs across schedules of the same work"
        );
    }
}

#[test]
fn power_trace_integral_matches_meter() {
    for case in 0..CASES {
        let mut rng = rng_for(6, case);
        let tasks = sporadic_tasks(&mut rng, 6);
        let alpha = rng.gen_range(0.0f64..4.0);
        let alpha_m = rng.gen_range(0.1f64..8.0);
        let p = platform(alpha, alpha_m);
        let sched = solve(&tasks, &p, Scheme::Online)
            .map(Solution::into_schedule)
            .unwrap();
        let opts = SimOptions::uniform(SleepPolicy::NeverSleep);
        let metered = simulate_with_options(&sched, &tasks, &p, opts)
            .unwrap()
            .total()
            .value();
        let Some((t0, t1)) = sched.span() else {
            continue;
        };
        let samples = 40_000;
        let trace = power_trace(&sched, &p, opts, samples);
        let dt = (t1 - t0).as_secs() / samples as f64;
        let integrated: f64 = trace.iter().map(|s| s.total().value() * dt).sum();
        // NeverSleep has no transition impulses, so the integral converges
        // to the metered value as the sampling densifies.
        assert!(
            (integrated - metered).abs() <= 2e-2 * metered.max(1e-9),
            "integrated {integrated} vs metered {metered}"
        );
    }
}
