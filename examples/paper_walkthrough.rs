//! Walks through every theoretical scheme of the paper on small instances:
//! §4.1 and §4.2 (common release), §5 (agreeable DP), §7 (transition
//! overheads, Table 3) and §3 (bounded cores / PARTITION structure).
//!
//! Run with: `cargo run --example paper_walkthrough`

use sdem::core::{agreeable, bounded, common_release, overhead};
use sdem::power::{CorePower, MemoryPower};
use sdem::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A clean dimensionless platform: β = 1, λ = 3, α_m = 4 W.
    let alpha_zero = Platform::new(
        CorePower::simple(0.0, 1.0, 3.0),
        MemoryPower::new(Watts::new(4.0)),
    );
    let alpha_four = Platform::new(
        CorePower::simple(4.0, 1.0, 3.0),
        MemoryPower::new(Watts::new(4.0)),
    );

    // ---- §4.1: common release, α = 0 -----------------------------------
    let tasks = TaskSet::new(vec![
        Task::new(0, Time::ZERO, Time::from_secs(4.0), Cycles::new(2.0)),
        Task::new(1, Time::ZERO, Time::from_secs(6.0), Cycles::new(3.0)),
        Task::new(2, Time::ZERO, Time::from_secs(10.0), Cycles::new(1.0)),
    ])?;
    let s41 = solve(&tasks, &alpha_zero, Scheme::CommonReleaseAlphaZero)?;
    println!(
        "§4.1  α=0 : Δ = {:.3} s, E = {:.4} J",
        s41.memory_sleep().as_secs(),
        s41.predicted_energy().value()
    );

    // All three published drivers agree:
    let scan = common_release::schedule_alpha_zero_scan(&tasks, &alpha_zero)?;
    let bsearch = common_release::schedule_alpha_zero_binary_search(&tasks, &alpha_zero)?;
    println!(
        "      Theorem-2 scan E = {:.4} J, Lemma-1 binary search E = {:.4} J",
        scan.predicted_energy().value(),
        bsearch.predicted_energy().value()
    );

    // ---- §4.2: common release, α ≠ 0 -----------------------------------
    let s42 = solve(&tasks, &alpha_four, Scheme::CommonReleaseAlphaNonzero)?;
    println!(
        "§4.2  α=4 : Δ = {:.3} s, E = {:.4} J (critical speed s_m = {:.3} Hz)",
        s42.memory_sleep().as_secs(),
        s42.predicted_energy().value(),
        alpha_four.core().critical_speed_unclamped().as_hz()
    );

    // ---- §5: agreeable deadlines ----------------------------------------
    let agree = TaskSet::new(vec![
        Task::new(0, Time::ZERO, Time::from_secs(3.0), Cycles::new(1.5)),
        Task::new(
            1,
            Time::from_secs(1.0),
            Time::from_secs(6.0),
            Cycles::new(2.0),
        ),
        Task::new(
            2,
            Time::from_secs(20.0),
            Time::from_secs(28.0),
            Cycles::new(2.5),
        ),
    ])?;
    let s5 = solve(&agree, &alpha_four, Scheme::Agreeable)?;
    println!(
        "§5    DP  : {} memory busy blocks, total sleep {:.3} s, E = {:.4} J",
        s5.schedule().memory_busy_intervals().len(),
        s5.memory_sleep().as_secs(),
        s5.predicted_energy().value()
    );
    let iterative = agreeable::schedule_with_solver(
        &agree,
        &alpha_four,
        agreeable::BlockSolverKind::PaperIterative,
    )?;
    println!(
        "      Algorithm-1 block solver agrees: E = {:.4} J",
        iterative.predicted_energy().value()
    );

    // ---- §7: transition overheads ---------------------------------------
    let with_overhead = Platform::new(
        CorePower::simple(4.0, 1.0, 3.0).with_break_even(Time::from_secs(0.5)),
        MemoryPower::new(Watts::new(4.0)).with_break_even(Time::from_secs(1.0)),
    );
    let s7 = solve(&tasks, &with_overhead, Scheme::CommonReleaseOverhead)?;
    println!(
        "§7    ξ≠0 : Δ = {:.3} s, E = {:.4} J (constrained critical speeds; Table 3 pricing)",
        s7.memory_sleep().as_secs(),
        s7.predicted_energy().value()
    );
    let row = overhead::classify_table3(
        s7.memory_sleep(),
        with_overhead.core().break_even(),
        with_overhead.memory().break_even(),
    );
    println!("      Table 3 row for the chosen Δ: {row:?}");

    // ---- §3: bounded cores (PARTITION structure) -------------------------
    let partition = TaskSet::new(vec![
        Task::new(0, Time::ZERO, Time::from_secs(50.0), Cycles::new(3.0)),
        Task::new(1, Time::ZERO, Time::from_secs(50.0), Cycles::new(2.0)),
        Task::new(2, Time::ZERO, Time::from_secs(50.0), Cycles::new(1.0)),
        Task::new(3, Time::ZERO, Time::from_secs(50.0), Cycles::new(2.0)),
    ])?;
    let s3 = solve(&partition, &alpha_zero, Scheme::BoundedExact(2))?;
    let eq3 = bounded::partition_min_energy(&[4.0, 4.0], &alpha_zero);
    println!(
        "§3    C=2 : exact optimum E = {:.4} J; Eq. 3 at the balanced 4/4 split = {:.4} J",
        s3.predicted_energy().value(),
        eq3.value()
    );
    println!("      (the optimum balances the PARTITION loads, as Theorem 1's reduction predicts)");
    Ok(())
}
