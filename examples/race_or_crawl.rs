//! "Race to idle or not?" — the paper's title question on one task.
//!
//! Sweeps the memory static power and shows how the optimal strategy moves
//! between the two extremes: with cheap memory the core crawls at its own
//! critical speed (classic DVS), with expensive memory the system races so
//! the memory can sleep longer. The crossover is the joint critical speed
//! `s₁ = ((α + α_m)/(β(λ−1)))^{1/λ}` of §5.2.
//!
//! Run with: `cargo run --example race_or_crawl`

use sdem::power::{CorePower, MemoryPower};
use sdem::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let core = CorePower::simple(4.0, 1.0, 3.0); // s_m = 2^{1/3} ≈ 1.26 Hz
    let task = TaskSet::new(vec![Task::new(
        0,
        Time::ZERO,
        Time::from_secs(100.0),
        Cycles::new(10.0),
    )])?;

    println!("one task: w = 10 cycles, deadline 100 s, core α = 4 W, β = 1, λ = 3");
    println!(
        "core-only critical speed s_m = {:.4} Hz\n",
        core.critical_speed_unclamped().as_hz()
    );
    println!(
        "{:>10} {:>12} {:>12} {:>14} {:>12}",
        "α_m [W]", "speed [Hz]", "s₁ [Hz]", "mem sleep [s]", "energy [J]"
    );

    for alpha_m in [0.0, 0.5, 2.0, 4.0, 12.0, 28.0, 60.0] {
        let platform = Platform::new(core, MemoryPower::new(Watts::new(alpha_m)));
        let sol = solve(&task, &platform, Scheme::CommonReleaseAlphaNonzero)?;
        let speed = sol.schedule().placements()[0].segments()[0].speed();
        let s1 = platform.memory_associated_critical_speed_unclamped();
        println!(
            "{:>10.1} {:>12.4} {:>12.4} {:>14.2} {:>12.4}",
            alpha_m,
            speed.as_hz(),
            s1.as_hz(),
            sol.memory_sleep().as_secs(),
            sol.predicted_energy().value(),
        );
    }

    println!("\nthe chosen speed tracks s₁ exactly: racing wins once the memory bill");
    println!("outweighs the convex core penalty — the paper's central trade-off.");
    Ok(())
}
