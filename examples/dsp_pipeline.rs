//! A DSP pipeline scenario: sporadic FFT and matrix-multiply kernels (the
//! paper's §8.1.1 workload) scheduled online, comparing SDEM-ON against
//! the MBKP/MBKPS baselines — the Fig. 6 experiment on one concrete
//! instance, with a per-algorithm energy breakdown.
//!
//! Run with: `cargo run --example dsp_pipeline`

use sdem::baselines::mbkp::{self, Assignment};
use sdem::prelude::*;
use sdem::sim::{simulate_with_options, SimOptions};
use sdem::workload::dspstone::{stream, Benchmark};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::paper_defaults();
    // Moderate utilization: U = 4 (period = 4× the execution window).
    let tasks = stream(
        &[Benchmark::fft_1024(), Benchmark::matrix_24()],
        4.0,
        12,
        42,
    );
    println!(
        "{} benchmark instances over {:.0} ms",
        tasks.len(),
        (tasks.latest_deadline() - tasks.earliest_release()).as_millis()
    );

    // SDEM-ON: postpone + align, memory sleeps when profitable.
    let sdem_schedule = solve(&tasks, &platform, Scheme::Online)?.into_schedule();
    sdem_schedule.validate(&tasks)?;
    let profit = SimOptions::uniform(SleepPolicy::WhenProfitable);
    let sdem = simulate_with_options(&sdem_schedule, &tasks, &platform, profit)?;

    // MBKP: per-core Optimal Available, memory never sleeps; MBKPS adds
    // opportunistic sleeping on whatever idle the schedule happens to have.
    let mbkp_schedule = mbkp::schedule_online(&tasks, &platform, 8, Assignment::RoundRobin)?;
    mbkp_schedule.validate(&tasks)?;
    let never = SimOptions {
        memory_policy: SleepPolicy::NeverSleep,
        ..profit
    };
    let mbkp_report = simulate_with_options(&mbkp_schedule, &tasks, &platform, never)?;
    let mbkps_report = simulate_with_options(&mbkp_schedule, &tasks, &platform, profit)?;

    println!(
        "\n{:10} {:>12} {:>12} {:>12} {:>8}",
        "scheme", "total [J]", "memory [J]", "cores [J]", "sleeps"
    );
    for (name, r) in [
        ("SDEM-ON", &sdem),
        ("MBKP", &mbkp_report),
        ("MBKPS", &mbkps_report),
    ] {
        println!(
            "{:10} {:>12.4} {:>12.4} {:>12.4} {:>8}",
            name,
            r.total().value(),
            r.memory_total().value(),
            r.core_total().value(),
            r.memory_sleeps,
        );
    }

    let vs_mbkp = 1.0 - sdem.total().value() / mbkp_report.total().value();
    let vs_mbkps = 1.0 - sdem.total().value() / mbkps_report.total().value();
    println!(
        "\nSDEM-ON saves {:.1}% vs MBKP and {:.1}% vs MBKPS on this instance",
        vs_mbkp * 100.0,
        vs_mbkps * 100.0
    );
    println!(
        "SDEM-ON used {} cores concurrently (platform has 8)",
        sdem_schedule.cores_used()
    );
    Ok(())
}
