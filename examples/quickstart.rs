//! Quickstart: schedule a handful of tasks on the paper's default platform
//! (ARM Cortex-A57 cores + 4 W / 40 ms DRAM) with the §4.2 optimal scheme
//! and read the itemized energy bill.
//!
//! Run with: `cargo run --example quickstart`

use sdem::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The platform of the paper's evaluation (§8.1.3 / Table 4 defaults).
    let platform = Platform::paper_defaults();
    println!(
        "platform: α = {} per core, β·s³ dynamic, α_m = {}, ξ_m = {}",
        platform.core().alpha(),
        platform.memory().alpha_m(),
        platform.memory().break_even(),
    );
    println!(
        "core critical speed s_m ≈ {:.0} MHz, joint (core+memory) s_cm ≈ {:.0} MHz (clamps to s_up)",
        platform.core().critical_speed_unclamped().as_mhz(),
        platform.memory_associated_critical_speed_unclamped().as_mhz(),
    );

    // Three tasks released together, deadlines 30/70/110 ms.
    let tasks = TaskSet::new(vec![
        Task::new(0, Time::ZERO, Time::from_millis(30.0), Cycles::new(9.0e6)),
        Task::new(1, Time::ZERO, Time::from_millis(70.0), Cycles::new(2.1e7)),
        Task::new(2, Time::ZERO, Time::from_millis(110.0), Cycles::new(3.3e7)),
    ])?;

    // §4.2: optimal speeds + shared memory sleep window, cores sleep after
    // finishing.
    let solution = solve(&tasks, &platform, Scheme::CommonReleaseAlphaNonzero)?;
    println!(
        "\noptimal common idle (memory sleep) Δ = {:.2} ms",
        solution.memory_sleep().as_millis()
    );
    for placement in solution.schedule().placements() {
        let seg = placement.segments()[0];
        println!(
            "  {} on {}: [{:6.2}, {:6.2}] ms at {:7.1} MHz",
            placement.task(),
            placement.core(),
            seg.start().as_millis(),
            seg.end().as_millis(),
            seg.speed().as_mhz(),
        );
    }

    // Replay the schedule through the simulator and check the bill matches
    // the closed form.
    let report = simulate(
        solution.schedule(),
        &tasks,
        &platform,
        SleepPolicy::WhenProfitable,
    )?;
    println!("\nenergy bill: {report}");
    let err = (report.total().value() - solution.predicted_energy().value()).abs();
    println!(
        "analytic optimum {:.6} J, simulator agrees to {:.2e} J",
        solution.predicted_energy().value(),
        err
    );
    Ok(())
}
