//! A periodic control system end to end: declare periodic tasks, unroll
//! them over a hyperperiod, schedule online with SDEM-ON, quantize the
//! continuous speeds onto a real DVFS table, and render the timeline.
//!
//! Run with: `cargo run --example periodic_system`

use sdem::core::discrete::{quantize_schedule, SpeedLevels};
use sdem::prelude::*;
use sdem::sim::render_gantt;
use sdem::workload::periodic::{total_utilization, unroll, PeriodicTask};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::paper_defaults();

    // A sensor-fusion pipeline: fast control loop, medium vision task,
    // slow logging task.
    let tasks = [
        PeriodicTask::implicit(0, Time::from_millis(100.0), Cycles::new(8.0e6)),
        PeriodicTask::new(
            1,
            Time::from_millis(200.0),
            Cycles::new(2.5e7),
            Time::from_millis(25.0),
            Time::from_millis(150.0),
        ),
        PeriodicTask::implicit(2, Time::from_millis(400.0), Cycles::new(1.2e7)),
    ];
    println!(
        "periodic system utilization at 1900 MHz: {:.1}%",
        total_utilization(&tasks, platform.core().max_speed()) * 100.0
    );

    // Unroll one hyperperiod (400 ms) into concrete jobs.
    let jobs = unroll(&tasks, Time::from_millis(400.0))?;
    println!("unrolled {} jobs over 400 ms", jobs.len());

    // SDEM-ON schedules the job stream online.
    let continuous = solve(&jobs, &platform, Scheme::Online)?.into_schedule();
    continuous.validate(&jobs)?;
    let e_cont = simulate(&continuous, &jobs, &platform, SleepPolicy::WhenProfitable)?;
    println!("\ncontinuous-DVS energy: {e_cont}");

    // Deploy on a realistic 5-point DVFS table.
    let table = SpeedLevels::new(
        [700.0, 1000.0, 1300.0, 1600.0, 1900.0]
            .map(Speed::from_mhz)
            .to_vec(),
    );
    let discrete = quantize_schedule(&continuous, &table)?;
    discrete.validate(&jobs)?;
    let e_disc = simulate(&discrete, &jobs, &platform, SleepPolicy::WhenProfitable)?;
    println!(
        "5-level DVFS energy:   {} ({:+.2}% vs continuous)",
        e_disc,
        (e_disc.total().value() / e_cont.total().value() - 1.0) * 100.0
    );

    println!("\ntimeline (digits = speed, '.' idle, ' ' off):");
    print!("{}", render_gantt(&discrete, 96));
    Ok(())
}
