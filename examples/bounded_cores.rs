//! The bounded-core side of the paper (§3): with fewer cores than tasks
//! SDEM is NP-hard via PARTITION, so practice needs heuristics. This
//! example pits the exact exponential solver against the LPT heuristic and
//! the convexity lower bound, and shows the balanced-partition structure
//! Theorem 1's reduction is built on.
//!
//! Run with: `cargo run --example bounded_cores`

use sdem::core::bounded;
use sdem::power::{CorePower, MemoryPower};
use sdem::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::new(
        CorePower::simple(0.0, 1.0, 3.0),
        MemoryPower::new(Watts::new(4.0)),
    );

    // A PARTITION-style instance: works {5,4,3,3,2,2,1} sum to 20, so a
    // perfect 10/10 split exists — exactly the structure that makes the
    // problem hard to certify in general.
    let works = [5.0, 4.0, 3.0, 3.0, 2.0, 2.0, 1.0];
    let tasks = TaskSet::new(
        works
            .iter()
            .enumerate()
            .map(|(i, &w)| Task::new(i, Time::ZERO, Time::from_secs(100.0), Cycles::new(w)))
            .collect(),
    )?;

    println!("works: {works:?} (total 20) on a common window [0, 100] s\n");
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>10}",
        "cores", "exact [J]", "LPT [J]", "lower bd [J]", "LPT gap"
    );
    for cores in 1..=4 {
        let exact = solve(&tasks, &platform, Scheme::BoundedExact(cores))?;
        let lpt = solve(&tasks, &platform, Scheme::BoundedLpt(cores))?;
        let lb = bounded::lower_bound(&tasks, &platform, cores);
        println!(
            "{:>6} {:>14.4} {:>14.4} {:>14.4} {:>9.2}%",
            cores,
            exact.predicted_energy().value(),
            lpt.predicted_energy().value(),
            lb.value(),
            (lpt.predicted_energy().value() / exact.predicted_energy().value() - 1.0) * 100.0,
        );
    }

    // Show the exact solver's balanced loads on two cores.
    let exact = solve(&tasks, &platform, Scheme::BoundedExact(2))?;
    let mut loads = [0.0f64; 2];
    for p in exact.schedule().placements() {
        loads[p.core().0] += p.executed_work().value();
    }
    println!(
        "\ntwo-core exact assignment balances the loads: {:?} — the PARTITION witness",
        loads
    );
    println!(
        "Eq. 3 closed form at that split: {:.4} J",
        bounded::partition_min_energy(&loads, &platform).value()
    );
    Ok(())
}
