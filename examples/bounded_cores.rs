//! The bounded-core side of the paper (§3): with fewer cores than tasks
//! SDEM is NP-hard via PARTITION, so practice needs heuristics. This
//! example pits the exact exponential solver against the LPT heuristic and
//! the convexity lower bound, shows the balanced-partition structure
//! Theorem 1's reduction is built on, and then walks the tiered solver:
//! the branch-and-bound past the enumerator's ceiling, LPT + refine at
//! large `n`, and `Scheme::BoundedAuto` routing by size.
//!
//! Run with: `cargo run --example bounded_cores`

use sdem::core::bounded;
use sdem::power::{CorePower, MemoryPower};
use sdem::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::new(
        CorePower::simple(0.0, 1.0, 3.0),
        MemoryPower::new(Watts::new(4.0)),
    );

    // A PARTITION-style instance: works {5,4,3,3,2,2,1} sum to 20, so a
    // perfect 10/10 split exists — exactly the structure that makes the
    // problem hard to certify in general.
    let works = [5.0, 4.0, 3.0, 3.0, 2.0, 2.0, 1.0];
    let tasks = TaskSet::new(
        works
            .iter()
            .enumerate()
            .map(|(i, &w)| Task::new(i, Time::ZERO, Time::from_secs(100.0), Cycles::new(w)))
            .collect(),
    )?;

    println!("works: {works:?} (total 20) on a common window [0, 100] s\n");
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>10}",
        "cores", "exact [J]", "LPT [J]", "lower bd [J]", "LPT gap"
    );
    for cores in 1..=4 {
        let exact = solve(&tasks, &platform, Scheme::BoundedExact(cores))?;
        let lpt = solve(&tasks, &platform, Scheme::BoundedLpt(cores))?;
        let lb = bounded::lower_bound(&tasks, &platform, cores);
        println!(
            "{:>6} {:>14.4} {:>14.4} {:>14.4} {:>9.2}%",
            cores,
            exact.predicted_energy().value(),
            lpt.predicted_energy().value(),
            lb.value(),
            (lpt.predicted_energy().value() / exact.predicted_energy().value() - 1.0) * 100.0,
        );
    }

    // Show the exact solver's balanced loads on two cores.
    let exact = solve(&tasks, &platform, Scheme::BoundedExact(2))?;
    let mut loads = [0.0f64; 2];
    for p in exact.schedule().placements() {
        loads[p.core().0] += p.executed_work().value();
    }
    println!(
        "\ntwo-core exact assignment balances the loads: {:?} — the PARTITION witness",
        loads
    );
    println!(
        "Eq. 3 closed form at that split: {:.4} J",
        bounded::partition_min_energy(&loads, &platform).value()
    );

    // --- The tiered solver (the README worked example) ---------------
    // 18 tasks, one shared 40 ms window, 4 cores: n = 18 > EXACT_LIMIT,
    // so Auto routes to the branch-and-bound (still provably optimal).
    let paper_platform = PlatformBuilder::new().build()?;
    let many = TaskSet::new(
        (0..18)
            .map(|i| {
                Task::new(
                    i,
                    Time::ZERO,
                    Time::from_millis(40.0),
                    Cycles::new(1.0e6 + (i % 7) as f64 * 1.0e6),
                )
            })
            .collect(),
    )?;
    let auto = solve(&many, &paper_platform, Scheme::BoundedAuto(4))?;
    let bnb = solve(&many, &paper_platform, Scheme::BoundedBnb(4))?;
    let refined = solve(&many, &paper_platform, Scheme::BoundedRefined(4))?;
    println!(
        "\nn = 18 > EXACT_LIMIT = {}: Auto routes to the branch-and-bound",
        bounded::EXACT_LIMIT
    );
    println!(
        "  BoundedAuto(4):    {:.6} J  (== BoundedBnb: {})",
        auto.predicted_energy().value(),
        auto.predicted_energy().value().to_bits() == bnb.predicted_energy().value().to_bits(),
    );
    println!(
        "  BoundedRefined(4): {:.6} J  (gap vs optimum {:+.3}%)",
        refined.predicted_energy().value(),
        (refined.predicted_energy().value() / bnb.predicted_energy().value() - 1.0) * 100.0,
    );
    Ok(())
}
