//! # sdem — Race to Idle or Not
//!
//! A faithful, from-scratch Rust reproduction of Fu, Chau, Li and Xue,
//! *"Race to idle or not: balancing the memory sleep time with DVS for
//! energy minimization"* (DATE 2015 / Real-Time Systems 2017).
//!
//! This umbrella crate re-exports the whole workspace so that downstream
//! users depend on a single crate:
//!
//! * [`types`] — tasks, schedules and strongly-typed quantities;
//! * [`power`] — core/memory power models, critical speeds, device presets;
//! * [`workload`] — synthetic and DSPstone-like workload generators;
//! * [`sim`] — the multi-core + shared-memory simulator and energy meter;
//! * [`core`] — the paper's SDEM algorithms (offline optimal schemes for
//!   common-release and agreeable deadlines, transition-overhead variants,
//!   the SDEM-ON online heuristic in unbounded and bounded-core forms, the
//!   exact/LPT bounded-core solvers, plus the heterogeneous-core and
//!   discrete-voltage extensions);
//! * [`baselines`] — YDS, Optimal Available, AVR, critical-speed scaling
//!   and MBKP/MBKPS.
//!
//! # Quickstart
//!
//! ```
//! use sdem::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Platform: ARM Cortex-A57 cores + 4 W DRAM (the paper's defaults).
//! let platform = Platform::new(CorePower::cortex_a57(), MemoryPower::dram_50nm());
//!
//! // Three tasks released together with individual deadlines.
//! let tasks = TaskSet::new(vec![
//!     Task::new(0, Time::ZERO, Time::from_millis(40.0), Cycles::new(8.0e6)),
//!     Task::new(1, Time::ZERO, Time::from_millis(70.0), Cycles::new(12.0e6)),
//!     Task::new(2, Time::ZERO, Time::from_millis(110.0), Cycles::new(20.0e6)),
//! ])?;
//!
//! // Optimal common-release schedule (cores sleep when idle: α ≠ 0 scheme).
//! let solution = sdem::core::common_release::schedule_alpha_nonzero(&tasks, &platform)?;
//! let report = simulate(solution.schedule(), &tasks, &platform, SleepPolicy::WhenProfitable)?;
//! assert!(report.total().value() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use sdem_baselines as baselines;
pub use sdem_core as core;
pub use sdem_power as power;
pub use sdem_sim as sim;
pub use sdem_types as types;
pub use sdem_workload as workload;

/// One-stop imports for examples and applications.
pub mod prelude {
    pub use sdem_power::{CorePower, MemoryPower, Platform};
    pub use sdem_sim::{simulate, EnergyReport, SleepPolicy};
    pub use sdem_types::{
        CoreId, Cycles, Joules, Placement, Schedule, Segment, Speed, Task, TaskId, TaskSet, Time,
        Watts,
    };
}
