//! # sdem — Race to Idle or Not
//!
//! A faithful, from-scratch Rust reproduction of Fu, Chau, Li and Xue,
//! *"Race to idle or not: balancing the memory sleep time with DVS for
//! energy minimization"* (DATE 2015 / Real-Time Systems 2017).
//!
//! This umbrella crate re-exports the whole workspace so that downstream
//! users depend on a single crate:
//!
//! * [`types`] — tasks, schedules and strongly-typed quantities;
//! * [`power`] — core/memory power models, critical speeds, device presets;
//! * [`workload`] — synthetic and DSPstone-like workload generators;
//! * [`sim`] — the multi-core + shared-memory simulator and energy meter;
//! * [`core`] — the paper's SDEM algorithms (offline optimal schemes for
//!   common-release and agreeable deadlines, transition-overhead variants,
//!   the SDEM-ON online heuristic in unbounded and bounded-core forms, the
//!   exact/LPT bounded-core solvers, plus the heterogeneous-core and
//!   discrete-voltage extensions);
//! * [`baselines`] — YDS, Optimal Available, AVR, critical-speed scaling
//!   and MBKP/MBKPS;
//! * [`exec`] — the parallel sweep engine (deterministic per-trial
//!   seeding, thread-count-invariant results);
//! * [`obs`] — opt-in counters, histograms and scoped tracing with a
//!   bit-transparent JSON export;
//! * [`serve`] — the persistent scheduling service: the versioned JSONL
//!   request/response API ([`serve::api`]), the canonicalized solve
//!   cache, and the worker-pool session runner behind `sdem-cli serve`;
//! * [`prng`] — the dependency-free seeded randomness behind workload
//!   generation and sweep seeding.
//!
//! # Quickstart
//!
//! ```
//! use sdem::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Platform: ARM Cortex-A57 cores + 4 W DRAM (the paper's defaults).
//! // The builder validates every knob (β > 0, λ > 1, break-evens ≥ 0).
//! let platform = PlatformBuilder::new().build()?;
//!
//! // Three tasks released together with individual deadlines.
//! let tasks = TaskSet::new(vec![
//!     Task::new(0, Time::ZERO, Time::from_millis(40.0), Cycles::new(8.0e6)),
//!     Task::new(1, Time::ZERO, Time::from_millis(70.0), Cycles::new(12.0e6)),
//!     Task::new(2, Time::ZERO, Time::from_millis(110.0), Cycles::new(20.0e6)),
//! ])?;
//!
//! // `Scheme::Auto` routes from the task-set shape: common release here,
//! // so the §7 overhead-aware optimal scheme runs.
//! let solution = solve(&tasks, &platform, Scheme::Auto)?;
//! let report = simulate(solution.schedule(), &tasks, &platform, SleepPolicy::WhenProfitable)?;
//! assert!(report.total().value() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use sdem_baselines as baselines;
pub use sdem_core as core;
pub use sdem_exec as exec;
pub use sdem_obs as obs;
pub use sdem_power as power;
pub use sdem_prng as prng;
pub use sdem_serve as serve;
pub use sdem_sim as sim;
pub use sdem_types as types;
pub use sdem_workload as workload;

/// One-stop imports for examples and applications.
///
/// This is the stable surface of the workspace: the `Scheme`-dispatched
/// solver entry points (`solve`/`solve_in` and their degradable
/// `solve_or_fallback` twins), the arena-backed [`Workspace`](sdem_types::Workspace), the power
/// and task vocabulary, and the serving API's wire types. The per-scheme
/// free functions (`schedule_alpha_zero`, `schedule_online`, …) are
/// deprecated aliases of these and will be removed in a future release.
pub mod prelude {
    pub use sdem_core::{
        solve, solve_in, solve_or_fallback, solve_or_fallback_in, Scheduler, Scheme, SdemError,
        Solution,
    };
    pub use sdem_power::{CorePower, MemoryPower, Platform, PlatformBuilder, PlatformError};
    pub use sdem_serve::{ApiError, SolveRequest, SolveResponse};
    pub use sdem_sim::{simulate, EnergyReport, SleepPolicy};
    pub use sdem_types::{
        CoreId, Cycles, ErrorKind, Joules, Placement, Schedule, Segment, Speed, Task, TaskId,
        TaskSet, Time, Watts, Workspace,
    };
}
