//! Discrete speed levels: the Ishihara–Yasuura transform.
//!
//! The paper assumes continuously variable speeds and argues (§3, citing
//! Ishihara and Yasuura 1998) that a continuous schedule transfers to a
//! processor with discrete voltage levels by splitting each run between
//! the two levels adjacent to the continuous speed, preserving both the
//! work and the time window. This module implements that transform so SDEM
//! schedules can be deployed on real DVFS tables.
//!
//! For a segment of length `T` at continuous speed `s` with adjacent
//! levels `s₁ ≤ s ≤ s₂`, run `t₂ = T·(s − s₁)/(s₂ − s₁)` at `s₂` followed
//! by `T − t₂` at `s₁`: total work `s₁·t₁ + s₂·t₂ = s·T` and the segment
//! still ends exactly at its original end. By convexity of the power curve
//! the dynamic-energy increase is bounded by the gap between adjacent
//! levels and vanishes as the table densifies.

use sdem_power::CorePower;
use sdem_types::{Placement, Schedule, Segment, Speed, Workspace};

use crate::SdemError;

/// A validated, ascending set of discrete speed levels.
///
/// # Examples
///
/// ```
/// use sdem_core::discrete::SpeedLevels;
/// use sdem_types::Speed;
///
/// let levels = SpeedLevels::new(vec![
///     Speed::from_mhz(700.0),
///     Speed::from_mhz(1200.0),
///     Speed::from_mhz(1900.0),
/// ]);
/// assert_eq!(levels.max().as_mhz(), 1900.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedLevels {
    levels: Vec<Speed>,
}

impl SpeedLevels {
    /// Creates a level table (sorted and deduplicated).
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty or contains a non-positive or
    /// non-finite speed.
    pub fn new(mut levels: Vec<Speed>) -> Self {
        assert!(!levels.is_empty(), "need at least one speed level");
        assert!(
            levels.iter().all(|s| s.is_finite() && s.value() > 0.0),
            "levels must be positive and finite"
        );
        levels.sort_by(Speed::total_cmp);
        levels.dedup();
        Self { levels }
    }

    /// An evenly spaced table of `n` levels across a core's
    /// `[min_speed, max_speed]` range (with a positive floor when the core
    /// has `min_speed = 0`).
    ///
    /// # Panics
    ///
    /// Panics if `n < 1`.
    pub fn evenly_spaced(core: &CorePower, n: usize) -> Self {
        assert!(n >= 1, "need at least one level");
        let hi = core.max_speed().as_hz();
        let lo = core.min_speed().as_hz().max(hi / 1e3);
        let levels = (0..n)
            .map(|k| {
                let f = if n == 1 {
                    1.0
                } else {
                    k as f64 / (n - 1) as f64
                };
                Speed::from_hz(lo + (hi - lo) * f)
            })
            .collect();
        Self::new(levels)
    }

    /// The slowest level.
    pub fn min(&self) -> Speed {
        self.levels[0]
    }

    /// The fastest level.
    pub fn max(&self) -> Speed {
        *self.levels.last().expect("non-empty")
    }

    /// All levels, ascending.
    pub fn levels(&self) -> &[Speed] {
        &self.levels
    }

    /// The pair of adjacent levels bracketing `s`
    /// (`(level, level)` when `s` matches a level or falls outside the
    /// table on the low side).
    pub fn bracket(&self, s: Speed) -> (Speed, Speed) {
        if s <= self.min() {
            return (self.min(), self.min());
        }
        for pair in self.levels.windows(2) {
            if s <= pair[1] {
                if s == pair[1] {
                    return (pair[1], pair[1]);
                }
                return (pair[0], pair[1]);
            }
        }
        (self.max(), self.max())
    }
}

/// Quantizes a continuous-speed schedule onto discrete levels, preserving
/// each segment's work and end time.
///
/// Speeds below the lowest level run at the lowest level and finish early
/// (the remainder of the segment idles); this only shortens busy time.
///
/// # Errors
///
/// [`SdemError::InfeasibleTask`] if a segment's speed exceeds the fastest
/// level.
///
/// # Examples
///
/// ```
/// use sdem_core::discrete::{quantize_schedule, SpeedLevels};
/// use sdem_types::{Schedule, Placement, TaskId, CoreId, Time, Speed};
///
/// let continuous = Schedule::new(vec![Placement::single(
///     TaskId(0), CoreId(0), Time::ZERO, Time::from_millis(10.0), Speed::from_mhz(1000.0),
/// )]);
/// let levels = SpeedLevels::new(vec![Speed::from_mhz(700.0), Speed::from_mhz(1900.0)]);
/// let discrete = quantize_schedule(&continuous, &levels)?;
/// // Work is preserved: 1000 MHz × 10 ms = 1e7 cycles.
/// let executed = discrete.placements()[0].executed_work();
/// assert!((executed.value() - 1.0e7).abs() < 1.0);
/// # Ok::<(), sdem_core::SdemError>(())
/// ```
pub fn quantize_schedule(schedule: &Schedule, levels: &SpeedLevels) -> Result<Schedule, SdemError> {
    quantize_schedule_in(schedule, levels, &mut Workspace::new())
}

/// In-place [`quantize_schedule`]: the output schedule's placement and
/// segment vectors are drawn from `ws`. Recycle the returned schedule
/// back into `ws` (`Workspace::recycle_schedule`) to keep the hot path
/// allocation-free.
///
/// # Errors
///
/// Same as [`quantize_schedule`].
pub fn quantize_schedule_in(
    schedule: &Schedule,
    levels: &SpeedLevels,
    ws: &mut Workspace,
) -> Result<Schedule, SdemError> {
    let mut placements = ws.take_placements();
    for p in schedule.placements() {
        let mut segments: Vec<Segment> = ws.take_segments();
        segments.reserve(p.segments().len() * 2);
        for seg in p.segments() {
            let s = seg.speed();
            if s > levels.max() * (1.0 + 1e-9) {
                return Err(SdemError::InfeasibleTask(p.task()));
            }
            let (lo, hi) = levels.bracket(s);
            if lo == hi {
                // Exactly on a level, or below the floor: run at the level
                // long enough to preserve work, then idle.
                let len = seg.work() / lo;
                let len = len.min(seg.length());
                segments.push(Segment::new(seg.start(), seg.start() + len, lo));
                continue;
            }
            // Ishihara–Yasuura split: fast part first, slow part second.
            let frac = (s.as_hz() - lo.as_hz()) / (hi.as_hz() - lo.as_hz());
            let t_hi = seg.length() * frac;
            let mid = seg.start() + t_hi;
            if t_hi.value() > 0.0 {
                segments.push(Segment::new(seg.start(), mid, hi));
            }
            if (seg.end() - mid).value() > 0.0 {
                segments.push(Segment::new(mid, seg.end(), lo));
            }
        }
        placements.push(Placement::new(p.task(), p.core(), segments));
    }
    Ok(Schedule::new(placements))
}

#[cfg(test)]
mod tests {
    // These tests keep exercising the deprecated convenience
    // wrappers so the legacy entry points stay covered until removal.
    #![allow(deprecated)]

    use super::*;
    use sdem_power::{MemoryPower, Platform};
    use sdem_sim::{simulate, SleepPolicy};
    use sdem_types::{CoreId, Cycles, Task, TaskId, TaskSet, Time, Watts};

    fn levels(v: &[f64]) -> SpeedLevels {
        SpeedLevels::new(v.iter().map(|&x| Speed::from_hz(x)).collect())
    }

    fn one_segment(speed: f64, len: f64) -> Schedule {
        Schedule::new(vec![Placement::single(
            TaskId(0),
            CoreId(0),
            Time::ZERO,
            Time::from_secs(len),
            Speed::from_hz(speed),
        )])
    }

    #[test]
    fn bracket_selection() {
        let l = levels(&[1.0, 2.0, 4.0]);
        assert_eq!(
            l.bracket(Speed::from_hz(0.5)),
            (Speed::from_hz(1.0), Speed::from_hz(1.0))
        );
        assert_eq!(
            l.bracket(Speed::from_hz(1.0)),
            (Speed::from_hz(1.0), Speed::from_hz(1.0))
        );
        assert_eq!(
            l.bracket(Speed::from_hz(1.5)),
            (Speed::from_hz(1.0), Speed::from_hz(2.0))
        );
        assert_eq!(
            l.bracket(Speed::from_hz(3.0)),
            (Speed::from_hz(2.0), Speed::from_hz(4.0))
        );
        assert_eq!(
            l.bracket(Speed::from_hz(9.0)),
            (Speed::from_hz(4.0), Speed::from_hz(4.0))
        );
    }

    #[test]
    fn split_preserves_work_and_window() {
        let sched = one_segment(1.5, 4.0); // 6 cycles
        let q = quantize_schedule(&sched, &levels(&[1.0, 2.0])).unwrap();
        let p = &q.placements()[0];
        assert_eq!(p.segments().len(), 2);
        assert!((p.executed_work().value() - 6.0).abs() < 1e-9);
        assert_eq!(p.end().unwrap(), Time::from_secs(4.0));
        // Fast half: t_hi = 4·(1.5−1)/(2−1) = 2 s at 2 Hz, then 2 s at 1 Hz.
        assert_eq!(p.segments()[0].speed(), Speed::from_hz(2.0));
        assert!((p.segments()[0].length().as_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn below_floor_runs_at_floor_and_finishes_early() {
        let sched = one_segment(0.5, 4.0); // 2 cycles
        let q = quantize_schedule(&sched, &levels(&[1.0, 2.0])).unwrap();
        let p = &q.placements()[0];
        assert_eq!(p.segments().len(), 1);
        assert_eq!(p.segments()[0].speed(), Speed::from_hz(1.0));
        assert!((p.busy_time().as_secs() - 2.0).abs() < 1e-12);
        assert!((p.executed_work().value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn above_ceiling_is_infeasible() {
        let sched = one_segment(5.0, 1.0);
        assert!(matches!(
            quantize_schedule(&sched, &levels(&[1.0, 2.0])),
            Err(SdemError::InfeasibleTask(TaskId(0)))
        ));
    }

    #[test]
    fn quantized_schedule_stays_valid_and_energy_converges() {
        // Quantize the §4.2 optimum onto coarser and finer tables: the
        // schedule stays valid and the energy approaches the continuous one.
        let core =
            sdem_power::CorePower::simple(4.0, 1.0, 3.0).with_max_speed(Speed::from_hz(10.0));
        let platform = Platform::new(core, MemoryPower::new(Watts::new(6.0)));
        let tasks = TaskSet::new(vec![
            Task::new(0, Time::ZERO, Time::from_secs(8.0), Cycles::new(2.0)),
            Task::new(1, Time::ZERO, Time::from_secs(12.0), Cycles::new(4.0)),
        ])
        .unwrap();
        let continuous = crate::common_release::schedule_alpha_nonzero(&tasks, &platform).unwrap();
        let e_cont = simulate(
            continuous.schedule(),
            &tasks,
            &platform,
            SleepPolicy::WhenProfitable,
        )
        .unwrap()
        .total()
        .value();

        let mut last_gap = f64::INFINITY;
        for n in [3usize, 9, 33, 129] {
            let table = SpeedLevels::evenly_spaced(&core, n);
            let q = quantize_schedule(continuous.schedule(), &table).unwrap();
            q.validate(&tasks).unwrap();
            let e_q = simulate(&q, &tasks, &platform, SleepPolicy::WhenProfitable)
                .unwrap()
                .total()
                .value();
            let gap = e_q - e_cont;
            assert!(gap >= -1e-9 * e_cont, "discrete beat continuous: {gap}");
            assert!(
                gap <= last_gap + 1e-9 * e_cont,
                "denser table did not converge: {gap} vs {last_gap}"
            );
            last_gap = gap;
        }
        assert!(last_gap <= 0.02 * e_cont, "129 levels still {last_gap} off");
    }

    #[test]
    fn evenly_spaced_covers_range() {
        let core = sdem_power::CorePower::cortex_a57();
        let t = SpeedLevels::evenly_spaced(&core, 5);
        assert_eq!(t.levels().len(), 5);
        assert!((t.min().as_mhz() - 700.0).abs() < 1e-9);
        assert!((t.max().as_mhz() - 1900.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one speed level")]
    fn rejects_empty_table() {
        let _ = SpeedLevels::new(vec![]);
    }
}
