//! Sim-oracle cross-check: analytic energy vs the `sdem-sim` meter.
//!
//! Every SDEM scheme returns a [`Solution`] whose `predicted_energy` comes
//! from a closed form. The oracle re-prices the *same* schedule with the
//! interval-sweep meter and fails loudly when the two disagree beyond a
//! relative tolerance — catching accounting drift between the analytic
//! layer (`sdem-core`) and the simulator (`sdem-sim`) the moment it
//! happens, instead of in a downstream figure.
//!
//! The caller picks the metering convention through
//! [`OracleOptions::sim`]: the default gap-convention
//! [`SimOptions`](sdem_sim::SimOptions) matches
//! [`Solution::from_schedule`] and the online schemes, while the §7
//! overhead schemes price under the horizon convention
//! (`SimOptions::default().with_horizon(t0, t1)`).
//!
//! # Examples
//!
//! ```
//! use sdem_core::{OracleOptions, Scheme, Scheduler};
//! use sdem_power::Platform;
//! use sdem_types::{Cycles, Task, TaskSet, Time};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let platform = Platform::paper_defaults();
//! let tasks = TaskSet::new(vec![
//!     Task::new(0, Time::ZERO, Time::from_millis(90.0), Cycles::new(6.0e6)),
//!     Task::new(1, Time::from_millis(10.0), Time::from_millis(60.0), Cycles::new(9.0e6)),
//! ])?;
//! let solution = Scheme::Online.solve(&tasks, &platform)?;
//! let metered = solution.verify_against_meter(&tasks, &platform, OracleOptions::default())?;
//! assert!(metered.value() > 0.0);
//! # Ok(())
//! # }
//! ```

use core::fmt;

use sdem_power::Platform;
use sdem_sim::{simulate_with_options, SimOptions};
use sdem_types::{Joules, ScheduleError, TaskSet};

use crate::Solution;

/// Relative tolerance the oracle applies when none is given explicitly.
pub const DEFAULT_ORACLE_TOLERANCE: f64 = 1e-6;

/// Options for [`Solution::verify_against_meter`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleOptions {
    /// Metering convention (policies, validation, horizon). Must match the
    /// convention of the scheme that produced the prediction; the default
    /// (gap convention, profitable sleeping) matches
    /// [`Solution::from_schedule`].
    pub sim: SimOptions,
    /// Maximum allowed relative divergence between the analytic and the
    /// metered total energy.
    pub rel_tol: f64,
}

impl OracleOptions {
    /// Oracle with the given metering convention and the default tolerance.
    pub fn with_sim(sim: SimOptions) -> Self {
        Self {
            sim,
            rel_tol: DEFAULT_ORACLE_TOLERANCE,
        }
    }

    /// Returns a copy with the relative tolerance set.
    ///
    /// # Panics
    ///
    /// Panics if `rel_tol` is negative or non-finite.
    #[must_use]
    pub fn with_tolerance(mut self, rel_tol: f64) -> Self {
        assert!(
            rel_tol.is_finite() && rel_tol >= 0.0,
            "oracle tolerance must be finite and non-negative"
        );
        self.rel_tol = rel_tol;
        self
    }
}

impl Default for OracleOptions {
    fn default() -> Self {
        Self::with_sim(SimOptions::default())
    }
}

/// Failure modes of the sim-oracle cross-check.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OracleError {
    /// The schedule failed the meter's validation (timing or speed limit).
    Schedule(ScheduleError),
    /// Analytic and metered energy diverge beyond the tolerance.
    Mismatch {
        /// The scheme's analytic energy.
        predicted: Joules,
        /// The meter's total for the same schedule.
        metered: Joules,
        /// Observed relative divergence.
        relative: f64,
        /// The tolerance that was exceeded.
        tolerance: f64,
    },
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Schedule(e) => write!(f, "oracle: schedule rejected by the meter: {e}"),
            Self::Mismatch {
                predicted,
                metered,
                relative,
                tolerance,
            } => write!(
                f,
                "oracle: analytic energy {} J vs metered {} J \
                 (relative divergence {relative:.3e} > tolerance {tolerance:.3e})",
                predicted.value(),
                metered.value(),
            ),
        }
    }
}

impl std::error::Error for OracleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Schedule(e) => Some(e),
            Self::Mismatch { .. } => None,
        }
    }
}

impl From<ScheduleError> for OracleError {
    fn from(e: ScheduleError) -> Self {
        Self::Schedule(e)
    }
}

/// Relative divergence of two energies, scaled by the larger magnitude
/// (zero when both are zero).
pub(crate) fn relative_divergence(a: Joules, b: Joules) -> f64 {
    let scale = a.value().abs().max(b.value().abs());
    if scale == 0.0 {
        0.0
    } else {
        (a.value() - b.value()).abs() / scale
    }
}

impl Solution {
    /// Meters this solution's schedule with `sdem-sim` and checks the
    /// analytic `predicted_energy` against the meter's total.
    ///
    /// Returns the metered total on agreement.
    ///
    /// # Errors
    ///
    /// [`OracleError::Schedule`] when the schedule fails validation,
    /// [`OracleError::Mismatch`] when the energies diverge beyond
    /// `options.rel_tol`.
    pub fn verify_against_meter(
        &self,
        tasks: &TaskSet,
        platform: &Platform,
        options: OracleOptions,
    ) -> Result<Joules, OracleError> {
        sdem_obs::registry::incr(sdem_obs::Counter::OracleChecks);
        let _span = sdem_obs::trace::span("oracle/verify");
        let report = simulate_with_options(self.schedule(), tasks, platform, options.sim)?;
        let metered = report.total();
        let relative = relative_divergence(self.predicted_energy(), metered);
        if relative > options.rel_tol {
            sdem_obs::registry::incr(sdem_obs::Counter::OracleFailures);
            return Err(OracleError::Mismatch {
                predicted: self.predicted_energy(),
                metered,
                relative,
                tolerance: options.rel_tol,
            });
        }
        Ok(metered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Scheduler, Scheme};
    use sdem_types::{Cycles, Task, Time};

    fn general_set() -> TaskSet {
        TaskSet::new(vec![
            Task::new(0, Time::ZERO, Time::from_millis(90.0), Cycles::new(6.0e6)),
            Task::new(
                1,
                Time::from_millis(10.0),
                Time::from_millis(60.0),
                Cycles::new(9.0e6),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn online_prediction_matches_meter() {
        let platform = Platform::paper_defaults();
        let tasks = general_set();
        let sol = Scheme::Online.solve(&tasks, &platform).unwrap();
        let metered = sol
            .verify_against_meter(&tasks, &platform, OracleOptions::default())
            .unwrap();
        assert!(relative_divergence(sol.predicted_energy(), metered) <= DEFAULT_ORACLE_TOLERANCE);
    }

    #[test]
    fn mismatch_is_reported_with_both_energies() {
        let platform = Platform::paper_defaults();
        let tasks = general_set();
        let sol = Scheme::Online.solve(&tasks, &platform).unwrap();
        // Corrupt the prediction: doubling it must trip the oracle.
        let bad = Solution::new(
            sol.schedule().clone(),
            sol.predicted_energy() + sol.predicted_energy(),
            sol.memory_sleep(),
        );
        let err = bad
            .verify_against_meter(&tasks, &platform, OracleOptions::default())
            .unwrap_err();
        match err {
            OracleError::Mismatch {
                relative,
                tolerance,
                ..
            } => {
                assert!(relative > 0.4, "expected ~0.5, got {relative}");
                assert_eq!(tolerance, DEFAULT_ORACLE_TOLERANCE);
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
        assert!(bad
            .verify_against_meter(
                &tasks,
                &platform,
                OracleOptions::default().with_tolerance(1.0)
            )
            .is_ok());
    }

    #[test]
    fn invalid_schedule_is_a_schedule_error() {
        let platform = Platform::paper_defaults();
        let tasks = general_set();
        // An empty schedule misses every task.
        let sol = Solution::new(sdem_types::Schedule::empty(), Joules::ZERO, Time::ZERO);
        let err = sol
            .verify_against_meter(&tasks, &platform, OracleOptions::default())
            .unwrap_err();
        assert!(matches!(err, OracleError::Schedule(_)), "{err:?}");
        assert!(err.to_string().contains("rejected"));
    }

    #[test]
    fn relative_divergence_handles_zero() {
        assert_eq!(relative_divergence(Joules::ZERO, Joules::ZERO), 0.0);
        assert!((relative_divergence(Joules::new(1.0), Joules::new(2.0)) - 0.5).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn rejects_negative_tolerance() {
        let _ = OracleOptions::default().with_tolerance(-1.0);
    }
}
