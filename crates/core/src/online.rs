//! SDEM-ON: the online heuristic for general task models (paper §6).
//!
//! Whenever a task arrives, the algorithm (1) drops completed tasks,
//! (2) treats every unfinished task's *remaining* work as a fresh task
//! released now, (3) solves the resulting common-release instance optimally
//! (§4.1 / §4.2 / §7 depending on the platform), (4) reads off each task's
//! planned execution time `p_j` and *latest start* `d_j − p_j`, and
//! (5) keeps the memory (and cores) asleep until the earliest latest start,
//! at which point **all** current tasks begin executing. Postponing this way
//! maximizes the chance that future arrivals overlap the busy interval —
//! the core idea separating SDEM-ON from race-to-completion baselines.
//!
//! Preemption is allowed in the online model: a new arrival re-plans the
//! speeds of running tasks, so placements may carry several segments.
//!
//! **Deviation from the paper's experimental setup** (documented in
//! `DESIGN.md`): tasks are assigned to the lowest-indexed *free* core
//! rather than blindly round-robin, so the produced schedule is always
//! per-core exclusive. The pool grows on demand; callers enforcing the
//! paper's 8-core assumption can check [`sdem_types::Schedule::cores_used`].

use sdem_power::Platform;
use sdem_types::{
    CoreId, Placement, Schedule, Segment, Speed, Task, TaskId, TaskRow, TaskSet, TaskSoa, Time,
    Workspace,
};

use crate::{common_release, overhead, SdemError};

/// Which inner common-release solver SDEM-ON re-runs at each arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InnerSolver {
    /// Pick automatically from the platform: the §7 solver when any
    /// break-even time is non-zero, else §4.2 when `α ≠ 0`, else §4.1.
    #[default]
    Auto,
    /// Force the §4.1 scheme (`α = 0`).
    AlphaZero,
    /// Force the §4.2 scheme (`α ≠ 0`).
    AlphaNonzero,
    /// Force the §7 overhead-aware scheme.
    Overhead,
}

impl InnerSolver {
    fn resolve(self, platform: &Platform) -> Self {
        if self != Self::Auto {
            return self;
        }
        let has_overhead = platform.core().break_even().value() > 0.0
            || platform.memory().break_even().value() > 0.0;
        if has_overhead {
            Self::Overhead
        } else if platform.core().is_alpha_zero() {
            Self::AlphaZero
        } else {
            Self::AlphaNonzero
        }
    }
}

/// The unfinished tasks tracked by the scheduler, as parallel pooled
/// columns over the task set's SoA view (one row per live task, removed
/// in lockstep on completion):
///
/// * `idx[k]` — row in the [`TaskSoa`] (id, deadline, work lookups),
/// * `placements[k]` — the accumulating result (task, core, segments),
/// * `remaining[k]` — work left, in cycles,
/// * `plans[k]` — the current plan `(id, start, end, speed)`; a NaN start
///   marks "no plan" (the row form has no `Option`).
struct LiveLists {
    idx: Vec<usize>,
    placements: Vec<Placement>,
    remaining: Vec<f64>,
    plans: Vec<TaskRow>,
}

impl LiveLists {
    const NO_PLAN: f64 = f64::NAN;

    fn take(ws: &mut Workspace) -> Self {
        Self {
            idx: ws.take_usizes(),
            placements: ws.take_placements(),
            remaining: ws.take_f64s(),
            plans: ws.take_rows(),
        }
    }

    fn recycle(mut self, ws: &mut Workspace) {
        ws.recycle_rows(self.plans);
        ws.recycle_f64s(self.remaining);
        // Rows survive to here only on error paths; tear their segment
        // buffers down into the pool rather than dropping them.
        for placement in self.placements.drain(..) {
            ws.recycle_segments(placement.into_segments());
        }
        ws.recycle_placements(self.placements);
        ws.recycle_usizes(self.idx);
    }

    fn len(&self) -> usize {
        self.placements.len()
    }

    fn is_empty(&self) -> bool {
        self.placements.is_empty()
    }

    fn push(&mut self, soa_index: usize, placement: Placement, remaining: f64) {
        let id = placement.task();
        self.idx.push(soa_index);
        self.placements.push(placement);
        self.remaining.push(remaining);
        self.plans.push((id, Self::NO_PLAN, 0.0, 0.0));
    }

    /// Removes row `k` preserving order (completion order feeds the
    /// finished-placement order, which downstream meters sum in).
    fn remove(&mut self, k: usize) -> Placement {
        self.idx.remove(k);
        self.remaining.remove(k);
        self.plans.remove(k);
        self.placements.remove(k)
    }
}

/// Runs SDEM-ON over a general task set, producing the explicit schedule.
///
/// Arrivals are processed in release order; the returned schedule contains
/// one (possibly multi-segment) placement per task and validates against
/// the task set and the platform's maximum speed.
///
/// # Errors
///
/// [`SdemError::InfeasibleTask`] if some (remaining) task cannot meet its
/// deadline at `s_up`.
///
/// # Examples
///
/// ```
/// use sdem_core::online::schedule_online;
/// use sdem_power::Platform;
/// use sdem_types::{Task, TaskSet, Time, Cycles};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let platform = Platform::paper_defaults();
/// let tasks = TaskSet::new(vec![
///     Task::new(0, Time::ZERO, Time::from_millis(60.0), Cycles::new(1.0e7)),
///     Task::new(1, Time::from_millis(15.0), Time::from_millis(100.0), Cycles::new(2.0e7)),
/// ])?;
/// let schedule = schedule_online(&tasks, &platform)?;
/// schedule.validate(&tasks)?;
/// # Ok(())
/// # }
/// ```
#[deprecated(
    since = "0.1.0",
    note = "call `solve(tasks, platform, Scheme::Online)` from the crate root (then `Solution::into_schedule`), or `schedule_online_in` to reuse a `Workspace`"
)]
pub fn schedule_online(tasks: &TaskSet, platform: &Platform) -> Result<Schedule, SdemError> {
    schedule_online_with(tasks, platform, InnerSolver::Auto)
}

/// In-place [`schedule_online`]: scratch buffers and the returned
/// schedule's arenas are drawn from `ws`.
///
/// # Errors
///
/// Same as [`schedule_online`].
pub fn schedule_online_in(
    tasks: &TaskSet,
    platform: &Platform,
    ws: &mut Workspace,
) -> Result<Schedule, SdemError> {
    schedule_online_impl(tasks, platform, InnerSolver::Auto, None, ws)
}

/// [`schedule_online`] with an explicit inner-solver choice.
///
/// # Errors
///
/// Same as [`schedule_online`].
pub fn schedule_online_with(
    tasks: &TaskSet,
    platform: &Platform,
    solver: InnerSolver,
) -> Result<Schedule, SdemError> {
    schedule_online_impl(tasks, platform, solver, None, &mut Workspace::new())
}

/// Bounded-core SDEM-ON: like [`schedule_online`] but never uses more than
/// `max_cores` cores. An arrival finding every core claimed *waits*; each
/// time a core frees, the waiting task with the earliest deadline is
/// admitted and the common-release plan is recomputed. A waiting task's
/// window shrinks while it queues, so overload can make the instance
/// infeasible — exactly the burst failure mode §3 of the paper argues any
/// bounded real-time system exhibits.
///
/// With `max_cores ≥ tasks.len()` this is identical to the unbounded
/// heuristic.
///
/// # Errors
///
/// [`SdemError::NoCores`] if `max_cores == 0`;
/// [`SdemError::InfeasibleTask`] when a (possibly queued) task can no
/// longer meet its deadline at `s_up`.
///
/// # Examples
///
/// ```
/// use sdem_core::online::schedule_online_bounded;
/// use sdem_power::Platform;
/// use sdem_types::{Task, TaskSet, Time, Cycles};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let platform = Platform::paper_defaults();
/// let tasks = TaskSet::new(vec![
///     Task::new(0, Time::ZERO, Time::from_millis(60.0), Cycles::new(1.0e7)),
///     Task::new(1, Time::ZERO, Time::from_millis(90.0), Cycles::new(1.2e7)),
///     Task::new(2, Time::ZERO, Time::from_millis(120.0), Cycles::new(8.0e6)),
/// ])?;
/// let schedule = schedule_online_bounded(&tasks, &platform, 2)?;
/// schedule.validate(&tasks)?;
/// assert!(schedule.cores_used() <= 2);
/// # Ok(())
/// # }
/// ```
#[deprecated(
    since = "0.1.0",
    note = "call `solve(tasks, platform, Scheme::OnlineBounded(max_cores))` from the crate root (then `Solution::into_schedule`), or `schedule_online_bounded_in` to reuse a `Workspace`"
)]
pub fn schedule_online_bounded(
    tasks: &TaskSet,
    platform: &Platform,
    max_cores: usize,
) -> Result<Schedule, SdemError> {
    schedule_online_bounded_in(tasks, platform, max_cores, &mut Workspace::new())
}

/// In-place [`schedule_online_bounded`].
///
/// # Errors
///
/// Same as [`schedule_online_bounded`].
pub fn schedule_online_bounded_in(
    tasks: &TaskSet,
    platform: &Platform,
    max_cores: usize,
    ws: &mut Workspace,
) -> Result<Schedule, SdemError> {
    if max_cores == 0 {
        return Err(SdemError::NoCores);
    }
    schedule_online_impl(tasks, platform, InnerSolver::Auto, Some(max_cores), ws)
}

fn schedule_online_impl(
    tasks: &TaskSet,
    platform: &Platform,
    solver: InnerSolver,
    max_cores: Option<usize>,
    ws: &mut Workspace,
) -> Result<Schedule, SdemError> {
    let solver = solver.resolve(platform);
    // SoA hot view: the event loop only ever reads one column at a time
    // (releases for the arrival scan, deadlines for admission order), and
    // live/waiting become index vectors over it.
    let mut soa = ws.take_soa();
    tasks.fill_soa(&mut soa);
    let mut order = ws.take_usizes();
    soa.arrival_order_into(&mut order);
    let mut finished: Vec<Placement> = ws.take_placements();
    finished.reserve(tasks.len());
    let mut live = LiveLists::take(ws);
    let mut cores_busy: Vec<bool> = ws.take_bools();
    // Tasks that arrived but found no free core (bounded mode only), as
    // SoA row indices.
    let mut waiting: Vec<usize> = ws.take_usizes();

    let mut i = 0;
    let mut now = order.first().map(|&j| soa.releases[j]).unwrap_or(0.0);
    let result = 'run: loop {
        // Next event: the next arrival, or — while tasks wait for a core —
        // the earliest planned completion.
        let next_arrival = order.get(i).map(|&j| soa.releases[j]);
        let next_completion = if waiting.is_empty() {
            None
        } else {
            live.plans
                .iter()
                .filter(|p| !p.1.is_nan())
                .map(|p| p.2)
                .min_by(f64::total_cmp)
        };
        now = match (next_arrival, next_completion) {
            (Some(a), Some(c)) => a.min(c),
            (Some(a), None) => a,
            (None, Some(c)) => c,
            (None, None) => break 'run Ok(()),
        }
        .max(now);

        // Advance existing plans up to the event (frees cores).
        advance(&mut live, &mut finished, &mut cores_busy, now);

        // Admit every task arriving exactly now.
        while i < order.len() && soa.releases[order[i]] <= now + 1e-15 {
            let j = order[i];
            i += 1;
            if !soa.flags[j] {
                // Zero-work tasks never execute: no core contention.
                finished.push(Placement::new(
                    TaskId(soa.ids[j]),
                    CoreId(0),
                    ws.take_segments(),
                ));
                continue;
            }
            waiting.push(j);
        }

        // Order waiting tasks earliest deadline first. The keyed argsort
        // (deadline, queue position) reproduces the stable sort without
        // its merge-buffer allocation.
        let mut keyed = ws.take_keyed();
        keyed.extend(
            waiting
                .iter()
                .enumerate()
                .map(|(pos, &j)| (soa.deadlines[j], pos)),
        );
        keyed.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut scratch = ws.take_usizes();
        scratch.extend(keyed.iter().map(|&(_, pos)| waiting[pos]));
        core::mem::swap(&mut waiting, &mut scratch);
        ws.recycle_usizes(scratch);
        ws.recycle_keyed(keyed);

        // Move waiting tasks onto free cores.
        while !waiting.is_empty() {
            let pool_full = match max_cores {
                Some(c) => cores_busy.iter().filter(|&&b| b).count() >= c,
                None => false,
            };
            if pool_full {
                break;
            }
            let j = waiting.remove(0);
            let remaining = soa.works[j];
            // A queued task whose window closed is a hard failure.
            if soa.deadlines[j] <= now && remaining > 0.0 {
                break 'run Err(SdemError::InfeasibleTask(TaskId(soa.ids[j])));
            }
            let core = alloc_core(&mut cores_busy);
            live.push(
                j,
                Placement::new(TaskId(soa.ids[j]), CoreId(core), ws.take_segments()),
                remaining,
            );
        }

        if let Err(e) = replan(&mut live, &soa, platform, solver, Time::from_secs(now), ws) {
            break 'run Err(e);
        }
    };
    if result.is_ok() {
        // No more events: run every remaining plan to completion.
        advance(&mut live, &mut finished, &mut cores_busy, f64::INFINITY);
        debug_assert!(live.is_empty(), "all tasks must complete");
        debug_assert!(waiting.is_empty(), "no task may be left waiting");
    }
    ws.recycle_usizes(waiting);
    ws.recycle_bools(cores_busy);
    live.recycle(ws);
    ws.recycle_usizes(order);
    ws.recycle_soa(soa);
    match result {
        Ok(()) => Ok(Schedule::new(finished)),
        Err(e) => {
            // Error path: tear the partial schedule back down so even a
            // quarantined trial leaves the workspace warm.
            for placement in finished.drain(..) {
                ws.recycle_segments(placement.into_segments());
            }
            ws.recycle_placements(finished);
            Err(e)
        }
    }
}

/// Allocates the lowest-indexed free core.
fn alloc_core(cores: &mut Vec<bool>) -> usize {
    if let Some(idx) = cores.iter().position(|&b| !b) {
        cores[idx] = true;
        idx
    } else {
        cores.push(true);
        cores.len() - 1
    }
}

/// Executes current plans up to `until` (absolute seconds): extends
/// segments, reduces remaining work, finalizes completed tasks.
fn advance(live: &mut LiveLists, finished: &mut Vec<Placement>, cores: &mut [bool], until: f64) {
    let mut k = 0;
    while k < live.len() {
        let (_, start, end, speed) = live.plans[k];
        if !start.is_nan() {
            let run_end = end.min(until);
            if run_end > start {
                live.placements[k].push_segment(Segment::new(
                    Time::from_secs(start),
                    Time::from_secs(run_end),
                    Speed::from_hz(speed),
                ));
                live.remaining[k] -= speed * (run_end - start);
            }
            if end <= until || live.remaining[k] <= 1e-6 * live.remaining[k].abs().max(1.0) {
                // Completed: emit the placement and free the core.
                let done = live.remove(k);
                cores[done.core().0] = false;
                finished.push(done);
                continue;
            }
            live.plans[k].1 = LiveLists::NO_PLAN;
        }
        k += 1;
    }
}

/// Re-solves the common-release instance at `now` and installs fresh plans.
fn replan(
    live: &mut LiveLists,
    soa: &TaskSoa,
    platform: &Platform,
    solver: InnerSolver,
    now: Time,
    ws: &mut Workspace,
) -> Result<(), SdemError> {
    if live.is_empty() {
        return Ok(());
    }
    // Fresh common-release instance from the remaining work; the task
    // vector is recycled after the solve.
    let mut roster = ws.take_tasks();
    roster.extend(
        live.idx
            .iter()
            .zip(live.remaining.iter())
            .map(|(&j, &rem)| {
                Task::new(
                    soa.ids[j],
                    now,
                    Time::from_secs(soa.deadlines[j]),
                    sdem_types::Cycles::new(rem.max(0.0)),
                )
            }),
    );
    let instance = TaskSet::new_in(roster, ws).expect("live tasks have positive windows");

    let solution = match solver {
        InnerSolver::AlphaZero => common_release::schedule_alpha_zero_in(&instance, platform, ws)?,
        InnerSolver::AlphaNonzero => {
            common_release::schedule_alpha_nonzero_in(&instance, platform, ws)?
        }
        InnerSolver::Overhead => overhead::schedule_common_release_in(&instance, platform, ws)?,
        InnerSolver::Auto => unreachable!("resolved above"),
    };

    // Latest start per task; the block wakes at the earliest of them.
    let mut wake = f64::INFINITY;
    let mut exec: Vec<f64> = ws.take_f64s();
    for (k, &j) in live.idx.iter().enumerate() {
        let p_j = solution
            .schedule()
            .placement(live.plans[k].0)
            .map(|p| p.busy_time().as_secs())
            .unwrap_or(0.0);
        exec.push(p_j);
        if p_j > 0.0 {
            wake = wake.min(soa.deadlines[j] - p_j);
        }
    }
    let wake = wake.max(now.as_secs());
    for (k, &p_j) in exec.iter().enumerate() {
        if p_j > 0.0 {
            live.plans[k] = (live.plans[k].0, wake, wake + p_j, live.remaining[k] / p_j);
        }
    }
    ws.recycle_f64s(exec);
    ws.recycle_schedule(solution.into_schedule());
    ws.recycle_tasks(instance.into_tasks());
    Ok(())
}

#[cfg(test)]
mod tests {
    // These tests keep exercising the deprecated convenience
    // wrappers so the legacy entry points stay covered until removal.
    #![allow(deprecated)]

    use super::*;
    use sdem_power::{CorePower, MemoryPower};
    use sdem_sim::{simulate, SleepPolicy};
    use sdem_types::{Cycles, Watts};

    fn sec(v: f64) -> Time {
        Time::from_secs(v)
    }

    fn platform(alpha: f64, alpha_m: f64) -> Platform {
        Platform::new(
            CorePower::simple(alpha, 1.0, 3.0),
            MemoryPower::new(Watts::new(alpha_m)),
        )
    }

    fn tset(specs: &[(f64, f64, f64)]) -> TaskSet {
        TaskSet::new(
            specs
                .iter()
                .enumerate()
                .map(|(i, &(r, d, w))| Task::new(i, sec(r), sec(d), Cycles::new(w)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn single_task_matches_offline_optimum() {
        let p = platform(0.0, 4.0);
        let tasks = tset(&[(0.0, 10.0, 2.0)]);
        let sched = schedule_online(&tasks, &p).unwrap();
        sched.validate(&tasks).unwrap();
        let online_e = simulate(&sched, &tasks, &p, SleepPolicy::WhenProfitable)
            .unwrap()
            .total();
        let offline = common_release::schedule_alpha_zero(&tasks, &p).unwrap();
        assert!(
            (online_e.value() - offline.predicted_energy().value()).abs()
                < 1e-9 * offline.predicted_energy().value(),
            "online {online_e} vs offline {}",
            offline.predicted_energy()
        );
        // The single task is postponed: it should start strictly after 0.
        let pl = sched.placement(TaskId(0)).unwrap();
        assert!(pl.start().unwrap().as_secs() > 0.0);
    }

    #[test]
    fn common_release_instance_matches_offline() {
        // All tasks arrive together ⇒ one plan, never revised.
        let p = platform(0.0, 4.0);
        let tasks = tset(&[(0.0, 5.0, 1.0), (0.0, 9.0, 2.0), (0.0, 12.0, 1.5)]);
        let sched = schedule_online(&tasks, &p).unwrap();
        sched.validate(&tasks).unwrap();
        let online_e = simulate(&sched, &tasks, &p, SleepPolicy::WhenProfitable)
            .unwrap()
            .total()
            .value();
        let offline = common_release::schedule_alpha_zero(&tasks, &p)
            .unwrap()
            .predicted_energy()
            .value();
        assert!(
            (online_e - offline).abs() < 1e-6 * offline,
            "online {online_e} vs offline {offline}"
        );
    }

    #[test]
    fn staggered_arrivals_meet_deadlines() {
        let p = platform(4.0, 6.0);
        let tasks = tset(&[
            (0.0, 6.0, 2.0),
            (1.0, 9.0, 3.0),
            (2.5, 14.0, 1.5),
            (8.0, 20.0, 4.0),
            (8.0, 25.0, 2.0),
        ]);
        let sched = schedule_online(&tasks, &p).unwrap();
        sched.validate(&tasks).unwrap();
    }

    #[test]
    fn tasks_on_free_cores_never_overlap() {
        let p = platform(0.0, 2.0);
        let tasks = tset(&[
            (0.0, 4.0, 2.0),
            (0.5, 6.0, 2.0),
            (1.0, 8.0, 2.0),
            (6.5, 12.0, 2.0),
        ]);
        let sched = schedule_online(&tasks, &p).unwrap();
        sched.validate(&tasks).unwrap(); // validate() checks core exclusivity
    }

    #[test]
    fn postponement_merges_bursty_arrivals() {
        // Task A alone would run early; task B arrives shortly after.
        // SDEM-ON should overlap them into one memory busy window.
        let p = platform(0.0, 10.0);
        let tasks = tset(&[(0.0, 20.0, 1.0), (1.0, 20.0, 1.0)]);
        let sched = schedule_online(&tasks, &p).unwrap();
        sched.validate(&tasks).unwrap();
        assert_eq!(
            sched.memory_busy_intervals().len(),
            1,
            "bursty arrivals should share one busy interval"
        );
    }

    #[test]
    fn respects_max_speed_under_pressure() {
        let core = CorePower::simple(0.0, 1.0, 3.0).with_max_speed(Speed::from_hz(2.0));
        let p = Platform::new(core, MemoryPower::new(Watts::new(100.0)));
        let tasks = tset(&[(0.0, 3.0, 4.0), (1.0, 6.0, 6.0)]);
        let sched = schedule_online(&tasks, &p).unwrap();
        sched
            .validate_with_limits(&tasks, None, Some(Speed::from_hz(2.0)))
            .unwrap();
    }

    #[test]
    fn infeasible_remaining_work_is_reported() {
        let core = CorePower::simple(0.0, 1.0, 3.0).with_max_speed(Speed::from_hz(1.0));
        let p = Platform::new(core, MemoryPower::new(Watts::new(1.0)));
        let tasks = tset(&[(0.0, 2.0, 5.0)]);
        assert!(matches!(
            schedule_online(&tasks, &p),
            Err(SdemError::InfeasibleTask(_))
        ));
    }

    #[test]
    fn zero_work_tasks_complete_instantly() {
        let p = platform(0.0, 1.0);
        let tasks = tset(&[(0.0, 5.0, 0.0), (0.0, 5.0, 1.0)]);
        let sched = schedule_online(&tasks, &p).unwrap();
        sched.validate(&tasks).unwrap();
        assert!(sched.placement(TaskId(0)).unwrap().segments().is_empty());
    }

    #[test]
    fn overhead_solver_is_selected_automatically() {
        let mem = MemoryPower::new(Watts::new(4.0)).with_break_even(sec(0.5));
        let p = Platform::new(CorePower::simple(1.0, 1.0, 3.0), mem);
        assert_eq!(InnerSolver::Auto.resolve(&p), InnerSolver::Overhead);
        let p0 = platform(0.0, 4.0);
        assert_eq!(InnerSolver::Auto.resolve(&p0), InnerSolver::AlphaZero);
        let p1 = platform(2.0, 4.0);
        assert_eq!(InnerSolver::Auto.resolve(&p1), InnerSolver::AlphaNonzero);
        // And it runs end-to-end.
        let tasks = tset(&[(0.0, 6.0, 2.0), (1.0, 9.0, 3.0)]);
        let sched = schedule_online(&tasks, &p).unwrap();
        sched.validate(&tasks).unwrap();
    }

    #[test]
    fn bounded_respects_core_cap_and_matches_unbounded_when_loose() {
        let p = platform(4.0, 6.0);
        let tasks = tset(&[
            (0.0, 6.0, 2.0),
            (0.0, 9.0, 3.0),
            (0.5, 14.0, 1.5),
            (1.0, 20.0, 4.0),
        ]);
        // Loose cap: identical to the unbounded heuristic.
        let unbounded = schedule_online(&tasks, &p).unwrap();
        let loose = schedule_online_bounded(&tasks, &p, 16).unwrap();
        let e = |s: &Schedule| {
            sdem_sim::simulate(s, &tasks, &p, sdem_sim::SleepPolicy::WhenProfitable)
                .unwrap()
                .total()
                .value()
        };
        assert!((e(&unbounded) - e(&loose)).abs() <= 1e-9 * e(&unbounded));

        // Tight cap: still valid, never more than 2 cores.
        let tight = schedule_online_bounded(&tasks, &p, 2).unwrap();
        tight.validate(&tasks).unwrap();
        assert!(tight.cores_used() <= 2, "used {} cores", tight.cores_used());
    }

    #[test]
    fn bounded_single_core_serializes_execution() {
        let p = platform(0.0, 2.0);
        let tasks = tset(&[(0.0, 10.0, 2.0), (0.0, 20.0, 2.0), (0.0, 30.0, 2.0)]);
        let sched = schedule_online_bounded(&tasks, &p, 1).unwrap();
        sched.validate(&tasks).unwrap(); // per-core exclusivity included
        assert_eq!(sched.cores_used(), 1);
    }

    #[test]
    fn bounded_overload_is_reported_infeasible() {
        // Three same-deadline tasks, each needing half the window at s_up,
        // on one core: the third cannot fit.
        let core = CorePower::simple(0.0, 1.0, 3.0).with_max_speed(Speed::from_hz(1.0));
        let p = Platform::new(core, MemoryPower::new(Watts::new(1.0)));
        let tasks = tset(&[(0.0, 2.0, 1.0), (0.0, 2.0, 1.0), (0.0, 2.0, 1.0)]);
        assert!(schedule_online_bounded(&tasks, &p, 3).is_ok());
        assert!(matches!(
            schedule_online_bounded(&tasks, &p, 2),
            Err(SdemError::InfeasibleTask(_))
        ));
        assert_eq!(
            schedule_online_bounded(&tasks, &p, 0),
            Err(SdemError::NoCores)
        );
    }

    #[test]
    fn preempted_tasks_carry_multiple_segments() {
        // With α_m = 2, task A's solo plan starts at ~0.1 and runs to its
        // deadline; task B arrives mid-flight at t = 1 and forces a replan,
        // so A's placement carries at least two segments.
        let p = platform(0.0, 2.0);
        let tasks = tset(&[(0.0, 2.0, 1.9), (1.0, 30.0, 1.0)]);
        let sched = schedule_online(&tasks, &p).unwrap();
        sched.validate(&tasks).unwrap();
        assert!(
            sched.placement(TaskId(0)).unwrap().segments().len() >= 2,
            "expected a mid-flight replan to split task 0's execution"
        );
    }
}
