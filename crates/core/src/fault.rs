//! The workspace-wide trial-error taxonomy and the degraded-mode
//! fallback chain.
//!
//! Large sweeps (Figs. 6–7 run tens of thousands of randomized trials)
//! must survive individual failures instead of aborting the campaign.
//! This module provides the two halves of that contract in `sdem-core`:
//!
//! * [`TrialError`] — every way one trial can fail, as a typed value
//!   (infeasible input, non-finite energy, oracle divergence carrying
//!   both values, a caught solver panic, …) instead of an ad-hoc panic.
//!   The sweep layer (`sdem-exec`) quarantines these; `kind()` gives the
//!   stable machine-readable class written to `quarantine.jsonl`.
//! * [`solve_or_fallback`] — the degraded-mode chain: run the requested
//!   scheme, and on error, panic, or a non-finite result fall back to
//!   the always-feasible race-to-idle baseline (every task on its own
//!   core at `s_max`), flagging the solution
//!   [`degraded`](Solution::is_degraded) so aggregates can report an
//!   explicit degraded-trial count.

use core::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use sdem_power::Platform;
use sdem_types::{
    CoreId, Placement, Schedule, ScheduleError, Segment, TaskSet, TaskSetError, Workspace,
};

use crate::scheduler::Scheduler;
use crate::solution::{SdemError, Solution};
use crate::Scheme;

/// Every way a single sweep trial can fail.
///
/// The taxonomy replaces the ad-hoc panics the bench trial path used to
/// raise: each failure is a value that the quarantine layer records (with
/// the exact trial seed) and `sdem-cli repro` replays. Variants carry the
/// data a diagnosis needs — an oracle divergence keeps **both** energies,
/// a contained panic keeps its payload.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TrialError {
    /// The selected scheme rejected the instance.
    Scheme(SdemError),
    /// The generated task set was invalid (empty, duplicate ids,
    /// non-finite fields, …).
    TaskSet(TaskSetError),
    /// A baseline scheduler (MBKP family) rejected the instance.
    Baseline(String),
    /// The event-driven simulator rejected a schedule.
    Simulation(ScheduleError),
    /// A scheme or simulator produced a NaN/∞ energy or speed.
    NonFiniteEnergy {
        /// Which quantity went non-finite (e.g. `"SDEM-ON system energy"`).
        context: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The analytic prediction and the metered energy disagreed beyond
    /// the oracle tolerance.
    OracleDivergence {
        /// Which cross-check diverged (e.g. `"SDEM-ON analytic vs meter"`).
        check: String,
        /// The analytic (predicted) energy in joules.
        predicted: f64,
        /// The metered (simulated) energy in joules.
        metered: f64,
        /// `|predicted − metered| / max(|predicted|, |metered|)`.
        relative: f64,
        /// The tolerance the check ran under.
        tolerance: f64,
    },
    /// A solver panicked; the payload was captured by `catch_unwind`.
    SolverPanic {
        /// The panic payload, rendered as text.
        payload: String,
    },
    /// Every retry seed in the trial's budget produced a resamplable
    /// failure.
    RetryBudgetExhausted {
        /// Seeds attempted before giving up.
        attempts: usize,
    },
}

impl TrialError {
    /// Classifies this error in the workspace-wide
    /// [`ErrorKind`](sdem_types::ErrorKind) taxonomy shared by quarantine
    /// records, the `sdem-serve` wire protocol and CLI exit codes.
    pub const fn error_kind(&self) -> sdem_types::ErrorKind {
        use sdem_types::ErrorKind;
        match self {
            Self::Scheme(_) => ErrorKind::SchemeError,
            Self::TaskSet(_) => ErrorKind::InfeasibleInput,
            Self::Baseline(_) => ErrorKind::BaselineError,
            Self::Simulation(_) => ErrorKind::SimulationError,
            Self::NonFiniteEnergy { .. } => ErrorKind::NonFiniteEnergy,
            Self::OracleDivergence { .. } => ErrorKind::OracleDivergence,
            Self::SolverPanic { .. } => ErrorKind::SolverPanic,
            Self::RetryBudgetExhausted { .. } => ErrorKind::RetryBudgetExhausted,
        }
    }

    /// Stable, machine-readable failure class (the `kind` field of a
    /// quarantine record): the string code of [`Self::error_kind`].
    pub const fn kind(&self) -> &'static str {
        self.error_kind().code()
    }

    /// Whether drawing a fresh seed may make the trial succeed. True for
    /// instance-shaped failures (a randomly infeasible task set); false
    /// for failures that indicate a bug (panic, NaN, oracle divergence),
    /// which must be quarantined on first sight rather than hidden by
    /// resampling.
    pub fn is_resamplable(&self) -> bool {
        matches!(self, Self::Scheme(_) | Self::TaskSet(_) | Self::Baseline(_))
    }
}

impl fmt::Display for TrialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Scheme(e) => write!(f, "scheme error: {e}"),
            Self::TaskSet(e) => write!(f, "invalid task set: {e}"),
            Self::Baseline(e) => write!(f, "baseline error: {e}"),
            Self::Simulation(e) => write!(f, "simulation error: {e}"),
            Self::NonFiniteEnergy { context, value } => {
                write!(f, "non-finite energy: {context} = {value}")
            }
            Self::OracleDivergence {
                check,
                predicted,
                metered,
                relative,
                tolerance,
            } => write!(
                f,
                "sim-oracle failure ({check}): predicted {predicted} J vs metered {metered} J \
                 (relative divergence {relative:.3e} > tolerance {tolerance:.3e})"
            ),
            Self::SolverPanic { payload } => write!(f, "solver panicked: {payload}"),
            Self::RetryBudgetExhausted { attempts } => {
                write!(f, "no feasible instance within {attempts} retry seeds")
            }
        }
    }
}

impl std::error::Error for TrialError {}

impl From<SdemError> for TrialError {
    fn from(e: SdemError) -> Self {
        Self::Scheme(e)
    }
}

impl From<TaskSetError> for TrialError {
    fn from(e: TaskSetError) -> Self {
        Self::TaskSet(e)
    }
}

impl From<ScheduleError> for TrialError {
    fn from(e: ScheduleError) -> Self {
        Self::Simulation(e)
    }
}

/// The always-feasible race-to-idle baseline: every task runs on its own
/// core at the maximum speed, starting at its release.
///
/// This is the terminal link of the fallback chain — it succeeds for any
/// instance any scheme could schedule (it fails only when some task
/// misses its deadline even at `s_max`, which no scheduler can fix). The
/// schedule is priced with [`Solution::from_schedule`]'s meter-exact
/// closed forms; the solution is **not** flagged degraded by itself —
/// [`solve_or_fallback`] adds the flag when it resorts to this baseline.
///
/// On platforms with an unbounded maximum speed (test models), each task
/// runs at its filled speed instead, clamped up to the platform minimum.
pub fn schedule_race_to_idle(tasks: &TaskSet, platform: &Platform) -> Result<Solution, SdemError> {
    schedule_race_to_idle_in(tasks, platform, &mut Workspace::new())
}

/// In-place [`schedule_race_to_idle`]: scratch buffers come from `ws`.
pub fn schedule_race_to_idle_in(
    tasks: &TaskSet,
    platform: &Platform,
    ws: &mut Workspace,
) -> Result<Solution, SdemError> {
    let s_up = platform.core().max_speed();
    let s_lo = platform.core().min_speed();
    if s_up.value().is_finite() {
        for task in tasks.iter() {
            if task.filled_speed().value() > s_up.value() {
                return Err(SdemError::InfeasibleTask(task.id()));
            }
        }
    }

    let mut placements = ws.take_placements();
    for (i, task) in tasks.iter().enumerate() {
        let mut segments = ws.take_segments();
        if task.work().value() > 0.0 {
            let mut speed = if s_up.value().is_finite() {
                s_up
            } else {
                task.filled_speed()
            };
            if speed.value() < s_lo.value() {
                speed = s_lo;
            }
            let end = task.release() + task.execution_time(speed);
            segments.push(Segment::new(task.release(), end, speed));
        }
        placements.push(Placement::new(task.id(), CoreId(i), segments));
    }
    let schedule = Schedule::new(std::mem::take(&mut placements));
    ws.recycle_placements(placements);
    Ok(Solution::from_schedule_in(schedule, platform, ws))
}

/// Degraded-mode fallback chain for a [`Scheme`]: solve, and on failure
/// fall back to [`schedule_race_to_idle`], flagging the result
/// [`degraded`](Solution::is_degraded).
pub fn solve_or_fallback(
    tasks: &TaskSet,
    platform: &Platform,
    scheme: Scheme,
) -> Result<Solution, SdemError> {
    solve_or_fallback_in(tasks, platform, scheme, &mut Workspace::new())
}

/// In-place [`solve_or_fallback`].
pub fn solve_or_fallback_in(
    tasks: &TaskSet,
    platform: &Platform,
    scheme: Scheme,
    ws: &mut Workspace,
) -> Result<Solution, SdemError> {
    solve_or_fallback_with(&scheme, tasks, platform, ws)
}

/// Degraded-mode fallback chain for any [`Scheduler`].
///
/// Runs the primary scheduler and returns its solution when it is sound.
/// Three failure shapes trigger the fallback instead of propagating:
///
/// 1. the scheduler returns an error,
/// 2. the scheduler returns a solution with a non-finite predicted
///    energy or memory-sleep time,
/// 3. the scheduler panics (contained with `catch_unwind`; the possibly
///    half-mutated workspace is discarded and rebuilt).
///
/// The fallback solution is flagged [`degraded`](Solution::is_degraded).
/// If even the race-to-idle baseline fails, the primary scheduler's own
/// error is returned when it produced one (it is the more informative
/// diagnosis), otherwise the baseline's.
pub fn solve_or_fallback_with(
    primary: &dyn Scheduler,
    tasks: &TaskSet,
    platform: &Platform,
    ws: &mut Workspace,
) -> Result<Solution, SdemError> {
    let mut primary_err = None;
    // AssertUnwindSafe: if the solver unwinds, the workspace it mutated
    // is replaced with a fresh one before anything observes it.
    match catch_unwind(AssertUnwindSafe(|| primary.solve_into(tasks, platform, ws))) {
        Ok(Ok(solution)) => {
            if solution.predicted_energy().value().is_finite()
                && solution.memory_sleep().value().is_finite()
            {
                return Ok(solution);
            }
        }
        Ok(Err(e)) => primary_err = Some(e),
        Err(_) => {
            sdem_obs::registry::incr(sdem_obs::Counter::SolverPanicsCaught);
            *ws = Workspace::new();
        }
    }
    sdem_obs::registry::incr(sdem_obs::Counter::FallbackAttempts);
    sdem_obs::trace::instant("fault/fallback");
    match schedule_race_to_idle_in(tasks, platform, ws) {
        Ok(solution) => {
            sdem_obs::registry::incr(sdem_obs::Counter::DegradedSolutions);
            Ok(solution.with_degraded(true))
        }
        Err(fallback_err) => Err(primary_err.unwrap_or(fallback_err)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdem_types::{Cycles, Task, TaskId, Time};

    fn tasks() -> TaskSet {
        TaskSet::new(vec![
            Task::new(0, Time::ZERO, Time::from_millis(30.0), Cycles::new(6.0e6)),
            Task::new(1, Time::ZERO, Time::from_millis(80.0), Cycles::new(9.0e6)),
        ])
        .unwrap()
    }

    #[test]
    fn kinds_and_display_are_stable() {
        let e = TrialError::OracleDivergence {
            check: "SDEM-ON analytic vs meter".into(),
            predicted: 1.0,
            metered: 2.0,
            relative: 0.5,
            tolerance: 1e-6,
        };
        assert_eq!(e.kind(), "oracle-divergence");
        let msg = e.to_string();
        assert!(msg.starts_with("sim-oracle failure"), "{msg}");
        assert!(msg.contains("1") && msg.contains("2"), "{msg}");

        assert_eq!(TrialError::from(SdemError::NoCores).kind(), "scheme-error");
        assert_eq!(
            TrialError::from(TaskSetError::Empty).kind(),
            "infeasible-input"
        );
        assert_eq!(
            TrialError::from(ScheduleError::MissingTask(TaskId(0))).kind(),
            "simulation-error"
        );
        assert_eq!(
            TrialError::SolverPanic {
                payload: "boom".into()
            }
            .kind(),
            "solver-panic"
        );
        assert_eq!(
            TrialError::NonFiniteEnergy {
                context: "x",
                value: f64::NAN
            }
            .kind(),
            "non-finite-energy"
        );
        assert_eq!(
            TrialError::RetryBudgetExhausted { attempts: 16 }.kind(),
            "retry-budget-exhausted"
        );
    }

    #[test]
    fn kind_is_the_error_kind_code() {
        use sdem_types::ErrorKind;
        let cases = [
            (TrialError::from(SdemError::NoCores), ErrorKind::SchemeError),
            (
                TrialError::from(TaskSetError::Empty),
                ErrorKind::InfeasibleInput,
            ),
            (TrialError::Baseline("b".into()), ErrorKind::BaselineError),
            (
                TrialError::SolverPanic {
                    payload: "boom".into(),
                },
                ErrorKind::SolverPanic,
            ),
            (
                TrialError::RetryBudgetExhausted { attempts: 1 },
                ErrorKind::RetryBudgetExhausted,
            ),
        ];
        for (err, kind) in cases {
            assert_eq!(err.error_kind(), kind);
            assert_eq!(err.kind(), kind.code());
        }
    }

    #[test]
    fn resamplability_splits_instance_errors_from_bugs() {
        assert!(TrialError::from(SdemError::NoCores).is_resamplable());
        assert!(TrialError::from(TaskSetError::Empty).is_resamplable());
        assert!(TrialError::Baseline("full".into()).is_resamplable());
        assert!(!TrialError::SolverPanic {
            payload: "boom".into()
        }
        .is_resamplable());
        assert!(!TrialError::NonFiniteEnergy {
            context: "x",
            value: f64::INFINITY
        }
        .is_resamplable());
        assert!(!TrialError::OracleDivergence {
            check: "c".into(),
            predicted: 1.0,
            metered: 2.0,
            relative: 0.5,
            tolerance: 1e-6,
        }
        .is_resamplable());
    }

    #[test]
    fn race_to_idle_is_valid_and_prices_like_the_meter() {
        let platform = Platform::paper_defaults();
        let ts = tasks();
        let solution = schedule_race_to_idle(&ts, &platform).expect("always feasible");
        assert!(!solution.is_degraded());
        solution
            .schedule()
            .validate(&ts)
            .expect("race-to-idle schedule is well-formed");
        assert!(solution.predicted_energy().value().is_finite());
        // Every segment runs at the platform maximum.
        for placement in solution.schedule().placements() {
            for seg in placement.segments() {
                assert_eq!(seg.speed(), platform.core().max_speed());
            }
        }
    }

    #[test]
    fn race_to_idle_reports_truly_infeasible_tasks() {
        let platform = Platform::paper_defaults();
        // Needs far more than s_max to finish inside 1 ms.
        let ts = TaskSet::new(vec![Task::new(
            0,
            Time::ZERO,
            Time::from_millis(1.0),
            Cycles::new(1.0e12),
        )])
        .unwrap();
        assert_eq!(
            schedule_race_to_idle(&ts, &platform),
            Err(SdemError::InfeasibleTask(TaskId(0)))
        );
    }

    #[test]
    fn fallback_chain_returns_primary_solution_when_sound() {
        let platform = Platform::paper_defaults();
        let ts = tasks();
        let direct = crate::solve(&ts, &platform, Scheme::Auto).unwrap();
        let chained = solve_or_fallback(&ts, &platform, Scheme::Auto).unwrap();
        assert!(!chained.is_degraded());
        assert_eq!(direct, chained);
    }

    #[test]
    fn fallback_chain_degrades_on_scheme_error() {
        let platform = Platform::paper_defaults();
        // Staggered releases: the common-release schemes reject this.
        let ts = TaskSet::new(vec![
            Task::new(0, Time::ZERO, Time::from_millis(30.0), Cycles::new(6.0e6)),
            Task::new(
                1,
                Time::from_millis(10.0),
                Time::from_millis(80.0),
                Cycles::new(9.0e6),
            ),
        ])
        .unwrap();
        let solution =
            solve_or_fallback(&ts, &platform, Scheme::CommonReleaseAlphaNonzero).unwrap();
        assert!(solution.is_degraded());
        solution.schedule().validate(&ts).expect("valid fallback");
    }
}
