//! §4.1 — common release time, negligible core static power (`α = 0`).
//!
//! Tasks are indexed by increasing deadline; `δ_i = d_n − d_i` is the slack
//! after task `i`'s feasible region. Under the assumption
//! `δ_i ≤ Δ < δ_{i−1}` (*Case i*), tasks `1..i−1` run at their filled speed
//! and tasks `i..n` finish together at `|I| − Δ`, giving (paper Eq. before
//! Eq. 4):
//!
//! ```text
//! E_i(Δ) = α_m(|I| − Δ) + β Σ_{j<i} w_j^λ |I_j|^{1−λ}
//!                        + β Σ_{k≥i} w_k^λ (|I| − Δ)^{1−λ}
//! ```
//!
//! which is convex in `Δ` with interior optimum (Eq. 4)
//!
//! ```text
//! Δ_{m i} = |I| − ( β(λ−1) Σ_{j≥i} w_j^λ / α_m )^{1/λ} .
//! ```
//!
//! Three equivalent drivers are provided:
//! [`schedule_alpha_zero`] clamps Eq. 4 into every case's feasible box and
//! takes the global minimum (linear after sorting);
//! [`schedule_alpha_zero_scan`] is the paper's Theorem-2 sequential scan
//! with early exit; [`schedule_alpha_zero_binary_search`] is the Lemma-1
//! `O(n log n)` binary search. Property tests assert all three agree.

use sdem_power::Platform;
use sdem_types::{CoreId, Joules, Placement, Schedule, Segment, Task, TaskSet, Time, Workspace};

use super::{prepare, prepare_in, Instance};
use crate::{SdemError, Solution};

/// Precomputed per-case data shared by the three drivers.
struct Cases {
    /// Relative deadlines, sorted ascending.
    d: Vec<f64>,
    /// `|I| = d_n` (relative).
    interval: f64,
    /// Suffix sums of `w^λ`: `s_wl[c] = Σ_{j≥c} w_j^λ`.
    s_wl: Vec<f64>,
    /// Suffix maxima of `w`: `w_max[c] = max_{j≥c} w_j`.
    w_max: Vec<f64>,
    /// Prefix filled dynamic energies:
    /// `filled[c] = β Σ_{j<c} w_j^λ d_j^{1−λ}`.
    filled: Vec<f64>,
    beta: f64,
    lambda: f64,
    alpha_m: f64,
    s_up: f64,
}

impl Cases {
    fn new(inst: &Instance, platform: &Platform) -> Self {
        Self::new_in(inst, platform, &mut Workspace::new())
    }

    /// Builds the case tables in buffers drawn from `ws`; return them with
    /// [`Self::recycle`].
    fn new_in(inst: &Instance, platform: &Platform, ws: &mut Workspace) -> Self {
        let core = platform.core();
        let (beta, lambda) = (core.beta(), core.lambda());
        let n = inst.tasks.len();
        let r0 = inst.release;
        let mut d = ws.take_f64s();
        d.extend(inst.tasks.iter().map(|t| (t.deadline() - r0).as_secs()));
        let interval = d[n - 1];
        let mut w = ws.take_f64s();
        w.extend(inst.tasks.iter().map(|t| t.work().value()));
        let mut s_wl = ws.take_f64s();
        s_wl.resize(n + 1, 0.0);
        let mut w_max = ws.take_f64s();
        w_max.resize(n + 1, 0.0);
        for j in (0..n).rev() {
            s_wl[j] = s_wl[j + 1] + w[j].powf(lambda);
            w_max[j] = w_max[j + 1].max(w[j]);
        }
        let mut filled = ws.take_f64s();
        filled.resize(n + 1, 0.0);
        for c in 0..n {
            let dyn_e = if w[c] == 0.0 {
                0.0
            } else {
                beta * w[c].powf(lambda) * d[c].powf(1.0 - lambda)
            };
            filled[c + 1] = filled[c] + dyn_e;
        }
        ws.recycle_f64s(w);
        Self {
            d,
            interval,
            s_wl,
            w_max,
            filled,
            beta,
            lambda,
            alpha_m: platform.memory().alpha_m().value(),
            s_up: core.max_speed().as_hz(),
        }
    }

    /// Returns the case tables to the workspace.
    fn recycle(self, ws: &mut Workspace) {
        ws.recycle_f64s(self.d);
        ws.recycle_f64s(self.s_wl);
        ws.recycle_f64s(self.w_max);
        ws.recycle_f64s(self.filled);
    }

    fn n(&self) -> usize {
        self.d.len()
    }

    /// Full-system energy in case `cut` (tasks `cut..n` aligned) at sleep
    /// length `delta`.
    fn energy(&self, cut: usize, delta: f64) -> f64 {
        let window = self.interval - delta;
        let aligned = if self.s_wl[cut] == 0.0 {
            0.0
        } else {
            self.beta * self.s_wl[cut] * window.powf(1.0 - self.lambda)
        };
        self.alpha_m * window + self.filled[cut] + aligned
    }

    /// The unconstrained interior optimum `Δ_m` of case `cut` (Eq. 4).
    /// `−∞` when `α_m = 0` (always clamps to the case's lower edge).
    fn interior_optimum(&self, cut: usize) -> f64 {
        if self.s_wl[cut] == 0.0 {
            // No aligned work: energy decreases linearly in window; sleep max.
            return f64::INFINITY;
        }
        self.interval
            - (self.beta * (self.lambda - 1.0) * self.s_wl[cut] / self.alpha_m)
                .powf(1.0 / self.lambda)
    }

    /// Feasible `Δ` box of case `cut`: classification bounds intersected
    /// with the `s_up` cap. `None` when empty.
    fn case_box(&self, cut: usize) -> Option<(f64, f64)> {
        let lo = (self.interval - self.d[cut]).max(0.0);
        let class_hi = if cut == 0 {
            self.interval
        } else {
            self.interval - self.d[cut - 1]
        };
        let speed_hi = if self.w_max[cut] == 0.0 {
            self.interval
        } else {
            self.interval - self.w_max[cut] / self.s_up
        };
        let hi = class_hi.min(speed_hi);
        (lo <= hi + 1e-15 * self.interval.max(1.0)).then_some((lo, hi.max(lo)))
    }

    /// Best `Δ` within case `cut`: Eq. 4 clamped into the case box.
    fn case_optimum(&self, cut: usize) -> Option<(f64, f64)> {
        let (lo, hi) = self.case_box(cut)?;
        let delta = self.interior_optimum(cut).clamp(lo, hi);
        Some((delta, self.energy(cut, delta)))
    }
}

/// Builds the explicit schedule for the winning `(cut, Δ)`.
fn build_solution(inst: &Instance, cases: &Cases, cut: usize, delta: f64, energy: f64) -> Solution {
    build_solution_in(inst, cases, cut, delta, energy, &mut Workspace::new())
}

/// [`build_solution`] with the placement/segment arenas drawn from `ws`.
fn build_solution_in(
    inst: &Instance,
    cases: &Cases,
    cut: usize,
    delta: f64,
    energy: f64,
    ws: &mut Workspace,
) -> Solution {
    let r0 = inst.release;
    let window = Time::from_secs(cases.interval - delta);
    let mut placements = ws.take_placements();
    for (idx, t) in inst.tasks.iter().enumerate() {
        let segments = ws.take_segments();
        placements.push(place_task(t, idx, r0, idx >= cut, window, segments));
    }
    Solution::new(
        Schedule::new(placements),
        Joules::new(energy),
        Time::from_secs(delta),
    )
}

fn place_task(
    t: &Task,
    idx: usize,
    r0: Time,
    aligned: bool,
    window: Time,
    mut segments: Vec<Segment>,
) -> Placement {
    if t.work().value() == 0.0 {
        // Zero-work tasks never execute; an empty placement avoids
        // degenerate zero-length segments when the busy window collapses.
        return Placement::new(t.id(), CoreId(idx), segments);
    }
    let end = if aligned { r0 + window } else { t.deadline() };
    let len = end - r0;
    let speed = if len.value() > 0.0 {
        t.work() / len
    } else {
        sdem_types::Speed::ZERO
    };
    segments.push(Segment::new(r0, end, speed));
    Placement::new(t.id(), CoreId(idx), segments)
}

/// §4.1 optimal scheme: evaluates every case's clamped closed form and
/// returns the global optimum. `O(n log n)` (dominated by the sort).
///
/// # Errors
///
/// [`SdemError::NotCommonRelease`] if releases differ;
/// [`SdemError::InfeasibleTask`] if some task needs more than `s_up`.
///
/// # Examples
///
/// ```
/// use sdem_core::common_release::schedule_alpha_zero;
/// use sdem_power::{CorePower, MemoryPower, Platform};
/// use sdem_types::{Task, TaskSet, Time, Cycles};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let platform = Platform::new(
///     CorePower::cortex_a57(),
///     MemoryPower::dram_50nm(),
/// );
/// let tasks = TaskSet::new(vec![
///     Task::new(0, Time::ZERO, Time::from_millis(40.0), Cycles::new(4.0e6)),
///     Task::new(1, Time::ZERO, Time::from_millis(100.0), Cycles::new(8.0e6)),
/// ])?;
/// let sol = schedule_alpha_zero(&tasks, &platform)?;
/// sol.schedule().validate(&tasks)?;
/// # Ok(())
/// # }
/// ```
#[deprecated(
    since = "0.1.0",
    note = "call `solve(tasks, platform, Scheme::CommonReleaseAlphaZero)` from the crate root, or `schedule_alpha_zero_in` to reuse a `Workspace`"
)]
pub fn schedule_alpha_zero(tasks: &TaskSet, platform: &Platform) -> Result<Solution, SdemError> {
    schedule_alpha_zero_in(tasks, platform, &mut Workspace::new())
}

/// In-place [`schedule_alpha_zero`]: scratch tables and the returned
/// schedule's arenas are drawn from `ws`, so a warmed workspace makes the
/// solve allocation-free. Recycle the solution's schedule back into `ws`
/// when done with it.
pub fn schedule_alpha_zero_in(
    tasks: &TaskSet,
    platform: &Platform,
    ws: &mut Workspace,
) -> Result<Solution, SdemError> {
    let inst = prepare_in(tasks, platform, ws)?;
    let cases = Cases::new_in(&inst, platform, ws);
    let best = (0..cases.n())
        .filter_map(|cut| cases.case_optimum(cut).map(|(d, e)| (cut, d, e)))
        .min_by(|a, b| a.2.total_cmp(&b.2))
        .expect("the all-filled case is always feasible");
    let solution = build_solution_in(&inst, &cases, best.0, best.1, best.2, ws);
    cases.recycle(ws);
    inst.recycle(ws);
    Ok(solution)
}

/// §4.1 via the paper's Theorem-2 sequential scan: cases are visited from
/// *Case n* (only the last task aligned) down to *Case 1*; the scan stops at
/// the first case whose clamped optimum is *valid* (interior) or *just-fit*
/// (at the lower edge), which Theorem 2 proves global.
///
/// # Errors
///
/// Same as [`schedule_alpha_zero`].
pub fn schedule_alpha_zero_scan(
    tasks: &TaskSet,
    platform: &Platform,
) -> Result<Solution, SdemError> {
    let inst = prepare(tasks, platform)?;
    let cases = Cases::new(&inst, platform);
    // Paper Case i ⇔ cut = i − 1; Case n is cut = n − 1.
    let mut fallback: Option<(usize, f64, f64)> = None;
    for cut in (0..cases.n()).rev() {
        let Some((lo, hi)) = cases.case_box(cut) else {
            continue;
        };
        let dm = cases.interior_optimum(cut);
        let class_hi = if cut == 0 {
            f64::INFINITY
        } else {
            cases.interval - cases.d[cut - 1]
        };
        if dm < class_hi {
            // Valid (inside) or just-fit (below the lower edge): Theorem 2
            // says this case's clamped optimum is global — provided the
            // speed cap did not bite. If it did, the capped value is still
            // this case's best; keep it as a candidate and continue.
            let delta = dm.clamp(lo, hi);
            let e = cases.energy(cut, delta);
            let speed_limited = dm.min(class_hi) > hi + 1e-12 * cases.interval.max(1.0);
            if !speed_limited {
                return Ok(build_solution(&inst, &cases, cut, delta, e));
            }
            if fallback.is_none_or(|f| e < f.2) {
                fallback = Some((cut, delta, e));
            }
        } else {
            // Invalid: optimum beyond the upper edge; record the edge value
            // and move to the next (smaller-Δ) case, per Theorem 2.
            let delta = hi;
            let e = cases.energy(cut, delta);
            if fallback.is_none_or(|f| e < f.2) {
                fallback = Some((cut, delta, e));
            }
        }
    }
    let (cut, delta, e) = fallback.expect("at least one case is feasible");
    Ok(build_solution(&inst, &cases, cut, delta, e))
}

/// §4.1 via the Lemma-1 binary search over cases, `O(n log n)` with an
/// `O(log n)` number of case evaluations after the sort.
///
/// Classification per probe: *valid* (interior optimum in the case's
/// classification range) returns immediately; *just-fit* (`Δ_m` below the
/// range) moves toward later cases (larger Δ); *invalid* moves toward
/// earlier cases. Boundary candidates are tracked so the search also
/// terminates correctly when no case is valid.
///
/// # Errors
///
/// Same as [`schedule_alpha_zero`].
pub fn schedule_alpha_zero_binary_search(
    tasks: &TaskSet,
    platform: &Platform,
) -> Result<Solution, SdemError> {
    let inst = prepare(tasks, platform)?;
    let cases = Cases::new(&inst, platform);
    let mut best: Option<(usize, f64, f64)> = None;
    let consider = |cut: usize, delta: f64, e: f64, best: &mut Option<(usize, f64, f64)>| {
        if best.is_none_or(|b| e < b.2) {
            *best = Some((cut, delta, e));
        }
    };

    let (mut lo_cut, mut hi_cut) = (0usize, cases.n() - 1);
    loop {
        let cut = lo_cut + (hi_cut - lo_cut) / 2;
        if let Some((lo, hi)) = cases.case_box(cut) {
            let dm = cases.interior_optimum(cut);
            let class_lo = cases.interval - cases.d[cut];
            let class_hi = if cut == 0 {
                f64::INFINITY
            } else {
                cases.interval - cases.d[cut - 1]
            };
            let delta = dm.clamp(lo, hi);
            let e = cases.energy(cut, delta);
            consider(cut, delta, e, &mut best);
            if dm >= class_lo && dm < class_hi {
                // Valid: Lemma 1 proves the unique valid case is global —
                // unless the speed cap clipped it, in which case the clipped
                // candidate is already recorded and neighbours must still be
                // probed via the boundary candidates below.
                if delta == dm || (dm <= hi && dm >= lo) {
                    return Ok(build_solution(&inst, &cases, cut, delta, e));
                }
            }
            if dm < class_lo {
                // Just-fit: true optimum lies at this edge or in later cases.
                if cut == hi_cut {
                    break;
                }
                lo_cut = cut + 1;
                continue;
            }
            // Invalid: move toward earlier cases.
            if cut == lo_cut {
                break;
            }
            hi_cut = cut - 1;
        } else {
            // Empty box (speed cap): smaller Δ needed ⇒ earlier cases.
            if cut == lo_cut {
                break;
            }
            hi_cut = cut - 1;
        }
    }
    // Also probe the final bracket edges for the boundary optimum.
    for cut in [
        lo_cut,
        hi_cut,
        lo_cut.saturating_sub(1),
        (hi_cut + 1).min(cases.n() - 1),
    ] {
        if let Some((delta, e)) = cases.case_optimum(cut) {
            consider(cut, delta, e, &mut best);
        }
    }
    let (cut, delta, e) = best.expect("at least one case is feasible");
    Ok(build_solution(&inst, &cases, cut, delta, e))
}

#[cfg(test)]
mod tests {
    // These tests keep exercising the deprecated convenience
    // wrappers so the legacy entry points stay covered until removal.
    #![allow(deprecated)]

    use super::*;
    use sdem_power::{CorePower, MemoryPower};
    use sdem_sim::{simulate, SleepPolicy};
    use sdem_types::{Cycles, Speed, Watts};

    fn sec(v: f64) -> Time {
        Time::from_secs(v)
    }

    /// β = 1, λ = 3, α = 0, α_m configurable, unbounded speeds.
    fn platform(alpha_m: f64) -> Platform {
        Platform::new(
            CorePower::simple(0.0, 1.0, 3.0),
            MemoryPower::new(Watts::new(alpha_m)),
        )
    }

    fn tset(specs: &[(f64, f64)]) -> TaskSet {
        TaskSet::new(
            specs
                .iter()
                .enumerate()
                .map(|(i, &(d, w))| Task::new(i, sec(0.0), sec(d), Cycles::new(w)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn single_task_closed_form() {
        // One task, d = 10, w = 2, α_m = 4, β = 1, λ = 3.
        // E(Δ) = 4(10−Δ) + 8(10−Δ)^{−2} ⇒ window* = (2·8/4)^{1/3} = 4^{1/3}·... :
        // dE/dT = 4 − 16 T^{−3} = 0 ⇒ T = (16/4)^{1/3} = 4^{1/3}.
        let p = platform(4.0);
        let tasks = tset(&[(10.0, 2.0)]);
        let sol = schedule_alpha_zero(&tasks, &p).unwrap();
        let t_star = (2.0f64 * 8.0 / 4.0).powf(1.0 / 3.0);
        assert!((sol.memory_sleep().as_secs() - (10.0 - t_star)).abs() < 1e-9);
        sol.schedule().validate(&tasks).unwrap();
    }

    #[test]
    fn zero_memory_power_means_all_filled() {
        let p = platform(0.0);
        let tasks = tset(&[(4.0, 2.0), (6.0, 3.0), (10.0, 1.0)]);
        let sol = schedule_alpha_zero(&tasks, &p).unwrap();
        // With α_m = 0 nothing is gained by sleeping: every task fills its
        // region.
        assert!(sol.memory_sleep().as_secs().abs() < 1e-9);
        for t in tasks.iter() {
            let pl = sol.schedule().placement(t.id()).unwrap();
            assert!((pl.end().unwrap() - t.deadline()).abs().value() < 1e-9);
        }
    }

    #[test]
    fn huge_memory_power_races_to_idle() {
        // Enormous α_m: compress everything as much as s_up allows.
        let core = CorePower::simple(0.0, 1.0, 3.0).with_max_speed(Speed::from_hz(4.0));
        let p = Platform::new(core, MemoryPower::new(Watts::new(1.0e9)));
        let tasks = tset(&[(4.0, 2.0), (10.0, 8.0)]);
        let sol = schedule_alpha_zero(&tasks, &p).unwrap();
        // Fastest possible finish: max w/s_up = 8/4 = 2 ⇒ Δ = 8.
        assert!((sol.memory_sleep().as_secs() - 8.0).abs() < 1e-6);
        sol.schedule()
            .validate_with_limits(&tasks, None, Some(Speed::from_hz(4.0)))
            .unwrap();
    }

    #[test]
    fn predicted_energy_matches_simulation() {
        let p = platform(4.0);
        let tasks = tset(&[(3.0, 2.0), (5.0, 1.0), (9.0, 4.0), (12.0, 2.5)]);
        let sol = schedule_alpha_zero(&tasks, &p).unwrap();
        let report = simulate(sol.schedule(), &tasks, &p, SleepPolicy::WhenProfitable).unwrap();
        assert!(
            (report.total().value() - sol.predicted_energy().value()).abs()
                < 1e-9 * sol.predicted_energy().value().max(1.0),
            "sim {} vs predicted {}",
            report.total(),
            sol.predicted_energy()
        );
    }

    #[test]
    fn three_drivers_agree() {
        let p = platform(2.5);
        for specs in [
            vec![(10.0, 2.0)],
            vec![(4.0, 2.0), (6.0, 3.0), (10.0, 1.0)],
            vec![(1.0, 0.5), (2.0, 0.5), (3.0, 0.5), (4.0, 0.5), (20.0, 0.5)],
            vec![(5.0, 4.0), (5.5, 0.1), (6.0, 0.1), (30.0, 9.0)],
        ] {
            let tasks = tset(&specs);
            let a = schedule_alpha_zero(&tasks, &p).unwrap();
            let b = schedule_alpha_zero_scan(&tasks, &p).unwrap();
            let c = schedule_alpha_zero_binary_search(&tasks, &p).unwrap();
            let e = a.predicted_energy().value();
            assert!(
                (b.predicted_energy().value() - e).abs() < 1e-9 * e.max(1.0),
                "scan disagrees on {specs:?}: {} vs {e}",
                b.predicted_energy().value()
            );
            assert!(
                (c.predicted_energy().value() - e).abs() < 1e-9 * e.max(1.0),
                "binary search disagrees on {specs:?}: {} vs {e}",
                c.predicted_energy().value()
            );
        }
    }

    #[test]
    fn rejects_non_common_release() {
        let p = platform(1.0);
        let tasks = TaskSet::new(vec![
            Task::new(0, sec(0.0), sec(5.0), Cycles::new(1.0)),
            Task::new(1, sec(1.0), sec(6.0), Cycles::new(1.0)),
        ])
        .unwrap();
        assert_eq!(
            schedule_alpha_zero(&tasks, &p),
            Err(SdemError::NotCommonRelease)
        );
    }

    #[test]
    fn rejects_infeasible_density() {
        let core = CorePower::simple(0.0, 1.0, 3.0).with_max_speed(Speed::from_hz(1.0));
        let p = Platform::new(core, MemoryPower::new(Watts::new(1.0)));
        let tasks = tset(&[(2.0, 5.0)]);
        assert!(matches!(
            schedule_alpha_zero(&tasks, &p),
            Err(SdemError::InfeasibleTask(_))
        ));
    }

    #[test]
    fn interior_optimum_monotone_in_case_index_eq5() {
        // Eq. (5): Δ_{m i} increases with i (suffix sums shrink).
        let p = platform(3.0);
        let tasks = tset(&[(2.0, 1.0), (4.0, 2.0), (7.0, 1.5), (9.0, 0.5)]);
        let inst = prepare(&tasks, &p).unwrap();
        let cases = Cases::new(&inst, &p);
        for cut in 1..cases.n() {
            assert!(
                cases.interior_optimum(cut) >= cases.interior_optimum(cut - 1),
                "Eq. 5 violated at cut {cut}"
            );
        }
    }

    #[test]
    fn energy_continuous_across_case_boundaries() {
        let p = platform(3.0);
        let tasks = tset(&[(2.0, 1.0), (4.0, 2.0), (7.0, 1.5)]);
        let inst = prepare(&tasks, &p).unwrap();
        let cases = Cases::new(&inst, &p);
        // Boundary between cut = 1 and cut = 2 is Δ = |I| − d_1.
        let b = cases.interval - cases.d[1];
        assert!((cases.energy(1, b) - cases.energy(2, b)).abs() < 1e-9);
    }

    #[test]
    fn optimal_beats_grid_of_alternatives() {
        let p = platform(4.0);
        let tasks = tset(&[(3.0, 2.0), (6.0, 1.0), (9.0, 3.0)]);
        let sol = schedule_alpha_zero(&tasks, &p).unwrap();
        let inst = prepare(&tasks, &p).unwrap();
        let cases = Cases::new(&inst, &p);
        let best = sol.predicted_energy().value();
        for cut in 0..cases.n() {
            let Some((lo, hi)) = cases.case_box(cut) else {
                continue;
            };
            for k in 0..=200 {
                let delta = lo + (hi - lo) * (k as f64) / 200.0;
                assert!(
                    cases.energy(cut, delta) >= best - 1e-9 * best.max(1.0),
                    "grid point beats optimum at cut {cut}, Δ = {delta}"
                );
            }
        }
    }
}
