//! Heterogeneous-core extension of §4.2.
//!
//! The paper closes §4 with: *"all the proposed schemes in Sect. 4 can be
//! applied for heterogeneous cores with different power functions... Under
//! this case, different cores will have different critical speed `s₀`; and
//! when developing the optimal system energy `E_i^{(α)}` for Case `i`, the
//! dynamic power of different cores should be added up separately."*
//!
//! This module does exactly that: every task `j` is pinned to its own core
//! model `(α_j, β_j, λ_j)`, completions are computed at per-core critical
//! speeds, and the per-case energy — no longer a single closed form — is
//! minimized numerically over the sleep length `Δ` (each aligned term
//! `β_j w_j^{λ_j} T^{1−λ_j} + α_j T` is convex in `T`, so the case energy
//! is convex in `Δ` and golden-section search is exact).

use sdem_power::{CorePower, MemoryPower};
use sdem_types::numeric::minimize_unimodal;
use sdem_types::{CoreId, Joules, Placement, Schedule, TaskSet, Time};

use super::exceeds;
use crate::{SdemError, Solution};

/// §4.2 for heterogeneous cores: task `k` (in `tasks` construction order)
/// runs on a core with power model `cores[k]`.
///
/// # Errors
///
/// * [`SdemError::NotCommonRelease`] if releases differ;
/// * [`SdemError::InfeasibleTask`] if some task needs more than its own
///   core's maximum speed;
/// * [`SdemError::NoCores`] if `cores.len() != tasks.len()`.
///
/// # Examples
///
/// ```
/// use sdem_core::common_release::schedule_heterogeneous;
/// use sdem_power::{CorePower, MemoryPower};
/// use sdem_types::{Task, TaskSet, Time, Cycles, Watts};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tasks = TaskSet::new(vec![
///     Task::new(0, Time::ZERO, Time::from_secs(8.0), Cycles::new(2.0)),
///     Task::new(1, Time::ZERO, Time::from_secs(12.0), Cycles::new(3.0)),
/// ])?;
/// // A big core (high static, shallow curve) and a little core.
/// let cores = [CorePower::simple(4.0, 0.5, 3.0), CorePower::simple(1.0, 2.0, 3.0)];
/// let memory = MemoryPower::new(Watts::new(5.0));
/// let sol = schedule_heterogeneous(&tasks, &cores, &memory)?;
/// sol.schedule().validate(&tasks)?;
/// # Ok(())
/// # }
/// ```
pub fn schedule_heterogeneous(
    tasks: &TaskSet,
    cores: &[CorePower],
    memory: &MemoryPower,
) -> Result<Solution, SdemError> {
    if cores.len() != tasks.len() {
        return Err(SdemError::NoCores);
    }
    if !tasks.is_common_release() {
        return Err(SdemError::NotCommonRelease);
    }
    for (t, core) in tasks.iter().zip(cores) {
        if exceeds(t.filled_speed(), core.max_speed()) {
            return Err(SdemError::InfeasibleTask(t.id()));
        }
    }
    let r0 = tasks.tasks()[0].release();

    // Per-task critical-speed completion on its own core.
    struct Job {
        idx: usize,
        c: f64,
        w: f64,
        alpha: f64,
        beta: f64,
        lambda: f64,
        s_up: f64,
    }
    let mut jobs: Vec<Job> = tasks
        .iter()
        .zip(cores)
        .enumerate()
        .map(|(idx, (t, core))| {
            let s0 = core.critical_speed(t.filled_speed());
            let w = t.work().value();
            let c = if w == 0.0 { 0.0 } else { w / s0.as_hz() };
            Job {
                idx,
                c,
                w,
                alpha: core.alpha().value(),
                beta: core.beta(),
                lambda: core.lambda(),
                s_up: core.max_speed().as_hz(),
            }
        })
        .collect();
    jobs.sort_by(|a, b| a.c.total_cmp(&b.c));
    let n = jobs.len();
    let c_max = jobs.last().expect("non-empty").c;
    let alpha_m = memory.alpha_m().value();

    // Energy of a job running over a window of length `t_run`.
    let run_energy = |j: &Job, t_run: f64| -> f64 {
        if j.w == 0.0 {
            return 0.0;
        }
        j.beta * j.w.powf(j.lambda) * t_run.powf(1.0 - j.lambda) + j.alpha * t_run
    };

    // Case `cut`: jobs `cut..n` aligned at `T = c_max − Δ`, the rest at s₀.
    let mut best: Option<(usize, f64, f64)> = None;
    let mut type_i_prefix = 0.0;
    for cut in 0..n {
        // Feasible Δ box (same construction as the homogeneous scheme, but
        // the speed cap is per-task).
        let lo = (c_max - jobs[cut].c).max(0.0);
        let class_hi = if cut == 0 {
            c_max
        } else {
            c_max - jobs[cut - 1].c
        };
        let speed_hi = jobs[cut..]
            .iter()
            .filter(|j| j.w > 0.0)
            .map(|j| c_max - j.w / j.s_up)
            .fold(c_max, f64::min);
        let hi = class_hi.min(speed_hi);
        if lo <= hi + 1e-15 * c_max.max(1.0) {
            let prefix = type_i_prefix;
            let energy_at = |delta: f64| -> f64 {
                let t_run = c_max - delta;
                let aligned: f64 = jobs[cut..].iter().map(|j| run_energy(j, t_run)).sum();
                alpha_m * t_run + aligned + prefix
            };
            let (delta, e) = minimize_unimodal(energy_at, lo, hi.max(lo), 1e-12);
            if best.is_none_or(|b| e < b.2) {
                best = Some((cut, delta, e));
            }
        }
        type_i_prefix += run_energy(&jobs[cut], jobs[cut].c);
    }
    let (cut, delta, energy) = best.expect("the Δ = 0 case is always feasible");

    // Assemble the schedule on per-task cores.
    let t_run = c_max - delta;
    let placements = jobs
        .iter()
        .enumerate()
        .map(|(k, j)| {
            let task = &tasks.tasks()[j.idx];
            if j.w == 0.0 {
                return Placement::new(task.id(), CoreId(j.idx), vec![]);
            }
            let len = if k >= cut { t_run } else { j.c };
            Placement::single(
                task.id(),
                CoreId(j.idx),
                r0,
                r0 + Time::from_secs(len),
                task.work() / Time::from_secs(len),
            )
        })
        .collect();
    Ok(Solution::new(
        Schedule::new(placements),
        Joules::new(energy),
        Time::from_secs(delta),
    ))
}

#[cfg(test)]
mod tests {
    // These tests keep exercising the deprecated convenience
    // wrappers so the legacy entry points stay covered until removal.
    #![allow(deprecated)]

    use super::*;
    use crate::common_release::schedule_alpha_nonzero;
    use sdem_power::Platform;
    use sdem_types::{Cycles, Task, Watts};

    fn sec(v: f64) -> Time {
        Time::from_secs(v)
    }

    fn tset(specs: &[(f64, f64)]) -> TaskSet {
        TaskSet::new(
            specs
                .iter()
                .enumerate()
                .map(|(i, &(d, w))| Task::new(i, sec(0.0), sec(d), Cycles::new(w)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn identical_cores_match_homogeneous_scheme() {
        let tasks = tset(&[(8.0, 2.0), (9.0, 4.0), (20.0, 3.0)]);
        let core = CorePower::simple(4.0, 1.0, 3.0);
        let memory = MemoryPower::new(Watts::new(6.0));
        let het = schedule_heterogeneous(&tasks, &[core, core, core], &memory).unwrap();
        let hom = schedule_alpha_nonzero(&tasks, &Platform::new(core, memory)).unwrap();
        let (a, b) = (
            het.predicted_energy().value(),
            hom.predicted_energy().value(),
        );
        assert!(
            (a - b).abs() < 1e-6 * b,
            "heterogeneous {a} vs homogeneous {b}"
        );
        assert!((het.memory_sleep() - hom.memory_sleep()).abs().as_secs() < 1e-6);
    }

    #[test]
    fn different_cores_get_different_critical_speeds() {
        let tasks = tset(&[(50.0, 2.0), (50.0, 2.0)]);
        // Core 0: s_m = (4/2)^{1/3} ≈ 1.26; core 1: s_m = (1/4)^{1/3} ≈ 0.63.
        let cores = [
            CorePower::simple(4.0, 1.0, 3.0),
            CorePower::simple(1.0, 2.0, 3.0),
        ];
        let memory = MemoryPower::new(Watts::new(1e-6)); // memory negligible
        let sol = schedule_heterogeneous(&tasks, &cores, &memory).unwrap();
        let s0 = sol
            .schedule()
            .placement(sdem_types::TaskId(0))
            .unwrap()
            .segments()[0]
            .speed();
        let s1 = sol
            .schedule()
            .placement(sdem_types::TaskId(1))
            .unwrap()
            .segments()[0]
            .speed();
        assert!((s0.as_hz() - 2.0f64.powf(1.0 / 3.0)).abs() < 1e-3, "{s0}");
        assert!((s1.as_hz() - 0.25f64.powf(1.0 / 3.0)).abs() < 1e-3, "{s1}");
    }

    #[test]
    fn heterogeneous_beats_grid_oracle() {
        let tasks = tset(&[(8.0, 2.0), (12.0, 4.0)]);
        let cores = [
            CorePower::simple(4.0, 0.5, 3.0),
            CorePower::simple(1.0, 2.0, 2.5),
        ];
        let memory = MemoryPower::new(Watts::new(5.0));
        let sol = schedule_heterogeneous(&tasks, &cores, &memory).unwrap();

        // Independent oracle: sweep the busy-interval end T; per task pick
        // the best run length in [w/s_up, min(d, T)] on its own core.
        let mut best = f64::INFINITY;
        for k in 1..4000 {
            let t_end = 12.0 * (k as f64) / 4000.0;
            let mut total = 5.0 * t_end;
            let mut ok = true;
            for (t, core) in tasks.iter().zip(&cores) {
                let w = t.work().value();
                let hi = t.deadline().as_secs().min(t_end);
                let lo = w / core.max_speed().as_hz();
                if lo > hi {
                    ok = false;
                    break;
                }
                let (lam, bet, alf) = (core.lambda(), core.beta(), core.alpha().value());
                let l_star = w / core.critical_speed_unclamped().as_hz();
                let l = l_star.clamp(lo, hi);
                total += bet * w.powf(lam) * l.powf(1.0 - lam) + alf * l;
            }
            if ok {
                best = best.min(total);
            }
        }
        let e = sol.predicted_energy().value();
        assert!(
            e <= best * (1.0 + 1e-6),
            "scheme {e} worse than oracle {best}"
        );
        assert!(
            e >= best * (1.0 - 1e-2),
            "scheme {e} far below oracle {best}"
        );
    }

    #[test]
    fn guards() {
        let tasks = tset(&[(8.0, 2.0), (12.0, 4.0)]);
        let core = CorePower::simple(1.0, 1.0, 3.0);
        let memory = MemoryPower::new(Watts::new(1.0));
        assert_eq!(
            schedule_heterogeneous(&tasks, &[core], &memory),
            Err(SdemError::NoCores)
        );
        let staggered = TaskSet::new(vec![
            Task::new(0, sec(0.0), sec(5.0), Cycles::new(1.0)),
            Task::new(1, sec(1.0), sec(6.0), Cycles::new(1.0)),
        ])
        .unwrap();
        assert_eq!(
            schedule_heterogeneous(&staggered, &[core, core], &memory),
            Err(SdemError::NotCommonRelease)
        );
        let slow = CorePower::simple(0.0, 1.0, 3.0).with_max_speed(sdem_types::Speed::from_hz(0.1));
        assert!(matches!(
            schedule_heterogeneous(&tasks, &[slow, core], &memory),
            Err(SdemError::InfeasibleTask(_))
        ));
    }
}
