//! §4.2 — common release time, non-negligible core static power (`α ≠ 0`).
//!
//! Each task has a *critical speed* `s₀ = min(max(s_m, s_f), s_up)` with
//! `s_m = (α/(β(λ−1)))^{1/λ}`: the per-core energy-optimal speed, clamped to
//! the task's feasibility window. Running every task at `s₀` gives
//! completion times `c_i = w_i / s₀ᵢ`; tasks are indexed by increasing `c_i`
//! and `|I|^{(α)} = c_n`.
//!
//! In *Case i* (`δ_i ≤ Δ < δ_{i−1}`, `δ_i = c_n − c_i`) tasks `i..n` align
//! with the memory busy interval (finish at `c_n − Δ`) while tasks `1..i−1`
//! keep their critical speed and put their cores to sleep on completion.
//! The aligned-plus-memory energy (Eq. 7) is convex with interior optimum
//! (Eq. 8):
//!
//! ```text
//! Δ^{(α)}_{m i} = |I|^{(α)} − ( β(λ−1) Σ_{j≥i} w_j^λ / ((n−i+1)α + α_m) )^{1/λ}
//! ```
//!
//! [`schedule_alpha_nonzero`] clamps Eq. 8 into every case's feasible box
//! (Lemma 2) and returns the minimum *full-system* energy over all cases
//! (Theorem 3), including the constant critical-speed terms that differ
//! between cases.

use sdem_power::Platform;
use sdem_types::{CoreId, Joules, Placement, Schedule, Segment, Speed, TaskSet, Time, Workspace};

use super::{prepare_in, Instance};
use crate::{SdemError, Solution};

struct NonzeroCases {
    /// Critical-speed completion times, sorted ascending (relative).
    c: Vec<f64>,
    /// `|I|^{(α)} = c_n`.
    interval: f64,
    /// Suffix sums of `w^λ`.
    s_wl: Vec<f64>,
    /// Suffix maxima of `w`.
    w_max: Vec<f64>,
    /// Prefix type-I energies: `Σ_{j<cut} (β w_j^λ c_j^{1−λ} + α c_j)`.
    type_i: Vec<f64>,
    alpha: f64,
    beta: f64,
    lambda: f64,
    alpha_m: f64,
    s_up: f64,
}

impl NonzeroCases {
    #[cfg(test)]
    fn new(sorted_c: &[f64], works: &[f64], platform: &Platform) -> Self {
        Self::new_in(sorted_c, works, platform, &mut Workspace::new())
    }

    /// Builds the case tables in buffers drawn from `ws`; return them with
    /// [`Self::recycle`].
    fn new_in(sorted_c: &[f64], works: &[f64], platform: &Platform, ws: &mut Workspace) -> Self {
        let core = platform.core();
        let (alpha, beta, lambda) = (core.alpha().value(), core.beta(), core.lambda());
        let n = sorted_c.len();
        let interval = sorted_c.last().copied().unwrap_or(0.0);
        let mut c = ws.take_f64s();
        c.extend_from_slice(sorted_c);
        let mut s_wl = ws.take_f64s();
        s_wl.resize(n + 1, 0.0);
        let mut w_max = ws.take_f64s();
        w_max.resize(n + 1, 0.0);
        for j in (0..n).rev() {
            s_wl[j] = s_wl[j + 1] + works[j].powf(lambda);
            w_max[j] = w_max[j + 1].max(works[j]);
        }
        let mut type_i = ws.take_f64s();
        type_i.resize(n + 1, 0.0);
        for j in 0..n {
            let e = if works[j] == 0.0 {
                0.0
            } else {
                beta * works[j].powf(lambda) * sorted_c[j].powf(1.0 - lambda) + alpha * sorted_c[j]
            };
            type_i[j + 1] = type_i[j] + e;
        }
        Self {
            c,
            interval,
            s_wl,
            w_max,
            type_i,
            alpha,
            beta,
            lambda,
            alpha_m: platform.memory().alpha_m().value(),
            s_up: core.max_speed().as_hz(),
        }
    }

    /// Returns the case tables to the workspace.
    fn recycle(self, ws: &mut Workspace) {
        ws.recycle_f64s(self.c);
        ws.recycle_f64s(self.s_wl);
        ws.recycle_f64s(self.w_max);
        ws.recycle_f64s(self.type_i);
    }

    fn n(&self) -> usize {
        self.c.len()
    }

    /// Full-system energy for case `cut` at sleep length `delta`.
    fn energy(&self, cut: usize, delta: f64) -> f64 {
        let window = self.interval - delta;
        let aligned_count = (self.n() - cut) as f64;
        let aligned_dyn = if self.s_wl[cut] == 0.0 {
            0.0
        } else {
            self.beta * self.s_wl[cut] * window.powf(1.0 - self.lambda)
        };
        (aligned_count * self.alpha + self.alpha_m) * window + aligned_dyn + self.type_i[cut]
    }

    /// Eq. 8 interior optimum for case `cut`.
    fn interior_optimum(&self, cut: usize) -> f64 {
        if self.s_wl[cut] == 0.0 {
            return f64::INFINITY;
        }
        let denom = (self.n() - cut) as f64 * self.alpha + self.alpha_m;
        self.interval
            - (self.beta * (self.lambda - 1.0) * self.s_wl[cut] / denom).powf(1.0 / self.lambda)
    }

    /// Feasible `Δ` box of case `cut` (classification range ∩ `s_up` cap).
    fn case_box(&self, cut: usize) -> Option<(f64, f64)> {
        let lo = (self.interval - self.c[cut]).max(0.0);
        let class_hi = if cut == 0 {
            self.interval
        } else {
            self.interval - self.c[cut - 1]
        };
        let speed_hi = if self.w_max[cut] == 0.0 {
            self.interval
        } else {
            self.interval - self.w_max[cut] / self.s_up
        };
        let hi = class_hi.min(speed_hi);
        (lo <= hi + 1e-15 * self.interval.max(1.0)).then_some((lo, hi.max(lo)))
    }

    fn case_optimum(&self, cut: usize) -> Option<(f64, f64)> {
        let (lo, hi) = self.case_box(cut)?;
        let delta = self.interior_optimum(cut).clamp(lo, hi);
        Some((delta, self.energy(cut, delta)))
    }
}

/// §4.2 optimal scheme for common-release tasks with core sleeping.
/// `O(n²)` worst case (`O(n log n)` here thanks to the prefix/suffix forms).
///
/// # Errors
///
/// [`SdemError::NotCommonRelease`] if releases differ;
/// [`SdemError::InfeasibleTask`] if some task needs more than `s_up`.
///
/// # Examples
///
/// ```
/// use sdem_core::common_release::schedule_alpha_nonzero;
/// use sdem_power::Platform;
/// use sdem_types::{Task, TaskSet, Time, Cycles};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let platform = Platform::paper_defaults();
/// let tasks = TaskSet::new(vec![
///     Task::new(0, Time::ZERO, Time::from_millis(50.0), Cycles::new(1.0e7)),
///     Task::new(1, Time::ZERO, Time::from_millis(90.0), Cycles::new(2.0e7)),
/// ])?;
/// let sol = schedule_alpha_nonzero(&tasks, &platform)?;
/// sol.schedule().validate(&tasks)?;
/// # Ok(())
/// # }
/// ```
#[deprecated(
    since = "0.1.0",
    note = "call `solve(tasks, platform, Scheme::CommonReleaseAlphaNonzero)` from the crate root, or `schedule_alpha_nonzero_in` to reuse a `Workspace`"
)]
pub fn schedule_alpha_nonzero(tasks: &TaskSet, platform: &Platform) -> Result<Solution, SdemError> {
    schedule_alpha_nonzero_in(tasks, platform, &mut Workspace::new())
}

/// In-place [`schedule_alpha_nonzero`]: every scratch buffer and the
/// returned schedule's arenas are drawn from `ws`, so a warmed workspace
/// makes the solve allocation-free. Recycle the solution's schedule back
/// into `ws` when done with it.
pub fn schedule_alpha_nonzero_in(
    tasks: &TaskSet,
    platform: &Platform,
    ws: &mut Workspace,
) -> Result<Solution, SdemError> {
    let inst = prepare_in(tasks, platform, ws)?;
    // Critical-speed completion per task, then re-sort tasks by completion.
    let core = platform.core();
    let mut order = ws.take_keyed();
    completion_order_fill(
        &inst,
        |idx| core.critical_speed(inst.tasks[idx].filled_speed()),
        &mut order,
    );
    let mut sorted_c = ws.take_f64s();
    sorted_c.extend(order.iter().map(|&(c, _)| c));
    let mut works = ws.take_f64s();
    works.extend(order.iter().map(|&(_, idx)| inst.tasks[idx].work().value()));

    let cases = NonzeroCases::new_in(&sorted_c, &works, platform, ws);
    let (cut, delta, energy) = (0..cases.n())
        .filter_map(|cut| cases.case_optimum(cut).map(|(d, e)| (cut, d, e)))
        .min_by(|a, b| a.2.total_cmp(&b.2))
        .expect("the Δ = 0 case is always feasible");

    // Build the schedule: position k < cut keeps critical speed, k ≥ cut
    // aligns with the busy interval end.
    let r0 = inst.release;
    let window = cases.interval - delta;
    let mut placements = ws.take_placements();
    for (k, &(c_k, idx)) in order.iter().enumerate() {
        let t = &inst.tasks[idx];
        let mut segments = ws.take_segments();
        if t.work().value() > 0.0 {
            let len = if k >= cut { window } else { c_k };
            let end = r0 + Time::from_secs(len);
            let speed = t.work() / Time::from_secs(len);
            segments.push(Segment::new(r0, end, speed));
        }
        placements.push(Placement::new(t.id(), CoreId(idx), segments));
    }
    let solution = Solution::new(
        Schedule::new(placements),
        Joules::new(energy),
        Time::from_secs(delta),
    );
    cases.recycle(ws);
    ws.recycle_f64s(sorted_c);
    ws.recycle_f64s(works);
    ws.recycle_keyed(order);
    inst.recycle(ws);
    Ok(solution)
}

/// Critical-speed completion times for a prepared instance — exposed for
/// the §7 overhead scheme, which reuses the same case machinery with the
/// *constrained* critical speed. Clears and fills `out`.
pub(crate) fn completion_order_into(
    inst: &Instance,
    speeds: impl Fn(usize) -> Speed,
    out: &mut Vec<(f64, usize)>,
) {
    completion_order_fill(inst, speeds, out);
}

/// Shared body: `(completion, index)` pairs sorted by completion. The index
/// tiebreak makes the comparator a total order, so the unstable sort
/// reproduces the stable sort's insertion-order tie handling exactly.
fn completion_order_fill(
    inst: &Instance,
    speeds: impl Fn(usize) -> Speed,
    out: &mut Vec<(f64, usize)>,
) {
    out.clear();
    out.extend(inst.tasks.iter().enumerate().map(|(idx, t)| {
        let c = if t.work().value() == 0.0 {
            0.0
        } else {
            (t.work() / speeds(idx)).as_secs()
        };
        (c, idx)
    }));
    out.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
}

#[cfg(test)]
mod tests {
    // These tests keep exercising the deprecated convenience
    // wrappers so the legacy entry points stay covered until removal.
    #![allow(deprecated)]

    use super::*;
    use sdem_power::{CorePower, MemoryPower};
    use sdem_sim::{simulate, SleepPolicy};
    use sdem_types::{Cycles, Task, Watts};

    fn sec(v: f64) -> Time {
        Time::from_secs(v)
    }

    /// α = 4, β = 1, λ = 3 (s_m = 2^{1/3} ≈ 1.26), α_m configurable.
    fn platform(alpha_m: f64) -> Platform {
        Platform::new(
            CorePower::simple(4.0, 1.0, 3.0),
            MemoryPower::new(Watts::new(alpha_m)),
        )
    }

    fn tset(specs: &[(f64, f64)]) -> TaskSet {
        TaskSet::new(
            specs
                .iter()
                .enumerate()
                .map(|(i, &(d, w))| Task::new(i, sec(0.0), sec(d), Cycles::new(w)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn single_task_balances_core_and_memory() {
        // One task: optimal speed is the joint critical speed
        // s_1 = ((α+α_m)/(β(λ−1)))^{1/λ} (when feasible), §5.2's insight.
        let p = platform(12.0);
        let tasks = tset(&[(100.0, 4.0)]);
        let sol = schedule_alpha_nonzero(&tasks, &p).unwrap();
        let pl = sol.schedule().placement(sdem_types::TaskId(0)).unwrap();
        let s1 = ((4.0f64 + 12.0) / 2.0).powf(1.0 / 3.0);
        assert!(
            (pl.segments()[0].speed().as_hz() - s1).abs() < 1e-6,
            "speed {} vs s1 {s1}",
            pl.segments()[0].speed()
        );
        sol.schedule().validate(&tasks).unwrap();
    }

    #[test]
    fn zero_alpha_m_still_respects_core_sleep() {
        // With α_m = 0 the memory is free; every task should run at its own
        // critical speed (no reason to align).
        let p = platform(0.0);
        let tasks = tset(&[(50.0, 2.0), (60.0, 5.0), (80.0, 1.0)]);
        let sol = schedule_alpha_nonzero(&tasks, &p).unwrap();
        let s_m = 2.0f64.powf(1.0 / 3.0);
        for t in tasks.iter() {
            let pl = sol.schedule().placement(t.id()).unwrap();
            let s = pl.segments()[0].speed().as_hz();
            assert!((s - s_m).abs() < 1e-6, "task {} at {s}, s_m {s_m}", t.id());
        }
    }

    #[test]
    fn predicted_energy_matches_simulation() {
        let p = platform(6.0);
        let tasks = tset(&[(8.0, 2.0), (9.0, 4.0), (20.0, 3.0), (25.0, 1.0)]);
        let sol = schedule_alpha_nonzero(&tasks, &p).unwrap();
        let report = simulate(sol.schedule(), &tasks, &p, SleepPolicy::WhenProfitable).unwrap();
        let predicted = sol.predicted_energy().value();
        assert!(
            (report.total().value() - predicted).abs() < 1e-9 * predicted.max(1.0),
            "sim {} vs predicted {predicted}",
            report.total()
        );
    }

    #[test]
    fn tight_deadline_task_forces_filled_speed() {
        // A task denser than s_m must run at its filled speed (s_0 clamps up).
        let p = platform(1e-6);
        let tasks = tset(&[(1.0, 3.0), (50.0, 1.0)]);
        let sol = schedule_alpha_nonzero(&tasks, &p).unwrap();
        let pl = sol.schedule().placement(sdem_types::TaskId(0)).unwrap();
        assert!((pl.segments()[0].speed().as_hz() - 3.0).abs() < 1e-6);
        sol.schedule().validate(&tasks).unwrap();
    }

    #[test]
    fn alignment_beats_pure_critical_speed_when_memory_expensive() {
        // Expensive memory: aligning everything to one short busy interval
        // must not lose to the "all at s0" schedule.
        let p = platform(50.0);
        let tasks = tset(&[(40.0, 2.0), (40.0, 2.5), (40.0, 3.0)]);
        let sol = schedule_alpha_nonzero(&tasks, &p).unwrap();

        // Hand-build the "all at s0" schedule and price it.
        let s_m = 2.0f64.powf(1.0 / 3.0);
        let sched_s0 = Schedule::new(
            tasks
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let len = t.work().value() / s_m;
                    Placement::single(t.id(), CoreId(i), sec(0.0), sec(len), Speed::from_hz(s_m))
                })
                .collect(),
        );
        let e_s0 = simulate(&sched_s0, &tasks, &p, SleepPolicy::WhenProfitable)
            .unwrap()
            .total()
            .value();
        let e_opt = simulate(sol.schedule(), &tasks, &p, SleepPolicy::WhenProfitable)
            .unwrap()
            .total()
            .value();
        assert!(
            e_opt <= e_s0 + 1e-9 * e_s0,
            "optimal {e_opt} worse than all-critical {e_s0}"
        );
        // And with α_m = 50 the memory dominates: expect actual alignment.
        assert!(sol.memory_sleep().value() > 0.0);
    }

    #[test]
    fn case_energy_continuous_at_boundaries() {
        let p = platform(6.0);
        let c = [1.0, 2.0, 4.0];
        let w = [1.5, 3.0, 6.0];
        let cases = NonzeroCases::new(&c, &w, &p);
        let b = cases.interval - c[1]; // boundary between cut 1 and cut 2
        assert!((cases.energy(1, b) - cases.energy(2, b)).abs() < 1e-9);
    }

    #[test]
    fn zero_work_tasks_get_empty_placements() {
        let p = platform(3.0);
        let tasks = tset(&[(5.0, 0.0), (10.0, 2.0)]);
        let sol = schedule_alpha_nonzero(&tasks, &p).unwrap();
        let pl = sol.schedule().placement(sdem_types::TaskId(0)).unwrap();
        assert!(pl.segments().is_empty());
        sol.schedule().validate(&tasks).unwrap();
    }

    #[test]
    fn optimum_beats_dense_grid() {
        let p = platform(6.0);
        let tasks = tset(&[(8.0, 2.0), (12.0, 4.0), (30.0, 3.0)]);
        let sol = schedule_alpha_nonzero(&tasks, &p).unwrap();
        let best = sol.predicted_energy().value();
        let oracle = super::super::reference_optimum(&tasks, &p, 4000).unwrap();
        assert!(
            best <= oracle.value() + 1e-6 * oracle.value(),
            "scheme {best} worse than grid oracle {}",
            oracle.value()
        );
        assert!(
            best >= oracle.value() - 1e-3 * oracle.value(),
            "scheme {best} suspiciously below continuum oracle {}",
            oracle.value()
        );
    }
}
