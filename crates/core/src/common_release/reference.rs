//! Grid-search reference oracle for the common-release subproblems.
//!
//! For a *fixed* memory busy-interval end `T` (all execution inside
//! `[r₀, r₀+T]`), the tasks decouple: each independently picks the window
//! length `L ∈ [w/s_up, min(d, T)]` minimizing its own convex energy
//! `β w^λ L^{1−λ} + α L`, whose unclamped optimum is `w/s_m`. Sweeping `T`
//! over a dense grid therefore lower-bounds (to grid resolution) the true
//! optimum — an implementation completely independent of the paper's case
//! analysis, used to validate it.

use sdem_power::Platform;
use sdem_types::{Joules, TaskSet};

use super::{exceeds, prepare};
use crate::SdemError;

/// Dense grid search over the busy-interval length with per-task best
/// responses. `grid` is the number of sample points (≥ 2).
///
/// Returns the minimum sampled system energy. Intended for tests and
/// ablation benches; accuracy is `O(1/grid)` in `T`.
///
/// # Errors
///
/// Same preconditions as the §4 schemes: common release and per-task
/// feasibility at `s_up`.
///
/// # Panics
///
/// Panics if `grid < 2`.
///
/// # Examples
///
/// ```
/// use sdem_core::common_release::{reference_optimum, schedule_alpha_nonzero};
/// use sdem_power::Platform;
/// use sdem_types::{Task, TaskSet, Time, Cycles};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let platform = Platform::paper_defaults();
/// let tasks = TaskSet::new(vec![
///     Task::new(0, Time::ZERO, Time::from_millis(60.0), Cycles::new(2.0e7)),
/// ])?;
/// let oracle = reference_optimum(&tasks, &platform, 2000)?;
/// let scheme = schedule_alpha_nonzero(&tasks, &platform)?;
/// assert!(scheme.predicted_energy().value() <= oracle.value() * (1.0 + 1e-6));
/// # Ok(())
/// # }
/// ```
pub fn reference_optimum(
    tasks: &TaskSet,
    platform: &Platform,
    grid: usize,
) -> Result<Joules, SdemError> {
    assert!(grid >= 2, "grid must have at least two points");
    let inst = prepare(tasks, platform)?;
    let core = platform.core();
    let (alpha, beta, lambda) = (core.alpha().value(), core.beta(), core.lambda());
    let alpha_m = platform.memory().alpha_m().value();
    let s_up = core.max_speed().as_hz();
    let s_m = core.critical_speed_unclamped().as_hz();
    let r0 = inst.release;

    struct Job {
        w: f64,
        d: f64,
    }
    let jobs: Vec<Job> = inst
        .tasks
        .iter()
        .map(|t| Job {
            w: t.work().value(),
            d: (t.deadline() - r0).as_secs(),
        })
        .collect();

    // T must at least cover the fastest possible run of the largest job.
    let t_min = jobs
        .iter()
        .map(|j| j.w / s_up)
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let t_max = jobs.iter().map(|j| j.d).fold(0.0f64, f64::max);

    let task_energy = |job: &Job, t_end: f64| -> Option<f64> {
        if job.w == 0.0 {
            return Some(0.0);
        }
        let hi = job.d.min(t_end);
        let lo = job.w / s_up;
        if lo > hi * (1.0 + 1e-12) {
            return None;
        }
        // Unclamped optimum window: w/s_m (infinite when α = 0 ⇒ clamp hi).
        let l_star = if s_m > 0.0 {
            job.w / s_m
        } else {
            f64::INFINITY
        };
        let l = l_star.clamp(lo, hi);
        Some(beta * job.w.powf(lambda) * l.powf(1.0 - lambda) + alpha * l)
    };

    let mut best = f64::INFINITY;
    for k in 0..grid {
        let t_end = t_min + (t_max - t_min) * (k as f64) / ((grid - 1) as f64);
        let mut total = alpha_m * t_end;
        let mut feasible = true;
        for job in &jobs {
            match task_energy(job, t_end) {
                Some(e) => total += e,
                None => {
                    feasible = false;
                    break;
                }
            }
        }
        if feasible && total < best {
            best = total;
        }
    }
    debug_assert!(best.is_finite(), "grid contained no feasible point");
    // Feasibility precondition already verified in prepare(); re-check here
    // to keep the oracle standalone.
    for t in inst.tasks.iter() {
        if exceeds(t.filled_speed(), core.max_speed()) {
            return Err(SdemError::InfeasibleTask(t.id()));
        }
    }
    Ok(Joules::new(best))
}

#[cfg(test)]
mod tests {
    // These tests keep exercising the deprecated convenience
    // wrappers so the legacy entry points stay covered until removal.
    #![allow(deprecated)]

    use super::*;
    use crate::common_release::{schedule_alpha_nonzero, schedule_alpha_zero};
    use sdem_power::{CorePower, MemoryPower};
    use sdem_types::{Cycles, Task, Time, Watts};

    fn sec(v: f64) -> Time {
        Time::from_secs(v)
    }

    fn tset(specs: &[(f64, f64)]) -> TaskSet {
        TaskSet::new(
            specs
                .iter()
                .enumerate()
                .map(|(i, &(d, w))| Task::new(i, sec(0.0), sec(d), Cycles::new(w)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn oracle_brackets_alpha_zero_scheme() {
        let p = Platform::new(
            CorePower::simple(0.0, 1.0, 3.0),
            MemoryPower::new(Watts::new(4.0)),
        );
        for specs in [
            vec![(10.0, 2.0)],
            vec![(4.0, 2.0), (6.0, 3.0), (10.0, 1.0)],
            vec![(3.0, 2.0), (5.0, 1.0), (9.0, 4.0), (12.0, 2.5)],
        ] {
            let tasks = tset(&specs);
            let scheme = schedule_alpha_zero(&tasks, &p).unwrap();
            let oracle = reference_optimum(&tasks, &p, 5000).unwrap().value();
            let e = scheme.predicted_energy().value();
            assert!(
                e <= oracle * (1.0 + 1e-9),
                "{specs:?}: scheme {e} > oracle {oracle}"
            );
            assert!(
                e >= oracle * (1.0 - 5e-3),
                "{specs:?}: scheme {e} below oracle {oracle} by too much"
            );
        }
    }

    #[test]
    fn oracle_brackets_alpha_nonzero_scheme() {
        let p = Platform::new(
            CorePower::simple(4.0, 1.0, 3.0),
            MemoryPower::new(Watts::new(6.0)),
        );
        for specs in [
            vec![(100.0, 4.0)],
            vec![(8.0, 2.0), (12.0, 4.0), (30.0, 3.0)],
            vec![(8.0, 2.0), (9.0, 4.0), (20.0, 3.0), (25.0, 1.0)],
        ] {
            let tasks = tset(&specs);
            let scheme = schedule_alpha_nonzero(&tasks, &p).unwrap();
            let oracle = reference_optimum(&tasks, &p, 5000).unwrap().value();
            let e = scheme.predicted_energy().value();
            assert!(
                e <= oracle * (1.0 + 1e-9),
                "{specs:?}: scheme {e} > oracle {oracle}"
            );
            assert!(
                e >= oracle * (1.0 - 5e-3),
                "{specs:?}: scheme {e} below oracle {oracle} by too much"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn rejects_tiny_grid() {
        let p = Platform::paper_defaults();
        let tasks = tset(&[(10.0, 1.0)]);
        let _ = reference_optimum(&tasks, &p, 1);
    }
}
