//! Optimal schemes for tasks with a common release time (paper §4).
//!
//! All tasks release at the same instant `r₀`; each runs on its own core.
//! The only decision coupling tasks is the end of the memory busy interval
//! `T = |I| − Δ`: tasks "aligned" with the busy interval finish exactly at
//! `T`, the rest finish earlier and (when `α ≠ 0`) put their cores to sleep.
//!
//! * [`schedule_alpha_zero`] — §4.1, cores free when idle. The default entry
//!   point evaluates every case with closed forms (Eq. 4); the paper's
//!   sequential scan (Theorem 2) and `O(n log n)` binary search (Lemma 1)
//!   are provided as [`schedule_alpha_zero_scan`] and
//!   [`schedule_alpha_zero_binary_search`] and agree with it.
//! * [`schedule_alpha_nonzero`] — §4.2, cores sleep after finishing; tasks
//!   not aligned with the busy interval run at their critical speed `s₀`
//!   (Eq. 7–8, Lemma 2, Theorem 3).
//! * [`schedule_heterogeneous`] — the paper's §4 closing remark: the same
//!   case analysis with per-core power functions (per-task critical speeds,
//!   per-case energies summed per core and minimized numerically).
//! * [`reference_optimum`] — a dense grid search over the busy-interval
//!   length with per-task best responses; an independent oracle used by the
//!   test-suite and the ablation benches.

mod alpha_nonzero;
mod alpha_zero;
mod heterogeneous;
mod reference;

pub(crate) use alpha_nonzero::completion_order_into;
// The deprecated convenience wrappers stay re-exported until removal so
// downstream callers see the deprecation note instead of a hard break.
#[allow(deprecated)]
pub use alpha_nonzero::{schedule_alpha_nonzero, schedule_alpha_nonzero_in};
#[allow(deprecated)]
pub use alpha_zero::{
    schedule_alpha_zero, schedule_alpha_zero_binary_search, schedule_alpha_zero_in,
    schedule_alpha_zero_scan,
};
pub use heterogeneous::schedule_heterogeneous;
pub use reference::reference_optimum;

use sdem_power::Platform;
use sdem_types::{Speed, Task, TaskSet, Time, Workspace};

use crate::SdemError;

/// A validated common-release instance in *relative* time: task deadlines
/// are measured from the shared release `r0`.
pub(crate) struct Instance {
    /// The shared release instant (add back when building schedules).
    pub release: Time,
    /// Tasks sorted by the order the scheme needs (deadline for §4.1,
    /// critical-speed completion for §4.2). Taken from the workspace's task
    /// arena; recycle via [`Instance::recycle`].
    pub tasks: Vec<Task>,
}

impl Instance {
    /// Returns the task arena to the workspace.
    pub fn recycle(self, ws: &mut Workspace) {
        ws.recycle_tasks(self.tasks);
    }
}

/// Checks the common-release precondition and per-task feasibility
/// (`s_f ≤ s_up`), returning tasks sorted by deadline in a buffer drawn
/// from `ws`'s task arena.
pub(crate) fn prepare_in(
    tasks: &TaskSet,
    platform: &Platform,
    ws: &mut Workspace,
) -> Result<Instance, SdemError> {
    if !tasks.is_common_release() {
        return Err(SdemError::NotCommonRelease);
    }
    let s_up = platform.core().max_speed();
    for t in tasks.iter() {
        if exceeds(t.filled_speed(), s_up) {
            return Err(SdemError::InfeasibleTask(t.id()));
        }
    }
    let mut sorted = ws.take_tasks();
    tasks.sorted_by_deadline_into(&mut sorted);
    Ok(Instance {
        release: tasks.tasks()[0].release(),
        tasks: sorted,
    })
}

/// Allocating wrapper over [`prepare_in`] for the one-shot entry points.
pub(crate) fn prepare(tasks: &TaskSet, platform: &Platform) -> Result<Instance, SdemError> {
    prepare_in(tasks, platform, &mut Workspace::new())
}

/// Speed comparison with a relative guard for borderline-feasible tasks.
pub(crate) fn exceeds(speed: Speed, s_up: Speed) -> bool {
    speed.value() > s_up.value() * (1.0 + 1e-9)
}
