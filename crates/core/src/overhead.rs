//! Transition-overhead-aware schemes (paper §7): `ξ_m ≠ 0`, `ξ ≠ 0`.
//!
//! When sleep round trips cost energy, the §4 analysis changes in two ways:
//!
//! * each task's baseline speed becomes the **constrained critical speed**
//!   `s_c` — `s_m` is only worth targeting when the idle tail it creates is
//!   at least the core's break-even `ξ`, otherwise the task fills its
//!   region ([`sdem_power::CorePower::constrained_critical_speed`]);
//! * whether the common idle tail `Δ` is worth creating at all depends on
//!   how `Δ` compares with `ξ` and `ξ_m` — the paper's **Table 3**.
//!
//! This module evaluates §7 under the *horizon convention* (see
//! `sdem-sim`): every core and the memory are powered across the whole
//! maximal interval `[0, |I|]`; each trailing idle gap is then priced at
//! `min(idle-awake, round-trip)`, which is exactly the component-wise
//! optimal decision Table 3 encodes. [`schedule_common_release`] enumerates
//! the §4.2-style cases with the `s_c` ordering and, per case, evaluates the
//! full candidate set {Eq. 8 optimum (cores sleep with the memory), Eq. 4
//! optimum (cores idle awake), `ξ`, `ξ_m`, `0`, case edges} with exact
//! pricing — a superset of the paper's Table 3 rows, so it is never worse.
//!
//! [`classify_table3`] reproduces the published decision table literally
//! and is unit-tested row by row.

use sdem_power::{CorePower, MemoryPower, Platform};
use sdem_types::{CoreId, Joules, Placement, Schedule, Segment, TaskSet, Time, Workspace};

use crate::common_release::{completion_order_into, prepare_in};
use crate::{SdemError, Solution};

/// The decision rows of the paper's Table 3 for a case optimum `Δ_mi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Table3Row {
    /// `Δ_mi ≥ ξ, ξ_m`: sleep both — `Δ^{(ξ)} = Δ_mi`.
    SleepBoth,
    /// `ξ ≤ Δ_mi < ξ_m`: the memory round trip never pays off —
    /// `Δ^{(ξ)} = 0`, all cores execute at `s_c`.
    NoSleepAllCritical,
    /// `ξ_m ≤ Δ_mi < ξ`: evaluate the three subcases
    /// `{Δ_mi, ξ, 0}` and take the cheapest.
    Evaluate,
    /// `Δ_mi < ξ, ξ_m`: `Δ^{(ξ)} = 0`, all cores at `s_c`.
    NoSleepShortTail,
}

/// Classifies a case optimum per the paper's Table 3.
///
/// # Examples
///
/// ```
/// use sdem_core::overhead::{classify_table3, Table3Row};
/// use sdem_types::Time;
///
/// let ms = Time::from_millis;
/// assert_eq!(classify_table3(ms(50.0), ms(10.0), ms(40.0)), Table3Row::SleepBoth);
/// assert_eq!(classify_table3(ms(20.0), ms(10.0), ms(40.0)), Table3Row::NoSleepAllCritical);
/// assert_eq!(classify_table3(ms(20.0), ms(30.0), ms(15.0)), Table3Row::Evaluate);
/// assert_eq!(classify_table3(ms(5.0), ms(30.0), ms(15.0)), Table3Row::NoSleepShortTail);
/// ```
pub fn classify_table3(delta_m: Time, xi: Time, xi_m: Time) -> Table3Row {
    match (delta_m >= xi, delta_m >= xi_m) {
        (true, true) => Table3Row::SleepBoth,
        (true, false) => Table3Row::NoSleepAllCritical,
        (false, true) => Table3Row::Evaluate,
        (false, false) => Table3Row::NoSleepShortTail,
    }
}

struct OverheadCases {
    /// Constrained-critical-speed completions, sorted ascending (relative).
    c: Vec<f64>,
    /// Works in completion order.
    w: Vec<f64>,
    /// `|I| = d_n` (relative): §7 keeps the components powered over the
    /// maximal interval, not just until the last completion.
    interval: f64,
    /// Suffix sums of `w^λ` and suffix maxima of `w`.
    s_wl: Vec<f64>,
    w_max: Vec<f64>,
    /// `w_k^λ` per task — the power-law factor of the dynamic energy,
    /// identical across every `(cut, Δ)` evaluation.
    wl: Vec<f64>,
    /// `c_k^{1−λ}` per task: the prefix tasks (k < cut) always run for
    /// exactly `c_k`, so their factor never depends on `Δ`.
    run_pow: Vec<f64>,
    /// `best_gap_energy(|I| − c_k)` per task, for the same reason.
    run_gap: Vec<f64>,
    alpha: f64,
    beta: f64,
    lambda: f64,
    alpha_m: f64,
    s_up: f64,
    xi: f64,
    xi_m: f64,
    /// Latest completion at `s_c` — the busy-interval baseline `c_n`.
    c_max: f64,
    /// Power models for the shared min(idle-awake, round-trip) gap pricing.
    core_model: CorePower,
    mem_model: MemoryPower,
}

impl OverheadCases {
    fn n(&self) -> usize {
        self.c.len()
    }

    /// Exact §7 system energy for case `cut` at memory sleep `delta`,
    /// horizon convention over `[0, |I|]`. Trailing idle gaps are priced by
    /// the shared power-model `best_gap_energy` (idle awake vs round trip).
    fn energy(&self, cut: usize, delta: f64) -> f64 {
        let t_end = self.c_max - delta;
        let mut total = self.alpha_m * t_end
            + self
                .mem_model
                .best_gap_energy(Time::from_secs(self.interval - t_end))
                .value();
        // Every aligned task (k ≥ cut) runs for the same `t_end`, so its
        // power-law factor and trailing-gap price are shared; the prefix
        // tasks' factors are Δ-independent and precomputed at build time.
        // Hoisting changes neither the inputs to `powf`/`best_gap_energy`
        // nor the accumulation order, so the sum is bit-identical to the
        // naive per-task recomputation.
        let t_pow = t_end.powf(1.0 - self.lambda);
        let t_gap = self
            .core_model
            .best_gap_energy(Time::from_secs(self.interval - t_end))
            .value();
        for k in 0..self.n() {
            let aligned = k >= cut;
            if self.w[k] > 0.0 {
                let run_pow = if aligned { t_pow } else { self.run_pow[k] };
                total += self.beta * self.wl[k] * run_pow;
            }
            total += if aligned {
                self.alpha * t_end + t_gap
            } else {
                self.alpha * self.c[k] + self.run_gap[k]
            };
        }
        total
    }

    /// Eq. 8 optimum (aligned cores sleep together with the memory).
    fn eq8_optimum(&self, cut: usize) -> f64 {
        if self.s_wl[cut] == 0.0 {
            return f64::INFINITY;
        }
        let denom = (self.n() - cut) as f64 * self.alpha + self.alpha_m;
        self.c_max
            - (self.beta * (self.lambda - 1.0) * self.s_wl[cut] / denom).powf(1.0 / self.lambda)
    }

    /// Eq. 4 optimum (cores stay awake; only the memory sleeps).
    fn eq4_optimum(&self, cut: usize) -> f64 {
        if self.s_wl[cut] == 0.0 || self.alpha_m == 0.0 {
            return f64::INFINITY;
        }
        self.c_max
            - (self.beta * (self.lambda - 1.0) * self.s_wl[cut] / self.alpha_m)
                .powf(1.0 / self.lambda)
    }

    fn case_box(&self, cut: usize) -> Option<(f64, f64)> {
        let lo = (self.c_max - self.c[cut]).max(0.0);
        let class_hi = if cut == 0 {
            self.c_max
        } else {
            self.c_max - self.c[cut - 1]
        };
        let speed_hi = if self.w_max[cut] == 0.0 {
            self.c_max
        } else {
            self.c_max - self.w_max[cut] / self.s_up
        };
        let hi = class_hi.min(speed_hi);
        (lo <= hi + 1e-15 * self.c_max.max(1.0)).then_some((lo, hi.max(lo)))
    }
}

/// §7 optimal scheme for common-release tasks with non-negligible
/// transition overheads (Theorem 5 + Table 3, evaluated exactly).
///
/// With `ξ = ξ_m = 0` this reduces to the §4.2 scheme.
///
/// # Errors
///
/// [`SdemError::NotCommonRelease`] if releases differ;
/// [`SdemError::InfeasibleTask`] if some task needs more than `s_up`.
///
/// # Examples
///
/// ```
/// use sdem_core::overhead::schedule_common_release;
/// use sdem_power::Platform;
/// use sdem_types::{Task, TaskSet, Time, Cycles};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let platform = Platform::paper_defaults(); // ξ_m = 40 ms
/// let tasks = TaskSet::new(vec![
///     Task::new(0, Time::ZERO, Time::from_millis(60.0), Cycles::new(1.2e7)),
///     Task::new(1, Time::ZERO, Time::from_millis(100.0), Cycles::new(2.4e7)),
/// ])?;
/// let sol = schedule_common_release(&tasks, &platform)?;
/// sol.schedule().validate(&tasks)?;
/// # Ok(())
/// # }
/// ```
#[deprecated(
    since = "0.1.0",
    note = "call `solve(tasks, platform, Scheme::CommonReleaseOverhead)` from the crate root, or `schedule_common_release_in` to reuse a `Workspace`"
)]
pub fn schedule_common_release(
    tasks: &TaskSet,
    platform: &Platform,
) -> Result<Solution, SdemError> {
    schedule_common_release_in(tasks, platform, &mut Workspace::new())
}

/// In-place [`schedule_common_release`]: the case tables, sort scratch and
/// the returned schedule's arenas are all drawn from `ws`, so a warmed
/// workspace makes the solve allocation-free. Recycle the solution's
/// schedule back into `ws` when done with it.
pub fn schedule_common_release_in(
    tasks: &TaskSet,
    platform: &Platform,
    ws: &mut Workspace,
) -> Result<Solution, SdemError> {
    let inst = prepare_in(tasks, platform, ws)?;
    let core = platform.core();
    let r0 = inst.release;
    let interval = (tasks.latest_deadline() - r0).as_secs();

    // Constrained critical speed per task (§7), then completion order.
    let mut order = ws.take_keyed();
    completion_order_into(
        &inst,
        |idx| {
            let t = &inst.tasks[idx];
            core.constrained_critical_speed(t.work(), t.filled_speed(), Time::from_secs(interval))
        },
        &mut order,
    );
    let mut sorted_c = ws.take_f64s();
    sorted_c.extend(order.iter().map(|&(c, _)| c));
    let mut works = ws.take_f64s();
    works.extend(order.iter().map(|&(_, idx)| inst.tasks[idx].work().value()));
    let n = sorted_c.len();
    let lambda = core.lambda();
    let mut s_wl = ws.take_f64s();
    s_wl.resize(n + 1, 0.0);
    let mut w_max = ws.take_f64s();
    w_max.resize(n + 1, 0.0);
    for j in (0..n).rev() {
        s_wl[j] = s_wl[j + 1] + works[j].powf(lambda);
        w_max[j] = w_max[j + 1].max(works[j]);
    }
    // Δ-independent per-task factors, computed once for the whole candidate
    // enumeration (see `OverheadCases::energy`). Zero-work rows never read
    // their `run_pow`/`run_gap` slots, so `0^{1−λ} = ∞` there is inert.
    let mut wl = ws.take_f64s();
    let mut run_pow = ws.take_f64s();
    let mut run_gap = ws.take_f64s();
    for j in 0..n {
        wl.push(works[j].powf(lambda));
        run_pow.push(sorted_c[j].powf(1.0 - lambda));
        run_gap.push(
            core.best_gap_energy(Time::from_secs(interval - sorted_c[j]))
                .value(),
        );
    }
    let cases = OverheadCases {
        c_max: sorted_c.last().copied().unwrap_or(0.0),
        c: sorted_c,
        w: works,
        interval,
        s_wl,
        w_max,
        wl,
        run_pow,
        run_gap,
        alpha: core.alpha().value(),
        beta: core.beta(),
        lambda,
        alpha_m: platform.memory().alpha_m().value(),
        s_up: core.max_speed().as_hz(),
        xi: core.break_even().as_secs(),
        xi_m: platform.memory().break_even().as_secs(),
        core_model: *core,
        mem_model: *platform.memory(),
    };

    // Per case, evaluate the exact energy at every Table-3 candidate.
    let mut best: Option<(usize, f64, f64)> = None;
    for cut in 0..cases.n() {
        let Some((lo, hi)) = cases.case_box(cut) else {
            continue;
        };
        let candidates = [
            cases.eq8_optimum(cut),
            cases.eq4_optimum(cut),
            cases.xi,
            cases.xi_m,
            0.0,
            lo,
            hi,
        ];
        for cand in candidates {
            if !cand.is_finite() {
                continue;
            }
            let delta = cand.clamp(lo, hi);
            let e = cases.energy(cut, delta);
            if best.is_none_or(|b| e < b.2) {
                best = Some((cut, delta, e));
            }
        }
    }
    let (cut, delta, energy) = best.expect("the Δ = 0 case is always feasible");

    // Build the schedule: aligned tasks end at c_max − Δ, the rest run at
    // their constrained critical speed.
    let t_end = cases.c_max - delta;
    let mut placements = ws.take_placements();
    for (k, &(c_k, idx)) in order.iter().enumerate() {
        let t = &inst.tasks[idx];
        let mut segments = ws.take_segments();
        if t.work().value() > 0.0 {
            let len = if k >= cut { t_end } else { c_k };
            segments.push(Segment::new(
                r0,
                r0 + Time::from_secs(len),
                t.work() / Time::from_secs(len),
            ));
        }
        placements.push(Placement::new(t.id(), CoreId(idx), segments));
    }
    let solution = Solution::new(
        Schedule::new(placements),
        Joules::new(energy),
        Time::from_secs(delta),
    );
    ws.recycle_f64s(cases.c);
    ws.recycle_f64s(cases.w);
    ws.recycle_f64s(cases.s_wl);
    ws.recycle_f64s(cases.w_max);
    ws.recycle_f64s(cases.wl);
    ws.recycle_f64s(cases.run_pow);
    ws.recycle_f64s(cases.run_gap);
    ws.recycle_keyed(order);
    inst.recycle(ws);
    Ok(solution)
}

/// §7 for agreeable deadlines: the block solvers are unchanged (one busy
/// interval per block ⇒ one memory round trip) and the DP adds `α_m·ξ_m`
/// per inter-block transition — which [`crate::agreeable::schedule`]
/// already does, reading `ξ_m` from the platform.
///
/// # Errors
///
/// Same as [`crate::agreeable::schedule`].
#[deprecated(
    since = "0.1.0",
    note = "call `solve(tasks, platform, Scheme::AgreeableOverhead)` from the crate root, or `schedule_agreeable_in` to reuse a `Workspace`"
)]
pub fn schedule_agreeable(tasks: &TaskSet, platform: &Platform) -> Result<Solution, SdemError> {
    crate::agreeable::schedule_in(tasks, platform, &mut Workspace::new())
}

/// In-place [`schedule_agreeable`].
///
/// # Errors
///
/// Same as [`crate::agreeable::schedule`].
pub fn schedule_agreeable_in(
    tasks: &TaskSet,
    platform: &Platform,
    ws: &mut Workspace,
) -> Result<Solution, SdemError> {
    crate::agreeable::schedule_in(tasks, platform, ws)
}

#[cfg(test)]
mod tests {
    // These tests keep exercising the deprecated convenience
    // wrappers so the legacy entry points stay covered until removal.
    #![allow(deprecated)]

    use super::*;
    use sdem_power::{CorePower, MemoryPower};
    use sdem_sim::{simulate_with_options, SimOptions, SleepPolicy};
    use sdem_types::{Cycles, Task, Watts};

    fn sec(v: f64) -> Time {
        Time::from_secs(v)
    }

    fn platform(alpha: f64, alpha_m: f64, xi: f64, xi_m: f64) -> Platform {
        Platform::new(
            CorePower::simple(alpha, 1.0, 3.0).with_break_even(sec(xi)),
            MemoryPower::new(Watts::new(alpha_m)).with_break_even(sec(xi_m)),
        )
    }

    fn tset(specs: &[(f64, f64)]) -> TaskSet {
        TaskSet::new(
            specs
                .iter()
                .enumerate()
                .map(|(i, &(d, w))| Task::new(i, sec(0.0), sec(d), Cycles::new(w)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn table3_rows() {
        let d = Time::from_millis;
        // Row 1: Δ ≥ ξ, ξ_m.
        assert_eq!(
            classify_table3(d(80.0), d(20.0), d(40.0)),
            Table3Row::SleepBoth
        );
        // Row 2: ξ ≤ Δ < ξ_m.
        assert_eq!(
            classify_table3(d(30.0), d(20.0), d(40.0)),
            Table3Row::NoSleepAllCritical
        );
        // Row 3: ξ_m ≤ Δ < ξ.
        assert_eq!(
            classify_table3(d(30.0), d(40.0), d(20.0)),
            Table3Row::Evaluate
        );
        // Row 4: Δ < ξ, ξ_m.
        assert_eq!(
            classify_table3(d(10.0), d(40.0), d(20.0)),
            Table3Row::NoSleepShortTail
        );
        // Boundaries are inclusive on the ≥ side.
        assert_eq!(
            classify_table3(d(20.0), d(20.0), d(20.0)),
            Table3Row::SleepBoth
        );
    }

    #[test]
    fn predicted_energy_matches_horizon_simulation() {
        let p = platform(2.0, 5.0, 1.5, 2.5);
        let tasks = tset(&[(10.0, 2.0), (14.0, 4.0), (30.0, 3.0)]);
        let sol = schedule_common_release(&tasks, &p).unwrap();
        let horizon_end = tasks.latest_deadline();
        let opts =
            SimOptions::uniform(SleepPolicy::WhenProfitable).with_horizon(Time::ZERO, horizon_end);
        let report = simulate_with_options(sol.schedule(), &tasks, &p, opts).unwrap();
        let predicted = sol.predicted_energy().value();
        assert!(
            (report.total().value() - predicted).abs() < 1e-9 * predicted.max(1.0),
            "sim {} vs predicted {predicted}",
            report.total()
        );
    }

    #[test]
    fn zero_overhead_matches_section_4_2_schedule() {
        // With ξ = ξ_m = 0 the §7 scheme must pick the same (cut, Δ) — the
        // horizon gap terms all cost zero.
        let p = platform(4.0, 6.0, 0.0, 0.0);
        let tasks = tset(&[(8.0, 2.0), (9.0, 4.0), (20.0, 3.0)]);
        let a = schedule_common_release(&tasks, &p).unwrap();
        let b = crate::common_release::schedule_alpha_nonzero(&tasks, &p).unwrap();
        assert!(
            (a.memory_sleep() - b.memory_sleep()).abs().as_secs() < 1e-9,
            "Δ mismatch: §7 {} vs §4.2 {}",
            a.memory_sleep(),
            b.memory_sleep()
        );
        assert!(
            (a.predicted_energy().value() - b.predicted_energy().value()).abs()
                < 1e-9 * b.predicted_energy().value(),
        );
    }

    #[test]
    fn huge_memory_break_even_suppresses_memory_sleep() {
        // ξ_m larger than any possible tail: sleeping the memory never pays
        // off; the schedule should keep the memory busy to the last
        // completion with no planned common idle (Δ ≈ 0 or the energy of
        // sleeping equals idling).
        let p = platform(0.5, 5.0, 0.0, 1e6);
        let tasks = tset(&[(10.0, 2.0), (14.0, 4.0)]);
        let sol = schedule_common_release(&tasks, &p).unwrap();
        let e = sol.predicted_energy().value();
        // Hand-priced "everything at the critical speed" alternative:
        // memory idles awake (ξ_m huge), cores sleep for free (ξ = 0).
        let s_m = (0.5f64 / 2.0).powf(1.0 / 3.0);
        let runs = [2.0 / s_m.max(2.0 / 10.0), 4.0 / s_m.max(4.0 / 14.0)];
        let mut manual = 5.0 * 14.0; // α_m · |I|, no profitable memory sleep
        for (w, run) in [2.0f64, 4.0].iter().zip(&runs) {
            manual += w.powi(3) / (run * run) + 0.5 * run; // β w³ run⁻² + α·run
        }
        assert!(
            e <= manual * (1.0 + 1e-6),
            "scheme {e} worse than manual all-critical {manual}"
        );
    }

    #[test]
    fn overhead_scheme_never_worse_than_overhead_naive() {
        // Price the §4.2 schedule (overhead-oblivious) under the overhead
        // platform; the §7 scheme must be at least as good.
        let p = platform(2.0, 5.0, 3.0, 4.0);
        let tasks = tset(&[(10.0, 2.0), (14.0, 4.0), (30.0, 3.0), (31.0, 1.0)]);
        let naive = crate::common_release::schedule_alpha_nonzero(&tasks, &p).unwrap();
        let aware = schedule_common_release(&tasks, &p).unwrap();
        let horizon_end = tasks.latest_deadline();
        let opts =
            SimOptions::uniform(SleepPolicy::WhenProfitable).with_horizon(Time::ZERO, horizon_end);
        let e_naive = simulate_with_options(naive.schedule(), &tasks, &p, opts)
            .unwrap()
            .total()
            .value();
        let e_aware = simulate_with_options(aware.schedule(), &tasks, &p, opts)
            .unwrap()
            .total()
            .value();
        assert!(
            e_aware <= e_naive * (1.0 + 1e-9),
            "overhead-aware {e_aware} worse than naive {e_naive}"
        );
    }

    #[test]
    fn constrained_speed_reverts_to_filled_when_tail_too_short() {
        // A single task nearly filling its region: with a big ξ the tail at
        // s_m would be shorter than ξ, so s_c = s_f and the task fills.
        let core = CorePower::simple(4.0, 1.0, 3.0).with_break_even(sec(9.0));
        let p = Platform::new(core, MemoryPower::new(Watts::new(0.1)));
        // s_m = 2^{1/3} ≈ 1.26; w = 10, |I| = 10 ⇒ tail ≈ 2.06 < 9.
        let tasks = tset(&[(10.0, 10.0)]);
        let sol = schedule_common_release(&tasks, &p).unwrap();
        let pl = sol.schedule().placement(sdem_types::TaskId(0)).unwrap();
        assert!(
            (pl.segments()[0].speed().as_hz() - 1.0).abs() < 1e-9,
            "expected filled speed 1.0, got {}",
            pl.segments()[0].speed()
        );
    }

    #[test]
    fn agreeable_delegate_works() {
        let p = platform(0.0, 4.0, 0.0, 2.0);
        let tasks = TaskSet::new(vec![
            Task::new(0, sec(0.0), sec(3.0), Cycles::new(1.0)),
            Task::new(1, sec(5.0), sec(9.0), Cycles::new(1.0)),
        ])
        .unwrap();
        let sol = schedule_agreeable(&tasks, &p).unwrap();
        sol.schedule().validate(&tasks).unwrap();
    }
}
