//! Bounded-core SDEM (paper §3, Theorem 1) — the tiered partition solver.
//!
//! With fewer cores than tasks, SDEM is NP-hard even for tasks sharing one
//! release time and one deadline, `α = 0` and `ξ_m = 0`: the reduction from
//! PARTITION shows the optimum is reached exactly at a workload-balanced
//! assignment. This module provides the machinery around that result as
//! three solver tiers over one shared [`sdem_types::Partition`] state:
//!
//! * closed forms — [`partition_energy`] (paper Eq. 2: the optimal shared
//!   busy-interval for a fixed assignment, clamped by the deadline and
//!   `s_up`), [`partition_min_energy`] (paper Eq. 3: the unclamped
//!   optimum) and the convexity [`lower_bound`];
//! * **exact** ([`solve_exact_in`], `n ≤` [`EXACT_LIMIT`]) — canonical
//!   enumeration of all assignments (restricted-growth strings), the
//!   reference the other tiers are measured against;
//! * **branch-and-bound** ([`solve_bnb_in`], `n ≤` [`BNB_LIMIT`]) —
//!   best-first depth-first search seeded with the LPT incumbent and
//!   pruned by a water-filling relaxation of Eq. 3; bit-identical to the
//!   enumerator on every instance both accept, raising the practical
//!   exact ceiling;
//! * **LPT + refine** ([`solve_lpt_in`], [`solve_refined_in`], any `n`) —
//!   the polynomial heuristic tier: Longest-Processing-Time-first
//!   assignment, optionally polished by deterministic move/swap local
//!   search on the Σ W_c^λ objective.
//!
//! [`Scheme::BoundedAuto`](crate::Scheme::BoundedAuto) routes an instance
//! to the strongest tier its size admits: exact → B&B → LPT + refine.

use sdem_power::Platform;
use sdem_types::{
    CoreId, Joules, Placement, Schedule, Segment, Speed, Task, TaskId, TaskSet, Time, Workspace,
};

use crate::{SdemError, Solution};

mod bnb;
mod exact;
mod lpt;
mod refine;

pub use bnb::solve_bnb_in;
pub use exact::solve_exact_in;
pub use lpt::solve_lpt_in;
pub use refine::solve_refined_in;

/// Largest task count [`solve_exact`] accepts (the enumeration is
/// exponential; this caps it at a few million assignments).
pub const EXACT_LIMIT: usize = 14;

/// Largest task count [`solve_bnb_in`] accepts. Past [`EXACT_LIMIT`] the
/// search is additionally bounded by a deterministic node budget, so the
/// extended range stays interactive (the incumbent — LPT, improved by
/// every completed subtree — is returned if the budget trips).
pub const BNB_LIMIT: usize = 24;

/// For a fixed partition of the total work into per-core loads `W_c`,
/// returns `(busy_interval, energy)` minimizing (paper Eq. 2)
///
/// ```text
/// E(|I_b|) = Σ_c β W_c^λ |I_b|^{1−λ} + α_m |I_b|
/// ```
///
/// subject to `|I_b| ≤ deadline` and `W_c / |I_b| ≤ s_up`.
///
/// Returns `None` when no feasible interval exists (a load would need more
/// than `s_up` even over the whole deadline).
pub fn partition_energy(
    loads: &[f64],
    platform: &Platform,
    deadline: Time,
) -> Option<(Time, Joules)> {
    let core = platform.core();
    let (beta, lambda) = (core.beta(), core.lambda());
    let alpha_m = platform.memory().alpha_m().value();
    let d = deadline.as_secs();
    let sum_wl: f64 = loads.iter().map(|w| w.powf(lambda)).sum();
    let w_max = loads.iter().cloned().fold(0.0f64, f64::max);
    let lo = w_max / core.max_speed().as_hz();
    if lo > d * (1.0 + 1e-12) {
        return None;
    }
    let interior = if alpha_m > 0.0 && sum_wl > 0.0 {
        (beta * (lambda - 1.0) * sum_wl / alpha_m).powf(1.0 / lambda)
    } else {
        d // free memory: stretch to the deadline
    };
    let t = interior.clamp(lo.min(d), d);
    let dynamic = if sum_wl == 0.0 {
        0.0
    } else {
        beta * sum_wl * t.powf(1.0 - lambda)
    };
    Some((Time::from_secs(t), Joules::new(dynamic + alpha_m * t)))
}

/// Paper Eq. 3 (generalized to any number of loads): the unclamped minimum
/// of Eq. 2,
///
/// ```text
/// E_min = α_m^{(λ−1)/λ} · β^{1/λ} · λ · (λ−1)^{(1−λ)/λ} · (Σ_c W_c^λ)^{1/λ}
/// ```
///
/// Valid when neither the deadline nor `s_up` clamps the interval.
pub fn partition_min_energy(loads: &[f64], platform: &Platform) -> Joules {
    let core = platform.core();
    let (beta, lambda) = (core.beta(), core.lambda());
    let alpha_m = platform.memory().alpha_m().value();
    let sum_wl: f64 = loads.iter().map(|w| w.powf(lambda)).sum();
    Joules::new(
        alpha_m.powf((lambda - 1.0) / lambda)
            * beta.powf(1.0 / lambda)
            * lambda
            * (lambda - 1.0).powf((1.0 - lambda) / lambda)
            * sum_wl.powf(1.0 / lambda),
    )
}

/// Lower bound on the bounded-core optimum: by convexity of `x^λ`, the
/// per-core load vector minimizing `Σ W_c^λ` is the perfectly balanced
/// one, so Eq. 3 at `W_c = W/C` bounds every assignment from below (it is
/// generally unattainable — that is exactly the PARTITION hardness).
pub fn lower_bound(tasks: &TaskSet, platform: &Platform, cores: usize) -> Joules {
    let total = tasks.total_work().value();
    let balanced = vec![total / cores as f64; cores];
    partition_min_energy(&balanced, platform)
}

/// LPT (Longest Processing Time first) heuristic for the bounded-core
/// case: assign tasks in decreasing workload to the least-loaded core,
/// then size the shared busy interval optimally (Eq. 2). Polynomial-time
/// companion to the NP-hard exact problem; property tests compare it with
/// [`solve_exact`] on small instances and with [`lower_bound`] always.
///
/// # Errors
///
/// * [`SdemError::NoCores`] if `cores == 0`;
/// * [`SdemError::NotCommonRelease`] unless all releases and deadlines
///   coincide;
/// * [`SdemError::InfeasibleTask`] when the LPT assignment cannot meet the
///   deadline even at `s_up` (the exact solver may still succeed).
#[deprecated(
    since = "0.1.0",
    note = "call `solve(tasks, platform, Scheme::BoundedLpt(cores))` from the crate root, or `solve_lpt_in` to reuse a `Workspace`"
)]
pub fn solve_lpt(
    tasks: &TaskSet,
    platform: &Platform,
    cores: usize,
) -> Result<Solution, SdemError> {
    solve_lpt_in(tasks, platform, cores, &mut Workspace::new())
}

/// Exact bounded-core optimum by enumerating all canonical assignments of
/// `n` tasks to at most `cores` cores. Tasks must share one release time
/// and one deadline (the Theorem 1 model); core static power is taken as
/// negligible (`α = 0` model — `platform.core().alpha()` is ignored).
///
/// # Errors
///
/// * [`SdemError::TooLarge`] if `tasks.len() > EXACT_LIMIT`;
/// * [`SdemError::NoCores`] if `cores == 0`;
/// * [`SdemError::NotCommonRelease`] unless all releases and deadlines
///   coincide;
/// * [`SdemError::InfeasibleTask`] when even the fastest schedule misses
///   the deadline.
///
/// # Examples
///
/// ```
/// use sdem_core::bounded::solve_exact;
/// use sdem_power::{CorePower, MemoryPower, Platform};
/// use sdem_types::{Task, TaskSet, Time, Cycles, Watts};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let platform = Platform::new(
///     CorePower::simple(0.0, 1.0, 3.0),
///     MemoryPower::new(Watts::new(4.0)),
/// );
/// let tasks = TaskSet::new(vec![
///     Task::new(0, Time::ZERO, Time::from_secs(10.0), Cycles::new(3.0)),
///     Task::new(1, Time::ZERO, Time::from_secs(10.0), Cycles::new(2.0)),
///     Task::new(2, Time::ZERO, Time::from_secs(10.0), Cycles::new(1.0)),
/// ])?;
/// let sol = solve_exact(&tasks, &platform, 2)?;
/// sol.schedule().validate(&tasks)?;
/// // PARTITION structure: {3} vs {2, 1} balances the loads.
/// assert_eq!(sol.schedule().cores_used(), 2);
/// # Ok(())
/// # }
/// ```
#[deprecated(
    since = "0.1.0",
    note = "call `solve(tasks, platform, Scheme::BoundedExact(cores))` from the crate root, or `solve_exact_in` to reuse a `Workspace`"
)]
pub fn solve_exact(
    tasks: &TaskSet,
    platform: &Platform,
    cores: usize,
) -> Result<Solution, SdemError> {
    solve_exact_in(tasks, platform, cores, &mut Workspace::new())
}

/// Validates the Theorem 1 instance shape — every task shares one release
/// and one deadline — and returns `(release, deadline − release)`.
pub(crate) fn common_window(tasks: &TaskSet) -> Result<(Time, Time), SdemError> {
    let list = tasks.tasks();
    let r0 = list[0].release();
    let d0 = list[0].deadline();
    if !list.iter().all(|t| t.release() == r0 && t.deadline() == d0) {
        return Err(SdemError::NotCommonRelease);
    }
    Ok((r0, d0 - r0))
}

/// The heaviest task's id — the witness every tier reports when no
/// feasible assignment exists. `max_by` keeps the *last* maximal element,
/// pinning the historical choice of witness among duplicate works.
fn heaviest_task(list: &[Task]) -> TaskId {
    list.iter()
        .max_by(|a, b| a.work().value().total_cmp(&b.work().value()))
        .expect("non-empty")
        .id()
}

/// The LPT total order over task indices: decreasing work, increasing
/// index. The index tiebreak makes the comparator total, so the unstable
/// sort is a deterministic function of the works (equal to a stable sort
/// by work alone). The LPT greedy, the B&B branching order and the refine
/// tier's per-core member lists all use this one order.
pub(crate) fn lpt_order_into(works: &[f64], out: &mut Vec<usize>) {
    out.clear();
    out.extend(0..works.len());
    out.sort_unstable_by(|&a, &b| works[b].total_cmp(&works[a]).then(a.cmp(&b)));
}

/// Assembles the §3 schedule for a fixed assignment: each core runs its
/// tasks back-to-back over `[r0, r0 + interval]` at the shared speed
/// `loads[c] / interval`. `loads` must cover every core index appearing
/// in `assignment`; the caller chooses the accumulation (LPT keeps its
/// historical insertion-order sums, exact/B&B/refine pass canonical
/// index-order sums).
fn assemble_schedule(
    list: &[Task],
    assignment: &[usize],
    loads: &[f64],
    interval: Time,
    r0: Time,
    ws: &mut Workspace,
) -> Schedule {
    let mut cursor = ws.take_f64s();
    cursor.resize(loads.len(), 0.0);
    let mut placements = ws.take_placements();
    for (k, t) in list.iter().enumerate() {
        let c = assignment[k];
        let mut segments = ws.take_segments();
        let w = t.work().value();
        if w > 0.0 {
            let speed = loads[c] / interval.as_secs();
            let len = w / speed;
            let start = r0 + Time::from_secs(cursor[c]);
            cursor[c] += len;
            segments.push(Segment::new(
                start,
                start + Time::from_secs(len),
                Speed::from_hz(speed),
            ));
        }
        placements.push(Placement::new(t.id(), CoreId(c), segments));
    }
    ws.recycle_f64s(cursor);
    Schedule::new(placements)
}

#[cfg(test)]
mod tests {
    // These tests keep exercising the deprecated convenience
    // wrappers so the legacy entry points stay covered until removal.
    #![allow(deprecated)]

    use super::*;
    use sdem_power::{CorePower, MemoryPower};
    use sdem_sim::{simulate, SleepPolicy};
    use sdem_types::{Cycles, Task, Watts};

    fn sec(v: f64) -> Time {
        Time::from_secs(v)
    }

    fn platform(alpha_m: f64) -> Platform {
        Platform::new(
            CorePower::simple(0.0, 1.0, 3.0),
            MemoryPower::new(Watts::new(alpha_m)),
        )
    }

    fn tset(works: &[f64], d: f64) -> TaskSet {
        TaskSet::new(
            works
                .iter()
                .enumerate()
                .map(|(i, &w)| Task::new(i, sec(0.0), sec(d), Cycles::new(w)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn eq2_and_eq3_agree_at_the_unclamped_optimum() {
        let p = platform(4.0);
        let loads = [3.0, 2.5];
        let (t, e) = partition_energy(&loads, &p, sec(1.0e9)).unwrap();
        let closed = partition_min_energy(&loads, &p);
        assert!(
            (e.value() - closed.value()).abs() < 1e-9 * closed.value(),
            "Eq.2 at optimum {} vs Eq.3 {}",
            e.value(),
            closed.value()
        );
        // Eq. 2's interior optimum formula directly:
        let expected_t = (1.0f64 * 2.0 * (27.0 + 15.625) / 4.0).powf(1.0 / 3.0);
        assert!((t.as_secs() - expected_t).abs() < 1e-9);
    }

    #[test]
    fn deadline_clamps_the_interval() {
        let p = platform(1e-6); // nearly-free memory wants a huge interval
        let loads = [2.0, 2.0];
        let (t, _) = partition_energy(&loads, &p, sec(3.0)).unwrap();
        assert!((t.as_secs() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn speed_cap_clamps_the_interval() {
        let core = CorePower::simple(0.0, 1.0, 3.0).with_max_speed(sdem_types::Speed::from_hz(2.0));
        let p = Platform::new(core, MemoryPower::new(Watts::new(1e9)));
        let loads = [6.0, 2.0];
        let (t, _) = partition_energy(&loads, &p, sec(10.0)).unwrap();
        assert!((t.as_secs() - 3.0).abs() < 1e-9, "lo = 6/2 = 3, got {t}");
        // Infeasible when even the deadline is too short.
        assert!(partition_energy(&loads, &p, sec(2.0)).is_none());
    }

    #[test]
    fn partition_instance_balances_loads() {
        // PARTITION instance {3, 2, 1, 2}: balanced split 4/4 must win.
        let p = platform(4.0);
        let tasks = tset(&[3.0, 2.0, 1.0, 2.0], 100.0);
        let sol = solve_exact(&tasks, &p, 2).unwrap();
        sol.schedule().validate(&tasks).unwrap();
        // Recover the loads from the schedule.
        let mut loads = [0.0f64; 2];
        for pl in sol.schedule().placements() {
            loads[pl.core().0] += pl.executed_work().value();
        }
        loads.sort_by(f64::total_cmp);
        assert!(
            (loads[0] - 4.0).abs() < 1e-9 && (loads[1] - 4.0).abs() < 1e-9,
            "expected balanced 4/4, got {loads:?}"
        );
        // And the energy matches Eq. 3 for the balanced split.
        let closed = partition_min_energy(&[4.0, 4.0], &p);
        assert!((sol.predicted_energy().value() - closed.value()).abs() < 1e-9 * closed.value());
    }

    #[test]
    fn exact_matches_simulation() {
        let p = platform(2.0);
        let tasks = tset(&[3.0, 2.0, 1.5], 50.0);
        let sol = solve_exact(&tasks, &p, 2).unwrap();
        let report = simulate(sol.schedule(), &tasks, &p, SleepPolicy::WhenProfitable).unwrap();
        assert!(
            (report.total().value() - sol.predicted_energy().value()).abs()
                < 1e-9 * sol.predicted_energy().value(),
            "sim {} vs predicted {}",
            report.total(),
            sol.predicted_energy()
        );
    }

    #[test]
    fn more_cores_never_hurt() {
        let p = platform(3.0);
        let tasks = tset(&[3.0, 2.0, 1.0, 1.0, 0.5], 100.0);
        let mut prev = f64::INFINITY;
        for cores in 1..=5 {
            let e = solve_exact(&tasks, &p, cores)
                .unwrap()
                .predicted_energy()
                .value();
            assert!(e <= prev * (1.0 + 1e-12), "cores {cores}: {e} > {prev}");
            prev = e;
        }
    }

    #[test]
    fn unbounded_cores_match_common_release_scheme() {
        // With cores ≥ n and a common deadline, the bounded solver must
        // agree with the §4.1 scheme (cut = singleton-per-core case).
        let p = platform(4.0);
        let tasks = tset(&[3.0, 2.0, 1.0], 100.0);
        let a = solve_exact(&tasks, &p, 3).unwrap();
        let b = crate::common_release::schedule_alpha_zero(&tasks, &p).unwrap();
        assert!(
            (a.predicted_energy().value() - b.predicted_energy().value()).abs()
                < 1e-9 * b.predicted_energy().value(),
            "bounded {} vs §4.1 {}",
            a.predicted_energy(),
            b.predicted_energy()
        );
    }

    #[test]
    fn guards() {
        let p = platform(1.0);
        let tasks = tset(&[1.0; 15], 10.0);
        assert!(matches!(
            solve_exact(&tasks, &p, 2),
            Err(SdemError::TooLarge { tasks: 15, .. })
        ));
        let tasks = tset(&[1.0], 10.0);
        assert_eq!(solve_exact(&tasks, &p, 0), Err(SdemError::NoCores));
        let mixed = TaskSet::new(vec![
            Task::new(0, sec(0.0), sec(5.0), Cycles::new(1.0)),
            Task::new(1, sec(0.0), sec(6.0), Cycles::new(1.0)),
        ])
        .unwrap();
        assert_eq!(solve_exact(&mixed, &p, 2), Err(SdemError::NotCommonRelease));
    }

    #[test]
    fn bnb_guards() {
        let p = platform(1.0);
        let mut ws = Workspace::new();
        let tasks = tset(&[1.0; 25], 10.0);
        assert!(matches!(
            solve_bnb_in(&tasks, &p, 2, &mut ws),
            Err(SdemError::TooLarge { tasks: 25, .. })
        ));
        let tasks = tset(&[1.0], 10.0);
        assert_eq!(
            solve_bnb_in(&tasks, &p, 0, &mut ws),
            Err(SdemError::NoCores)
        );
        let mixed = TaskSet::new(vec![
            Task::new(0, sec(0.0), sec(5.0), Cycles::new(1.0)),
            Task::new(1, sec(0.0), sec(6.0), Cycles::new(1.0)),
        ])
        .unwrap();
        assert_eq!(
            solve_bnb_in(&mixed, &p, 2, &mut ws),
            Err(SdemError::NotCommonRelease)
        );
    }

    #[test]
    fn refine_guards() {
        let p = platform(1.0);
        let mut ws = Workspace::new();
        let tasks = tset(&[1.0], 10.0);
        assert_eq!(
            solve_refined_in(&tasks, &p, 0, &mut ws),
            Err(SdemError::NoCores)
        );
        let mixed = TaskSet::new(vec![
            Task::new(0, sec(0.0), sec(5.0), Cycles::new(1.0)),
            Task::new(1, sec(0.0), sec(6.0), Cycles::new(1.0)),
        ])
        .unwrap();
        assert_eq!(
            solve_refined_in(&mixed, &p, 2, &mut ws),
            Err(SdemError::NotCommonRelease)
        );
    }

    #[test]
    fn bnb_matches_exact_bitwise_on_shared_range() {
        let p = platform(4.0);
        let mut ws = Workspace::new();
        for works in [
            vec![3.0, 2.0, 1.0, 2.0],
            vec![5.0, 4.0, 3.0, 2.0, 1.0, 1.0],
            vec![1.0, 1.0, 1.0, 1.0, 1.0],
            vec![7.0, 1.0, 1.0, 1.0],
            vec![2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0, 2.0],
        ] {
            let tasks = tset(&works, 500.0);
            for cores in [1usize, 2, 3] {
                let a = solve_exact_in(&tasks, &p, cores, &mut ws).unwrap();
                let b = solve_bnb_in(&tasks, &p, cores, &mut ws).unwrap();
                assert_eq!(
                    a.predicted_energy().value().to_bits(),
                    b.predicted_energy().value().to_bits(),
                    "energy bits diverge on {works:?} cores {cores}"
                );
                assert_eq!(
                    a.schedule(),
                    b.schedule(),
                    "schedules diverge on {works:?} cores {cores}"
                );
            }
        }
    }

    #[test]
    fn bnb_extends_past_the_exact_ceiling() {
        // 18 tasks: TooLarge for the enumerator, in range for the B&B.
        let p = platform(4.0);
        let mut ws = Workspace::new();
        let works: Vec<f64> = (0..18).map(|i| 1.0 + (i % 5) as f64).collect();
        let tasks = tset(&works, 500.0);
        assert!(matches!(
            solve_exact_in(&tasks, &p, 3, &mut ws),
            Err(SdemError::TooLarge { .. })
        ));
        let sol = solve_bnb_in(&tasks, &p, 3, &mut ws).unwrap();
        sol.schedule().validate(&tasks).unwrap();
        let lb = lower_bound(&tasks, &p, 3);
        let lpt = solve_lpt_in(&tasks, &p, 3, &mut ws).unwrap();
        assert!(sol.predicted_energy().value() >= lb.value() * (1.0 - 1e-9));
        assert!(
            sol.predicted_energy().value() <= lpt.predicted_energy().value() * (1.0 + 1e-12),
            "B&B worse than its own LPT incumbent"
        );
    }

    #[test]
    fn refine_never_worse_than_lpt() {
        let p = platform(3.0);
        let mut ws = Workspace::new();
        // An adversarial LPT instance: works {3, 3, 2, 2, 2} on 2 cores.
        // LPT stacks 7/5; swapping a 3 against a 2 reaches the optimal
        // 6/6 balance, so refine must strictly improve here.
        let tasks = tset(&[3.0, 3.0, 2.0, 2.0, 2.0], 500.0);
        let lpt = solve_lpt_in(&tasks, &p, 2, &mut ws).unwrap();
        let refined = solve_refined_in(&tasks, &p, 2, &mut ws).unwrap();
        refined.schedule().validate(&tasks).unwrap();
        assert!(
            refined.predicted_energy().value() < lpt.predicted_energy().value(),
            "refine failed to improve LPT: {} vs {}",
            refined.predicted_energy(),
            lpt.predicted_energy()
        );
        // The swap neighborhood finds the perfect 6/6 balance.
        let exact = solve_exact_in(&tasks, &p, 2, &mut ws).unwrap();
        assert!(
            (refined.predicted_energy().value() - exact.predicted_energy().value()).abs()
                < 1e-9 * exact.predicted_energy().value(),
            "refined {} vs exact {}",
            refined.predicted_energy(),
            exact.predicted_energy()
        );
    }

    #[test]
    fn lpt_brackets_between_exact_and_lower_bound() {
        let p = platform(3.0);
        for works in [
            vec![3.0, 2.0, 1.0, 2.0],
            vec![5.0, 4.0, 3.0, 2.0, 1.0, 1.0],
            vec![1.0, 1.0, 1.0, 1.0, 1.0],
            vec![7.0, 1.0, 1.0, 1.0],
        ] {
            let tasks = tset(&works, 500.0);
            for cores in [2usize, 3] {
                let exact = solve_exact(&tasks, &p, cores).unwrap().predicted_energy();
                let lpt = solve_lpt(&tasks, &p, cores).unwrap();
                lpt.schedule().validate(&tasks).unwrap();
                let lb = lower_bound(&tasks, &p, cores);
                assert!(
                    lpt.predicted_energy().value() >= exact.value() * (1.0 - 1e-9),
                    "LPT beat the exact optimum on {works:?}"
                );
                assert!(
                    exact.value() >= lb.value() * (1.0 - 1e-9),
                    "exact below the convexity lower bound on {works:?}"
                );
                // LPT's load imbalance is mild: within 20% of exact here.
                assert!(
                    lpt.predicted_energy().value() <= exact.value() * 1.2,
                    "LPT unexpectedly poor on {works:?}: {} vs {}",
                    lpt.predicted_energy().value(),
                    exact.value()
                );
            }
        }
    }

    #[test]
    fn lpt_matches_exact_on_partitionable_instances() {
        // {3,3,2,2,1,1} splits 6/6 and LPT finds it.
        let p = platform(4.0);
        let tasks = tset(&[3.0, 3.0, 2.0, 2.0, 1.0, 1.0], 500.0);
        let exact = solve_exact(&tasks, &p, 2).unwrap().predicted_energy();
        let lpt = solve_lpt(&tasks, &p, 2).unwrap().predicted_energy();
        assert!((exact.value() - lpt.value()).abs() < 1e-9 * exact.value());
    }

    #[test]
    fn lpt_guards() {
        let p = platform(1.0);
        let tasks = tset(&[1.0], 10.0);
        assert_eq!(solve_lpt(&tasks, &p, 0), Err(SdemError::NoCores));
        let mixed = TaskSet::new(vec![
            Task::new(0, sec(0.0), sec(5.0), Cycles::new(1.0)),
            Task::new(1, sec(0.0), sec(6.0), Cycles::new(1.0)),
        ])
        .unwrap();
        assert_eq!(solve_lpt(&mixed, &p, 2), Err(SdemError::NotCommonRelease));
    }

    #[test]
    fn infeasible_when_too_dense() {
        let core = CorePower::simple(0.0, 1.0, 3.0).with_max_speed(sdem_types::Speed::from_hz(1.0));
        let p = Platform::new(core, MemoryPower::new(Watts::new(1.0)));
        // Two cores, three unit tasks, deadline 1: some core gets ≥ 2 work.
        let tasks = tset(&[1.0, 1.0, 1.0], 1.0);
        assert!(matches!(
            solve_exact(&tasks, &p, 2),
            Err(SdemError::InfeasibleTask(_))
        ));
        // Every tier agrees the instance is hopeless.
        let mut ws = Workspace::new();
        assert!(matches!(
            solve_bnb_in(&tasks, &p, 2, &mut ws),
            Err(SdemError::InfeasibleTask(_))
        ));
        assert!(matches!(
            solve_refined_in(&tasks, &p, 2, &mut ws),
            Err(SdemError::InfeasibleTask(_))
        ));
        assert!(matches!(
            solve_lpt_in(&tasks, &p, 2, &mut ws),
            Err(SdemError::InfeasibleTask(_))
        ));
    }
}
