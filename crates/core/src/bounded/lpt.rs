//! The one-shot LPT tier: Longest Processing Time first.
//!
//! Tasks are walked in the shared LPT total order (decreasing work,
//! increasing index) and greedily placed on the least-loaded core — the
//! classic makespan heuristic, which for the Σ W_c^λ energy objective is
//! the natural balance-seeking greedy. The assignment is held in the
//! pooled [`Partition`] over the task set's SoA columns, the same state
//! the branch-and-bound and refine tiers search.

use sdem_power::Platform;
use sdem_types::{Partition, TaskSet, Workspace};

use super::{assemble_schedule, common_window, heaviest_task, lpt_order_into, partition_energy};
use crate::{SdemError, Solution};

/// In-place [`solve_lpt`](super::solve_lpt): assignment scratch and the
/// returned schedule's arenas are drawn from `ws`, so a warmed workspace
/// makes the solve allocation-free. Recycle the solution's schedule back
/// into `ws` when done with it.
///
/// # Errors
///
/// Same as [`solve_lpt`](super::solve_lpt).
pub fn solve_lpt_in(
    tasks: &TaskSet,
    platform: &Platform,
    cores: usize,
    ws: &mut Workspace,
) -> Result<Solution, SdemError> {
    if cores == 0 {
        return Err(SdemError::NoCores);
    }
    let list = tasks.tasks();
    let (r0, deadline) = common_window(tasks)?;

    let mut soa = ws.take_soa();
    tasks.fill_soa(&mut soa);
    let mut order = ws.take_usizes();
    lpt_order_into(&soa.works, &mut order);
    let mut part = ws.take_partition();
    lpt_assign(&soa.works, &order, cores, &mut part);

    // The historical LPT loads are insertion-order sums — keep them (not
    // the canonical index-order rebuild) so the tier's output is stable.
    let feasible = partition_energy(part.loads(), platform, deadline);
    let Some((interval, energy)) = feasible else {
        ws.recycle_usizes(order);
        ws.recycle_partition(part);
        ws.recycle_soa(soa);
        return Err(SdemError::InfeasibleTask(heaviest_task(list)));
    };

    let schedule = assemble_schedule(list, part.assignment(), part.loads(), interval, r0, ws);
    ws.recycle_usizes(order);
    ws.recycle_partition(part);
    ws.recycle_soa(soa);
    Ok(Solution::new(schedule, energy, deadline - interval))
}

/// The LPT greedy over a [`Partition`]: walk `order` and place each task
/// on the currently least-loaded core (first minimum, so the placement is
/// deterministic). Loads accumulate in placement order. Shared by the
/// LPT tier itself, the B&B incumbent seed and the refine tier's start.
pub(super) fn lpt_assign(works: &[f64], order: &[usize], cores: usize, part: &mut Partition) {
    part.reset(works.len(), cores);
    for &k in order {
        let c = part.lightest_core();
        part.assign(k, c, works[k]);
    }
}
