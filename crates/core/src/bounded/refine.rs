//! The refine tier: LPT polished by deterministic move/swap local search.
//!
//! Starting from the LPT assignment, each round looks at the heaviest and
//! lightest cores only — by strict convexity of `x^λ`, shifting work from
//! the heaviest toward the lightest core is the steepest-descent direction
//! on the Σ W_c^λ objective — and considers two O(n)-discoverable steps:
//!
//! * **move** — relocate one task from the heaviest to the lightest core;
//!   the candidate is the task whose work lies closest to half the load
//!   gap (any work strictly inside `(0, gap)` improves; the midpoint
//!   improves most);
//! * **swap** — exchange one task from each core; the best net transfer
//!   `w_a − w_b` closest to half the gap is found by binary search over
//!   the lightest core's members, which the shared LPT order keeps sorted
//!   by decreasing work.
//!
//! The candidate with the larger actual Σ W_c^λ decrease is applied
//! (moves win ties); rounds stop at a fixed cap, when no candidate
//! improves, or when the cores are already balanced. Every choice breaks
//! ties by task index, so the refinement is a deterministic function of
//! the instance. An LPT start that misses the deadline can be repaired:
//! feasibility (Eq. 2) is judged on the final loads, not the initial ones.

use sdem_power::Platform;
use sdem_types::{TaskSet, Workspace};

use super::lpt::lpt_assign;
use super::{assemble_schedule, common_window, heaviest_task, lpt_order_into, partition_energy};
use crate::{SdemError, Solution};

/// Local-search round cap. Each round strictly decreases Σ W_c^λ (the
/// acceptance threshold filters ulp-level noise), so the cap only guards
/// pathological near-tie chains; in practice balance is reached far
/// earlier.
const REFINE_ROUNDS: usize = 64;

/// LPT + local-search bounded-core heuristic: the polynomial tier of
/// [`Scheme::BoundedAuto`](crate::Scheme::BoundedAuto), never worse than
/// [`solve_lpt_in`](super::solve_lpt_in) on the Σ W_c^λ objective and
/// deterministic for a given instance. Scratch and the returned schedule's
/// arenas come from `ws`.
///
/// # Errors
///
/// * [`SdemError::NoCores`] if `cores == 0`;
/// * [`SdemError::NotCommonRelease`] unless all releases and deadlines
///   coincide;
/// * [`SdemError::InfeasibleTask`] when the refined assignment still
///   cannot meet the deadline at `s_up`.
pub fn solve_refined_in(
    tasks: &TaskSet,
    platform: &Platform,
    cores: usize,
    ws: &mut Workspace,
) -> Result<Solution, SdemError> {
    if cores == 0 {
        return Err(SdemError::NoCores);
    }
    let list = tasks.tasks();
    let (r0, deadline) = common_window(tasks)?;

    let mut soa = ws.take_soa();
    tasks.fill_soa(&mut soa);
    let mut order = ws.take_usizes();
    lpt_order_into(&soa.works, &mut order);
    let mut part = ws.take_partition();
    lpt_assign(&soa.works, &order, cores, &mut part);

    let lambda = platform.core().lambda();
    let works = &soa.works;
    let mut members_h = ws.take_usizes();
    let mut members_l = ws.take_usizes();
    let mut improvements = 0u64;
    for _ in 0..REFINE_ROUNDS {
        let h = part.heaviest_core();
        let l = part.lightest_core();
        if h == l {
            break;
        }
        let wh = part.loads()[h];
        let wl = part.loads()[l];
        let gap = wh - wl;
        if gap <= 0.0 {
            break;
        }
        let target = 0.5 * gap;

        // One pass over the LPT order keeps both member lists sorted by
        // decreasing work (index-ascending among equals) — the invariant
        // the swap binary search relies on.
        members_h.clear();
        members_l.clear();
        for &i in order.iter() {
            let c = part.core_of(i);
            if c == h {
                members_h.push(i);
            } else if c == l {
                members_l.push(i);
            }
        }

        // Best move: the task on the heavy core closest to half the gap.
        let mut mv: Option<(f64, usize)> = None;
        for &i in members_h.iter() {
            let w = works[i];
            if w > 0.0 && w < gap {
                let dist = (w - target).abs();
                if mv.is_none_or(|(bd, bi)| dist < bd || (dist == bd && i < bi)) {
                    mv = Some((dist, i));
                }
            }
        }

        // Best swap: for each heavy-core task `a`, the light-core task
        // whose work sits nearest `w_a − target` (the two binary-search
        // neighbors are the only candidates).
        let mut sw: Option<(f64, usize, usize)> = None;
        if !members_l.is_empty() {
            for &a in members_h.iter() {
                let wa = works[a];
                let want = wa - target;
                let p = members_l.partition_point(|&b| works[b] > want);
                for q in [p.checked_sub(1), Some(p)].into_iter().flatten() {
                    if q >= members_l.len() {
                        continue;
                    }
                    let b = members_l[q];
                    let delta = wa - works[b];
                    if delta > 0.0 && delta < gap {
                        let dist = (delta - target).abs();
                        if sw.is_none_or(|(bd, ba, bb)| {
                            dist < bd || (dist == bd && (a, b) < (ba, bb))
                        }) {
                            sw = Some((dist, a, b));
                        }
                    }
                }
            }
        }

        // Price both candidates by their actual Σ W_c^λ change and apply
        // the better one; the threshold rejects ulp-level noise.
        let base = wh.powf(lambda) + wl.powf(lambda);
        let gain = |delta: f64| (wh - delta).powf(lambda) + (wl + delta).powf(lambda) - base;
        let threshold = -1e-12 * base;
        let mv = mv.map(|(_, i)| (gain(works[i]), i));
        let sw = sw.map(|(_, a, b)| (gain(works[a] - works[b]), a, b));
        let swap_wins = match (mv, sw) {
            (Some((gm, _)), Some((gs, _, _))) => gs < gm,
            (None, Some(_)) => true,
            _ => false,
        };
        if swap_wins {
            let (gs, a, b) = sw.expect("swap_wins implies a swap candidate");
            if gs >= threshold {
                break;
            }
            part.swap_tasks(a, b, works[a], works[b]);
        } else {
            let Some((gm, i)) = mv else { break };
            if gm >= threshold {
                break;
            }
            part.move_task(i, l, works[i]);
        }
        improvements += 1;
    }
    ws.recycle_usizes(members_h);
    ws.recycle_usizes(members_l);
    ws.recycle_usizes(order);
    sdem_obs::registry::add(
        sdem_obs::registry::Counter::BoundedRefineImprovements,
        improvements,
    );

    // Canonical index-order loads for the final pricing and assembly (the
    // incremental sums drift by ulps as tasks move between cores).
    part.rebuild_loads(works);
    let Some((interval, energy)) = partition_energy(part.loads(), platform, deadline) else {
        ws.recycle_partition(part);
        ws.recycle_soa(soa);
        return Err(SdemError::InfeasibleTask(heaviest_task(list)));
    };
    let schedule = assemble_schedule(list, part.assignment(), part.loads(), interval, r0, ws);
    ws.recycle_partition(part);
    ws.recycle_soa(soa);
    Ok(Solution::new(schedule, energy, deadline - interval))
}
