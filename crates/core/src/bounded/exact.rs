//! The exact tier: canonical enumeration of every task→core assignment.
//!
//! Assignments are walked as restricted-growth strings (task 0 on core 0;
//! task `k` may open at most one new core), so each set partition is
//! visited exactly once and the lexicographically-smallest canonical
//! string among energy-optimal assignments wins. This is the reference
//! semantics the branch-and-bound tier reproduces bit-for-bit.

use sdem_power::Platform;
use sdem_types::{TaskSet, Time, Workspace};

use super::{assemble_schedule, common_window, heaviest_task, partition_energy, EXACT_LIMIT};
use crate::{SdemError, Solution};

/// In-place [`solve_exact`](super::solve_exact): enumeration scratch (the
/// assignment vector, the per-leaf load accumulator, the incumbent best
/// assignment) and the returned schedule's arenas come from `ws`.
///
/// # Errors
///
/// Same as [`solve_exact`](super::solve_exact).
pub fn solve_exact_in(
    tasks: &TaskSet,
    platform: &Platform,
    cores: usize,
    ws: &mut Workspace,
) -> Result<Solution, SdemError> {
    if cores == 0 {
        return Err(SdemError::NoCores);
    }
    let n = tasks.len();
    if n > EXACT_LIMIT {
        return Err(SdemError::TooLarge {
            tasks: n,
            limit: EXACT_LIMIT,
        });
    }
    let list = tasks.tasks();
    let (r0, deadline) = common_window(tasks)?;
    let mut works = ws.take_f64s();
    works.extend(list.iter().map(|t| t.work().value()));

    // Canonical enumeration: task 0 on core 0; task k may use cores
    // 0..=min(max_used+1, cores−1).
    let mut assign = ws.take_usizes();
    assign.resize(n, 0);
    let mut best_assign = ws.take_usizes();
    let mut leaf_loads = ws.take_f64s();
    let mut best: Option<(Time, f64)> = None;
    enumerate(
        &works,
        platform,
        deadline,
        cores,
        1,
        0,
        &mut assign,
        &mut leaf_loads,
        &mut best_assign,
        &mut best,
    );
    ws.recycle_f64s(leaf_loads);
    ws.recycle_usizes(assign);
    let Some((interval, energy)) = best else {
        ws.recycle_f64s(works);
        ws.recycle_usizes(best_assign);
        // No feasible assignment: the heaviest single task cannot fit.
        return Err(SdemError::InfeasibleTask(heaviest_task(list)));
    };
    let assignment = best_assign;

    // Build the schedule: each core runs its tasks back-to-back over
    // [r0, r0 + |I_b|] at the shared speed W_c / |I_b|.
    let mut core_loads = ws.take_f64s();
    core_loads.resize(cores, 0.0);
    for (k, &c) in assignment.iter().enumerate() {
        core_loads[c] += works[k];
    }
    let schedule = assemble_schedule(list, &assignment, &core_loads, interval, r0, ws);
    ws.recycle_f64s(works);
    ws.recycle_f64s(core_loads);
    ws.recycle_usizes(assignment);
    Ok(Solution::new(
        schedule,
        sdem_types::Joules::new(energy),
        deadline - interval,
    ))
}

#[allow(clippy::too_many_arguments)]
fn enumerate(
    works: &[f64],
    platform: &Platform,
    deadline: Time,
    cores: usize,
    k: usize,
    max_used: usize,
    assign: &mut Vec<usize>,
    leaf_loads: &mut Vec<f64>,
    best_assign: &mut Vec<usize>,
    best: &mut Option<(Time, f64)>,
) {
    if k == works.len() {
        leaf_loads.clear();
        leaf_loads.resize(max_used + 1, 0.0);
        for (i, &c) in assign.iter().enumerate() {
            leaf_loads[c] += works[i];
        }
        if let Some((t, e)) = partition_energy(leaf_loads, platform, deadline) {
            if best.as_ref().is_none_or(|b| e.value() < b.1) {
                best_assign.clear();
                best_assign.extend_from_slice(assign);
                *best = Some((t, e.value()));
            }
        }
        return;
    }
    let limit = (max_used + 1).min(cores - 1);
    for c in 0..=limit {
        assign[k] = c;
        enumerate(
            works,
            platform,
            deadline,
            cores,
            k + 1,
            max_used.max(c),
            assign,
            leaf_loads,
            best_assign,
            best,
        );
    }
    assign[k] = 0;
}
