//! The branch-and-bound tier: exact results past the enumeration ceiling.
//!
//! A best-first depth-first search over the same assignment space as the
//! exact enumerator, with three additions that preserve its semantics
//! bit-for-bit while visiting a fraction of the tree:
//!
//! * **LPT incumbent** — the greedy LPT assignment, evaluated through the
//!   same canonical leaf path as every search leaf, seeds the cutoff, so
//!   pruning is effective from the first node;
//! * **water-filling bound** — for a partial assignment the remaining
//!   work is spread continuously to equalize the smallest loads (the
//!   convex relaxation of Σ W_c^λ), and the deadline-aware Eq. 3 energy
//!   of that relaxed vector is an admissible lower bound: no subtree
//!   containing an optimal leaf is ever pruned, because the prune test
//!   keeps a `1e-9` relative slack above the cutoff;
//! * **canonical leaf evaluation** — a leaf's loads are re-accumulated in
//!   original task-index order under first-use core relabeling, i.e. the
//!   exact float operation sequence of the enumerator's leaf, and ties on
//!   bitwise-equal energy resolve to the lexicographically smallest
//!   canonical restricted-growth string — the enumerator's DFS-first
//!   winner. Together these make [`solve_bnb_in`] bit-identical to
//!   [`solve_exact_in`](super::solve_exact_in) on every instance both
//!   accept.
//!
//! Tasks branch in the shared LPT total order (largest first), which both
//! tightens the bound early and reuses the one deterministic order the
//! LPT tier sorts by. Children of a node are expanded in ascending
//! lower-bound order (best-first), falling back to core index on ties.

use sdem_power::Platform;
use sdem_types::{Joules, TaskSet, Time, Workspace};

use super::lpt::lpt_assign;
use super::{
    assemble_schedule, common_window, heaviest_task, lpt_order_into, partition_energy, BNB_LIMIT,
    EXACT_LIMIT,
};
use crate::{SdemError, Solution};

/// Node budget for instances past [`EXACT_LIMIT`]: the search expands at
/// most this many nodes, then returns the best incumbent found so far
/// (still deterministic — the budget is a pure function of the input).
/// Within the enumerator's own range the budget is unlimited so the
/// bit-identity guarantee is unconditional.
const BNB_NODE_BUDGET: u64 = 2_000_000;

/// Branch-and-bound bounded-core optimum (see the module docs). Accepts
/// up to [`BNB_LIMIT`] tasks; on `n ≤` [`EXACT_LIMIT`] the result is
/// bit-identical to [`solve_exact_in`](super::solve_exact_in).
///
/// # Errors
///
/// * [`SdemError::TooLarge`] if `tasks.len() > BNB_LIMIT`;
/// * [`SdemError::NoCores`] if `cores == 0`;
/// * [`SdemError::NotCommonRelease`] unless all releases and deadlines
///   coincide;
/// * [`SdemError::InfeasibleTask`] when even the fastest schedule misses
///   the deadline.
pub fn solve_bnb_in(
    tasks: &TaskSet,
    platform: &Platform,
    cores: usize,
    ws: &mut Workspace,
) -> Result<Solution, SdemError> {
    if cores == 0 {
        return Err(SdemError::NoCores);
    }
    let n = tasks.len();
    if n > BNB_LIMIT {
        return Err(SdemError::TooLarge {
            tasks: n,
            limit: BNB_LIMIT,
        });
    }
    let list = tasks.tasks();
    let (r0, deadline) = common_window(tasks)?;

    let mut soa = ws.take_soa();
    tasks.fill_soa(&mut soa);
    let mut order = ws.take_usizes();
    lpt_order_into(&soa.works, &mut order);

    // Seed the incumbent with the LPT assignment, evaluated through the
    // same canonical leaf path as every search leaf.
    let mut part = ws.take_partition();
    lpt_assign(&soa.works, &order, cores, &mut part);

    let mut relabel = ws.take_usizes();
    let mut rgs = ws.take_usizes();
    let mut leaf_loads = ws.take_f64s();
    let mut best_rgs = ws.take_usizes();
    let mut best: Option<(Time, f64)> = None;
    if let Some((t, e)) = canonical_eval(
        part.assignment(),
        &soa.works,
        platform,
        deadline,
        cores,
        &mut relabel,
        &mut rgs,
        &mut leaf_loads,
    ) {
        best_rgs.extend_from_slice(&rgs);
        best = Some((t, e.value()));
    }

    // Suffix sums of remaining work in branch (LPT) order.
    let mut rem = ws.take_f64s();
    rem.resize(n + 1, 0.0);
    for j in (0..n).rev() {
        rem[j] = rem[j + 1] + soa.works[order[j]];
    }

    let core = platform.core();
    let (beta, lambda) = (core.beta(), core.lambda());
    let alpha_m = platform.memory().alpha_m().value();
    let mut assignment = ws.take_usizes();
    assignment.resize(n, 0);
    let mut loads = ws.take_f64s();
    loads.resize(cores, 0.0);
    let mut search = Search {
        works: &soa.works,
        order: &order,
        rem: &rem,
        platform,
        deadline,
        d_secs: deadline.as_secs(),
        s_up: core.max_speed().as_hz(),
        beta,
        lambda,
        alpha_m,
        eq3_const: alpha_m.powf((lambda - 1.0) / lambda)
            * beta.powf(1.0 / lambda)
            * lambda
            * (lambda - 1.0).powf((1.0 - lambda) / lambda),
        cores,
        budget: if n <= EXACT_LIMIT {
            u64::MAX
        } else {
            BNB_NODE_BUDGET
        },
        nodes: 0,
        pruned: 0,
        assignment,
        loads,
        sort_scratch: ws.take_f64s(),
        relabel,
        rgs,
        leaf_loads,
        best_rgs,
        best,
        cutoff: best.map_or(f64::INFINITY, |(_, e)| e),
    };
    search.dfs(0, 0);

    sdem_obs::registry::add(
        sdem_obs::registry::Counter::BoundedNodesExpanded,
        search.nodes,
    );
    sdem_obs::registry::add(sdem_obs::registry::Counter::BoundedPruned, search.pruned);

    let Search {
        assignment,
        loads,
        sort_scratch,
        relabel,
        rgs,
        leaf_loads,
        best_rgs,
        best,
        ..
    } = search;
    ws.recycle_usizes(assignment);
    ws.recycle_f64s(loads);
    ws.recycle_f64s(sort_scratch);
    ws.recycle_usizes(relabel);
    ws.recycle_usizes(rgs);
    ws.recycle_f64s(leaf_loads);
    ws.recycle_usizes(order);
    ws.recycle_f64s(rem);
    ws.recycle_partition(part);

    let Some((interval, energy)) = best else {
        ws.recycle_usizes(best_rgs);
        ws.recycle_soa(soa);
        return Err(SdemError::InfeasibleTask(heaviest_task(list)));
    };

    // Canonical index-order loads of the winning assignment — the same
    // accumulation the leaf evaluation (and the enumerator) performed.
    let mut core_loads = ws.take_f64s();
    core_loads.resize(cores, 0.0);
    for (i, &c) in best_rgs.iter().enumerate() {
        core_loads[c] += soa.works[i];
    }
    let schedule = assemble_schedule(list, &best_rgs, &core_loads, interval, r0, ws);
    ws.recycle_f64s(core_loads);
    ws.recycle_usizes(best_rgs);
    ws.recycle_soa(soa);
    Ok(Solution::new(
        schedule,
        Joules::new(energy),
        deadline - interval,
    ))
}

/// Evaluates a complete assignment exactly as the enumerator evaluates a
/// leaf: cores are relabeled by first use in original task-index order,
/// loads are accumulated in that index order, and Eq. 2 prices the
/// result. `rgs` receives the canonical restricted-growth string (the
/// tie-break key); `relabel`/`leaf_loads` are scratch.
#[allow(clippy::too_many_arguments)]
fn canonical_eval(
    assignment: &[usize],
    works: &[f64],
    platform: &Platform,
    deadline: Time,
    cores: usize,
    relabel: &mut Vec<usize>,
    rgs: &mut Vec<usize>,
    leaf_loads: &mut Vec<f64>,
) -> Option<(Time, Joules)> {
    relabel.clear();
    relabel.resize(cores, usize::MAX);
    rgs.clear();
    let mut next = 0usize;
    for &c in assignment {
        if relabel[c] == usize::MAX {
            relabel[c] = next;
            next += 1;
        }
        rgs.push(relabel[c]);
    }
    leaf_loads.clear();
    leaf_loads.resize(next, 0.0);
    for (i, &c) in rgs.iter().enumerate() {
        leaf_loads[c] += works[i];
    }
    partition_energy(leaf_loads, platform, deadline)
}

struct Search<'a> {
    works: &'a [f64],
    order: &'a [usize],
    rem: &'a [f64],
    platform: &'a Platform,
    deadline: Time,
    d_secs: f64,
    s_up: f64,
    beta: f64,
    lambda: f64,
    alpha_m: f64,
    eq3_const: f64,
    cores: usize,
    budget: u64,
    nodes: u64,
    pruned: u64,
    assignment: Vec<usize>,
    loads: Vec<f64>,
    sort_scratch: Vec<f64>,
    relabel: Vec<usize>,
    rgs: Vec<usize>,
    leaf_loads: Vec<f64>,
    best_rgs: Vec<usize>,
    best: Option<(Time, f64)>,
    cutoff: f64,
}

impl Search<'_> {
    fn dfs(&mut self, depth: usize, used: usize) {
        if self.nodes >= self.budget {
            return;
        }
        if depth == self.order.len() {
            self.leaf();
            return;
        }
        let i = self.order[depth];
        let w = self.works[i];
        let after = self.rem[depth + 1];
        let limit = used.min(self.cores - 1);

        // Bound every admissible child, then expand best-first. The
        // children fit on the stack: canonical growth admits at most
        // depth + 1 ≤ BNB_LIMIT cores at this node.
        let mut children = [(0.0f64, 0usize); BNB_LIMIT];
        let mut count = 0usize;
        for c in 0..=limit {
            // A core already past the speed-cap capacity can only get
            // worse: every leaf below fails the Eq. 2 feasibility test.
            if (self.loads[c] + w) > self.s_up * self.d_secs * (1.0 + 1e-9) {
                self.pruned += 1;
                continue;
            }
            let saved = self.loads[c];
            self.loads[c] = saved + w;
            let lb = self.partial_bound(after);
            self.loads[c] = saved;
            if lb > self.cutoff * (1.0 + 1e-9) {
                self.pruned += 1;
                continue;
            }
            children[count] = (lb, c);
            count += 1;
        }
        children[..count].sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        for &(lb, c) in &children[..count] {
            // The cutoff may have tightened while earlier siblings ran.
            if lb > self.cutoff * (1.0 + 1e-9) {
                self.pruned += 1;
                continue;
            }
            if self.nodes >= self.budget {
                return;
            }
            self.nodes += 1;
            let saved = self.loads[c];
            self.loads[c] = saved + w;
            self.assignment[i] = c;
            self.dfs(depth + 1, if c == used { used + 1 } else { used });
            self.loads[c] = saved;
        }
    }

    fn leaf(&mut self) {
        let Some((t, e)) = canonical_eval(
            &self.assignment,
            self.works,
            self.platform,
            self.deadline,
            self.cores,
            &mut self.relabel,
            &mut self.rgs,
            &mut self.leaf_loads,
        ) else {
            return;
        };
        let e = e.value();
        let replace = match &self.best {
            None => true,
            Some((_, be)) => e < *be || (e == *be && self.rgs < self.best_rgs),
        };
        if replace {
            self.best_rgs.clear();
            self.best_rgs.extend_from_slice(&self.rgs);
            self.best = Some((t, e));
            self.cutoff = e;
        }
    }

    /// Admissible lower bound for the current partial loads plus
    /// `remaining` unassigned work: water-fill the remainder over the
    /// smallest loads (the continuous minimizer of Σ W_c^λ), then price
    /// the relaxed vector with the deadline-aware Eq. 3.
    fn partial_bound(&mut self, remaining: f64) -> f64 {
        self.sort_scratch.clear();
        self.sort_scratch.extend_from_slice(&self.loads);
        self.sort_scratch.sort_unstable_by(f64::total_cmp);
        let s = &self.sort_scratch;
        let mut level = s[0];
        let mut k = 1usize;
        let mut fill = remaining;
        while fill > 0.0 {
            let next = if k < self.cores { s[k] } else { f64::INFINITY };
            let need = (next - level) * k as f64;
            if need >= fill {
                level += fill / k as f64;
                break;
            }
            fill -= need;
            level = next;
            k += 1;
        }
        let mut sum_wl = k as f64 * level.powf(self.lambda);
        for &v in &s[k..] {
            sum_wl += v.powf(self.lambda);
        }
        self.bound_energy(sum_wl)
    }

    /// `min over t ∈ (0, deadline] of β·Σ·t^{1−λ} + α_m·t` — Eq. 3 when
    /// the interior optimum fits the window, the deadline-clamped Eq. 2
    /// energy otherwise (that branch also covers `α_m = 0`).
    fn bound_energy(&self, sum_wl: f64) -> f64 {
        if sum_wl <= 0.0 {
            return 0.0;
        }
        let interior = if self.alpha_m > 0.0 {
            (self.beta * (self.lambda - 1.0) * sum_wl / self.alpha_m).powf(1.0 / self.lambda)
        } else {
            f64::INFINITY
        };
        if interior <= self.d_secs {
            self.eq3_const * sum_wl.powf(1.0 / self.lambda)
        } else {
            self.beta * sum_wl * self.d_secs.powf(1.0 - self.lambda) + self.alpha_m * self.d_secs
        }
    }
}
