//! Federated scheduling of precedence DAGs with per-core SDEM energy
//! minimization.
//!
//! The classic federated decomposition (Li et al.) splits a DAG workload
//! in two: *heavy* DAGs — utilization above one even at `s_up` — each get
//! a dedicated cluster of cores, while *light* DAGs share the remaining
//! cores. This module layers the paper's energy machinery on top:
//!
//! 1. **Allocate.** Heavy DAGs claim `⌈(W − L)/(D − L)⌉` dedicated cores
//!    (escalated while the layered list schedule still misses the window
//!    — layer barriers can exceed the Graham-style bound); light DAGs are
//!    LPT-packed onto the shared cores.
//! 2. **Window.** Each DAG's window is chopped into sequential per-node
//!    windows: layer slots proportional to the per-layer heaviest core
//!    load, then per-(layer, core) member windows proportional to node
//!    work. Every edge crosses a layer boundary, so layer-ordered windows
//!    structurally satisfy every precedence constraint.
//! 3. **Solve.** Each physical core's window set is an ordinary SDEM
//!    instance (sequential windows are agreeable by construction) and is
//!    energy-minimized with [`Scheme::Auto`]; the DVS slack inside each
//!    window is exactly the paper's race-to-idle-or-not trade-off.
//! 4. **Price.** Per-core solutions are re-priced under the gap
//!    convention ([`Solution::from_schedule_in`]) and merged into one
//!    aggregate solution whose memory energy counts the cross-core busy
//!    union once — the same accounting the `sdem-sim` meter applies, so
//!    [`DagReport::verify_against_meter`] agrees to round-off.
//!
//! [`solve_federated_in`] is the lean [`Scheme::DagFederated`] path for
//! plain common-window task sets (each task a singleton light DAG); it
//! shares the chopping arithmetic with the general pipeline bit for bit,
//! which the differential suite pins.

use core::cmp::Ordering;

use sdem_obs::Counter;
use sdem_power::Platform;
use sdem_types::{
    CoreId, Cycles, Joules, Placement, Schedule, Speed, Task, TaskId, TaskSet, Time, Workspace,
};
use sdem_workload::dag::Dag;

use crate::bounded::{common_window, lpt_order_into};
use crate::oracle::{OracleError, OracleOptions};
use crate::{solve_in, Scheme, SdemError, Solution};

/// Where the federated allocator placed one DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DagAssignment {
    /// A heavy DAG's dedicated cluster.
    Dedicated {
        /// First physical core of the cluster.
        first_core: usize,
        /// Cluster width in cores.
        cores: usize,
    },
    /// A light DAG's shared core.
    Shared {
        /// The physical core the whole DAG runs on.
        core: usize,
    },
}

/// Per-physical-core summary of a federated solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DagCoreReport {
    /// The physical core.
    pub core: CoreId,
    /// Gap-convention energy of this core's sub-schedule viewed in
    /// isolation (its memory term counts only this core's busy union, so
    /// the sum over cores exceeds the aggregate, which prices the shared
    /// memory once).
    pub energy: Joules,
    /// Memory sleep of the isolated per-core view.
    pub memory_sleep: Time,
    /// Number of node windows scheduled on this core.
    pub tasks: usize,
}

/// Result of [`solve_dags_in`]: the merged energy-minimized schedule plus
/// the allocation decisions the federated pipeline made.
#[derive(Debug, Clone, PartialEq)]
pub struct DagReport {
    /// Aggregate solution over every core, priced under the gap
    /// convention (memory busy-union counted once).
    pub solution: Solution,
    /// The derived windowed tasks (global id = DAG id-base + node id) —
    /// exactly the set [`DagReport::verify_against_meter`] meters.
    pub tasks: TaskSet,
    /// Per-core summaries, ascending core id, busy cores only.
    pub per_core: Vec<DagCoreReport>,
    /// Allocation decision per input DAG, in input order.
    pub assignments: Vec<DagAssignment>,
    /// Physical cores that ended up with at least one segment.
    pub cores_used: usize,
    /// Dedicated clusters allocated (one per heavy DAG).
    pub clusters: usize,
}

impl DagReport {
    /// Meters the aggregate schedule with `sdem-sim` and checks the
    /// analytic prediction, exactly like
    /// [`Solution::verify_against_meter`].
    ///
    /// # Errors
    ///
    /// See [`Solution::verify_against_meter`].
    pub fn verify_against_meter(
        &self,
        platform: &Platform,
        options: OracleOptions,
    ) -> Result<Joules, OracleError> {
        self.solution
            .verify_against_meter(&self.tasks, platform, options)
    }
}

/// Tears a [`DagReport`] back down into the workspace pools (schedule
/// segments/placements and the derived task vector), keeping a trial loop
/// allocation-free.
pub fn recycle_dag_report(report: DagReport, ws: &mut Workspace) {
    let DagReport {
        solution, tasks, ..
    } = report;
    ws.recycle_schedule(solution.into_schedule());
    ws.recycle_tasks(tasks.into_tasks());
}

/// A cumulative-fraction chop boundary: `start + span·(cum/total)`,
/// snapped to `end` exactly on the final boundary so the last window
/// inherits the enclosing window's end bit-for-bit (`cum/total` reaches
/// exactly `1.0`, but `start + span` need not equal `end`).
fn chop_boundary(start: Time, end: Time, span: Time, cum: f64, total: f64) -> Time {
    if cum >= total {
        end
    } else {
        start + span * (cum / total)
    }
}

/// Greedy LPT packing: items in (work descending, index ascending) order,
/// each onto the least-loaded core, lowest core index on ties. Shared by
/// the light-DAG allocator and the lean task-set path so the two agree
/// bit for bit.
fn pack_lpt(
    works: &[f64],
    cores: usize,
    order: &mut Vec<usize>,
    loads: &mut Vec<f64>,
    assignment: &mut Vec<usize>,
) {
    lpt_order_into(works, order);
    loads.clear();
    loads.resize(cores, 0.0);
    assignment.clear();
    assignment.resize(works.len(), 0);
    for &i in order.iter() {
        let mut best = 0;
        for c in 1..cores {
            if loads[c] < loads[best] {
                best = c;
            }
        }
        assignment[i] = best;
        loads[best] += works[i];
    }
}

/// The infeasibility witness of a DAG: its heaviest node (lowest id among
/// equals), as a node id.
fn witness_node(dag: &Dag) -> usize {
    let mut best = 0;
    for v in 1..dag.node_count() {
        if dag.work_of(v).total_cmp(&dag.work_of(best)) == Ordering::Greater {
            best = v;
        }
    }
    best
}

/// Chops one DAG's window into sequential per-node windows on its cluster
/// and appends the derived tasks (global id `base + node`) onto the
/// physical-core arenas `arenas[first_core..first_core + m]`.
///
/// Layer slots split the window proportional to the per-layer heaviest
/// core load; within a (layer, core) pair, member windows split the slot
/// proportional to node work, with each window's start clamped to the
/// node's release offset.
#[allow(clippy::too_many_arguments)]
fn window_dag_into(
    dag: &Dag,
    base: usize,
    window: (Time, Time),
    m: usize,
    first_core: usize,
    s_up: Speed,
    arenas: &mut [Vec<Task>],
    assignment: &mut Vec<usize>,
    layer_loads: &mut Vec<Cycles>,
    core_loads: &mut Vec<Cycles>,
) -> Result<(), SdemError> {
    let (start, end) = window;
    let span = end - start;
    dag.assign_layered_into(m, assignment, layer_loads, core_loads);
    let mut total = 0.0;
    for load in layer_loads.iter() {
        total += load.value();
    }
    if Cycles::new(total) / s_up > span {
        sdem_obs::registry::incr(Counter::DagInfeasible);
        return Err(SdemError::InfeasibleTask(TaskId(base + witness_node(dag))));
    }
    let mut cum = 0.0;
    let mut slot_start = start;
    for (layer, load) in layer_loads.iter().enumerate() {
        cum += load.value();
        let slot_end = chop_boundary(start, end, span, cum, total);
        let slot_span = slot_end - slot_start;
        for cc in 0..m {
            let mut core_total = 0.0;
            for &v in dag.layer_members(layer) {
                if assignment[v] == cc {
                    core_total += dag.work_of(v).value();
                }
            }
            if core_total == 0.0 {
                continue;
            }
            let mut member_cum = 0.0;
            let mut window_start = slot_start;
            for &v in dag.layer_members(layer) {
                if assignment[v] != cc {
                    continue;
                }
                member_cum += dag.work_of(v).value();
                let window_end =
                    chop_boundary(slot_start, slot_end, slot_span, member_cum, core_total);
                let release = window_start.max(dag.release() + dag.offset_of(v));
                if release >= window_end || dag.work_of(v) / s_up > window_end - release {
                    sdem_obs::registry::incr(Counter::DagInfeasible);
                    return Err(SdemError::InfeasibleTask(TaskId(base + v)));
                }
                arenas[first_core + cc].push(Task::new(
                    base + v,
                    release,
                    window_end,
                    dag.work_of(v),
                ));
                window_start = window_end;
            }
        }
        slot_start = slot_end;
    }
    Ok(())
}

/// [`solve_dags_in`] on a fresh workspace.
///
/// # Errors
///
/// See [`solve_dags_in`].
pub fn solve_dags(dags: &[Dag], platform: &Platform, cores: usize) -> Result<DagReport, SdemError> {
    solve_dags_in(dags, platform, cores, &mut Workspace::new())
}

/// Runs the full federated pipeline: allocate cores, chop windows, solve
/// each core with [`Scheme::Auto`], and price the merged schedule.
///
/// Global task ids are `base_i + node_id` where `base_i` is the running
/// node count of the DAGs before `i`, so reports and error witnesses name
/// nodes unambiguously across the suite.
///
/// # Errors
///
/// * [`SdemError::NoCores`] — zero budget, a heavy cluster outgrowing the
///   remaining budget, or light DAGs left without a shared core.
/// * [`SdemError::InfeasibleTask`] — a DAG that misses its window even at
///   `s_up` on every affordable cluster width (witness: `base +` its
///   heaviest or offending node).
/// * [`SdemError::NotCommonRelease`] — light DAGs with mismatched
///   windows; sharing a chopped core requires one common frame.
/// * [`SdemError::UnsupportedModel`] — an empty DAG list.
pub fn solve_dags_in(
    dags: &[Dag],
    platform: &Platform,
    cores: usize,
    ws: &mut Workspace,
) -> Result<DagReport, SdemError> {
    if cores == 0 {
        return Err(SdemError::NoCores);
    }
    if dags.is_empty() {
        return Err(SdemError::UnsupportedModel("at least one DAG is required"));
    }
    let s_up = platform.core().max_speed();

    let mut bases = ws.take_usizes();
    let mut next_base = 0;
    for dag in dags {
        bases.push(next_base);
        next_base += dag.node_count();
    }

    // Pass 1 — classify and allocate. Heavy DAGs claim dedicated clusters
    // in input order; light DAGs queue for the shared cores.
    let mut assignment = ws.take_usizes();
    let mut layer_loads = ws.take_cycles();
    let mut core_loads = ws.take_cycles();
    let mut light = ws.take_usizes();
    let mut light_works = ws.take_f64s();
    let mut assignments = Vec::with_capacity(dags.len());
    let mut next_core = 0usize;
    let mut clusters = 0usize;
    for (i, dag) in dags.iter().enumerate() {
        if dag.federated_cores(s_up).is_none() {
            sdem_obs::registry::incr(Counter::DagInfeasible);
            return Err(SdemError::InfeasibleTask(TaskId(
                bases[i] + witness_node(dag),
            )));
        }
        if dag.is_heavy(s_up) {
            let bound = dag.federated_cores(s_up).expect("checked above").max(1);
            let budget = cores - next_core;
            if bound > budget {
                return Err(SdemError::NoCores);
            }
            // The federated bound ignores layer barriers; escalate until
            // the layered list schedule fits the window.
            let span = dag.span();
            let mut m = bound;
            loop {
                dag.assign_layered_into(m, &mut assignment, &mut layer_loads, &mut core_loads);
                let mut total = 0.0;
                for load in layer_loads.iter() {
                    total += load.value();
                }
                if Cycles::new(total) / s_up <= span {
                    break;
                }
                m += 1;
                if m > budget {
                    sdem_obs::registry::incr(Counter::DagInfeasible);
                    return Err(SdemError::InfeasibleTask(TaskId(
                        bases[i] + witness_node(dag),
                    )));
                }
            }
            assignments.push(DagAssignment::Dedicated {
                first_core: next_core,
                cores: m,
            });
            next_core += m;
            clusters += 1;
        } else {
            light.push(i);
            light_works.push(dag.total_work().value());
            // Placeholder; the shared core is decided by the LPT pass.
            assignments.push(DagAssignment::Shared { core: usize::MAX });
        }
    }
    sdem_obs::registry::add(Counter::DagClusters, clusters as u64);

    // Pass 2 — pack light DAGs onto the shared cores.
    let shared_first = next_core;
    let shared_cores = cores - next_core;
    let mut order = ws.take_usizes();
    let mut loads = ws.take_f64s();
    let mut light_assignment = ws.take_usizes();
    if !light.is_empty() {
        if shared_cores == 0 {
            return Err(SdemError::NoCores);
        }
        let first = &dags[light[0]];
        let (r0, d0) = (first.release(), first.deadline());
        if !light
            .iter()
            .all(|&i| dags[i].release() == r0 && dags[i].deadline() == d0)
        {
            return Err(SdemError::NotCommonRelease);
        }
        pack_lpt(
            &light_works,
            shared_cores,
            &mut order,
            &mut loads,
            &mut light_assignment,
        );
        for (k, &i) in light.iter().enumerate() {
            assignments[i] = DagAssignment::Shared {
                core: shared_first + light_assignment[k],
            };
        }
    }

    // Pass 3 — chop every DAG's window into per-core sequential task
    // windows.
    let mut arenas = ws.take_task_list();
    for _ in 0..cores {
        let arena = ws.take_tasks();
        arenas.push(arena);
    }
    for (i, dag) in dags.iter().enumerate() {
        if let DagAssignment::Dedicated {
            first_core,
            cores: m,
        } = assignments[i]
        {
            window_dag_into(
                dag,
                bases[i],
                (dag.release(), dag.deadline()),
                m,
                first_core,
                s_up,
                &mut arenas,
                &mut assignment,
                &mut layer_loads,
                &mut core_loads,
            )?;
        }
    }
    for c in 0..shared_cores {
        // This core's light DAGs, in packing order; the core window is
        // chopped proportional to each DAG's total work.
        let mut core_total = 0.0;
        for &k in order.iter() {
            if light_assignment[k] == c {
                core_total += light_works[k];
            }
        }
        if core_total == 0.0 {
            continue;
        }
        let first = &dags[light[0]];
        let (r0, d0) = (first.release(), first.deadline());
        let span = d0 - r0;
        let mut cum = 0.0;
        let mut window_start = r0;
        for &k in order.iter() {
            if light_assignment[k] != c {
                continue;
            }
            cum += light_works[k];
            let window_end = chop_boundary(r0, d0, span, cum, core_total);
            window_dag_into(
                &dags[light[k]],
                bases[light[k]],
                (window_start, window_end),
                1,
                shared_first + c,
                s_up,
                &mut arenas,
                &mut assignment,
                &mut layer_loads,
                &mut core_loads,
            )?;
            window_start = window_end;
        }
    }
    ws.recycle_usizes(bases);
    ws.recycle_usizes(assignment);
    ws.recycle_cycles(layer_loads);
    ws.recycle_cycles(core_loads);
    ws.recycle_usizes(light);
    ws.recycle_f64s(light_works);
    ws.recycle_usizes(order);
    ws.recycle_f64s(loads);
    ws.recycle_usizes(light_assignment);

    // Pass 4 — solve each busy core with the Auto router, re-map its
    // placements onto the physical core, price the per-core view, and
    // merge.
    let mut merged = ws.take_placements();
    let mut per_core = Vec::new();
    let mut all_tasks = ws.take_tasks();
    for (c, slot) in arenas.iter_mut().enumerate() {
        let arena = core::mem::take(slot);
        if arena.is_empty() {
            *slot = arena;
            continue;
        }
        let count = arena.len();
        let set = TaskSet::new_in(arena, ws).expect("derived DAG windows form a valid task set");
        let solved = solve_in(&set, platform, Scheme::Auto, ws)?;
        let mut sub = ws.take_placements();
        let mut placements = solved.into_schedule().into_placements();
        for p in placements.drain(..) {
            let task = p.task();
            sub.push(Placement::new(task, CoreId(c), p.into_segments()));
        }
        ws.recycle_placements(placements);
        let priced = Solution::from_schedule_in(Schedule::new(sub), platform, ws);
        per_core.push(DagCoreReport {
            core: CoreId(c),
            energy: priced.predicted_energy(),
            memory_sleep: priced.memory_sleep(),
            tasks: count,
        });
        let mut sub = priced.into_schedule().into_placements();
        merged.append(&mut sub);
        ws.recycle_placements(sub);
        all_tasks.extend_from_slice(set.tasks());
        ws.recycle_tasks(set.into_tasks());
    }
    ws.recycle_task_list(arenas);

    let solution = Solution::from_schedule_in(Schedule::new(merged), platform, ws);
    let cores_used = solution.schedule().cores_used();
    let tasks =
        TaskSet::new_in(all_tasks, ws).expect("global DAG task ids are unique by construction");
    Ok(DagReport {
        solution,
        tasks,
        per_core,
        assignments,
        cores_used,
        clusters,
    })
}

/// The lean [`Scheme::DagFederated`] path: every task of a common-window
/// set is treated as a singleton light DAG and the whole set is
/// LPT-packed onto `cores` chopped cores, each energy-minimized with
/// [`Scheme::Auto`].
///
/// On singleton DAG suites this reproduces [`solve_dags_in`] bit for bit
/// (same packing, same chop arithmetic, same per-core solves); with a
/// warm workspace the call is allocation-free. Zero-work tasks get empty
/// placements on their packed core.
///
/// # Errors
///
/// [`SdemError::NoCores`] on a zero budget,
/// [`SdemError::NotCommonRelease`] without a common window, and
/// [`SdemError::InfeasibleTask`] when a task misses the window even at
/// `s_up` (its chopped share only shrinks from there).
pub fn solve_federated_in(
    tasks: &TaskSet,
    platform: &Platform,
    cores: usize,
    ws: &mut Workspace,
) -> Result<Solution, SdemError> {
    if cores == 0 {
        return Err(SdemError::NoCores);
    }
    let (r0, span) = common_window(tasks)?;
    let list = tasks.tasks();
    let end = list[0].deadline();
    let s_up = platform.core().max_speed();

    let mut works = ws.take_f64s();
    works.extend(list.iter().map(|t| t.work().value()));
    let mut order = ws.take_usizes();
    let mut loads = ws.take_f64s();
    let mut assignment = ws.take_usizes();
    pack_lpt(&works, cores, &mut order, &mut loads, &mut assignment);

    let mut merged = ws.take_placements();
    for c in 0..cores {
        let mut core_total = 0.0;
        for &i in order.iter() {
            if assignment[i] == c {
                core_total += works[i];
            }
        }
        if core_total > 0.0 {
            let mut arena = ws.take_tasks();
            let mut cum = 0.0;
            let mut window_start = r0;
            for &i in order.iter() {
                if assignment[i] != c || works[i] == 0.0 {
                    continue;
                }
                cum += works[i];
                let window_end = chop_boundary(r0, end, span, cum, core_total);
                let release = window_start.max(r0);
                if release >= window_end || list[i].work() / s_up > window_end - release {
                    sdem_obs::registry::incr(Counter::DagInfeasible);
                    return Err(SdemError::InfeasibleTask(list[i].id()));
                }
                arena.push(Task::new(
                    list[i].id().0,
                    release,
                    window_end,
                    list[i].work(),
                ));
                window_start = window_end;
            }
            let set = TaskSet::new_in(arena, ws).expect("chopped windows form a valid task set");
            let solved = solve_in(&set, platform, Scheme::Auto, ws)?;
            let mut placements = solved.into_schedule().into_placements();
            for p in placements.drain(..) {
                let task = p.task();
                merged.push(Placement::new(task, CoreId(c), p.into_segments()));
            }
            ws.recycle_placements(placements);
            ws.recycle_tasks(set.into_tasks());
        }
        // Zero-work tasks contribute no demand: an empty placement on
        // their packed core keeps the schedule's task coverage complete.
        for &i in order.iter() {
            if assignment[i] == c && works[i] == 0.0 {
                merged.push(Placement::new(list[i].id(), CoreId(c), ws.take_segments()));
            }
        }
    }
    ws.recycle_f64s(works);
    ws.recycle_usizes(order);
    ws.recycle_f64s(loads);
    ws.recycle_usizes(assignment);
    Ok(Solution::from_schedule_in(
        Schedule::new(merged),
        platform,
        ws,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdem_types::Task;
    use sdem_workload::dag::{random, DagConfig, DagNode};

    fn ms(v: f64) -> Time {
        Time::from_millis(v)
    }

    fn platform() -> Platform {
        Platform::paper_defaults()
    }

    fn diamond(name: &str, deadline: Time) -> Dag {
        Dag::new(
            name,
            Time::ZERO,
            deadline,
            None,
            vec![
                DagNode::new(0, Cycles::new(1.0e6)),
                DagNode::new(1, Cycles::new(2.0e6)),
                DagNode::new(2, Cycles::new(3.0e6)),
                DagNode::new(3, Cycles::new(1.5e6)),
            ],
            vec![(0, 1), (0, 2), (1, 3), (2, 3)],
        )
        .unwrap()
    }

    #[test]
    fn light_suite_solves_and_verifies() {
        let platform = platform();
        let dags = vec![diamond("a", ms(100.0)), diamond("b", ms(100.0))];
        let report = solve_dags(&dags, &platform, 3).unwrap();
        assert_eq!(report.clusters, 0);
        assert_eq!(report.assignments.len(), 2);
        assert!(report.cores_used >= 1);
        assert_eq!(report.tasks.len(), 8);
        report
            .verify_against_meter(&platform, OracleOptions::default())
            .unwrap();
    }

    #[test]
    fn heavy_dag_gets_a_dedicated_cluster() {
        let platform = platform();
        // Wide fan-out: W far above the window at s_up, L well below.
        let wide = Dag::new(
            "wide",
            Time::ZERO,
            ms(100.0),
            None,
            (0..8)
                .map(|id| DagNode::new(id, Cycles::new(8.0e7)))
                .collect::<Vec<_>>(),
            vec![],
        )
        .unwrap();
        let s_up = platform.core().max_speed();
        assert!(wide.is_heavy(s_up));
        let report = solve_dags(&[wide, diamond("d", ms(100.0))], &platform, 8).unwrap();
        assert_eq!(report.clusters, 1);
        assert!(matches!(
            report.assignments[0],
            DagAssignment::Dedicated { first_core: 0, .. }
        ));
        assert!(matches!(
            report.assignments[1],
            DagAssignment::Shared { .. }
        ));
        report
            .verify_against_meter(&platform, OracleOptions::default())
            .unwrap();
    }

    #[test]
    fn windows_respect_precedence_layers() {
        let platform = platform();
        let dag = diamond("p", ms(100.0));
        let report = solve_dags(std::slice::from_ref(&dag), &platform, 2).unwrap();
        // Every edge's source window ends no later than its target's
        // window starts.
        let window = |id: usize| {
            let t = report
                .tasks
                .tasks()
                .iter()
                .find(|t| t.id().0 == id)
                .unwrap();
            (t.release(), t.deadline())
        };
        for &(from, to) in dag.edges() {
            assert!(
                window(from).1 <= window(to).0,
                "edge ({from}, {to}) windows overlap"
            );
        }
        recycle_dag_report(report, &mut Workspace::new());
    }

    #[test]
    fn budget_and_feasibility_errors_are_typed() {
        let platform = platform();
        let dag = diamond("x", ms(100.0));
        assert_eq!(
            solve_dags(std::slice::from_ref(&dag), &platform, 0),
            Err(SdemError::NoCores)
        );
        assert!(matches!(
            solve_dags(&[], &platform, 2),
            Err(SdemError::UnsupportedModel(_))
        ));
        // A window no speed can meet: critical path alone overruns.
        let tight = diamond("t", Time::from_secs(1e-6));
        assert!(matches!(
            solve_dags(&[tight], &platform, 4),
            Err(SdemError::InfeasibleTask(_))
        ));
        // Mismatched light windows cannot share chopped cores.
        let other = diamond("o", ms(80.0));
        assert_eq!(
            solve_dags(&[diamond("a", ms(100.0)), other], &platform, 2),
            Err(SdemError::NotCommonRelease)
        );
    }

    #[test]
    fn lean_path_matches_general_pipeline_bitwise_on_singletons() {
        let platform = platform();
        // Singleton DAGs with ids equal to their index: the general
        // pipeline's global ids coincide with the task ids.
        let works = [6.0e6, 9.0e6, 2.5e6, 4.0e6, 7.5e6];
        let deadline = ms(90.0);
        let dags: Vec<Dag> = works
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                Dag::new(
                    format!("t{i}"),
                    Time::ZERO,
                    deadline,
                    None,
                    vec![DagNode::new(0, Cycles::new(w))],
                    vec![],
                )
                .unwrap()
            })
            .collect();
        let tasks = TaskSet::new(
            works
                .iter()
                .enumerate()
                .map(|(i, &w)| Task::new(i, Time::ZERO, deadline, Cycles::new(w)))
                .collect(),
        )
        .unwrap();
        for cores in 1..=4 {
            let report = solve_dags(&dags, &platform, cores).unwrap();
            let mut ws = Workspace::new();
            let lean = solve_federated_in(&tasks, &platform, cores, &mut ws).unwrap();
            assert_eq!(
                report.solution.predicted_energy().value().to_bits(),
                lean.predicted_energy().value().to_bits(),
                "cores = {cores}"
            );
            assert_eq!(
                report.solution.schedule(),
                lean.schedule(),
                "cores = {cores}"
            );
        }
    }

    #[test]
    fn generated_suites_verify_against_the_meter() {
        let platform = platform();
        let cfg = DagConfig::paper(9, ms(120.0));
        let dags: Vec<Dag> = (0..4).map(|s| random(&cfg, s)).collect();
        let report = solve_dags(&dags, &platform, 4).unwrap();
        report
            .verify_against_meter(&platform, OracleOptions::default())
            .unwrap();
        // Aggregate counts the shared memory once: never above the sum of
        // isolated per-core views.
        let summed: f64 = report.per_core.iter().map(|c| c.energy.value()).sum();
        assert!(report.solution.predicted_energy().value() <= summed + 1e-9);
    }

    #[test]
    fn scheme_entry_point_routes_to_the_lean_path() {
        let platform = platform();
        let tasks = TaskSet::new(vec![
            Task::new(0, Time::ZERO, ms(50.0), Cycles::new(6.0e6)),
            Task::new(1, Time::ZERO, ms(50.0), Cycles::new(4.0e6)),
            Task::new(2, Time::ZERO, ms(50.0), Cycles::ZERO),
        ])
        .unwrap();
        let sol = crate::solve(&tasks, &platform, Scheme::DagFederated(2)).unwrap();
        sol.verify_against_meter(&tasks, &platform, OracleOptions::default())
            .unwrap();
        // The zero-work task holds an (empty) placement.
        assert!(sol.schedule().placement(TaskId(2)).is_some());
        assert_eq!(
            crate::solve(&tasks, &platform, Scheme::DagFederated(0)),
            Err(SdemError::NoCores)
        );
        // Mixed windows are rejected up front.
        let mixed = TaskSet::new(vec![
            Task::new(0, Time::ZERO, ms(50.0), Cycles::new(1.0e6)),
            Task::new(1, Time::ZERO, ms(60.0), Cycles::new(1.0e6)),
        ])
        .unwrap();
        assert_eq!(
            crate::solve(&mixed, &platform, Scheme::DagFederated(2)),
            Err(SdemError::NotCommonRelease)
        );
    }
}
