//! Dynamic programming over deadline-ordered blocks (§5.1.2 / §5.2.2).
//!
//! Lemma 4: some optimal solution never schedules an earlier-deadline task
//! in a later block, so blocks are *contiguous ranges* of the
//! deadline-sorted task list and
//!
//! ```text
//! OPT(T_q) = min_{p ≤ q} { OPT(T_p) + E_min(T_{p+1} … T_q) (+ α_m·ξ_m) }
//! ```
//!
//! The transition charge `α_m·ξ_m` prices the memory sleep/wake round trip
//! between consecutive blocks (§7's revised DP); it is applied per *gap*
//! (one less than the paper's per-block count — a constant offset that
//! cannot change the argmin; see the `sdem-sim` crate docs). With
//! `ξ_m = 0` (the §5 assumption) the recurrence is exactly the paper's.

use sdem_power::Platform;
use sdem_types::{CoreId, Joules, Placement, Schedule, Segment, Speed, TaskSet, Time, Workspace};

use super::block::BlockSolution;
use super::{algorithm1, block, lemma3, prepare_in, BlockTask, PowerParams};
use crate::{SdemError, Solution};

/// Which block solver backs the DP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlockSolverKind {
    /// The jointly-convex best-response minimization (production default).
    #[default]
    BestResponse,
    /// The paper's `(i, j)`-cell decomposition with the five-step iterative
    /// scheme of Algorithm 1 (§5.2.1). Slower; kept for fidelity and as an
    /// ablation baseline.
    PaperIterative,
    /// The §5.1.1 closed forms (Lemma 3, first-order conditions by
    /// bisection). Only valid for the `α = 0` model.
    PaperClosedForm,
}

/// The agreeable-deadline optimal scheme (generic over `α`): DP over blocks
/// with the default block solver.
///
/// # Errors
///
/// [`SdemError::NotAgreeable`] for non-agreeable task sets,
/// [`SdemError::InfeasibleTask`] when a task exceeds `s_up`.
///
/// # Examples
///
/// ```
/// use sdem_core::agreeable::schedule;
/// use sdem_power::Platform;
/// use sdem_types::{Task, TaskSet, Time, Cycles};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let platform = Platform::paper_defaults();
/// let tasks = TaskSet::new(vec![
///     Task::new(0, Time::ZERO, Time::from_millis(30.0), Cycles::new(6.0e6)),
///     Task::new(1, Time::from_millis(50.0), Time::from_millis(110.0), Cycles::new(9.0e6)),
/// ])?;
/// let sol = schedule(&tasks, &platform)?;
/// sol.schedule().validate(&tasks)?;
/// # Ok(())
/// # }
/// ```
#[deprecated(
    since = "0.1.0",
    note = "call `solve(tasks, platform, Scheme::Agreeable)` from the crate root, or `schedule_in` to reuse a `Workspace`"
)]
pub fn schedule(tasks: &TaskSet, platform: &Platform) -> Result<Solution, SdemError> {
    schedule_with_solver(tasks, platform, BlockSolverKind::BestResponse)
}

/// In-place [`schedule`]: DP scratch and the returned schedule's arenas
/// come from `ws`. The O(n²) table of per-range block solutions still
/// allocates (each `BlockSolution` owns its run list); only the
/// fixed-shape buffers are pooled.
///
/// # Errors
///
/// Same as [`schedule`].
pub fn schedule_in(
    tasks: &TaskSet,
    platform: &Platform,
    ws: &mut Workspace,
) -> Result<Solution, SdemError> {
    schedule_impl(tasks, platform, BlockSolverKind::BestResponse, false, ws)
}

/// The agreeable DP with an explicit block-solver choice.
///
/// # Errors
///
/// Same as [`schedule`].
pub fn schedule_with_solver(
    tasks: &TaskSet,
    platform: &Platform,
    solver: BlockSolverKind,
) -> Result<Solution, SdemError> {
    schedule_impl(tasks, platform, solver, false, &mut Workspace::new())
}

/// In-place [`schedule_with_solver`].
///
/// # Errors
///
/// Same as [`schedule`].
pub fn schedule_with_solver_in(
    tasks: &TaskSet,
    platform: &Platform,
    solver: BlockSolverKind,
    ws: &mut Workspace,
) -> Result<Solution, SdemError> {
    schedule_impl(tasks, platform, solver, false, ws)
}

/// The agreeable DP with a *strictness repair*: if the (paper-faithful)
/// recurrence ever selects consecutive blocks whose busy intervals
/// overlap in time — the published DP does not forbid this, see DESIGN.md
/// deviation 3 — the offending neighbours are merged into one block and
/// the energy recomputed, until all blocks are disjoint and ordered. The
/// result is never reported cheaper than it simulates.
///
/// On instances where the paper's DP already yields disjoint blocks (all
/// we have ever observed for optimal solutions), this is identical to
/// [`schedule`].
///
/// # Errors
///
/// Same as [`schedule`].
#[deprecated(
    since = "0.1.0",
    note = "call `solve(tasks, platform, Scheme::AgreeableStrict)` from the crate root, or `schedule_strict_in` to reuse a `Workspace`"
)]
pub fn schedule_strict(tasks: &TaskSet, platform: &Platform) -> Result<Solution, SdemError> {
    schedule_strict_in(tasks, platform, &mut Workspace::new())
}

/// In-place [`schedule_strict`].
///
/// # Errors
///
/// Same as [`schedule`].
pub fn schedule_strict_in(
    tasks: &TaskSet,
    platform: &Platform,
    ws: &mut Workspace,
) -> Result<Solution, SdemError> {
    schedule_impl(tasks, platform, BlockSolverKind::BestResponse, true, ws)
}

fn schedule_impl(
    tasks: &TaskSet,
    platform: &Platform,
    solver: BlockSolverKind,
    strict: bool,
    ws: &mut Workspace,
) -> Result<Solution, SdemError> {
    if solver == BlockSolverKind::PaperClosedForm && !platform.core().is_alpha_zero() {
        return Err(SdemError::UnsupportedModel(
            "the Lemma-3 closed-form block solver requires α = 0",
        ));
    }
    let sorted = prepare_in(tasks, platform, ws)?;
    let pw = PowerParams::of(platform);
    let n = sorted.len();
    let bts: Vec<BlockTask> = sorted
        .iter()
        .enumerate()
        .map(|(index, t)| BlockTask {
            index,
            r: t.release().as_secs(),
            d: t.deadline().as_secs(),
            w: t.work().value(),
        })
        .collect();

    let solve_block = |range: &[BlockTask]| -> BlockSolution {
        match solver {
            BlockSolverKind::BestResponse => block::solve(range, &pw),
            BlockSolverKind::PaperIterative => algorithm1::solve(range, &pw),
            BlockSolverKind::PaperClosedForm => lemma3::solve_block(range, &pw),
        }
    };

    // Block energies for every contiguous range [p, q).
    let mut block_sol: Vec<Vec<Option<BlockSolution>>> = vec![vec![None; n + 1]; n];
    for p in 0..n {
        for q in (p + 1)..=n {
            block_sol[p][q] = Some(solve_block(&bts[p..q]));
        }
    }

    // DP over prefixes. A memory round trip is charged per inter-block gap.
    let transition = platform.memory().transition_energy().value();
    let mut opt = ws.take_f64s();
    opt.resize(n + 1, f64::INFINITY);
    let mut cut_from = ws.take_usizes();
    cut_from.resize(n + 1, 0);
    opt[0] = 0.0;
    for q in 1..=n {
        for p in 0..q {
            let blk = block_sol[p][q].as_ref().expect("filled above");
            let trans = if p == 0 { 0.0 } else { transition };
            let cand = opt[p] + blk.energy + trans;
            if cand < opt[q] {
                opt[q] = cand;
                cut_from[q] = p;
            }
        }
    }

    // Reconstruct the partition.
    let mut cuts = ws.take_usizes();
    cuts.push(n);
    while *cuts.last().expect("non-empty") > 0 {
        let q = *cuts.last().expect("non-empty");
        cuts.push(cut_from[q]);
    }
    cuts.reverse();

    // Strictness repair: merge any consecutive blocks whose busy intervals
    // overlap, then recompute the total energy from the (precomputed)
    // merged-block solutions.
    let mut total_energy = opt[n];
    if strict {
        loop {
            let mut merged_any = false;
            let mut i = 0;
            while i + 2 < cuts.len() {
                let a = block_sol[cuts[i]][cuts[i + 1]].as_ref().expect("filled");
                let b = block_sol[cuts[i + 1]][cuts[i + 2]]
                    .as_ref()
                    .expect("filled");
                if b.s < a.e - 1e-12 * a.e.abs().max(1.0) {
                    cuts.remove(i + 1);
                    merged_any = true;
                } else {
                    i += 1;
                }
            }
            if !merged_any {
                break;
            }
        }
        total_energy = cuts
            .windows(2)
            .map(|pq| block_sol[pq[0]][pq[1]].as_ref().expect("filled").energy)
            .sum::<f64>()
            + transition * (cuts.len().saturating_sub(2)) as f64;
    }

    // Assemble the schedule: one core per task (unbounded model).
    let mut placements: Vec<Placement> = ws.take_placements();
    let mut sleep_time = 0.0f64;
    let mut prev_end: Option<f64> = None;
    for pq in cuts.windows(2) {
        let (p, q) = (pq[0], pq[1]);
        let blk = block_sol[p][q].as_ref().expect("filled above");
        if let Some(pe) = prev_end {
            // The DP assumes disjoint, ordered blocks; overlap would mean
            // the partition was suboptimal (see DESIGN.md §4, deviation 3).
            debug_assert!(
                blk.s >= pe - 1e-9,
                "blocks overlap: previous ends {pe}, next starts {}",
                blk.s
            );
            sleep_time += (blk.s - pe).max(0.0);
        }
        prev_end = Some(blk.e.max(prev_end.unwrap_or(f64::NEG_INFINITY)));
        for (t, &(start, len)) in bts[p..q].iter().zip(&blk.runs) {
            let task = &sorted[t.index];
            let mut segments = ws.take_segments();
            if t.w > 0.0 && len > 0.0 {
                segments.push(Segment::new(
                    Time::from_secs(start),
                    Time::from_secs(start + len),
                    Speed::from_hz(t.w / len),
                ));
            }
            placements.push(Placement::new(task.id(), CoreId(t.index), segments));
        }
    }

    ws.recycle_f64s(opt);
    ws.recycle_usizes(cut_from);
    ws.recycle_usizes(cuts);
    ws.recycle_tasks(sorted);
    Ok(Solution::new(
        Schedule::new(placements),
        Joules::new(total_energy),
        Time::from_secs(sleep_time),
    ))
}

#[cfg(test)]
mod tests {
    // These tests keep exercising the deprecated convenience
    // wrappers so the legacy entry points stay covered until removal.
    #![allow(deprecated)]

    use super::*;
    use sdem_power::{CorePower, MemoryPower};
    use sdem_sim::{simulate, SleepPolicy};
    use sdem_types::{Cycles, Task, Watts};

    fn sec(v: f64) -> Time {
        Time::from_secs(v)
    }

    fn platform(alpha: f64, alpha_m: f64) -> Platform {
        Platform::new(
            CorePower::simple(alpha, 1.0, 3.0),
            MemoryPower::new(Watts::new(alpha_m)),
        )
    }

    fn tset(specs: &[(f64, f64, f64)]) -> TaskSet {
        TaskSet::new(
            specs
                .iter()
                .enumerate()
                .map(|(i, &(r, d, w))| Task::new(i, sec(r), sec(d), Cycles::new(w)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn far_apart_tasks_split_into_blocks() {
        let p = platform(0.0, 4.0);
        let tasks = tset(&[(0.0, 2.0, 1.0), (50.0, 52.0, 1.0)]);
        let sol = schedule(&tasks, &p).unwrap();
        sol.schedule().validate(&tasks).unwrap();
        // Two separate busy blocks with a long sleep between them.
        assert_eq!(sol.schedule().memory_busy_intervals().len(), 2);
        assert!(sol.memory_sleep().as_secs() > 40.0);
    }

    #[test]
    fn overlapping_windows_merge_into_one_block() {
        let p = platform(0.0, 4.0);
        let tasks = tset(&[(0.0, 6.0, 2.0), (1.0, 8.0, 2.0), (2.0, 9.0, 2.0)]);
        let sol = schedule(&tasks, &p).unwrap();
        sol.schedule().validate(&tasks).unwrap();
        assert_eq!(sol.schedule().memory_busy_intervals().len(), 1);
    }

    #[test]
    fn predicted_energy_close_to_simulation_alpha_zero() {
        let p = platform(0.0, 3.0);
        let tasks = tset(&[(0.0, 5.0, 2.0), (1.0, 7.0, 1.5), (10.0, 18.0, 3.0)]);
        let sol = schedule(&tasks, &p).unwrap();
        let report = simulate(sol.schedule(), &tasks, &p, SleepPolicy::WhenProfitable).unwrap();
        let predicted = sol.predicted_energy().value();
        // Simulation may only be cheaper (coverage holes inside a block).
        assert!(
            report.total().value() <= predicted * (1.0 + 1e-9),
            "sim {} vs predicted {predicted}",
            report.total()
        );
        assert!(
            report.total().value() >= predicted * 0.95,
            "sim {} unexpectedly far below predicted {predicted}",
            report.total()
        );
    }

    #[test]
    fn predicted_energy_close_to_simulation_alpha_nonzero() {
        let p = platform(4.0, 6.0);
        let tasks = tset(&[(0.0, 5.0, 2.0), (1.0, 7.0, 1.5), (20.0, 32.0, 3.0)]);
        let sol = schedule(&tasks, &p).unwrap();
        let report = simulate(sol.schedule(), &tasks, &p, SleepPolicy::WhenProfitable).unwrap();
        let predicted = sol.predicted_energy().value();
        assert!(
            report.total().value() <= predicted * (1.0 + 1e-9),
            "sim {} vs predicted {predicted}",
            report.total()
        );
    }

    #[test]
    fn closed_form_solver_matches_on_alpha_zero_dp() {
        let p = platform(0.0, 4.0);
        let tasks = tset(&[(0.0, 5.0, 2.0), (1.0, 7.0, 1.5), (10.0, 18.0, 3.0)]);
        let a = schedule_with_solver(&tasks, &p, BlockSolverKind::BestResponse).unwrap();
        let c = schedule_with_solver(&tasks, &p, BlockSolverKind::PaperClosedForm).unwrap();
        c.schedule().validate(&tasks).unwrap();
        let (ea, ec) = (a.predicted_energy().value(), c.predicted_energy().value());
        assert!((ea - ec).abs() <= 1e-5 * ea.max(1.0), "{ea} vs {ec}");
        // And it refuses α ≠ 0.
        let p4 = platform(4.0, 4.0);
        assert!(matches!(
            schedule_with_solver(&tasks, &p4, BlockSolverKind::PaperClosedForm),
            Err(SdemError::UnsupportedModel(_))
        ));
    }

    #[test]
    fn both_solvers_agree_on_dp_optimum() {
        let p = platform(4.0, 6.0);
        let tasks = tset(&[
            (0.0, 5.0, 2.0),
            (1.0, 7.0, 1.5),
            (3.0, 11.0, 2.5),
            (20.0, 32.0, 3.0),
        ]);
        let a = schedule_with_solver(&tasks, &p, BlockSolverKind::BestResponse).unwrap();
        let b = schedule_with_solver(&tasks, &p, BlockSolverKind::PaperIterative).unwrap();
        let (ea, eb) = (a.predicted_energy().value(), b.predicted_energy().value());
        assert!(
            (ea - eb).abs() <= 1e-5 * ea.max(1.0),
            "solver disagreement: {ea} vs {eb}"
        );
    }

    #[test]
    fn dp_beats_single_block_and_all_singletons() {
        let p = platform(0.0, 4.0);
        let tasks = tset(&[(0.0, 4.0, 2.0), (6.0, 14.0, 3.0), (7.0, 16.0, 1.0)]);
        let sol = schedule(&tasks, &p).unwrap();
        let pw = PowerParams::of(&p);
        let bts: Vec<BlockTask> = tasks
            .sorted_by_deadline()
            .iter()
            .enumerate()
            .map(|(index, t)| BlockTask {
                index,
                r: t.release().as_secs(),
                d: t.deadline().as_secs(),
                w: t.work().value(),
            })
            .collect();
        let single = block::solve(&bts, &pw).energy;
        let singletons: f64 = bts.iter().map(|t| block::solve(&[*t], &pw).energy).sum();
        let e = sol.predicted_energy().value();
        assert!(
            e <= single * (1.0 + 1e-9),
            "DP {e} worse than one block {single}"
        );
        assert!(
            e <= singletons * (1.0 + 1e-9),
            "DP {e} worse than singleton split {singletons}"
        );
    }

    #[test]
    fn dp_matches_brute_force_partitions_small_n() {
        let p = platform(4.0, 5.0);
        let tasks = tset(&[
            (0.0, 4.0, 1.5),
            (2.0, 9.0, 2.0),
            (8.0, 15.0, 1.0),
            (9.0, 20.0, 2.5),
        ]);
        let sol = schedule(&tasks, &p).unwrap();
        let pw = PowerParams::of(&p);
        let bts: Vec<BlockTask> = tasks
            .sorted_by_deadline()
            .iter()
            .enumerate()
            .map(|(index, t)| BlockTask {
                index,
                r: t.release().as_secs(),
                d: t.deadline().as_secs(),
                w: t.work().value(),
            })
            .collect();
        // Enumerate all 2^{n−1} contiguous partitions.
        let n = bts.len();
        let mut best = f64::INFINITY;
        for mask in 0..(1u32 << (n - 1)) {
            let mut cuts = vec![0usize];
            for b in 0..n - 1 {
                if mask & (1 << b) != 0 {
                    cuts.push(b + 1);
                }
            }
            cuts.push(n);
            let mut total = 0.0;
            for w in cuts.windows(2) {
                total += block::solve(&bts[w[0]..w[1]], &pw).energy;
            }
            best = best.min(total);
        }
        let e = sol.predicted_energy().value();
        assert!(
            (e - best).abs() <= 1e-6 * best.max(1.0),
            "DP {e} vs brute-force partitions {best}"
        );
    }

    #[test]
    fn strict_matches_plain_dp_when_blocks_are_disjoint() {
        let p = platform(4.0, 6.0);
        let tasks = tset(&[(0.0, 5.0, 2.0), (1.0, 7.0, 1.5), (20.0, 32.0, 3.0)]);
        let plain = schedule(&tasks, &p).unwrap();
        let strict = schedule_strict(&tasks, &p).unwrap();
        assert!(
            (plain.predicted_energy().value() - strict.predicted_energy().value()).abs()
                <= 1e-9 * plain.predicted_energy().value(),
            "strict {} vs plain {}",
            strict.predicted_energy().value(),
            plain.predicted_energy().value()
        );
        strict.schedule().validate(&tasks).unwrap();
    }

    #[test]
    fn strict_never_reports_cheaper_than_simulation() {
        let p = platform(2.0, 5.0);
        for seed_shift in 0..6 {
            let specs: Vec<(f64, f64, f64)> = (0..5)
                .map(|i| {
                    let f = (i + seed_shift) as f64;
                    (
                        f * 1.7,
                        f * 1.7 + 3.0 + (f * 0.9) % 2.0,
                        1.0 + (f * 1.3) % 2.5,
                    )
                })
                .collect();
            let tasks = tset(&specs);
            let strict = schedule_strict(&tasks, &p).unwrap();
            let sim = simulate(strict.schedule(), &tasks, &p, SleepPolicy::WhenProfitable)
                .unwrap()
                .total()
                .value();
            assert!(
                sim <= strict.predicted_energy().value() * (1.0 + 1e-9),
                "strict under-reports: sim {sim} vs predicted {}",
                strict.predicted_energy().value()
            );
        }
    }

    #[test]
    fn rejects_non_agreeable() {
        let p = platform(0.0, 1.0);
        let tasks = tset(&[(0.0, 100.0, 1.0), (10.0, 50.0, 1.0)]);
        assert_eq!(schedule(&tasks, &p), Err(SdemError::NotAgreeable));
    }

    #[test]
    fn common_release_is_a_special_case() {
        // Agreeable DP on a common-release set must match the §4 scheme.
        let p = platform(0.0, 4.0);
        let tasks = tset(&[(0.0, 3.0, 2.0), (0.0, 5.0, 1.0), (0.0, 9.0, 4.0)]);
        let dp = schedule(&tasks, &p).unwrap();
        let cr = crate::common_release::schedule_alpha_zero(&tasks, &p).unwrap();
        let (ea, eb) = (dp.predicted_energy().value(), cr.predicted_energy().value());
        assert!(
            (ea - eb).abs() <= 1e-6 * eb.max(1.0),
            "agreeable {ea} vs common-release {eb}"
        );
    }

    #[test]
    fn transition_overhead_discourages_splitting() {
        // Two tasks with a small gap: with a huge ξ_m the DP should prefer
        // one merged block over two blocks + round trip.
        let mem = MemoryPower::new(Watts::new(4.0)).with_break_even(sec(100.0));
        let p = Platform::new(CorePower::simple(0.0, 1.0, 3.0), mem);
        let tasks = tset(&[(0.0, 3.0, 1.0), (4.0, 8.0, 1.0)]);
        let sol = schedule(&tasks, &p).unwrap();
        // A merged block means the DP planned no inter-block sleep at all
        // (the hole between the two windows stays inside one busy interval).
        assert!(
            sol.memory_sleep().as_secs().abs() < 1e-9,
            "expected merged block under huge transition overhead, sleep = {}",
            sol.memory_sleep()
        );

        // With ξ_m = 0 the same instance must split.
        let p0 = Platform::new(
            CorePower::simple(0.0, 1.0, 3.0),
            MemoryPower::new(Watts::new(4.0)),
        );
        let sol0 = schedule(&tasks, &p0).unwrap();
        assert!(sol0.memory_sleep().as_secs() > 0.0, "expected split blocks");
    }
}
