//! Optimal schemes for agreeable-deadline tasks (paper §5).
//!
//! Agreeable deadlines (`r_i ≤ r_j ⇒ d_i ≤ d_j`) admit an optimal solution
//! in which tasks, sorted by deadline, are partitioned into *blocks* of
//! consecutive tasks, each block executing inside one memory busy interval
//! `[s', e']` (Lemma 4). The scheme therefore has two layers:
//!
//! 1. a **block solver** finding the busy interval minimizing the energy of
//!    one task subset — [`block`] implements the production *best-response*
//!    solver (a single jointly-convex minimization; see that module's docs
//!    for the convexity argument), and [`algorithm1`] implements the paper's
//!    `(i, j)`-pair decomposition with the five-step iterative scheme of
//!    §5.2 (which doubles as the §5.1 solver when `α = 0`);
//! 2. a **dynamic program** over deadline-ordered prefixes choosing the
//!    partition (§5.1.2 / §5.2.2), in [`schedule`].
//!
//! The two block solvers are cross-checked against each other and against a
//! dense grid oracle in tests; an ablation bench compares their cost.
//!
//! # Examples
//!
//! ```
//! use sdem_core::{solve, Scheme};
//! use sdem_power::Platform;
//! use sdem_types::{Task, TaskSet, Time, Cycles};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let platform = Platform::paper_defaults();
//! let tasks = TaskSet::new(vec![
//!     Task::new(0, Time::ZERO, Time::from_millis(40.0), Cycles::new(8.0e6)),
//!     Task::new(1, Time::from_millis(60.0), Time::from_millis(120.0), Cycles::new(6.0e6)),
//! ])?;
//! let sol = solve(&tasks, &platform, Scheme::Agreeable)?;
//! sol.schedule().validate(&tasks)?;
//! # Ok(())
//! # }
//! ```

pub mod algorithm1;
pub mod block;
mod dp;
pub mod lemma3;

// The deprecated convenience wrappers stay re-exported until removal so
// downstream callers see the deprecation note instead of a hard break.
#[allow(deprecated)]
pub use dp::{
    schedule, schedule_in, schedule_strict, schedule_strict_in, schedule_with_solver,
    schedule_with_solver_in, BlockSolverKind,
};
pub use lemma3::solve_single_block_lemma3;

use sdem_power::Platform;
use sdem_types::{Task, TaskSet, Workspace};

use crate::{SdemError, Solution};

/// §5.1: agreeable deadlines with negligible core static power.
///
/// Delegates to the generic DP; with `platform.core().alpha() == 0` the
/// block objective reduces exactly to Eq. 12–14 of the paper.
///
/// # Errors
///
/// [`SdemError::NotAgreeable`] for non-agreeable sets,
/// [`SdemError::InfeasibleTask`] when a task exceeds `s_up`.
#[deprecated(
    since = "0.1.0",
    note = "call `solve(tasks, platform, Scheme::Agreeable)` from the crate root, or `schedule_in` to reuse a `Workspace`"
)]
pub fn schedule_alpha_zero(tasks: &TaskSet, platform: &Platform) -> Result<Solution, SdemError> {
    schedule_in(tasks, platform, &mut Workspace::new())
}

/// §5.2: agreeable deadlines with core sleeping (`α ≠ 0`).
///
/// Delegates to the generic DP; the block objective is the best-response
/// envelope whose flat region corresponds to the paper's *Type-I* tasks
/// running at the critical speed `s₀`.
///
/// # Errors
///
/// Same as [`schedule_alpha_zero`].
#[deprecated(
    since = "0.1.0",
    note = "call `solve(tasks, platform, Scheme::Agreeable)` from the crate root, or `schedule_in` to reuse a `Workspace`"
)]
pub fn schedule_alpha_nonzero(tasks: &TaskSet, platform: &Platform) -> Result<Solution, SdemError> {
    schedule_in(tasks, platform, &mut Workspace::new())
}

/// Solves the whole task set as a **single block** (one memory busy
/// interval) with the chosen solver, returning the block energy. This is
/// the §5.1.1/§5.2.1 subproblem in isolation — used by the ablation benches
/// and as an upper bound for the DP.
///
/// # Errors
///
/// Same preconditions as [`schedule`].
pub fn solve_single_block(
    tasks: &TaskSet,
    platform: &Platform,
    solver: BlockSolverKind,
) -> Result<sdem_types::Joules, SdemError> {
    let sorted = prepare(tasks, platform)?;
    let pw = PowerParams::of(platform);
    let bts: Vec<BlockTask> = sorted
        .iter()
        .enumerate()
        .map(|(index, t)| BlockTask {
            index,
            r: t.release().as_secs(),
            d: t.deadline().as_secs(),
            w: t.work().value(),
        })
        .collect();
    if solver == BlockSolverKind::PaperClosedForm && !platform.core().is_alpha_zero() {
        return Err(SdemError::UnsupportedModel(
            "the Lemma-3 closed-form block solver requires α = 0",
        ));
    }
    let sol = match solver {
        BlockSolverKind::BestResponse => block::solve(&bts, &pw),
        BlockSolverKind::PaperIterative => algorithm1::solve(&bts, &pw),
        BlockSolverKind::PaperClosedForm => lemma3::solve_block(&bts, &pw),
    };
    Ok(sdem_types::Joules::new(sol.energy))
}

/// Dense `grid × grid` oracle for the single-block subproblem — an
/// implementation-independent reference for tests and ablation benches.
///
/// # Errors
///
/// Same preconditions as [`schedule`].
pub fn single_block_oracle(
    tasks: &TaskSet,
    platform: &Platform,
    grid: usize,
) -> Result<sdem_types::Joules, SdemError> {
    let sorted = prepare(tasks, platform)?;
    let pw = PowerParams::of(platform);
    let bts: Vec<BlockTask> = sorted
        .iter()
        .enumerate()
        .map(|(index, t)| BlockTask {
            index,
            r: t.release().as_secs(),
            d: t.deadline().as_secs(),
            w: t.work().value(),
        })
        .collect();
    Ok(sdem_types::Joules::new(block::grid_oracle(&bts, &pw, grid)))
}

/// Scalar power parameters shared by the agreeable-deadline solvers.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PowerParams {
    pub alpha: f64,
    pub beta: f64,
    pub lambda: f64,
    pub alpha_m: f64,
    pub s_up: f64,
    /// Unclamped core critical speed `s_m` (0 when `α = 0`).
    pub s_m: f64,
    /// Unclamped joint critical speed `s_cm` (Algorithm 1's `s₁` source).
    pub s_cm: f64,
}

impl PowerParams {
    pub(crate) fn of(platform: &Platform) -> Self {
        let core = platform.core();
        Self {
            alpha: core.alpha().value(),
            beta: core.beta(),
            lambda: core.lambda(),
            alpha_m: platform.memory().alpha_m().value(),
            s_up: core.max_speed().as_hz(),
            s_m: core.critical_speed_unclamped().as_hz(),
            s_cm: platform
                .memory_associated_critical_speed_unclamped()
                .as_hz(),
        }
    }
}

/// One task of a block, in absolute seconds/cycles.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BlockTask {
    /// Position of the task in the deadline-sorted global order.
    pub index: usize,
    pub r: f64,
    pub d: f64,
    pub w: f64,
}

/// Validates agreeability and feasibility; returns tasks sorted by deadline
/// with ties broken by release (which, by agreeability, also sorts releases
/// non-decreasingly).
pub(crate) fn prepare(tasks: &TaskSet, platform: &Platform) -> Result<Vec<Task>, SdemError> {
    prepare_in(tasks, platform, &mut Workspace::new())
}

/// In-place [`prepare`]: the sorted-task buffer comes from `ws`'s task
/// arena; recycle it with `ws.recycle_tasks` when done.
pub(crate) fn prepare_in(
    tasks: &TaskSet,
    platform: &Platform,
    ws: &mut Workspace,
) -> Result<Vec<Task>, SdemError> {
    if !tasks.is_agreeable() {
        return Err(SdemError::NotAgreeable);
    }
    let s_up = platform.core().max_speed();
    for t in tasks.iter() {
        if crate::common_release::exceeds(t.filled_speed(), s_up) {
            return Err(SdemError::InfeasibleTask(t.id()));
        }
    }
    let mut sorted = ws.take_tasks();
    tasks.sorted_by_deadline_into(&mut sorted);
    debug_assert!(
        sorted.windows(2).all(|w| w[0].release() <= w[1].release()),
        "agreeable order must sort releases too"
    );
    Ok(sorted)
}
