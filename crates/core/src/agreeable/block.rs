//! Best-response block solver.
//!
//! For a fixed busy interval `[s, e]`, the cores decouple: task `k` with
//! window `L_k(s,e) = min(e, d_k) − max(s, r_k)` independently picks its run
//! length `l ∈ [w_k/s_up, L_k]` minimizing `β w^λ l^{1−λ} + α l`, whose
//! unclamped optimum is `w_k / s_m`. Substituting the per-task optimum gives
//! the *best-response energy*
//!
//! ```text
//! F(s, e) = α_m (e − s) + Σ_k E*_k( L_k(s, e) )
//! ```
//!
//! with `E*_k(L) = β w^λ l*^{1−λ} + α l*`, `l* = clamp(w/s_m, w/s_up, L)`.
//!
//! **Convexity.** `E*_k` is convex and non-increasing in `L` (strictly
//! decreasing below `w/s_m`, constant above — its flat region corresponds
//! exactly to the paper's Type-I tasks running at the critical speed `s₀`).
//! `L_k(s,e)` is concave (min of affine minus max of affine). A convex
//! non-increasing function of a concave argument is convex, so `F` is
//! jointly convex in `(s, e)` over the convex feasible region
//! `{ L_k(s,e) ≥ w_k/s_up ∀k }`. One coordinate-descent run (plus a
//! diagonal polish against corner stalls) therefore finds the block
//! optimum — the quantity the paper's `(i, j)` enumeration computes
//! piecewise. Tests verify agreement with [`crate::agreeable::algorithm1`]
//! and with a dense grid oracle.

use sdem_types::numeric::minimize_unimodal;

use super::{BlockTask, PowerParams};

/// Tolerance (relative) for the coordinate-descent stopping rule.
const DESCENT_TOL: f64 = 1e-12;
const MAX_SWEEPS: usize = 80;

/// The optimum of one block: busy interval and per-task runs.
#[derive(Debug, Clone)]
pub(crate) struct BlockSolution {
    /// Busy interval start (absolute seconds).
    pub s: f64,
    /// Busy interval end (absolute seconds).
    pub e: f64,
    /// Block energy: `α_m (e − s)` + per-task optimal run energies.
    pub energy: f64,
    /// Per-task `(start, length)` of the actual runs, parallel to the input
    /// task slice. Zero-work tasks get `(start, 0)`.
    pub runs: Vec<(f64, f64)>,
}

/// Per-task best-response energy for a window of length `window`.
///
/// Returns `f64::INFINITY` when the window cannot accommodate the task even
/// at `s_up`.
pub(crate) fn task_best_energy(w: f64, window: f64, pw: &PowerParams) -> f64 {
    if w == 0.0 {
        return 0.0;
    }
    let l_min = w / pw.s_up;
    if window < l_min * (1.0 - 1e-12) {
        return f64::INFINITY;
    }
    let l = best_run_length(w, window, pw);
    pw.beta * w.powf(pw.lambda) * l.powf(1.0 - pw.lambda) + pw.alpha * l
}

/// The per-task optimal run length inside a window of length `window`:
/// `clamp(w/s_m, w/s_up, window)`. With `α = 0` (`s_m = 0`) this fills the
/// window; otherwise it is the §4.2 critical-speed run, clamped.
pub(crate) fn best_run_length(w: f64, window: f64, pw: &PowerParams) -> f64 {
    let l_min = w / pw.s_up;
    let l_crit = if pw.s_m > 0.0 {
        w / pw.s_m
    } else {
        f64::INFINITY
    };
    l_crit.clamp(l_min, window.max(l_min))
}

/// Window length of task `k` for busy interval `[s, e]`.
#[inline]
pub(crate) fn window(t: &BlockTask, s: f64, e: f64) -> f64 {
    e.min(t.d) - s.max(t.r)
}

/// The best-response block objective `F(s, e)`.
pub(crate) fn objective(tasks: &[BlockTask], s: f64, e: f64, pw: &PowerParams) -> f64 {
    let mut total = pw.alpha_m * (e - s);
    for t in tasks {
        total += task_best_energy(t.w, window(t, s, e), pw);
        if !total.is_finite() {
            return f64::INFINITY;
        }
    }
    total
}

/// Solves one block to its optimal busy interval.
///
/// `tasks` must be non-empty, deadline-sorted and agreeable (releases also
/// sorted); every task must satisfy `w/(d−r) ≤ s_up`.
pub(crate) fn solve(tasks: &[BlockTask], pw: &PowerParams) -> BlockSolution {
    debug_assert!(!tasks.is_empty());
    let r1 = tasks[0].r;
    let d1 = tasks.iter().map(|t| t.d).fold(f64::INFINITY, f64::min);
    let rn = tasks.iter().map(|t| t.r).fold(f64::NEG_INFINITY, f64::max);
    let dn = tasks.last().expect("non-empty").d;

    // Start from the full interval — always feasible.
    let (mut s, mut e) = (r1, dn);
    let mut best_f = objective(tasks, s, e, pw);
    debug_assert!(best_f.is_finite(), "full interval must be feasible");

    for _ in 0..MAX_SWEEPS {
        let (ps, pe, pf) = (s, e, best_f);

        // s-step: s ∈ [r1, s_hi(e)] with s_hi from the window constraints.
        let s_hi = tasks
            .iter()
            .filter(|t| t.w > 0.0)
            .map(|t| e.min(t.d) - t.w / pw.s_up)
            .fold(d1.min(e), f64::min);
        if s_hi > r1 {
            let (xs, fx) = minimize_unimodal(|x| objective(tasks, x, e, pw), r1, s_hi, 1e-13);
            if fx <= best_f {
                s = xs;
                best_f = fx;
            }
        }

        // e-step: e ∈ [e_lo(s), dn].
        let e_lo = tasks
            .iter()
            .filter(|t| t.w > 0.0)
            .map(|t| s.max(t.r) + t.w / pw.s_up)
            .fold(rn.max(s), f64::max);
        if e_lo < dn {
            let (xe, fx) = minimize_unimodal(|x| objective(tasks, s, x, pw), e_lo, dn, 1e-13);
            if fx <= best_f {
                e = xe;
                best_f = fx;
            }
        }

        // Diagonal polish: slide the whole interval (guards against
        // coordinate-descent stalls on the coupled constraint corner).
        let width = e - s;
        let t_lo = r1 - s;
        let t_hi = dn - e;
        if t_hi > t_lo {
            let (t, ft) =
                minimize_unimodal(|t| objective(tasks, s + t, e + t, pw), t_lo, t_hi, 1e-13);
            if ft < best_f {
                s += t;
                e = s + width;
                best_f = ft;
            }
        }
        let scale = best_f.abs().max(1.0);
        if (pf - best_f).abs() <= DESCENT_TOL * scale
            && (ps - s).abs() + (pe - e).abs() <= 1e-11 * (dn - r1).max(1.0)
        {
            break;
        }
    }

    let runs = tasks
        .iter()
        .map(|t| {
            if t.w == 0.0 {
                return (s.max(t.r), 0.0);
            }
            let win = window(t, s, e);
            let l = best_run_length(t.w, win, pw);
            (s.max(t.r), l)
        })
        .collect();
    BlockSolution {
        s,
        e,
        energy: best_f,
        runs,
    }
}

/// Dense grid oracle for one block: sweeps `(s, e)` over a `grid × grid`
/// lattice of the feasible rectangle. Used by tests and ablation benches.
pub(crate) fn grid_oracle(tasks: &[BlockTask], pw: &PowerParams, grid: usize) -> f64 {
    let r1 = tasks[0].r;
    let d1 = tasks.iter().map(|t| t.d).fold(f64::INFINITY, f64::min);
    let rn = tasks.iter().map(|t| t.r).fold(f64::NEG_INFINITY, f64::max);
    let dn = tasks.last().expect("non-empty").d;
    let mut best = f64::INFINITY;
    for a in 0..grid {
        let s = r1 + (d1 - r1) * (a as f64) / ((grid - 1) as f64);
        for b in 0..grid {
            let e = rn.max(s) + (dn - rn.max(s)) * (b as f64) / ((grid - 1) as f64);
            if e <= s {
                continue;
            }
            let f = objective(tasks, s, e, pw);
            if f < best {
                best = f;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdem_power::{CorePower, MemoryPower, Platform};
    use sdem_types::Watts;

    fn pw(alpha: f64, alpha_m: f64) -> PowerParams {
        PowerParams::of(&Platform::new(
            CorePower::simple(alpha, 1.0, 3.0),
            MemoryPower::new(Watts::new(alpha_m)),
        ))
    }

    fn bt(index: usize, r: f64, d: f64, w: f64) -> BlockTask {
        BlockTask { index, r, d, w }
    }

    #[test]
    fn task_best_energy_flat_beyond_critical() {
        // α = 4, β = 1, λ = 3 ⇒ s_m = 2^{1/3}, critical run = w / s_m.
        let p = pw(4.0, 1.0);
        let w = 2.0;
        let l_crit = w / p.s_m;
        let e1 = task_best_energy(w, l_crit, &p);
        let e2 = task_best_energy(w, l_crit * 3.0, &p);
        assert!((e1 - e2).abs() < 1e-12, "flat region broken: {e1} vs {e2}");
        // Shorter windows cost more.
        assert!(task_best_energy(w, l_crit * 0.5, &p) > e1);
    }

    #[test]
    fn task_best_energy_infeasible_window() {
        let mut p = pw(0.0, 1.0);
        p.s_up = 1.0;
        assert_eq!(task_best_energy(3.0, 2.0, &p), f64::INFINITY);
        assert!(task_best_energy(3.0, 3.0, &p).is_finite());
    }

    #[test]
    fn single_task_block_matches_common_release() {
        // One task [0, 10], w = 2; α = 0, α_m = 4. The optimal busy interval
        // must end at T with α_m − 2βw³T^{−3} = 0 ⇒ T = (2·8/4)^{1/3}.
        let p = pw(0.0, 4.0);
        let tasks = [bt(0, 0.0, 10.0, 2.0)];
        let sol = solve(&tasks, &p);
        let t_star = (2.0f64 * 8.0 / 4.0).powf(1.0 / 3.0);
        // The busy-interval position is not unique for a single interior
        // task; only its width is determined.
        assert!(
            ((sol.e - sol.s) - t_star).abs() < 1e-6,
            "width {} vs {t_star}",
            sol.e - sol.s
        );
    }

    #[test]
    fn single_task_block_alpha_nonzero_uses_joint_speed() {
        // α = 4, α_m = 12 ⇒ joint speed s_cm = (16/2)^{1/3} = 2; the block
        // should shrink to w/s_cm = 1 s and the task runs at speed 2.
        let p = pw(4.0, 12.0);
        let tasks = [bt(0, 0.0, 50.0, 2.0)];
        let sol = solve(&tasks, &p);
        assert!(
            ((sol.e - sol.s) - 1.0).abs() < 1e-6,
            "block {}..{}",
            sol.s,
            sol.e
        );
        let (start, len) = sol.runs[0];
        assert!((len - 1.0).abs() < 1e-6);
        assert!(start >= sol.s - 1e-9);
    }

    #[test]
    fn solve_matches_grid_oracle() {
        let cases: Vec<(f64, f64, Vec<BlockTask>)> = vec![
            (0.0, 4.0, vec![bt(0, 0.0, 6.0, 2.0), bt(1, 1.0, 9.0, 3.0)]),
            (
                4.0,
                6.0,
                vec![
                    bt(0, 0.0, 5.0, 2.0),
                    bt(1, 2.0, 8.0, 1.0),
                    bt(2, 3.0, 12.0, 4.0),
                ],
            ),
            (1.0, 0.5, vec![bt(0, 0.0, 4.0, 1.0), bt(1, 0.5, 6.0, 2.0)]),
        ];
        for (alpha, alpha_m, tasks) in cases {
            let p = pw(alpha, alpha_m);
            let sol = solve(&tasks, &p);
            let oracle = grid_oracle(&tasks, &p, 300);
            assert!(
                sol.energy <= oracle * (1.0 + 1e-6),
                "α={alpha} αm={alpha_m}: solver {} > oracle {oracle}",
                sol.energy
            );
            assert!(
                sol.energy >= oracle * (1.0 - 2e-2),
                "α={alpha} αm={alpha_m}: solver {} ≪ oracle {oracle}",
                sol.energy
            );
        }
    }

    #[test]
    fn runs_fit_their_windows() {
        let p = pw(4.0, 6.0);
        let tasks = [
            bt(0, 0.0, 5.0, 2.0),
            bt(1, 2.0, 8.0, 1.0),
            bt(2, 3.0, 12.0, 4.0),
        ];
        let sol = solve(&tasks, &p);
        for (t, &(start, len)) in tasks.iter().zip(&sol.runs) {
            assert!(start >= t.r - 1e-9);
            assert!(start + len <= t.d + 1e-9);
            assert!(start >= sol.s - 1e-9);
            assert!(start + len <= sol.e + 1e-9, "run leaves block");
            let speed = t.w / len;
            assert!(speed <= p.s_up * (1.0 + 1e-9));
        }
    }

    #[test]
    fn speed_cap_binds() {
        let mut p = pw(0.0, 1e9);
        p.s_up = 2.0;
        // Huge memory power wants a tiny block, but s_up = 2 limits it.
        let tasks = [bt(0, 0.0, 10.0, 4.0), bt(1, 0.0, 10.0, 6.0)];
        let sol = solve(&tasks, &p);
        // Fastest possible block: max(w)/s_up = 3.
        assert!(
            (sol.e - sol.s - 3.0).abs() < 1e-6,
            "block {}",
            sol.e - sol.s
        );
    }

    #[test]
    fn zero_work_tasks_are_free() {
        let p = pw(0.0, 4.0);
        let with = solve(&[bt(0, 0.0, 10.0, 2.0), bt(1, 0.0, 10.0, 0.0)], &p);
        let without = solve(&[bt(0, 0.0, 10.0, 2.0)], &p);
        assert!((with.energy - without.energy).abs() < 1e-9);
        assert_eq!(with.runs[1].1, 0.0);
    }

    #[test]
    fn objective_is_infinite_when_infeasible() {
        let mut p = pw(0.0, 1.0);
        p.s_up = 1.0;
        let tasks = [bt(0, 0.0, 10.0, 5.0)];
        assert_eq!(objective(&tasks, 0.0, 2.0, &p), f64::INFINITY);
        assert!(objective(&tasks, 0.0, 6.0, &p).is_finite());
    }
}
