//! The paper's block solver: `(i, j)` pairs + the five-step iterative
//! scheme (§5.1.1 for `α = 0`, Algorithm 1 of §5.2.1 for `α ≠ 0`).
//!
//! The busy-interval start `s'` is localized between consecutive releases
//! (`s' ∈ (r_i, r_{i+1}]`) and the end `e'` between consecutive deadlines —
//! a *cell*. Within a cell every task's window is an affine function of
//! `(s', e')`, classified into the paper's four processing cases:
//!
//! 1. `[s', d_k]` — released before the block starts, ends at its deadline;
//! 2. `[r_k, d_k]` — interior, the whole feasible region;
//! 3. `[s', e']` — spans the block;
//! 4. `[r_k, e']` — starts at release, ends with the block.
//!
//! For `α = 0` the cell minimization of Eq. 12–14 is the whole story (no
//! eviction: speeds can never fall below the filled speed). For `α ≠ 0`
//! Algorithm 1 iterates: minimize Eq. 15 with all tasks aligned (Step 1),
//! pin tasks that would run slower than their critical speed `s₀` to `s₀`
//! and evict them (Steps 2–3), then re-solve for tasks still faster than
//! the memory-associated critical speed `s₁`, prolonging the rest
//! (Steps 4–5), until the two-type classification of Theorem 4 stabilizes.
//!
//! The production solver in [`crate::agreeable::block`] computes the same
//! optimum via a single convex minimization; tests assert both agree
//! (Theorem 4), and an ablation bench compares their cost.

use sdem_types::numeric::minimize_unimodal;

use super::block::BlockSolution;
use super::{BlockTask, PowerParams};

const REL: f64 = 1e-9;

/// Per-cell fixed classification of one task.
#[derive(Debug, Clone, Copy)]
struct CellTask {
    /// Index into the block's task slice.
    k: usize,
    /// Window start is the block start `s` (cases 1 and 3).
    starts_at_s: bool,
    /// Window end is the block end `e` (cases 3 and 4).
    ends_at_e: bool,
    r: f64,
    d: f64,
    w: f64,
    /// Run length this task is pinned to once evicted (`w / s₀`).
    crit_len: f64,
    /// Thresholds: evict below `s0`, re-solve above `s1`.
    s0: f64,
    s1: f64,
}

impl CellTask {
    fn window(&self, s: f64, e: f64) -> f64 {
        let start = if self.starts_at_s { s } else { self.r };
        let end = if self.ends_at_e { e } else { self.d };
        end - start
    }

    fn speed(&self, s: f64, e: f64) -> f64 {
        self.w / self.window(s, e)
    }

    /// `true` if the window depends on `(s, e)` at all — case-2 tasks are
    /// constants and can never be "prolonged" by moving the block.
    fn adjustable(&self) -> bool {
        self.starts_at_s || self.ends_at_e
    }
}

/// Aligned (Eq. 15) energy of a subset of cell tasks, plus the memory term.
fn aligned_energy(subset: &[CellTask], s: f64, e: f64, pw: &PowerParams) -> f64 {
    let mut total = pw.alpha_m * (e - s);
    for t in subset {
        let l = t.window(s, e);
        if l <= 0.0 || l < t.w / pw.s_up * (1.0 - 1e-12) {
            return f64::INFINITY;
        }
        total += pw.beta * t.w.powf(pw.lambda) * l.powf(1.0 - pw.lambda) + pw.alpha * l;
    }
    total
}

/// Minimizes the aligned energy of `subset` over the cell, subject to the
/// window capacity of *every* task in `all` (active ones need `w/s_up`,
/// evicted ones `w/s₀`). Returns `None` when the cell is infeasible.
fn minimize_in_cell(
    subset: &[CellTask],
    all_caps: &[(CellTask, f64)],
    cell: (f64, f64, f64, f64),
    pw: &PowerParams,
) -> Option<(f64, f64)> {
    let (sa, sb, ea, eb) = cell;
    let (mut s, mut e) = (sa, eb);
    if e <= s {
        return None;
    }
    let f = |s: f64, e: f64| aligned_energy(subset, s, e, pw);
    let cap_ok = |s: f64, e: f64| {
        all_caps
            .iter()
            .all(|(t, l_req)| t.window(s, e) >= l_req * (1.0 - 1e-12))
    };
    if !cap_ok(s, e) || !f(s, e).is_finite() {
        return None;
    }
    let mut best = f(s, e);
    for _ in 0..60 {
        let (ps, pe) = (s, e);
        // s-step caps: for start-at-s tasks, s ≤ end(e) − l_req.
        let s_hi = all_caps
            .iter()
            .filter(|(t, _)| t.starts_at_s)
            .map(|(t, l_req)| (if t.ends_at_e { e } else { t.d }) - l_req)
            .fold(sb.min(e - 1e-15), f64::min);
        if s_hi > sa {
            let (xs, fx) = minimize_unimodal(|x| f(x, e), sa, s_hi.min(sb), 1e-13);
            if fx <= best {
                s = xs;
                best = fx;
            }
        }
        // e-step caps: for end-at-e tasks, e ≥ start(s) + l_req.
        let e_lo = all_caps
            .iter()
            .filter(|(t, _)| t.ends_at_e)
            .map(|(t, l_req)| (if t.starts_at_s { s } else { t.r }) + l_req)
            .fold(ea.max(s + 1e-15), f64::max);
        if e_lo < eb {
            let (xe, fx) = minimize_unimodal(|x| f(s, x), e_lo.max(ea), eb, 1e-13);
            if fx <= best {
                e = xe;
                best = fx;
            }
        }
        if (ps - s).abs() + (pe - e).abs() <= 1e-12 * (eb - sa).max(1.0) {
            break;
        }
    }
    Some((s, e))
}

/// Runs the five-step scheme in one cell; returns the local candidate.
fn solve_cell(
    tasks: &[CellTask],
    cell: (f64, f64, f64, f64),
    pw: &PowerParams,
) -> Option<(f64, f64, Vec<bool>, f64)> {
    let n = tasks.len();
    // `true` = evicted (Type-I at s₀); `false` = aligned (Type-II).
    let mut evicted = vec![false; n];
    let caps = |evicted: &Vec<bool>| -> Vec<(CellTask, f64)> {
        tasks
            .iter()
            .enumerate()
            .map(|(k, t)| {
                let l_req = if evicted[k] {
                    t.crit_len
                } else {
                    t.w / pw.s_up
                };
                (*t, l_req)
            })
            .collect()
    };
    let active_set = |evicted: &Vec<bool>| -> Vec<CellTask> {
        tasks
            .iter()
            .enumerate()
            .filter(|(k, _)| !evicted[*k])
            .map(|(_, t)| *t)
            .collect()
    };

    // Steps 1–3: minimize over the active set, evict anything below s₀.
    let mut sol = minimize_in_cell(&active_set(&evicted), &caps(&evicted), cell, pw)?;
    for _ in 0..n + 1 {
        let mut changed = false;
        for (k, t) in tasks.iter().enumerate() {
            if !evicted[k] && t.speed(sol.0, sol.1) < t.s0 * (1.0 - REL) {
                evicted[k] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        sol = minimize_in_cell(&active_set(&evicted), &caps(&evicted), cell, pw)?;
    }

    // Steps 4–5: re-solve for the too-fast tasks, prolonging the rest.
    // Caps keep the classification stable: evicted tasks keep their s₀
    // runs, non-fast actives may not be squeezed above s₁ (Lemma 5: the
    // busy interval may only grow), fast tasks are bounded by s_up.
    const FAST_REL: f64 = 1e-6;
    for _ in 0..n + 1 {
        let fast_mask: Vec<bool> = tasks
            .iter()
            .enumerate()
            .map(|(k, t)| {
                !evicted[k] && t.adjustable() && t.speed(sol.0, sol.1) > t.s1 * (1.0 + FAST_REL)
            })
            .collect();
        let fast: Vec<CellTask> = tasks
            .iter()
            .enumerate()
            .filter(|(k, _)| fast_mask[*k])
            .map(|(_, t)| *t)
            .collect();
        if fast.is_empty() {
            break;
        }
        let phase2_caps: Vec<(CellTask, f64)> = tasks
            .iter()
            .enumerate()
            .map(|(k, t)| {
                let l_req = if evicted[k] {
                    t.crit_len
                } else if fast_mask[k] {
                    t.w / pw.s_up
                } else {
                    t.w / t.s1
                };
                (*t, l_req)
            })
            .collect();
        let new_sol = minimize_in_cell(&fast, &phase2_caps, cell, pw)?;
        let moved = (new_sol.0 - sol.0).abs() + (new_sol.1 - sol.1).abs()
            > 1e-12 * (cell.3 - cell.0).max(1.0);
        sol = new_sol;
        // Prolonging may push other actives below s₀: evict them.
        for (k, t) in tasks.iter().enumerate() {
            if !evicted[k] && t.speed(sol.0, sol.1) < t.s0 * (1.0 - REL) {
                evicted[k] = true;
            }
        }
        if !moved {
            break;
        }
    }

    // Total cell energy: aligned actives + critical-speed evictees.
    let (s, e) = sol;
    let mut energy = pw.alpha_m * (e - s);
    for (k, t) in tasks.iter().enumerate() {
        if evicted[k] {
            energy += pw.beta * t.w.powf(pw.lambda) * t.crit_len.powf(1.0 - pw.lambda)
                + pw.alpha * t.crit_len;
        } else {
            let l = t.window(s, e);
            if l < t.w / pw.s_up * (1.0 - 1e-9) {
                return None;
            }
            energy += pw.beta * t.w.powf(pw.lambda) * l.powf(1.0 - pw.lambda) + pw.alpha * l;
        }
    }
    Some((s, e, evicted, energy))
}

/// The paper-faithful block solver: enumerates all `(i, j)` cells, runs the
/// five-step scheme in each, and returns the best candidate (Theorem 4).
pub(crate) fn solve(tasks: &[BlockTask], pw: &PowerParams) -> BlockSolution {
    let live: Vec<&BlockTask> = tasks.iter().filter(|t| t.w > 0.0).collect();
    if live.is_empty() {
        let s = tasks.first().map_or(0.0, |t| t.r);
        return BlockSolution {
            s,
            e: s,
            energy: 0.0,
            runs: tasks.iter().map(|t| (t.r, 0.0)).collect(),
        };
    }
    let r1 = live[0].r;
    let d1 = live.iter().map(|t| t.d).fold(f64::INFINITY, f64::min);
    let rn = live.iter().map(|t| t.r).fold(f64::NEG_INFINITY, f64::max);
    let dn = live.last().expect("non-empty").d;

    // Cell breakpoints.
    let mut s_bps: Vec<f64> = live.iter().map(|t| t.r).chain([d1]).collect();
    s_bps.retain(|x| (r1..=d1).contains(x));
    s_bps.sort_by(f64::total_cmp);
    s_bps.dedup();
    let mut e_bps: Vec<f64> = live.iter().map(|t| t.d).chain([rn]).collect();
    e_bps.retain(|x| (rn..=dn).contains(x));
    e_bps.sort_by(f64::total_cmp);
    e_bps.dedup();

    let cell_tasks = |sa: f64, eb: f64| -> Vec<CellTask> {
        live.iter()
            .enumerate()
            .map(|(k, t)| {
                let s_f = t.w / (t.d - t.r);
                let s0 = s_f.max(pw.s_m).min(pw.s_up);
                let s1 = s_f.max(pw.s_cm).min(pw.s_up);
                CellTask {
                    k,
                    starts_at_s: t.r <= sa + 1e-15,
                    ends_at_e: t.d >= eb - 1e-15,
                    r: t.r,
                    d: t.d,
                    w: t.w,
                    crit_len: t.w / s0,
                    s0,
                    s1,
                }
            })
            .collect()
    };

    // Cells: consecutive breakpoint pairs; a single breakpoint (possible
    // only in degenerate inputs) becomes a point cell.
    let cells = |bps: &[f64]| -> Vec<(f64, f64)> {
        if bps.len() >= 2 {
            bps.windows(2).map(|w| (w[0], w[1])).collect()
        } else {
            vec![(bps[0], bps[0])]
        }
    };

    let mut best: Option<(f64, f64, Vec<bool>, f64)> = None;
    for &(sa, sb) in &cells(&s_bps) {
        for &(ea, eb) in &cells(&e_bps) {
            if eb <= sa {
                continue;
            }
            let cts = cell_tasks(sa, eb);
            if let Some(cand) = solve_cell(&cts, (sa, sb, ea, eb), pw) {
                if best.as_ref().is_none_or(|b| cand.3 < b.3) {
                    best = Some(cand);
                }
            }
        }
    }

    let (s, e, evicted, energy) = best.expect("the full-interval cell is feasible");
    let cts = cell_tasks(s, e);
    let mut runs = vec![(0.0, 0.0); tasks.len()];
    for t in tasks {
        runs[index_of(tasks, t)] = (t.r.max(s), 0.0);
    }
    for (pos, ct) in cts.iter().enumerate() {
        let global = live[ct.k].index;
        let slot = tasks
            .iter()
            .position(|t| t.index == global)
            .expect("live task present");
        let start = if ct.starts_at_s { s } else { ct.r };
        let len = if evicted[pos] {
            ct.crit_len
        } else {
            ct.window(s, e)
        };
        runs[slot] = (start, len);
    }
    BlockSolution { s, e, energy, runs }
}

fn index_of(tasks: &[BlockTask], t: &BlockTask) -> usize {
    tasks
        .iter()
        .position(|x| x.index == t.index)
        .expect("task belongs to slice")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agreeable::block;
    use sdem_power::{CorePower, MemoryPower, Platform};
    use sdem_types::Watts;

    fn pw(alpha: f64, alpha_m: f64) -> PowerParams {
        PowerParams::of(&Platform::new(
            CorePower::simple(alpha, 1.0, 3.0),
            MemoryPower::new(Watts::new(alpha_m)),
        ))
    }

    fn bt(index: usize, r: f64, d: f64, w: f64) -> BlockTask {
        BlockTask { index, r, d, w }
    }

    #[test]
    fn agrees_with_best_response_alpha_zero() {
        let p = pw(0.0, 4.0);
        let cases: Vec<Vec<BlockTask>> = vec![
            vec![bt(0, 0.0, 10.0, 2.0)],
            vec![bt(0, 0.0, 6.0, 2.0), bt(1, 1.0, 9.0, 3.0)],
            vec![
                bt(0, 0.0, 5.0, 2.0),
                bt(1, 2.0, 8.0, 1.0),
                bt(2, 3.0, 12.0, 4.0),
            ],
        ];
        for tasks in cases {
            let a = solve(&tasks, &p);
            let b = block::solve(&tasks, &p);
            assert!(
                (a.energy - b.energy).abs() <= 1e-6 * b.energy.max(1.0),
                "α=0 mismatch: iterative {} vs best-response {}",
                a.energy,
                b.energy
            );
        }
    }

    #[test]
    fn agrees_with_best_response_alpha_nonzero() {
        let p = pw(4.0, 6.0);
        let cases: Vec<Vec<BlockTask>> = vec![
            vec![bt(0, 0.0, 50.0, 2.0)],
            vec![bt(0, 0.0, 6.0, 2.0), bt(1, 1.0, 9.0, 3.0)],
            vec![
                bt(0, 0.0, 5.0, 2.0),
                bt(1, 2.0, 8.0, 1.0),
                bt(2, 3.0, 12.0, 4.0),
            ],
            vec![bt(0, 0.0, 30.0, 1.0), bt(1, 10.0, 40.0, 8.0)],
        ];
        for tasks in cases {
            let a = solve(&tasks, &p);
            let b = block::solve(&tasks, &p);
            assert!(
                (a.energy - b.energy).abs() <= 1e-5 * b.energy.max(1.0),
                "α≠0 mismatch on {tasks:?}: iterative {} vs best-response {}",
                a.energy,
                b.energy
            );
        }
    }

    #[test]
    fn type_classification_matches_critical_speeds() {
        // A tight task (must run fast) plus a loose one (should be Type-I
        // at s₀ when it cannot align cheaply).
        let p = pw(4.0, 1.0);
        let tasks = vec![bt(0, 0.0, 2.0, 3.8), bt(1, 0.0, 40.0, 1.0)];
        let sol = solve(&tasks, &p);
        // The loose task's run should be close to w/s₀ = 1/2^{1/3}.
        let crit = 1.0 / 2.0f64.powf(1.0 / 3.0);
        let run1 = sol.runs[1].1;
        assert!(
            (run1 - crit).abs() < 1e-3 || run1 >= crit,
            "loose task run {run1} vs critical {crit}"
        );
    }

    #[test]
    fn zero_work_block_is_trivial() {
        let p = pw(4.0, 1.0);
        let sol = solve(&[bt(0, 1.0, 2.0, 0.0)], &p);
        assert_eq!(sol.energy, 0.0);
        assert_eq!(sol.runs[0].1, 0.0);
    }

    #[test]
    fn common_release_cell_degeneracy() {
        // All releases equal ⇒ a single s-breakpoint would exist were it not
        // for the d₁ breakpoint; make sure the solver still works.
        let p = pw(0.0, 4.0);
        let tasks = vec![bt(0, 0.0, 4.0, 1.0), bt(1, 0.0, 8.0, 2.0)];
        let a = solve(&tasks, &p);
        let b = block::solve(&tasks, &p);
        assert!((a.energy - b.energy).abs() <= 1e-6 * b.energy.max(1.0));
    }
}
