//! The §5.1.1 closed-form block solver (`α = 0`), literal to Lemma 3.
//!
//! For an `(i, j)` pair without spanning (case-3) tasks the paper derives
//! separable first-order conditions (the display after Eq. 14):
//!
//! ```text
//! Σ_{k ≤ i} ( w_k / (d_k − Δ₁) )^λ
//!   = Σ_{k > n'−j} ( w_k / (d_{n'} − r_k − Δ₂) )^λ
//!   = α_m / (β (λ−1))
//! ```
//!
//! Each side is strictly increasing in its `Δ`, so a bisection per
//! coordinate finds the interior optimum; clamping to the pair's boundary
//! (`Δ₁ ∈ (r_i, r_{i+1}]`, `Δ₂ ∈ [d_{n'}−d_{n'−j+1}, d_{n'}−d_{n'−j})`)
//! gives the local minimum of Eq. 12/14 exactly as Lemma 3 prescribes.
//! Pairs *with* spanning tasks (Eq. 13, `∂²E/∂Δ₁∂Δ₂ ≠ 0`) fall back to the
//! same coordinate descent the other solvers use.
//!
//! This is the third implementation of the block subproblem — the
//! production convex solver ([`super::block`]) and the `(i, j)` iterative
//! scheme ([`super::algorithm1`]) are the other two — and all three are
//! property-tested equal on `α = 0` instances.

use sdem_power::Platform;
use sdem_types::numeric::{bisect_increasing, minimize_unimodal};
use sdem_types::{Joules, TaskSet};

use super::block::BlockSolution;
use super::{prepare, BlockTask, PowerParams};
use crate::SdemError;

/// Solves the whole task set as a single block with the Lemma-3 closed
/// forms. Requires the `α = 0` model.
///
/// # Errors
///
/// [`SdemError::UnsupportedModel`] when the platform has non-zero core
/// static power; otherwise the same preconditions as
/// [`super::schedule`].
pub fn solve_single_block_lemma3(
    tasks: &TaskSet,
    platform: &Platform,
) -> Result<Joules, SdemError> {
    if !platform.core().is_alpha_zero() {
        return Err(SdemError::UnsupportedModel(
            "the Lemma-3 closed forms require α = 0 (use the generic block solver otherwise)",
        ));
    }
    let sorted = prepare(tasks, platform)?;
    let pw = PowerParams::of(platform);
    let bts: Vec<BlockTask> = sorted
        .iter()
        .enumerate()
        .map(|(index, t)| BlockTask {
            index,
            r: t.release().as_secs(),
            d: t.deadline().as_secs(),
            w: t.work().value(),
        })
        .collect();
    Ok(Joules::new(solve(&bts, &pw)))
}

/// Block objective for `α = 0` at busy interval `[s, e]` (Eq. 12–14 with
/// the windows written through min/max).
fn energy(tasks: &[BlockTask], s: f64, e: f64, pw: &PowerParams) -> f64 {
    let mut total = pw.alpha_m * (e - s);
    for t in tasks {
        if t.w == 0.0 {
            continue;
        }
        let l = e.min(t.d) - s.max(t.r);
        if l <= 0.0 || l < t.w / pw.s_up * (1.0 - 1e-12) {
            return f64::INFINITY;
        }
        total += pw.beta * t.w.powf(pw.lambda) * l.powf(1.0 - pw.lambda);
    }
    total
}

/// DP-compatible entry point: the Lemma-3 optimum as a [`BlockSolution`]
/// (with `α = 0` every task is aligned, so its run fills its window).
pub(crate) fn solve_block(tasks: &[BlockTask], pw: &PowerParams) -> BlockSolution {
    let (s, e, energy) = solve_interval(tasks, pw);
    let runs = tasks
        .iter()
        .map(|t| {
            if t.w == 0.0 {
                return (t.r.max(s), 0.0);
            }
            let start = t.r.max(s);
            let len = (t.d.min(e) - start).max(t.w / pw.s_up);
            (start, len)
        })
        .collect();
    BlockSolution { s, e, energy, runs }
}

pub(crate) fn solve(tasks: &[BlockTask], pw: &PowerParams) -> f64 {
    solve_interval(tasks, pw).2
}

fn solve_interval(tasks: &[BlockTask], pw: &PowerParams) -> (f64, f64, f64) {
    let live: Vec<&BlockTask> = tasks.iter().filter(|t| t.w > 0.0).collect();
    if live.is_empty() {
        let s = tasks.first().map_or(0.0, |t| t.r);
        return (s, s, 0.0);
    }
    let r1 = live[0].r;
    let d1 = live.iter().map(|t| t.d).fold(f64::INFINITY, f64::min);
    let rn = live.iter().map(|t| t.r).fold(f64::NEG_INFINITY, f64::max);
    let dn = live.last().expect("non-empty").d;
    let rhs = pw.alpha_m / (pw.beta * (pw.lambda - 1.0));

    // Cell breakpoints exactly as the (i, j) pairs induce them.
    let mut s_bps: Vec<f64> = live.iter().map(|t| t.r).chain([d1]).collect();
    s_bps.retain(|x| (r1..=d1).contains(x));
    s_bps.sort_by(f64::total_cmp);
    s_bps.dedup();
    let mut e_bps: Vec<f64> = live.iter().map(|t| t.d).chain([rn]).collect();
    e_bps.retain(|x| (rn..=dn).contains(x));
    e_bps.sort_by(f64::total_cmp);
    e_bps.dedup();
    let cells = |bps: &[f64]| -> Vec<(f64, f64)> {
        if bps.len() >= 2 {
            bps.windows(2).map(|w| (w[0], w[1])).collect()
        } else {
            vec![(bps[0], bps[0])]
        }
    };

    let all: Vec<BlockTask> = live.iter().map(|&&t| t).collect();
    let mut best = (r1, dn, f64::INFINITY);
    for &(sa, sb) in &cells(&s_bps) {
        for &(ea, eb) in &cells(&e_bps) {
            if eb <= sa {
                continue;
            }
            // Classification for this pair.
            let case1: Vec<&BlockTask> = all
                .iter()
                .filter(|t| t.r <= sa + 1e-15 && t.d < eb - 1e-15)
                .collect();
            let case4: Vec<&BlockTask> = all
                .iter()
                .filter(|t| t.r > sa + 1e-15 && t.d >= eb - 1e-15)
                .collect();
            let has_case3 = all.iter().any(|t| t.r <= sa + 1e-15 && t.d >= eb - 1e-15);

            let (s_opt, e_opt) = if has_case3 {
                // Eq. 13: coupled — coordinate descent within the cell.
                coupled_cell_opt(&all, (sa, sb, ea, eb), pw)
            } else {
                // Eq. 12/14: separable first-order conditions.
                // dE/ds = −α_m + β(λ−1) Σ_case1 w^λ (d−s)^{−λ}, increasing
                // in s; root where Σ (w/(d−s))^λ = α_m/(β(λ−1)).
                let g_s = |s: f64| -> f64 {
                    case1
                        .iter()
                        .map(|t| (t.w / (t.d - s)).powf(pw.lambda))
                        .sum::<f64>()
                        - rhs
                };
                let s_opt = if case1.is_empty() {
                    // Energy decreases in s (only the α_m term): push right.
                    sb
                } else {
                    bisect_increasing(g_s, sa, sb, 1e-13).unwrap_or({
                        if g_s(sa) > 0.0 {
                            sa
                        } else {
                            sb
                        }
                    })
                };
                let g_e = |e: f64| -> f64 {
                    rhs - case4
                        .iter()
                        .map(|t| (t.w / (e - t.r)).powf(pw.lambda))
                        .sum::<f64>()
                };
                let e_opt = if case4.is_empty() {
                    ea.max(s_opt)
                } else {
                    bisect_increasing(g_e, ea.max(s_opt), eb, 1e-13).unwrap_or({
                        if g_e(eb) < 0.0 {
                            eb
                        } else {
                            ea.max(s_opt)
                        }
                    })
                };
                (s_opt, e_opt)
            };
            if e_opt > s_opt {
                let val = energy(&all, s_opt, e_opt, pw);
                if val < best.2 {
                    best = (s_opt, e_opt, val);
                }
            }
        }
    }
    best
}

/// Coordinate descent for the coupled (case-3) pairs, within one cell.
fn coupled_cell_opt(
    tasks: &[BlockTask],
    (sa, sb, ea, eb): (f64, f64, f64, f64),
    pw: &PowerParams,
) -> (f64, f64) {
    let (mut s, mut e) = (sa, eb);
    for _ in 0..40 {
        let (ps, pe) = (s, e);
        if sb > sa {
            let (xs, _) = minimize_unimodal(|x| energy(tasks, x, e, pw), sa, sb.min(e), 1e-13);
            s = xs;
        }
        if eb > ea {
            let (xe, _) = minimize_unimodal(|x| energy(tasks, s, x, pw), ea.max(s), eb, 1e-13);
            e = xe;
        }
        if (ps - s).abs() + (pe - e).abs() <= 1e-12 * (eb - sa).max(1.0) {
            break;
        }
    }
    (s, e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agreeable::{solve_single_block, BlockSolverKind};
    use sdem_power::{CorePower, MemoryPower};
    use sdem_types::{Cycles, Task, Time, Watts};

    fn platform(alpha_m: f64) -> Platform {
        Platform::new(
            CorePower::simple(0.0, 1.0, 3.0),
            MemoryPower::new(Watts::new(alpha_m)),
        )
    }

    fn tset(specs: &[(f64, f64, f64)]) -> TaskSet {
        TaskSet::new(
            specs
                .iter()
                .enumerate()
                .map(|(i, &(r, d, w))| {
                    Task::new(i, Time::from_secs(r), Time::from_secs(d), Cycles::new(w))
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn matches_the_other_block_solvers() {
        let p = platform(4.0);
        for specs in [
            vec![(0.0, 10.0, 2.0)],
            vec![(0.0, 6.0, 2.0), (1.0, 9.0, 3.0)],
            vec![(0.0, 5.0, 2.0), (2.0, 8.0, 1.0), (3.0, 12.0, 4.0)],
            vec![(0.0, 4.0, 1.0), (0.0, 8.0, 2.0)],
        ] {
            let tasks = tset(&specs);
            let lemma3 = solve_single_block_lemma3(&tasks, &p).unwrap().value();
            let br = solve_single_block(&tasks, &p, BlockSolverKind::BestResponse)
                .unwrap()
                .value();
            assert!(
                (lemma3 - br).abs() <= 1e-6 * br.max(1.0),
                "{specs:?}: Lemma 3 {lemma3} vs best-response {br}"
            );
        }
    }

    #[test]
    fn single_task_first_order_condition() {
        // One case-1 task [0, d]: (w/(d−Δ1))^λ = α_m/(β(λ−1)) at the
        // optimum ⇒ busy end at window (β(λ−1)w^λ/α_m)^{1/λ}... matches
        // the §4.1 single-task closed form.
        let p = platform(4.0);
        let tasks = tset(&[(0.0, 10.0, 2.0)]);
        let got = solve_single_block_lemma3(&tasks, &p).unwrap().value();
        let t_star = (2.0f64 * 8.0 / 4.0).powf(1.0 / 3.0);
        let expected = 4.0 * t_star + 8.0 / (t_star * t_star);
        assert!((got - expected).abs() < 1e-6, "{got} vs {expected}");
    }

    #[test]
    fn rejects_alpha_nonzero() {
        let p = Platform::new(
            CorePower::simple(2.0, 1.0, 3.0),
            MemoryPower::new(Watts::new(4.0)),
        );
        let tasks = tset(&[(0.0, 10.0, 2.0)]);
        assert!(matches!(
            solve_single_block_lemma3(&tasks, &p),
            Err(SdemError::UnsupportedModel(_))
        ));
    }
}
