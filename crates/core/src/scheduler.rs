//! The unified scheduling API: one [`Scheduler`] trait over every scheme,
//! a [`Scheme`] selector, and [`solve`] routing `Scheme::Auto` from the
//! task-set shape (common release → §4/§7, agreeable → §5, general → §6).
//!
//! The per-scheme free functions ([`common_release::schedule_alpha_zero`]
//! and friends) remain the primitive layer; this module is a thin,
//! object-safe veneer so callers — CLI, sweep engine, baselines harness —
//! can select a scheme with a value instead of a function pointer.
//!
//! # Examples
//!
//! ```
//! use sdem_core::{solve, Scheme, Scheduler};
//! use sdem_power::Platform;
//! use sdem_types::{Cycles, Task, TaskSet, Time};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let platform = Platform::paper_defaults();
//! let tasks = TaskSet::new(vec![
//!     Task::new(0, Time::ZERO, Time::from_millis(30.0), Cycles::new(6.0e6)),
//!     Task::new(1, Time::ZERO, Time::from_millis(80.0), Cycles::new(9.0e6)),
//! ])?;
//! // Auto picks the overhead-aware common-release scheme here.
//! let solution = solve(&tasks, &platform, Scheme::Auto)?;
//! assert!(solution.predicted_energy().value() > 0.0);
//! // Scheme values are also schedulers themselves:
//! let same = Scheme::CommonReleaseOverhead.solve(&tasks, &platform)?;
//! assert_eq!(solution.predicted_energy(), same.predicted_energy());
//! # Ok(())
//! # }
//! ```

use sdem_power::Platform;
use sdem_types::{TaskSet, Workspace};

use crate::{agreeable, bounded, common_release, online, overhead, SdemError, Solution};

/// The object-safe interface every SDEM scheme implements.
///
/// A scheduler maps an instance (task set + platform) to a [`Solution`]:
/// the explicit schedule plus the scheme's analytic energy. Schedulers are
/// stateless values, so trait objects (`&dyn Scheduler`) are cheap to pass
/// through harness layers.
pub trait Scheduler {
    /// Short stable name (for CLIs, reports and sweep labels).
    fn name(&self) -> &'static str;

    /// Solves the instance.
    ///
    /// The default implementation delegates to [`Scheduler::solve_into`]
    /// with a throwaway [`Workspace`], so every scheme has exactly one
    /// code path and the two entry points are bit-identical.
    ///
    /// # Errors
    ///
    /// Scheme-specific [`SdemError`]s: shape mismatches
    /// ([`SdemError::NotCommonRelease`], [`SdemError::NotAgreeable`]),
    /// infeasibility, or size limits of exact solvers.
    fn solve(&self, tasks: &TaskSet, platform: &Platform) -> Result<Solution, SdemError> {
        self.solve_into(tasks, platform, &mut Workspace::new())
    }

    /// Solves the instance drawing all scratch and output buffers from
    /// `ws`. Repeated calls with the same warmed workspace are
    /// allocation-free on the analytic (common-release) schemes; recycle
    /// each solution's schedule back via [`Workspace::recycle_schedule`]
    /// to keep the arena primed.
    ///
    /// # Errors
    ///
    /// Same as [`Scheduler::solve`].
    fn solve_into(
        &self,
        tasks: &TaskSet,
        platform: &Platform,
        ws: &mut Workspace,
    ) -> Result<Solution, SdemError>;
}

/// §4.1 optimal scheme — common release, `α = 0`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommonReleaseAlphaZero;

/// §4.2 optimal scheme — common release, `α ≠ 0`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommonReleaseAlphaNonzero;

/// §7 overhead-aware common-release scheme (Table 3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommonReleaseOverhead;

/// §5 agreeable-deadline DP (block best-response solver).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Agreeable;

/// Overlap-free variant of the agreeable DP (DESIGN.md deviation 3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AgreeableStrict;

/// §7 overhead-aware agreeable scheme.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AgreeableOverhead;

/// §6 online heuristic SDEM-ON (unbounded core pool).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Online;

/// §6 online heuristic with a hard core bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OnlineBounded(pub usize);

/// §3 bounded-core LPT heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundedLpt(pub usize);

/// §3 bounded-core exact partition enumeration (small instances only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundedExact(pub usize);

/// §3 bounded-core branch-and-bound — exact results (bit-identical to
/// [`BoundedExact`] on instances both accept) up to
/// [`bounded::BNB_LIMIT`] tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundedBnb(pub usize);

/// §3 bounded-core LPT + local-search refinement (any instance size).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundedRefined(pub usize);

/// Federated decomposition onto the given core budget: tasks are packed
/// LPT-style onto cores, chopped into sequential per-core windows, and
/// each core's window sequence is energy-minimized by the routed paper
/// solvers (see [`crate::dag`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DagFederated(pub usize);

impl Scheduler for CommonReleaseAlphaZero {
    fn name(&self) -> &'static str {
        "common-release-alpha-zero"
    }
    fn solve_into(
        &self,
        tasks: &TaskSet,
        platform: &Platform,
        ws: &mut Workspace,
    ) -> Result<Solution, SdemError> {
        common_release::schedule_alpha_zero_in(tasks, platform, ws)
    }
}

impl Scheduler for CommonReleaseAlphaNonzero {
    fn name(&self) -> &'static str {
        "common-release-alpha-nonzero"
    }
    fn solve_into(
        &self,
        tasks: &TaskSet,
        platform: &Platform,
        ws: &mut Workspace,
    ) -> Result<Solution, SdemError> {
        common_release::schedule_alpha_nonzero_in(tasks, platform, ws)
    }
}

impl Scheduler for CommonReleaseOverhead {
    fn name(&self) -> &'static str {
        "common-release-overhead"
    }
    fn solve_into(
        &self,
        tasks: &TaskSet,
        platform: &Platform,
        ws: &mut Workspace,
    ) -> Result<Solution, SdemError> {
        overhead::schedule_common_release_in(tasks, platform, ws)
    }
}

impl Scheduler for Agreeable {
    fn name(&self) -> &'static str {
        "agreeable"
    }
    fn solve_into(
        &self,
        tasks: &TaskSet,
        platform: &Platform,
        ws: &mut Workspace,
    ) -> Result<Solution, SdemError> {
        agreeable::schedule_in(tasks, platform, ws)
    }
}

impl Scheduler for AgreeableStrict {
    fn name(&self) -> &'static str {
        "agreeable-strict"
    }
    fn solve_into(
        &self,
        tasks: &TaskSet,
        platform: &Platform,
        ws: &mut Workspace,
    ) -> Result<Solution, SdemError> {
        agreeable::schedule_strict_in(tasks, platform, ws)
    }
}

impl Scheduler for AgreeableOverhead {
    fn name(&self) -> &'static str {
        "agreeable-overhead"
    }
    fn solve_into(
        &self,
        tasks: &TaskSet,
        platform: &Platform,
        ws: &mut Workspace,
    ) -> Result<Solution, SdemError> {
        overhead::schedule_agreeable_in(tasks, platform, ws)
    }
}

impl Scheduler for Online {
    fn name(&self) -> &'static str {
        "online"
    }
    fn solve_into(
        &self,
        tasks: &TaskSet,
        platform: &Platform,
        ws: &mut Workspace,
    ) -> Result<Solution, SdemError> {
        let schedule = online::schedule_online_in(tasks, platform, ws)?;
        Ok(Solution::from_schedule_in(schedule, platform, ws))
    }
}

impl Scheduler for OnlineBounded {
    fn name(&self) -> &'static str {
        "online-bounded"
    }
    fn solve_into(
        &self,
        tasks: &TaskSet,
        platform: &Platform,
        ws: &mut Workspace,
    ) -> Result<Solution, SdemError> {
        let schedule = online::schedule_online_bounded_in(tasks, platform, self.0, ws)?;
        Ok(Solution::from_schedule_in(schedule, platform, ws))
    }
}

impl Scheduler for BoundedLpt {
    fn name(&self) -> &'static str {
        "bounded-lpt"
    }
    fn solve_into(
        &self,
        tasks: &TaskSet,
        platform: &Platform,
        ws: &mut Workspace,
    ) -> Result<Solution, SdemError> {
        bounded::solve_lpt_in(tasks, platform, self.0, ws)
    }
}

impl Scheduler for BoundedExact {
    fn name(&self) -> &'static str {
        "bounded-exact"
    }
    fn solve_into(
        &self,
        tasks: &TaskSet,
        platform: &Platform,
        ws: &mut Workspace,
    ) -> Result<Solution, SdemError> {
        bounded::solve_exact_in(tasks, platform, self.0, ws)
    }
}

impl Scheduler for BoundedBnb {
    fn name(&self) -> &'static str {
        "bounded-bnb"
    }
    fn solve_into(
        &self,
        tasks: &TaskSet,
        platform: &Platform,
        ws: &mut Workspace,
    ) -> Result<Solution, SdemError> {
        bounded::solve_bnb_in(tasks, platform, self.0, ws)
    }
}

impl Scheduler for BoundedRefined {
    fn name(&self) -> &'static str {
        "bounded-refined"
    }
    fn solve_into(
        &self,
        tasks: &TaskSet,
        platform: &Platform,
        ws: &mut Workspace,
    ) -> Result<Solution, SdemError> {
        bounded::solve_refined_in(tasks, platform, self.0, ws)
    }
}

impl Scheduler for DagFederated {
    fn name(&self) -> &'static str {
        "dag-federated"
    }
    fn solve_into(
        &self,
        tasks: &TaskSet,
        platform: &Platform,
        ws: &mut Workspace,
    ) -> Result<Solution, SdemError> {
        crate::dag::solve_federated_in(tasks, platform, self.0, ws)
    }
}

/// Scheme selector for [`solve`]: every [`Scheduler`] implementation as a
/// value, plus [`Scheme::Auto`] routing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum Scheme {
    /// Route from the task-set shape and the platform (see [`solve`]).
    #[default]
    Auto,
    /// [`CommonReleaseAlphaZero`].
    CommonReleaseAlphaZero,
    /// [`CommonReleaseAlphaNonzero`].
    CommonReleaseAlphaNonzero,
    /// [`CommonReleaseOverhead`].
    CommonReleaseOverhead,
    /// [`Agreeable`].
    Agreeable,
    /// [`AgreeableStrict`].
    AgreeableStrict,
    /// [`AgreeableOverhead`].
    AgreeableOverhead,
    /// [`Online`].
    Online,
    /// [`OnlineBounded`] with the given core budget.
    OnlineBounded(usize),
    /// [`BoundedLpt`] with the given core count.
    BoundedLpt(usize),
    /// [`BoundedExact`] with the given core count.
    BoundedExact(usize),
    /// [`BoundedBnb`] with the given core count.
    BoundedBnb(usize),
    /// [`BoundedRefined`] with the given core count.
    BoundedRefined(usize),
    /// Size-routed bounded-core tiering with the given core count:
    /// [`Scheme::resolve`] picks the strongest tier the instance size
    /// admits — exact (`n ≤` [`bounded::EXACT_LIMIT`]), branch-and-bound
    /// (`n ≤` [`bounded::BNB_LIMIT`]), else LPT + refine.
    BoundedAuto(usize),
    /// [`DagFederated`] with the given core budget.
    DagFederated(usize),
}

impl Scheme {
    /// Observability label for a resolved scheme's solve site
    /// (`"solve/<scheme-name>"`), usable with `sdem-obs`'s
    /// `&'static str`-labeled histogram and span registries.
    pub fn solve_label(self) -> &'static str {
        match self {
            Scheme::Auto => "solve/auto",
            Scheme::CommonReleaseAlphaZero => "solve/common-release-alpha-zero",
            Scheme::CommonReleaseAlphaNonzero => "solve/common-release-alpha-nonzero",
            Scheme::CommonReleaseOverhead => "solve/common-release-overhead",
            Scheme::Agreeable => "solve/agreeable",
            Scheme::AgreeableStrict => "solve/agreeable-strict",
            Scheme::AgreeableOverhead => "solve/agreeable-overhead",
            Scheme::Online => "solve/online",
            Scheme::OnlineBounded(_) => "solve/online-bounded",
            Scheme::BoundedLpt(_) => "solve/bounded-lpt",
            Scheme::BoundedExact(_) => "solve/bounded-exact",
            Scheme::BoundedBnb(_) => "solve/bounded-bnb",
            Scheme::BoundedRefined(_) => "solve/bounded-refined",
            Scheme::BoundedAuto(_) => "solve/bounded-auto",
            Scheme::DagFederated(_) => "solve/dag-federated",
        }
    }

    /// Resolves [`Scheme::Auto`] against a concrete instance: common
    /// release → §7 when any break-even is positive, else the §4 scheme
    /// matching `α`; agreeable deadlines → the §5 DP (overhead-aware when
    /// break-evens are positive); anything else → SDEM-ON.
    pub fn resolve(self, tasks: &TaskSet, platform: &Platform) -> Scheme {
        if let Scheme::BoundedAuto(cores) = self {
            // Strongest tier the size admits: exact → B&B → LPT + refine.
            let n = tasks.len();
            return if n <= bounded::EXACT_LIMIT {
                Scheme::BoundedExact(cores)
            } else if n <= bounded::BNB_LIMIT {
                Scheme::BoundedBnb(cores)
            } else {
                Scheme::BoundedRefined(cores)
            };
        }
        if self != Scheme::Auto {
            return self;
        }
        let has_overhead = platform.core().break_even().value() > 0.0
            || platform.memory().break_even().value() > 0.0;
        if tasks.is_common_release() {
            if has_overhead {
                Scheme::CommonReleaseOverhead
            } else if platform.core().is_alpha_zero() {
                Scheme::CommonReleaseAlphaZero
            } else {
                Scheme::CommonReleaseAlphaNonzero
            }
        } else if tasks.is_agreeable() {
            if has_overhead {
                Scheme::AgreeableOverhead
            } else {
                Scheme::Agreeable
            }
        } else {
            Scheme::Online
        }
    }
}

impl Scheduler for Scheme {
    fn name(&self) -> &'static str {
        match self {
            Scheme::Auto => "auto",
            Scheme::CommonReleaseAlphaZero => CommonReleaseAlphaZero.name(),
            Scheme::CommonReleaseAlphaNonzero => CommonReleaseAlphaNonzero.name(),
            Scheme::CommonReleaseOverhead => CommonReleaseOverhead.name(),
            Scheme::Agreeable => Agreeable.name(),
            Scheme::AgreeableStrict => AgreeableStrict.name(),
            Scheme::AgreeableOverhead => AgreeableOverhead.name(),
            Scheme::Online => Online.name(),
            Scheme::OnlineBounded(_) => OnlineBounded(0).name(),
            Scheme::BoundedLpt(_) => BoundedLpt(0).name(),
            Scheme::BoundedExact(_) => BoundedExact(0).name(),
            Scheme::BoundedBnb(_) => BoundedBnb(0).name(),
            Scheme::BoundedRefined(_) => BoundedRefined(0).name(),
            Scheme::BoundedAuto(_) => "bounded-auto",
            Scheme::DagFederated(_) => DagFederated(0).name(),
        }
    }

    fn solve_into(
        &self,
        tasks: &TaskSet,
        platform: &Platform,
        ws: &mut Workspace,
    ) -> Result<Solution, SdemError> {
        let resolved = self.resolve(tasks, platform);
        // One relaxed load each when observability is off; the labeled
        // histogram sample and span are recorded only when enabled.
        let label = resolved.solve_label();
        let clock = sdem_obs::registry::maybe_start();
        let _span = sdem_obs::trace::span(label);
        let result = match resolved {
            Scheme::Auto => unreachable!("resolve never returns Auto"),
            Scheme::BoundedAuto(_) => unreachable!("resolve never returns BoundedAuto"),
            Scheme::CommonReleaseAlphaZero => {
                CommonReleaseAlphaZero.solve_into(tasks, platform, ws)
            }
            Scheme::CommonReleaseAlphaNonzero => {
                CommonReleaseAlphaNonzero.solve_into(tasks, platform, ws)
            }
            Scheme::CommonReleaseOverhead => CommonReleaseOverhead.solve_into(tasks, platform, ws),
            Scheme::Agreeable => Agreeable.solve_into(tasks, platform, ws),
            Scheme::AgreeableStrict => AgreeableStrict.solve_into(tasks, platform, ws),
            Scheme::AgreeableOverhead => AgreeableOverhead.solve_into(tasks, platform, ws),
            Scheme::Online => Online.solve_into(tasks, platform, ws),
            Scheme::OnlineBounded(n) => OnlineBounded(n).solve_into(tasks, platform, ws),
            Scheme::BoundedLpt(n) => BoundedLpt(n).solve_into(tasks, platform, ws),
            Scheme::BoundedExact(n) => BoundedExact(n).solve_into(tasks, platform, ws),
            Scheme::BoundedBnb(n) => BoundedBnb(n).solve_into(tasks, platform, ws),
            Scheme::BoundedRefined(n) => BoundedRefined(n).solve_into(tasks, platform, ws),
            Scheme::DagFederated(n) => DagFederated(n).solve_into(tasks, platform, ws),
        };
        sdem_obs::registry::record_elapsed(label, clock);
        result
    }
}

/// Solves `tasks` on `platform` with the selected [`Scheme`] — the single
/// entry point the CLI and the sweep harness use.
///
/// # Errors
///
/// Whatever the routed scheme returns; see [`Scheduler::solve`].
pub fn solve(tasks: &TaskSet, platform: &Platform, scheme: Scheme) -> Result<Solution, SdemError> {
    scheme.solve(tasks, platform)
}

/// In-place [`solve`]: scratch and output buffers come from `ws`. With a
/// warmed workspace, repeated trials on the analytic schemes allocate
/// nothing; recycle each solution's schedule back via
/// [`Workspace::recycle_schedule`] between trials.
///
/// # Errors
///
/// Whatever the routed scheme returns; see [`Scheduler::solve`].
pub fn solve_in(
    tasks: &TaskSet,
    platform: &Platform,
    scheme: Scheme,
    ws: &mut Workspace,
) -> Result<Solution, SdemError> {
    scheme.solve_into(tasks, platform, ws)
}

#[cfg(test)]
mod tests {
    // These tests keep exercising the deprecated convenience
    // wrappers so the legacy entry points stay covered until removal.
    #![allow(deprecated)]

    use super::*;
    use sdem_types::{Cycles, Task, Time};

    fn common_release_set() -> TaskSet {
        TaskSet::new(vec![
            Task::new(0, Time::ZERO, Time::from_millis(30.0), Cycles::new(6.0e6)),
            Task::new(1, Time::ZERO, Time::from_millis(80.0), Cycles::new(9.0e6)),
        ])
        .unwrap()
    }

    fn general_set() -> TaskSet {
        TaskSet::new(vec![
            Task::new(0, Time::ZERO, Time::from_millis(90.0), Cycles::new(6.0e6)),
            Task::new(
                1,
                Time::from_millis(10.0),
                Time::from_millis(60.0),
                Cycles::new(9.0e6),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn auto_routes_common_release_with_overheads() {
        let platform = Platform::paper_defaults();
        let tasks = common_release_set();
        assert_eq!(
            Scheme::Auto.resolve(&tasks, &platform),
            Scheme::CommonReleaseOverhead
        );
        let auto = solve(&tasks, &platform, Scheme::Auto).unwrap();
        let direct = overhead::schedule_common_release(&tasks, &platform).unwrap();
        assert_eq!(auto.predicted_energy(), direct.predicted_energy());
    }

    #[test]
    fn auto_routes_general_sets_to_online() {
        let platform = Platform::paper_defaults();
        let tasks = general_set();
        assert_eq!(Scheme::Auto.resolve(&tasks, &platform), Scheme::Online);
        let solution = solve(&tasks, &platform, Scheme::Auto).unwrap();
        solution.schedule().validate(&tasks).unwrap();
        assert!(solution.predicted_energy().value() > 0.0);
    }

    #[test]
    fn schedulers_are_object_safe() {
        let platform = Platform::paper_defaults();
        // The §3 bounded solvers need one shared (release, deadline) pair.
        let tasks = TaskSet::new(vec![
            Task::new(0, Time::ZERO, Time::from_millis(80.0), Cycles::new(6.0e6)),
            Task::new(1, Time::ZERO, Time::from_millis(80.0), Cycles::new(9.0e6)),
        ])
        .unwrap();
        let zoo: Vec<Box<dyn Scheduler>> = vec![
            Box::new(CommonReleaseOverhead),
            Box::new(Online),
            Box::new(OnlineBounded(4)),
            Box::new(BoundedLpt(4)),
            Box::new(Scheme::Auto),
        ];
        for s in &zoo {
            assert!(!s.name().is_empty());
            let sol = s.solve(&tasks, &platform).unwrap();
            assert!(sol.predicted_energy().value() > 0.0);
        }
    }

    #[test]
    fn bounded_auto_routes_by_size() {
        let platform = Platform::paper_defaults();
        let sized = |n: usize| {
            TaskSet::new(
                (0..n)
                    .map(|i| Task::new(i, Time::ZERO, Time::from_millis(80.0), Cycles::new(1.0e6)))
                    .collect(),
            )
            .unwrap()
        };
        let small = sized(bounded::EXACT_LIMIT);
        let medium = sized(bounded::EXACT_LIMIT + 1);
        let large = sized(bounded::BNB_LIMIT + 1);
        assert_eq!(
            Scheme::BoundedAuto(4).resolve(&small, &platform),
            Scheme::BoundedExact(4)
        );
        assert_eq!(
            Scheme::BoundedAuto(4).resolve(&medium, &platform),
            Scheme::BoundedBnb(4)
        );
        assert_eq!(
            Scheme::BoundedAuto(4).resolve(&large, &platform),
            Scheme::BoundedRefined(4)
        );
        // The routed solve agrees with calling the tier directly.
        for tasks in [small, medium, large] {
            let auto = solve(&tasks, &platform, Scheme::BoundedAuto(4)).unwrap();
            let direct = solve(
                &tasks,
                &platform,
                Scheme::BoundedAuto(4).resolve(&tasks, &platform),
            )
            .unwrap();
            assert_eq!(
                auto.predicted_energy().value().to_bits(),
                direct.predicted_energy().value().to_bits()
            );
        }
    }

    #[test]
    fn bounded_tier_schedulers_are_object_safe() {
        let platform = Platform::paper_defaults();
        let tasks = TaskSet::new(vec![
            Task::new(0, Time::ZERO, Time::from_millis(80.0), Cycles::new(6.0e6)),
            Task::new(1, Time::ZERO, Time::from_millis(80.0), Cycles::new(9.0e6)),
        ])
        .unwrap();
        let zoo: Vec<Box<dyn Scheduler>> = vec![
            Box::new(BoundedBnb(2)),
            Box::new(BoundedRefined(2)),
            Box::new(Scheme::BoundedAuto(2)),
        ];
        for s in &zoo {
            assert!(!s.name().is_empty());
            let sol = s.solve(&tasks, &platform).unwrap();
            sol.schedule().validate(&tasks).unwrap();
        }
    }

    #[test]
    fn online_solution_energy_accounts_memory_sleep() {
        let platform = Platform::paper_defaults();
        // Two far-apart arrivals: the gap between their busy intervals
        // exceeds ξ_m = 40 ms, so the wrapper must record memory sleep.
        let tasks = TaskSet::new(vec![
            Task::new(0, Time::ZERO, Time::from_millis(20.0), Cycles::new(6.0e6)),
            Task::new(
                1,
                Time::from_millis(500.0),
                Time::from_millis(520.0),
                Cycles::new(6.0e6),
            ),
        ])
        .unwrap();
        let sol = Online.solve(&tasks, &platform).unwrap();
        assert!(
            sol.memory_sleep().value() > 0.0,
            "expected a sleeping gap, got {:?}",
            sol.memory_sleep()
        );
    }
}
