//! The SDEM scheduling algorithms — the paper's primary contribution.
//!
//! Reproduces every scheme of Fu, Chau, Li and Xue, *"Race to idle or not:
//! balancing the memory sleep time with DVS for energy minimization"*:
//!
//! | Paper | Model | Here |
//! |---|---|---|
//! | §4.1 (Thm 2, Lemma 1) | common release, `α = 0` | [`common_release::schedule_alpha_zero`] |
//! | §4.2 (Lemma 2, Thm 3) | common release, `α ≠ 0` | [`common_release::schedule_alpha_nonzero`] |
//! | §5.1 (Lemma 3–4) | agreeable deadlines, `α = 0` | [`agreeable::schedule_alpha_zero`] |
//! | §5.2 (Alg. 1, Thm 4) | agreeable deadlines, `α ≠ 0` | [`agreeable::schedule_alpha_nonzero`] |
//! | §6 | general tasks, online | [`online::schedule_online`] (+ [`online::schedule_online_bounded`] for fixed core counts) |
//! | §7 (Thm 5, Table 3) | transition overheads | [`overhead`] |
//! | §3 (Thm 1) | bounded cores (NP-hard) | [`bounded`] (exact, branch-and-bound, LPT + refine, lower bound; size-routed via [`Scheme::BoundedAuto`]) |
//! | §4 closing remark | heterogeneous cores | [`common_release::schedule_heterogeneous`] |
//! | §3 (Ishihara–Yasuura citation) | discrete speed levels | [`discrete`] |
//! | federated extension | precedence DAGs on bounded cores | [`dag`] ([`dag::solve_dags_in`], [`Scheme::DagFederated`]) |
//! | §5.1.1 closed forms | Lemma-3 bisection block solver | [`agreeable::solve_single_block_lemma3`] |
//! | DESIGN.md deviation 3 | overlap-free DP variant | [`agreeable::schedule_strict`] |
//! | (all of the above) | unified entry point | [`Scheduler`] trait, [`Scheme`] enum, [`solve`] |
//!
//! All offline schemes assume the paper's *unbounded* model: enough cores
//! that every task runs on its own core, so the only couplings between tasks
//! are the shared memory sleep window and, for `α ≠ 0`, the per-core sleep
//! decisions. The schemes return a [`Solution`] carrying the explicit
//! [`sdem_types::Schedule`] (verifiable with `sdem-sim`) plus the analytic
//! optimum energy.
//!
//! # Examples
//!
//! ```
//! use sdem_core::{solve, Scheme};
//! use sdem_power::Platform;
//! use sdem_types::{Task, TaskSet, Time, Cycles};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let platform = Platform::paper_defaults();
//! let tasks = TaskSet::new(vec![
//!     Task::new(0, Time::ZERO, Time::from_millis(30.0), Cycles::new(6.0e6)),
//!     Task::new(1, Time::ZERO, Time::from_millis(80.0), Cycles::new(9.0e6)),
//! ])?;
//! let solution = solve(&tasks, &platform, Scheme::CommonReleaseAlphaNonzero)?;
//! assert!(solution.memory_sleep().value() >= 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agreeable;
pub mod bounded;
pub mod common_release;
pub mod dag;
pub mod discrete;
mod fault;
pub mod online;
mod oracle;
pub mod overhead;
pub mod scheduler;
mod solution;

pub use fault::{
    schedule_race_to_idle, schedule_race_to_idle_in, solve_or_fallback, solve_or_fallback_in,
    solve_or_fallback_with, TrialError,
};
pub use oracle::{OracleError, OracleOptions, DEFAULT_ORACLE_TOLERANCE};
pub use scheduler::{solve, solve_in, Scheduler, Scheme};
pub use solution::{recycle_report, SdemError, Solution};
