//! The common result and error types of the SDEM schemes.

use core::fmt;

use sdem_power::Platform;
use sdem_types::{ErrorKind, Joules, Schedule, TaskId, Time, Workspace};

/// Result of an SDEM scheme: the explicit schedule plus the analytic
/// quantities the optimality proofs reason about.
///
/// `predicted_energy` is the scheme's closed-form energy under its own
/// accounting convention; tests cross-check it against the `sdem-sim`
/// meter on the same schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    schedule: Schedule,
    predicted_energy: Joules,
    memory_sleep: Time,
    degraded: bool,
}

impl Solution {
    /// Bundles a schedule with its analytic energy and total memory sleep.
    pub fn new(schedule: Schedule, predicted_energy: Joules, memory_sleep: Time) -> Self {
        Self {
            schedule,
            predicted_energy,
            memory_sleep,
            degraded: false,
        }
    }

    /// Returns a copy with the degraded-mode flag set. The fallback chain
    /// ([`crate::solve_or_fallback`]) marks its race-to-idle baseline
    /// solutions this way so aggregates can count them explicitly.
    #[must_use]
    pub fn with_degraded(mut self, degraded: bool) -> Self {
        self.degraded = degraded;
        self
    }

    /// Whether this solution came from the degraded-mode fallback rather
    /// than the requested scheme.
    #[inline]
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// The explicit schedule (one placement per task).
    #[inline]
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Consumes the solution, returning the schedule.
    pub fn into_schedule(self) -> Schedule {
        self.schedule
    }

    /// The scheme's closed-form optimal energy.
    #[inline]
    pub fn predicted_energy(&self) -> Joules {
        self.predicted_energy
    }

    /// Total common idle time the memory sleeps (`Δ` for the common-release
    /// schemes; the sum of inter-block gaps for the agreeable DP).
    #[inline]
    pub fn memory_sleep(&self) -> Time {
        self.memory_sleep
    }

    /// Wraps a bare [`Schedule`] (e.g. from the online heuristics, which
    /// carry no analytic optimum) into a [`Solution`] by pricing it with
    /// the model's closed forms under the *gap convention* and profitable
    /// sleeping — the same accounting the `sdem-sim` meter applies with its
    /// default options, so the predicted energy here agrees with the meter
    /// to floating-point round-off:
    ///
    /// * per-segment dynamic energy `β·s^λ·len` plus memory access energy;
    /// * per-core static energy `α` over busy time, each idle gap priced
    ///   at the cheaper of idling awake (`α·g`) or one round trip (`α·ξ`);
    /// * memory static energy `α_m` over the busy-union, sleeping exactly
    ///   the gaps of length ≥ ξ_m (one `α_m·ξ_m` round trip each).
    pub fn from_schedule(schedule: Schedule, platform: &Platform) -> Self {
        Self::from_schedule_in(schedule, platform, &mut Workspace::new())
    }

    /// In-place [`Self::from_schedule`]: the per-core busy/gap interval
    /// buffers are drawn from `ws` instead of freshly allocated.
    pub fn from_schedule_in(schedule: Schedule, platform: &Platform, ws: &mut Workspace) -> Self {
        let core = platform.core();
        let memory = platform.memory();
        let per_cycle = memory.access_energy_per_cycle();

        let mut energy = Joules::ZERO;
        for placement in schedule.placements() {
            for seg in placement.segments() {
                energy += core.dynamic_power(seg.speed()) * seg.length();
                energy += Joules::new(per_cycle * seg.work().value());
            }
        }

        let mut cores = ws.take_core_ids();
        schedule.cores_into(&mut cores);
        let mut busy = ws.take_intervals();
        let mut gaps = ws.take_intervals();
        for &c in cores.iter() {
            schedule.core_busy_intervals_into(c, &mut busy);
            energy += core.alpha() * busy.total();
            busy.gaps_into(None, &mut gaps);
            for &(a, b) in gaps.iter() {
                energy += core.best_gap_energy(b - a);
            }
        }

        schedule.memory_busy_intervals_into(&mut busy);
        energy += memory.awake_energy(busy.total());
        busy.gaps_into(None, &mut gaps);
        let mut sleep = Time::ZERO;
        for &(a, b) in gaps.iter() {
            let gap = b - a;
            if memory.sleep_is_profitable(gap) {
                energy += memory.transition_energy();
                sleep += gap;
            } else {
                energy += memory.awake_energy(gap);
            }
        }
        ws.recycle_intervals(busy);
        ws.recycle_intervals(gaps);
        ws.recycle_core_ids(cores);

        Self::new(schedule, energy, sleep)
    }
}

/// Tears a finished [`Solution`] down into `ws`, repooling its schedule's
/// placement and segment buffers for the next trial. The counterpart of
/// [`Solution::from_schedule_in`] in the sweep's zero-alloc loop: a worker
/// that recycles every report it produces re-runs the full trial path on a
/// warm [`Workspace`] without touching the heap.
pub fn recycle_report(solution: Solution, ws: &mut Workspace) {
    ws.recycle_schedule(solution.into_schedule());
}

/// Errors from the SDEM schemes.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SdemError {
    /// The scheme requires tasks with a common release time.
    NotCommonRelease,
    /// The scheme requires agreeable deadlines.
    NotAgreeable,
    /// A task cannot meet its deadline even at the maximum speed
    /// (`s_f > s_up`), so no feasible schedule exists.
    InfeasibleTask(TaskId),
    /// The exact bounded-core solver only handles small instances.
    TooLarge {
        /// Number of tasks requested.
        tasks: usize,
        /// Maximum supported by the exact enumeration.
        limit: usize,
    },
    /// A positive number of cores is required.
    NoCores,
    /// The scheme only supports a restricted system model (e.g. the
    /// Lemma-3 closed forms require `α = 0`).
    UnsupportedModel(&'static str),
}

impl SdemError {
    /// Classifies this error in the workspace-wide [`ErrorKind`] taxonomy
    /// (the stable codes shared by the wire protocol, CLI exit codes and
    /// quarantine JSONL).
    pub const fn kind(&self) -> ErrorKind {
        match self {
            Self::InfeasibleTask(_) => ErrorKind::InfeasibleInput,
            Self::NotCommonRelease
            | Self::NotAgreeable
            | Self::TooLarge { .. }
            | Self::NoCores
            | Self::UnsupportedModel(_) => ErrorKind::SchemeError,
        }
    }
}

impl fmt::Display for SdemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotCommonRelease => {
                write!(f, "scheme requires all tasks to share one release time")
            }
            Self::NotAgreeable => write!(f, "scheme requires agreeable deadlines"),
            Self::InfeasibleTask(id) => write!(
                f,
                "task {id} misses its deadline even at maximum speed; no feasible schedule"
            ),
            Self::TooLarge { tasks, limit } => write!(
                f,
                "exact bounded-core solver handles at most {limit} tasks, got {tasks}"
            ),
            Self::NoCores => write!(f, "at least one core is required"),
            Self::UnsupportedModel(detail) => {
                write!(f, "unsupported system model: {detail}")
            }
        }
    }
}

impl std::error::Error for SdemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solution_accessors() {
        let s = Solution::new(Schedule::empty(), Joules::new(1.5), Time::from_millis(3.0));
        assert_eq!(s.predicted_energy(), Joules::new(1.5));
        assert!((s.memory_sleep().as_millis() - 3.0).abs() < 1e-12);
        assert!(s.schedule().placements().is_empty());
        let sched = s.into_schedule();
        assert!(sched.placements().is_empty());
    }

    #[test]
    fn error_messages() {
        assert!(SdemError::NotCommonRelease.to_string().contains("release"));
        assert!(SdemError::NotAgreeable.to_string().contains("agreeable"));
        assert!(SdemError::InfeasibleTask(TaskId(2))
            .to_string()
            .contains("T2"));
        assert!(SdemError::TooLarge {
            tasks: 20,
            limit: 12
        }
        .to_string()
        .contains("20"));
        assert!(SdemError::NoCores.to_string().contains("core"));
        assert!(SdemError::UnsupportedModel("needs α = 0")
            .to_string()
            .contains("α = 0"));
    }

    #[test]
    fn error_kinds_use_stable_taxonomy() {
        assert_eq!(SdemError::NotAgreeable.kind(), ErrorKind::SchemeError);
        assert_eq!(SdemError::NoCores.kind(), ErrorKind::SchemeError);
        assert_eq!(
            SdemError::InfeasibleTask(TaskId(0)).kind(),
            ErrorKind::InfeasibleInput
        );
        assert_eq!(SdemError::NotAgreeable.kind().code(), "scheme-error");
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<SdemError>();
    }
}
