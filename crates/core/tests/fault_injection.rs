//! Fault-injection double for the quarantined sweep path.
//!
//! [`FaultyScheduler`] wraps a real scheme behind the [`Scheduler`] trait
//! and, on seed-selected trials, panics mid-solve, returns a NaN
//! predicted energy, or reports the instance infeasible. Driving it
//! through `sdem-exec`'s quarantined sweep pins the robustness contract
//! end to end:
//!
//! * the sweep completes (exit-0 semantics) despite every injected fault,
//! * the quarantine matches the injected fault set **exactly** — same
//!   trials, same kinds, same seeds — and is identical at any thread
//!   count,
//! * surviving trials are bit-identical to a fault-free run, and
//! * the degraded-mode fallback chain converts scheme rejections into an
//!   explicit degraded-trial count instead of holes in the aggregate.

use sdem_core::{solve_or_fallback_with, Scheduler, Scheme, SdemError, Solution, TrialError};
use sdem_exec::{QuarantinedOutcome, SweepRunner, TrialCtx, TrialFailure};
use sdem_power::Platform;
use sdem_types::{Joules, TaskSet, Time, Workspace};
use sdem_workload::synthetic::{common_release, sporadic, SyntheticConfig};

/// Grid seed shared by the injected and clean sweeps. Chosen so the
/// seed-selection rule below draws at least one fault of every kind
/// (asserted, not assumed, in `quarantine_matches_injected_fault_set`).
const GRID_SEED: u64 = 0xFA_017;
const REPS: usize = 6;
/// Grid points: task count per synthetic instance.
const POINTS: [usize; 4] = [4, 6, 8, 10];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    Panic,
    NanEnergy,
    Infeasible,
}

impl Fault {
    /// The quarantine `kind` this fault must surface as.
    fn expected_kind(self) -> &'static str {
        match self {
            Self::Panic => "solver-panic",
            Self::NanEnergy => "non-finite-energy",
            Self::Infeasible => "scheme-error",
        }
    }
}

/// Seed-selected fault injection: pure in the trial seed, so the
/// selection is invariant under the worker-thread count and the
/// assertions can recompute the injected set independently.
fn fault_for(seed: u64) -> Option<Fault> {
    match seed % 7 {
        0 => Some(Fault::Panic),
        1 => Some(Fault::NanEnergy),
        2 => Some(Fault::Infeasible),
        _ => None,
    }
}

/// Every fault the grid draws, as `(trial_index, fault)` sorted by
/// trial index — the shape the quarantine list must match exactly.
fn injected_set() -> Vec<(usize, Fault)> {
    let mut faults = Vec::new();
    for point in 0..POINTS.len() {
        for replicate in 0..REPS {
            let ctx = TrialCtx::new(GRID_SEED, point, replicate, REPS);
            if let Some(fault) = fault_for(ctx.seed(0)) {
                faults.push((ctx.trial_index(), fault));
            }
        }
    }
    faults
}

/// Test double: a real scheme with one optional injected fault.
struct FaultyScheduler {
    inner: Scheme,
    fault: Option<Fault>,
}

impl Scheduler for FaultyScheduler {
    fn name(&self) -> &'static str {
        "faulty"
    }

    fn solve_into(
        &self,
        tasks: &TaskSet,
        platform: &Platform,
        ws: &mut Workspace,
    ) -> Result<Solution, SdemError> {
        match self.fault {
            Some(Fault::Panic) => panic!("injected fault: solver panic"),
            Some(Fault::Infeasible) => Err(SdemError::InfeasibleTask(tasks.tasks()[0].id())),
            Some(Fault::NanEnergy) => {
                let sound = self.inner.solve_into(tasks, platform, ws)?;
                let sleep = sound.memory_sleep();
                Ok(Solution::new(
                    sound.into_schedule(),
                    Joules::new(f64::NAN),
                    sleep,
                ))
            }
            None => self.inner.solve_into(tasks, platform, ws),
        }
    }
}

fn make_tasks(n: usize, seed: u64) -> TaskSet {
    common_release(&SyntheticConfig::paper(n, Time::from_millis(250.0)), seed)
}

/// One quarantined trial: solve, recycle the schedule, and insist the
/// predicted energy is finite (the NaN injection must not survive into
/// the aggregates).
fn run_one(
    scheduler: &FaultyScheduler,
    tasks: &TaskSet,
    platform: &Platform,
    ws: &mut Workspace,
) -> Result<u64, TrialError> {
    let solution = scheduler.solve_into(tasks, platform, ws)?;
    let energy = solution.predicted_energy();
    ws.recycle_schedule(solution.into_schedule());
    if !energy.value().is_finite() {
        return Err(TrialError::NonFiniteEnergy {
            context: "faulty-scheduler predicted energy",
            value: energy.value(),
        });
    }
    Ok(energy.value().to_bits())
}

/// Runs the grid with (`inject = true`) or without the fault double,
/// returning `(trial_index, energy_bits)` per surviving trial.
fn sweep(inject: bool, threads: usize) -> QuarantinedOutcome<(usize, u64)> {
    let platform = Platform::paper_defaults();
    SweepRunner::new()
        .with_threads(threads)
        .run_quarantined_with_state(&POINTS, REPS, GRID_SEED, Workspace::new, |&n, ctx, ws| {
            let seed = ctx.seed(0);
            let scheduler = FaultyScheduler {
                inner: Scheme::Auto,
                fault: inject.then(|| fault_for(seed)).flatten(),
            };
            let tasks = make_tasks(n, seed);
            run_one(&scheduler, &tasks, &platform, ws)
                .map(|bits| (ctx.trial_index(), bits))
                .map_err(|e| TrialFailure::new(e.kind(), e.to_string()).with_seed(seed))
        })
        .expect("quarantined sweep must complete despite injected faults")
}

#[test]
fn quarantine_matches_injected_fault_set() {
    let expected = injected_set();
    // The grid seed must actually draw every fault kind, or the test
    // proves less than it claims.
    for kind in [Fault::Panic, Fault::NanEnergy, Fault::Infeasible] {
        assert!(
            expected.iter().any(|&(_, f)| f == kind),
            "grid seed never draws {kind:?}; pick another GRID_SEED"
        );
    }

    let outcome = sweep(true, 2);
    assert_eq!(outcome.quarantine.len(), expected.len());
    assert_eq!(outcome.stats.quarantined, expected.len());
    assert!(!outcome.is_partial());

    for (record, &(trial_index, fault)) in outcome.quarantine.iter().zip(&expected) {
        assert_eq!(record.trial_index, trial_index);
        assert_eq!(record.kind, fault.expected_kind());
        // Every record carries the exact SplitMix64 seed of the trial,
        // ready for `sdem repro --seed`.
        let ctx = TrialCtx::new(GRID_SEED, record.point, record.replicate, REPS);
        assert_eq!(record.seed, ctx.seed(0));
        assert_eq!(record.grid_seed, GRID_SEED);
        match fault {
            Fault::Panic => assert!(
                record.detail.contains("injected fault"),
                "{}",
                record.detail
            ),
            Fault::NanEnergy => assert!(record.detail.contains("NaN"), "{}", record.detail),
            Fault::Infeasible => assert!(record.detail.contains("feasible"), "{}", record.detail),
        }
    }
}

#[test]
fn survivors_are_bit_identical_to_a_clean_run_at_any_thread_count() {
    let clean = sweep(false, 2);
    assert!(clean.quarantine.is_empty(), "clean run must not quarantine");

    let injected_1 = sweep(true, 1);
    let injected_4 = sweep(true, 4);

    // Thread invariance: identical survivors and byte-identical records.
    assert_eq!(injected_1.per_point, injected_4.per_point);
    let lines = |o: &QuarantinedOutcome<(usize, u64)>| {
        o.quarantine
            .iter()
            .map(|r| r.to_json_line())
            .collect::<Vec<_>>()
    };
    assert_eq!(lines(&injected_1), lines(&injected_4));

    // Every survivor reproduces the clean run's energy bit for bit.
    let reference: std::collections::BTreeMap<usize, u64> =
        clean.per_point.iter().flatten().copied().collect();
    assert_eq!(reference.len(), POINTS.len() * REPS);
    let mut survivors = 0;
    for &(trial_index, bits) in injected_1.per_point.iter().flatten() {
        assert_eq!(
            Some(&bits),
            reference.get(&trial_index),
            "trial {trial_index} diverged from the clean run"
        );
        survivors += 1;
    }
    // Nothing is lost: survivors + quarantined cover the whole grid.
    assert_eq!(survivors + injected_1.quarantine.len(), POINTS.len() * REPS);
}

#[test]
fn fallback_chain_reports_an_explicit_degraded_count() {
    // Odd trials draw staggered-release (sporadic) sets the strict
    // common-release scheme rejects; the fallback chain must absorb the
    // rejection as a flagged race-to-idle solution, so the aggregate
    // completes over the full grid with a degraded count — not holes.
    let platform = Platform::paper_defaults();
    let outcome = SweepRunner::new()
        .with_threads(2)
        .run_quarantined_with_state(&POINTS, REPS, GRID_SEED, Workspace::new, |&n, ctx, ws| {
            let seed = ctx.seed(0);
            let config = SyntheticConfig::paper(n, Time::from_millis(250.0));
            let tasks = if ctx.trial_index() % 2 == 0 {
                common_release(&config, seed)
            } else {
                sporadic(&config, seed)
            };
            let solution =
                solve_or_fallback_with(&Scheme::CommonReleaseAlphaNonzero, &tasks, &platform, ws)
                    .map_err(|e| {
                    TrialFailure::new(TrialError::from(e.clone()).kind(), e.to_string())
                        .with_seed(seed)
                })?;
            let energy = solution.predicted_energy().value();
            let degraded = solution.is_degraded();
            ws.recycle_schedule(solution.into_schedule());
            if !energy.is_finite() {
                return Err(TrialFailure::new("non-finite-energy", "NaN energy").with_seed(seed));
            }
            Ok((ctx.trial_index(), degraded))
        })
        .expect("fallback sweep must complete");

    // The aggregate is whole: every trial produced a finite solution.
    assert!(outcome.quarantine.is_empty());
    let trials: Vec<(usize, bool)> = outcome.per_point.iter().flatten().copied().collect();
    assert_eq!(trials.len(), POINTS.len() * REPS);

    // The degraded count is explicit and exactly the injected half.
    let degraded: Vec<usize> = trials
        .iter()
        .filter(|&&(_, d)| d)
        .map(|&(i, _)| i)
        .collect();
    let expected: Vec<usize> = (0..POINTS.len() * REPS).filter(|i| i % 2 == 1).collect();
    assert_eq!(degraded, expected);
}

#[test]
fn faulty_scheduler_panic_is_absorbed_by_the_fallback_chain() {
    // `solve_or_fallback_with` contains even a panicking scheduler: the
    // workspace is rebuilt and the race-to-idle baseline answers,
    // flagged degraded.
    let platform = Platform::paper_defaults();
    let tasks = make_tasks(6, 42);
    let mut ws = Workspace::new();
    let panicky = FaultyScheduler {
        inner: Scheme::Auto,
        fault: Some(Fault::Panic),
    };
    let solution = solve_or_fallback_with(&panicky, &tasks, &platform, &mut ws)
        .expect("fallback must absorb the panic");
    assert!(solution.is_degraded());
    assert!(solution.predicted_energy().value().is_finite());

    // A NaN-energy scheduler is likewise replaced by the baseline.
    let nan = FaultyScheduler {
        inner: Scheme::Auto,
        fault: Some(Fault::NanEnergy),
    };
    let solution = solve_or_fallback_with(&nan, &tasks, &platform, &mut ws)
        .expect("fallback must absorb the NaN energy");
    assert!(solution.is_degraded());
    assert!(solution.predicted_energy().value().is_finite());
}
