//! Differential and metamorphic properties of the federated DAG pipeline.
//!
//! Instead of pinning outputs, each family pins a *relation* the
//! construction guarantees, over hundreds of seeded instances:
//!
//! 1. a single-node DAG degenerates to the paper's single-task solver —
//!    same schedule, bit-identical repriced energy;
//! 2. a chain DAG on one core is exactly the serialized-window task set
//!    the chopper derives — the test rebuilds those windows from the
//!    published chop arithmetic and demands bitwise agreement;
//! 3. scaling every WCET and the window by the same factor `k` preserves
//!    the optimal speed profile (speeds depend only on work/time ratios);
//! 4. the per-core reports embedded in a [`DagReport`] are re-derivable
//!    from the merged schedule, and the merged solution must survive the
//!    sim-oracle meter — divergence is a hard failure, not a warning.

use sdem_core::dag::{solve_dags, DagReport};
use sdem_core::{solve, OracleOptions, Scheme, Solution};
use sdem_power::Platform;
use sdem_prng::SplitMix64;
use sdem_types::{CoreId, Cycles, Placement, Schedule, Task, TaskSet, Time};
use sdem_workload::dag::{self, Dag, DagConfig, DagNode};

/// Seeded instances per property.
const CASES_PER_PROPERTY: u64 = 100;

fn platform() -> Platform {
    Platform::paper_defaults()
}

/// Deterministic f64 in `[lo, hi)` from a seed stream.
fn draw(rng: &mut SplitMix64, lo: f64, hi: f64) -> f64 {
    let u = (rng.next_value() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    lo + u * (hi - lo)
}

/// Remaps every placement of `solution` onto `core`, reprices the result
/// with the same interval pricing the DAG pipeline uses, and returns it.
fn on_core(solution: Solution, core: usize, platform: &Platform) -> Solution {
    let placements = solution
        .into_schedule()
        .into_placements()
        .into_iter()
        .map(|p| {
            let task = p.task();
            Placement::new(task, CoreId(core), p.into_segments())
        })
        .collect();
    Solution::from_schedule(Schedule::new(placements), platform)
}

#[test]
fn single_node_dag_degenerates_to_the_single_task_solver() {
    let platform = platform();
    for seed in 0..2 * CASES_PER_PROPERTY {
        let mut rng = SplitMix64::new(SplitMix64::mix(&[0xD1FF, seed]));
        let work = draw(&mut rng, 2.0e6, 5.0e7);
        let deadline = Time::from_millis(draw(&mut rng, 50.0, 150.0));
        let dag = Dag::new(
            format!("single-{seed}"),
            Time::ZERO,
            deadline,
            None,
            vec![DagNode::new(0, Cycles::new(work))],
            vec![],
        )
        .unwrap();
        let report = solve_dags(std::slice::from_ref(&dag), &platform, 1)
            .unwrap_or_else(|e| panic!("seed {seed}: federated solve failed: {e}"));

        let tasks =
            TaskSet::new(vec![Task::new(0, Time::ZERO, deadline, Cycles::new(work))]).unwrap();
        let auto = solve(&tasks, &platform, Scheme::Auto)
            .unwrap_or_else(|e| panic!("seed {seed}: task solve failed: {e}"));
        let expected = on_core(auto, 0, &platform);

        assert_eq!(
            report.solution.predicted_energy().value().to_bits(),
            expected.predicted_energy().value().to_bits(),
            "seed {seed}: single-node DAG energy diverged from the task solver"
        );
        assert_eq!(
            report.solution.schedule(),
            expected.schedule(),
            "seed {seed}: schedules diverged"
        );
        assert_eq!(
            report.clusters, 0,
            "seed {seed}: a light DAG needs no cluster"
        );
        assert_eq!(report.cores_used, 1, "seed {seed}");
    }
}

#[test]
fn chain_dag_on_one_core_is_the_serialized_window_set() {
    let platform = platform();
    for seed in 0..CASES_PER_PROPERTY {
        let mut rng = SplitMix64::new(SplitMix64::mix(&[0xC4A1, seed]));
        let n = 2 + (seed % 6) as usize;
        let works: Vec<f64> = (0..n).map(|_| draw(&mut rng, 2.0e6, 5.0e6)).collect();
        let deadline = Time::from_millis(120.0);
        let dag = Dag::new(
            format!("chain-{seed}"),
            Time::ZERO,
            deadline,
            None,
            works
                .iter()
                .enumerate()
                .map(|(i, &w)| DagNode::new(i, Cycles::new(w)))
                .collect(),
            (0..n - 1).map(|i| (i, i + 1)).collect(),
        )
        .unwrap();
        let report = solve_dags(std::slice::from_ref(&dag), &platform, 1)
            .unwrap_or_else(|e| panic!("seed {seed}: federated solve failed: {e}"));

        // Rebuild the serialized windows with the pipeline's published
        // chop arithmetic: boundaries at `r0 + span·(cumᵢ/total)`, the
        // last snapped to the deadline exactly.
        let span = deadline - Time::ZERO;
        let total: f64 = works.iter().sum();
        let mut cum = 0.0;
        let mut window_start = Time::ZERO;
        let mut serialized = Vec::new();
        for (i, &w) in works.iter().enumerate() {
            cum += w;
            let window_end = if cum >= total {
                deadline
            } else {
                Time::ZERO + span * (cum / total)
            };
            serialized.push(Task::new(i, window_start, window_end, Cycles::new(w)));
            window_start = window_end;
        }
        let serialized = TaskSet::new(serialized).unwrap();
        let auto = solve(&serialized, &platform, Scheme::Auto)
            .unwrap_or_else(|e| panic!("seed {seed}: serialized solve failed: {e}"));
        let expected = on_core(auto, 0, &platform);

        assert_eq!(
            report.solution.predicted_energy().value().to_bits(),
            expected.predicted_energy().value().to_bits(),
            "seed {seed}: chain energy diverged from the serialized windows"
        );
        assert_eq!(
            report.solution.schedule(),
            expected.schedule(),
            "seed {seed}: schedules diverged"
        );
    }
}

/// Rebuilds `dag` with works, offsets and the window scaled by `k`.
fn scaled(dag: &Dag, k: f64) -> Dag {
    Dag::new(
        dag.name(),
        Time::from_secs(dag.release().as_secs() * k),
        Time::from_secs(dag.deadline().as_secs() * k),
        dag.period().map(|p| Time::from_secs(p.as_secs() * k)),
        (0..dag.node_count())
            .map(|v| {
                DagNode::with_offset(
                    v,
                    dag.work_of(v) * k,
                    Time::from_secs(dag.offset_of(v).as_secs() * k),
                )
            })
            .collect(),
        dag.edges().to_vec(),
    )
    .expect("scaling a valid DAG by a positive factor keeps it valid")
}

/// Per-placement segment speeds, in schedule order.
fn speed_profile(solution: &Solution) -> Vec<Vec<f64>> {
    solution
        .schedule()
        .placements()
        .iter()
        .map(|p| p.segments().iter().map(|s| s.speed().as_hz()).collect())
        .collect()
}

#[test]
fn scaling_work_and_window_preserves_the_speed_profile() {
    // Scale invariance holds for the pure-DVS objective: speeds depend
    // only on work/time ratios. Transition break-evens are *absolute*
    // thresholds (a 40 ms sleep does not scale with the instance), so the
    // property is stated on a zero-overhead platform, where Auto routes
    // to the §4/§5 schemes the paper proves it for.
    let platform = Platform::new(
        sdem_power::CorePower::cortex_a57().with_break_even(Time::ZERO),
        sdem_power::MemoryPower::new(sdem_types::Watts::new(4.0)).with_break_even(Time::ZERO),
    );
    for seed in 0..CASES_PER_PROPERTY {
        let config = DagConfig::paper(6 + (seed % 5) as usize, Time::from_millis(120.0));
        let base = dag::random(&config, SplitMix64::mix(&[0x5CA1E, seed]));
        let k = [0.5, 2.0, 8.0][(seed % 3) as usize];
        let grown = scaled(&base, k);

        let a = solve_dags(std::slice::from_ref(&base), &platform, 4)
            .unwrap_or_else(|e| panic!("seed {seed}: base solve failed: {e}"));
        let b = solve_dags(std::slice::from_ref(&grown), &platform, 4)
            .unwrap_or_else(|e| panic!("seed {seed}: scaled solve failed: {e}"));
        let (sa, sb) = (speed_profile(&a.solution), speed_profile(&b.solution));
        assert_eq!(sa.len(), sb.len(), "seed {seed}: placement counts diverged");
        for (pa, pb) in sa.iter().zip(&sb) {
            assert_eq!(pa.len(), pb.len(), "seed {seed}: segment counts diverged");
            for (&va, &vb) in pa.iter().zip(pb) {
                assert!(
                    (va - vb).abs() <= 1e-9 * va.abs().max(1.0),
                    "seed {seed}, k {k}: speed {va} Hz became {vb} Hz"
                );
            }
        }
        assert_eq!(
            a.assignments, b.assignments,
            "seed {seed}: allocation moved"
        );
    }
}

/// Reprices core `c`'s slice of the merged schedule independently.
fn repriced_core(report: &DagReport, core: usize, platform: &Platform) -> Solution {
    let placements: Vec<Placement> = report
        .solution
        .schedule()
        .placements()
        .iter()
        .filter(|p| p.core() == CoreId(core))
        .map(|p| Placement::new(p.task(), p.core(), p.segments().to_vec()))
        .collect();
    Solution::from_schedule(Schedule::new(placements), platform)
}

#[test]
fn per_core_reports_rederive_from_the_merged_schedule_and_pass_the_oracle() {
    let platform = platform();
    for seed in 0..CASES_PER_PROPERTY {
        let config = DagConfig::paper(9, Time::from_millis(120.0));
        let dags = dag::suite(
            &config,
            2 + (seed % 3) as usize,
            SplitMix64::mix(&[0x0AC1E, seed]),
        );
        let cores = 4 + (seed % 5) as usize;
        let report = solve_dags(&dags, &platform, cores)
            .unwrap_or_else(|e| panic!("seed {seed}: federated solve failed: {e}"));

        // The merged schedule must survive the independent interval
        // meter; divergence is a bug in the pipeline, not noise.
        let metered = report
            .verify_against_meter(&platform, OracleOptions::default())
            .unwrap_or_else(|e| panic!("seed {seed}: oracle divergence: {e}"));
        let predicted = report.solution.predicted_energy().value();
        assert!(
            (metered.value() - predicted).abs() <= 1e-6 * predicted.max(1.0),
            "seed {seed}: meter {} J vs repriced {predicted} J",
            metered.value()
        );

        // Each embedded per-core report is exactly the independent
        // repricing of that core's slice of the merged schedule.
        let mut per_core_sum = 0.0;
        for c in &report.per_core {
            let independent = repriced_core(&report, c.core.0, &platform);
            assert_eq!(
                c.energy.value().to_bits(),
                independent.predicted_energy().value().to_bits(),
                "seed {seed}: core {} energy is not re-derivable",
                c.core.0
            );
            assert_eq!(
                c.memory_sleep.value().to_bits(),
                independent.memory_sleep().value().to_bits(),
                "seed {seed}: core {} sleep is not re-derivable",
                c.core.0
            );
            per_core_sum += c.energy.value();
        }
        // Per-core pricing bills the memory once per core, the aggregate
        // bills the busy-union once — so the sum is an upper bound.
        assert!(
            report.solution.predicted_energy().value() <= per_core_sum + 1e-9,
            "seed {seed}: aggregate exceeds the per-core sum"
        );
        assert_eq!(
            report.per_core.len(),
            report.cores_used,
            "seed {seed}: one report per busy core"
        );
    }
}
