//! Property suite for the bounded-core solver tiers (paper §3).
//!
//! Seeded SplitMix64 instance pools (220 task sets across the suite) pin
//! the contracts between the tiers:
//!
//! * the branch-and-bound is **bit-identical** to the exact enumerator on
//!   every instance both accept — same energy bits, same schedule;
//! * when the exact tier proves infeasibility, every tier agrees;
//! * on large instances the refined tier lands between the convexity
//!   lower bound and its own LPT starting point;
//! * LPT is a deterministic function of the (work, index) pairs even when
//!   works collide — the unstable sort's index tiebreak makes it equal to
//!   a stable sort by work alone.

use sdem_core::bounded::{
    lower_bound, solve_bnb_in, solve_exact_in, solve_lpt_in, solve_refined_in, EXACT_LIMIT,
};
use sdem_core::SdemError;
use sdem_power::{CorePower, MemoryPower, Platform};
use sdem_prng::{Rng, SeedableRng, SplitMix64};
use sdem_types::{Cycles, Task, TaskSet, Time, Watts, Workspace};

fn platform(alpha_m: f64) -> Platform {
    Platform::new(
        CorePower::simple(0.0, 1.0, 3.0),
        MemoryPower::new(Watts::new(alpha_m)),
    )
}

/// Like [`platform`] but with a hard speed cap, so dense instances can
/// actually be infeasible (uncapped cores always catch up by sprinting).
fn capped_platform(alpha_m: f64, s_up: f64) -> Platform {
    Platform::new(
        CorePower::simple(0.0, 1.0, 3.0).with_max_speed(sdem_types::Speed::from_hz(s_up)),
        MemoryPower::new(Watts::new(alpha_m)),
    )
}

fn tset(works: &[f64], deadline: f64) -> TaskSet {
    TaskSet::new(
        works
            .iter()
            .enumerate()
            .map(|(i, &w)| Task::new(i, Time::ZERO, Time::from_secs(deadline), Cycles::new(w)))
            .collect(),
    )
    .expect("non-empty seeded set")
}

/// Seeded works with deliberate duplicates: halves in 0.5..8.0, so equal
/// works across different indices are common and the tie-break paths run.
fn seeded_works(n: usize, rng: &mut SplitMix64) -> Vec<f64> {
    (0..n)
        .map(|_| (rng.gen_range(1.0..16.0) as u64) as f64 * 0.5)
        .map(|w| w.max(0.5))
        .collect()
}

#[test]
fn bnb_is_bitwise_identical_to_exact_on_seeded_sets() {
    let mut rng = SplitMix64::seed_from_u64(0xB0B);
    let mut ws = Workspace::new();
    let mut feasible = 0usize;
    let mut infeasible = 0usize;
    for i in 0..100usize {
        let n = 2 + (rng.next_u64() % 8) as usize; // 2..=9 ≤ EXACT_LIMIT
        let works = seeded_works(n, &mut rng);
        // A mix of generous and tight windows: tight ones clamp Eq. 2 at
        // the deadline (exercising the clamped bound branch) and some are
        // outright infeasible.
        let deadline = rng.gen_range(2.0..50.0);
        let tasks = tset(&works, deadline);
        let p = capped_platform(if i % 5 == 0 { 0.0 } else { 4.0 }, 1.5);
        let cores = 1 + i % 3;
        let a = solve_exact_in(&tasks, &p, cores, &mut ws);
        let b = solve_bnb_in(&tasks, &p, cores, &mut ws);
        match (a, b) {
            (Ok(a), Ok(b)) => {
                feasible += 1;
                assert_eq!(
                    a.predicted_energy().value().to_bits(),
                    b.predicted_energy().value().to_bits(),
                    "energy bits diverge: set {i}, works {works:?}, cores {cores}"
                );
                assert_eq!(
                    a.schedule(),
                    b.schedule(),
                    "schedules diverge: set {i}, works {works:?}, cores {cores}"
                );
            }
            (Err(ea), Err(eb)) => {
                infeasible += 1;
                assert_eq!(
                    ea, eb,
                    "error disagreement: set {i}, works {works:?}, cores {cores}"
                );
            }
            (a, b) => panic!(
                "feasibility disagreement: set {i}, works {works:?}, cores {cores}: \
                 exact {a:?} vs bnb {b:?}"
            ),
        }
    }
    // The pool must actually exercise both outcomes.
    assert!(feasible >= 30, "only {feasible} feasible sets drawn");
    assert!(infeasible >= 5, "only {infeasible} infeasible sets drawn");
}

#[test]
fn refined_brackets_between_lower_bound_and_lpt_on_large_sets() {
    let mut rng = SplitMix64::seed_from_u64(0x1A26E);
    let mut ws = Workspace::new();
    for i in 0..60usize {
        let n = 100 + (rng.next_u64() % 700) as usize;
        let works = seeded_works(n, &mut rng);
        let tasks = tset(&works, 1.0e4);
        let p = platform(4.0);
        let cores = if i % 2 == 0 { 8 } else { 16 };
        let lpt = solve_lpt_in(&tasks, &p, cores, &mut ws)
            .expect("generous window is feasible")
            .predicted_energy()
            .value();
        let refined = solve_refined_in(&tasks, &p, cores, &mut ws)
            .expect("generous window is feasible")
            .predicted_energy()
            .value();
        let lb = lower_bound(&tasks, &p, cores).value();
        assert!(
            refined >= lb * (1.0 - 1e-9),
            "set {i}: refined {refined} below the lower bound {lb}"
        );
        assert!(
            refined <= lpt * (1.0 + 1e-9),
            "set {i}: refined {refined} worse than its LPT start {lpt}"
        );
    }
}

#[test]
fn infeasibility_agreement_on_dense_sets() {
    // Dense instances around the capacity edge: whenever the enumerator
    // proves there is no feasible assignment, every other tier must fail
    // too (the heuristics may additionally fail on feasible instances,
    // but never the other way around for the exact pair).
    let mut rng = SplitMix64::seed_from_u64(0xDE5E);
    let mut ws = Workspace::new();
    let mut proved_infeasible = 0usize;
    for i in 0..40usize {
        let n = 3 + (rng.next_u64() % 6) as usize;
        let works = seeded_works(n, &mut rng);
        let total: f64 = works.iter().sum();
        let cores = 2;
        // Deadline near total/(cores·s_up): half the draws land under the
        // feasibility threshold even for a perfect split.
        let deadline = rng.gen_range(0.8..1.2) * total / (cores as f64 * 3.0);
        let tasks = tset(&works, deadline);
        let p = capped_platform(4.0, 3.0);
        if let Err(e) = solve_exact_in(&tasks, &p, cores, &mut ws) {
            assert!(matches!(e, SdemError::InfeasibleTask(_)), "set {i}: {e:?}");
            proved_infeasible += 1;
            for (tier, result) in [
                ("bnb", solve_bnb_in(&tasks, &p, cores, &mut ws)),
                ("lpt", solve_lpt_in(&tasks, &p, cores, &mut ws)),
                ("refined", solve_refined_in(&tasks, &p, cores, &mut ws)),
            ] {
                assert!(
                    matches!(result, Err(SdemError::InfeasibleTask(_))),
                    "set {i}: exact proved infeasibility but {tier} returned {result:?}"
                );
            }
        }
    }
    assert!(
        proved_infeasible >= 10,
        "only {proved_infeasible} infeasible sets drawn"
    );
}

#[test]
fn lpt_is_deterministic_under_duplicate_works() {
    // Satellite: LPT's sort is unstable, so without the index tiebreak
    // equal works could land in platform-dependent order. Pin the fixed
    // semantics: LPT equals the greedy driven by a *stable* sort on work
    // alone (stability supplies the same index-ascending tie order).
    let mut rng = SplitMix64::seed_from_u64(0xD0D5);
    let mut ws = Workspace::new();
    for i in 0..20usize {
        let n = 6 + (rng.next_u64() % 40) as usize;
        // Works drawn from three values only: ties everywhere.
        let works: Vec<f64> = (0..n)
            .map(|_| [1.0, 2.0, 4.0][(rng.next_u64() % 3) as usize])
            .collect();
        let tasks = tset(&works, 1.0e3);
        let p = platform(4.0);
        let cores = 2 + i % 3;
        let sol = solve_lpt_in(&tasks, &p, cores, &mut ws).expect("feasible");
        let again = solve_lpt_in(&tasks, &p, cores, &mut ws).expect("feasible");
        assert_eq!(sol.schedule(), again.schedule(), "set {i}: LPT not stable");
        assert_eq!(
            sol.predicted_energy().value().to_bits(),
            again.predicted_energy().value().to_bits()
        );

        // Reference greedy from a stable sort by descending work.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| works[b].total_cmp(&works[a]));
        let mut loads = vec![0.0f64; cores];
        let mut assignment = vec![0usize; n];
        for &k in &order {
            let c = (0..cores)
                .min_by(|&x, &y| loads[x].total_cmp(&loads[y]))
                .expect("cores > 0");
            assignment[k] = c;
            loads[c] += works[k];
        }
        // Same placement core per task id as the solver's schedule.
        for pl in sol.schedule().placements() {
            assert_eq!(
                pl.core().0,
                assignment[pl.task().0],
                "set {i}: task {} diverges from the stable-sort reference",
                pl.task().0
            );
        }
    }
}

#[test]
fn bnb_energy_extends_monotonically_past_the_exact_ceiling() {
    // Between EXACT_LIMIT and BNB_LIMIT the B&B is the only exact tier;
    // sanity-pin it against the bracket [lower_bound, LPT] there.
    let mut rng = SplitMix64::seed_from_u64(0xCE11);
    let mut ws = Workspace::new();
    for i in 0..8usize {
        let n = EXACT_LIMIT + 1 + (rng.next_u64() % 6) as usize;
        let works = seeded_works(n, &mut rng);
        let tasks = tset(&works, 200.0);
        let p = platform(4.0);
        let cores = 2 + i % 2;
        let bnb = solve_bnb_in(&tasks, &p, cores, &mut ws)
            .expect("generous window is feasible")
            .predicted_energy()
            .value();
        let lpt = solve_lpt_in(&tasks, &p, cores, &mut ws)
            .expect("generous window is feasible")
            .predicted_energy()
            .value();
        let lb = lower_bound(&tasks, &p, cores).value();
        assert!(bnb >= lb * (1.0 - 1e-9), "set {i}: bnb {bnb} below lb {lb}");
        assert!(
            bnb <= lpt * (1.0 + 1e-12),
            "set {i}: bnb {bnb} worse than LPT {lpt}"
        );
    }
}
