//! Metamorphic properties of the optimal solvers.
//!
//! Instead of pinning outputs, these tests pin *relations between runs*
//! that the paper's analysis guarantees:
//!
//! 1. scaling every `w_i` and the common deadline by the same factor `k`
//!    preserves the optimal speed assignment (speeds depend only on the
//!    power model and the `W_i / D` ratios, both invariant under `k`);
//! 2. the common-release solvers are symmetric in task order — permuting
//!    the input leaves the reported energy bit-identical;
//! 3. raising the memory's static power `α_m` can never *decrease* the
//!    optimal energy (the memory draws `α_m` whenever awake, and awake
//!    time is bounded below by the busy time).
//!
//! Each property is checked over hundreds of seeded synthetic task sets
//! so a regression in any solver branch (α = 0, α ≠ 0, overheads) shows
//! up as a named seed, reproducible verbatim.

use sdem_core::{solve, Scheme};
use sdem_power::{CorePower, MemoryPower, Platform};
use sdem_prng::SplitMix64;
use sdem_types::{Task, TaskSet, Time, Watts};
use sdem_workload::synthetic::{self, SyntheticConfig};

/// Seeded task sets per property (the suite's sampling budget).
const SETS_PER_PROPERTY: u64 = 200;

/// The paper's platform with an overridable memory static power.
fn platform(alpha_m: f64) -> Platform {
    Platform::new(
        CorePower::cortex_a57(),
        MemoryPower::new(Watts::new(alpha_m)).with_break_even(Time::from_millis(40.0)),
    )
}

fn generate(seed: u64) -> TaskSet {
    let config = SyntheticConfig::paper(8, Time::from_millis(300.0));
    synthetic::common_release(&config, seed)
}

/// Rebuilds a task set with releases, deadlines and work scaled by `k`,
/// keeping ids so placements stay comparable across the two solves.
fn scaled(tasks: &TaskSet, k: f64) -> TaskSet {
    TaskSet::new(
        tasks
            .tasks()
            .iter()
            .map(|t| {
                Task::new(
                    t.id().0,
                    Time::from_secs(t.release().as_secs() * k),
                    Time::from_secs(t.deadline().as_secs() * k),
                    t.work() * k,
                )
            })
            .collect(),
    )
    .expect("scaling a valid set by a positive factor keeps it valid")
}

/// The schedule's speed profile: per-placement segment speeds, in order.
fn speed_profile(solution: &sdem_core::Solution) -> Vec<Vec<f64>> {
    solution
        .schedule()
        .placements()
        .iter()
        .map(|p| p.segments().iter().map(|s| s.speed().as_hz()).collect())
        .collect()
}

#[test]
fn scaling_work_and_deadline_preserves_speeds() {
    let platform = platform(4.0);
    for seed in 0..SETS_PER_PROPERTY {
        let base = generate(seed);
        // Cycle through the factors so every scale sees many seeds and
        // every seed still costs just two solves.
        let k = [0.5, 2.0, 8.0][(seed % 3) as usize];
        let shrunk = scaled(&base, k);
        for scheme in [
            Scheme::CommonReleaseAlphaZero,
            Scheme::CommonReleaseAlphaNonzero,
        ] {
            let a = solve(&base, &platform, scheme)
                .unwrap_or_else(|e| panic!("seed {seed}: base solve failed: {e}"));
            let b = solve(&shrunk, &platform, scheme)
                .unwrap_or_else(|e| panic!("seed {seed}: scaled solve failed: {e}"));
            let (sa, sb) = (speed_profile(&a), speed_profile(&b));
            assert_eq!(
                sa.len(),
                sb.len(),
                "seed {seed}, k {k}, {scheme:?}: placement counts diverged"
            );
            for (pa, pb) in sa.iter().zip(&sb) {
                assert_eq!(
                    pa.len(),
                    pb.len(),
                    "seed {seed}, k {k}, {scheme:?}: segment counts diverged"
                );
                for (&va, &vb) in pa.iter().zip(pb) {
                    assert!(
                        (va - vb).abs() <= 1e-9 * va.abs().max(1.0),
                        "seed {seed}, k {k}, {scheme:?}: speed {va} Hz became {vb} Hz"
                    );
                }
            }
        }
    }
}

#[test]
fn permuting_common_release_tasks_keeps_energy_bit_identical() {
    let platform = platform(4.0);
    for seed in 0..SETS_PER_PROPERTY {
        let base = generate(seed);
        // Fisher–Yates with the trial seed, so failures name their shuffle.
        let mut order: Vec<Task> = base.tasks().to_vec();
        let mut rng = SplitMix64::new(seed ^ 0x5bd1_e995);
        for i in (1..order.len()).rev() {
            let j = (rng.next_value() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let shuffled = TaskSet::new(order).expect("permutation keeps the set valid");
        for scheme in [
            Scheme::CommonReleaseAlphaZero,
            Scheme::CommonReleaseAlphaNonzero,
            Scheme::CommonReleaseOverhead,
        ] {
            let a = solve(&base, &platform, scheme)
                .unwrap_or_else(|e| panic!("seed {seed}: base solve failed: {e}"));
            let b = solve(&shuffled, &platform, scheme)
                .unwrap_or_else(|e| panic!("seed {seed}: shuffled solve failed: {e}"));
            assert_eq!(
                a.predicted_energy().value().to_bits(),
                b.predicted_energy().value().to_bits(),
                "seed {seed}, {scheme:?}: {} J became {} J under permutation",
                a.predicted_energy().value(),
                b.predicted_energy().value()
            );
        }
    }
}

#[test]
fn raising_memory_power_never_decreases_energy() {
    // Strictly increasing α_m ladder, spanning the paper's Fig. 7a range.
    const ALPHAS: [f64; 4] = [1.0, 2.0, 4.0, 8.0];
    for seed in 0..SETS_PER_PROPERTY {
        let tasks = generate(seed);
        let mut previous: Option<f64> = None;
        for alpha in ALPHAS {
            let energy = solve(&tasks, &platform(alpha), Scheme::Auto)
                .unwrap_or_else(|e| panic!("seed {seed}, α_m {alpha}: solve failed: {e}"))
                .predicted_energy()
                .value();
            assert!(
                energy.is_finite(),
                "seed {seed}, α_m {alpha}: non-finite energy"
            );
            if let Some(lower) = previous {
                assert!(
                    energy >= lower,
                    "seed {seed}: energy fell from {lower} J to {energy} J \
                     when α_m rose to {alpha} W"
                );
            }
            previous = Some(energy);
        }
    }
}
