//! Parity of the allocating entry points with their `_in` (workspace)
//! twins on the discrete and bounded solvers' edge cases.
//!
//! The `_in` variants are the single implementation (the allocating
//! wrappers delegate to them with a fresh [`Workspace`]), so parity is by
//! construction — these tests pin the contract anyway, exercising the
//! shapes most likely to break buffer reuse: single tasks, tasks pinned
//! to `s_max`, zero break-even platforms, and a workspace reused (warm)
//! across several differently-shaped solves.

// This suite's whole point is comparing the deprecated allocating
// wrappers against their replacements, so it keeps calling them.
#![allow(deprecated)]

use sdem_core::bounded::{solve_exact, solve_exact_in, solve_lpt, solve_lpt_in};
use sdem_core::discrete::{quantize_schedule, quantize_schedule_in, SpeedLevels};
use sdem_core::{solve, solve_in, Scheme, SdemError, Solution};
use sdem_power::{CorePower, MemoryPower, Platform};
use sdem_types::{Cycles, Speed, Task, TaskSet, Time, Watts, Workspace};

/// Absolute energy-parity budget between the allocating and in-place
/// entry points (they share one implementation, so this is headroom).
const TOL_J: f64 = 1e-12;

fn common_release(works: &[f64], deadline_s: f64) -> TaskSet {
    TaskSet::new(
        works
            .iter()
            .enumerate()
            .map(|(i, &w)| Task::new(i, Time::ZERO, Time::from_secs(deadline_s), Cycles::new(w)))
            .collect(),
    )
    .expect("non-empty, well-formed set")
}

/// A `ξ = ξ_m = 0` platform with a bounded speed range `[0, s_up]`.
fn zero_break_even_platform(s_up: f64) -> Platform {
    Platform::new(
        CorePower::simple(1.0, 1.0, 3.0).with_max_speed(Speed::from_hz(s_up)),
        MemoryPower::new(Watts::new(2.0)),
    )
}

fn assert_energy_parity(a: &Solution, b: &Solution) {
    assert!(
        (a.predicted_energy().value() - b.predicted_energy().value()).abs() <= TOL_J,
        "allocating {} J vs in-place {} J",
        a.predicted_energy().value(),
        b.predicted_energy().value()
    );
    assert_eq!(
        a.schedule().placements().len(),
        b.schedule().placements().len()
    );
}

#[test]
fn empty_task_set_is_unrepresentable() {
    // The solvers never see an empty instance: `TaskSet::new` rejects it
    // at construction, which is the edge the `_in` paths rely on (e.g.
    // `solve_lpt_in` indexes `tasks()[0]`).
    assert!(TaskSet::new(vec![]).is_err());
}

#[test]
fn single_task_lpt_and_exact_parity() {
    let platform = zero_break_even_platform(4.0);
    let tasks = common_release(&[3.0], 2.0);
    let mut ws = Workspace::new();
    for cores in [1, 3] {
        let a = solve_lpt(&tasks, &platform, cores).unwrap();
        let b = solve_lpt_in(&tasks, &platform, cores, &mut ws).unwrap();
        assert_energy_parity(&a, &b);
        ws.recycle_schedule(b.into_schedule());

        let a = solve_exact(&tasks, &platform, cores).unwrap();
        let b = solve_exact_in(&tasks, &platform, cores, &mut ws).unwrap();
        assert_energy_parity(&a, &b);
        ws.recycle_schedule(b.into_schedule());
    }
}

#[test]
fn all_tasks_at_s_max_parity_and_infeasibility_edge() {
    // Four tasks on four cores, each sized to exactly `s_up · D`: every
    // core must run flat out at `s_max` for the whole window.
    let s_up = 2.0;
    let deadline = 1.5;
    let platform = zero_break_even_platform(s_up);
    let tasks = common_release(&[3.0, 3.0, 3.0, 3.0], deadline);
    let mut ws = Workspace::new();

    let a = solve_lpt(&tasks, &platform, 4).unwrap();
    let b = solve_lpt_in(&tasks, &platform, 4, &mut ws).unwrap();
    assert_energy_parity(&a, &b);
    for p in b.schedule().placements() {
        for s in p.segments() {
            assert!((s.speed().as_hz() - s_up).abs() < 1e-9, "must run at s_max");
        }
    }
    ws.recycle_schedule(b.into_schedule());

    // One more cycle of work than `s_max` can deliver: both entry points
    // must agree the instance is infeasible.
    let over = common_release(&[3.0 + 1e-3, 3.0, 3.0, 3.0], deadline);
    assert!(matches!(
        solve_lpt(&over, &platform, 4),
        Err(SdemError::InfeasibleTask(_))
    ));
    assert!(matches!(
        solve_lpt_in(&over, &platform, 4, &mut ws),
        Err(SdemError::InfeasibleTask(_))
    ));
}

#[test]
fn zero_break_even_scheme_parity() {
    // ξ = ξ_m = 0: the §7 overhead machinery degenerates to the plain §4
    // pricing; both routes must agree between entry points.
    let platform = zero_break_even_platform(8.0);
    let tasks = common_release(&[1.0, 2.0, 4.0], 3.0);
    let mut ws = Workspace::new();
    for scheme in [
        Scheme::Auto,
        Scheme::CommonReleaseAlphaNonzero,
        Scheme::CommonReleaseOverhead,
    ] {
        let a = solve(&tasks, &platform, scheme).unwrap();
        let b = solve_in(&tasks, &platform, scheme, &mut ws).unwrap();
        assert_energy_parity(&a, &b);
        ws.recycle_schedule(b.into_schedule());
    }
}

#[test]
fn quantize_parity_on_reused_workspace() {
    let platform = zero_break_even_platform(4.0);
    let levels = SpeedLevels::new(vec![
        Speed::from_hz(0.5),
        Speed::from_hz(1.0),
        Speed::from_hz(3.0),
    ]);
    let mut ws = Workspace::new();
    // Reuse one workspace across differently-sized instances so buffers
    // recycled by a large solve are handed to a smaller one.
    for works in [&[2.0_f64, 1.0, 0.25, 0.125][..], &[0.5][..]] {
        let tasks = common_release(works, 2.0);
        let solution = solve_lpt_in(&tasks, &platform, 2, &mut ws).unwrap();
        let a = quantize_schedule(solution.schedule(), &levels).unwrap();
        let b = quantize_schedule_in(solution.schedule(), &levels, &mut ws).unwrap();
        assert_eq!(a.placements().len(), b.placements().len());
        for (pa, pb) in a.placements().iter().zip(b.placements()) {
            assert_eq!(pa.segments(), pb.segments());
        }
        ws.recycle_schedule(b);
        ws.recycle_schedule(solution.into_schedule());
    }

    // A segment above the fastest level errors identically in both.
    let fast = common_release(&[7.9], 2.0); // forces ~3.95 Hz > 3.0 Hz
    let solution = solve_lpt_in(&fast, &platform, 1, &mut ws).unwrap();
    assert!(matches!(
        quantize_schedule(solution.schedule(), &levels),
        Err(SdemError::InfeasibleTask(_))
    ));
    assert!(matches!(
        quantize_schedule_in(solution.schedule(), &levels, &mut ws),
        Err(SdemError::InfeasibleTask(_))
    ));
}
