//! Randomized property tests for the foundation types: dimensional
//! arithmetic, interval merging invariants, schedule validation and the
//! numeric helpers. Each property runs over a fixed number of seeded
//! cases (deterministic, offline — no external property-test framework).

use sdem_prng::{ChaCha8Rng, Rng, SeedableRng};
use sdem_types::numeric::{bisect_increasing, minimize_unimodal};
use sdem_types::{
    CoreId, Cycles, IntervalSet, Placement, Schedule, Speed, Task, TaskId, TaskSet, Time,
};

const CASES: u64 = 128;

fn rng_for(property: u64, case: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(0x7E57_0000 + property * 1000 + case)
}

#[test]
fn time_arithmetic_round_trips() {
    for case in 0..CASES {
        let mut rng = rng_for(1, case);
        let a = rng.gen_range(-1e6f64..1e6);
        let b = rng.gen_range(-1e6f64..1e6);
        let (ta, tb) = (Time::from_secs(a), Time::from_secs(b));
        let back = (ta + tb) - tb;
        assert!((back - ta).abs().as_secs() <= 1e-9 * a.abs().max(1.0));
        assert_eq!(ta.min(tb).min(ta.max(tb)), ta.min(tb));
    }
}

#[test]
fn work_speed_time_consistency() {
    for case in 0..CASES {
        let mut rng = rng_for(2, case);
        let w = rng.gen_range(1e3f64..1e9);
        let s = rng.gen_range(1e3f64..1e10);
        let work = Cycles::new(w);
        let speed = Speed::from_hz(s);
        let t = work / speed;
        let back = speed * t;
        assert!((back.value() - w).abs() <= 1e-9 * w);
        let s_back = work / t;
        assert!((s_back.as_hz() - s).abs() <= 1e-9 * s);
    }
}

#[test]
fn unit_conversions_round_trip() {
    for case in 0..CASES {
        let mut rng = rng_for(3, case);
        let ms = rng.gen_range(0.0f64..1e6);
        let mhz = rng.gen_range(0.0f64..1e5);
        let t = Time::from_millis(ms);
        assert!((t.as_millis() - ms).abs() <= 1e-9 * ms.max(1.0));
        let s = Speed::from_mhz(mhz);
        assert!((s.as_mhz() - mhz).abs() <= 1e-9 * mhz.max(1.0));
    }
}

#[test]
fn memory_busy_intervals_are_sorted_disjoint_and_cover_busy_time() {
    for case in 0..CASES {
        let mut rng = rng_for(4, case);
        let n = rng.gen_range(1usize..12);
        let spans: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen_range(0.0f64..100.0), rng.gen_range(0.01f64..10.0)))
            .collect();
        // Build one placement per span on distinct cores.
        let placements: Vec<Placement> = spans
            .iter()
            .enumerate()
            .map(|(i, &(start, len))| {
                Placement::single(
                    TaskId(i),
                    CoreId(i),
                    Time::from_secs(start),
                    Time::from_secs(start + len),
                    Speed::from_hz(1.0),
                )
            })
            .collect();
        let schedule = Schedule::new(placements);
        let merged = schedule.memory_busy_intervals();
        // Sorted, disjoint, non-degenerate.
        for w in merged.windows(2) {
            assert!(w[0].1 <= w[1].0, "intervals overlap: {w:?}");
        }
        for &(a, b) in &merged {
            assert!(b > a);
        }
        // Union length is between the longest span and the sum of spans.
        let total: f64 = merged.iter().map(|&(a, b)| (b - a).as_secs()).sum();
        let sum: f64 = spans.iter().map(|&(_, l)| l).sum();
        let longest = spans.iter().map(|&(_, l)| l).fold(0.0, f64::max);
        assert!(total <= sum * (1.0 + 1e-9));
        assert!(total >= longest * (1.0 - 1e-9));
        // And matches the reported busy time.
        assert!((schedule.memory_busy_time().as_secs() - total).abs() <= 1e-9 * total.max(1.0));
    }
}

#[test]
fn filled_speed_schedules_always_validate() {
    for case in 0..CASES {
        let mut rng = rng_for(5, case);
        let n = rng.gen_range(1usize..10);
        let specs: Vec<(f64, f64, f64)> = (0..n)
            .map(|_| {
                (
                    rng.gen_range(0.0f64..50.0),
                    rng.gen_range(0.1f64..20.0),
                    rng.gen_range(0.0f64..100.0),
                )
            })
            .collect();
        let tasks = TaskSet::new(
            specs
                .iter()
                .enumerate()
                .map(|(i, &(r, win, w))| {
                    Task::new(
                        i,
                        Time::from_secs(r),
                        Time::from_secs(r + win),
                        Cycles::new(w),
                    )
                })
                .collect(),
        )
        .unwrap();
        // Every task filling its own region on its own core is feasible.
        let schedule = Schedule::new(
            tasks
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    if t.work().value() == 0.0 {
                        Placement::new(t.id(), CoreId(i), vec![])
                    } else {
                        Placement::single(
                            t.id(),
                            CoreId(i),
                            t.release(),
                            t.deadline(),
                            t.filled_speed(),
                        )
                    }
                })
                .collect(),
        );
        schedule.validate(&tasks).unwrap();
        // Shrinking any non-trivial segment's work breaks validation.
        if let Some(victim) = tasks.iter().find(|t| t.work().value() > 1.0) {
            let broken = Schedule::new(
                tasks
                    .iter()
                    .enumerate()
                    .map(|(i, t)| {
                        let speed = if t.id() == victim.id() {
                            t.filled_speed() * 0.5
                        } else {
                            t.filled_speed()
                        };
                        if t.work().value() == 0.0 {
                            Placement::new(t.id(), CoreId(i), vec![])
                        } else {
                            Placement::single(t.id(), CoreId(i), t.release(), t.deadline(), speed)
                        }
                    })
                    .collect(),
            );
            assert!(broken.validate(&tasks).is_err());
        }
    }
}

#[test]
fn golden_section_finds_quadratic_minima() {
    for case in 0..CASES {
        let mut rng = rng_for(6, case);
        let center = rng.gen_range(-50.0f64..50.0);
        let scale = rng.gen_range(0.1f64..10.0);
        let lo = rng.gen_range(-100.0f64..-60.0);
        let hi = rng.gen_range(60.0f64..100.0);
        let f = |x: f64| scale * (x - center).powi(2);
        let (x, v) = minimize_unimodal(f, lo, hi, 1e-12);
        assert!(
            (x - center).abs() <= 1e-5 * center.abs().max(1.0),
            "{x} vs {center}"
        );
        assert!(v <= f(center) + 1e-6 * scale);
    }
}

#[test]
fn golden_section_respects_boundary_minima() {
    for case in 0..CASES {
        let mut rng = rng_for(7, case);
        let slope = rng.gen_range(0.1f64..10.0);
        let lo = rng.gen_range(-5.0f64..0.0);
        // Strictly increasing function: minimum at lo.
        let (x, _) = minimize_unimodal(|x| slope * x, lo, lo + 10.0, 1e-12);
        assert!((x - lo).abs() <= 1e-6);
    }
}

#[test]
fn bisection_inverts_monotone_cubics() {
    for case in 0..CASES {
        let mut rng = rng_for(8, case);
        let root = rng.gen_range(-5.0f64..5.0);
        let gain = rng.gen_range(0.1f64..4.0);
        let g = |x: f64| gain * ((x - root) + (x - root).powi(3));
        let found = bisect_increasing(g, -10.0, 10.0, 1e-13).expect("sign change exists");
        assert!((found - root).abs() <= 1e-6, "{found} vs {root}");
    }
}

/// A random interval set with up to `max_n` raw spans over `[0, 100)`.
fn random_set(rng: &mut ChaCha8Rng, max_n: usize) -> IntervalSet {
    let n = rng.gen_range(0usize..max_n);
    (0..n)
        .map(|_| {
            let start = rng.gen_range(0.0f64..100.0);
            let len = rng.gen_range(0.0f64..10.0); // zero-length spans allowed
            (Time::from_secs(start), Time::from_secs(start + len))
        })
        .collect()
}

fn total_secs(set: &IntervalSet) -> f64 {
    set.total().as_secs()
}

#[test]
fn interval_union_is_commutative_idempotent_and_monotone() {
    for case in 0..CASES {
        let mut rng = rng_for(10, case);
        let a = random_set(&mut rng, 10);
        let b = random_set(&mut rng, 10);
        let ab = a.union(&b);
        let ba = b.union(&a);
        assert_eq!(ab.as_slice(), ba.as_slice(), "union must be commutative");
        assert_eq!(
            a.union(&a).as_slice(),
            a.as_slice(),
            "union with self must be the identity"
        );
        // The union covers both operands and no more than their sum.
        for set in [&a, &b] {
            for &(s, e) in set.iter() {
                let mid = s + (e - s) * 0.5;
                assert!(e <= s || ab.contains(mid), "union lost {s:?}..{e:?}");
            }
        }
        let (ta, tb, tu) = (total_secs(&a), total_secs(&b), total_secs(&ab));
        assert!(tu <= (ta + tb) * (1.0 + 1e-9) + 1e-12);
        assert!(tu >= ta.max(tb) * (1.0 - 1e-9));
    }
}

#[test]
fn interval_intersection_measure_obeys_inclusion_exclusion() {
    for case in 0..CASES {
        let mut rng = rng_for(11, case);
        let a = random_set(&mut rng, 10);
        let b = random_set(&mut rng, 10);
        let cap = a.intersect(&b);
        let cup = a.union(&b);
        // |A| + |B| = |A ∪ B| + |A ∩ B|.
        let lhs = total_secs(&a) + total_secs(&b);
        let rhs = total_secs(&cup) + total_secs(&cap);
        assert!(
            (lhs - rhs).abs() <= 1e-9 * lhs.max(1.0),
            "inclusion-exclusion violated: {lhs} vs {rhs}"
        );
        // The intersection is inside both operands.
        for &(s, e) in cap.iter() {
            let mid = s + (e - s) * 0.5;
            assert!(a.contains(mid) && b.contains(mid));
        }
        assert_eq!(a.intersect(&a).as_slice(), a.as_slice());
    }
}

#[test]
fn interval_complement_round_trips_within_span() {
    let span = (Time::from_secs(-10.0), Time::from_secs(120.0));
    let span_set: IntervalSet = [span].into_iter().collect();
    for case in 0..CASES {
        let mut rng = rng_for(12, case);
        let a = random_set(&mut rng, 10);
        let comp = a.complement_within(span);
        // Complement is disjoint from the set and together they tile the span.
        assert!(a.intersect(&comp).is_empty(), "complement overlaps set");
        let clipped = a.intersect(&span_set);
        let tiled = total_secs(&clipped) + total_secs(&comp);
        let span_len = (span.1 - span.0).as_secs();
        assert!(
            (tiled - span_len).abs() <= 1e-9 * span_len,
            "set + complement must tile the span: {tiled} vs {span_len}"
        );
        // Complementing twice restores the clipped set.
        assert_eq!(
            comp.complement_within(span).as_slice(),
            clipped.as_slice(),
            "double complement must round-trip"
        );
    }
}

#[test]
fn interval_coalescing_is_idempotent() {
    for case in 0..CASES {
        let mut rng = rng_for(13, case);
        let a = random_set(&mut rng, 12);
        // Rebuilding from the coalesced spans changes nothing.
        let rebuilt = IntervalSet::from_spans(a.as_slice().to_vec());
        assert_eq!(rebuilt.as_slice(), a.as_slice());
        // Invariants of the canonical form: sorted, disjoint, non-degenerate.
        for w in a.windows(2) {
            assert!(w[0].1 < w[1].0, "adjacent intervals must not touch: {w:?}");
        }
        for &(s, e) in a.iter() {
            assert!(e > s);
        }
    }
}

#[test]
fn interval_gap_counts_match_interval_counts() {
    for case in 0..CASES {
        let mut rng = rng_for(14, case);
        let a = random_set(&mut rng, 10);
        // Gap convention: exactly one gap between consecutive intervals.
        let inner = a.gaps(None);
        if a.is_empty() {
            assert!(inner.is_empty());
        } else {
            assert_eq!(inner.len(), a.len() - 1);
        }
        // Horizon strictly containing the span adds leading and trailing
        // gaps — except for the empty set, which has no gaps at all.
        let horizon = (Time::from_secs(-5.0), Time::from_secs(200.0));
        let all = a.gaps(Some(horizon));
        if a.is_empty() {
            assert!(all.is_empty(), "empty busy set must produce no gaps");
        } else {
            assert_eq!(all.len(), a.len() + 1);
            // Busy time plus gap time tiles the horizon.
            let tiled = total_secs(&a) + total_secs(&all);
            let span_len = (horizon.1 - horizon.0).as_secs();
            assert!((tiled - span_len).abs() <= 1e-9 * span_len);
        }
    }
}

#[test]
fn sorted_by_deadline_is_sorted_and_stable_permutation() {
    for case in 0..CASES {
        let mut rng = rng_for(9, case);
        let n = rng.gen_range(1usize..15);
        let tasks = TaskSet::new(
            (0..n)
                .map(|i| {
                    let r = rng.gen_range(0.0f64..50.0);
                    let win = rng.gen_range(0.1f64..20.0);
                    Task::new(
                        i,
                        Time::from_secs(r),
                        Time::from_secs(r + win),
                        Cycles::new(1.0),
                    )
                })
                .collect(),
        )
        .unwrap();
        let sorted = tasks.sorted_by_deadline();
        assert_eq!(sorted.len(), tasks.len());
        for w in sorted.windows(2) {
            assert!(w[0].deadline() <= w[1].deadline());
        }
        // Same multiset of ids.
        let mut ids: Vec<usize> = sorted.iter().map(|t| t.id().0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..tasks.len()).collect::<Vec<_>>());
    }
}

#[test]
fn task_sets_reject_any_non_finite_field_with_typed_errors() {
    use sdem_types::TaskSetError;

    let poisons = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY];
    for case in 0..CASES {
        let mut rng = rng_for(15, case);
        let n = rng.gen_range(1usize..12);
        let mut tasks: Vec<Task> = (0..n)
            .map(|i| {
                let r = rng.gen_range(0.0f64..50.0);
                let win = rng.gen_range(0.1f64..20.0);
                Task::new(
                    i,
                    Time::from_secs(r),
                    Time::from_secs(r + win),
                    Cycles::new(rng.gen_range(1.0f64..1e6)),
                )
            })
            .collect();
        // The clean set always validates…
        TaskSet::new(tasks.clone()).expect("clean set");

        // …then poison exactly one field of one task with NaN/±∞ and the
        // constructor must reject it, naming the offending task.
        let victim = rng.gen_range(0usize..n);
        let poison = poisons[rng.gen_range(0usize..poisons.len())];
        let field = rng.gen_range(0usize..3);
        let t = &tasks[victim];
        tasks[victim] = match field {
            0 => Task::new(victim, Time::from_secs(poison), t.deadline(), t.work()),
            1 => Task::new(victim, t.release(), Time::from_secs(poison), t.work()),
            _ => Task::new(victim, t.release(), t.deadline(), Cycles::new(poison)),
        };
        match TaskSet::new(tasks) {
            Err(TaskSetError::InvalidTask(id)) => assert_eq!(id, TaskId(victim)),
            // A -∞ deadline (or +∞ release) can also trip the window check
            // first; either typed rejection is acceptable.
            Err(TaskSetError::EmptyWindow(id)) => assert_eq!(id, TaskId(victim)),
            other => panic!("poisoned set accepted or misreported: {other:?}"),
        }
    }
}

/// One random task set with ties, signed zeros and zero-work tasks —
/// hostile input for the SoA columns and their argsorts.
fn soa_case(rng: &mut ChaCha8Rng) -> TaskSet {
    let n = rng.gen_range(1usize..25);
    let tasks: Vec<Task> = (0..n)
        .map(|i| {
            let release = match rng.gen_range(0usize..4) {
                0 => 0.0,
                1 => -0.0,
                // Coarse grid so distinct tasks often tie on release.
                _ => rng.gen_range(0.0f64..4.0).floor(),
            };
            let deadline = release.abs() + rng.gen_range(0.5f64..8.0).floor() + 0.5;
            let work = if rng.gen_bool(0.2) {
                0.0
            } else {
                rng.gen_range(1.0f64..1e6)
            };
            Task::new(
                i,
                Time::from_secs(release),
                Time::from_secs(deadline),
                Cycles::new(work),
            )
        })
        .collect();
    TaskSet::new(tasks).expect("valid set")
}

#[test]
fn soa_round_trips_and_orders_match_aos_over_200_seeds() {
    use sdem_types::Workspace;
    let mut ws = Workspace::new();
    for case in 0..200 {
        let mut rng = rng_for(16, case);
        let set = soa_case(&mut rng);
        let mut soa = ws.take_soa();
        set.fill_soa(&mut soa);

        // AoS ↔ SoA round trip is bit-exact per task (signed zeros too).
        assert_eq!(soa.len(), set.len());
        for (i, t) in set.iter().enumerate() {
            let back = soa.task(i);
            assert_eq!(&back, t);
            assert_eq!(
                back.release().as_secs().to_bits(),
                t.release().as_secs().to_bits()
            );
        }

        // The argsorted views reproduce the AoS sorts exactly, ties and all.
        let mut order = ws.take_usizes();
        soa.arrival_order_into(&mut order);
        let arrivals: Vec<Task> = order.iter().map(|&i| soa.task(i)).collect();
        assert_eq!(arrivals, set.sorted_by_release());

        // Slice hash == historical per-Task hash (also pinned verbatim in
        // sdem-serve's canonical_hash_pin suite; here we pin the pooled
        // path against the allocating one on a warm workspace).
        soa.canonical_order_into(&mut order);
        assert_eq!(soa.hash_in_order(&order), set.canonical_hash());
        assert_eq!(set.canonical_hash_in(&mut ws), set.canonical_hash());

        assert_eq!(soa.is_common_release(), set.is_common_release());
        ws.recycle_usizes(order);
        ws.recycle_soa(soa);
    }
}
