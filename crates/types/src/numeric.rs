//! Numeric helpers: tolerant comparison and 1-D minimization of convex
//! functions.
//!
//! The SDEM block optimizations repeatedly minimize smooth convex energy
//! functions of a sleep length over an interval. Closed forms exist for the
//! common-release cases (Eq. 4 / Eq. 8 of the paper); the agreeable-deadline
//! block solver needs a numeric 1-D minimizer, provided here as a
//! golden-section search plus a derivative bisection.

/// Default relative tolerance for floating-point comparisons across the
/// workspace.
pub const DEFAULT_REL_TOL: f64 = 1e-9;

/// Returns `true` if `a` and `b` agree to relative tolerance `rel`
/// (with an absolute floor of `rel` for values near zero).
///
/// # Examples
///
/// ```
/// use sdem_types::numeric::approx_eq;
/// assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
/// assert!(!approx_eq(1.0, 1.1, 1e-9));
/// ```
pub fn approx_eq(a: f64, b: f64, rel: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= rel * scale
}

/// Returns `true` if `a ≤ b` up to relative tolerance `rel`.
pub fn approx_le(a: f64, b: f64, rel: f64) -> bool {
    a <= b || approx_eq(a, b, rel)
}

/// Minimizes a strictly unimodal (e.g. convex) function `f` over `[lo, hi]`
/// by golden-section search, returning `(argmin, min)`.
///
/// Terminates once the bracket is narrower than
/// `tol * max(1, |lo|, |hi|)`. For a convex `f` the result is within the
/// final bracket of the true minimizer.
///
/// # Panics
///
/// Panics if `lo > hi` or either bound is non-finite.
///
/// # Examples
///
/// ```
/// use sdem_types::numeric::minimize_unimodal;
/// let (x, v) = minimize_unimodal(|x| (x - 2.0).powi(2) + 1.0, 0.0, 10.0, 1e-12);
/// assert!((x - 2.0).abs() < 1e-6);
/// assert!((v - 1.0).abs() < 1e-9);
/// ```
pub fn minimize_unimodal(f: impl Fn(f64) -> f64, lo: f64, hi: f64, tol: f64) -> (f64, f64) {
    assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
    assert!(lo <= hi, "lo must not exceed hi");
    const INV_PHI: f64 = 0.618_033_988_749_894_9;
    let scale = lo.abs().max(hi.abs()).max(1.0);
    let (mut a, mut b) = (lo, hi);
    let mut c = b - (b - a) * INV_PHI;
    let mut d = a + (b - a) * INV_PHI;
    let mut fc = f(c);
    let mut fd = f(d);
    while (b - a) > tol * scale {
        if fc <= fd {
            b = d;
            d = c;
            fd = fc;
            c = b - (b - a) * INV_PHI;
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + (b - a) * INV_PHI;
            fd = f(d);
        }
    }
    // Evaluate the midpoint and both endpoints; endpoints matter when the
    // minimum is at the boundary of the feasible box.
    let xm = 0.5 * (a + b);
    let candidates = [(lo, f(lo)), (hi, f(hi)), (xm, f(xm))];
    candidates
        .into_iter()
        .min_by(|p, q| p.1.total_cmp(&q.1))
        .expect("three candidates")
}

/// Finds a root of a continuous, monotonically increasing function `g` on
/// `[lo, hi]` by bisection, returning `None` when `g` has the same sign at
/// both ends (no sign change ⇒ no interior root).
///
/// Used to solve the first-order conditions of the block energy functions,
/// whose derivatives are monotone in the sleep lengths.
///
/// # Examples
///
/// ```
/// use sdem_types::numeric::bisect_increasing;
/// let root = bisect_increasing(|x| x * x * x - 8.0, 0.0, 10.0, 1e-12).unwrap();
/// assert!((root - 2.0).abs() < 1e-6);
/// ```
pub fn bisect_increasing(g: impl Fn(f64) -> f64, lo: f64, hi: f64, tol: f64) -> Option<f64> {
    assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
    assert!(lo <= hi, "lo must not exceed hi");
    let (mut a, mut b) = (lo, hi);
    let (ga, gb) = (g(a), g(b));
    if ga > 0.0 || gb < 0.0 {
        return None;
    }
    if ga == 0.0 {
        return Some(a);
    }
    if gb == 0.0 {
        return Some(b);
    }
    let scale = lo.abs().max(hi.abs()).max(1.0);
    while (b - a) > tol * scale {
        let mid = 0.5 * (a + b);
        let gm = g(mid);
        if gm == 0.0 {
            return Some(mid);
        }
        if gm < 0.0 {
            a = mid;
        } else {
            b = mid;
        }
    }
    Some(0.5 * (a + b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_near_zero_uses_absolute_floor() {
        assert!(approx_eq(0.0, 1e-12, 1e-9));
        assert!(!approx_eq(0.0, 1e-6, 1e-9));
    }

    #[test]
    fn approx_le_accepts_slightly_greater() {
        assert!(approx_le(1.0 + 1e-12, 1.0, 1e-9));
        assert!(!approx_le(1.1, 1.0, 1e-9));
    }

    #[test]
    fn golden_section_interior_minimum() {
        let (x, v) = minimize_unimodal(|x| (x - 3.5).powi(2), 0.0, 10.0, 1e-12);
        assert!((x - 3.5).abs() < 1e-6);
        assert!(v < 1e-10);
    }

    #[test]
    fn golden_section_boundary_minimum() {
        // Decreasing on the whole interval: minimum at hi.
        let (x, _) = minimize_unimodal(|x| -x, 0.0, 4.0, 1e-12);
        assert!((x - 4.0).abs() < 1e-9);
        // Increasing: minimum at lo.
        let (x, _) = minimize_unimodal(|x| x, 1.0, 4.0, 1e-12);
        assert!((x - 1.0).abs() < 1e-9);
    }

    #[test]
    fn golden_section_degenerate_interval() {
        let (x, v) = minimize_unimodal(|x| x * x, 2.0, 2.0, 1e-12);
        assert_eq!(x, 2.0);
        assert_eq!(v, 4.0);
    }

    #[test]
    fn golden_section_matches_energy_shape() {
        // The paper's E(Δ) = α_m (L − Δ) + k (L − Δ)^{1−λ} shape, λ = 3.
        let (alpha_m, k, l) = (4.0, 2.0e-3, 0.1);
        let f = |delta: f64| alpha_m * (l - delta) + k * (l - delta).powi(-2);
        // Interior optimum: d/dΔ = −α_m + 2k(L−Δ)^{−3} = 0 ⇒ L−Δ = (2k/α_m)^{1/3}.
        let expected = l - (2.0 * k / alpha_m).powf(1.0 / 3.0);
        let (x, _) = minimize_unimodal(f, 0.0, l * 0.99, 1e-13);
        assert!((x - expected).abs() < 1e-6, "{x} vs {expected}");
    }

    #[test]
    fn bisection_finds_root() {
        let root = bisect_increasing(|x| x - 1.25, 0.0, 2.0, 1e-14).unwrap();
        assert!((root - 1.25).abs() < 1e-9);
    }

    #[test]
    fn bisection_detects_no_root() {
        assert!(bisect_increasing(|x| x + 10.0, 0.0, 1.0, 1e-12).is_none());
        assert!(bisect_increasing(|x| x - 10.0, 0.0, 1.0, 1e-12).is_none());
    }

    #[test]
    fn bisection_root_at_boundary() {
        let r = bisect_increasing(|x| x, 0.0, 1.0, 1e-12).unwrap();
        assert_eq!(r, 0.0);
        let r = bisect_increasing(|x| x - 1.0, 0.0, 1.0, 1e-12).unwrap();
        assert_eq!(r, 1.0);
    }

    #[test]
    #[should_panic(expected = "lo must not exceed hi")]
    fn minimize_rejects_inverted_interval() {
        let _ = minimize_unimodal(|x| x, 1.0, 0.0, 1e-9);
    }
}
