//! The canonical interval kernel: sorted, coalesced, half-open
//! `[start, end)` time intervals.
//!
//! Every interval computation in the workspace — a core's busy windows,
//! the memory's union of busy windows, the idle gaps a sleep policy
//! prices against `ξ`/`ξ_m` — routes through [`IntervalSet`] (the set
//! algebra) and [`Timeline`] (a busy set paired with the powered-span
//! convention). Keeping one implementation makes the analytic schemes,
//! the simulator and the figure pipelines agree bit-for-bit on what "a
//! gap" is.
//!
//! # Conventions
//!
//! * Intervals are half-open `[start, end)`; degenerate spans
//!   (`end <= start`, or any non-finite ordering) are dropped on
//!   construction.
//! * A set is always sorted by start and coalesced: touching or
//!   overlapping spans are merged, so consecutive intervals are
//!   separated by strictly positive gaps.
//! * [`IntervalSet::gaps`] follows the workspace's two powered-span
//!   conventions (see `sdem-sim`): with no horizon a component is only
//!   powered between its own first and last busy instant, so only the
//!   *inner* gaps exist; with a horizon `(t0, t1)` the component is
//!   powered across the whole window and the leading/trailing idle
//!   become gaps too. An empty busy set yields no gaps under either
//!   convention (a component that never runs is never powered) — use
//!   [`IntervalSet::complement_within`] for the true set complement.

use crate::units::Time;

/// A sorted, coalesced set of half-open `[start, end)` intervals.
///
/// Dereferences to `&[(Time, Time)]`, so slice iteration, indexing and
/// `windows()` all work directly on the set.
///
/// # Examples
///
/// ```
/// use sdem_types::{IntervalSet, Time};
///
/// let s = |x: f64| Time::from_secs(x);
/// let set = IntervalSet::from_spans(vec![(s(4.0), s(6.0)), (s(0.0), s(2.0)), (s(1.0), s(3.0))]);
/// assert_eq!(set.as_slice(), &[(s(0.0), s(3.0)), (s(4.0), s(6.0))]);
/// assert_eq!(set.total(), s(5.0));
/// assert_eq!(set.gaps(None).as_slice(), &[(s(3.0), s(4.0))]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IntervalSet {
    intervals: Vec<(Time, Time)>,
}

impl IntervalSet {
    /// The empty set.
    pub const fn new() -> Self {
        Self {
            intervals: Vec::new(),
        }
    }

    /// Builds a set from arbitrary spans: drops degenerate spans
    /// (`end <= start`), sorts by start, and coalesces touching or
    /// overlapping spans.
    pub fn from_spans(spans: Vec<(Time, Time)>) -> Self {
        let mut out = Self { intervals: spans };
        Self::normalize(&mut out.intervals);
        out
    }

    /// Sorts and coalesces raw spans in place. The relative order of spans
    /// sharing a start is irrelevant: they always overlap, so coalescing
    /// merges them to the same maximal end either way — an unstable sort is
    /// therefore observationally identical to a stable one here.
    fn normalize(spans: &mut Vec<(Time, Time)>) {
        spans.retain(|&(a, b)| b > a);
        spans.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        let mut write = 0;
        for read in 0..spans.len() {
            let (a, b) = spans[read];
            if write > 0 && a <= spans[write - 1].1 {
                spans[write - 1].1 = spans[write - 1].1.max(b);
            } else {
                spans[write] = (a, b);
                write += 1;
            }
        }
        spans.truncate(write);
    }

    /// Empties the set, keeping its allocation for reuse.
    #[inline]
    pub fn clear(&mut self) {
        self.intervals.clear();
    }

    /// Capacity of the underlying buffer (pool diagnostics).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.intervals.capacity()
    }

    /// Rebuilds `out` from arbitrary raw spans without allocating (beyond
    /// growing `out`'s buffer): `out` is cleared, filled from `iter`, then
    /// sorted and coalesced exactly like [`Self::from_spans`].
    pub fn collect_into<I: IntoIterator<Item = (Time, Time)>>(iter: I, out: &mut Self) {
        out.intervals.clear();
        out.intervals.extend(iter);
        Self::normalize(&mut out.intervals);
    }

    /// The intervals as a slice (also available through `Deref`).
    #[inline]
    pub fn as_slice(&self) -> &[(Time, Time)] {
        &self.intervals
    }

    /// Consumes the set, returning the underlying intervals.
    #[inline]
    pub fn into_vec(self) -> Vec<(Time, Time)> {
        self.intervals
    }

    /// Sum of interval lengths, accumulated left to right.
    pub fn total(&self) -> Time {
        self.intervals.iter().map(|&(a, b)| b - a).sum()
    }

    /// The convex hull `(first start, last end)`, or `None` when empty.
    pub fn span(&self) -> Option<(Time, Time)> {
        match (self.intervals.first(), self.intervals.last()) {
            (Some(&(a, _)), Some(&(_, b))) => Some((a, b)),
            _ => None,
        }
    }

    /// `true` when `t` lies inside some interval (`start <= t < end`).
    pub fn contains(&self, t: Time) -> bool {
        let idx = self.intervals.partition_point(|&(a, _)| a <= t);
        idx > 0 && t < self.intervals[idx - 1].1
    }

    /// Set union; both inputs stay sorted so this is a linear merge.
    pub fn union(&self, other: &Self) -> Self {
        let mut out = Self::new();
        self.union_into(other, &mut out);
        out
    }

    /// In-place [`Self::union`]: clears `out` and fills it with the merge,
    /// reusing `out`'s allocation.
    pub fn union_into(&self, other: &Self, out: &mut Self) {
        out.intervals.clear();
        out.intervals
            .reserve(self.intervals.len() + other.intervals.len());
        let (mut xs, mut ys) = (self.iter().peekable(), other.iter().peekable());
        loop {
            let take_x = match (xs.peek(), ys.peek()) {
                (Some(x), Some(y)) => x.0 <= y.0,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let &(a, b) = if take_x {
                xs.next().unwrap()
            } else {
                ys.next().unwrap()
            };
            match out.intervals.last_mut() {
                Some(last) if a <= last.1 => last.1 = last.1.max(b),
                _ => out.intervals.push((a, b)),
            }
        }
    }

    /// Set intersection: the time covered by both sets.
    pub fn intersect(&self, other: &Self) -> Self {
        let mut out = Self::new();
        self.intersect_into(other, &mut out);
        out
    }

    /// In-place [`Self::intersect`]: clears `out` and fills it with the
    /// intersection, reusing `out`'s allocation.
    pub fn intersect_into(&self, other: &Self, out: &mut Self) {
        out.intervals.clear();
        let (mut i, mut j) = (0, 0);
        while i < self.intervals.len() && j < other.intervals.len() {
            let (a0, a1) = self.intervals[i];
            let (b0, b1) = other.intervals[j];
            let lo = a0.max(b0);
            let hi = a1.min(b1);
            if hi > lo {
                out.intervals.push((lo, hi));
            }
            if a1 <= b1 {
                i += 1;
            } else {
                j += 1;
            }
        }
        out.debug_check_sorted();
    }

    /// The true set complement clipped to `span`: everything inside
    /// `[span.0, span.1)` not covered by this set. The complement of an
    /// empty set is the whole (non-degenerate) span.
    pub fn complement_within(&self, span: (Time, Time)) -> Self {
        let mut out = Self::new();
        self.complement_within_into(span, &mut out);
        out
    }

    /// In-place [`Self::complement_within`]: clears `out` and fills it with
    /// the clipped complement, reusing `out`'s allocation.
    pub fn complement_within_into(&self, span: (Time, Time), out: &mut Self) {
        out.intervals.clear();
        let (t0, t1) = span;
        if t1 <= t0 {
            return;
        }
        let mut cursor = t0;
        for &(a, b) in &self.intervals {
            if b <= cursor {
                continue;
            }
            if a >= t1 {
                break;
            }
            if a > cursor {
                out.intervals.push((cursor, a.min(t1)));
            }
            cursor = cursor.max(b);
            if cursor >= t1 {
                break;
            }
        }
        if cursor < t1 {
            out.intervals.push((cursor, t1));
        }
        out.debug_check_sorted();
    }

    /// The idle gaps of a busy set under the workspace's powered-span
    /// conventions, in chronological order.
    ///
    /// With `horizon = None` only the strictly positive gaps *between*
    /// consecutive busy intervals are returned. With a horizon
    /// `(t0, t1)` the leading idle `[t0, first start)` and trailing idle
    /// `[last end, t1)` are appended when non-empty. An empty busy set
    /// produces no gaps under either convention (the component is never
    /// powered); use [`Self::complement_within`] when the true
    /// complement is wanted instead.
    pub fn gaps(&self, horizon: Option<(Time, Time)>) -> Self {
        let mut out = Self::new();
        self.gaps_into(horizon, &mut out);
        out
    }

    /// In-place [`Self::gaps`]: clears `out` and fills it with the priced
    /// idle gaps, reusing `out`'s allocation.
    pub fn gaps_into(&self, horizon: Option<(Time, Time)>, out: &mut Self) {
        out.intervals.clear();
        let (Some(&first), Some(&last)) = (self.intervals.first(), self.intervals.last()) else {
            return;
        };
        if let Some((t0, _)) = horizon {
            if first.0 - t0 > Time::ZERO {
                out.intervals.push((t0, first.0));
            }
        }
        out.intervals.extend(
            self.intervals
                .windows(2)
                .map(|w| (w[0].1, w[1].0))
                .filter(|&(a, b)| b - a > Time::ZERO),
        );
        if let Some((_, t1)) = horizon {
            if t1 - last.1 > Time::ZERO {
                out.intervals.push((last.1, t1));
            }
        }
        out.debug_check_sorted();
    }

    /// Batched union: clears `out` and fills it with the union of every
    /// set in `sets`, in one coalescing pass.
    ///
    /// Folding [`Self::union_into`] over n sets re-merges the running
    /// result n − 1 times; this entry point concatenates all spans once
    /// and normalizes once. Coalescing does no arithmetic (endpoints are
    /// copied bits, merges take a max under the total order), and the
    /// canonical sorted-disjoint representation of a point set is unique,
    /// so the result is bit-identical to the pairwise fold.
    pub fn union_many_into(sets: &[Self], out: &mut Self) {
        out.intervals.clear();
        out.intervals
            .reserve(sets.iter().map(|s| s.intervals.len()).sum());
        for set in sets {
            out.intervals.extend_from_slice(&set.intervals);
        }
        Self::normalize(&mut out.intervals);
    }

    /// Batched intersection: clears `out` and fills it with the time
    /// covered by *every* set in `sets`, in one k-pointer sweep.
    ///
    /// `cursors` is caller-provided scratch (one index per set — take it
    /// from a [`crate::Workspace`] to keep the call allocation-free).
    /// An empty `sets` slice yields the empty set. Like the batched
    /// union, the sweep does no arithmetic, so the result is
    /// bit-identical to folding [`Self::intersect_into`].
    pub fn intersect_many_into(sets: &[Self], cursors: &mut Vec<usize>, out: &mut Self) {
        out.intervals.clear();
        if sets.is_empty() {
            return;
        }
        cursors.clear();
        cursors.resize(sets.len(), 0);
        'sweep: loop {
            // The candidate piece is bounded by the latest current start
            // and the earliest current end across all k fronts.
            let mut lo = Time::from_secs(f64::NEG_INFINITY);
            let mut hi = Time::from_secs(f64::INFINITY);
            let mut min_end_at = 0;
            for (k, set) in sets.iter().enumerate() {
                let Some(&(a, b)) = set.intervals.get(cursors[k]) else {
                    break 'sweep;
                };
                lo = lo.max(a);
                if b < hi {
                    hi = b;
                    min_end_at = k;
                }
            }
            if hi > lo {
                out.intervals.push((lo, hi));
            }
            // Only the set whose interval ends first can contribute more
            // overlap later; advance its cursor.
            cursors[min_end_at] += 1;
        }
        out.debug_check_sorted();
    }

    /// Batched [`Self::gaps_into`]: computes every set's priced idle gaps
    /// in one pass, appending them to `flat` with `offsets` recording the
    /// per-set ranges (`offsets[i]..offsets[i + 1]` are set i's gaps).
    ///
    /// Both buffers are cleared first; `offsets` comes back with
    /// `sets.len() + 1` entries. Each per-set gap list is bit-identical
    /// to what [`Self::gaps_into`] would produce for that set under the
    /// same `horizon`.
    pub fn gaps_many_into(
        sets: &[Self],
        horizon: Option<(Time, Time)>,
        flat: &mut Vec<(Time, Time)>,
        offsets: &mut Vec<usize>,
    ) {
        flat.clear();
        offsets.clear();
        offsets.push(0);
        for set in sets {
            if let (Some(&first), Some(&last)) = (set.intervals.first(), set.intervals.last()) {
                if let Some((t0, _)) = horizon {
                    if first.0 - t0 > Time::ZERO {
                        flat.push((t0, first.0));
                    }
                }
                flat.extend(
                    set.intervals
                        .windows(2)
                        .map(|w| (w[0].1, w[1].0))
                        .filter(|&(a, b)| b - a > Time::ZERO),
                );
                if let Some((_, t1)) = horizon {
                    if t1 - last.1 > Time::ZERO {
                        flat.push((last.1, t1));
                    }
                }
            }
            offsets.push(flat.len());
        }
    }

    /// Debug-build check that the invariants (sorted, disjoint,
    /// non-degenerate) hold; compiles to nothing in release builds.
    #[inline]
    fn debug_check_sorted(&self) {
        debug_assert!(self.intervals.iter().all(|&(a, b)| b > a));
        debug_assert!(self.intervals.windows(2).all(|w| w[0].1 < w[1].0));
    }
}

impl std::ops::Deref for IntervalSet {
    type Target = [(Time, Time)];

    #[inline]
    fn deref(&self) -> &Self::Target {
        &self.intervals
    }
}

impl FromIterator<(Time, Time)> for IntervalSet {
    fn from_iter<I: IntoIterator<Item = (Time, Time)>>(iter: I) -> Self {
        Self::from_spans(iter.into_iter().collect())
    }
}

impl IntoIterator for IntervalSet {
    type Item = (Time, Time);
    type IntoIter = std::vec::IntoIter<(Time, Time)>;

    fn into_iter(self) -> Self::IntoIter {
        self.intervals.into_iter()
    }
}

impl<'a> IntoIterator for &'a IntervalSet {
    type Item = &'a (Time, Time);
    type IntoIter = std::slice::Iter<'a, (Time, Time)>;

    fn into_iter(self) -> Self::IntoIter {
        self.intervals.iter()
    }
}

/// A component's activity timeline: its coalesced busy intervals plus
/// the powered-span convention under which its idle gaps are priced.
///
/// This is the shape every energy accounting in the workspace consumes:
/// the meter, the event-driven engine, the power-trace renderer and the
/// schedulers' closed forms all derive their gap lists from a
/// `Timeline`.
///
/// # Examples
///
/// ```
/// use sdem_types::{IntervalSet, Time, Timeline};
///
/// let s = |x: f64| Time::from_secs(x);
/// let busy = IntervalSet::from_spans(vec![(s(2.0), s(3.0)), (s(5.0), s(7.0))]);
/// let tl = Timeline::new(busy, Some((s(0.0), s(10.0))));
/// // Leading, inner and trailing idle all become gaps under a horizon.
/// assert_eq!(
///     tl.gaps().as_slice(),
///     &[(s(0.0), s(2.0)), (s(3.0), s(5.0)), (s(7.0), s(10.0))]
/// );
/// assert_eq!(tl.busy_time(), s(3.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    busy: IntervalSet,
    horizon: Option<(Time, Time)>,
}

impl Timeline {
    /// Pairs a busy set with an optional powered horizon.
    pub fn new(busy: IntervalSet, horizon: Option<(Time, Time)>) -> Self {
        Self { busy, horizon }
    }

    /// The busy intervals.
    #[inline]
    pub fn busy(&self) -> &IntervalSet {
        &self.busy
    }

    /// The powered horizon, when one was given.
    #[inline]
    pub fn horizon(&self) -> Option<(Time, Time)> {
        self.horizon
    }

    /// Total busy time.
    pub fn busy_time(&self) -> Time {
        self.busy.total()
    }

    /// The window the component is powered over: the horizon when given,
    /// otherwise the busy set's own span.
    pub fn powered_span(&self) -> Option<(Time, Time)> {
        self.horizon.or_else(|| self.busy.span())
    }

    /// The priced idle gaps (see [`IntervalSet::gaps`]), chronological.
    pub fn gaps(&self) -> IntervalSet {
        self.busy.gaps(self.horizon)
    }

    /// In-place [`Self::gaps`] writing into a reusable buffer.
    pub fn gaps_into(&self, out: &mut IntervalSet) {
        self.busy.gaps_into(self.horizon, out);
    }

    /// `true` when the component executes work at `t`.
    pub fn is_busy_at(&self, t: Time) -> bool {
        self.busy.contains(t)
    }

    /// Consumes the timeline, returning the busy set (e.g. to recycle its
    /// allocation into a [`crate::Workspace`]).
    pub fn into_busy(self) -> IntervalSet {
        self.busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: f64) -> Time {
        Time::from_secs(x)
    }

    fn set(spans: &[(f64, f64)]) -> IntervalSet {
        IntervalSet::from_spans(spans.iter().map(|&(a, b)| (s(a), s(b))).collect())
    }

    fn raw(set: &IntervalSet) -> Vec<(f64, f64)> {
        set.iter().map(|&(a, b)| (a.value(), b.value())).collect()
    }

    #[test]
    fn from_spans_drops_degenerate_sorts_and_coalesces() {
        let got = set(&[(5.0, 5.0), (3.0, 1.0), (4.0, 6.0), (0.0, 2.0), (1.5, 3.0)]);
        assert_eq!(raw(&got), vec![(0.0, 3.0), (4.0, 6.0)]);
        // Touching intervals coalesce.
        assert_eq!(raw(&set(&[(0.0, 1.0), (1.0, 2.0)])), vec![(0.0, 2.0)]);
    }

    #[test]
    fn coalescing_is_idempotent() {
        let once = set(&[(0.0, 2.0), (1.0, 4.0), (6.0, 7.0)]);
        let twice = IntervalSet::from_spans(once.to_vec());
        assert_eq!(once, twice);
    }

    #[test]
    fn total_span_and_contains() {
        let st = set(&[(1.0, 2.0), (4.0, 7.0)]);
        assert_eq!(st.total(), s(4.0));
        assert_eq!(st.span(), Some((s(1.0), s(7.0))));
        assert!(st.contains(s(1.0)));
        assert!(!st.contains(s(2.0))); // half-open
        assert!(!st.contains(s(3.0)));
        assert!(st.contains(s(6.999)));
        assert!(!st.contains(s(7.0)));
        assert!(!IntervalSet::new().contains(s(0.0)));
        assert_eq!(IntervalSet::new().span(), None);
    }

    #[test]
    fn union_matches_rebuild() {
        let a = set(&[(0.0, 2.0), (5.0, 6.0)]);
        let b = set(&[(1.0, 3.0), (6.0, 8.0), (10.0, 11.0)]);
        let via_merge = a.union(&b);
        let via_rebuild = IntervalSet::from_spans(a.iter().chain(b.iter()).copied().collect());
        assert_eq!(via_merge, via_rebuild);
        assert_eq!(raw(&via_merge), vec![(0.0, 3.0), (5.0, 8.0), (10.0, 11.0)]);
    }

    #[test]
    fn intersect_keeps_shared_time_only() {
        let a = set(&[(0.0, 4.0), (6.0, 9.0)]);
        let b = set(&[(2.0, 7.0), (8.5, 12.0)]);
        assert_eq!(
            raw(&a.intersect(&b)),
            vec![(2.0, 4.0), (6.0, 7.0), (8.5, 9.0)]
        );
        assert_eq!(a.intersect(&IntervalSet::new()), IntervalSet::new());
    }

    #[test]
    fn complement_within_inverts() {
        let a = set(&[(1.0, 2.0), (4.0, 5.0)]);
        let span = (s(0.0), s(6.0));
        let comp = a.complement_within(span);
        assert_eq!(raw(&comp), vec![(0.0, 1.0), (2.0, 4.0), (5.0, 6.0)]);
        // complement ∪ set covers the span exactly.
        assert_eq!(comp.union(&a).as_slice(), &[(s(0.0), s(6.0))]);
        // Empty set: complement is the whole span.
        assert_eq!(
            raw(&IntervalSet::new().complement_within(span)),
            vec![(0.0, 6.0)]
        );
        // Degenerate span: empty.
        assert!(a.complement_within((s(3.0), s(3.0))).is_empty());
    }

    #[test]
    fn gaps_follow_both_powered_span_conventions() {
        let a = set(&[(2.0, 3.0), (5.0, 7.0)]);
        assert_eq!(raw(&a.gaps(None)), vec![(3.0, 5.0)]);
        assert_eq!(
            raw(&a.gaps(Some((s(0.0), s(10.0))))),
            vec![(0.0, 2.0), (3.0, 5.0), (5.0 + 2.0, 10.0)]
        );
        // Horizon flush with the busy span adds nothing.
        assert_eq!(raw(&a.gaps(Some((s(2.0), s(7.0))))), vec![(3.0, 5.0)]);
        // Empty set: no gaps even under a horizon.
        assert!(IntervalSet::new().gaps(Some((s(0.0), s(1.0)))).is_empty());
    }

    #[test]
    fn into_variants_match_allocating_ops_and_clear_stale_state() {
        let a = set(&[(0.0, 2.0), (5.0, 6.0), (8.0, 9.0)]);
        let b = set(&[(1.0, 3.0), (6.0, 8.5)]);
        // Pre-fill the output with garbage to prove it is cleared, not
        // appended to.
        let mut out = set(&[(100.0, 200.0)]);
        a.union_into(&b, &mut out);
        assert_eq!(out, a.union(&b));
        a.intersect_into(&b, &mut out);
        assert_eq!(out, a.intersect(&b));
        let span = (s(0.0), s(10.0));
        a.complement_within_into(span, &mut out);
        assert_eq!(out, a.complement_within(span));
        a.gaps_into(None, &mut out);
        assert_eq!(out, a.gaps(None));
        a.gaps_into(Some(span), &mut out);
        assert_eq!(out, a.gaps(Some(span)));
        // Empty-result paths also clear.
        let mut out = set(&[(100.0, 200.0)]);
        IntervalSet::new().gaps_into(Some(span), &mut out);
        assert!(out.is_empty());
        let mut out = set(&[(100.0, 200.0)]);
        a.complement_within_into((s(3.0), s(3.0)), &mut out);
        assert!(out.is_empty());
        // collect_into matches from_spans on unsorted, degenerate input.
        let raw_spans = vec![(s(5.0), s(5.0)), (s(4.0), s(6.0)), (s(0.0), s(2.0))];
        let mut out = set(&[(100.0, 200.0)]);
        IntervalSet::collect_into(raw_spans.iter().copied(), &mut out);
        assert_eq!(out, IntervalSet::from_spans(raw_spans));
        // clear keeps nothing behind.
        out.clear();
        assert!(out.is_empty());
    }

    #[test]
    fn batched_kernels_match_pairwise_folds() {
        let sets = [
            set(&[(0.0, 2.0), (5.0, 6.0), (8.0, 9.0)]),
            set(&[(1.0, 3.0), (6.0, 8.5)]),
            set(&[(0.5, 9.5)]),
            set(&[(2.5, 4.0), (7.0, 11.0)]),
        ];
        for n in 0..=sets.len() {
            let subset = &sets[..n];
            // union_many vs pairwise fold.
            let mut batched = IntervalSet::new();
            IntervalSet::union_many_into(subset, &mut batched);
            let folded = subset
                .iter()
                .fold(IntervalSet::new(), |acc, s| acc.union(s));
            assert_eq!(batched, folded, "union over {n} sets");
            // intersect_many vs pairwise fold (fold of zero sets is empty
            // by the batched convention; seed the fold with the first set).
            let mut cursors = Vec::new();
            IntervalSet::intersect_many_into(subset, &mut cursors, &mut batched);
            match subset {
                [] => assert!(batched.is_empty()),
                [first, rest @ ..] => {
                    let folded = rest.iter().fold(first.clone(), |acc, s| acc.intersect(s));
                    assert_eq!(batched, folded, "intersect over {n} sets");
                }
            }
        }
    }

    #[test]
    fn gaps_many_matches_per_set_gaps() {
        let sets = [
            set(&[(2.0, 3.0), (5.0, 7.0)]),
            IntervalSet::new(),
            set(&[(0.0, 10.0)]),
            set(&[(1.0, 2.0), (2.5, 4.0), (9.0, 9.5)]),
        ];
        for horizon in [None, Some((s(0.0), s(10.0)))] {
            let mut flat = vec![(s(-1.0), s(-1.0))];
            let mut offsets = vec![7usize];
            IntervalSet::gaps_many_into(&sets, horizon, &mut flat, &mut offsets);
            assert_eq!(offsets.len(), sets.len() + 1);
            assert_eq!(offsets[0], 0);
            assert_eq!(*offsets.last().unwrap(), flat.len());
            for (i, set) in sets.iter().enumerate() {
                let expect = set.gaps(horizon);
                assert_eq!(
                    &flat[offsets[i]..offsets[i + 1]],
                    expect.as_slice(),
                    "set {i}, horizon {horizon:?}"
                );
            }
        }
    }

    #[test]
    fn timeline_spans_and_queries() {
        let tl = Timeline::new(set(&[(2.0, 3.0)]), None);
        assert_eq!(tl.powered_span(), Some((s(2.0), s(3.0))));
        assert_eq!(tl.gaps(), IntervalSet::new());
        assert!(tl.is_busy_at(s(2.5)));
        assert!(!tl.is_busy_at(s(3.5)));
        let tl = Timeline::new(set(&[(2.0, 3.0)]), Some((s(0.0), s(4.0))));
        assert_eq!(tl.powered_span(), Some((s(0.0), s(4.0))));
        assert_eq!(raw(&tl.gaps()), vec![(0.0, 2.0), (3.0, 4.0)]);
        assert_eq!(tl.busy().len(), 1);
        assert_eq!(tl.horizon(), Some((s(0.0), s(4.0))));
    }
}
