//! The real-time task model of the SDEM problem.

use core::fmt;

use crate::{Cycles, Speed, TaskSetError, TaskSoa, Time, Workspace};

/// Identifier of a task within a [`TaskSet`].
///
/// Ids are caller-chosen and must be unique within a set; generators in
/// `sdem-workload` simply number tasks `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub usize);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A real-time task `T_i = (r_i, d_i, w_i)`.
///
/// The task releases `w_i` cycles of work at `r_i` that must complete by
/// `d_i`. Per the paper's model, a task accesses the shared memory during its
/// entire execution, is never preempted by the offline schemes and never
/// migrates between cores.
///
/// # Examples
///
/// ```
/// use sdem_types::{Task, Time, Cycles, Speed};
///
/// let t = Task::new(0, Time::from_millis(10.0), Time::from_millis(110.0), Cycles::new(2.0e6));
/// assert!((t.window().as_millis() - 100.0).abs() < 1e-9);
/// // The "filled speed" s_f occupies the whole feasible region.
/// assert!((t.filled_speed().as_mhz() - 20.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Task {
    id: TaskId,
    release: Time,
    deadline: Time,
    work: Cycles,
}

impl Task {
    /// Creates a task with the given id, release time, deadline and workload.
    ///
    /// Validation (positive window, non-negative work) happens when the task
    /// is placed into a [`TaskSet`].
    pub fn new(id: usize, release: Time, deadline: Time, work: Cycles) -> Self {
        Self {
            id: TaskId(id),
            release,
            deadline,
            work,
        }
    }

    /// The task identifier.
    #[inline]
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// Release time `r_i`.
    #[inline]
    pub fn release(&self) -> Time {
        self.release
    }

    /// Deadline `d_i`.
    #[inline]
    pub fn deadline(&self) -> Time {
        self.deadline
    }

    /// Workload `w_i` in cycles.
    #[inline]
    pub fn work(&self) -> Cycles {
        self.work
    }

    /// Length of the feasible region `|I_i| = d_i − r_i`.
    #[inline]
    pub fn window(&self) -> Time {
        self.deadline - self.release
    }

    /// Filled speed `s_{f i} = w_i / (d_i − r_i)`: the slowest speed at which
    /// the task still meets its deadline when started at release.
    #[inline]
    pub fn filled_speed(&self) -> Speed {
        self.work / self.window()
    }

    /// Time to execute the whole task at speed `s`.
    #[inline]
    pub fn execution_time(&self, speed: Speed) -> Time {
        self.work / speed
    }

    /// Returns a copy with the workload replaced (used by the online
    /// algorithm when accounting for partially executed tasks).
    #[must_use]
    pub fn with_work(&self, work: Cycles) -> Self {
        Self { work, ..*self }
    }

    /// Returns a copy with the release time replaced.
    #[must_use]
    pub fn with_release(&self, release: Time) -> Self {
        Self { release, ..*self }
    }

    fn validate(&self) -> Result<(), TaskSetError> {
        let finite = self.release.is_finite()
            && self.deadline.is_finite()
            && self.work.is_finite()
            && self.work.value() >= 0.0;
        if !finite {
            return Err(TaskSetError::InvalidTask(self.id));
        }
        if self.deadline <= self.release {
            return Err(TaskSetError::EmptyWindow(self.id));
        }
        Ok(())
    }
}

/// A validated, non-empty collection of [`Task`]s.
///
/// Construction checks each task (finite fields, non-negative work, positive
/// window) and id uniqueness. The set exposes the structural predicates that
/// select the paper's subproblems: common release time (§4) and agreeable
/// deadlines (§5).
///
/// # Examples
///
/// ```
/// use sdem_types::{Task, TaskSet, Time, Cycles};
///
/// # fn main() -> Result<(), sdem_types::TaskSetError> {
/// let set = TaskSet::new(vec![
///     Task::new(0, Time::ZERO, Time::from_millis(50.0), Cycles::new(1.0e6)),
///     Task::new(1, Time::from_millis(5.0), Time::from_millis(80.0), Cycles::new(2.0e6)),
/// ])?;
/// assert!(!set.is_common_release());
/// assert!(set.is_agreeable());
/// assert_eq!(set.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSet {
    tasks: Vec<Task>,
}

impl TaskSet {
    /// Builds a task set from the given tasks.
    ///
    /// # Errors
    ///
    /// Returns [`TaskSetError`] if the list is empty, any task is malformed,
    /// or two tasks share an id.
    pub fn new(tasks: Vec<Task>) -> Result<Self, TaskSetError> {
        if tasks.is_empty() {
            return Err(TaskSetError::Empty);
        }
        for t in &tasks {
            t.validate()?;
        }
        let mut ids: Vec<TaskId> = tasks.iter().map(Task::id).collect();
        ids.sort_unstable();
        for pair in ids.windows(2) {
            if pair[0] == pair[1] {
                return Err(TaskSetError::DuplicateId(pair[0]));
            }
        }
        Ok(Self { tasks })
    }

    /// Pooled [`Self::new`]: identical validation (same checks, same error
    /// values) with the duplicate-id scan running on workspace scratch, so
    /// a warm caller builds sets allocation-free. The online replanner
    /// constructs a roster set per scheduling event — this is its hot
    /// constructor.
    pub fn new_in(tasks: Vec<Task>, ws: &mut Workspace) -> Result<Self, TaskSetError> {
        if tasks.is_empty() {
            return Err(TaskSetError::Empty);
        }
        for t in &tasks {
            t.validate()?;
        }
        let mut ids = ws.take_usizes();
        ids.extend(tasks.iter().map(|t| t.id().0));
        ids.sort_unstable();
        let dup = ids
            .windows(2)
            .find(|pair| pair[0] == pair[1])
            .map(|pair| TaskId(pair[0]));
        ws.recycle_usizes(ids);
        match dup {
            Some(id) => Err(TaskSetError::DuplicateId(id)),
            None => Ok(Self { tasks }),
        }
    }

    /// Number of tasks.
    #[inline]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Always `false`: construction rejects empty sets. Provided for
    /// idiomatic pairing with [`TaskSet::len`].
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Read access to the tasks, in construction order.
    #[inline]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Consumes the set, returning the underlying task vector (e.g. to
    /// recycle its allocation into a [`crate::Workspace`]).
    #[inline]
    pub fn into_tasks(self) -> Vec<Task> {
        self.tasks
    }

    /// Iterates over the tasks.
    pub fn iter(&self) -> core::slice::Iter<'_, Task> {
        self.tasks.iter()
    }

    /// Looks up a task by id.
    pub fn get(&self, id: TaskId) -> Option<&Task> {
        self.tasks.iter().find(|t| t.id() == id)
    }

    /// Earliest release time over all tasks.
    pub fn earliest_release(&self) -> Time {
        self.tasks
            .iter()
            .map(Task::release)
            .min_by(Time::total_cmp)
            .expect("task set is non-empty")
    }

    /// Latest deadline over all tasks (`d_n` once sorted; the right edge of
    /// the maximal interval `I`).
    pub fn latest_deadline(&self) -> Time {
        self.tasks
            .iter()
            .map(Task::deadline)
            .max_by(Time::total_cmp)
            .expect("task set is non-empty")
    }

    /// Total workload of all tasks.
    pub fn total_work(&self) -> Cycles {
        self.tasks.iter().map(Task::work).sum()
    }

    /// `true` if all tasks share one release time (the §4 model).
    pub fn is_common_release(&self) -> bool {
        let r0 = self.tasks[0].release();
        self.tasks
            .iter()
            .all(|t| (t.release() - r0).abs() <= Time::from_secs(f64::EPSILON))
    }

    /// `true` if deadlines are agreeable: `r_i ≤ r_j` implies `d_i ≤ d_j`
    /// (the §5 model). Common-release sets are trivially agreeable.
    pub fn is_agreeable(&self) -> bool {
        let mut sorted: Vec<&Task> = self.tasks.iter().collect();
        sorted.sort_by(|a, b| {
            a.release()
                .total_cmp(&b.release())
                .then(a.deadline().total_cmp(&b.deadline()))
        });
        sorted
            .windows(2)
            .all(|p| p[0].deadline() <= p[1].deadline())
    }

    /// Returns the tasks sorted by increasing deadline, ties broken by
    /// release then id (the canonical order of §4.1 and §5).
    pub fn sorted_by_deadline(&self) -> Vec<Task> {
        let mut v = Vec::new();
        self.sorted_by_deadline_into(&mut v);
        v
    }

    /// In-place [`Self::sorted_by_deadline`] writing into a reusable
    /// buffer. Ids are unique per set, so the comparator is a total order
    /// and the unstable sort matches the stable one exactly.
    pub fn sorted_by_deadline_into(&self, out: &mut Vec<Task>) {
        out.clear();
        out.extend_from_slice(&self.tasks);
        out.sort_unstable_by(|a, b| {
            a.deadline()
                .total_cmp(&b.deadline())
                .then(a.release().total_cmp(&b.release()))
                .then(a.id().cmp(&b.id()))
        });
    }

    /// Returns the tasks sorted by increasing release time, ties broken by
    /// deadline then id (arrival order for the online algorithm).
    pub fn sorted_by_release(&self) -> Vec<Task> {
        let mut v = Vec::new();
        self.sorted_by_release_into(&mut v);
        v
    }

    /// In-place [`Self::sorted_by_release`] writing into a reusable buffer.
    pub fn sorted_by_release_into(&self, out: &mut Vec<Task>) {
        out.clear();
        out.extend_from_slice(&self.tasks);
        out.sort_unstable_by(|a, b| {
            a.release()
                .total_cmp(&b.release())
                .then(a.deadline().total_cmp(&b.deadline()))
                .then(a.id().cmp(&b.id()))
        });
    }

    /// Returns a copy with every workload multiplied by `factor` — the
    /// standard utilization knob for experiments.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    #[must_use]
    pub fn scale_work(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative"
        );
        Self {
            tasks: self
                .tasks
                .iter()
                .map(|t| t.with_work(Cycles::new(t.work().value() * factor)))
                .collect(),
        }
    }

    /// Returns a copy with every release and deadline shifted by `offset`
    /// (windows and workloads unchanged) — useful for splicing generated
    /// sets onto a common timeline.
    #[must_use]
    pub fn shift_time(&self, offset: Time) -> Self {
        Self {
            tasks: self
                .tasks
                .iter()
                .map(|t| {
                    Task::new(
                        t.id().0,
                        t.release() + offset,
                        t.deadline() + offset,
                        t.work(),
                    )
                })
                .collect(),
        }
    }

    /// `true` if the tasks are already in canonical order (see
    /// [`Self::canonicalize`]).
    pub fn is_canonical(&self) -> bool {
        self.tasks
            .windows(2)
            .all(|p| canonical_cmp(&p[0], &p[1]).is_lt())
    }

    /// Returns a copy with the tasks in **canonical order**: sorted by
    /// release, then deadline, then workload, then id. Ids are unique, so
    /// this is a total order and the result is independent of the input
    /// permutation.
    ///
    /// Several solvers (and the simulator's tie-breaking) are sensitive to
    /// task *order*, not just task *content* — e.g. core assignment follows
    /// enumeration order. Canonicalizing first makes the solve a pure
    /// function of the task multiset, which is what the `sdem-serve` cache
    /// keys on: permuted requests collapse onto one cache entry whose
    /// memoized solution is bit-identical to a cold solve of either
    /// permutation.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdem_types::{Cycles, Task, TaskSet, Time};
    ///
    /// # fn main() -> Result<(), sdem_types::TaskSetError> {
    /// let a = TaskSet::new(vec![
    ///     Task::new(1, Time::ZERO, Time::from_millis(80.0), Cycles::new(2.0e6)),
    ///     Task::new(0, Time::ZERO, Time::from_millis(40.0), Cycles::new(1.0e6)),
    /// ])?;
    /// let b = TaskSet::new(a.tasks().iter().rev().copied().collect())?;
    /// assert_eq!(a.canonicalize(), b.canonicalize());
    /// assert_eq!(a.canonical_hash(), b.canonical_hash());
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn canonicalize(&self) -> Self {
        let mut tasks = self.tasks.clone();
        tasks.sort_unstable_by(canonical_cmp);
        Self { tasks }
    }

    /// A 64-bit hash of the task multiset, invariant under task order.
    ///
    /// The hash folds each task's `(release, deadline, work)` bit patterns
    /// and id — in canonical order — through FNV-1a, so two sets hash
    /// equally iff they contain the same tasks (up to the astronomically
    /// unlikely FNV collision; cache users must still compare canonicalized
    /// sets on hit). `-0.0` and `+0.0` hash differently by design: the
    /// solvers see the bit patterns, so the cache must too.
    pub fn canonical_hash(&self) -> u64 {
        self.canonical_hash_in(&mut Workspace::new())
    }

    /// Pooled [`Self::canonical_hash`]: materializes the SoA view and the
    /// canonical argsort on workspace scratch, then folds the columns
    /// through FNV-1a in the same field-bit order as always (length, then
    /// per task id, release bits, deadline bits, work bits), so a warm
    /// serve worker hashes every request allocation-free. The value is
    /// pinned against the historical per-[`Task`] implementation by a
    /// dedicated test in `sdem-serve`.
    pub fn canonical_hash_in(&self, ws: &mut Workspace) -> u64 {
        let mut soa = ws.take_soa();
        let mut order = ws.take_usizes();
        self.fill_soa(&mut soa);
        soa.canonical_order_into(&mut order);
        let h = soa.hash_in_order(&order);
        ws.recycle_usizes(order);
        ws.recycle_soa(soa);
        h
    }

    /// Materializes the structure-of-arrays hot view of this set into
    /// `soa` (cleared first), in construction order. See
    /// [`TaskSoa`] for the column conventions.
    pub fn fill_soa(&self, soa: &mut TaskSoa) {
        soa.clear();
        for t in &self.tasks {
            soa.ids.push(t.id().0);
            soa.releases.push(t.release().as_secs());
            soa.deadlines.push(t.deadline().as_secs());
            soa.works.push(t.work().value());
            soa.flags.push(t.work().value() != 0.0);
        }
    }

    /// Largest filled speed over all tasks; any platform with
    /// `s_up ≥ max_filled_speed` admits a feasible schedule.
    pub fn max_filled_speed(&self) -> Speed {
        self.tasks
            .iter()
            .map(Task::filled_speed)
            .max_by(Speed::total_cmp)
            .expect("task set is non-empty")
    }
}

/// The canonical total order on tasks: release, deadline, work, id.
fn canonical_cmp(a: &Task, b: &Task) -> core::cmp::Ordering {
    a.release()
        .total_cmp(&b.release())
        .then(a.deadline().total_cmp(&b.deadline()))
        .then(a.work().total_cmp(&b.work()))
        .then(a.id().cmp(&b.id()))
}

impl<'a> IntoIterator for &'a TaskSet {
    type Item = &'a Task;
    type IntoIter = core::slice::Iter<'a, Task>;

    fn into_iter(self) -> Self::IntoIter {
        self.tasks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(id: usize, r: f64, d: f64, w: f64) -> Task {
        Task::new(
            id,
            Time::from_millis(r),
            Time::from_millis(d),
            Cycles::new(w),
        )
    }

    #[test]
    fn task_accessors() {
        let t = task(3, 10.0, 60.0, 1.0e6);
        assert_eq!(t.id(), TaskId(3));
        assert!((t.window().as_millis() - 50.0).abs() < 1e-9);
        assert!((t.filled_speed().as_mhz() - 20.0).abs() < 1e-9);
        let s = Speed::from_mhz(100.0);
        assert!((t.execution_time(s).as_millis() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn with_work_and_with_release() {
        let t = task(0, 0.0, 10.0, 5.0);
        let t2 = t.with_work(Cycles::new(2.0));
        assert_eq!(t2.work().value(), 2.0);
        assert_eq!(t2.deadline(), t.deadline());
        let t3 = t.with_release(Time::from_millis(4.0));
        assert!((t3.window().as_millis() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(TaskSet::new(vec![]), Err(TaskSetError::Empty));
    }

    #[test]
    fn rejects_duplicate_ids() {
        let r = TaskSet::new(vec![task(1, 0.0, 10.0, 1.0), task(1, 0.0, 20.0, 1.0)]);
        assert_eq!(r, Err(TaskSetError::DuplicateId(TaskId(1))));
    }

    #[test]
    fn rejects_empty_window() {
        let r = TaskSet::new(vec![task(0, 10.0, 10.0, 1.0)]);
        assert_eq!(r, Err(TaskSetError::EmptyWindow(TaskId(0))));
    }

    #[test]
    fn rejects_negative_work_and_nan() {
        let r = TaskSet::new(vec![task(0, 0.0, 10.0, -1.0)]);
        assert_eq!(r, Err(TaskSetError::InvalidTask(TaskId(0))));
        let r = TaskSet::new(vec![Task::new(
            0,
            Time::from_secs(f64::NAN),
            Time::from_secs(1.0),
            Cycles::new(1.0),
        )]);
        assert_eq!(r, Err(TaskSetError::InvalidTask(TaskId(0))));
    }

    #[test]
    fn accepts_zero_work() {
        assert!(TaskSet::new(vec![task(0, 0.0, 10.0, 0.0)]).is_ok());
    }

    #[test]
    fn classification_common_release() {
        let set = TaskSet::new(vec![task(0, 5.0, 10.0, 1.0), task(1, 5.0, 20.0, 1.0)]).unwrap();
        assert!(set.is_common_release());
        assert!(set.is_agreeable());
        let set = TaskSet::new(vec![task(0, 5.0, 10.0, 1.0), task(1, 6.0, 20.0, 1.0)]).unwrap();
        assert!(!set.is_common_release());
    }

    #[test]
    fn classification_agreeable() {
        // Nested windows violate agreeability.
        let nested =
            TaskSet::new(vec![task(0, 0.0, 100.0, 1.0), task(1, 10.0, 50.0, 1.0)]).unwrap();
        assert!(!nested.is_agreeable());
        let agree = TaskSet::new(vec![
            task(0, 0.0, 30.0, 1.0),
            task(1, 10.0, 50.0, 1.0),
            task(2, 10.0, 60.0, 1.0),
        ])
        .unwrap();
        assert!(agree.is_agreeable());
    }

    #[test]
    fn equal_releases_with_any_deadlines_are_agreeable() {
        let set = TaskSet::new(vec![task(0, 0.0, 100.0, 1.0), task(1, 0.0, 50.0, 1.0)]).unwrap();
        assert!(set.is_agreeable());
    }

    #[test]
    fn aggregates() {
        let set = TaskSet::new(vec![
            task(0, 5.0, 60.0, 2.0e6),
            task(1, 2.0, 40.0, 3.0e6),
            task(2, 8.0, 90.0, 1.0e6),
        ])
        .unwrap();
        assert!((set.earliest_release().as_millis() - 2.0).abs() < 1e-12);
        assert!((set.latest_deadline().as_millis() - 90.0).abs() < 1e-12);
        assert!((set.total_work().value() - 6.0e6).abs() < 1.0);
        let sorted = set.sorted_by_deadline();
        assert_eq!(
            sorted.iter().map(|t| t.id().0).collect::<Vec<_>>(),
            vec![1, 0, 2]
        );
        let by_release = set.sorted_by_release();
        assert_eq!(
            by_release.iter().map(|t| t.id().0).collect::<Vec<_>>(),
            vec![1, 0, 2]
        );
    }

    #[test]
    fn max_filled_speed_is_max() {
        let set = TaskSet::new(vec![task(0, 0.0, 10.0, 1.0e6), task(1, 0.0, 10.0, 4.0e6)]).unwrap();
        assert!((set.max_filled_speed().as_mhz() - 400.0).abs() < 1e-9);
    }

    #[test]
    fn lookup_and_iteration() {
        let set = TaskSet::new(vec![task(0, 0.0, 10.0, 1.0), task(5, 0.0, 20.0, 2.0)]).unwrap();
        assert_eq!(set.get(TaskId(5)).unwrap().work().value(), 2.0);
        assert!(set.get(TaskId(9)).is_none());
        assert_eq!(set.iter().count(), 2);
        assert_eq!((&set).into_iter().count(), 2);
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
    }

    #[test]
    fn task_id_display() {
        assert_eq!(TaskId(4).to_string(), "T4");
    }

    #[test]
    fn scale_work_multiplies_everything() {
        let set = TaskSet::new(vec![task(0, 0.0, 10.0, 4.0), task(1, 0.0, 20.0, 6.0)]).unwrap();
        let scaled = set.scale_work(0.5);
        assert_eq!(scaled.total_work().value(), 5.0);
        assert_eq!(scaled.tasks()[0].deadline(), set.tasks()[0].deadline());
    }

    #[test]
    fn shift_time_preserves_windows() {
        let set = TaskSet::new(vec![task(0, 5.0, 15.0, 1.0)]).unwrap();
        let shifted = set.shift_time(Time::from_millis(100.0));
        let t = &shifted.tasks()[0];
        assert!((t.release().as_millis() - 105.0).abs() < 1e-9);
        assert!((t.window().as_millis() - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scale_work_rejects_negative() {
        let set = TaskSet::new(vec![task(0, 0.0, 10.0, 1.0)]).unwrap();
        let _ = set.scale_work(-1.0);
    }

    #[test]
    fn canonicalize_is_permutation_invariant() {
        let tasks = vec![
            task(2, 5.0, 60.0, 2.0e6),
            task(0, 0.0, 40.0, 3.0e6),
            task(1, 0.0, 40.0, 4.0e6),
        ];
        let forward = TaskSet::new(tasks.clone()).unwrap();
        let reversed = TaskSet::new(tasks.into_iter().rev().collect()).unwrap();
        assert_ne!(forward, reversed);
        assert_eq!(forward.canonicalize(), reversed.canonicalize());
        assert_eq!(forward.canonical_hash(), reversed.canonical_hash());
        assert!(forward.canonicalize().is_canonical());
        assert!(!reversed.is_canonical());
    }

    #[test]
    fn canonical_order_breaks_ties_by_work_then_id() {
        let set = TaskSet::new(vec![
            task(3, 0.0, 10.0, 2.0),
            task(1, 0.0, 10.0, 2.0),
            task(2, 0.0, 10.0, 1.0),
        ])
        .unwrap();
        let ids: Vec<usize> = set.canonicalize().iter().map(|t| t.id().0).collect();
        assert_eq!(ids, vec![2, 1, 3]);
    }

    #[test]
    fn canonical_hash_distinguishes_content() {
        let a = TaskSet::new(vec![task(0, 0.0, 10.0, 1.0)]).unwrap();
        let b = TaskSet::new(vec![task(0, 0.0, 10.0, 2.0)]).unwrap();
        let c = TaskSet::new(vec![task(1, 0.0, 10.0, 1.0)]).unwrap();
        assert_ne!(a.canonical_hash(), b.canonical_hash());
        assert_ne!(a.canonical_hash(), c.canonical_hash());
        // Stable across independently built equal sets.
        let a2 = TaskSet::new(vec![task(0, 0.0, 10.0, 1.0)]).unwrap();
        assert_eq!(a.canonical_hash(), a2.canonical_hash());
    }

    #[test]
    fn new_in_matches_new_on_every_error_path() {
        let mut ws = Workspace::new();
        let cases: Vec<Vec<Task>> = vec![
            vec![],
            vec![task(1, 0.0, 10.0, 1.0), task(1, 0.0, 20.0, 1.0)],
            vec![task(0, 10.0, 10.0, 1.0)],
            vec![task(0, 0.0, 10.0, -1.0)],
            vec![task(0, 0.0, 10.0, 1.0), task(1, 0.0, 20.0, 2.0)],
        ];
        for tasks in cases {
            assert_eq!(TaskSet::new_in(tasks.clone(), &mut ws), TaskSet::new(tasks));
        }
    }

    #[test]
    fn canonical_hash_in_matches_allocating_hash() {
        let set = TaskSet::new(vec![
            task(2, 5.0, 60.0, 2.0e6),
            task(0, 0.0, 40.0, 3.0e6),
            task(1, 0.0, 40.0, 4.0e6),
        ])
        .unwrap();
        let mut ws = Workspace::new();
        assert_eq!(set.canonical_hash_in(&mut ws), set.canonical_hash());
        // Warm reuse gives the same value.
        assert_eq!(set.canonical_hash_in(&mut ws), set.canonical_hash());
    }

    #[test]
    fn canonical_hash_separates_zero_signs() {
        let plus = TaskSet::new(vec![task(0, 0.0, 10.0, 0.0)]).unwrap();
        let minus = TaskSet::new(vec![task(0, -0.0, 10.0, 0.0)]).unwrap();
        assert_ne!(plus.canonical_hash(), minus.canonical_hash());
    }
}
