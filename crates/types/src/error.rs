//! Error types for task-set construction and schedule validation.

use core::fmt;

use crate::{CoreId, TaskId};

/// Reasons a [`crate::TaskSet`] cannot be constructed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TaskSetError {
    /// The task list was empty.
    Empty,
    /// Two tasks carry the same identifier.
    DuplicateId(TaskId),
    /// A task's deadline is not strictly after its release.
    EmptyWindow(TaskId),
    /// A task has negative workload, or a non-finite field.
    InvalidTask(TaskId),
}

impl fmt::Display for TaskSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Empty => write!(f, "task set must contain at least one task"),
            Self::DuplicateId(id) => write!(f, "duplicate task id {id}"),
            Self::EmptyWindow(id) => {
                write!(f, "task {id} has deadline not strictly after release")
            }
            Self::InvalidTask(id) => {
                write!(f, "task {id} has negative workload or non-finite fields")
            }
        }
    }
}

impl std::error::Error for TaskSetError {}

/// Reasons a [`crate::Schedule`] is rejected by validation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// A task appears in the schedule but not in the task set (or twice).
    UnknownTask(TaskId),
    /// A task from the task set has no placement.
    MissingTask(TaskId),
    /// A segment has non-positive length, negative speed, or non-finite data.
    MalformedSegment(TaskId),
    /// Segments of one task overlap or are out of order.
    OverlappingSegments(TaskId),
    /// A task executes outside its `[release, deadline]` window.
    OutsideWindow(TaskId),
    /// A task's executed work does not match its required workload.
    WorkMismatch {
        /// The offending task.
        task: TaskId,
        /// Work executed by the schedule, in cycles.
        executed: f64,
        /// Work required by the task, in cycles.
        required: f64,
    },
    /// Two tasks overlap in time on the same core.
    CoreConflict(CoreId, TaskId, TaskId),
    /// A segment runs faster than the platform's maximum speed.
    SpeedAboveMax(TaskId),
    /// A segment runs slower than the platform's minimum speed.
    SpeedBelowMin(TaskId),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownTask(id) => write!(f, "schedule references unknown task {id}"),
            Self::MissingTask(id) => write!(f, "schedule is missing task {id}"),
            Self::MalformedSegment(id) => write!(f, "task {id} has a malformed segment"),
            Self::OverlappingSegments(id) => {
                write!(f, "task {id} has overlapping or unordered segments")
            }
            Self::OutsideWindow(id) => {
                write!(f, "task {id} executes outside its feasible region")
            }
            Self::WorkMismatch {
                task,
                executed,
                required,
            } => write!(
                f,
                "task {task} executes {executed} cycles but requires {required}"
            ),
            Self::CoreConflict(core, a, b) => {
                write!(f, "tasks {a} and {b} overlap on core {core}")
            }
            Self::SpeedAboveMax(id) => write!(f, "task {id} exceeds the maximum speed"),
            Self::SpeedBelowMin(id) => write!(f, "task {id} runs below the minimum speed"),
        }
    }
}

impl std::error::Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_set_error_messages() {
        assert_eq!(
            TaskSetError::Empty.to_string(),
            "task set must contain at least one task"
        );
        assert!(TaskSetError::DuplicateId(TaskId(3))
            .to_string()
            .contains("3"));
        assert!(TaskSetError::EmptyWindow(TaskId(1))
            .to_string()
            .contains("deadline"));
        assert!(TaskSetError::InvalidTask(TaskId(2))
            .to_string()
            .contains("workload"));
    }

    #[test]
    fn schedule_error_messages() {
        let e = ScheduleError::WorkMismatch {
            task: TaskId(7),
            executed: 1.0,
            required: 2.0,
        };
        let msg = e.to_string();
        assert!(msg.contains("7") && msg.contains("1") && msg.contains("2"));
        assert!(ScheduleError::CoreConflict(CoreId(0), TaskId(1), TaskId(2))
            .to_string()
            .contains("overlap"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<TaskSetError>();
        assert_err::<ScheduleError>();
    }
}
