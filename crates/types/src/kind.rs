//! The workspace-wide error taxonomy.
//!
//! Every failure that can cross a process boundary — a wire-protocol error
//! response from `sdem serve`, a CLI exit code, a quarantine record in a
//! sweep journal — is classified by an [`ErrorKind`] with a **stable string
//! code**. The codes are a compatibility surface: external tooling greps
//! quarantine JSONL for `"kind":"solver-panic"` and shell scripts branch on
//! exit codes, so codes are append-only — existing ones never change
//! meaning, renumber, or disappear.
//!
//! Richer error types (`SdemError`, `TrialError`, `ApiError`) carry the
//! detail; `ErrorKind` is the part that is promised to stay put.

use core::fmt;

/// Stable classification of every error the workspace reports externally.
///
/// The wire protocol (`sdem-serve`), CLI exit codes (`sdem-cli`) and sweep
/// quarantine records (`sdem-exec`) all spell errors with these codes, so a
/// failure observed in one layer can be correlated with the same failure in
/// another without string matching on free-form messages.
///
/// # Examples
///
/// ```
/// use sdem_types::ErrorKind;
///
/// assert_eq!(ErrorKind::SolverPanic.code(), "solver-panic");
/// assert_eq!(ErrorKind::from_code("solver-panic"), Some(ErrorKind::SolverPanic));
/// assert_ne!(ErrorKind::SolverPanic.exit_code(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorKind {
    /// A scheme rejected the input (wrong structure for the algorithm,
    /// unsupported model, too many tasks for an exact solver).
    SchemeError,
    /// The input admits no feasible schedule on the given platform.
    InfeasibleInput,
    /// A baseline scheduler failed.
    BaselineError,
    /// The simulator rejected a schedule that a solver produced.
    SimulationError,
    /// A solver or simulation produced a non-finite energy.
    NonFiniteEnergy,
    /// An oracle cross-check disagreed with the primary solver.
    OracleDivergence,
    /// A solver panicked and the panic was contained.
    SolverPanic,
    /// A trial kept failing after exhausting its retry budget.
    RetryBudgetExhausted,
    /// A request was malformed at the protocol boundary (bad JSON, missing
    /// fields, non-finite numbers).
    BadRequest,
    /// A request's deadline expired before a worker could start it.
    DeadlineExpired,
    /// The service shed the request because its queue was full.
    Overloaded,
    /// The service is draining and no longer admits requests.
    Shutdown,
    /// A sweep checkpoint journal was unreadable or inconsistent.
    CheckpointError,
    /// A sweep worker died outside the per-trial quarantine.
    WorkerPanic,
    /// The command line itself was malformed (unknown flag, bad value).
    Usage,
    /// An I/O operation (file, socket, pipe) failed.
    Io,
    /// A failure that fits no other bucket. Also the decode fallback for
    /// codes minted by a newer version of the workspace.
    Internal,
}

/// Every kind, in stable declaration order (handy for exhaustive tests).
pub const ERROR_KINDS: &[ErrorKind] = &[
    ErrorKind::SchemeError,
    ErrorKind::InfeasibleInput,
    ErrorKind::BaselineError,
    ErrorKind::SimulationError,
    ErrorKind::NonFiniteEnergy,
    ErrorKind::OracleDivergence,
    ErrorKind::SolverPanic,
    ErrorKind::RetryBudgetExhausted,
    ErrorKind::BadRequest,
    ErrorKind::DeadlineExpired,
    ErrorKind::Overloaded,
    ErrorKind::Shutdown,
    ErrorKind::CheckpointError,
    ErrorKind::WorkerPanic,
    ErrorKind::Usage,
    ErrorKind::Io,
    ErrorKind::Internal,
];

impl ErrorKind {
    /// The stable string code. Append-only: codes never change meaning.
    pub const fn code(self) -> &'static str {
        match self {
            Self::SchemeError => "scheme-error",
            Self::InfeasibleInput => "infeasible-input",
            Self::BaselineError => "baseline-error",
            Self::SimulationError => "simulation-error",
            Self::NonFiniteEnergy => "non-finite-energy",
            Self::OracleDivergence => "oracle-divergence",
            Self::SolverPanic => "solver-panic",
            Self::RetryBudgetExhausted => "retry-budget-exhausted",
            Self::BadRequest => "bad-request",
            Self::DeadlineExpired => "deadline-expired",
            Self::Overloaded => "overloaded",
            Self::Shutdown => "shutdown",
            Self::CheckpointError => "checkpoint-error",
            Self::WorkerPanic => "worker-panic",
            Self::Usage => "usage",
            Self::Io => "io-error",
            Self::Internal => "internal",
        }
    }

    /// Decodes a stable string code; `None` for unknown codes (callers that
    /// must not fail use `from_code(..).unwrap_or(ErrorKind::Internal)`).
    pub fn from_code(code: &str) -> Option<Self> {
        ERROR_KINDS.iter().copied().find(|k| k.code() == code)
    }

    /// The process exit code the CLI uses for this kind. `0` is reserved
    /// for success and `1` for untyped failures, so every kind maps to a
    /// distinct value `≥ 2`. Stable, like the string codes.
    pub const fn exit_code(self) -> u8 {
        match self {
            Self::Usage => 2,
            Self::BadRequest => 3,
            Self::SchemeError => 4,
            Self::InfeasibleInput => 5,
            Self::BaselineError => 6,
            Self::SimulationError => 7,
            Self::NonFiniteEnergy => 8,
            Self::OracleDivergence => 9,
            Self::SolverPanic => 10,
            Self::RetryBudgetExhausted => 11,
            Self::DeadlineExpired => 12,
            Self::Overloaded => 13,
            Self::Shutdown => 14,
            Self::CheckpointError => 15,
            Self::WorkerPanic => 16,
            Self::Io => 17,
            Self::Internal => 18,
        }
    }

    /// `true` for kinds that describe load conditions rather than bad input
    /// or broken solvers — a client may retry these verbatim.
    pub const fn is_retryable(self) -> bool {
        matches!(self, Self::Overloaded | Self::DeadlineExpired)
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for &k in ERROR_KINDS {
            assert_eq!(ErrorKind::from_code(k.code()), Some(k), "{k:?}");
        }
        assert_eq!(ErrorKind::from_code("no-such-code"), None);
    }

    #[test]
    fn codes_are_unique_kebab_case() {
        for (i, a) in ERROR_KINDS.iter().enumerate() {
            assert!(a.code().chars().all(|c| c.is_ascii_lowercase() || c == '-'));
            for b in &ERROR_KINDS[i + 1..] {
                assert_ne!(a.code(), b.code());
            }
        }
    }

    #[test]
    fn exit_codes_are_distinct_and_nonzero() {
        for (i, a) in ERROR_KINDS.iter().enumerate() {
            assert!(a.exit_code() >= 2, "{a:?} must not collide with 0/1");
            for b in &ERROR_KINDS[i + 1..] {
                assert_ne!(a.exit_code(), b.exit_code(), "{a:?} vs {b:?}");
            }
        }
    }

    // The codes below are pinned verbatim: quarantine JSONL written by
    // earlier releases already contains them, so changing any of these
    // strings breaks journal compatibility.
    #[test]
    fn legacy_quarantine_codes_are_pinned() {
        assert_eq!(ErrorKind::SchemeError.code(), "scheme-error");
        assert_eq!(ErrorKind::InfeasibleInput.code(), "infeasible-input");
        assert_eq!(ErrorKind::BaselineError.code(), "baseline-error");
        assert_eq!(ErrorKind::SimulationError.code(), "simulation-error");
        assert_eq!(ErrorKind::NonFiniteEnergy.code(), "non-finite-energy");
        assert_eq!(ErrorKind::OracleDivergence.code(), "oracle-divergence");
        assert_eq!(ErrorKind::SolverPanic.code(), "solver-panic");
        assert_eq!(
            ErrorKind::RetryBudgetExhausted.code(),
            "retry-budget-exhausted"
        );
    }

    #[test]
    fn retryable_split() {
        assert!(ErrorKind::Overloaded.is_retryable());
        assert!(ErrorKind::DeadlineExpired.is_retryable());
        assert!(!ErrorKind::BadRequest.is_retryable());
        assert!(!ErrorKind::SolverPanic.is_retryable());
    }

    #[test]
    fn display_is_the_code() {
        assert_eq!(ErrorKind::Overloaded.to_string(), "overloaded");
    }
}
