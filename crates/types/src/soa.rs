//! Structure-of-arrays hot view of a [`TaskSet`].
//!
//! The AoS [`Task`] remains the constructor and storage form — validation,
//! the public API and the wire protocol all speak `Task`. The sweep hot
//! path, however, spends its time in sort/scan loops over one field at a
//! time (releases for arrival order, deadlines for EDF order, works for
//! feasibility), where a struct-of-arrays layout keeps each loop on one
//! contiguous `f64` slice. [`TaskSoa`] is that view: parallel
//! `ids/releases/deadlines/works/flags` columns materialized into
//! [`Workspace`](crate::Workspace) pools via
//! [`TaskSet::fill_soa`](crate::TaskSet::fill_soa), so a warmed workspace
//! re-materializes it allocation-free every trial.
//!
//! The view is plain scalars on purpose: releases/deadlines are seconds
//! (`Time::as_secs`), works are cycles (`Cycles::value`). Converting back
//! through `Time::from_secs`/`Cycles::new` is a newtype round trip, so
//! algorithms running on the view are bit-identical to their AoS
//! counterparts.

#[cfg(doc)]
use crate::TaskSet;
use crate::{Cycles, Task, Time};

/// A task flattened to plain scalars: `(id, release_s, deadline_s, work)`.
///
/// This is the row form shared by the single-core baseline policies (as
/// both their job and run representation) and the SoA view, so one
/// `Workspace` pool serves them all.
pub type TaskRow = (crate::TaskId, f64, f64, f64);

/// Parallel per-field columns of a task set (see the module docs).
///
/// Invariant: all five columns have equal length. The columns are public
/// so hot loops can borrow them independently (e.g. sort an index vector
/// by `releases` while reading `deadlines`).
///
/// # Examples
///
/// ```
/// use sdem_types::{Cycles, Task, TaskSet, Time, Workspace};
///
/// # fn main() -> Result<(), sdem_types::TaskSetError> {
/// let set = TaskSet::new(vec![
///     Task::new(0, Time::ZERO, Time::from_secs(2.0), Cycles::new(3.0)),
///     Task::new(1, Time::ZERO, Time::from_secs(5.0), Cycles::new(0.0)),
/// ])?;
/// let mut ws = Workspace::new();
/// let mut soa = ws.take_soa();
/// set.fill_soa(&mut soa);
/// assert_eq!(soa.len(), 2);
/// assert_eq!(soa.deadlines, [2.0, 5.0]);
/// assert_eq!(soa.flags, [true, false]); // flags[i] = task i has work
/// assert!(soa.is_common_release());
/// ws.recycle_soa(soa);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default, Clone, PartialEq)]
pub struct TaskSoa {
    /// Raw task ids (`TaskId::0`), in the source set's order.
    pub ids: Vec<usize>,
    /// Release times in seconds.
    pub releases: Vec<f64>,
    /// Deadlines in seconds.
    pub deadlines: Vec<f64>,
    /// Workloads in cycles.
    pub works: Vec<f64>,
    /// `true` when the task has non-zero work (zero-work tasks never
    /// execute, so schedulers special-case them without touching `works`).
    pub flags: Vec<bool>,
}

impl TaskSoa {
    /// Number of tasks in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when the view holds no tasks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Empties every column, keeping the allocations for reuse.
    pub fn clear(&mut self) {
        self.ids.clear();
        self.releases.clear();
        self.deadlines.clear();
        self.works.clear();
        self.flags.clear();
    }

    /// Reconstructs row `i` as an AoS [`Task`] (a newtype round trip, so
    /// the result is bit-identical to the task the view was filled from).
    #[inline]
    pub fn task(&self, i: usize) -> Task {
        Task::new(
            self.ids[i],
            Time::from_secs(self.releases[i]),
            Time::from_secs(self.deadlines[i]),
            Cycles::new(self.works[i]),
        )
    }

    /// Slice-level [`TaskSet::is_common_release`]: identical comparison,
    /// contiguous column scan.
    pub fn is_common_release(&self) -> bool {
        let Some(&r0) = self.releases.first() else {
            return true;
        };
        self.releases
            .iter()
            .all(|&r| (r - r0).abs() <= f64::EPSILON)
    }

    /// Fills `out` with `0..len` sorted by the canonical total order
    /// (release, deadline, work, id) read from the columns — the argsort
    /// behind [`TaskSet::canonical_hash`]. The id tiebreak makes the
    /// comparator total, so the unstable sort is deterministic.
    pub fn canonical_order_into(&self, out: &mut Vec<usize>) {
        out.clear();
        out.extend(0..self.len());
        out.sort_unstable_by(|&a, &b| {
            self.releases[a]
                .total_cmp(&self.releases[b])
                .then(self.deadlines[a].total_cmp(&self.deadlines[b]))
                .then(self.works[a].total_cmp(&self.works[b]))
                .then(self.ids[a].cmp(&self.ids[b]))
        });
    }

    /// Fills `out` with `0..len` sorted by (release, deadline, id) — the
    /// arrival order of [`TaskSet::sorted_by_release`], as an argsort over
    /// the columns. Same total comparator, so the orders are identical.
    pub fn arrival_order_into(&self, out: &mut Vec<usize>) {
        out.clear();
        out.extend(0..self.len());
        out.sort_unstable_by(|&a, &b| {
            self.releases[a]
                .total_cmp(&self.releases[b])
                .then(self.deadlines[a].total_cmp(&self.deadlines[b]))
                .then(self.ids[a].cmp(&self.ids[b]))
        });
    }

    /// FNV-1a 64-bit over the columns in `order`, eating exactly the byte
    /// sequence of the historical per-`Task` hash: the set length, then per
    /// task its id, release bits, deadline bits and work bits. See
    /// [`TaskSet::canonical_hash`] for the contract this pins.
    pub fn hash_in_order(&self, order: &[usize]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.len() as u64);
        for &i in order {
            eat(self.ids[i] as u64);
            eat(self.releases[i].to_bits());
            eat(self.deadlines[i].to_bits());
            eat(self.works[i].to_bits());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TaskSet, Workspace};

    fn set(specs: &[(usize, f64, f64, f64)]) -> TaskSet {
        TaskSet::new(
            specs
                .iter()
                .map(|&(id, r, d, w)| {
                    Task::new(id, Time::from_secs(r), Time::from_secs(d), Cycles::new(w))
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn fill_round_trips_bit_exactly() {
        let s = set(&[(3, 0.5, 2.0, 1.5), (0, -0.0, 9.0, 0.0), (7, 1.0, 4.0, 2.5)]);
        let mut soa = TaskSoa::default();
        s.fill_soa(&mut soa);
        assert_eq!(soa.len(), 3);
        for (i, t) in s.iter().enumerate() {
            assert_eq!(&soa.task(i), t);
        }
        // -0.0 survives the round trip bit-exactly.
        assert_eq!(soa.releases[1].to_bits(), (-0.0f64).to_bits());
        assert_eq!(soa.flags, [true, false, true]);
    }

    #[test]
    fn common_release_matches_aos() {
        let common = set(&[(0, 1.0, 2.0, 1.0), (1, 1.0, 3.0, 1.0)]);
        let spread = set(&[(0, 1.0, 2.0, 1.0), (1, 1.5, 3.0, 1.0)]);
        let mut soa = TaskSoa::default();
        for s in [&common, &spread] {
            s.fill_soa(&mut soa);
            assert_eq!(soa.is_common_release(), s.is_common_release());
        }
    }

    #[test]
    fn canonical_order_breaks_all_ties() {
        let s = set(&[
            (3, 0.0, 10.0, 2.0),
            (1, 0.0, 10.0, 2.0),
            (2, 0.0, 10.0, 1.0),
        ]);
        let mut soa = TaskSoa::default();
        s.fill_soa(&mut soa);
        let mut order = Vec::new();
        soa.canonical_order_into(&mut order);
        let ids: Vec<usize> = order.iter().map(|&i| soa.ids[i]).collect();
        assert_eq!(ids, vec![2, 1, 3]);
    }

    #[test]
    fn arrival_order_matches_sorted_by_release() {
        let s = set(&[
            (3, 1.0, 10.0, 2.0),
            (1, 0.0, 10.0, 2.0),
            (2, 0.0, 8.0, 1.0),
            (0, 1.0, 10.0, 1.0),
        ]);
        let mut soa = TaskSoa::default();
        s.fill_soa(&mut soa);
        let mut order = Vec::new();
        soa.arrival_order_into(&mut order);
        let by_order: Vec<Task> = order.iter().map(|&i| soa.task(i)).collect();
        assert_eq!(by_order, s.sorted_by_release());
    }

    #[test]
    fn soa_pool_recycles_column_capacity() {
        let s = set(&[(0, 0.0, 1.0, 1.0), (1, 0.0, 2.0, 1.0)]);
        let mut ws = Workspace::new();
        let mut soa = ws.take_soa();
        s.fill_soa(&mut soa);
        let cap = soa.ids.capacity();
        ws.recycle_soa(soa);
        let soa = ws.take_soa();
        assert!(soa.is_empty());
        assert!(soa.ids.capacity() >= cap);
    }
}
