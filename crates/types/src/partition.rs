//! Task→core partition state for the bounded-core solvers.
//!
//! The §3 bounded-core problem assigns every task to one of `C` cores and
//! then sizes a shared busy interval; all three solver tiers (exact
//! enumeration, branch-and-bound, LPT + local search) explore the same
//! state: *which core each task sits on* plus *each core's accumulated
//! load*. [`Partition`] is that state as two parallel columns over the
//! [`TaskSoa`](crate::TaskSoa) view — `assignment[i]` is the core of task
//! `i` (by SoA row index), `loads[c]` the summed work on core `c` — so the
//! tiers share one representation and one [`Workspace`](crate::Workspace)
//! pool ([`take_partition`](crate::Workspace::take_partition) /
//! [`recycle_partition`](crate::Workspace::recycle_partition)) keeps every
//! tier allocation-free once warm.
//!
//! Loads maintained incrementally through [`Partition::move_task`] /
//! [`Partition::swap_tasks`] drift from the index-order sum by float
//! rounding; call [`Partition::rebuild_loads`] before any energy
//! evaluation that must be bit-reproducible (the solver tiers' final
//! evaluations all do).

/// A task→core assignment with per-core load columns (see module docs).
///
/// # Examples
///
/// ```
/// use sdem_types::{Partition, Workspace};
///
/// let works = [3.0, 2.0, 1.0, 2.0];
/// let mut ws = Workspace::new();
/// let mut p = ws.take_partition();
/// p.reset(works.len(), 2);
/// // The PARTITION split {3, 1} vs {2, 2}:
/// p.assign(0, 0, works[0]);
/// p.assign(1, 1, works[1]);
/// p.assign(2, 0, works[2]);
/// p.assign(3, 1, works[3]);
/// assert_eq!(p.loads(), [4.0, 4.0]);
/// assert_eq!(p.assignment(), [0, 1, 0, 1]);
/// ws.recycle_partition(p);
/// ```
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Partition {
    /// `assignment[i]` = core index of task `i` (SoA row order).
    assignment: Vec<usize>,
    /// `loads[c]` = total work currently assigned to core `c`.
    loads: Vec<f64>,
}

impl Partition {
    /// Empties both columns, keeping their capacity (the
    /// [`Workspace`](crate::Workspace) pool contract).
    pub fn clear(&mut self) {
        self.assignment.clear();
        self.loads.clear();
    }

    /// Re-shapes the partition for `tasks` tasks on `cores` cores: every
    /// task lands on core 0 with all loads zero. Capacity is reused.
    pub fn reset(&mut self, tasks: usize, cores: usize) {
        self.assignment.clear();
        self.assignment.resize(tasks, 0);
        self.loads.clear();
        self.loads.resize(cores, 0.0);
    }

    /// Number of tasks covered by the assignment column.
    #[inline]
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// `true` when no tasks are assigned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Number of cores (length of the load column).
    #[inline]
    pub fn cores(&self) -> usize {
        self.loads.len()
    }

    /// The task→core column.
    #[inline]
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// The per-core load column.
    #[inline]
    pub fn loads(&self) -> &[f64] {
        &self.loads
    }

    /// Core of task `i`.
    #[inline]
    pub fn core_of(&self, task: usize) -> usize {
        self.assignment[task]
    }

    /// Places task `task` (with workload `work`) on `core`, adding the
    /// work to that core's load. The task must not already carry load on
    /// another core — use [`Partition::move_task`] for re-assignment.
    #[inline]
    pub fn assign(&mut self, task: usize, core: usize, work: f64) {
        self.assignment[task] = core;
        self.loads[core] += work;
    }

    /// Moves task `task` (workload `work`) from its current core to `to`,
    /// updating both loads incrementally.
    #[inline]
    pub fn move_task(&mut self, task: usize, to: usize, work: f64) {
        let from = self.assignment[task];
        self.loads[from] -= work;
        self.loads[to] += work;
        self.assignment[task] = to;
    }

    /// Swaps the cores of tasks `a` (workload `wa`) and `b` (workload
    /// `wb`), updating both loads incrementally.
    #[inline]
    pub fn swap_tasks(&mut self, a: usize, b: usize, wa: f64, wb: f64) {
        let (ca, cb) = (self.assignment[a], self.assignment[b]);
        self.loads[ca] += wb - wa;
        self.loads[cb] += wa - wb;
        self.assignment[a] = cb;
        self.assignment[b] = ca;
    }

    /// Recomputes every core load as the sum of its tasks' works in task
    /// index order — the canonical accumulation the energy closed forms
    /// are evaluated against. Incremental updates commute only up to
    /// float rounding; this restores the bit-reproducible values.
    pub fn rebuild_loads(&mut self, works: &[f64]) {
        debug_assert_eq!(works.len(), self.assignment.len());
        self.loads.fill(0.0);
        for (i, &c) in self.assignment.iter().enumerate() {
            self.loads[c] += works[i];
        }
    }

    /// Index of the most-loaded core; ties resolve to the lowest index,
    /// so the scan is deterministic.
    pub fn heaviest_core(&self) -> usize {
        let mut best = 0;
        for (c, &w) in self.loads.iter().enumerate().skip(1) {
            if w > self.loads[best] {
                best = c;
            }
        }
        best
    }

    /// Index of the least-loaded core; ties resolve to the lowest index.
    pub fn lightest_core(&self) -> usize {
        let mut best = 0;
        for (c, &w) in self.loads.iter().enumerate().skip(1) {
            if w < self.loads[best] {
                best = c;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workspace;

    #[test]
    fn reset_shapes_and_zeroes() {
        let mut p = Partition::default();
        p.reset(3, 2);
        assert_eq!(p.len(), 3);
        assert_eq!(p.cores(), 2);
        assert_eq!(p.assignment(), [0, 0, 0]);
        assert_eq!(p.loads(), [0.0, 0.0]);
        p.reset(1, 4);
        assert_eq!((p.len(), p.cores()), (1, 4));
    }

    #[test]
    fn incremental_ops_track_loads() {
        let works = [5.0, 3.0, 2.0];
        let mut p = Partition::default();
        p.reset(3, 2);
        p.assign(0, 0, works[0]);
        p.assign(1, 1, works[1]);
        p.assign(2, 1, works[2]);
        assert_eq!(p.loads(), [5.0, 5.0]);
        p.move_task(2, 0, works[2]);
        assert_eq!(p.loads(), [7.0, 3.0]);
        assert_eq!(p.core_of(2), 0);
        p.swap_tasks(0, 1, works[0], works[1]);
        assert_eq!(p.assignment(), [1, 0, 0]);
        assert_eq!(p.loads(), [5.0, 5.0]);
    }

    #[test]
    fn rebuild_restores_index_order_sums() {
        let works = [1.0e16, 1.0, -0.0, 3.0];
        let mut p = Partition::default();
        p.reset(4, 2);
        for (i, &w) in works.iter().enumerate() {
            p.assign(i, i % 2, w);
        }
        // Scramble the loads with drift-prone incremental traffic.
        p.move_task(3, 0, works[3]);
        p.move_task(3, 1, works[3]);
        let drifted = p.loads().to_vec();
        p.rebuild_loads(&works);
        // Canonical: loads[0] = works[0] + works[2], loads[1] = works[1] + works[3].
        assert_eq!(p.loads(), [1.0e16 + -0.0, 1.0 + 3.0]);
        // (The drifted values may or may not differ; rebuild pins them.)
        let _ = drifted;
    }

    #[test]
    fn extreme_core_scans_break_ties_low() {
        let mut p = Partition::default();
        p.reset(2, 4);
        p.loads = vec![2.0, 5.0, 5.0, 2.0];
        assert_eq!(p.heaviest_core(), 1);
        assert_eq!(p.lightest_core(), 0);
    }

    #[test]
    fn pool_round_trip_keeps_capacity() {
        let mut ws = Workspace::new();
        let mut p = ws.take_partition();
        p.reset(64, 8);
        let cap = (p.assignment.capacity(), p.loads.capacity());
        ws.recycle_partition(p);
        let p = ws.take_partition();
        assert!(p.is_empty());
        assert!(p.assignment.capacity() >= cap.0);
        assert!(p.loads.capacity() >= cap.1);
    }
}
