//! Reusable per-trial scratch buffers.
//!
//! A Monte-Carlo sweep runs millions of structurally identical trials; with
//! fresh `Vec`s per trial the hot path is dominated by allocator traffic
//! rather than the scheme math. [`Workspace`] owns pools of every scratch
//! buffer a trial needs — interval sets, numeric scratch, task/segment/
//! placement arenas — so a sweep worker can run its whole trial stream on
//! one warmed-up arena with zero steady-state allocations.
//!
//! # Reuse contract
//!
//! * `take_*` hands out an **empty** buffer (contents cleared) whose
//!   capacity is whatever a previous user grew it to.
//! * `recycle_*` returns a buffer to the pool, **keeping its capacity** and
//!   clearing its contents eagerly so stale data can never leak into the
//!   next trial.
//! * Forgetting to recycle is safe — the buffer is simply dropped and the
//!   pool re-grows on the next take (one allocation, then steady state
//!   again).
//! * A `Workspace` is deliberately `!Sync`-by-use: each worker thread owns
//!   its own instance; nothing is shared.

use crate::{
    CoreId, Cycles, IntervalSet, Partition, Placement, Schedule, Segment, Task, TaskRow, TaskSoa,
    Time,
};

/// Pools of per-trial scratch buffers (see module docs for the contract).
///
/// # Examples
///
/// ```
/// use sdem_types::{IntervalSet, Time, Workspace};
///
/// let s = |x: f64| Time::from_secs(x);
/// let mut ws = Workspace::new();
/// let mut gaps = ws.take_intervals();
/// let busy = IntervalSet::from_spans(vec![(s(0.0), s(1.0)), (s(3.0), s(4.0))]);
/// busy.gaps_into(None, &mut gaps);
/// assert_eq!(gaps.as_slice(), &[(s(1.0), s(3.0))]);
/// ws.recycle_intervals(gaps);
/// // The next take reuses the same allocation, handed back empty.
/// assert!(ws.take_intervals().is_empty());
/// ```
#[derive(Debug, Default)]
pub struct Workspace {
    intervals: Vec<IntervalSet>,
    f64s: Vec<Vec<f64>>,
    usizes: Vec<Vec<usize>>,
    keyed: Vec<Vec<(f64, usize)>>,
    bools: Vec<Vec<bool>>,
    tasks: Vec<Vec<Task>>,
    segments: Vec<Vec<Segment>>,
    placements: Vec<Vec<Placement>>,
    core_ids: Vec<Vec<CoreId>>,
    spans: Vec<Vec<(Time, Time)>>,
    rows: Vec<Vec<TaskRow>>,
    pairs: Vec<Vec<(f64, f64)>>,
    soas: Vec<TaskSoa>,
    partitions: Vec<Partition>,
    interval_lists: Vec<Vec<IntervalSet>>,
    cycles: Vec<Vec<Cycles>>,
    task_lists: Vec<Vec<Vec<Task>>>,
}

macro_rules! pool {
    ($take:ident, $recycle:ident, $field:ident, $ty:ty, $what:expr) => {
        #[doc = concat!("Takes an empty ", $what, " buffer from the pool.")]
        pub fn $take(&mut self) -> $ty {
            self.$field.pop().unwrap_or_default()
        }

        #[doc = concat!("Returns a ", $what, " buffer to the pool, keeping its capacity.")]
        pub fn $recycle(&mut self, mut buf: $ty) {
            buf.clear();
            self.$field.push(buf);
        }
    };
}

impl Workspace {
    /// Creates an empty workspace; buffers are allocated lazily on first
    /// use and retained across trials.
    pub fn new() -> Self {
        Self::default()
    }

    pool!(
        take_intervals,
        recycle_intervals,
        intervals,
        IntervalSet,
        "interval-set"
    );
    pool!(take_f64s, recycle_f64s, f64s, Vec<f64>, "`f64` scratch");
    pool!(
        take_usizes,
        recycle_usizes,
        usizes,
        Vec<usize>,
        "index scratch"
    );
    pool!(
        take_keyed,
        recycle_keyed,
        keyed,
        Vec<(f64, usize)>,
        "`(key, index)` sort scratch"
    );
    pool!(take_bools, recycle_bools, bools, Vec<bool>, "flag scratch");
    pool!(take_tasks, recycle_tasks, tasks, Vec<Task>, "task arena");
    pool!(
        take_segments,
        recycle_segments,
        segments,
        Vec<Segment>,
        "segment arena"
    );
    pool!(
        take_placements,
        recycle_placements,
        placements,
        Vec<Placement>,
        "placement arena"
    );
    pool!(
        take_core_ids,
        recycle_core_ids,
        core_ids,
        Vec<CoreId>,
        "core-id scratch"
    );
    pool!(
        take_spans,
        recycle_spans,
        spans,
        Vec<(Time, Time)>,
        "raw span scratch"
    );
    pool!(
        take_rows,
        recycle_rows,
        rows,
        Vec<TaskRow>,
        "`(id, f64, f64, f64)` task-row scratch"
    );
    pool!(
        take_pairs,
        recycle_pairs,
        pairs,
        Vec<(f64, f64)>,
        "`(f64, f64)` span scratch"
    );
    pool!(
        take_soa,
        recycle_soa,
        soas,
        TaskSoa,
        "structure-of-arrays task view"
    );
    pool!(
        take_partition,
        recycle_partition,
        partitions,
        Partition,
        "task→core partition"
    );

    pool!(
        take_cycles,
        recycle_cycles,
        cycles,
        Vec<Cycles>,
        "cycle-count scratch (DAG layer/core loads)"
    );

    /// Takes an empty list-of-task-lists buffer from the pool (the DAG
    /// pipeline's per-core window arenas).
    ///
    /// The outer `Vec` comes back empty; populate it by pushing arenas
    /// taken with [`take_tasks`](Self::take_tasks) (one per core, say).
    pub fn take_task_list(&mut self) -> Vec<Vec<Task>> {
        self.task_lists.pop().unwrap_or_default()
    }

    /// Returns a list of task arenas to the pools. The inner arenas are
    /// drained into the task pool (a plain `clear` would drop their
    /// allocations) before the emptied outer `Vec` is repooled.
    pub fn recycle_task_list(&mut self, mut list: Vec<Vec<Task>>) {
        for arena in list.drain(..) {
            self.recycle_tasks(arena);
        }
        self.task_lists.push(list);
    }

    /// Takes an empty list-of-interval-sets buffer from the pool.
    ///
    /// The outer `Vec` comes back empty; populate it by pushing sets taken
    /// with [`take_intervals`](Self::take_intervals) (one per core, say).
    pub fn take_interval_list(&mut self) -> Vec<IntervalSet> {
        self.interval_lists.pop().unwrap_or_default()
    }

    /// Returns a list of interval sets to the pools. The inner sets are
    /// drained into the interval-set pool (a plain `clear` would drop their
    /// allocations) before the emptied outer `Vec` is repooled.
    pub fn recycle_interval_list(&mut self, mut list: Vec<IntervalSet>) {
        for set in list.drain(..) {
            self.recycle_intervals(set);
        }
        self.interval_lists.push(list);
    }

    /// Tears a finished [`Schedule`] back down into the pools: every
    /// placement's segment buffer and the placement buffer itself are
    /// recycled, so the next trial builds its schedule allocation-free.
    pub fn recycle_schedule(&mut self, schedule: Schedule) {
        let mut placements = schedule.into_placements();
        for placement in placements.drain(..) {
            self.recycle_segments(placement.into_segments());
        }
        self.recycle_placements(placements);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Speed, TaskId};

    #[test]
    fn pools_hand_back_cleared_buffers_with_capacity() {
        let mut ws = Workspace::new();
        let mut v = ws.take_f64s();
        v.extend([1.0, 2.0, 3.0]);
        let cap = v.capacity();
        ws.recycle_f64s(v);
        let v = ws.take_f64s();
        assert!(v.is_empty());
        assert!(v.capacity() >= cap);
    }

    #[test]
    fn schedule_recycling_feeds_segment_and_placement_pools() {
        let mut ws = Workspace::new();
        let sched = Schedule::new(vec![Placement::single(
            TaskId(0),
            CoreId(0),
            Time::ZERO,
            Time::from_millis(1.0),
            Speed::from_mhz(100.0),
        )]);
        ws.recycle_schedule(sched);
        assert!(ws.take_segments().capacity() >= 1);
        assert!(ws.take_placements().capacity() >= 1);
    }

    #[test]
    fn interval_list_recycle_drains_inner_sets_into_interval_pool() {
        let mut ws = Workspace::new();
        let mut list = ws.take_interval_list();
        let mut set = ws.take_intervals();
        IntervalSet::collect_into([(Time::ZERO, Time::from_secs(1.0))], &mut set);
        let inner_cap = set.capacity();
        list.push(set);
        ws.recycle_interval_list(list);
        // The inner set's allocation survives in the interval pool...
        assert!(ws.take_intervals().capacity() >= inner_cap);
        // ...and the outer list comes back empty with its capacity.
        assert!(ws.take_interval_list().is_empty());
    }

    #[test]
    fn take_on_empty_pool_allocates_fresh() {
        let mut ws = Workspace::new();
        assert!(ws.take_intervals().is_empty());
        assert!(ws.take_tasks().is_empty());
        assert!(ws.take_core_ids().is_empty());
        assert!(ws.take_bools().is_empty());
        assert!(ws.take_keyed().is_empty());
        assert!(ws.take_usizes().is_empty());
        assert!(ws.take_spans().is_empty());
    }
}
