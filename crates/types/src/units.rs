//! Strongly-typed scalar quantities.
//!
//! All quantities wrap an `f64` in SI base units (seconds, hertz, cycles,
//! watts, joules). The arithmetic impls encode the dimensional analysis the
//! SDEM algorithms rely on: `Cycles / Speed = Time`, `Speed * Time = Cycles`,
//! `Watts * Time = Joules`, and so on. Constructors for the paper's customary
//! units (milliseconds, megahertz, milliwatts) are provided so experiment
//! code can mirror the published parameter tables verbatim.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Returns the raw `f64` value in SI base units.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns `true` if the value is finite (neither NaN nor ±∞).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the smaller of `self` and `other`.
            ///
            /// NaN handling follows [`f64::min`].
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            ///
            /// NaN handling follows [`f64::max`].
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps `self` into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                assert!(lo.0 <= hi.0, "clamp requires lo <= hi");
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Total ordering (via [`f64::total_cmp`]) for use as a sort key.
            #[inline]
            pub fn total_cmp(&self, other: &Self) -> core::cmp::Ordering {
                self.0.total_cmp(&other.0)
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }
    };
}

quantity!(
    /// A duration or instant on the schedule timeline, in seconds.
    ///
    /// The SDEM papers measure everything on a single real-valued timeline
    /// starting at the earliest release, so a single type serves for both
    /// instants and durations.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdem_types::Time;
    /// let window = Time::from_millis(120.0) - Time::from_millis(10.0);
    /// assert!((window.as_millis() - 110.0).abs() < 1e-12);
    /// ```
    Time,
    "s"
);

quantity!(
    /// A processor speed (clock frequency), in hertz (cycles per second).
    ///
    /// # Examples
    ///
    /// ```
    /// use sdem_types::{Speed, Time};
    /// let work = Speed::from_mhz(1900.0) * Time::from_millis(1.0);
    /// assert!((work.value() - 1.9e6).abs() < 1.0);
    /// ```
    Speed,
    "Hz"
);

quantity!(
    /// An amount of computational work, in processor cycles.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdem_types::{Cycles, Speed};
    /// let t = Cycles::new(2.0e6) / Speed::from_mhz(1000.0);
    /// assert!((t.as_millis() - 2.0).abs() < 1e-9);
    /// ```
    Cycles,
    "cycles"
);

quantity!(
    /// Electrical power, in watts.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdem_types::{Watts, Time};
    /// let e = Watts::new(4.0) * Time::from_millis(30.0);
    /// assert!((e.value() - 0.12).abs() < 1e-12);
    /// ```
    Watts,
    "W"
);

quantity!(
    /// Energy, in joules.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdem_types::Joules;
    /// let total: Joules = [Joules::new(0.5), Joules::new(0.25)].into_iter().sum();
    /// assert!((total.value() - 0.75).abs() < 1e-12);
    /// ```
    Joules,
    "J"
);

impl Time {
    /// Creates a `Time` from seconds.
    #[inline]
    pub const fn from_secs(secs: f64) -> Self {
        Self(secs)
    }

    /// Creates a `Time` from milliseconds (the paper's customary unit).
    #[inline]
    pub fn from_millis(millis: f64) -> Self {
        Self(millis * 1e-3)
    }

    /// Returns the value in seconds.
    #[inline]
    pub const fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the value in milliseconds.
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }
}

impl Speed {
    /// Creates a `Speed` from hertz.
    #[inline]
    pub const fn from_hz(hz: f64) -> Self {
        Self(hz)
    }

    /// Creates a `Speed` from megahertz (the paper's customary unit).
    #[inline]
    pub fn from_mhz(mhz: f64) -> Self {
        Self(mhz * 1e6)
    }

    /// Returns the value in hertz.
    #[inline]
    pub const fn as_hz(self) -> f64 {
        self.0
    }

    /// Returns the value in megahertz.
    #[inline]
    pub fn as_mhz(self) -> f64 {
        self.0 * 1e-6
    }
}

impl Cycles {
    /// Creates a work amount from a cycle count.
    #[inline]
    pub const fn new(cycles: f64) -> Self {
        Self(cycles)
    }
}

impl Watts {
    /// Creates a power from watts.
    #[inline]
    pub const fn new(watts: f64) -> Self {
        Self(watts)
    }

    /// Creates a power from milliwatts (the paper's customary unit for cores).
    #[inline]
    pub fn from_milliwatts(mw: f64) -> Self {
        Self(mw * 1e-3)
    }
}

impl Joules {
    /// Creates an energy from joules.
    #[inline]
    pub const fn new(joules: f64) -> Self {
        Self(joules)
    }
}

impl Div<Speed> for Cycles {
    type Output = Time;
    /// Work divided by speed is the time needed to execute it.
    #[inline]
    fn div(self, rhs: Speed) -> Time {
        Time::from_secs(self.0 / rhs.0)
    }
}

impl Div<Time> for Cycles {
    type Output = Speed;
    /// Work divided by a window length is the speed that exactly fills it.
    #[inline]
    fn div(self, rhs: Time) -> Speed {
        Speed::from_hz(self.0 / rhs.0)
    }
}

impl Mul<Time> for Speed {
    type Output = Cycles;
    /// Speed sustained for a duration executes this much work.
    #[inline]
    fn mul(self, rhs: Time) -> Cycles {
        Cycles::new(self.0 * rhs.0)
    }
}

impl Mul<Speed> for Time {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: Speed) -> Cycles {
        rhs * self
    }
}

impl Mul<Time> for Watts {
    type Output = Joules;
    /// Power drawn for a duration consumes this much energy.
    #[inline]
    fn mul(self, rhs: Time) -> Joules {
        Joules::new(self.0 * rhs.0)
    }
}

impl Mul<Watts> for Time {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        rhs * self
    }
}

impl Div<Time> for Joules {
    type Output = Watts;
    /// Energy spread over a duration is an average power.
    #[inline]
    fn div(self, rhs: Time) -> Watts {
        Watts::new(self.0 / rhs.0)
    }
}

impl Div<Watts> for Joules {
    type Output = Time;
    /// How long the given power draw could be sustained on this energy.
    #[inline]
    fn div(self, rhs: Watts) -> Time {
        Time::from_secs(self.0 / rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_unit_round_trips() {
        let t = Time::from_millis(42.0);
        assert!((t.as_secs() - 0.042).abs() < 1e-15);
        assert!((t.as_millis() - 42.0).abs() < 1e-12);
    }

    #[test]
    fn speed_unit_round_trips() {
        let s = Speed::from_mhz(1900.0);
        assert!((s.as_hz() - 1.9e9).abs() < 1.0);
        assert!((s.as_mhz() - 1900.0).abs() < 1e-9);
    }

    #[test]
    fn cycles_over_speed_is_time() {
        let t = Cycles::new(5.0e6) / Speed::from_mhz(1000.0);
        assert!((t.as_millis() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn cycles_over_time_is_speed() {
        let s = Cycles::new(2.0e6) / Time::from_millis(10.0);
        assert!((s.as_mhz() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn speed_times_time_is_cycles() {
        let w = Speed::from_mhz(700.0) * Time::from_millis(3.0);
        assert!((w.value() - 2.1e6).abs() < 1e-3);
        let w2 = Time::from_millis(3.0) * Speed::from_mhz(700.0);
        assert_eq!(w, w2);
    }

    #[test]
    fn watts_times_time_is_joules() {
        let e = Watts::from_milliwatts(310.0) * Time::from_secs(2.0);
        assert!((e.value() - 0.62).abs() < 1e-12);
    }

    #[test]
    fn joules_over_time_is_watts() {
        let p = Joules::new(1.0) / Time::from_secs(4.0);
        assert!((p.value() - 0.25).abs() < 1e-15);
    }

    #[test]
    fn joules_over_watts_is_time() {
        let t = Joules::new(1.0) / Watts::new(4.0);
        assert!((t.as_secs() - 0.25).abs() < 1e-15);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = Time::from_secs(1.0);
        let b = Time::from_secs(2.5);
        assert!(a < b);
        assert_eq!((a + b).as_secs(), 3.5);
        assert_eq!((b - a).as_secs(), 1.5);
        assert_eq!((-a).as_secs(), -1.0);
        assert_eq!((a * 3.0).as_secs(), 3.0);
        assert_eq!((3.0 * a).as_secs(), 3.0);
        assert_eq!((b / 2.5).as_secs(), 1.0);
        assert_eq!(b / a, 2.5);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(b.clamp(Time::ZERO, a), a);
    }

    #[test]
    fn add_assign_and_sum() {
        let mut t = Time::ZERO;
        t += Time::from_secs(1.0);
        t += Time::from_secs(2.0);
        assert_eq!(t.as_secs(), 3.0);
        t -= Time::from_secs(0.5);
        assert_eq!(t.as_secs(), 2.5);
        let total: Joules = (1..=4).map(|i| Joules::new(f64::from(i))).sum();
        assert_eq!(total.value(), 10.0);
    }

    #[test]
    fn total_cmp_orders_nan_last() {
        let mut v = [
            Time::from_secs(f64::NAN),
            Time::from_secs(1.0),
            Time::from_secs(-1.0),
        ];
        v.sort_by(Time::total_cmp);
        assert_eq!(v[0].as_secs(), -1.0);
        assert_eq!(v[1].as_secs(), 1.0);
        assert!(v[2].as_secs().is_nan());
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(Time::from_secs(1.5).to_string(), "1.5 s");
        assert_eq!(Speed::from_hz(10.0).to_string(), "10 Hz");
        assert_eq!(Watts::new(2.0).to_string(), "2 W");
        assert_eq!(Joules::new(3.0).to_string(), "3 J");
        assert_eq!(Cycles::new(7.0).to_string(), "7 cycles");
    }

    #[test]
    #[should_panic(expected = "clamp requires lo <= hi")]
    fn clamp_panics_on_inverted_bounds() {
        let _ = Time::from_secs(1.0).clamp(Time::from_secs(2.0), Time::from_secs(1.0));
    }

    #[test]
    fn abs_and_is_finite() {
        assert_eq!(Time::from_secs(-2.0).abs().as_secs(), 2.0);
        assert!(Time::from_secs(1.0).is_finite());
        assert!(!Time::from_secs(f64::INFINITY).is_finite());
    }
}
