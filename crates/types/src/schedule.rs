//! Explicit schedules: which task runs where, when, and at what speed.
//!
//! Every scheduler in the workspace — the paper's optimal schemes, the
//! SDEM-ON heuristic, and the MBKP/MBKPS baselines — emits a [`Schedule`].
//! The simulator in `sdem-sim` replays schedules against a power model; the
//! validation here checks the *timing* contract (deadlines, per-core
//! exclusivity, workload completion, speed bounds) independently of energy.

use core::fmt;

use crate::{Cycles, IntervalSet, ScheduleError, Speed, Task, TaskId, TaskSet, Time, Workspace};

/// Relative tolerance used when checking workload completion and window
/// containment. Schedules are built from floating-point optimizations, so
/// exact equality is too strict.
const REL_TOL: f64 = 1e-6;

/// Identifier of a processor core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub usize);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// A maximal run of one task at one constant speed.
///
/// # Examples
///
/// ```
/// use sdem_types::{Segment, Time, Speed};
/// let seg = Segment::new(Time::from_millis(10.0), Time::from_millis(30.0), Speed::from_mhz(800.0));
/// assert!((seg.length().as_millis() - 20.0).abs() < 1e-9);
/// assert!((seg.work().value() - 1.6e7).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    start: Time,
    end: Time,
    speed: Speed,
}

impl Segment {
    /// Creates a segment running over `[start, end]` at `speed`.
    pub fn new(start: Time, end: Time, speed: Speed) -> Self {
        Self { start, end, speed }
    }

    /// Segment start instant.
    #[inline]
    pub fn start(&self) -> Time {
        self.start
    }

    /// Segment end instant.
    #[inline]
    pub fn end(&self) -> Time {
        self.end
    }

    /// Execution speed during the segment.
    #[inline]
    pub fn speed(&self) -> Speed {
        self.speed
    }

    /// Segment duration.
    #[inline]
    pub fn length(&self) -> Time {
        self.end - self.start
    }

    /// Work executed during the segment.
    #[inline]
    pub fn work(&self) -> Cycles {
        self.speed * self.length()
    }

    fn is_well_formed(&self) -> bool {
        self.start.is_finite()
            && self.end.is_finite()
            && self.speed.is_finite()
            && self.end > self.start
            && self.speed.value() >= 0.0
    }
}

/// The complete execution plan for a single task: its core and segments.
///
/// Segments must be ordered and non-overlapping; contiguous segments with
/// different speeds model the online algorithm's speed adjustments at task
/// arrivals. Offline schemes emit a single segment (non-preemptive model).
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    task: TaskId,
    core: CoreId,
    segments: Vec<Segment>,
}

impl Placement {
    /// Creates a placement of `task` on `core` executing `segments`.
    pub fn new(task: TaskId, core: CoreId, segments: Vec<Segment>) -> Self {
        Self {
            task,
            core,
            segments,
        }
    }

    /// Convenience constructor for the common single-window case.
    pub fn single(task: TaskId, core: CoreId, start: Time, end: Time, speed: Speed) -> Self {
        Self::new(task, core, vec![Segment::new(start, end, speed)])
    }

    /// The task being placed.
    #[inline]
    pub fn task(&self) -> TaskId {
        self.task
    }

    /// The core the task runs on.
    #[inline]
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// The execution segments, in time order.
    #[inline]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// First instant the task executes.
    pub fn start(&self) -> Option<Time> {
        self.segments.first().map(Segment::start)
    }

    /// Last instant the task executes (its completion time).
    pub fn end(&self) -> Option<Time> {
        self.segments.last().map(Segment::end)
    }

    /// Total work executed across all segments.
    pub fn executed_work(&self) -> Cycles {
        self.segments.iter().map(Segment::work).sum()
    }

    /// Total time the task occupies its core.
    pub fn busy_time(&self) -> Time {
        self.segments.iter().map(Segment::length).sum()
    }

    /// Appends a segment; the caller maintains the time-ordering
    /// invariant. This is how the online scheduler and the pooled
    /// baseline assemblers grow a placement in place instead of building
    /// a separate segment list and cloning it in.
    #[inline]
    pub fn push_segment(&mut self, segment: Segment) {
        self.segments.push(segment);
    }

    /// Consumes the placement, returning its segment buffer (so a
    /// `Workspace` can recycle the allocation).
    #[inline]
    pub fn into_segments(self) -> Vec<Segment> {
        self.segments
    }
}

/// A complete system schedule: one [`Placement`] per task.
///
/// # Examples
///
/// ```
/// use sdem_types::{Schedule, Placement, TaskId, CoreId, Time, Speed};
///
/// let sched = Schedule::new(vec![
///     Placement::single(TaskId(0), CoreId(0), Time::ZERO, Time::from_millis(20.0),
///                       Speed::from_mhz(100.0)),
///     Placement::single(TaskId(1), CoreId(1), Time::from_millis(5.0), Time::from_millis(25.0),
///                       Speed::from_mhz(150.0)),
/// ]);
/// // Memory is busy while any core is busy: one merged interval here.
/// let busy = sched.memory_busy_intervals();
/// assert_eq!(busy.len(), 1);
/// assert!((busy[0].1.as_millis() - 25.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schedule {
    placements: Vec<Placement>,
}

impl Schedule {
    /// Creates a schedule from per-task placements.
    pub fn new(placements: Vec<Placement>) -> Self {
        Self { placements }
    }

    /// Creates an empty schedule (useful as an accumulator).
    pub fn empty() -> Self {
        Self::default()
    }

    /// The placements, in insertion order.
    #[inline]
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Adds a placement.
    pub fn push(&mut self, placement: Placement) {
        self.placements.push(placement);
    }

    /// Looks up the placement of a task.
    pub fn placement(&self, task: TaskId) -> Option<&Placement> {
        self.placements.iter().find(|p| p.task() == task)
    }

    /// Consumes the schedule, returning its placement buffer (so a
    /// `Workspace` can recycle the allocations).
    #[inline]
    pub fn into_placements(self) -> Vec<Placement> {
        self.placements
    }

    /// Number of distinct cores used.
    pub fn cores_used(&self) -> usize {
        let mut cores: Vec<CoreId> = Vec::new();
        self.cores_into(&mut cores);
        cores.len()
    }

    /// All distinct cores, sorted.
    pub fn cores(&self) -> Vec<CoreId> {
        let mut cores: Vec<CoreId> = Vec::new();
        self.cores_into(&mut cores);
        cores
    }

    /// In-place [`Self::cores`]: clears `out` and fills it with the sorted,
    /// deduplicated core ids, reusing `out`'s allocation.
    pub fn cores_into(&self, out: &mut Vec<CoreId>) {
        out.clear();
        out.extend(self.placements.iter().map(Placement::core));
        out.sort_unstable();
        out.dedup();
    }

    /// Merged busy intervals of a single core, sorted by start.
    pub fn core_busy_intervals(&self, core: CoreId) -> IntervalSet {
        let mut out = IntervalSet::new();
        self.core_busy_intervals_into(core, &mut out);
        out
    }

    /// In-place [`Self::core_busy_intervals`] writing into a reusable
    /// buffer.
    pub fn core_busy_intervals_into(&self, core: CoreId, out: &mut IntervalSet) {
        IntervalSet::collect_into(
            self.placements
                .iter()
                .filter(|p| p.core() == core)
                .flat_map(|p| p.segments().iter().map(|s| (s.start(), s.end()))),
            out,
        );
    }

    /// Merged intervals during which at least one core is busy — exactly the
    /// intervals during which the shared memory must be awake.
    pub fn memory_busy_intervals(&self) -> IntervalSet {
        let mut out = IntervalSet::new();
        self.memory_busy_intervals_into(&mut out);
        out
    }

    /// In-place [`Self::memory_busy_intervals`] writing into a reusable
    /// buffer.
    pub fn memory_busy_intervals_into(&self, out: &mut IntervalSet) {
        IntervalSet::collect_into(
            self.placements
                .iter()
                .flat_map(|p| p.segments().iter().map(|s| (s.start(), s.end()))),
            out,
        );
    }

    /// Total time the memory must be awake (sum of merged busy intervals).
    pub fn memory_busy_time(&self) -> Time {
        self.memory_busy_intervals().total()
    }

    /// `(first execution instant, last execution instant)` over all tasks,
    /// or `None` for an empty schedule.
    pub fn span(&self) -> Option<(Time, Time)> {
        let starts = self
            .placements
            .iter()
            .filter_map(Placement::start)
            .min_by(Time::total_cmp)?;
        let ends = self
            .placements
            .iter()
            .filter_map(Placement::end)
            .max_by(Time::total_cmp)?;
        Some((starts, ends))
    }

    /// Validates timing only: segment shape, per-task window containment,
    /// workload completion, and per-core mutual exclusion.
    ///
    /// # Errors
    ///
    /// Returns the first [`ScheduleError`] found. Energy-related checks
    /// (speed bounds) are available via [`Schedule::validate_with_limits`].
    pub fn validate(&self, tasks: &TaskSet) -> Result<(), ScheduleError> {
        self.validate_with_limits(tasks, None, None)
    }

    /// Validates timing plus optional platform speed limits.
    ///
    /// `max_speed`/`min_speed` bound every segment's speed when provided.
    /// A small relative tolerance absorbs floating-point noise from the
    /// optimizers.
    ///
    /// # Errors
    ///
    /// Returns the first [`ScheduleError`] found.
    pub fn validate_with_limits(
        &self,
        tasks: &TaskSet,
        min_speed: Option<Speed>,
        max_speed: Option<Speed>,
    ) -> Result<(), ScheduleError> {
        self.validate_with_limits_in(tasks, min_speed, max_speed, &mut Workspace::new())
    }

    /// Pooled [`Self::validate_with_limits`]: identical checks in the
    /// identical order (so the *first* error reported is the same), with
    /// the bookkeeping — the seen-task list and the per-core exclusivity
    /// sort — running on workspace scratch. The simulator validates every
    /// metered schedule, which puts this on the sweep hot path.
    pub fn validate_with_limits_in(
        &self,
        tasks: &TaskSet,
        min_speed: Option<Speed>,
        max_speed: Option<Speed>,
        ws: &mut Workspace,
    ) -> Result<(), ScheduleError> {
        // Every placement refers to a known task, exactly once. Existence
        // of a violation is decided with two pooled sorts (O(n log n));
        // the historical quadratic scan runs only when one exists, so the
        // *first* error reported stays identical while valid schedules —
        // the meter hot path — never pay the quadratic walk.
        let mut sorted_pids = ws.take_usizes();
        sorted_pids.extend(self.placements.iter().map(|p| p.task().0));
        sorted_pids.sort_unstable();
        let duplicate = sorted_pids.windows(2).any(|w| w[0] == w[1]);

        // Argsort of the task slice by id: the membership index for the
        // unknown check here and the per-placement lookups below (TaskSet
        // construction guarantees the ids are unique).
        let mut task_order = ws.take_usizes();
        task_order.extend(0..tasks.len());
        task_order.sort_unstable_by_key(|&i| tasks.tasks()[i].id().0);
        let find = |id: usize| -> Option<&Task> {
            task_order
                .binary_search_by_key(&id, |&i| tasks.tasks()[i].id().0)
                .ok()
                .map(|pos| &tasks.tasks()[task_order[pos]])
        };
        let unknown = sorted_pids.iter().any(|&id| find(id).is_none());
        // Without duplicates or unknowns the placement ids are a subset of
        // the task ids, so full coverage is exactly a count match.
        let missing = !duplicate && !unknown && sorted_pids.len() != tasks.len();

        let mut result = Ok(());
        if duplicate || unknown || missing {
            let mut seen = ws.take_usizes();
            for p in &self.placements {
                if tasks.get(p.task()).is_none() || seen.contains(&p.task().0) {
                    result = Err(ScheduleError::UnknownTask(p.task()));
                    break;
                }
                seen.push(p.task().0);
            }
            if result.is_ok() {
                for t in tasks.iter() {
                    if !seen.contains(&t.id().0) {
                        result = Err(ScheduleError::MissingTask(t.id()));
                        break;
                    }
                }
            }
            ws.recycle_usizes(seen);
        }
        ws.recycle_usizes(sorted_pids);
        if let Err(e) = result {
            ws.recycle_usizes(task_order);
            return Err(e);
        }

        for p in &self.placements {
            let task = find(p.task().0).expect("checked above");
            self.validate_placement(p, task, min_speed, max_speed)?;
        }
        ws.recycle_usizes(task_order);

        self.validate_core_exclusivity_in(ws)
    }

    fn validate_placement(
        &self,
        p: &Placement,
        task: &Task,
        min_speed: Option<Speed>,
        max_speed: Option<Speed>,
    ) -> Result<(), ScheduleError> {
        let time_tol = Time::from_secs(task.deadline().as_secs().abs().max(1e-9) * REL_TOL);
        for seg in p.segments() {
            if !seg.is_well_formed() {
                return Err(ScheduleError::MalformedSegment(p.task()));
            }
            if seg.start() < task.release() - time_tol || seg.end() > task.deadline() + time_tol {
                return Err(ScheduleError::OutsideWindow(p.task()));
            }
            if let Some(smax) = max_speed {
                if seg.speed() > smax * (1.0 + REL_TOL) {
                    return Err(ScheduleError::SpeedAboveMax(p.task()));
                }
            }
            if let Some(smin) = min_speed {
                if seg.speed() < smin * (1.0 - REL_TOL) {
                    return Err(ScheduleError::SpeedBelowMin(p.task()));
                }
            }
        }
        for w in p.segments().windows(2) {
            if w[1].start() < w[0].end() - time_tol {
                return Err(ScheduleError::OverlappingSegments(p.task()));
            }
        }
        let executed = p.executed_work().value();
        let required = task.work().value();
        let work_tol = required.abs().max(1.0) * REL_TOL;
        if (executed - required).abs() > work_tol {
            return Err(ScheduleError::WorkMismatch {
                task: p.task(),
                executed,
                required,
            });
        }
        Ok(())
    }

    /// Per-core mutual exclusion on pooled scratch.
    ///
    /// The historical check gathered every `(core, start, end, task)` span
    /// and ran one global *stable* sort by `(core, start)`. Processing
    /// cores in ascending order and, within each core, argsorting by
    /// `(start, collection index)` visits the same adjacent pairs in the
    /// same order — the index tiebreak reproduces the stable tie order —
    /// so the first conflict reported is identical, without the stable
    /// sort's merge buffer.
    fn validate_core_exclusivity_in(&self, ws: &mut Workspace) -> Result<(), ScheduleError> {
        let mut cores = ws.take_core_ids();
        let mut spans = ws.take_spans();
        let mut owners = ws.take_usizes();
        let mut keyed = ws.take_keyed();
        self.cores_into(&mut cores);
        let mut result = Ok(());
        'cores: for &core in cores.iter() {
            spans.clear();
            owners.clear();
            keyed.clear();
            for p in self.placements.iter().filter(|p| p.core() == core) {
                for s in p.segments() {
                    keyed.push((s.start().as_secs(), spans.len()));
                    spans.push((s.start(), s.end()));
                    owners.push(p.task().0);
                }
            }
            keyed.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            for w in keyed.windows(2) {
                let (j0, j1) = (w[0].1, w[1].1);
                let (t0, t1) = (owners[j0], owners[j1]);
                if t0 != t1 {
                    let e0 = spans[j0].1;
                    let s1 = spans[j1].0;
                    let tol = Time::from_secs(e0.as_secs().abs().max(1e-9) * REL_TOL);
                    if s1 < e0 - tol {
                        result = Err(ScheduleError::CoreConflict(core, TaskId(t0), TaskId(t1)));
                        break 'cores;
                    }
                }
            }
        }
        ws.recycle_keyed(keyed);
        ws.recycle_usizes(owners);
        ws.recycle_spans(spans);
        ws.recycle_core_ids(cores);
        result
    }
}

impl FromIterator<Placement> for Schedule {
    fn from_iter<I: IntoIterator<Item = Placement>>(iter: I) -> Self {
        Self {
            placements: iter.into_iter().collect(),
        }
    }
}

impl Extend<Placement> for Schedule {
    fn extend<I: IntoIterator<Item = Placement>>(&mut self, iter: I) {
        self.placements.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Task;

    fn ms(v: f64) -> Time {
        Time::from_millis(v)
    }

    fn mhz(v: f64) -> Speed {
        Speed::from_mhz(v)
    }

    fn simple_tasks() -> TaskSet {
        TaskSet::new(vec![
            Task::new(0, ms(0.0), ms(50.0), Cycles::new(2.0e6)),
            Task::new(1, ms(0.0), ms(100.0), Cycles::new(3.0e6)),
        ])
        .unwrap()
    }

    #[test]
    fn segment_math() {
        let s = Segment::new(ms(0.0), ms(10.0), mhz(200.0));
        assert!((s.length().as_millis() - 10.0).abs() < 1e-12);
        assert!((s.work().value() - 2.0e6).abs() < 1.0);
    }

    #[test]
    fn placement_aggregates() {
        let p = Placement::new(
            TaskId(0),
            CoreId(0),
            vec![
                Segment::new(ms(0.0), ms(10.0), mhz(100.0)),
                Segment::new(ms(10.0), ms(20.0), mhz(100.0)),
            ],
        );
        assert_eq!(p.start().unwrap(), ms(0.0));
        assert_eq!(p.end().unwrap(), ms(20.0));
        assert!((p.executed_work().value() - 2.0e6).abs() < 1.0);
        assert!((p.busy_time().as_millis() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn valid_schedule_passes() {
        let tasks = simple_tasks();
        let sched = Schedule::new(vec![
            Placement::single(TaskId(0), CoreId(0), ms(0.0), ms(20.0), mhz(100.0)),
            Placement::single(TaskId(1), CoreId(1), ms(0.0), ms(30.0), mhz(100.0)),
        ]);
        sched.validate(&tasks).unwrap();
        sched
            .validate_with_limits(&tasks, Some(mhz(50.0)), Some(mhz(1900.0)))
            .unwrap();
    }

    #[test]
    fn detects_missing_and_unknown_tasks() {
        let tasks = simple_tasks();
        let missing = Schedule::new(vec![Placement::single(
            TaskId(0),
            CoreId(0),
            ms(0.0),
            ms(20.0),
            mhz(100.0),
        )]);
        assert_eq!(
            missing.validate(&tasks),
            Err(ScheduleError::MissingTask(TaskId(1)))
        );
        let unknown = Schedule::new(vec![
            Placement::single(TaskId(0), CoreId(0), ms(0.0), ms(20.0), mhz(100.0)),
            Placement::single(TaskId(7), CoreId(1), ms(0.0), ms(30.0), mhz(100.0)),
        ]);
        assert_eq!(
            unknown.validate(&tasks),
            Err(ScheduleError::UnknownTask(TaskId(7)))
        );
    }

    #[test]
    fn detects_deadline_miss() {
        let tasks = simple_tasks();
        let sched = Schedule::new(vec![
            Placement::single(TaskId(0), CoreId(0), ms(0.0), ms(60.0), mhz(2.0e6 / 6.0e4)),
            Placement::single(TaskId(1), CoreId(1), ms(0.0), ms(30.0), mhz(100.0)),
        ]);
        assert_eq!(
            sched.validate(&tasks),
            Err(ScheduleError::OutsideWindow(TaskId(0)))
        );
    }

    #[test]
    fn detects_work_mismatch() {
        let tasks = simple_tasks();
        let sched = Schedule::new(vec![
            Placement::single(TaskId(0), CoreId(0), ms(0.0), ms(20.0), mhz(50.0)),
            Placement::single(TaskId(1), CoreId(1), ms(0.0), ms(30.0), mhz(100.0)),
        ]);
        match sched.validate(&tasks) {
            Err(ScheduleError::WorkMismatch { task, .. }) => assert_eq!(task, TaskId(0)),
            other => panic!("expected WorkMismatch, got {other:?}"),
        }
    }

    #[test]
    fn detects_core_conflict() {
        let tasks = simple_tasks();
        let sched = Schedule::new(vec![
            Placement::single(TaskId(0), CoreId(0), ms(0.0), ms(20.0), mhz(100.0)),
            Placement::single(TaskId(1), CoreId(0), ms(10.0), ms(40.0), mhz(100.0)),
        ]);
        match sched.validate(&tasks) {
            Err(ScheduleError::CoreConflict(core, _, _)) => assert_eq!(core, CoreId(0)),
            other => panic!("expected CoreConflict, got {other:?}"),
        }
    }

    #[test]
    fn back_to_back_on_same_core_is_fine() {
        let tasks = simple_tasks();
        let sched = Schedule::new(vec![
            Placement::single(TaskId(0), CoreId(0), ms(0.0), ms(20.0), mhz(100.0)),
            Placement::single(TaskId(1), CoreId(0), ms(20.0), ms(50.0), mhz(100.0)),
        ]);
        sched.validate(&tasks).unwrap();
    }

    #[test]
    fn detects_speed_violations() {
        let tasks = simple_tasks();
        let sched = Schedule::new(vec![
            Placement::single(TaskId(0), CoreId(0), ms(0.0), ms(1.0), mhz(2000.0)),
            Placement::single(TaskId(1), CoreId(1), ms(0.0), ms(30.0), mhz(100.0)),
        ]);
        assert_eq!(
            sched.validate_with_limits(&tasks, None, Some(mhz(1900.0))),
            Err(ScheduleError::SpeedAboveMax(TaskId(0)))
        );
        assert_eq!(
            sched.validate_with_limits(&tasks, Some(mhz(700.0)), None),
            Err(ScheduleError::SpeedBelowMin(TaskId(1)))
        );
    }

    #[test]
    fn detects_malformed_and_overlapping_segments() {
        let tasks = simple_tasks();
        let bad = Schedule::new(vec![
            Placement::new(
                TaskId(0),
                CoreId(0),
                vec![Segment::new(ms(10.0), ms(5.0), mhz(100.0))],
            ),
            Placement::single(TaskId(1), CoreId(1), ms(0.0), ms(30.0), mhz(100.0)),
        ]);
        assert_eq!(
            bad.validate(&tasks),
            Err(ScheduleError::MalformedSegment(TaskId(0)))
        );
        let overlapping = Schedule::new(vec![
            Placement::new(
                TaskId(0),
                CoreId(0),
                vec![
                    Segment::new(ms(0.0), ms(15.0), mhz(100.0)),
                    Segment::new(ms(10.0), ms(15.0), mhz(100.0)),
                ],
            ),
            Placement::single(TaskId(1), CoreId(1), ms(0.0), ms(30.0), mhz(100.0)),
        ]);
        assert_eq!(
            overlapping.validate(&tasks),
            Err(ScheduleError::OverlappingSegments(TaskId(0)))
        );
    }

    #[test]
    fn detects_duplicate_placement_of_one_task() {
        let tasks = simple_tasks();
        // Task 0 placed twice (same work split across two placements) is a
        // duplicate reference, not a preemption.
        let sched = Schedule::new(vec![
            Placement::single(TaskId(0), CoreId(0), ms(0.0), ms(10.0), mhz(100.0)),
            Placement::single(TaskId(0), CoreId(1), ms(10.0), ms(20.0), mhz(100.0)),
            Placement::single(TaskId(1), CoreId(2), ms(0.0), ms(30.0), mhz(100.0)),
        ]);
        assert_eq!(
            sched.validate(&tasks),
            Err(ScheduleError::UnknownTask(TaskId(0)))
        );
    }

    #[test]
    fn detects_non_finite_segments() {
        let tasks = simple_tasks();
        let nan_start = Schedule::new(vec![
            Placement::new(
                TaskId(0),
                CoreId(0),
                vec![Segment::new(
                    Time::from_secs(f64::NAN),
                    ms(20.0),
                    mhz(100.0),
                )],
            ),
            Placement::single(TaskId(1), CoreId(1), ms(0.0), ms(30.0), mhz(100.0)),
        ]);
        assert_eq!(
            nan_start.validate(&tasks),
            Err(ScheduleError::MalformedSegment(TaskId(0)))
        );
        let inf_speed = Schedule::new(vec![
            Placement::new(
                TaskId(0),
                CoreId(0),
                vec![Segment::new(
                    ms(0.0),
                    ms(20.0),
                    Speed::from_hz(f64::INFINITY),
                )],
            ),
            Placement::single(TaskId(1), CoreId(1), ms(0.0), ms(30.0), mhz(100.0)),
        ]);
        assert_eq!(
            inf_speed.validate(&tasks),
            Err(ScheduleError::MalformedSegment(TaskId(0)))
        );
    }

    #[test]
    fn detects_start_before_release() {
        let tasks = TaskSet::new(vec![
            Task::new(0, ms(10.0), ms(50.0), Cycles::new(2.0e6)),
            Task::new(1, ms(0.0), ms(100.0), Cycles::new(3.0e6)),
        ])
        .unwrap();
        let sched = Schedule::new(vec![
            Placement::single(TaskId(0), CoreId(0), ms(0.0), ms(20.0), mhz(100.0)),
            Placement::single(TaskId(1), CoreId(1), ms(0.0), ms(30.0), mhz(100.0)),
        ]);
        assert_eq!(
            sched.validate(&tasks),
            Err(ScheduleError::OutsideWindow(TaskId(0)))
        );
    }

    #[test]
    fn validation_tolerance_absorbs_float_noise_but_not_real_violations() {
        let tasks = simple_tasks();
        // Deadline overshoot within the relative tolerance passes…
        let end_s = 0.050 * (1.0 + 0.5 * REL_TOL);
        let within = Schedule::new(vec![
            Placement::single(
                TaskId(0),
                CoreId(0),
                ms(0.0),
                Time::from_secs(end_s),
                Speed::from_hz(2.0e6 / end_s),
            ),
            Placement::single(TaskId(1), CoreId(1), ms(0.0), ms(30.0), mhz(100.0)),
        ]);
        within.validate(&tasks).unwrap();
        // …but a 10× tolerance overshoot is a miss.
        let beyond = Schedule::new(vec![
            Placement::single(
                TaskId(0),
                CoreId(0),
                ms(0.0),
                Time::from_secs(0.050 * (1.0 + 10.0 * REL_TOL)),
                Speed::from_hz(2.0e6 / (0.050 * (1.0 + 10.0 * REL_TOL))),
            ),
            Placement::single(TaskId(1), CoreId(1), ms(0.0), ms(30.0), mhz(100.0)),
        ]);
        assert_eq!(
            beyond.validate(&tasks),
            Err(ScheduleError::OutsideWindow(TaskId(0)))
        );
        // Executed work within the relative tolerance passes; 10× fails.
        let near_work = Schedule::new(vec![
            Placement::single(
                TaskId(0),
                CoreId(0),
                ms(0.0),
                ms(20.0),
                Speed::from_hz(2.0e6 * (1.0 + 0.5 * REL_TOL) / 0.020),
            ),
            Placement::single(TaskId(1), CoreId(1), ms(0.0), ms(30.0), mhz(100.0)),
        ]);
        near_work.validate(&tasks).unwrap();
        let off_work = Schedule::new(vec![
            Placement::single(
                TaskId(0),
                CoreId(0),
                ms(0.0),
                ms(20.0),
                Speed::from_hz(2.0e6 * (1.0 + 10.0 * REL_TOL) / 0.020),
            ),
            Placement::single(TaskId(1), CoreId(1), ms(0.0), ms(30.0), mhz(100.0)),
        ]);
        assert!(matches!(
            off_work.validate(&tasks),
            Err(ScheduleError::WorkMismatch { .. })
        ));
    }

    #[test]
    fn memory_busy_merging() {
        let sched = Schedule::new(vec![
            Placement::single(TaskId(0), CoreId(0), ms(0.0), ms(10.0), mhz(1.0)),
            Placement::single(TaskId(1), CoreId(1), ms(5.0), ms(20.0), mhz(1.0)),
            Placement::single(TaskId(2), CoreId(0), ms(30.0), ms(40.0), mhz(1.0)),
        ]);
        let busy = sched.memory_busy_intervals();
        assert_eq!(busy.len(), 2);
        assert!((busy[0].0.as_millis()).abs() < 1e-9);
        assert!((busy[0].1.as_millis() - 20.0).abs() < 1e-9);
        assert!((busy[1].0.as_millis() - 30.0).abs() < 1e-9);
        assert!((sched.memory_busy_time().as_millis() - 30.0).abs() < 1e-9);
        assert_eq!(sched.cores_used(), 2);
        assert_eq!(sched.cores(), vec![CoreId(0), CoreId(1)]);
        let (s, e) = sched.span().unwrap();
        assert_eq!(s, ms(0.0));
        assert_eq!(e, ms(40.0));
    }

    #[test]
    fn busy_intervals_drop_degenerate_segments() {
        // Zero-length and inverted segments contribute no busy time; the
        // kernel drops them during coalescing.
        let sched = Schedule::new(vec![Placement::new(
            TaskId(0),
            CoreId(0),
            vec![
                Segment::new(ms(5.0), ms(5.0), mhz(1.0)),
                Segment::new(ms(2.0), ms(1.0), mhz(1.0)),
                Segment::new(ms(0.0), ms(3.0), mhz(1.0)),
                Segment::new(ms(3.0), ms(4.0), mhz(1.0)),
            ],
        )]);
        assert_eq!(
            sched.memory_busy_intervals().as_slice(),
            &[(ms(0.0), ms(4.0))]
        );
    }

    #[test]
    fn schedule_collects_and_extends() {
        let p0 = Placement::single(TaskId(0), CoreId(0), ms(0.0), ms(1.0), mhz(1.0));
        let p1 = Placement::single(TaskId(1), CoreId(1), ms(0.0), ms(1.0), mhz(1.0));
        let mut sched: Schedule = vec![p0].into_iter().collect();
        sched.extend(vec![p1]);
        assert_eq!(sched.placements().len(), 2);
        assert!(sched.placement(TaskId(1)).is_some());
        assert!(sched.placement(TaskId(9)).is_none());
        let mut empty = Schedule::empty();
        assert!(empty.span().is_none());
        empty.push(Placement::single(
            TaskId(2),
            CoreId(0),
            ms(0.0),
            ms(1.0),
            mhz(1.0),
        ));
        assert_eq!(empty.placements().len(), 1);
    }

    #[test]
    fn core_busy_intervals_are_per_core() {
        let sched = Schedule::new(vec![
            Placement::single(TaskId(0), CoreId(0), ms(0.0), ms(10.0), mhz(1.0)),
            Placement::single(TaskId(1), CoreId(1), ms(5.0), ms(20.0), mhz(1.0)),
        ]);
        assert_eq!(sched.core_busy_intervals(CoreId(0)).len(), 1);
        assert_eq!(sched.core_busy_intervals(CoreId(1))[0], (ms(5.0), ms(20.0)));
        assert!(sched.core_busy_intervals(CoreId(2)).is_empty());
    }

    #[test]
    fn core_id_display() {
        assert_eq!(CoreId(3).to_string(), "core3");
    }

    #[test]
    fn validate_in_matches_allocating_validate_on_warm_workspace() {
        let tasks = simple_tasks();
        let ok = Schedule::new(vec![
            Placement::single(TaskId(0), CoreId(0), ms(0.0), ms(20.0), mhz(100.0)),
            Placement::single(TaskId(1), CoreId(0), ms(20.0), ms(50.0), mhz(100.0)),
        ]);
        let conflict = Schedule::new(vec![
            Placement::single(TaskId(0), CoreId(0), ms(0.0), ms(20.0), mhz(100.0)),
            Placement::single(TaskId(1), CoreId(0), ms(10.0), ms(40.0), mhz(100.0)),
        ]);
        let missing = Schedule::new(vec![Placement::single(
            TaskId(0),
            CoreId(0),
            ms(0.0),
            ms(20.0),
            mhz(100.0),
        )]);
        let mut ws = Workspace::new();
        // Reuse one workspace across all cases: results must match the
        // allocating path, including which error is reported first.
        for sched in [&ok, &conflict, &missing, &ok] {
            assert_eq!(
                sched.validate_with_limits_in(&tasks, None, Some(mhz(1900.0)), &mut ws),
                sched.validate_with_limits(&tasks, None, Some(mhz(1900.0)))
            );
        }
    }

    #[test]
    fn push_segment_extends_in_place() {
        let mut p = Placement::new(TaskId(0), CoreId(1), Vec::new());
        p.push_segment(Segment::new(ms(0.0), ms(5.0), mhz(10.0)));
        p.push_segment(Segment::new(ms(5.0), ms(9.0), mhz(20.0)));
        assert_eq!(p.segments().len(), 2);
        assert_eq!(p.end(), Some(ms(9.0)));
    }
}
