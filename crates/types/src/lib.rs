//! Domain types shared by every crate in the `sdem` workspace.
//!
//! The workspace reproduces the SDEM (Sleep and DVS-aware system-wide Energy
//! Minimization) problem from Fu, Chau, Li and Xue, *"Race to idle or not:
//! balancing the memory sleep time with DVS for energy minimization"*
//! (DATE 2015 / Real-Time Systems 2017). This crate holds the vocabulary that
//! the algorithms, simulator and benchmarks all speak:
//!
//! * strongly-typed scalar quantities ([`Time`], [`Speed`], [`Cycles`],
//!   [`Watts`], [`Joules`]) so that seconds can never be added to hertz;
//! * the real-time [`Task`] model and validated [`TaskSet`] collections with
//!   structural classification (common release time, agreeable deadlines);
//! * explicit [`Schedule`]s — per-core, per-task execution [`Segment`]s —
//!   which every scheduler in the workspace produces and the simulator
//!   consumes;
//! * the canonical interval kernel ([`IntervalSet`], [`Timeline`]): sorted,
//!   coalesced, half-open `[start, end)` intervals with union, intersection,
//!   complement and gap iteration — the single implementation behind every
//!   busy/idle computation in the workspace;
//! * numeric helpers ([`numeric`]) used by the convex minimizations in the
//!   scheduling algorithms.
//!
//! # Examples
//!
//! ```
//! use sdem_types::{Task, TaskSet, Time, Cycles};
//!
//! # fn main() -> Result<(), sdem_types::TaskSetError> {
//! let tasks = TaskSet::new(vec![
//!     Task::new(0, Time::from_millis(0.0), Time::from_millis(40.0), Cycles::new(3.0e6)),
//!     Task::new(1, Time::from_millis(0.0), Time::from_millis(90.0), Cycles::new(4.5e6)),
//! ])?;
//! assert!(tasks.is_common_release());
//! assert!(tasks.is_agreeable());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod interval;
mod kind;
pub mod numeric;
pub mod partition;
mod schedule;
pub mod soa;
mod task;
mod units;
mod workspace;

pub use error::{ScheduleError, TaskSetError};
pub use interval::{IntervalSet, Timeline};
pub use kind::{ErrorKind, ERROR_KINDS};
pub use partition::Partition;
pub use schedule::{CoreId, Placement, Schedule, Segment};
pub use soa::{TaskRow, TaskSoa};
pub use task::{Task, TaskId, TaskSet};
pub use units::{Cycles, Joules, Speed, Time, Watts};
pub use workspace::Workspace;
