//! Internal scalar job representation and EDF machinery shared by the
//! single-core policies.

use sdem_types::{Segment, Speed, TaskId, Time};

/// A job in plain seconds/cycles, as the single-core algorithms see it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Job {
    pub id: TaskId,
    pub r: f64,
    pub d: f64,
    pub w: f64,
}

/// One produced run: `(job, start, end, speed)`.
pub(crate) type Run = (TaskId, f64, f64, f64);

/// Preemptive EDF of `jobs` at constant speed `speed`, over the available
/// (sorted, disjoint) intervals. All job windows must lie within the span
/// of `avail`, and total work must fit exactly or loosely
/// (`Σ w ≤ speed · |avail|`). Returns the runs in chronological order.
pub(crate) fn edf_at_speed(jobs: &[Job], avail: &[(f64, f64)], speed: f64) -> Vec<Run> {
    let mut rem: Vec<f64> = jobs.iter().map(|j| j.w).collect();
    let mut runs: Vec<Run> = Vec::new();
    if speed <= 0.0 {
        return runs;
    }
    // Release events, sorted.
    let mut releases: Vec<f64> = jobs.iter().map(|j| j.r).collect();
    releases.sort_by(f64::total_cmp);

    for &(a, b) in avail {
        let mut t = a;
        while t < b - 1e-15 * b.abs().max(1.0) {
            // Ready job with the earliest deadline.
            let ready = jobs
                .iter()
                .enumerate()
                .filter(|(k, j)| rem[*k] > 1e-12 * j.w.max(1.0) && j.r <= t + 1e-12)
                .min_by(|(_, x), (_, y)| x.d.total_cmp(&y.d));
            match ready {
                Some((k, job)) => {
                    // Run until completion, next release, or interval end.
                    let completion = t + rem[k] / speed;
                    let next_release = releases
                        .iter()
                        .copied()
                        .find(|&r| r > t + 1e-12)
                        .unwrap_or(f64::INFINITY);
                    let until = completion.min(next_release).min(b);
                    if until > t {
                        runs.push((job.id, t, until, speed));
                        rem[k] -= speed * (until - t);
                    }
                    t = until;
                }
                None => {
                    // Idle: jump to the next release inside this interval.
                    let next_release = releases
                        .iter()
                        .copied()
                        .find(|&r| r > t + 1e-12)
                        .unwrap_or(f64::INFINITY);
                    if next_release >= b {
                        break;
                    }
                    t = next_release;
                }
            }
        }
    }
    runs
}

/// Groups chronological runs into per-task segment lists, merging adjacent
/// same-speed runs of the same task.
pub(crate) fn runs_to_segments(runs: &[Run]) -> Vec<(TaskId, Vec<Segment>)> {
    let mut per_task: Vec<(TaskId, Vec<Segment>)> = Vec::new();
    for &(id, a, b, s) in runs {
        if b <= a {
            continue;
        }
        let entry = match per_task.iter_mut().find(|(tid, _)| *tid == id) {
            Some(e) => e,
            None => {
                per_task.push((id, Vec::new()));
                per_task.last_mut().expect("just pushed")
            }
        };
        let segs = &mut entry.1;
        if let Some(last) = segs.last_mut() {
            let contiguous = (last.end().as_secs() - a).abs() < 1e-12 * a.abs().max(1.0);
            let same_speed = (last.speed().as_hz() - s).abs() <= 1e-9 * s.abs().max(1.0);
            if contiguous && same_speed {
                *last = Segment::new(last.start(), Time::from_secs(b), last.speed());
                continue;
            }
        }
        segs.push(Segment::new(
            Time::from_secs(a),
            Time::from_secs(b),
            Speed::from_hz(s),
        ));
    }
    per_task
}

/// Subtracts `frozen` (sorted, disjoint) from `[a, b]`, returning the
/// remaining available intervals.
pub(crate) fn subtract(a: f64, b: f64, frozen: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    let mut cursor = a;
    for &(fa, fb) in frozen {
        if fb <= a || fa >= b {
            continue;
        }
        if fa > cursor {
            out.push((cursor, fa.min(b)));
        }
        cursor = cursor.max(fb);
        if cursor >= b {
            break;
        }
    }
    if cursor < b {
        out.push((cursor, b));
    }
    out
}

/// Inserts `[a, b]` into a sorted disjoint interval list, merging overlaps.
pub(crate) fn freeze(frozen: &mut Vec<(f64, f64)>, a: f64, b: f64) {
    frozen.push((a, b));
    frozen.sort_by(|x, y| x.0.total_cmp(&y.0));
    let mut merged: Vec<(f64, f64)> = Vec::with_capacity(frozen.len());
    for &(x, y) in frozen.iter() {
        match merged.last_mut() {
            Some(last) if x <= last.1 => last.1 = last.1.max(y),
            _ => merged.push((x, y)),
        }
    }
    *frozen = merged;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: usize, r: f64, d: f64, w: f64) -> Job {
        Job {
            id: TaskId(id),
            r,
            d,
            w,
        }
    }

    #[test]
    fn edf_orders_by_deadline() {
        let jobs = [job(0, 0.0, 10.0, 2.0), job(1, 0.0, 5.0, 2.0)];
        let runs = edf_at_speed(&jobs, &[(0.0, 4.0)], 1.0);
        // Job 1 (earlier deadline) first.
        assert_eq!(runs[0].0, TaskId(1));
        assert_eq!(runs[1].0, TaskId(0));
        assert!((runs[0].2 - 2.0).abs() < 1e-12);
        assert!((runs[1].2 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn edf_preempts_on_release() {
        // Job 0 (late deadline) starts; job 1 (early deadline) arrives at 1
        // and preempts.
        let jobs = [job(0, 0.0, 10.0, 3.0), job(1, 1.0, 3.0, 1.0)];
        let runs = edf_at_speed(&jobs, &[(0.0, 10.0)], 1.0);
        let ids: Vec<usize> = runs.iter().map(|r| r.0 .0).collect();
        assert_eq!(ids, vec![0, 1, 0]);
        let segs = runs_to_segments(&runs);
        let j0 = segs.iter().find(|(id, _)| *id == TaskId(0)).unwrap();
        assert_eq!(j0.1.len(), 2, "preempted job should have two segments");
    }

    #[test]
    fn edf_skips_idle_until_release() {
        let jobs = [job(0, 2.0, 5.0, 1.0)];
        let runs = edf_at_speed(&jobs, &[(0.0, 5.0)], 1.0);
        assert_eq!(runs.len(), 1);
        assert!((runs[0].1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn edf_respects_available_intervals() {
        let jobs = [job(0, 0.0, 10.0, 2.0)];
        let runs = edf_at_speed(&jobs, &[(0.0, 1.0), (5.0, 6.0)], 1.0);
        assert_eq!(runs.len(), 2);
        assert!((runs[0].2 - 1.0).abs() < 1e-12);
        assert!((runs[1].1 - 5.0).abs() < 1e-12);
    }

    #[test]
    fn runs_merge_contiguous_same_speed() {
        let runs = vec![
            (TaskId(0), 0.0, 1.0, 2.0),
            (TaskId(0), 1.0, 2.0, 2.0),
            (TaskId(0), 3.0, 4.0, 2.0),
        ];
        let segs = runs_to_segments(&runs);
        assert_eq!(segs[0].1.len(), 2);
        assert!((segs[0].1[0].length().as_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn subtract_and_freeze() {
        let mut frozen = Vec::new();
        freeze(&mut frozen, 2.0, 4.0);
        freeze(&mut frozen, 6.0, 8.0);
        freeze(&mut frozen, 3.0, 5.0);
        assert_eq!(frozen, vec![(2.0, 5.0), (6.0, 8.0)]);
        let avail = subtract(0.0, 10.0, &frozen);
        assert_eq!(avail, vec![(0.0, 2.0), (5.0, 6.0), (8.0, 10.0)]);
        let avail = subtract(3.0, 7.0, &frozen);
        assert_eq!(avail, vec![(5.0, 6.0)]);
        assert!(subtract(2.5, 4.5, &frozen).is_empty());
    }
}
