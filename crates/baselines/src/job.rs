//! Internal scalar job representation and EDF machinery shared by the
//! single-core policies.

use sdem_types::{Segment, Speed, TaskId, Time, Workspace};

/// A job in plain seconds/cycles, as the single-core algorithms see it:
/// `(id, release, deadline, work)`. This is the workspace's pooled
/// task-row shape ([`sdem_types::TaskRow`]), so job lists, run lists and
/// the SoA view all draw from the same `Workspace::take_rows` pool.
pub(crate) type Job = sdem_types::TaskRow;

/// One produced run: `(job, start, end, speed)` — same row shape as
/// [`Job`], so run buffers share the row pool too.
pub(crate) type Run = (TaskId, f64, f64, f64);

/// Preemptive EDF of `jobs` at constant speed `speed`, over the available
/// (sorted, disjoint) intervals, **appending** the runs to `out` in
/// chronological order (YDS calls this once per critical interval). All
/// job windows must lie within the span of `avail`, and total work must
/// fit exactly or loosely (`Σ w ≤ speed · |avail|`). Scratch comes from
/// `ws`.
pub(crate) fn edf_at_speed_in(
    jobs: &[Job],
    avail: &[(f64, f64)],
    speed: f64,
    ws: &mut Workspace,
    out: &mut Vec<Run>,
) {
    if speed <= 0.0 {
        return;
    }
    let mut rem = ws.take_f64s();
    rem.extend(jobs.iter().map(|j| j.3));
    // Release events, sorted. The keys are the elements themselves, so the
    // unstable sort is indistinguishable from a stable one here.
    let mut releases = ws.take_f64s();
    releases.extend(jobs.iter().map(|j| j.1));
    releases.sort_unstable_by(f64::total_cmp);

    for &(a, b) in avail {
        let mut t = a;
        while t < b - 1e-15 * b.abs().max(1.0) {
            // Ready job with the earliest deadline (first minimum wins, so
            // job order is part of the tie-breaking contract).
            let ready = jobs
                .iter()
                .enumerate()
                .filter(|(k, j)| rem[*k] > 1e-12 * j.3.max(1.0) && j.1 <= t + 1e-12)
                .min_by(|(_, x), (_, y)| x.2.total_cmp(&y.2));
            match ready {
                Some((k, job)) => {
                    // Run until completion, next release, or interval end.
                    let completion = t + rem[k] / speed;
                    let next_release = releases
                        .iter()
                        .copied()
                        .find(|&r| r > t + 1e-12)
                        .unwrap_or(f64::INFINITY);
                    let until = completion.min(next_release).min(b);
                    if until > t {
                        out.push((job.0, t, until, speed));
                        rem[k] -= speed * (until - t);
                    }
                    t = until;
                }
                None => {
                    // Idle: jump to the next release inside this interval.
                    let next_release = releases
                        .iter()
                        .copied()
                        .find(|&r| r > t + 1e-12)
                        .unwrap_or(f64::INFINITY);
                    if next_release >= b {
                        break;
                    }
                    t = next_release;
                }
            }
        }
    }
    ws.recycle_f64s(releases);
    ws.recycle_f64s(rem);
}

/// Appends run `[a, b] @ s` to a segment list, merging with the last
/// segment when contiguous and same-speed — the one merge rule every
/// schedule assembler in this crate shares. Degenerate runs are dropped.
pub(crate) fn push_run_segment(segs: &mut Vec<Segment>, a: f64, b: f64, s: f64) {
    if b <= a {
        return;
    }
    if let Some(last) = segs.last_mut() {
        let contiguous = (last.end().as_secs() - a).abs() < 1e-12 * a.abs().max(1.0);
        let same_speed = (last.speed().as_hz() - s).abs() <= 1e-9 * s.abs().max(1.0);
        if contiguous && same_speed {
            *last = Segment::new(last.start(), Time::from_secs(b), last.speed());
            return;
        }
    }
    segs.push(Segment::new(
        Time::from_secs(a),
        Time::from_secs(b),
        Speed::from_hz(s),
    ));
}

/// Sorts runs by start time, reproducing a *stable* sort exactly: the
/// argsort key is `(start, original index)`, so equal starts keep their
/// input order without the stable sort's merge buffer. Scratch comes
/// from `ws`.
pub(crate) fn sort_runs_by_start(runs: &mut Vec<Run>, ws: &mut Workspace) {
    let mut keyed = ws.take_keyed();
    keyed.extend(runs.iter().enumerate().map(|(i, r)| (r.1, i)));
    keyed.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut scratch = ws.take_rows();
    scratch.extend(keyed.iter().map(|&(_, i)| runs[i]));
    core::mem::swap(runs, &mut scratch);
    ws.recycle_rows(scratch);
    ws.recycle_keyed(keyed);
}

/// Subtracts `frozen` (sorted, disjoint) from `[a, b]`, filling `out`
/// (cleared first) with the remaining available intervals.
pub(crate) fn subtract_into(a: f64, b: f64, frozen: &[(f64, f64)], out: &mut Vec<(f64, f64)>) {
    out.clear();
    let mut cursor = a;
    for &(fa, fb) in frozen {
        if fb <= a || fa >= b {
            continue;
        }
        if fa > cursor {
            out.push((cursor, fa.min(b)));
        }
        cursor = cursor.max(fb);
        if cursor >= b {
            break;
        }
    }
    if cursor < b {
        out.push((cursor, b));
    }
}

/// Total length of `[a, b]` minus the frozen time inside it — the
/// denominator of the YDS intensity. Accumulates each remaining
/// interval's length in the same left-to-right order [`subtract_into`]
/// would produce it, so the floating-point sum is bit-identical to
/// materializing the intervals and summing them, without the buffer.
pub(crate) fn subtract_len(a: f64, b: f64, frozen: &[(f64, f64)]) -> f64 {
    // `-0.0` is `<f64 as Sum>::sum`'s starting accumulator; keeping it makes
    // the no-available-time result (-0.0) bit-identical to the materialized
    // sum, not just numerically equal.
    let mut sum = -0.0f64;
    let mut cursor = a;
    for &(fa, fb) in frozen {
        if fb <= a || fa >= b {
            continue;
        }
        if fa > cursor {
            sum += fa.min(b) - cursor;
        }
        cursor = cursor.max(fb);
        if cursor >= b {
            break;
        }
    }
    if cursor < b {
        sum += b - cursor;
    }
    sum
}

/// Inserts `[a, b]` into a sorted disjoint interval list, merging
/// overlaps in place (no scratch buffer: binary-search insert, then one
/// write-pointer coalescing pass). Equal-start tie order differs from the
/// historical push-and-stable-sort, but merging takes the max end either
/// way, so the merged result is identical.
pub(crate) fn freeze(frozen: &mut Vec<(f64, f64)>, a: f64, b: f64) {
    let idx = frozen.partition_point(|p| p.0.total_cmp(&a).is_lt());
    frozen.insert(idx, (a, b));
    let mut write = 0;
    for read in 0..frozen.len() {
        let (x, y) = frozen[read];
        if write > 0 && x <= frozen[write - 1].1 {
            frozen[write - 1].1 = frozen[write - 1].1.max(y);
        } else {
            frozen[write] = (x, y);
            write += 1;
        }
    }
    frozen.truncate(write);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: usize, r: f64, d: f64, w: f64) -> Job {
        (TaskId(id), r, d, w)
    }

    fn edf_at_speed(jobs: &[Job], avail: &[(f64, f64)], speed: f64) -> Vec<Run> {
        let mut out = Vec::new();
        edf_at_speed_in(jobs, avail, speed, &mut Workspace::new(), &mut out);
        out
    }

    /// Test helper: groups chronological runs into per-task segment lists
    /// using the shared merge rule.
    fn runs_to_segments(runs: &[Run]) -> Vec<(TaskId, Vec<Segment>)> {
        let mut per_task: Vec<(TaskId, Vec<Segment>)> = Vec::new();
        for &(id, a, b, s) in runs {
            let entry = match per_task.iter_mut().find(|(tid, _)| *tid == id) {
                Some(e) => e,
                None => {
                    per_task.push((id, Vec::new()));
                    per_task.last_mut().expect("just pushed")
                }
            };
            push_run_segment(&mut entry.1, a, b, s);
        }
        per_task
    }

    fn subtract(a: f64, b: f64, frozen: &[(f64, f64)]) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        subtract_into(a, b, frozen, &mut out);
        out
    }

    #[test]
    fn edf_orders_by_deadline() {
        let jobs = [job(0, 0.0, 10.0, 2.0), job(1, 0.0, 5.0, 2.0)];
        let runs = edf_at_speed(&jobs, &[(0.0, 4.0)], 1.0);
        // Job 1 (earlier deadline) first.
        assert_eq!(runs[0].0, TaskId(1));
        assert_eq!(runs[1].0, TaskId(0));
        assert!((runs[0].2 - 2.0).abs() < 1e-12);
        assert!((runs[1].2 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn edf_preempts_on_release() {
        // Job 0 (late deadline) starts; job 1 (early deadline) arrives at 1
        // and preempts.
        let jobs = [job(0, 0.0, 10.0, 3.0), job(1, 1.0, 3.0, 1.0)];
        let runs = edf_at_speed(&jobs, &[(0.0, 10.0)], 1.0);
        let ids: Vec<usize> = runs.iter().map(|r| r.0 .0).collect();
        assert_eq!(ids, vec![0, 1, 0]);
        let segs = runs_to_segments(&runs);
        let j0 = segs.iter().find(|(id, _)| *id == TaskId(0)).unwrap();
        assert_eq!(j0.1.len(), 2, "preempted job should have two segments");
    }

    #[test]
    fn edf_skips_idle_until_release() {
        let jobs = [job(0, 2.0, 5.0, 1.0)];
        let runs = edf_at_speed(&jobs, &[(0.0, 5.0)], 1.0);
        assert_eq!(runs.len(), 1);
        assert!((runs[0].1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn edf_respects_available_intervals() {
        let jobs = [job(0, 0.0, 10.0, 2.0)];
        let runs = edf_at_speed(&jobs, &[(0.0, 1.0), (5.0, 6.0)], 1.0);
        assert_eq!(runs.len(), 2);
        assert!((runs[0].2 - 1.0).abs() < 1e-12);
        assert!((runs[1].1 - 5.0).abs() < 1e-12);
    }

    #[test]
    fn edf_appends_and_reuses_warm_workspace() {
        let mut ws = Workspace::new();
        let jobs = [job(0, 0.0, 10.0, 2.0)];
        let mut out = vec![(TaskId(9), -1.0, -0.5, 1.0)];
        edf_at_speed_in(&jobs, &[(0.0, 4.0)], 1.0, &mut ws, &mut out);
        assert_eq!(out.len(), 2, "appends after existing runs");
        assert_eq!(out[0].0, TaskId(9));
        // Second call on the warm workspace gives the same runs.
        let mut again = Vec::new();
        edf_at_speed_in(&jobs, &[(0.0, 4.0)], 1.0, &mut ws, &mut again);
        assert_eq!(&out[1..], &again[..]);
    }

    #[test]
    fn runs_merge_contiguous_same_speed() {
        let runs = vec![
            (TaskId(0), 0.0, 1.0, 2.0),
            (TaskId(0), 1.0, 2.0, 2.0),
            (TaskId(0), 3.0, 4.0, 2.0),
        ];
        let segs = runs_to_segments(&runs);
        assert_eq!(segs[0].1.len(), 2);
        assert!((segs[0].1[0].length().as_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sort_runs_by_start_is_stable_on_ties() {
        let mut ws = Workspace::new();
        let mut runs = vec![
            (TaskId(2), 5.0, 6.0, 1.0),
            (TaskId(0), 1.0, 2.0, 1.0),
            (TaskId(1), 1.0, 3.0, 2.0),
            (TaskId(3), 0.0, 1.0, 1.0),
        ];
        sort_runs_by_start(&mut runs, &mut ws);
        let ids: Vec<usize> = runs.iter().map(|r| r.0 .0).collect();
        // Equal starts (tasks 0 and 1) keep their input order.
        assert_eq!(ids, vec![3, 0, 1, 2]);
    }

    #[test]
    fn subtract_and_freeze() {
        let mut frozen = Vec::new();
        freeze(&mut frozen, 2.0, 4.0);
        freeze(&mut frozen, 6.0, 8.0);
        freeze(&mut frozen, 3.0, 5.0);
        assert_eq!(frozen, vec![(2.0, 5.0), (6.0, 8.0)]);
        let avail = subtract(0.0, 10.0, &frozen);
        assert_eq!(avail, vec![(0.0, 2.0), (5.0, 6.0), (8.0, 10.0)]);
        let avail = subtract(3.0, 7.0, &frozen);
        assert_eq!(avail, vec![(5.0, 6.0)]);
        assert!(subtract(2.5, 4.5, &frozen).is_empty());
    }

    #[test]
    fn subtract_len_matches_materialized_sum() {
        let mut frozen = Vec::new();
        freeze(&mut frozen, 2.0, 4.0);
        freeze(&mut frozen, 6.0, 8.0);
        for &(a, b) in &[(0.0, 10.0), (3.0, 7.0), (2.5, 3.5), (9.0, 9.5)] {
            let materialized: f64 = subtract(a, b, &frozen).iter().map(|&(x, y)| y - x).sum();
            assert_eq!(
                subtract_len(a, b, &frozen).to_bits(),
                materialized.to_bits()
            );
        }
    }

    #[test]
    fn freeze_touching_and_covering_inserts() {
        let mut frozen = vec![(1.0, 2.0), (4.0, 5.0)];
        // Touching on both sides collapses everything.
        freeze(&mut frozen, 2.0, 4.0);
        assert_eq!(frozen, vec![(1.0, 5.0)]);
        // Covering insert swallows the rest.
        freeze(&mut frozen, 0.0, 9.0);
        assert_eq!(frozen, vec![(0.0, 9.0)]);
        // Equal-start insert merges to the max end.
        freeze(&mut frozen, 0.0, 12.0);
        assert_eq!(frozen, vec![(0.0, 12.0)]);
    }
}
