//! Baseline scheduler errors.

use core::fmt;

use sdem_types::TaskId;

/// Errors from the baseline schedulers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BaselineError {
    /// The schedule produced for this task needs more than the platform's
    /// maximum speed — the instance (or the core assignment) is infeasible.
    Infeasible(TaskId),
    /// A positive number of cores is required.
    NoCores,
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Infeasible(id) => write!(
                f,
                "task {id} needs more than the maximum speed under this assignment"
            ),
            Self::NoCores => write!(f, "at least one core is required"),
        }
    }
}

impl std::error::Error for BaselineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(BaselineError::Infeasible(TaskId(3))
            .to_string()
            .contains("T3"));
        assert!(BaselineError::NoCores.to_string().contains("core"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<BaselineError>();
    }
}
