//! Optimal Available (OA): the online single-core speed policy.
//!
//! At every job arrival, OA recomputes the optimal (YDS) schedule for the
//! work still available — remaining work of unfinished jobs, windows
//! clipped to start now — and follows it until the next arrival. Yao et
//! al. proved OA is `α^α`-competitive on one core; Albers et al. carried it
//! to multiple cores, which is how the paper's MBKP baseline uses it (one
//! OA instance per core).

use sdem_power::Platform;
use sdem_types::{CoreId, Schedule, TaskSet, Workspace};

use crate::job::{sort_runs_by_start, Job, Run};
use crate::yds::{assemble_in, clamp_to_min_speed, to_job, yds_runs_in};
use crate::BaselineError;

/// Computes the OA runs for one core's jobs, in absolute seconds, into
/// `out` (cleared first). All scratch comes from `ws`.
pub(crate) fn oa_runs_in(jobs: &[Job], ws: &mut Workspace, out: &mut Vec<Run>) {
    out.clear();
    let mut rem = ws.take_f64s();
    rem.extend(jobs.iter().map(|j| j.3));
    let mut arrivals = ws.take_f64s();
    arrivals.extend(jobs.iter().map(|j| j.1));
    // Plain f64 keys, so the unstable sort matches the stable one.
    arrivals.sort_unstable_by(f64::total_cmp);
    arrivals.dedup();

    let mut plan = ws.take_rows();
    let mut live = ws.take_rows();

    let index_of = |id| jobs.iter().position(|j: &Job| j.0 == id).expect("own job");

    for &t in &arrivals {
        // Consume the previous plan up to t.
        for &(id, a, b, s) in &plan {
            let end = b.min(t);
            if end > a {
                out.push((id, a, end, s));
                rem[index_of(id)] -= s * (end - a);
            }
        }
        // Replan from t over the *arrived* remaining work only — OA must
        // not peek at future releases.
        live.clear();
        live.extend(
            jobs.iter()
                .enumerate()
                .filter(|(i, j)| j.1 <= t + 1e-12 && rem[*i] > 1e-12 * j.3.max(1.0))
                .map(|(i, j)| (j.0, t, j.2, rem[i])),
        );
        yds_runs_in(&live, ws, &mut plan);
    }
    // Run the final plan to completion.
    out.extend_from_slice(&plan);
    sort_runs_by_start(out, ws);
    ws.recycle_rows(live);
    ws.recycle_rows(plan);
    ws.recycle_f64s(arrivals);
    ws.recycle_f64s(rem);
}

/// OA schedule of the whole task set on a single core.
///
/// # Errors
///
/// [`BaselineError::Infeasible`] when the required speed exceeds `s_up`.
///
/// # Examples
///
/// ```
/// use sdem_baselines::oa::schedule_single_core_online;
/// use sdem_power::Platform;
/// use sdem_types::{Task, TaskSet, Time, Cycles};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let platform = Platform::paper_defaults();
/// let tasks = TaskSet::new(vec![
///     Task::new(0, Time::ZERO, Time::from_millis(80.0), Cycles::new(2.0e7)),
///     Task::new(1, Time::from_millis(30.0), Time::from_millis(120.0), Cycles::new(1.0e7)),
/// ])?;
/// let schedule = schedule_single_core_online(&tasks, &platform)?;
/// schedule.validate(&tasks)?;
/// # Ok(())
/// # }
/// ```
pub fn schedule_single_core_online(
    tasks: &TaskSet,
    platform: &Platform,
) -> Result<Schedule, BaselineError> {
    let mut ws = Workspace::new();
    let jobs: Vec<Job> = tasks.iter().map(to_job).collect();
    let mut runs = Vec::new();
    oa_runs_in(&jobs, &mut ws, &mut runs);
    clamp_to_min_speed(&mut runs, platform);
    let s_up = platform.core().max_speed().as_hz();
    if let Some(r) = runs.iter().find(|r| r.3 > s_up * (1.0 + 1e-9)) {
        return Err(BaselineError::Infeasible(r.0));
    }
    Ok(assemble_in(tasks, &runs, |_| CoreId(0), &mut ws))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdem_power::{CorePower, MemoryPower};
    use sdem_sim::{simulate, SleepPolicy};
    use sdem_types::{Cycles, Task, TaskId, Time, Watts};

    fn sec(v: f64) -> Time {
        Time::from_secs(v)
    }

    fn platform() -> Platform {
        Platform::new(
            CorePower::simple(0.0, 1.0, 3.0),
            MemoryPower::new(Watts::new(0.0)),
        )
    }

    fn tset(specs: &[(f64, f64, f64)]) -> TaskSet {
        TaskSet::new(
            specs
                .iter()
                .enumerate()
                .map(|(i, &(r, d, w))| Task::new(i, sec(r), sec(d), Cycles::new(w)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn single_arrival_equals_yds() {
        let p = platform();
        let tasks = tset(&[(0.0, 8.0, 3.0), (0.0, 5.0, 2.0)]);
        let oa = schedule_single_core_online(&tasks, &p).unwrap();
        let yds = crate::yds::schedule_single_core(&tasks, &p).unwrap();
        let e_oa = simulate(&oa, &tasks, &p, SleepPolicy::NeverSleep)
            .unwrap()
            .core_dynamic
            .value();
        let e_yds = simulate(&yds, &tasks, &p, SleepPolicy::NeverSleep)
            .unwrap()
            .core_dynamic
            .value();
        assert!((e_oa - e_yds).abs() < 1e-9 * e_yds.max(1.0));
    }

    #[test]
    fn oa_meets_deadlines_with_staggered_arrivals() {
        let p = platform();
        let tasks = tset(&[
            (0.0, 10.0, 2.0),
            (3.0, 8.0, 2.5),
            (4.0, 15.0, 1.0),
            (9.0, 20.0, 3.0),
        ]);
        let sched = schedule_single_core_online(&tasks, &p).unwrap();
        sched.validate(&tasks).unwrap();
    }

    #[test]
    fn oa_at_least_offline_optimal_energy() {
        // OA is online: it can never beat offline YDS.
        let p = platform();
        let tasks = tset(&[(0.0, 10.0, 1.0), (6.0, 10.0, 4.0)]);
        let oa = schedule_single_core_online(&tasks, &p).unwrap();
        let yds = crate::yds::schedule_single_core(&tasks, &p).unwrap();
        let e_oa = simulate(&oa, &tasks, &p, SleepPolicy::NeverSleep)
            .unwrap()
            .core_dynamic
            .value();
        let e_yds = simulate(&yds, &tasks, &p, SleepPolicy::NeverSleep)
            .unwrap()
            .core_dynamic
            .value();
        assert!(
            e_oa >= e_yds * (1.0 - 1e-9),
            "online OA {e_oa} beats offline YDS {e_yds}"
        );
        // And this instance forces OA to regret: the late heavy job makes
        // the early plan too slow.
        assert!(
            e_oa > e_yds * 1.01,
            "expected strict regret, {e_oa} vs {e_yds}"
        );
    }

    #[test]
    fn speed_cap_detected() {
        let core = CorePower::simple(0.0, 1.0, 3.0).with_max_speed(sdem_types::Speed::from_hz(1.0));
        let p = Platform::new(core, MemoryPower::new(Watts::new(0.0)));
        // Feasible offline requires foresight; OA's lazy start makes the
        // tail too dense: r=0 d=2 w=1 plans at 0.5; at t=1 arrival w=1.9
        // d=2 ⇒ needed speed (1.9 + 0.5)/1 > 1.
        let tasks = tset(&[(0.0, 2.0, 1.0), (1.0, 2.0, 1.9)]);
        assert!(matches!(
            schedule_single_core_online(&tasks, &p),
            Err(BaselineError::Infeasible(_))
        ));
    }

    #[test]
    fn zero_work_tasks_get_empty_placements() {
        let p = platform();
        let tasks = tset(&[(0.0, 4.0, 0.0), (0.0, 4.0, 2.0)]);
        let sched = schedule_single_core_online(&tasks, &p).unwrap();
        assert!(sched.placement(TaskId(0)).unwrap().segments().is_empty());
        sched.validate(&tasks).unwrap();
    }
}
