//! MBKP: the paper's multi-core DVS baseline (after Albers, Müller and
//! Schmelzer, SPAA 2007).
//!
//! Tasks are assigned to cores in arrival order — round-robin, as in the
//! paper's experimental setup (§8.1.2), or to the least-loaded core — and
//! each core independently runs a DVS speed policy: *Optimal Available*
//! online (the evaluated configuration) or YDS offline. MBKP never sleeps
//! the memory; **MBKPS** is the identical schedule priced with the naive
//! always-sleep memory policy (`SleepPolicy::AlwaysSleep` in `sdem-sim`).

use sdem_power::Platform;
use sdem_types::{CoreId, Schedule, TaskId, TaskSet};

use crate::job::{Job, Run};
use crate::oa::oa_runs;
use crate::yds::{assemble, clamp_to_min_speed, to_job, yds_runs};
use crate::BaselineError;

/// How arriving tasks are distributed over the cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Assignment {
    /// Task `k` (in arrival order) goes to core `k mod C` — the paper's
    /// experimental setup.
    #[default]
    RoundRobin,
    /// Each task goes to the core with the least total work assigned so
    /// far (a common practical variant; used as an ablation).
    LeastLoaded,
}

/// Computes the per-task core assignment in arrival order.
///
/// # Panics
///
/// Panics if `cores == 0` (public drivers guard this).
pub fn assign(tasks: &TaskSet, cores: usize, policy: Assignment) -> Vec<(TaskId, CoreId)> {
    assert!(cores > 0, "cores must be positive");
    let arrivals = tasks.sorted_by_release();
    let mut loads = vec![0.0f64; cores];
    arrivals
        .iter()
        .enumerate()
        .map(|(k, t)| {
            let core = match policy {
                Assignment::RoundRobin => k % cores,
                Assignment::LeastLoaded => loads
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .expect("cores > 0"),
            };
            loads[core] += t.work().value();
            (t.id(), CoreId(core))
        })
        .collect()
}

/// Online MBKP: arrival-order assignment + per-core Optimal Available.
///
/// # Errors
///
/// [`BaselineError::NoCores`] if `cores == 0`;
/// [`BaselineError::Infeasible`] when some core's OA plan exceeds `s_up`
/// under this assignment.
///
/// # Examples
///
/// ```
/// use sdem_baselines::mbkp::{schedule_online, Assignment};
/// use sdem_power::Platform;
/// use sdem_types::{Task, TaskSet, Time, Cycles};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let platform = Platform::paper_defaults();
/// let tasks = TaskSet::new(vec![
///     Task::new(0, Time::ZERO, Time::from_millis(60.0), Cycles::new(1.5e7)),
///     Task::new(1, Time::from_millis(5.0), Time::from_millis(90.0), Cycles::new(2.0e7)),
///     Task::new(2, Time::from_millis(30.0), Time::from_millis(140.0), Cycles::new(1.0e7)),
/// ])?;
/// let schedule = schedule_online(&tasks, &platform, 8, Assignment::RoundRobin)?;
/// schedule.validate(&tasks)?;
/// # Ok(())
/// # }
/// ```
pub fn schedule_online(
    tasks: &TaskSet,
    platform: &Platform,
    cores: usize,
    policy: Assignment,
) -> Result<Schedule, BaselineError> {
    schedule_with(tasks, platform, cores, policy, oa_runs)
}

/// Offline MBKP: arrival-order assignment + per-core YDS. A clairvoyant
/// upper bound on the online variant's quality; used by ablation benches.
///
/// # Errors
///
/// Same as [`schedule_online`].
pub fn schedule_offline(
    tasks: &TaskSet,
    platform: &Platform,
    cores: usize,
    policy: Assignment,
) -> Result<Schedule, BaselineError> {
    schedule_with(tasks, platform, cores, policy, yds_runs)
}

fn schedule_with(
    tasks: &TaskSet,
    platform: &Platform,
    cores: usize,
    policy: Assignment,
    per_core: impl Fn(&[Job]) -> Vec<Run>,
) -> Result<Schedule, BaselineError> {
    if cores == 0 {
        return Err(BaselineError::NoCores);
    }
    let assignment = assign(tasks, cores, policy);
    let core_of = |id: TaskId| -> CoreId {
        assignment
            .iter()
            .find(|(tid, _)| *tid == id)
            .map(|&(_, c)| c)
            .expect("every task is assigned")
    };

    let s_up = platform.core().max_speed().as_hz();
    let mut all_runs: Vec<Run> = Vec::new();
    for c in 0..cores {
        let jobs: Vec<Job> = tasks
            .iter()
            .filter(|t| core_of(t.id()) == CoreId(c))
            .map(to_job)
            .collect();
        if jobs.is_empty() {
            continue;
        }
        let runs = clamp_to_min_speed(per_core(&jobs), platform);
        if let Some(r) = runs.iter().find(|r| r.3 > s_up * (1.0 + 1e-9)) {
            return Err(BaselineError::Infeasible(r.0));
        }
        all_runs.extend(runs);
    }
    Ok(assemble(tasks, &all_runs, core_of))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdem_power::{CorePower, MemoryPower};
    use sdem_sim::{simulate, SleepPolicy};
    use sdem_types::{Cycles, Task, Time, Watts};

    fn sec(v: f64) -> Time {
        Time::from_secs(v)
    }

    fn platform(alpha_m: f64) -> Platform {
        Platform::new(
            CorePower::simple(0.0, 1.0, 3.0),
            MemoryPower::new(Watts::new(alpha_m)),
        )
    }

    fn tset(specs: &[(f64, f64, f64)]) -> TaskSet {
        TaskSet::new(
            specs
                .iter()
                .enumerate()
                .map(|(i, &(r, d, w))| Task::new(i, sec(r), sec(d), Cycles::new(w)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn round_robin_cycles_cores() {
        let tasks = tset(&[
            (0.0, 9.0, 1.0),
            (1.0, 9.0, 1.0),
            (2.0, 9.0, 1.0),
            (3.0, 19.0, 1.0),
        ]);
        let a = assign(&tasks, 3, Assignment::RoundRobin);
        let cores: Vec<usize> = a.iter().map(|(_, c)| c.0).collect();
        assert_eq!(cores, vec![0, 1, 2, 0]);
    }

    #[test]
    fn least_loaded_balances_work() {
        let tasks = tset(&[(0.0, 9.0, 5.0), (1.0, 9.0, 1.0), (2.0, 9.0, 1.0)]);
        let a = assign(&tasks, 2, Assignment::LeastLoaded);
        // 5 → core 0; 1 → core 1; 1 → core 1 (load 1 < 5).
        let cores: Vec<usize> = a.iter().map(|(_, c)| c.0).collect();
        assert_eq!(cores, vec![0, 1, 1]);
    }

    #[test]
    fn online_schedule_is_valid_and_per_core_exclusive() {
        let p = platform(4.0);
        let tasks = tset(&[
            (0.0, 10.0, 2.0),
            (1.0, 12.0, 3.0),
            (2.0, 14.0, 1.0),
            (8.0, 22.0, 2.5),
            (9.0, 25.0, 1.5),
        ]);
        let sched = schedule_online(&tasks, &p, 2, Assignment::RoundRobin).unwrap();
        sched.validate(&tasks).unwrap();
        assert!(sched.cores_used() <= 2);
    }

    #[test]
    fn offline_never_worse_than_online_on_core_energy() {
        let p = platform(0.0);
        let tasks = tset(&[(0.0, 10.0, 1.0), (6.0, 10.0, 4.0), (7.0, 18.0, 2.0)]);
        let on = schedule_online(&tasks, &p, 1, Assignment::RoundRobin).unwrap();
        let off = schedule_offline(&tasks, &p, 1, Assignment::RoundRobin).unwrap();
        let e_on = simulate(&on, &tasks, &p, SleepPolicy::NeverSleep)
            .unwrap()
            .core_dynamic
            .value();
        let e_off = simulate(&off, &tasks, &p, SleepPolicy::NeverSleep)
            .unwrap()
            .core_dynamic
            .value();
        assert!(e_off <= e_on * (1.0 + 1e-9));
    }

    #[test]
    fn mbkps_saves_memory_energy_over_mbkp() {
        // Two far-apart tasks on one core: MBKP idles the memory awake
        // through the gap, MBKPS sleeps it (ξ_m = 0 here, so sleeping wins).
        let p = platform(4.0);
        let tasks = tset(&[(0.0, 2.0, 1.0), (50.0, 52.0, 1.0)]);
        let sched = schedule_online(&tasks, &p, 1, Assignment::RoundRobin).unwrap();
        let mbkp = simulate(&sched, &tasks, &p, SleepPolicy::NeverSleep).unwrap();
        let mbkps = simulate(&sched, &tasks, &p, SleepPolicy::AlwaysSleep).unwrap();
        assert!(
            mbkps.memory_total().value() < mbkp.memory_total().value(),
            "MBKPS {} should beat MBKP {}",
            mbkps.memory_total(),
            mbkp.memory_total()
        );
    }

    #[test]
    fn naive_sleep_can_lose_with_transition_overhead() {
        // Short gap + large ξ_m: AlwaysSleep pays a round trip dearer than
        // idling — exactly why MBKPS underperforms SDEM-ON at high load.
        let mem = MemoryPower::new(Watts::new(4.0)).with_break_even(sec(10.0));
        let p = Platform::new(CorePower::simple(0.0, 1.0, 3.0), mem);
        let tasks = tset(&[(0.0, 2.0, 1.0), (3.0, 6.0, 1.0)]);
        let sched = schedule_online(&tasks, &p, 1, Assignment::RoundRobin).unwrap();
        let naive = simulate(&sched, &tasks, &p, SleepPolicy::AlwaysSleep).unwrap();
        let smart = simulate(&sched, &tasks, &p, SleepPolicy::WhenProfitable).unwrap();
        assert!(
            naive.memory_total().value() > smart.memory_total().value(),
            "always-sleep {} should lose to when-profitable {}",
            naive.memory_total(),
            smart.memory_total()
        );
    }

    #[test]
    fn zero_cores_rejected() {
        let p = platform(1.0);
        let tasks = tset(&[(0.0, 5.0, 1.0)]);
        assert_eq!(
            schedule_online(&tasks, &p, 0, Assignment::RoundRobin),
            Err(BaselineError::NoCores)
        );
    }

    #[test]
    fn bad_assignment_detected_as_infeasible() {
        let core = CorePower::simple(0.0, 1.0, 3.0).with_max_speed(sdem_types::Speed::from_hz(1.0));
        let p = Platform::new(core, MemoryPower::new(Watts::new(1.0)));
        // Two dense tasks on one core: infeasible; on two cores: fine.
        let tasks = tset(&[(0.0, 2.0, 1.5), (0.0, 2.0, 1.5)]);
        assert!(matches!(
            schedule_online(&tasks, &p, 1, Assignment::RoundRobin),
            Err(BaselineError::Infeasible(_))
        ));
        assert!(schedule_online(&tasks, &p, 2, Assignment::RoundRobin).is_ok());
    }
}
