//! MBKP: the paper's multi-core DVS baseline (after Albers, Müller and
//! Schmelzer, SPAA 2007).
//!
//! Tasks are assigned to cores in arrival order — round-robin, as in the
//! paper's experimental setup (§8.1.2), or to the least-loaded core — and
//! each core independently runs a DVS speed policy: *Optimal Available*
//! online (the evaluated configuration) or YDS offline. MBKP never sleeps
//! the memory; **MBKPS** is the identical schedule priced with the naive
//! always-sleep memory policy (`SleepPolicy::AlwaysSleep` in `sdem-sim`).

use sdem_power::Platform;
use sdem_types::{CoreId, Schedule, TaskId, TaskSet, Workspace};

use crate::job::{Job, Run};
use crate::oa::oa_runs_in;
use crate::yds::{assemble_in, clamp_to_min_speed, to_job, yds_runs_in};
use crate::BaselineError;

/// How arriving tasks are distributed over the cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Assignment {
    /// Task `k` (in arrival order) goes to core `k mod C` — the paper's
    /// experimental setup.
    #[default]
    RoundRobin,
    /// Each task goes to the core with the least total work assigned so
    /// far (a common practical variant; used as an ablation).
    LeastLoaded,
}

/// Computes the per-task core assignment in arrival order.
///
/// # Panics
///
/// Panics if `cores == 0` (public drivers guard this).
pub fn assign(tasks: &TaskSet, cores: usize, policy: Assignment) -> Vec<(TaskId, CoreId)> {
    assert!(cores > 0, "cores must be positive");
    let mut ws = Workspace::new();
    let mut ids = Vec::new();
    let mut assigned = Vec::new();
    assign_into(tasks, cores, policy, &mut ws, &mut ids, &mut assigned);
    ids.into_iter()
        .zip(assigned)
        .map(|(id, core)| (TaskId(id), CoreId(core)))
        .collect()
}

/// Pooled assignment: fills the parallel `ids`/`assigned` vectors (task id,
/// core index) in arrival order, drawing scratch from `ws`.
fn assign_into(
    tasks: &TaskSet,
    cores: usize,
    policy: Assignment,
    ws: &mut Workspace,
    ids: &mut Vec<usize>,
    assigned: &mut Vec<usize>,
) {
    ids.clear();
    assigned.clear();
    let mut arrivals = ws.take_tasks();
    tasks.sorted_by_release_into(&mut arrivals);
    let mut loads = ws.take_f64s();
    loads.resize(cores, 0.0);
    for (k, t) in arrivals.iter().enumerate() {
        let core = match policy {
            Assignment::RoundRobin => k % cores,
            Assignment::LeastLoaded => loads
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect("cores > 0"),
        };
        loads[core] += t.work().value();
        ids.push(t.id().0);
        assigned.push(core);
    }
    ws.recycle_f64s(loads);
    ws.recycle_tasks(arrivals);
}

/// Online MBKP: arrival-order assignment + per-core Optimal Available.
///
/// # Errors
///
/// [`BaselineError::NoCores`] if `cores == 0`;
/// [`BaselineError::Infeasible`] when some core's OA plan exceeds `s_up`
/// under this assignment.
///
/// # Examples
///
/// ```
/// use sdem_baselines::mbkp::{schedule_online, Assignment};
/// use sdem_power::Platform;
/// use sdem_types::{Task, TaskSet, Time, Cycles};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let platform = Platform::paper_defaults();
/// let tasks = TaskSet::new(vec![
///     Task::new(0, Time::ZERO, Time::from_millis(60.0), Cycles::new(1.5e7)),
///     Task::new(1, Time::from_millis(5.0), Time::from_millis(90.0), Cycles::new(2.0e7)),
///     Task::new(2, Time::from_millis(30.0), Time::from_millis(140.0), Cycles::new(1.0e7)),
/// ])?;
/// let schedule = schedule_online(&tasks, &platform, 8, Assignment::RoundRobin)?;
/// schedule.validate(&tasks)?;
/// # Ok(())
/// # }
/// ```
pub fn schedule_online(
    tasks: &TaskSet,
    platform: &Platform,
    cores: usize,
    policy: Assignment,
) -> Result<Schedule, BaselineError> {
    schedule_online_in(tasks, platform, cores, policy, &mut Workspace::new())
}

/// [`schedule_online`] drawing every scratch buffer — and the returned
/// schedule's own placement/segment storage — from `ws`. Recycle the
/// schedule with [`Workspace::recycle_schedule`] to keep the next trial
/// allocation-free.
pub fn schedule_online_in(
    tasks: &TaskSet,
    platform: &Platform,
    cores: usize,
    policy: Assignment,
    ws: &mut Workspace,
) -> Result<Schedule, BaselineError> {
    schedule_with_in(tasks, platform, cores, policy, ws, oa_runs_in)
}

/// Offline MBKP: arrival-order assignment + per-core YDS. A clairvoyant
/// upper bound on the online variant's quality; used by ablation benches.
///
/// # Errors
///
/// Same as [`schedule_online`].
pub fn schedule_offline(
    tasks: &TaskSet,
    platform: &Platform,
    cores: usize,
    policy: Assignment,
) -> Result<Schedule, BaselineError> {
    schedule_offline_in(tasks, platform, cores, policy, &mut Workspace::new())
}

/// [`schedule_offline`] drawing every scratch buffer from `ws`.
pub fn schedule_offline_in(
    tasks: &TaskSet,
    platform: &Platform,
    cores: usize,
    policy: Assignment,
    ws: &mut Workspace,
) -> Result<Schedule, BaselineError> {
    schedule_with_in(tasks, platform, cores, policy, ws, yds_runs_in)
}

fn schedule_with_in(
    tasks: &TaskSet,
    platform: &Platform,
    cores: usize,
    policy: Assignment,
    ws: &mut Workspace,
    per_core: impl Fn(&[Job], &mut Workspace, &mut Vec<Run>),
) -> Result<Schedule, BaselineError> {
    if cores == 0 {
        return Err(BaselineError::NoCores);
    }
    let mut assigned_ids = ws.take_usizes();
    let mut assigned_cores = ws.take_usizes();
    assign_into(
        tasks,
        cores,
        policy,
        ws,
        &mut assigned_ids,
        &mut assigned_cores,
    );

    let s_up = platform.core().max_speed().as_hz();
    let mut all_runs = ws.take_rows();
    let mut jobs = ws.take_rows();
    let mut runs = ws.take_rows();
    let mut failed: Option<TaskId> = None;
    {
        let core_of = |id: TaskId| -> CoreId {
            let k = assigned_ids
                .iter()
                .position(|&x| x == id.0)
                .expect("every task is assigned");
            CoreId(assigned_cores[k])
        };
        'cores: for c in 0..cores {
            // Per-core job lists in *task-set construction order* — the
            // order the per-core policies tie-break on.
            jobs.clear();
            jobs.extend(
                tasks
                    .iter()
                    .filter(|t| core_of(t.id()) == CoreId(c))
                    .map(to_job),
            );
            if jobs.is_empty() {
                continue;
            }
            per_core(&jobs, ws, &mut runs);
            clamp_to_min_speed(&mut runs, platform);
            if let Some(r) = runs.iter().find(|r| r.3 > s_up * (1.0 + 1e-9)) {
                failed = Some(r.0);
                break 'cores;
            }
            all_runs.extend_from_slice(&runs);
        }
    }
    let result = match failed {
        Some(id) => Err(BaselineError::Infeasible(id)),
        None => {
            let core_of = |id: TaskId| -> CoreId {
                let k = assigned_ids
                    .iter()
                    .position(|&x| x == id.0)
                    .expect("every task is assigned");
                CoreId(assigned_cores[k])
            };
            Ok(assemble_in(tasks, &all_runs, core_of, ws))
        }
    };
    ws.recycle_rows(runs);
    ws.recycle_rows(jobs);
    ws.recycle_rows(all_runs);
    ws.recycle_usizes(assigned_cores);
    ws.recycle_usizes(assigned_ids);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdem_power::{CorePower, MemoryPower};
    use sdem_sim::{simulate, SleepPolicy};
    use sdem_types::{Cycles, Task, Time, Watts};

    fn sec(v: f64) -> Time {
        Time::from_secs(v)
    }

    fn platform(alpha_m: f64) -> Platform {
        Platform::new(
            CorePower::simple(0.0, 1.0, 3.0),
            MemoryPower::new(Watts::new(alpha_m)),
        )
    }

    fn tset(specs: &[(f64, f64, f64)]) -> TaskSet {
        TaskSet::new(
            specs
                .iter()
                .enumerate()
                .map(|(i, &(r, d, w))| Task::new(i, sec(r), sec(d), Cycles::new(w)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn round_robin_cycles_cores() {
        let tasks = tset(&[
            (0.0, 9.0, 1.0),
            (1.0, 9.0, 1.0),
            (2.0, 9.0, 1.0),
            (3.0, 19.0, 1.0),
        ]);
        let a = assign(&tasks, 3, Assignment::RoundRobin);
        let cores: Vec<usize> = a.iter().map(|(_, c)| c.0).collect();
        assert_eq!(cores, vec![0, 1, 2, 0]);
    }

    #[test]
    fn least_loaded_balances_work() {
        let tasks = tset(&[(0.0, 9.0, 5.0), (1.0, 9.0, 1.0), (2.0, 9.0, 1.0)]);
        let a = assign(&tasks, 2, Assignment::LeastLoaded);
        // 5 → core 0; 1 → core 1; 1 → core 1 (load 1 < 5).
        let cores: Vec<usize> = a.iter().map(|(_, c)| c.0).collect();
        assert_eq!(cores, vec![0, 1, 1]);
    }

    #[test]
    fn online_schedule_is_valid_and_per_core_exclusive() {
        let p = platform(4.0);
        let tasks = tset(&[
            (0.0, 10.0, 2.0),
            (1.0, 12.0, 3.0),
            (2.0, 14.0, 1.0),
            (8.0, 22.0, 2.5),
            (9.0, 25.0, 1.5),
        ]);
        let sched = schedule_online(&tasks, &p, 2, Assignment::RoundRobin).unwrap();
        sched.validate(&tasks).unwrap();
        assert!(sched.cores_used() <= 2);
    }

    #[test]
    fn offline_never_worse_than_online_on_core_energy() {
        let p = platform(0.0);
        let tasks = tset(&[(0.0, 10.0, 1.0), (6.0, 10.0, 4.0), (7.0, 18.0, 2.0)]);
        let on = schedule_online(&tasks, &p, 1, Assignment::RoundRobin).unwrap();
        let off = schedule_offline(&tasks, &p, 1, Assignment::RoundRobin).unwrap();
        let e_on = simulate(&on, &tasks, &p, SleepPolicy::NeverSleep)
            .unwrap()
            .core_dynamic
            .value();
        let e_off = simulate(&off, &tasks, &p, SleepPolicy::NeverSleep)
            .unwrap()
            .core_dynamic
            .value();
        assert!(e_off <= e_on * (1.0 + 1e-9));
    }

    #[test]
    fn mbkps_saves_memory_energy_over_mbkp() {
        // Two far-apart tasks on one core: MBKP idles the memory awake
        // through the gap, MBKPS sleeps it (ξ_m = 0 here, so sleeping wins).
        let p = platform(4.0);
        let tasks = tset(&[(0.0, 2.0, 1.0), (50.0, 52.0, 1.0)]);
        let sched = schedule_online(&tasks, &p, 1, Assignment::RoundRobin).unwrap();
        let mbkp = simulate(&sched, &tasks, &p, SleepPolicy::NeverSleep).unwrap();
        let mbkps = simulate(&sched, &tasks, &p, SleepPolicy::AlwaysSleep).unwrap();
        assert!(
            mbkps.memory_total().value() < mbkp.memory_total().value(),
            "MBKPS {} should beat MBKP {}",
            mbkps.memory_total(),
            mbkp.memory_total()
        );
    }

    #[test]
    fn naive_sleep_can_lose_with_transition_overhead() {
        // Short gap + large ξ_m: AlwaysSleep pays a round trip dearer than
        // idling — exactly why MBKPS underperforms SDEM-ON at high load.
        let mem = MemoryPower::new(Watts::new(4.0)).with_break_even(sec(10.0));
        let p = Platform::new(CorePower::simple(0.0, 1.0, 3.0), mem);
        let tasks = tset(&[(0.0, 2.0, 1.0), (3.0, 6.0, 1.0)]);
        let sched = schedule_online(&tasks, &p, 1, Assignment::RoundRobin).unwrap();
        let naive = simulate(&sched, &tasks, &p, SleepPolicy::AlwaysSleep).unwrap();
        let smart = simulate(&sched, &tasks, &p, SleepPolicy::WhenProfitable).unwrap();
        assert!(
            naive.memory_total().value() > smart.memory_total().value(),
            "always-sleep {} should lose to when-profitable {}",
            naive.memory_total(),
            smart.memory_total()
        );
    }

    #[test]
    fn zero_cores_rejected() {
        let p = platform(1.0);
        let tasks = tset(&[(0.0, 5.0, 1.0)]);
        assert_eq!(
            schedule_online(&tasks, &p, 0, Assignment::RoundRobin),
            Err(BaselineError::NoCores)
        );
    }

    #[test]
    fn bad_assignment_detected_as_infeasible() {
        let core = CorePower::simple(0.0, 1.0, 3.0).with_max_speed(sdem_types::Speed::from_hz(1.0));
        let p = Platform::new(core, MemoryPower::new(Watts::new(1.0)));
        // Two dense tasks on one core: infeasible; on two cores: fine.
        let tasks = tset(&[(0.0, 2.0, 1.5), (0.0, 2.0, 1.5)]);
        assert!(matches!(
            schedule_online(&tasks, &p, 1, Assignment::RoundRobin),
            Err(BaselineError::Infeasible(_))
        ));
        assert!(schedule_online(&tasks, &p, 2, Assignment::RoundRobin).is_ok());
    }
}
