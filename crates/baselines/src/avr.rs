//! Average Rate (AVR): the second classic online speed policy of Yao,
//! Demers and Shenker.
//!
//! Every active job contributes its *density* `w / (d − r)` to the
//! processor speed, so `s(t) = Σ_{r_i ≤ t < d_i} w_i/(d_i − r_i)`;
//! execution order is preemptive EDF. AVR always meets deadlines and is
//! `(2α)^α/2`-competitive on one core (the paper cites the multi-core
//! extension's bound).

use sdem_power::Platform;
use sdem_types::{CoreId, Schedule, TaskSet, Workspace};

use crate::job::{Job, Run};
use crate::yds::{assemble_in, clamp_to_min_speed, to_job};
use crate::BaselineError;

/// Computes the AVR runs for one core's jobs.
pub(crate) fn avr_runs(jobs: &[Job]) -> Vec<Run> {
    let live: Vec<&Job> = jobs.iter().filter(|j| j.3 > 0.0).collect();
    if live.is_empty() {
        return Vec::new();
    }
    let density = |j: &Job| j.3 / (j.2 - j.1);
    let mut events: Vec<f64> = live.iter().flat_map(|j| [j.1, j.2]).collect();
    events.sort_by(f64::total_cmp);
    events.dedup();

    let mut rem: Vec<f64> = live.iter().map(|j| j.3).collect();
    let mut out: Vec<Run> = Vec::new();

    for pair in events.windows(2) {
        let (t0, t1) = (pair[0], pair[1]);
        let speed: f64 = live
            .iter()
            .filter(|j| j.1 <= t0 + 1e-12 && j.2 > t0 + 1e-12)
            .map(|j| density(j))
            .sum();
        if speed <= 0.0 {
            continue;
        }
        // EDF within the slice at the AVR speed.
        let mut t = t0;
        while t < t1 - 1e-15 * t1.abs().max(1.0) {
            let ready = live
                .iter()
                .enumerate()
                .filter(|(k, j)| rem[*k] > 1e-12 * j.3.max(1.0) && j.1 <= t + 1e-12)
                .min_by(|(_, x), (_, y)| x.2.total_cmp(&y.2));
            let Some((k, job)) = ready else {
                break; // queue empty: idle for the rest of the slice
            };
            let completion = t + rem[k] / speed;
            let until = completion.min(t1);
            out.push((job.0, t, until, speed));
            rem[k] -= speed * (until - t);
            t = until;
        }
    }
    debug_assert!(
        rem.iter()
            .zip(&live)
            .all(|(r, j)| *r <= 1e-6 * j.3.max(1.0)),
        "AVR left work unfinished"
    );
    out
}

/// AVR schedule of the whole task set on a single core.
///
/// # Errors
///
/// [`BaselineError::Infeasible`] when the summed density exceeds `s_up`.
///
/// # Examples
///
/// ```
/// use sdem_baselines::avr::schedule_single_core;
/// use sdem_power::Platform;
/// use sdem_types::{Task, TaskSet, Time, Cycles};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let platform = Platform::paper_defaults();
/// let tasks = TaskSet::new(vec![
///     Task::new(0, Time::ZERO, Time::from_millis(100.0), Cycles::new(2.0e7)),
/// ])?;
/// let schedule = schedule_single_core(&tasks, &platform)?;
/// schedule.validate(&tasks)?;
/// # Ok(())
/// # }
/// ```
pub fn schedule_single_core(
    tasks: &TaskSet,
    platform: &Platform,
) -> Result<Schedule, BaselineError> {
    let jobs: Vec<Job> = tasks.iter().map(to_job).collect();
    let mut runs = avr_runs(&jobs);
    clamp_to_min_speed(&mut runs, platform);
    let s_up = platform.core().max_speed().as_hz();
    if let Some(r) = runs.iter().find(|r| r.3 > s_up * (1.0 + 1e-9)) {
        return Err(BaselineError::Infeasible(r.0));
    }
    Ok(assemble_in(
        tasks,
        &runs,
        |_| CoreId(0),
        &mut Workspace::new(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdem_power::{CorePower, MemoryPower};
    use sdem_sim::{simulate, SleepPolicy};
    use sdem_types::{Cycles, Task, Time, Watts};

    fn sec(v: f64) -> Time {
        Time::from_secs(v)
    }

    fn platform() -> Platform {
        Platform::new(
            CorePower::simple(0.0, 1.0, 3.0),
            MemoryPower::new(Watts::new(0.0)),
        )
    }

    fn tset(specs: &[(f64, f64, f64)]) -> TaskSet {
        TaskSet::new(
            specs
                .iter()
                .enumerate()
                .map(|(i, &(r, d, w))| Task::new(i, sec(r), sec(d), Cycles::new(w)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn single_job_runs_at_density() {
        let tasks = tset(&[(0.0, 4.0, 2.0)]);
        let sched = schedule_single_core(&tasks, &platform()).unwrap();
        sched.validate(&tasks).unwrap();
        let seg = sched.placements()[0].segments()[0];
        assert!((seg.speed().as_hz() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn overlapping_jobs_sum_densities() {
        // Two identical jobs: AVR runs at 2×density while both active.
        let tasks = tset(&[(0.0, 4.0, 2.0), (0.0, 4.0, 2.0)]);
        let sched = schedule_single_core(&tasks, &platform()).unwrap();
        sched.validate(&tasks).unwrap();
        for pl in sched.placements() {
            for seg in pl.segments() {
                assert!((seg.speed().as_hz() - 1.0).abs() < 1e-9);
            }
        }
        // Both complete by t = 4; actually by t = 4 exactly (2+2 work at 1).
        let (_, end) = sched.span().unwrap();
        assert!((end.as_secs() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn avr_never_cheaper_than_yds() {
        let p = platform();
        let tasks = tset(&[(0.0, 10.0, 2.0), (2.0, 6.0, 3.0), (5.0, 12.0, 1.0)]);
        let avr = schedule_single_core(&tasks, &p).unwrap();
        let yds = crate::yds::schedule_single_core(&tasks, &p).unwrap();
        let e_avr = simulate(&avr, &tasks, &p, SleepPolicy::NeverSleep)
            .unwrap()
            .core_dynamic
            .value();
        let e_yds = simulate(&yds, &tasks, &p, SleepPolicy::NeverSleep)
            .unwrap()
            .core_dynamic
            .value();
        assert!(
            e_avr >= e_yds * (1.0 - 1e-9),
            "AVR {e_avr} beats YDS {e_yds}"
        );
    }

    #[test]
    fn deadlines_met_under_bursts() {
        let tasks = tset(&[
            (0.0, 3.0, 1.0),
            (0.5, 4.0, 1.5),
            (1.0, 5.0, 2.0),
            (1.5, 6.0, 1.0),
        ]);
        let sched = schedule_single_core(&tasks, &platform()).unwrap();
        sched.validate(&tasks).unwrap();
    }

    #[test]
    fn speed_cap_detected() {
        let core = CorePower::simple(0.0, 1.0, 3.0).with_max_speed(sdem_types::Speed::from_hz(1.0));
        let p = Platform::new(core, MemoryPower::new(Watts::new(0.0)));
        let tasks = tset(&[(0.0, 2.0, 1.5), (0.0, 2.0, 1.5)]);
        assert!(matches!(
            schedule_single_core(&tasks, &p),
            Err(BaselineError::Infeasible(_))
        ));
    }
}
