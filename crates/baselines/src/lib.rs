//! Baseline DVS schedulers for the SDEM evaluation (paper §8).
//!
//! The paper compares SDEM-ON against **MBKP** — an online multi-core DVS
//! scheduler in the style of Albers, Müller and Schmelzer (SPAA 2007) that
//! minimizes processor energy but never sleeps the memory — and **MBKPS**,
//! the same scheduler with a naive memory-sleep bolted on (sleep during
//! *every* common idle gap, profitable or not). This crate builds that
//! baseline stack from scratch:
//!
//! * [`yds`] — the Yao–Demers–Shenker optimal offline single-core speed
//!   schedule (critical-interval peeling + EDF), the substrate everything
//!   else uses;
//! * [`oa`] — *Optimal Available*: online per-core policy that re-runs YDS
//!   on the remaining work at every arrival;
//! * [`avr`] — *Average Rate*: each job contributes its density over its
//!   window; execution is EDF at the summed rate;
//! * [`mbkp`] — the multi-core driver: arrival-order assignment
//!   (round-robin as in the paper's setup, or least-loaded) plus per-core
//!   OA (online) or YDS (offline);
//! * [`css`] — critical-speed scaling: the single-core *system-wide*
//!   baseline of the paper's related work (YDS clamped to the joint
//!   critical speed `s₁`, creating sleepable idle).
//!
//! MBKP vs MBKPS is purely a *memory sleep policy* difference, so both use
//! the same [`mbkp::schedule_online`] schedule: price it with
//! `SleepPolicy::NeverSleep` for MBKP and `SleepPolicy::AlwaysSleep` for
//! MBKPS (see `sdem-sim`).
//!
//! # Examples
//!
//! ```
//! use sdem_baselines::mbkp;
//! use sdem_power::Platform;
//! use sdem_types::{Task, TaskSet, Time, Cycles};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let platform = Platform::paper_defaults();
//! let tasks = TaskSet::new(vec![
//!     Task::new(0, Time::ZERO, Time::from_millis(50.0), Cycles::new(1.0e7)),
//!     Task::new(1, Time::from_millis(10.0), Time::from_millis(90.0), Cycles::new(2.0e7)),
//! ])?;
//! let schedule = mbkp::schedule_online(&tasks, &platform, 8, mbkp::Assignment::RoundRobin)?;
//! schedule.validate(&tasks)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod avr;
pub mod css;
mod error;
mod job;
pub mod mbkp;
pub mod oa;
pub mod yds;

pub use error::BaselineError;
