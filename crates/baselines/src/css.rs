//! Critical-speed scaling (CSS): the single-core *system-wide* baseline of
//! the paper's related work (Jejurikar & Gupta 2004, Zhong & Xu 2008).
//!
//! Plain YDS minimizes processor energy but happily crawls, keeping the
//! memory awake. For system-wide energy on one core the right floor is the
//! *joint* critical speed `s₁ = ((α + α_m)/(β(λ−1)))^{1/λ}` (§5.2's
//! memory-associated critical speed): below it, running slower costs more
//! in core + memory statics than the convex dynamic term saves. CSS
//! therefore takes the YDS speed profile and clamps every run up to
//! `max(s_min, s₁)`, shortening busy time and creating sleepable idle —
//! the classic "procrastination" transformation.

use sdem_power::Platform;
use sdem_types::{CoreId, Schedule, Speed, TaskSet, Workspace};

use crate::job::Job;
use crate::yds::{assemble_in, to_job, yds_runs_in};
use crate::BaselineError;

/// The speed floor CSS clamps to on the given platform:
/// `max(min_speed, s₁)` capped at `s_up`.
pub fn css_floor(platform: &Platform) -> Speed {
    platform
        .memory_associated_critical_speed_unclamped()
        .max(platform.core().min_speed())
        .min(platform.core().max_speed())
}

/// Single-core system-wide baseline: YDS clamped to the joint critical
/// speed. Equivalent to YDS when the memory is free (`α_m = 0`, `α = 0`).
///
/// # Errors
///
/// [`BaselineError::Infeasible`] when the YDS profile exceeds `s_up`.
///
/// # Examples
///
/// ```
/// use sdem_baselines::css::schedule_single_core_css;
/// use sdem_power::Platform;
/// use sdem_types::{Task, TaskSet, Time, Cycles};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let platform = Platform::paper_defaults();
/// let tasks = TaskSet::new(vec![
///     Task::new(0, Time::ZERO, Time::from_millis(100.0), Cycles::new(2.0e7)),
/// ])?;
/// let schedule = schedule_single_core_css(&tasks, &platform)?;
/// schedule.validate(&tasks)?;
/// // The task races at s_up (the A57's joint speed clamps to 1900 MHz)
/// // instead of crawling at its 200 MHz filled speed.
/// let seg = schedule.placements()[0].segments()[0];
/// assert!(seg.speed().as_mhz() > 1899.0);
/// # Ok(())
/// # }
/// ```
pub fn schedule_single_core_css(
    tasks: &TaskSet,
    platform: &Platform,
) -> Result<Schedule, BaselineError> {
    let mut ws = Workspace::new();
    let jobs: Vec<Job> = tasks.iter().map(to_job).collect();
    let mut runs = Vec::new();
    yds_runs_in(&jobs, &mut ws, &mut runs);
    let s_up = platform.core().max_speed().as_hz();
    if let Some(r) = runs.iter().find(|r| r.3 > s_up * (1.0 + 1e-9)) {
        return Err(BaselineError::Infeasible(r.0));
    }
    // Reuse the dispatch clamp with the joint critical speed as the floor.
    let floor = css_floor(platform);
    for r in runs.iter_mut() {
        if r.3 > 0.0 && r.3 < floor.as_hz() {
            *r = (
                r.0,
                r.1,
                r.1 + (r.2 - r.1) * r.3 / floor.as_hz(),
                floor.as_hz(),
            );
        }
    }
    Ok(assemble_in(tasks, &runs, |_| CoreId(0), &mut ws))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::yds::schedule_single_core;
    use sdem_power::{CorePower, MemoryPower};
    use sdem_sim::{simulate, SleepPolicy};
    use sdem_types::{Cycles, Task, Time, Watts};

    fn sec(v: f64) -> Time {
        Time::from_secs(v)
    }

    fn tset(specs: &[(f64, f64, f64)]) -> TaskSet {
        TaskSet::new(
            specs
                .iter()
                .enumerate()
                .map(|(i, &(r, d, w))| Task::new(i, sec(r), sec(d), Cycles::new(w)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn floor_is_the_joint_critical_speed() {
        // α = 4, β = 1, λ = 3, α_m = 12 ⇒ s₁ = 2.
        let p = Platform::new(
            CorePower::simple(4.0, 1.0, 3.0),
            MemoryPower::new(Watts::new(12.0)),
        );
        assert!((css_floor(&p).as_hz() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn css_beats_yds_system_wide_when_memory_expensive() {
        let p = Platform::new(
            CorePower::simple(4.0, 1.0, 3.0),
            MemoryPower::new(Watts::new(12.0)),
        );
        let tasks = tset(&[(0.0, 20.0, 2.0), (5.0, 40.0, 3.0)]);
        let yds = schedule_single_core(&tasks, &p).unwrap();
        let css = schedule_single_core_css(&tasks, &p).unwrap();
        css.validate(&tasks).unwrap();
        let e = |s: &Schedule| {
            simulate(s, &tasks, &p, SleepPolicy::WhenProfitable)
                .unwrap()
                .total()
                .value()
        };
        assert!(
            e(&css) < e(&yds),
            "CSS {} should beat YDS {} system-wide",
            e(&css),
            e(&yds)
        );
    }

    #[test]
    fn css_equals_yds_with_free_statics() {
        let p = Platform::new(
            CorePower::simple(0.0, 1.0, 3.0),
            MemoryPower::new(Watts::new(0.0)),
        );
        let tasks = tset(&[(0.0, 10.0, 2.0), (2.0, 14.0, 3.0)]);
        let yds = schedule_single_core(&tasks, &p).unwrap();
        let css = schedule_single_core_css(&tasks, &p).unwrap();
        assert_eq!(yds, css);
    }

    #[test]
    fn css_runs_at_least_the_floor() {
        let p = Platform::new(
            CorePower::simple(4.0, 1.0, 3.0),
            MemoryPower::new(Watts::new(12.0)),
        );
        let tasks = tset(&[(0.0, 50.0, 1.0), (10.0, 80.0, 2.0)]);
        let css = schedule_single_core_css(&tasks, &p).unwrap();
        for pl in css.placements() {
            for seg in pl.segments() {
                assert!(seg.speed().as_hz() >= 2.0 - 1e-9, "below floor: {seg:?}");
            }
        }
    }
}
