//! The Yao–Demers–Shenker optimal single-core speed schedule (FOCS 1995).
//!
//! YDS repeatedly finds the *critical interval* — the `[a, b]` maximizing
//! the intensity `g(a, b) = Σ_{[r,d] ⊆ [a,b]} w / available(a, b)` — runs
//! its jobs there at speed `g` under preemptive EDF, freezes the interval,
//! and recurses on the rest. The resulting speed profile minimizes
//! `∫ P(s(t)) dt` for any convex power function, which is why both MBKP's
//! per-core scheduling and the Optimal Available online policy build on it.
//!
//! This implementation avoids the textbook "collapse" transformation by
//! tracking frozen time directly: the intensity denominator is the length
//! of `[a, b]` minus the already-frozen time inside it.

use sdem_power::Platform;
use sdem_types::{CoreId, Placement, Schedule, Task, TaskId, TaskSet, Workspace};

use crate::job::{
    edf_at_speed_in, freeze, push_run_segment, sort_runs_by_start, subtract_into, subtract_len,
    Job, Run,
};
use crate::BaselineError;

/// Computes the YDS runs for a set of jobs on one core, in absolute
/// seconds, into `out` (cleared first). Zero-work jobs produce no runs.
/// All scratch comes from `ws`, so a warm workspace makes this
/// allocation-free.
pub(crate) fn yds_runs_in(jobs: &[Job], ws: &mut Workspace, out: &mut Vec<Run>) {
    out.clear();
    let mut remaining = ws.take_rows();
    remaining.extend(jobs.iter().copied().filter(|j| j.3 > 0.0));
    let mut frozen = ws.take_pairs();
    let mut in_set = ws.take_rows();
    let mut avail = ws.take_pairs();

    while !remaining.is_empty() {
        // Candidate interval endpoints: releases × deadlines.
        let mut best: Option<(f64, f64, f64)> = None; // (a, b, intensity)
        for &a in remaining.iter().map(|j| &j.1) {
            for &b in remaining.iter().map(|j| &j.2) {
                if b <= a {
                    continue;
                }
                let w_sum: f64 = remaining
                    .iter()
                    .filter(|j| j.1 >= a - 1e-12 && j.2 <= b + 1e-12)
                    .map(|j| j.3)
                    .sum();
                if w_sum == 0.0 {
                    continue;
                }
                let avail_len = subtract_len(a, b, &frozen);
                let g = if avail_len > 0.0 {
                    w_sum / avail_len
                } else {
                    f64::INFINITY
                };
                if best.is_none_or(|(_, _, bg)| g > bg) {
                    best = Some((a, b, g));
                }
            }
        }
        let (a, b, g) = best.expect("remaining jobs define at least one interval");
        debug_assert!(g.is_finite(), "critical interval with no available time");

        // Split the critical jobs out, preserving order on both sides
        // (an order-preserving partition, without the two fresh vectors).
        in_set.clear();
        in_set.extend(
            remaining
                .iter()
                .copied()
                .filter(|j| j.1 >= a - 1e-12 && j.2 <= b + 1e-12),
        );
        remaining.retain(|j| !(j.1 >= a - 1e-12 && j.2 <= b + 1e-12));
        subtract_into(a, b, &frozen, &mut avail);
        edf_at_speed_in(&in_set, &avail, g, ws, out);
        freeze(&mut frozen, a, b);
    }
    sort_runs_by_start(out, ws);
    ws.recycle_pairs(avail);
    ws.recycle_rows(in_set);
    ws.recycle_pairs(frozen);
    ws.recycle_rows(remaining);
}

/// Optimal single-core DVS schedule for the whole task set (all tasks on
/// core 0, preemptive EDF at the YDS speed profile).
///
/// # Errors
///
/// [`BaselineError::Infeasible`] when the YDS speed exceeds the platform's
/// maximum — no feasible single-core schedule exists.
///
/// # Examples
///
/// ```
/// use sdem_baselines::yds::schedule_single_core;
/// use sdem_power::Platform;
/// use sdem_types::{Task, TaskSet, Time, Cycles};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let platform = Platform::paper_defaults();
/// let tasks = TaskSet::new(vec![
///     Task::new(0, Time::ZERO, Time::from_millis(50.0), Cycles::new(1.0e7)),
///     Task::new(1, Time::from_millis(20.0), Time::from_millis(90.0), Cycles::new(2.0e7)),
/// ])?;
/// let schedule = schedule_single_core(&tasks, &platform)?;
/// schedule.validate(&tasks)?;
/// # Ok(())
/// # }
/// ```
pub fn schedule_single_core(
    tasks: &TaskSet,
    platform: &Platform,
) -> Result<Schedule, BaselineError> {
    let mut ws = Workspace::new();
    let jobs: Vec<Job> = tasks.iter().map(to_job).collect();
    let mut runs = Vec::new();
    yds_runs_in(&jobs, &mut ws, &mut runs);
    clamp_to_min_speed(&mut runs, platform);
    let s_up = platform.core().max_speed().as_hz();
    if let Some(r) = runs.iter().find(|r| r.3 > s_up * (1.0 + 1e-9)) {
        return Err(BaselineError::Infeasible(r.0));
    }
    Ok(assemble_in(tasks, &runs, |_| CoreId(0), &mut ws))
}

/// Applies the platform's DVS floor at dispatch, in place: a run whose
/// speed policy asks for less than the minimum frequency executes at the
/// minimum and finishes early (the remainder of the slot idles). Work is
/// preserved; deadlines can only be met earlier. With `min_speed == 0`
/// (the theoretical continuous-DVS model) this is the identity.
pub(crate) fn clamp_to_min_speed(runs: &mut [Run], platform: &Platform) {
    let s_min = platform.core().min_speed().as_hz();
    if s_min <= 0.0 {
        return;
    }
    for r in runs.iter_mut() {
        if r.3 > 0.0 && r.3 < s_min {
            *r = (r.0, r.1, r.1 + (r.2 - r.1) * r.3 / s_min, s_min);
        }
    }
}

/// Peak YDS intensity of a task set: the speed of the densest critical
/// interval, i.e. the *minimum* maximum speed any feasible single-core
/// schedule must reach. The set is single-core schedulable iff this does
/// not exceed the platform's `s_up`.
///
/// # Examples
///
/// ```
/// use sdem_baselines::yds::peak_intensity;
/// use sdem_types::{Task, TaskSet, Time, Cycles};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tasks = TaskSet::new(vec![
///     Task::new(0, Time::ZERO, Time::from_secs(10.0), Cycles::new(4.0)),
///     Task::new(1, Time::from_secs(4.0), Time::from_secs(6.0), Cycles::new(4.0)),
/// ])?;
/// // The nested dense job forces 2 Hz over [4, 6].
/// assert!((peak_intensity(&tasks).as_hz() - 2.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn peak_intensity(tasks: &TaskSet) -> sdem_types::Speed {
    let mut ws = Workspace::new();
    let jobs: Vec<Job> = tasks.iter().map(to_job).collect();
    let mut runs = Vec::new();
    yds_runs_in(&jobs, &mut ws, &mut runs);
    let peak = runs.iter().map(|r| r.3).fold(0.0f64, f64::max);
    sdem_types::Speed::from_hz(peak)
}

pub(crate) fn to_job(t: &Task) -> Job {
    (
        t.id(),
        t.release().as_secs(),
        t.deadline().as_secs(),
        t.work().value(),
    )
}

/// Builds a schedule from runs, including empty placements for zero-work
/// (or never-run) tasks. Placement and segment buffers come from `ws`;
/// the per-task segment lists are assembled directly from each task's run
/// subsequence (same chronological order and merge rule as the historical
/// group-then-clone path, minus the grouping table).
pub(crate) fn assemble_in(
    tasks: &TaskSet,
    runs: &[Run],
    core_of: impl Fn(TaskId) -> CoreId,
    ws: &mut Workspace,
) -> Schedule {
    let mut placements = ws.take_placements();
    for t in tasks.iter() {
        let mut segs = ws.take_segments();
        for &(id, a, b, s) in runs {
            if id == t.id() {
                push_run_segment(&mut segs, a, b, s);
            }
        }
        placements.push(Placement::new(t.id(), core_of(t.id()), segs));
    }
    Schedule::new(placements)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdem_power::{CorePower, MemoryPower};
    use sdem_sim::{simulate, SleepPolicy};
    use sdem_types::{Cycles, Time, Watts};

    fn sec(v: f64) -> Time {
        Time::from_secs(v)
    }

    fn platform() -> Platform {
        Platform::new(
            CorePower::simple(0.0, 1.0, 3.0),
            MemoryPower::new(Watts::new(0.0)),
        )
    }

    fn tset(specs: &[(f64, f64, f64)]) -> TaskSet {
        TaskSet::new(
            specs
                .iter()
                .enumerate()
                .map(|(i, &(r, d, w))| Task::new(i, sec(r), sec(d), Cycles::new(w)))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn single_job_fills_window() {
        let tasks = tset(&[(0.0, 4.0, 2.0)]);
        let sched = schedule_single_core(&tasks, &platform()).unwrap();
        sched.validate(&tasks).unwrap();
        let pl = sched.placement(TaskId(0)).unwrap();
        assert!((pl.segments()[0].speed().as_hz() - 0.5).abs() < 1e-9);
        assert!((pl.busy_time().as_secs() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn textbook_two_interval_instance() {
        // Dense job inside a sparse one: the dense window is critical and
        // runs faster.
        let tasks = tset(&[(0.0, 10.0, 4.0), (4.0, 6.0, 4.0)]);
        let sched = schedule_single_core(&tasks, &platform()).unwrap();
        sched.validate(&tasks).unwrap();
        // Critical interval [4, 6] at speed 2; remaining 8 time units carry
        // 4 work at speed 0.5.
        let dense = sched.placement(TaskId(1)).unwrap();
        assert!((dense.segments()[0].speed().as_hz() - 2.0).abs() < 1e-9);
        let sparse = sched.placement(TaskId(0)).unwrap();
        for seg in sparse.segments() {
            assert!((seg.speed().as_hz() - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn equal_windows_share_speed() {
        let tasks = tset(&[(0.0, 4.0, 2.0), (0.0, 4.0, 2.0), (0.0, 4.0, 4.0)]);
        let sched = schedule_single_core(&tasks, &platform()).unwrap();
        sched.validate(&tasks).unwrap();
        for pl in sched.placements() {
            for seg in pl.segments() {
                assert!((seg.speed().as_hz() - 2.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn yds_minimizes_energy_against_naive_alternatives() {
        let p = platform();
        let tasks = tset(&[(0.0, 8.0, 3.0), (2.0, 5.0, 2.0), (6.0, 12.0, 2.5)]);
        let sched = schedule_single_core(&tasks, &p).unwrap();
        let e_yds = simulate(&sched, &tasks, &p, SleepPolicy::NeverSleep)
            .unwrap()
            .core_dynamic
            .value();
        // Naive alternative: each task at its filled speed, EDF order —
        // only valid here as an energy bound via the convexity argument:
        // YDS is optimal, so any feasible profile has ≥ energy. Spot-check
        // with the "everything at max density" profile: speed 1.0 over
        // [0, 12] executing 7.5 work is not even comparable directly, so
        // instead verify against a brute-force two-speed relaxation.
        // Lower bound: total work at the average-over-busy-time speed.
        let total_w = 7.5f64;
        let busy: f64 = sched
            .placements()
            .iter()
            .map(|pl| pl.busy_time().as_secs())
            .sum();
        let lower = (total_w / busy).powi(3) * busy; // Jensen lower bound
        assert!(
            e_yds >= lower * (1.0 - 1e-9),
            "YDS {e_yds} below Jensen bound {lower}"
        );
    }

    #[test]
    fn respects_speed_limit() {
        let core = CorePower::simple(0.0, 1.0, 3.0).with_max_speed(sdem_types::Speed::from_hz(1.0));
        let p = Platform::new(core, MemoryPower::new(Watts::new(0.0)));
        let tasks = tset(&[(0.0, 1.0, 2.0)]);
        assert!(matches!(
            schedule_single_core(&tasks, &p),
            Err(BaselineError::Infeasible(_))
        ));
    }

    #[test]
    fn zero_work_jobs_are_skipped() {
        let tasks = tset(&[(0.0, 4.0, 0.0), (0.0, 4.0, 2.0)]);
        let sched = schedule_single_core(&tasks, &platform()).unwrap();
        sched.validate(&tasks).unwrap();
        assert!(sched.placement(TaskId(0)).unwrap().segments().is_empty());
    }

    #[test]
    fn peak_intensity_flags_schedulability() {
        let tasks = tset(&[(0.0, 10.0, 4.0), (4.0, 6.0, 4.0)]);
        let peak = peak_intensity(&tasks);
        assert!((peak.as_hz() - 2.0).abs() < 1e-9);
        // Schedulable iff s_up ≥ peak.
        let tight =
            CorePower::simple(0.0, 1.0, 3.0).with_max_speed(sdem_types::Speed::from_hz(1.9));
        let p = Platform::new(tight, MemoryPower::new(Watts::new(0.0)));
        assert!(schedule_single_core(&tasks, &p).is_err());
        let ok = CorePower::simple(0.0, 1.0, 3.0).with_max_speed(sdem_types::Speed::from_hz(2.0));
        let p = Platform::new(ok, MemoryPower::new(Watts::new(0.0)));
        assert!(schedule_single_core(&tasks, &p).is_ok());
    }

    #[test]
    fn disjoint_clusters_get_independent_speeds() {
        let tasks = tset(&[(0.0, 2.0, 2.0), (10.0, 14.0, 2.0)]);
        let sched = schedule_single_core(&tasks, &platform()).unwrap();
        sched.validate(&tasks).unwrap();
        let s0 = sched.placement(TaskId(0)).unwrap().segments()[0].speed();
        let s1 = sched.placement(TaskId(1)).unwrap().segments()[0].speed();
        assert!((s0.as_hz() - 1.0).abs() < 1e-9);
        assert!((s1.as_hz() - 0.5).abs() < 1e-9);
    }
}
