//! Pins the cache-key hash to its historical byte sequence.
//!
//! The solve cache keys on [`TaskSet::canonical_hash`], and cached entries
//! survive across code versions in spirit (the daemon's warm cache must
//! not silently re-key when internals change). PR 7 moved the hash onto
//! the structure-of-arrays columns ([`sdem_types::TaskSoa::hash_in_order`]);
//! this suite re-implements the original per-`&Task` FNV-1a fold verbatim
//! and checks the production hash matches it bit-for-bit on hostile
//! inputs: `-0.0` releases, denormals, duplicated fields, shuffled orders.

use sdem_prng::{ChaCha8Rng, Rng, SeedableRng};
use sdem_types::{Cycles, Task, TaskSet, Time, Workspace};

/// The pre-SoA reference: collect `&Task`s, sort by the canonical total
/// order (release, deadline, work, id), FNV-1a over the length and each
/// task's id and field bit patterns. Copied from the historical
/// implementation — do not "improve" it; its byte sequence is the pin.
fn reference_hash(set: &TaskSet) -> u64 {
    let mut order: Vec<&Task> = set.iter().collect();
    order.sort_unstable_by(|a, b| {
        a.release()
            .total_cmp(&b.release())
            .then(a.deadline().total_cmp(&b.deadline()))
            .then(a.work().total_cmp(&b.work()))
            .then(a.id().cmp(&b.id()))
    });
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |word: u64| {
        for byte in word.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(set.len() as u64);
    for t in order {
        eat(t.id().0 as u64);
        eat(t.release().as_secs().to_bits());
        eat(t.deadline().as_secs().to_bits());
        eat(t.work().value().to_bits());
    }
    h
}

fn random_set(rng: &mut ChaCha8Rng) -> TaskSet {
    let n = 1 + (rng.next_u64() % 24) as usize;
    let tasks = (0..n)
        .map(|i| {
            // Mix ordinary magnitudes with ties and signed zeros so the
            // canonical sort exercises every tie-break level.
            let release = match rng.next_u64() % 4 {
                0 => 0.0,
                1 => -0.0,
                _ => rng.gen_f64() * 10.0,
            };
            let deadline = release.abs() + 0.001 + rng.gen_f64() * 5.0;
            let work = match rng.next_u64() % 5 {
                0 => 0.0,
                1 => f64::MIN_POSITIVE * rng.gen_f64().max(0.5),
                _ => rng.gen_f64() * 1.0e7,
            };
            Task::new(
                i,
                Time::from_secs(release),
                Time::from_secs(deadline),
                Cycles::new(work),
            )
        })
        .collect();
    TaskSet::new(tasks).expect("valid set")
}

#[test]
fn soa_hash_matches_historical_per_task_hash() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9A5_000);
    for _ in 0..200 {
        let set = random_set(&mut rng);
        assert_eq!(
            set.canonical_hash(),
            reference_hash(&set),
            "SoA slice hash diverged from the pinned byte sequence"
        );
    }
}

#[test]
fn hash_is_order_invariant_and_warm_workspace_identical() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9A5_001);
    let mut ws = Workspace::new();
    for _ in 0..50 {
        let set = random_set(&mut rng);
        let cold = set.canonical_hash();
        // The pooled entry point the daemon's warm workers use.
        assert_eq!(set.canonical_hash_in(&mut ws), cold);
        // Reversing the task order must not move the key.
        let mut reversed: Vec<Task> = set.iter().copied().collect();
        reversed.reverse();
        let reversed = TaskSet::new(reversed).expect("valid set");
        assert_eq!(reversed.canonical_hash_in(&mut ws), cold);
    }
}

#[test]
fn signed_zero_and_field_swaps_change_the_key() {
    let base = TaskSet::new(vec![Task::new(
        0,
        Time::from_secs(0.0),
        Time::from_secs(2.0),
        Cycles::new(3.0),
    )])
    .expect("valid");
    let neg_zero = TaskSet::new(vec![Task::new(
        0,
        Time::from_secs(-0.0),
        Time::from_secs(2.0),
        Cycles::new(3.0),
    )])
    .expect("valid");
    // The solvers see the bit patterns, so the cache key must too.
    assert_ne!(base.canonical_hash(), neg_zero.canonical_hash());
    assert_eq!(neg_zero.canonical_hash(), reference_hash(&neg_zero));

    let swapped = TaskSet::new(vec![Task::new(
        0,
        Time::from_secs(0.0),
        Time::from_secs(3.0),
        Cycles::new(2.0),
    )])
    .expect("valid");
    assert_ne!(base.canonical_hash(), swapped.canonical_hash());
}
