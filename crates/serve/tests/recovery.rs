//! Crash-recovery and chaos integration suite for the replay path.
//!
//! The invariants under test mirror `crates/exec/tests/torn_tail.rs` at
//! the serve layer:
//!
//! * a clean replay's output is byte-identical at any worker count;
//! * a replay halted mid-run and resumed from its journal emits output
//!   byte-identical to an uninterrupted run — including when the journal
//!   tail is truncated at **every byte offset** (the `kill -9` torn-tail
//!   case);
//! * with chaos-injected worker panics the daemon stays up, the
//!   restart/degraded/reject ledgers match the injected plan exactly,
//!   and every non-injected response is bit-identical to the clean run;
//! * when the restart budget is exhausted the service fails fast but
//!   still answers every sequence exactly once.

use std::io::Write;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use sdem_serve::{replay, ChaosPlan, ChaosSpec, ReplayConfig, ServiceConfig, SupervisorConfig};
use sdem_types::ErrorKind;
use sdem_workload::trace::TraceSpec;

/// Small trace the debug-mode suite can afford: two periodic sets plus a
/// sporadic mix, all shapes a few tasks wide.
fn spec() -> TraceSpec {
    TraceSpec {
        seed: 0x7E57,
        sets: 2,
        tasks: 3,
        poisson: 0.3,
        shapes: 8,
    }
}

fn service_cfg(workers: usize) -> ServiceConfig {
    ServiceConfig {
        workers,
        queue_depth: 32,
        cache_capacity: 256,
        ..Default::default()
    }
}

fn replay_cfg(workers: usize, events: u64) -> ReplayConfig {
    ReplayConfig {
        service: service_cfg(workers),
        trace: spec(),
        events,
        chaos: None,
        journal: None,
        resume: false,
        halt_after: None,
    }
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sdem-recovery-{name}-{}", std::process::id()))
}

/// A `Write` sink that can be read back after the service finishes.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn run(cfg: &ReplayConfig) -> (String, sdem_serve::ReplayReport) {
    let buf = SharedBuf::default();
    let report = replay(cfg, Box::new(buf.clone())).expect("replay runs");
    (buf.contents(), report)
}

#[test]
fn clean_replay_is_byte_identical_at_1_4_8_workers() {
    const EVENTS: u64 = 48;
    let (one, report) = run(&replay_cfg(1, EVENTS));
    assert_eq!(report.executed, EVENTS);
    assert_eq!(one.lines().count() as u64, EVENTS, "every seq answered");
    let (four, _) = run(&replay_cfg(4, EVENTS));
    let (eight, _) = run(&replay_cfg(8, EVENTS));
    assert_eq!(one, four);
    assert_eq!(one, eight);
}

#[test]
fn halt_and_resume_is_byte_identical_at_every_worker_count() {
    const EVENTS: u64 = 48;
    let (clean, _) = run(&replay_cfg(4, EVENTS));

    for workers in [1usize, 4, 8] {
        let path = temp_path(&format!("halt-resume-{workers}"));

        // First run: journaled, "crashes" (halts) after 17 new events.
        let mut first = replay_cfg(workers, EVENTS);
        first.journal = Some(path.clone());
        first.halt_after = Some(17);
        let (partial, report) = run(&first);
        assert!(report.halted);
        assert_eq!(report.executed, 17);
        assert!(clean.starts_with(&partial), "partial output is a prefix");

        // Second run: resume from the journal with a different worker
        // count than the clean reference used.
        let mut second = replay_cfg(workers, EVENTS);
        second.journal = Some(path.clone());
        second.resume = true;
        let (resumed, report) = run(&second);
        assert_eq!(report.recovered, 17, "journaled prefix recovered");
        assert_eq!(report.executed, EVENTS - 17);
        assert_eq!(report.stats.recovered, 17);
        assert_eq!(
            resumed, clean,
            "resumed output must be byte-identical to an uninterrupted run"
        );
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn journal_truncated_at_every_tail_byte_offset_still_resumes_identically() {
    const EVENTS: u64 = 16;
    let (clean, _) = run(&replay_cfg(2, EVENTS));

    // A complete journaled run whose journal we will mutilate.
    let path = temp_path("torn-tail");
    let mut journaled = replay_cfg(2, EVENTS);
    journaled.journal = Some(path.clone());
    let (full, _) = run(&journaled);
    assert_eq!(full, clean);

    let intact = std::fs::read(&path).expect("journal written");
    let text = String::from_utf8(intact.clone()).unwrap();
    // Last record including its newline; `tail_start` points at its first byte.
    let body = text.strip_suffix('\n').expect("journal ends with newline");
    let tail_start = body.rfind('\n').expect("more than one line") + 1;

    for cut in tail_start..intact.len() {
        std::fs::write(&path, &intact[..cut]).unwrap();
        let mut resume = replay_cfg(2, EVENTS);
        resume.journal = Some(path.clone());
        resume.resume = true;
        let (resumed, report) = run(&resume);
        assert_eq!(resumed, clean, "cut at byte {cut} must not change output");
        // A torn tail record is skipped and its seq re-runs; a clean cut
        // (exactly at the record boundary) recovers every journaled seq.
        let expect_recovered = if cut == intact.len() - 1 && intact[cut] == b'\n' {
            EVENTS
        } else {
            EVENTS - 1
        };
        assert_eq!(report.recovered, expect_recovered, "cut at byte {cut}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn chaos_survivors_are_bit_identical_and_the_ledger_is_exact() {
    const EVENTS: u64 = 60;
    let (clean, _) = run(&replay_cfg(2, EVENTS));
    let clean_lines: Vec<&str> = clean.lines().collect();

    let chaos = ChaosSpec {
        seed: 0x0DD5,
        panics: 3,
        poison: 2,
        queue_full: 2,
        latency: 4,
    };
    let plan = ChaosPlan::materialize(&chaos, EVENTS).unwrap();

    let mut chaotic_outputs = Vec::new();
    for workers in [1usize, 4] {
        let mut cfg = replay_cfg(workers, EVENTS);
        cfg.chaos = Some(chaos);
        let (out, report) = run(&cfg);
        // The daemon stayed up and the ledger matches the plan exactly
        // (replay() itself errors on drift; assert the totals anyway).
        assert!(!report.stats.failed, "restart budget must absorb 3 panics");
        assert_eq!(report.stats.worker_restarts, 3);
        assert_eq!(report.stats.degraded, 2);
        assert_eq!(report.stats.rejected, 2);

        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len() as u64, EVENTS, "every seq answered once");
        for seq in 0..EVENTS {
            let line = lines[seq as usize];
            if plan.panic_at(seq) {
                assert!(
                    line.contains("\"kind\":\"worker-panic\""),
                    "seq {seq}: {line}"
                );
            } else if plan.poison_at(seq) {
                assert!(
                    line.contains("\"kind\":\"bad-request\""),
                    "seq {seq}: {line}"
                );
            } else if plan.queue_full_at(seq) {
                assert!(line.contains("\"degraded\":true"), "seq {seq}: {line}");
                assert!(
                    line.contains("\"resolved\":\"degraded/race-to-idle\""),
                    "seq {seq}: {line}"
                );
            } else {
                // Survivors — latency-injected seqs included — must be
                // bit-identical to the clean run.
                assert_eq!(line, clean_lines[seq as usize], "seq {seq}");
            }
        }
        chaotic_outputs.push(out);
    }
    assert_eq!(
        chaotic_outputs[0], chaotic_outputs[1],
        "chaos output must itself be byte-identical across worker counts"
    );
}

#[test]
fn chaos_and_resume_compose_without_double_counting() {
    const EVENTS: u64 = 40;
    let chaos = ChaosSpec {
        seed: 0xB007,
        panics: 2,
        poison: 1,
        queue_full: 1,
        latency: 2,
    };
    let mut reference = replay_cfg(2, EVENTS);
    reference.chaos = Some(chaos);
    let (clean_chaos, _) = run(&reference);

    let path = temp_path("chaos-resume");
    let mut first = replay_cfg(2, EVENTS);
    first.chaos = Some(chaos);
    first.journal = Some(path.clone());
    first.halt_after = Some(15);
    run(&first);

    let mut second = replay_cfg(2, EVENTS);
    second.chaos = Some(chaos);
    second.journal = Some(path.clone());
    second.resume = true;
    let (resumed, report) = run(&second);
    assert_eq!(
        resumed, clean_chaos,
        "chaos replay resumes byte-identically"
    );
    // The ledger validation inside replay() already restricted the
    // expected counts to the re-executed suffix; spot-check the split.
    let expected = plan_counts_after(&chaos, EVENTS, report.recovered);
    assert_eq!(report.stats.worker_restarts, expected.0);
    assert_eq!(report.stats.rejected, expected.1);
    std::fs::remove_file(&path).ok();
}

fn plan_counts_after(chaos: &ChaosSpec, events: u64, from: u64) -> (u64, u64) {
    let plan = ChaosPlan::materialize(chaos, events).unwrap();
    let counts = plan.counts_from(from);
    (counts.panics, counts.poison)
}

#[test]
fn exhausted_restart_budget_fails_fast_but_answers_every_seq() {
    const EVENTS: u64 = 32;
    let chaos = ChaosSpec {
        seed: 0xDEAD,
        panics: 5,
        ..ChaosSpec::default()
    };
    let mut cfg = replay_cfg(1, EVENTS);
    cfg.chaos = Some(chaos);
    cfg.service.supervisor = SupervisorConfig {
        max_restarts: 2,
        backoff_base_ms: 1,
        backoff_cap_ms: 2,
    };
    let buf = SharedBuf::default();
    let report = replay(&cfg, Box::new(buf.clone())).expect("fail-fast is not a replay error");
    assert!(report.stats.failed, "budget of 2 cannot absorb 5 panics");
    assert_eq!(
        report.stats.worker_restarts, 3,
        "2 restarts + the fatal one"
    );
    let out = buf.contents();
    assert_eq!(
        out.lines().count() as u64,
        EVENTS,
        "every seq answered once"
    );
    assert!(
        out.contains("\"kind\":\"shutdown\""),
        "queued work drained with errors"
    );
}

#[test]
fn resume_under_a_different_identity_is_refused() {
    const EVENTS: u64 = 8;
    let path = temp_path("identity");
    let mut first = replay_cfg(1, EVENTS);
    first.journal = Some(path.clone());
    run(&first);

    // Different event count → different run identity.
    let mut second = replay_cfg(1, EVENTS + 1);
    second.journal = Some(path.clone());
    second.resume = true;
    let err = replay(&second, Box::new(std::io::sink())).unwrap_err();
    assert_eq!(err.kind, ErrorKind::CheckpointError);

    // Different trace seed → refused too.
    let mut third = replay_cfg(1, EVENTS);
    third.trace.seed ^= 1;
    third.journal = Some(path.clone());
    third.resume = true;
    let err = replay(&third, Box::new(std::io::sink())).unwrap_err();
    assert_eq!(err.kind, ErrorKind::CheckpointError);
    std::fs::remove_file(&path).ok();
}
