//! Wire-protocol integration suite: request/response round trips, the
//! input-hardening property at the protocol boundary (the wire-layer
//! extension of the task-set non-finite rejection property), and cache
//! correctness — a hit must be bit-identical to a cold solve, for the
//! original task order and any permutation.

use std::io::Write;
use std::sync::{Arc, Mutex};

use sdem_obs::json::{self, Value};
use sdem_prng::{ChaCha8Rng, Rng, SeedableRng};
use sdem_serve::{run_session, ManualClock, Service, ServiceConfig, SolveRequest};
use sdem_types::ErrorKind;

const CASES: u64 = 128;

fn rng_for(property: u64, case: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(0x5E8F_0000 + property * 1000 + case)
}

/// A `Write` sink that can be read back after the service finishes.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn session(cfg: ServiceConfig, input: &str) -> String {
    let buf = SharedBuf::default();
    run_session(
        cfg,
        std::io::Cursor::new(input.to_string()),
        Box::new(buf.clone()),
    )
    .unwrap();
    buf.contents()
}

fn energy_bits(line: &str) -> u64 {
    let doc = json::parse(line).expect("response json");
    assert_eq!(doc.get("ok"), Some(&Value::Bool(true)), "{line}");
    let bits = doc.get("energy_bits").and_then(Value::as_str).unwrap();
    u64::from_str_radix(bits.strip_prefix("0x").unwrap(), 16).unwrap()
}

/// Builds `n` clean random task rows as wire strings (so tests can
/// permute them byte-exactly).
fn clean_rows(rng: &mut ChaCha8Rng) -> Vec<String> {
    let n = rng.gen_range(1usize..8);
    (0..n)
        .map(|i| {
            let release = rng.gen_range(0.0f64..10.0);
            let window = rng.gen_range(15.0f64..80.0);
            let work = rng.gen_range(1.0e5f64..6.0e6);
            format!("[{i},{release},{},{work}]", release + window)
        })
        .collect()
}

fn line_of(id: u64, rows: &[String]) -> String {
    format!(
        "{{\"v\":1,\"id\":{id},\"scheme\":\"auto\",\"tasks\":[{}]}}",
        rows.join(",")
    )
}

#[test]
fn random_clean_requests_round_trip_through_the_encoder() {
    // The wire carries milliseconds while Time stores seconds, so a
    // re-encoded decimal may move by an ulp; discrete fields round-trip
    // exactly, continuous ones to conversion accuracy.
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-12 * a.abs().max(1e-300);
    for case in 0..CASES {
        let mut rng = rng_for(1, case);
        let line = line_of(case, &clean_rows(&mut rng));
        let req = SolveRequest::parse_line(&line).expect("clean request parses");
        let again = SolveRequest::parse_line(&req.to_json_line()).unwrap();
        assert_eq!(req.id, again.id);
        assert_eq!(req.scheme_name, again.scheme_name);
        assert_eq!(req.cores, again.cores);
        assert_eq!(req.alpha_m_w.to_bits(), again.alpha_m_w.to_bits());
        assert_eq!(req.xi_m_ms.to_bits(), again.xi_m_ms.to_bits());
        assert_eq!(req.tasks.len(), again.tasks.len());
        for (a, b) in req.tasks.iter().zip(again.tasks.iter()) {
            assert_eq!(a.id(), b.id());
            assert!(close(a.release().as_secs(), b.release().as_secs()));
            assert!(close(a.deadline().as_secs(), b.deadline().as_secs()));
            assert_eq!(a.work().value().to_bits(), b.work().value().to_bits());
        }
    }
}

/// The wire-layer extension of the task-set input-hardening property:
/// poison one numeric field of a clean request with an overflowing JSON
/// literal (`±1e999` parses to ±∞) and the protocol boundary must answer
/// with a typed `bad-request` — nothing non-finite may reach a solver.
#[test]
fn poisoned_wire_numbers_are_rejected_with_typed_errors() {
    let poisons = ["1e999", "-1e999", "1e99999"];
    for case in 0..CASES {
        let mut rng = rng_for(2, case);
        let line = line_of(case, &clean_rows(&mut rng));
        let poison = poisons[rng.gen_range(0usize..poisons.len())];

        // Replace one numeric payload: either a task cell or an override
        // appended to the object.
        let poisoned = match rng.gen_range(0usize..5) {
            0 => {
                // Poison the first task's release (first cell after "[[i,").
                let start = line.find("\"tasks\":[[").unwrap() + 10;
                let cell = line[start..].find(',').unwrap() + start + 1;
                let end = line[cell..].find(',').unwrap() + cell;
                format!("{}{poison}{}", &line[..cell], &line[end..])
            }
            1 => {
                // Poison the first task's work (last cell before "]").
                let start = line.find("\"tasks\":[[").unwrap() + 10;
                let end = line[start..].find(']').unwrap() + start;
                let cell = line[..end].rfind(',').unwrap() + 1;
                format!("{}{poison}{}", &line[..cell], &line[end..])
            }
            2 => line.replacen('{', &format!("{{\"deadline_ms\":{poison},"), 1),
            3 => line.replacen('{', &format!("{{\"alpha_m_w\":{poison},"), 1),
            _ => line.replacen('{', &format!("{{\"xi_m_ms\":{poison},"), 1),
        };
        let err =
            SolveRequest::parse_line(&poisoned).expect_err("poisoned request must be rejected");
        assert_eq!(err.kind, ErrorKind::BadRequest, "line: {poisoned}");
    }
}

#[test]
fn cache_hits_are_bit_identical_to_cold_solves_for_any_permutation() {
    for case in 0..24 {
        let mut rng = rng_for(3, case);
        let rows = clean_rows(&mut rng);
        let line = line_of(0, &rows);

        // A byte-exact rotation of the same task rows, different id.
        let rot = rng.gen_range(0usize..rows.len());
        let rotated: Vec<String> = rows
            .iter()
            .cycle()
            .skip(rot)
            .take(rows.len())
            .cloned()
            .collect();
        let permuted = line_of(1, &rotated);

        let input = format!("{line}\n{permuted}\n");
        // Warm service: request 1 hits the entry request 0 created.
        let hot = session(
            ServiceConfig {
                workers: 1,
                queue_depth: 64,
                cache_capacity: 64,
                ..Default::default()
            },
            &input,
        );
        // Cold service: caching disabled, both requests solved afresh.
        let cold = session(
            ServiceConfig {
                workers: 1,
                queue_depth: 64,
                cache_capacity: 0,
                ..Default::default()
            },
            &input,
        );
        assert_eq!(hot, cold, "cache must be invisible in response bytes");
        let lines: Vec<&str> = hot.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            energy_bits(lines[0]),
            energy_bits(lines[1]),
            "permuted repeat must reproduce the exact solve bits"
        );
    }
}

/// Deadline expiry driven entirely by the injectable clock: the workers
/// start gated, the manual clock jumps past one request's deadline but
/// not the other's, and only then are the workers released. No sleeps,
/// no wall-clock race — the outcome is the same on any machine.
#[test]
fn deadline_expiry_sheds_with_a_typed_response() {
    let manual = ManualClock::new();
    let buf = SharedBuf::default();
    let service = Service::start(
        ServiceConfig {
            workers: 2,
            clock: manual.clock(),
            start_paused: true,
            ..Default::default()
        },
        Box::new(buf.clone()),
    );
    // Admitted at t = 0 with a 10 ms deadline…
    service.submit("{\"id\":0,\"deadline_ms\":10,\"tasks\":[[0,0,40,8e6]]}");
    // …a generous deadline, and no deadline at all.
    service.submit("{\"id\":1,\"deadline_ms\":1e6,\"tasks\":[[0,0,40,8e6]]}");
    service.submit("{\"id\":2,\"tasks\":[[0,0,40,8e6]]}");
    // Time passes while everything is still queued.
    manual.advance_ms(25.0);
    service.release_workers();
    let stats = service.finish();
    assert_eq!(stats.admitted, 3);

    let out = buf.contents();
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 3);
    let first = json::parse(lines[0]).unwrap();
    assert_eq!(first.get("ok"), Some(&Value::Bool(false)));
    assert_eq!(
        first
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Value::as_str),
        Some("deadline-expired")
    );
    // The expired request never contaminates the cache: the later
    // identical-shape requests still get real solutions.
    assert!(lines[1].contains("\"ok\":true"), "{out}");
    assert!(lines[2].contains("\"ok\":true"), "{out}");
}
