//! The canonicalized task-set solve cache.
//!
//! Sustained traffic repeats task-set *shapes*: periodic workloads replan
//! the same window layout over and over, often with tasks listed in a
//! different order. The cache keys on the canonical form — the
//! [`TaskSet::canonical_hash`] of the task multiset plus every solve
//! parameter that affects the outcome — so a repeated shape costs a hash
//! lookup instead of a solve, and a permuted repeat hits the same entry.
//!
//! Hits are **bit-identical** to cold solves by construction: the cached
//! value is the response summary the cold solve produced, and the solver
//! path is itself canonicalize-then-solve, so the cold solve of any
//! permutation produces the same bits. On a hash hit the stored canonical
//! task set is compared for equality before the entry is trusted — an FNV
//! collision degrades to a miss, never to a wrong answer.
//!
//! Capacity is bounded; insertion beyond capacity evicts in FIFO order
//! (oldest insertion first). Hit/miss/evict totals feed the
//! `sdem-obs` counters `cache_hits`/`cache_misses`/`cache_evictions`.

use std::collections::{HashMap, VecDeque};

use sdem_obs::Counter;
use sdem_types::TaskSet;

use crate::api::SolveResponse;

/// Everything besides the task multiset that changes a solve's outcome.
///
/// Two requests with equal [`CacheParams`] and equal canonicalized task
/// sets produce bit-identical responses (modulo the echoed `id`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheParams {
    /// The requested scheme name (distinct names may route identically,
    /// but keying on the name keeps the mapping trivially sound).
    pub scheme: String,
    /// Core budget.
    pub cores: usize,
    /// Memory awake power, exact bits.
    pub alpha_m_bits: u64,
    /// Memory break-even, exact bits.
    pub xi_m_bits: u64,
    /// Whether the degraded-mode fallback chain is engaged.
    pub fallback: bool,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    task_hash: u64,
    params: CacheParams,
}

/// The memoized outcome of one solve, id-free so one entry answers any
/// request id.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedSolve {
    /// Label of the scheme that ran.
    pub resolved: &'static str,
    /// Number of tasks.
    pub tasks: usize,
    /// Cores used by the schedule.
    pub cores_used: usize,
    /// Predicted energy, joules (exact bits preserved).
    pub energy_j: f64,
    /// Memory sleep, milliseconds (exact bits preserved).
    pub memory_sleep_ms: f64,
    /// Degraded-mode flag.
    pub degraded: bool,
}

impl CachedSolve {
    /// Captures the id-independent part of a response.
    pub fn from_response(r: &SolveResponse) -> Self {
        Self {
            resolved: r.resolved,
            tasks: r.tasks,
            cores_used: r.cores_used,
            energy_j: r.energy_j,
            memory_sleep_ms: r.memory_sleep_ms,
            degraded: r.degraded,
        }
    }

    /// Rehydrates a response for a new request id.
    pub fn to_response(&self, id: u64, scheme: String) -> SolveResponse {
        SolveResponse {
            id,
            scheme,
            resolved: self.resolved,
            tasks: self.tasks,
            cores_used: self.cores_used,
            energy_j: self.energy_j,
            memory_sleep_ms: self.memory_sleep_ms,
            degraded: self.degraded,
        }
    }
}

struct Entry {
    /// The canonicalized task set, kept to verify hash hits exactly.
    canonical: TaskSet,
    value: CachedSolve,
}

/// A bounded FIFO solve cache keyed on canonical task sets.
///
/// Not internally synchronized — the service wraps one instance in a
/// `Mutex`, which is also what keeps the hit/miss accounting exact.
pub struct SolveCache {
    capacity: usize,
    map: HashMap<Key, Entry>,
    order: VecDeque<Key>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl SolveCache {
    /// An empty cache holding at most `capacity` entries. A capacity of 0
    /// disables caching (every lookup misses, nothing is stored).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 16)),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up the solve for `canonical` tasks under `params`.
    ///
    /// `canonical` must already be in canonical order (the service
    /// canonicalizes once and reuses the result for both the lookup and
    /// the solve). Counts a hit or a miss on the obs registry.
    pub fn get(&mut self, canonical: &TaskSet, params: &CacheParams) -> Option<CachedSolve> {
        let key = Key {
            task_hash: canonical.canonical_hash(),
            params: params.clone(),
        };
        match self.map.get(&key) {
            Some(entry) if entry.canonical == *canonical => {
                self.hits += 1;
                sdem_obs::registry::incr(Counter::CacheHits);
                Some(entry.value.clone())
            }
            _ => {
                self.misses += 1;
                sdem_obs::registry::incr(Counter::CacheMisses);
                None
            }
        }
    }

    /// Stores a solve outcome, evicting the oldest entry at capacity.
    pub fn insert(&mut self, canonical: TaskSet, params: CacheParams, value: CachedSolve) {
        if self.capacity == 0 {
            return;
        }
        let key = Key {
            task_hash: canonical.canonical_hash(),
            params,
        };
        if self.map.contains_key(&key) {
            // Concurrent identical misses race to insert; first write wins
            // and the values are identical anyway (pure function of key).
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
                self.evictions += 1;
                sdem_obs::registry::incr(Counter::CacheEvictions);
            }
        }
        self.order.push_back(key.clone());
        self.map.insert(key, Entry { canonical, value });
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lifetime totals: `(hits, misses, evictions)`.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdem_types::{Cycles, Task, Time};

    fn tasks(ids: &[usize]) -> TaskSet {
        TaskSet::new(
            ids.iter()
                .map(|&i| {
                    Task::new(
                        i,
                        Time::ZERO,
                        Time::from_millis(40.0 + 10.0 * i as f64),
                        Cycles::new(1.0e6 * (i + 1) as f64),
                    )
                })
                .collect(),
        )
        .unwrap()
        .canonicalize()
    }

    fn params() -> CacheParams {
        CacheParams {
            scheme: "auto".into(),
            cores: 8,
            alpha_m_bits: 4.0_f64.to_bits(),
            xi_m_bits: 40.0_f64.to_bits(),
            fallback: false,
        }
    }

    fn value(tag: f64) -> CachedSolve {
        CachedSolve {
            resolved: "cr-overhead",
            tasks: 2,
            cores_used: 1,
            energy_j: tag,
            memory_sleep_ms: 1.0,
            degraded: false,
        }
    }

    #[test]
    fn hit_returns_the_exact_stored_bits() {
        let mut cache = SolveCache::new(4);
        let ts = tasks(&[0, 1]);
        assert!(cache.get(&ts, &params()).is_none());
        cache.insert(ts.clone(), params(), value(0.1 + 0.2));
        let hit = cache.get(&ts, &params()).unwrap();
        assert_eq!(hit.energy_j.to_bits(), (0.1_f64 + 0.2).to_bits());
        assert_eq!(cache.stats(), (1, 1, 0));
    }

    #[test]
    fn params_partition_the_key_space() {
        let mut cache = SolveCache::new(4);
        let ts = tasks(&[0, 1]);
        cache.insert(ts.clone(), params(), value(1.0));
        let mut other = params();
        other.cores = 2;
        assert!(cache.get(&ts, &other).is_none());
        let mut other = params();
        other.fallback = true;
        assert!(cache.get(&ts, &other).is_none());
        let mut other = params();
        other.alpha_m_bits = 2.0_f64.to_bits();
        assert!(cache.get(&ts, &other).is_none());
        assert!(cache.get(&ts, &params()).is_some());
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let mut cache = SolveCache::new(2);
        cache.insert(tasks(&[0]), params(), value(0.0));
        cache.insert(tasks(&[1]), params(), value(1.0));
        cache.insert(tasks(&[2]), params(), value(2.0));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&tasks(&[0]), &params()).is_none(), "oldest gone");
        assert!(cache.get(&tasks(&[1]), &params()).is_some());
        assert!(cache.get(&tasks(&[2]), &params()).is_some());
        let (_, _, evictions) = cache.stats();
        assert_eq!(evictions, 1);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let mut cache = SolveCache::new(0);
        cache.insert(tasks(&[0]), params(), value(0.0));
        assert!(cache.is_empty());
        assert!(cache.get(&tasks(&[0]), &params()).is_none());
    }

    #[test]
    fn duplicate_insert_keeps_first_value() {
        let mut cache = SolveCache::new(4);
        cache.insert(tasks(&[0]), params(), value(1.0));
        cache.insert(tasks(&[0]), params(), value(2.0));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&tasks(&[0]), &params()).unwrap().energy_j, 1.0);
    }
}
