//! Crash-recoverable online trace replay: the driver behind `sdem replay`.
//!
//! A replay streams a seeded [`ArrivalTrace`] through a [`Service`],
//! optionally journaling every response (write-ahead, flushed per line)
//! and optionally injecting a [`ChaosPlan`]. The contract:
//!
//! * **Determinism** — the output is a pure function of `(trace spec,
//!   chaos spec, event count)`. The driver admits with
//!   [`Service::submit_blocking`] (backpressure, never sheds) and the
//!   emitter orders responses by seq, so worker count and timing never
//!   reach the bytes.
//! * **Recovery** — a replay killed at any point and restarted with
//!   `resume` loads the journal, emits the stored prefix verbatim
//!   ([`Service::emit_recovered`], counted as `serve/recovered_seqs`),
//!   re-runs the remainder and produces output byte-identical to an
//!   uninterrupted run.
//! * **Chaos accounting** — after a chaos run, observed service totals
//!   are compared against the plan restricted to the seqs this run
//!   actually executed: worker restarts must equal injected panics,
//!   degraded responses must equal injected queue-fulls, rejects must
//!   equal injected poisons. Any drift is an `internal` error — the
//!   ledger is exact, not approximate.

use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;

use sdem_types::ErrorKind;
use sdem_workload::trace::{ArrivalEvent, ArrivalTrace, JobRow, TraceSpec};

use crate::api::{ApiError, API_VERSION};
use crate::chaos::{ChaosPlan, ChaosSpec};
use crate::journal::{JournalHeader, ReplayJournal};
use crate::service::{Service, ServiceConfig, ServiceStats};

/// Everything one replay run needs.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Service knobs (worker count, queue depth, cache size, …). The
    /// driver installs the chaos plan itself; leave `chaos` unset.
    pub service: ServiceConfig,
    /// The trace to generate.
    pub trace: TraceSpec,
    /// Number of arrival events to replay.
    pub events: u64,
    /// Chaos to inject, if any.
    pub chaos: Option<ChaosSpec>,
    /// Journal file for write-ahead durability; `None` runs unjournaled.
    pub journal: Option<PathBuf>,
    /// Resume from the journal (must exist and match the run identity)
    /// instead of starting fresh.
    pub resume: bool,
    /// Stop submitting after this many *newly executed* events — the
    /// test hook that simulates an interrupted run with a clean journal
    /// tail (CI's `kill -9` smoke covers the torn-tail case).
    pub halt_after: Option<u64>,
}

/// What a replay run did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayReport {
    /// Arrival events the full run covers.
    pub events: u64,
    /// Seqs recovered verbatim from the journal.
    pub recovered: u64,
    /// Seqs newly submitted this run.
    pub executed: u64,
    /// Whether `halt_after` stopped the run early.
    pub halted: bool,
    /// Service lifetime totals.
    pub stats: ServiceStats,
}

/// Runs one replay session end to end; responses stream to `out`.
///
/// # Errors
///
/// * `usage` — invalid trace/chaos parameters (e.g. more injections than
///   events);
/// * `checkpoint-error` — journal IO failures, header mismatches on
///   resume;
/// * `internal` — a chaos run whose observed counters disagree with the
///   injected plan.
pub fn replay(cfg: &ReplayConfig, out: Box<dyn Write + Send>) -> Result<ReplayReport, ApiError> {
    let usage = |detail: String| ApiError::new(ErrorKind::Usage, detail);
    let mut trace = ArrivalTrace::new(&cfg.trace).map_err(usage)?;
    let plan = match &cfg.chaos {
        Some(spec) => ChaosPlan::materialize(spec, cfg.events).map_err(usage)?,
        None => ChaosPlan::none(),
    };
    let header = JournalHeader {
        trace: cfg.trace.to_string(),
        chaos: cfg
            .chaos
            .as_ref()
            .map(ChaosSpec::to_string)
            .unwrap_or_default(),
        events: cfg.events,
    };

    let mut recovered_lines: Vec<String> = Vec::new();
    let journal = match (&cfg.journal, cfg.resume) {
        (Some(path), true) => {
            let mut journal = ReplayJournal::resume(path, &header)?;
            // Only a contiguous prefix is safely "done": lines are
            // journaled in seq order, so a gap can only follow a torn
            // tail — everything after it re-runs.
            let entries = journal.take_entries();
            for (seq, line) in entries {
                if seq == recovered_lines.len() as u64 {
                    recovered_lines.push(line);
                } else {
                    break;
                }
            }
            Some(Arc::new(journal))
        }
        (Some(path), false) => Some(Arc::new(ReplayJournal::create(path, header)?)),
        (None, true) => {
            return Err(ApiError::new(
                ErrorKind::Usage,
                "resume needs the journal file of the interrupted run",
            ))
        }
        (None, false) => None,
    };
    let recovered = (recovered_lines.len() as u64).min(cfg.events);

    let service_cfg = ServiceConfig {
        chaos: Some(Arc::new(plan.clone())),
        ..cfg.service.clone()
    };
    let service = match &journal {
        Some(journal) => {
            Service::start_with_journal(service_cfg, out, Arc::clone(journal), recovered)
        }
        None => Service::start(service_cfg, out),
    };

    for line in recovered_lines.iter().take(recovered as usize) {
        service.emit_recovered(line);
    }

    let mut executed = 0u64;
    let mut halted = false;
    let mut seq = 0u64;
    while seq < cfg.events {
        let event = trace.next().expect("arrival traces are infinite");
        debug_assert_eq!(event.seq, seq);
        if seq >= recovered {
            if cfg.halt_after.is_some_and(|n| executed >= n) {
                halted = true;
                break;
            }
            let rows = trace.shape_rows(event.shape);
            let mut line = request_line(&event, rows);
            if plan.poison_at(seq) {
                // A non-finite override the admission boundary must
                // reject: deterministic bytes, typed `bad-request`.
                line = line.replacen('{', "{\"alpha_m_w\":1e999,", 1);
            }
            service.submit_blocking(&line);
            executed += 1;
        }
        seq += 1;
    }

    let stats = service.finish();
    if let Some(journal) = &journal {
        if let Some(error) = journal.take_error() {
            return Err(error);
        }
    }

    // The chaos ledger: every injection in the executed range must have
    // produced exactly one observable outcome. Skipped when the run
    // halted early (the plan's tail never ran) or failed fast (the
    // budget cut injection short by design).
    if cfg.chaos.is_some() && !halted && !stats.failed {
        let expected = plan.counts_from(recovered);
        let mut drift = Vec::new();
        if stats.worker_restarts != expected.panics {
            drift.push(format!(
                "worker_restarts {} != injected panics {}",
                stats.worker_restarts, expected.panics
            ));
        }
        if stats.degraded != expected.queue_full {
            drift.push(format!(
                "degraded {} != injected queue-fulls {}",
                stats.degraded, expected.queue_full
            ));
        }
        if stats.rejected != expected.poison {
            drift.push(format!(
                "rejected {} != injected poisons {}",
                stats.rejected, expected.poison
            ));
        }
        if !drift.is_empty() {
            return Err(ApiError::new(
                ErrorKind::Internal,
                format!("chaos ledger mismatch: {}", drift.join("; ")),
            ));
        }
    }

    Ok(ReplayReport {
        events: cfg.events,
        recovered,
        executed,
        halted,
        stats,
    })
}

/// Renders one arrival as a wire request line: `id` is the seq, the
/// scheme is `auto`, and the shape's rows are rotated by the event's
/// rotation — a permutation the solver canonicalizes away, which is what
/// keeps repeated shapes cache-hot while still exercising the
/// canonicalization path.
fn request_line(event: &ArrivalEvent, rows: &[JobRow]) -> String {
    let n = rows.len();
    let mut out = String::with_capacity(64 + 40 * n);
    out.push_str(&format!(
        "{{\"v\":{API_VERSION},\"id\":{},\"scheme\":\"auto\",\"tasks\":[",
        event.seq
    ));
    for i in 0..n {
        let r = &rows[(i + event.rotation) % n];
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "[{},{},{},{}]",
            r.id, r.release_ms, r.deadline_ms, r.work_cycles
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::SolveRequest;

    #[test]
    fn rendered_request_lines_parse_and_rotate() {
        let rows = [
            JobRow {
                id: 0,
                release_ms: 0.0,
                deadline_ms: 40.0,
                work_cycles: 8e6,
            },
            JobRow {
                id: 1,
                release_ms: 5.0,
                deadline_ms: 70.0,
                work_cycles: 1.2e7,
            },
        ];
        let plain = request_line(
            &ArrivalEvent {
                seq: 3,
                at_ms: 0.0,
                shape: 0,
                rotation: 0,
            },
            &rows,
        );
        let rotated = request_line(
            &ArrivalEvent {
                seq: 3,
                at_ms: 0.0,
                shape: 0,
                rotation: 1,
            },
            &rows,
        );
        assert_ne!(plain, rotated, "rotation must permute the rows");
        let a = SolveRequest::parse_line(&plain).unwrap();
        let b = SolveRequest::parse_line(&rotated).unwrap();
        assert_eq!(a.id, 3);
        assert_eq!(a.tasks.canonicalize(), b.tasks.canonicalize());
    }

    #[test]
    fn resume_without_a_journal_is_a_usage_error() {
        let cfg = ReplayConfig {
            service: ServiceConfig::default(),
            trace: TraceSpec::default(),
            events: 4,
            chaos: None,
            journal: None,
            resume: true,
            halt_after: None,
        };
        let err = replay(&cfg, Box::new(std::io::sink())).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Usage);
    }

    #[test]
    fn overfull_chaos_is_a_usage_error() {
        let cfg = ReplayConfig {
            service: ServiceConfig::default(),
            trace: TraceSpec::default(),
            events: 2,
            chaos: Some(ChaosSpec {
                panics: 5,
                ..ChaosSpec::default()
            }),
            journal: None,
            resume: false,
            halt_after: None,
        };
        let err = replay(&cfg, Box::new(std::io::sink())).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Usage);
    }
}
