//! sdem-serve — the persistent SDEM scheduling service.
//!
//! This crate turns the one-shot solver pipeline into a long-lived
//! daemon: a JSONL request/response protocol (the versioned [`api`]
//! module), a bounded-admission worker pool with warm per-worker
//! [`Workspace`](sdem_types::Workspace)s (the [`service`] module), and a
//! canonicalized task-set solve cache ([`cache`]) that makes repeated —
//! and permuted — workload shapes cost a hash lookup instead of a solve.
//!
//! The wire format is the crate's compatibility surface:
//!
//! * every message carries `"v": 1` ([`api::API_VERSION`]); unknown
//!   versions are rejected with `bad-request`;
//! * error responses carry a stable machine-readable `kind` drawn from
//!   [`sdem_types::ErrorKind`] — the same taxonomy used for CLI exit
//!   codes and quarantine journals;
//! * success responses expose energy and sleep both as decimals and as
//!   exact IEEE-754 bit patterns, so clients can assert bit-identity.
//!
//! Response bytes are a pure function of the request: cache hits replay
//! the cold solve's bits and responses are emitted in submission order,
//! so a session's output stream is byte-identical at any worker count.

//!
//! On top of the daemon sit the robustness layers: an injectable
//! [`clock`] for deterministic deadline handling, a [`supervisor`] that
//! restarts panicked workers with a budget and exponential backoff, a
//! write-ahead response [`journal`] that makes replay runs
//! crash-recoverable, a seeded [`chaos`] injection plan, and the
//! [`replay`] driver that streams a generated arrival trace through the
//! service with all of the above wired together.

pub mod api;
pub mod cache;
pub mod chaos;
pub mod clock;
pub mod journal;
pub mod replay;
pub mod service;
pub mod supervisor;

pub use api::{ApiError, Executed, SolveRequest, SolveResponse, API_VERSION, DEGRADED_RESOLVED};
pub use cache::{CacheParams, CachedSolve, SolveCache};
pub use chaos::{ChaosCounts, ChaosPlan, ChaosSpec};
pub use clock::{ManualClock, ServiceClock};
pub use journal::{JournalHeader, ReplayJournal};
pub use replay::{replay, ReplayConfig, ReplayReport};
pub use service::{
    run_session, DegradeTiers, Service, ServiceConfig, ServiceStats, REQUEST_HISTOGRAM,
};
pub use supervisor::{Supervisor, SupervisorConfig, Verdict};
