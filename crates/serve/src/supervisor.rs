//! Worker supervision policy: restart budget and exponential backoff.
//!
//! A worker-level panic (one that escapes the per-request solver guard —
//! in practice only the chaos layer or a bug in the worker loop itself)
//! is contained by the worker thread: the in-flight request is answered
//! with a `worker-panic` error, the workspace is rebuilt, and the
//! [`Supervisor`] is consulted. It either grants a [`Verdict::Restart`]
//! with an exponential-backoff pause, or — once the restart budget is
//! exhausted — escalates to [`Verdict::FailFast`], after which the
//! service stops solving and answers everything still queued with a
//! `shutdown` error rather than hanging the submitter.

use core::fmt;

/// Restart policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Worker restarts granted before escalating to fail-fast.
    pub max_restarts: u32,
    /// First backoff pause, milliseconds; doubles per restart.
    pub backoff_base_ms: u64,
    /// Upper bound on any single backoff pause, milliseconds.
    pub backoff_cap_ms: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            max_restarts: 8,
            backoff_base_ms: 5,
            backoff_cap_ms: 200,
        }
    }
}

/// What a panicked worker should do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Rebuild the workspace, pause for `backoff_ms`, keep serving.
    Restart {
        /// Pause before the worker resumes dequeuing, milliseconds.
        backoff_ms: u64,
    },
    /// Budget exhausted: stop solving, drain the queue with errors.
    FailFast,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Restart { backoff_ms } => write!(f, "restart after {backoff_ms} ms"),
            Self::FailFast => write!(f, "fail-fast"),
        }
    }
}

/// Shared restart accounting for one service lifetime.
///
/// The budget is global across workers — a crash loop that hops between
/// threads exhausts it just as fast as one stuck worker.
#[derive(Debug, Default)]
pub struct Supervisor {
    cfg: SupervisorConfig,
    restarts: u32,
}

impl Supervisor {
    /// A supervisor with the given policy.
    pub fn new(cfg: SupervisorConfig) -> Self {
        Self { cfg, restarts: 0 }
    }

    /// Records one worker-level panic and rules on it.
    pub fn on_panic(&mut self) -> Verdict {
        self.restarts += 1;
        if self.restarts > self.cfg.max_restarts {
            return Verdict::FailFast;
        }
        // Exponential: base · 2^(n−1), capped. Saturating shift keeps
        // pathological budgets (n ≥ 64) from overflowing.
        let exp = self.restarts.saturating_sub(1).min(63);
        let backoff_ms = self
            .cfg
            .backoff_base_ms
            .saturating_mul(1u64 << exp)
            .min(self.cfg.backoff_cap_ms);
        Verdict::Restart { backoff_ms }
    }

    /// Worker-level panics seen so far.
    pub fn restarts(&self) -> u32 {
        self.restarts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps_then_fails_fast() {
        let mut sup = Supervisor::new(SupervisorConfig {
            max_restarts: 6,
            backoff_base_ms: 5,
            backoff_cap_ms: 50,
        });
        let mut seen = Vec::new();
        for _ in 0..6 {
            seen.push(sup.on_panic());
        }
        assert_eq!(
            seen,
            vec![
                Verdict::Restart { backoff_ms: 5 },
                Verdict::Restart { backoff_ms: 10 },
                Verdict::Restart { backoff_ms: 20 },
                Verdict::Restart { backoff_ms: 40 },
                Verdict::Restart { backoff_ms: 50 }, // capped
                Verdict::Restart { backoff_ms: 50 },
            ]
        );
        assert_eq!(sup.on_panic(), Verdict::FailFast);
        assert_eq!(sup.on_panic(), Verdict::FailFast, "fail-fast is sticky");
        assert_eq!(sup.restarts(), 8);
    }

    #[test]
    fn zero_budget_fails_fast_immediately() {
        let mut sup = Supervisor::new(SupervisorConfig {
            max_restarts: 0,
            ..SupervisorConfig::default()
        });
        assert_eq!(sup.on_panic(), Verdict::FailFast);
    }

    #[test]
    fn huge_budgets_do_not_overflow_the_backoff() {
        let mut sup = Supervisor::new(SupervisorConfig {
            max_restarts: u32::MAX,
            backoff_base_ms: u64::MAX / 2,
            backoff_cap_ms: u64::MAX,
        });
        for _ in 0..70 {
            match sup.on_panic() {
                Verdict::Restart { backoff_ms } => assert!(backoff_ms > 0),
                Verdict::FailFast => unreachable!("budget not exhausted"),
            }
        }
    }
}
