//! The versioned request/response surface of the scheduling service.
//!
//! Everything that crosses the wire is defined here, serde-free: requests
//! and responses are plain structs with hand-rolled JSONL encoders and a
//! decoder built on `sdem-obs`'s dependency-free JSON parser. The same
//! types are the entry surface for batch mode — `sdem-cli schedule`
//! builds a [`SolveRequest`] from its flags and calls [`execute_in`], so
//! the daemon and the CLI answer with one code path.
//!
//! # Versioning and stability
//!
//! * Every line carries `"v": 1` ([`API_VERSION`]). Fields are
//!   append-only within a version; unknown request fields are ignored.
//! * Error responses spell their class with the stable
//!   [`ErrorKind`] string codes shared with CLI exit codes and
//!   quarantine JSONL.
//! * Numeric results carry both a decimal rendering and the exact IEEE
//!   bit pattern (`"energy_bits": "0x…"`), so bit-identity can be
//!   asserted across transports that reformat decimals.
//!
//! # Wire format
//!
//! One JSON object per line, newline-delimited, both directions:
//!
//! ```json
//! {"v":1,"id":7,"scheme":"auto","cores":8,"tasks":[[0,0.0,40.0,8e6],[1,0.0,70.0,1.2e7]]}
//! {"v":1,"id":7,"ok":true,"scheme":"auto","resolved":"cr-overhead", ...}
//! {"v":1,"id":8,"ok":false,"error":{"kind":"bad-request","detail":"..."}}
//! ```

use core::fmt;

use sdem_core::{
    schedule_race_to_idle_in, solve_in, solve_or_fallback_in, Scheme, SdemError, Solution,
    TrialError,
};
use sdem_obs::json::{self, Value};
use sdem_power::{CorePower, MemoryPower, Platform};
use sdem_types::{Cycles, ErrorKind, Task, TaskSet, Time, Watts, Workspace};

/// Protocol version spoken by this build. Requests with a different `v`
/// are rejected with `bad-request`.
pub const API_VERSION: u64 = 1;

/// Default number of cores when a request omits `cores`.
pub const DEFAULT_CORES: usize = 8;

/// Default memory awake power (`alpha_m_w`) in watts — the paper's DRAM.
pub const DEFAULT_ALPHA_M_W: f64 = 4.0;

/// Default memory break-even time (`xi_m_ms`) in milliseconds.
pub const DEFAULT_XI_M_MS: f64 = 40.0;

/// A typed wire error: the stable [`ErrorKind`] code plus a human detail.
///
/// This is the single error shape every failure is folded into at the
/// protocol boundary — `SdemError`, `TrialError`, parse errors and load
/// conditions all become an `ApiError` before they reach a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// Stable machine-readable class (`kind.code()` goes on the wire).
    pub kind: ErrorKind,
    /// Human-readable detail; free-form, never parsed by clients.
    pub detail: String,
}

impl ApiError {
    /// An error of `kind` with a human-readable detail.
    pub fn new(kind: ErrorKind, detail: impl Into<String>) -> Self {
        Self {
            kind,
            detail: detail.into(),
        }
    }

    /// A `bad-request` protocol-boundary rejection.
    pub fn bad_request(detail: impl Into<String>) -> Self {
        Self::new(ErrorKind::BadRequest, detail)
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.code(), self.detail)
    }
}

impl std::error::Error for ApiError {}

impl From<SdemError> for ApiError {
    fn from(e: SdemError) -> Self {
        Self::new(e.kind(), e.to_string())
    }
}

impl From<TrialError> for ApiError {
    fn from(e: TrialError) -> Self {
        Self::new(e.error_kind(), e.to_string())
    }
}

/// One solve request, decoded and validated.
///
/// All numeric fields have been checked finite (and in range) by
/// [`SolveRequest::parse_line`]; a `SolveRequest` value is always safe to
/// hand to the solvers.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveRequest {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: u64,
    /// Requested scheme (SDEM schemes only; baselines are batch-CLI-only).
    pub scheme: Scheme,
    /// The scheme name as requested (echoed in the response).
    pub scheme_name: String,
    /// Core budget for the bounded schemes.
    pub cores: usize,
    /// Memory awake power override, watts.
    pub alpha_m_w: f64,
    /// Memory break-even override, milliseconds.
    pub xi_m_ms: f64,
    /// Optional queue deadline, milliseconds relative to admission: if the
    /// request waits longer than this before a worker picks it up, it is
    /// answered with `deadline-expired` instead of being solved.
    pub deadline_ms: Option<f64>,
    /// Route through the degraded-mode fallback chain instead of failing
    /// on a scheme rejection.
    pub fallback: bool,
    /// The validated task set, in the order the client sent it.
    pub tasks: TaskSet,
}

/// Maps a wire/CLI scheme name onto the [`Scheme`] enum.
///
/// Only the SDEM schemes are routable here — the single-core substrate
/// baselines (`yds`, `oa`, …) are deliberately batch-only.
pub fn scheme_from_name(name: &str, cores: usize) -> Result<Scheme, ApiError> {
    match name {
        "auto" => Ok(Scheme::Auto),
        "sdem-on" => Ok(Scheme::OnlineBounded(cores)),
        "cr-alpha-zero" => Ok(Scheme::CommonReleaseAlphaZero),
        "cr-alpha-nonzero" => Ok(Scheme::CommonReleaseAlphaNonzero),
        "cr-overhead" => Ok(Scheme::CommonReleaseOverhead),
        "agreeable" => Ok(Scheme::Agreeable),
        "agreeable-strict" => Ok(Scheme::AgreeableStrict),
        "bounded-auto" => Ok(Scheme::BoundedAuto(cores)),
        "bounded-exact" => Ok(Scheme::BoundedExact(cores)),
        "bounded-bnb" => Ok(Scheme::BoundedBnb(cores)),
        "bounded-refined" => Ok(Scheme::BoundedRefined(cores)),
        "bounded-lpt" => Ok(Scheme::BoundedLpt(cores)),
        "dag-federated" => Ok(Scheme::DagFederated(cores)),
        other => Err(ApiError::bad_request(format!(
            "unknown scheme `{other}` (expected auto, sdem-on, cr-alpha-zero, \
             cr-alpha-nonzero, cr-overhead, agreeable, agreeable-strict, \
             bounded-auto, bounded-exact, bounded-bnb, bounded-refined, \
             bounded-lpt or dag-federated)"
        ))),
    }
}

/// Builds the service platform: the paper's Cortex-A57 cores with the
/// request's memory-model overrides, both validated finite and
/// non-negative at the boundary.
pub fn platform_for(alpha_m_w: f64, xi_m_ms: f64) -> Result<Platform, ApiError> {
    if !(alpha_m_w.is_finite() && alpha_m_w >= 0.0) {
        return Err(ApiError::bad_request(format!(
            "`alpha_m_w` must be a finite non-negative power, got {alpha_m_w}"
        )));
    }
    if !(xi_m_ms.is_finite() && xi_m_ms >= 0.0) {
        return Err(ApiError::bad_request(format!(
            "`xi_m_ms` must be a finite non-negative time, got {xi_m_ms}"
        )));
    }
    let platform = Platform::new(
        CorePower::cortex_a57(),
        MemoryPower::new(Watts::new(alpha_m_w)).with_break_even(Time::from_millis(xi_m_ms)),
    );
    platform
        .validate()
        .map_err(|e| ApiError::bad_request(e.to_string()))?;
    Ok(platform)
}

impl SolveRequest {
    /// Decodes and validates one request line.
    ///
    /// # Errors
    ///
    /// Everything wrong with a line — malformed JSON, a wrong version, a
    /// missing id, non-finite or negative numbers, an invalid task set —
    /// is a `bad-request` [`ApiError`]; nothing non-finite can reach the
    /// solvers through this constructor.
    pub fn parse_line(line: &str) -> Result<Self, ApiError> {
        let doc = json::parse(line)
            .map_err(|e| ApiError::bad_request(format!("malformed request JSON: {e}")))?;
        let version = match doc.get("v") {
            None => API_VERSION,
            Some(v) => v
                .as_u64()
                .ok_or_else(|| ApiError::bad_request("`v` must be an unsigned integer"))?,
        };
        if version != API_VERSION {
            return Err(ApiError::bad_request(format!(
                "unsupported protocol version {version} (this build speaks v{API_VERSION})"
            )));
        }
        let id = doc
            .get("id")
            .and_then(Value::as_u64)
            .ok_or_else(|| ApiError::bad_request("`id` (unsigned integer) is required"))?;

        let finite = |field: &'static str, v: f64| -> Result<f64, ApiError> {
            if v.is_finite() {
                Ok(v)
            } else {
                Err(ApiError::bad_request(format!(
                    "`{field}` must be finite, got {v}"
                )))
            }
        };
        let num_or = |field: &'static str, default: f64| -> Result<f64, ApiError> {
            match doc.get(field) {
                None => Ok(default),
                Some(v) => finite(
                    field,
                    v.as_f64().ok_or_else(|| {
                        ApiError::bad_request(format!("`{field}` must be a number"))
                    })?,
                ),
            }
        };

        let cores = match doc.get("cores") {
            None => DEFAULT_CORES,
            Some(v) => v
                .as_u64()
                .filter(|&n| n > 0)
                .ok_or_else(|| ApiError::bad_request("`cores` must be a positive integer"))?
                as usize,
        };
        let scheme_name = match doc.get("scheme") {
            None => "auto".to_string(),
            Some(v) => v
                .as_str()
                .ok_or_else(|| ApiError::bad_request("`scheme` must be a string"))?
                .to_string(),
        };
        let scheme = scheme_from_name(&scheme_name, cores)?;
        let alpha_m_w = num_or("alpha_m_w", DEFAULT_ALPHA_M_W)?;
        let xi_m_ms = num_or("xi_m_ms", DEFAULT_XI_M_MS)?;
        let deadline_ms = match doc.get("deadline_ms") {
            None => None,
            Some(v) => {
                let d = finite(
                    "deadline_ms",
                    v.as_f64()
                        .ok_or_else(|| ApiError::bad_request("`deadline_ms` must be a number"))?,
                )?;
                if d < 0.0 {
                    return Err(ApiError::bad_request(format!(
                        "`deadline_ms` must be non-negative, got {d}"
                    )));
                }
                Some(d)
            }
        };
        let fallback = match doc.get("fallback") {
            None => false,
            Some(Value::Bool(b)) => *b,
            Some(_) => return Err(ApiError::bad_request("`fallback` must be a boolean")),
        };

        let rows = doc
            .get("tasks")
            .and_then(Value::as_arr)
            .ok_or_else(|| ApiError::bad_request("`tasks` (array of arrays) is required"))?;
        let mut tasks = Vec::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            let cells = row.as_arr().filter(|c| c.len() == 4).ok_or_else(|| {
                ApiError::bad_request(format!(
                    "`tasks[{i}]` must be a 4-element array [id, release_ms, deadline_ms, work_cycles]"
                ))
            })?;
            let tid = cells[0].as_u64().ok_or_else(|| {
                ApiError::bad_request(format!(
                    "`tasks[{i}][0]` (task id) must be an unsigned integer"
                ))
            })?;
            let mut nums = [0.0_f64; 3];
            for (j, cell) in cells[1..].iter().enumerate() {
                let v = cell.as_f64().ok_or_else(|| {
                    ApiError::bad_request(format!("`tasks[{i}][{}]` must be a number", j + 1))
                })?;
                if !v.is_finite() {
                    return Err(ApiError::bad_request(format!(
                        "`tasks[{i}][{}]` must be finite, got {v}",
                        j + 1
                    )));
                }
                nums[j] = v;
            }
            tasks.push(Task::new(
                tid as usize,
                Time::from_millis(nums[0]),
                Time::from_millis(nums[1]),
                Cycles::new(nums[2]),
            ));
        }
        let tasks = TaskSet::new(tasks)
            .map_err(|e| ApiError::bad_request(format!("invalid tasks: {e}")))?;

        // The platform overrides are validated here too, so a bad request
        // is rejected before it is admitted to the queue.
        platform_for(alpha_m_w, xi_m_ms)?;

        Ok(Self {
            id,
            scheme,
            scheme_name,
            cores,
            alpha_m_w,
            xi_m_ms,
            deadline_ms,
            fallback,
            tasks,
        })
    }

    /// Encodes the request as one JSONL line (the exact format
    /// [`Self::parse_line`] reads — used by `loadgen` to emit batches).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(96 + 48 * self.tasks.len());
        out.push_str(&format!(
            "{{\"v\":{API_VERSION},\"id\":{},\"scheme\":{},\"cores\":{},\"alpha_m_w\":{},\"xi_m_ms\":{}",
            self.id,
            json::quote(&self.scheme_name),
            self.cores,
            self.alpha_m_w,
            self.xi_m_ms,
        ));
        if let Some(d) = self.deadline_ms {
            out.push_str(&format!(",\"deadline_ms\":{d}"));
        }
        if self.fallback {
            out.push_str(",\"fallback\":true");
        }
        out.push_str(",\"tasks\":[");
        for (i, t) in self.tasks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "[{},{},{},{}]",
                t.id().0,
                t.release().as_millis(),
                t.deadline().as_millis(),
                t.work().value(),
            ));
        }
        out.push_str("]}");
        out
    }

    /// The platform this request solves against.
    pub fn platform(&self) -> Result<Platform, ApiError> {
        platform_for(self.alpha_m_w, self.xi_m_ms)
    }
}

/// A successful solve, as it goes on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveResponse {
    /// Echo of the request id.
    pub id: u64,
    /// Echo of the requested scheme name.
    pub scheme: String,
    /// Label of the scheme that actually ran (`auto` routes by shape).
    pub resolved: &'static str,
    /// Number of tasks scheduled.
    pub tasks: usize,
    /// Number of cores the schedule uses.
    pub cores_used: usize,
    /// Predicted energy, joules.
    pub energy_j: f64,
    /// Total memory sleep time, milliseconds.
    pub memory_sleep_ms: f64,
    /// Whether the degraded-mode fallback produced the solution.
    pub degraded: bool,
}

impl SolveResponse {
    /// Encodes the response as one JSONL line. The encoding is a pure
    /// function of the fields — the service relies on this for its
    /// byte-identical-across-worker-counts guarantee — and carries the
    /// exact bit patterns of both f64 results next to their decimal
    /// renderings.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"v\":{API_VERSION},\"id\":{},\"ok\":true,\"scheme\":{},\"resolved\":{},\
             \"tasks\":{},\"cores_used\":{},\"energy_j\":{},\"energy_bits\":\"{:#018x}\",\
             \"memory_sleep_ms\":{},\"memory_sleep_bits\":\"{:#018x}\",\"degraded\":{}}}",
            self.id,
            json::quote(&self.scheme),
            json::quote(self.resolved),
            self.tasks,
            self.cores_used,
            self.energy_j,
            self.energy_j.to_bits(),
            self.memory_sleep_ms,
            self.memory_sleep_ms.to_bits(),
            self.degraded,
        )
    }
}

/// Renders an error reply line. `id` is `null` when the failure happened
/// before an id could be decoded.
pub fn error_line(id: Option<u64>, error: &ApiError) -> String {
    let id = match id {
        Some(id) => id.to_string(),
        None => "null".to_string(),
    };
    format!(
        "{{\"v\":{API_VERSION},\"id\":{id},\"ok\":false,\"error\":{{\"kind\":{},\"detail\":{}}}}}",
        json::quote(error.kind.code()),
        json::quote(&error.detail),
    )
}

/// A solve outcome: the full [`Solution`] (for callers that need the
/// schedule, e.g. the CLI's placement listing) plus the wire response.
#[derive(Debug, Clone, PartialEq)]
pub struct Executed {
    /// The solver's solution, schedule included.
    pub solution: Solution,
    /// The response summarizing it.
    pub response: SolveResponse,
}

/// Executes a request against a warm [`Workspace`]: canonicalize, solve,
/// summarize.
///
/// The task set is [canonicalized](TaskSet::canonicalize) before solving,
/// so the outcome is a pure function of the task *multiset* — two
/// permutations of one request produce bit-identical responses, which is
/// what makes the service's canonicalized cache sound.
pub fn execute_in(
    req: &SolveRequest,
    platform: &Platform,
    ws: &mut Workspace,
) -> Result<Executed, ApiError> {
    let tasks = req.tasks.canonicalize();
    let solution = if req.fallback {
        solve_or_fallback_in(&tasks, platform, req.scheme, ws)?
    } else {
        solve_in(&tasks, platform, req.scheme, ws)?
    };
    let resolved = req.scheme.resolve(&tasks, platform).solve_label();
    let response = SolveResponse {
        id: req.id,
        scheme: req.scheme_name.clone(),
        resolved,
        tasks: tasks.len(),
        cores_used: solution.schedule().cores_used(),
        energy_j: solution.predicted_energy().value(),
        memory_sleep_ms: solution.memory_sleep().as_millis(),
        degraded: solution.is_degraded(),
    };
    Ok(Executed { solution, response })
}

/// Convenience [`execute_in`] with a throwaway workspace.
pub fn execute(req: &SolveRequest, platform: &Platform) -> Result<Executed, ApiError> {
    execute_in(req, platform, &mut Workspace::new())
}

/// Wire label of responses produced by the graceful-degradation tier.
pub const DEGRADED_RESOLVED: &str = "degraded/race-to-idle";

/// Executes a request through the degradation tier: the race-to-idle
/// baseline — the fallback half of `solve_or_fallback` — invoked
/// directly, skipping the requested scheme entirely.
///
/// The service routes here under sustained overload or per-request
/// deadline pressure: race-to-idle is cheap and always feasible when any
/// schedule is, so answering degraded beats shedding. The response
/// carries `"degraded": true` and `"resolved": "degraded/race-to-idle"`
/// so clients can tell a pressure-tier answer from a full solve.
pub fn execute_degraded_in(
    req: &SolveRequest,
    platform: &Platform,
    ws: &mut Workspace,
) -> Result<Executed, ApiError> {
    let tasks = req.tasks.canonicalize();
    let solution = schedule_race_to_idle_in(&tasks, platform, ws)?.with_degraded(true);
    let response = SolveResponse {
        id: req.id,
        scheme: req.scheme_name.clone(),
        resolved: DEGRADED_RESOLVED,
        tasks: tasks.len(),
        cores_used: solution.schedule().cores_used(),
        energy_j: solution.predicted_energy().value(),
        memory_sleep_ms: solution.memory_sleep().as_millis(),
        degraded: true,
    };
    Ok(Executed { solution, response })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request_line() -> String {
        "{\"v\":1,\"id\":7,\"scheme\":\"auto\",\"cores\":4,\
         \"tasks\":[[0,0.0,40.0,8e6],[1,0.0,70.0,1.2e7]]}"
            .to_string()
    }

    #[test]
    fn request_round_trips_through_jsonl() {
        let req = SolveRequest::parse_line(&request_line()).unwrap();
        assert_eq!(req.id, 7);
        assert_eq!(req.scheme, Scheme::Auto);
        assert_eq!(req.cores, 4);
        assert_eq!(req.tasks.len(), 2);
        let line = req.to_json_line();
        let again = SolveRequest::parse_line(&line).unwrap();
        assert_eq!(req, again);
    }

    #[test]
    fn defaults_apply_when_fields_are_omitted() {
        let req = SolveRequest::parse_line("{\"id\":1,\"tasks\":[[0,0,10,1e6]]}").unwrap();
        assert_eq!(req.scheme_name, "auto");
        assert_eq!(req.cores, DEFAULT_CORES);
        assert_eq!(req.alpha_m_w, DEFAULT_ALPHA_M_W);
        assert_eq!(req.xi_m_ms, DEFAULT_XI_M_MS);
        assert_eq!(req.deadline_ms, None);
        assert!(!req.fallback);
    }

    #[test]
    fn bounded_scheme_names_route_with_the_core_budget() {
        assert_eq!(
            scheme_from_name("bounded-auto", 4).unwrap(),
            Scheme::BoundedAuto(4)
        );
        assert_eq!(
            scheme_from_name("bounded-exact", 2).unwrap(),
            Scheme::BoundedExact(2)
        );
        assert_eq!(
            scheme_from_name("bounded-bnb", 3).unwrap(),
            Scheme::BoundedBnb(3)
        );
        assert_eq!(
            scheme_from_name("bounded-refined", 8).unwrap(),
            Scheme::BoundedRefined(8)
        );
        assert_eq!(
            scheme_from_name("bounded-lpt", 8).unwrap(),
            Scheme::BoundedLpt(8)
        );
        // End to end: a bounded-auto request solves and reports the tier
        // the router actually picked (two tasks → the exact tier).
        let req = SolveRequest::parse_line(
            "{\"v\":1,\"id\":11,\"scheme\":\"bounded-auto\",\"cores\":2,\
             \"tasks\":[[0,0.0,80.0,8e6],[1,0.0,80.0,1.2e7]]}",
        )
        .unwrap();
        assert_eq!(req.scheme, Scheme::BoundedAuto(2));
        let platform = req.platform().unwrap();
        let executed = execute(&req, &platform).unwrap();
        assert_eq!(executed.response.scheme, "bounded-auto");
        assert_eq!(executed.response.resolved, "solve/bounded-exact");
        assert!(executed.response.energy_j > 0.0);
    }

    #[test]
    fn dag_federated_routes_with_the_core_budget() {
        assert_eq!(
            scheme_from_name("dag-federated", 3).unwrap(),
            Scheme::DagFederated(3)
        );
        let req = SolveRequest::parse_line(
            "{\"v\":1,\"id\":12,\"scheme\":\"dag-federated\",\"cores\":2,\
             \"tasks\":[[0,0.0,80.0,8e6],[1,0.0,80.0,1.2e7]]}",
        )
        .unwrap();
        assert_eq!(req.scheme, Scheme::DagFederated(2));
        let platform = req.platform().unwrap();
        let executed = execute(&req, &platform).unwrap();
        assert_eq!(executed.response.scheme, "dag-federated");
        assert_eq!(executed.response.resolved, "solve/dag-federated");
        assert!(executed.response.energy_j > 0.0);
    }

    #[test]
    fn rejects_are_typed_bad_requests() {
        for line in [
            "",                                                       // empty
            "not json",                                               // malformed
            "{\"id\":1}",                                             // no tasks
            "{\"tasks\":[[0,0,10,1e6]]}",                             // no id
            "{\"v\":2,\"id\":1,\"tasks\":[[0,0,10,1e6]]}",            // wrong version
            "{\"id\":1,\"tasks\":[[0,0,10]]}",                        // short row
            "{\"id\":1,\"tasks\":[[0,0,10,1e6]],\"scheme\":\"yds\"}", // baseline scheme
            "{\"id\":1,\"tasks\":[[0,0,10,1e6]],\"cores\":0}",        // zero cores
            "{\"id\":1,\"tasks\":[[0,10,10,1e6]]}",                   // empty window
            "{\"id\":1,\"tasks\":[[0,0,10,1e6],[0,0,20,1e6]]}",       // duplicate id
            "{\"id\":1,\"tasks\":[[0,0,10,-1]]}",                     // negative work
            "{\"id\":1,\"tasks\":[[0,0,10,1e6]],\"fallback\":3}",     // bad flag type
        ] {
            let err = SolveRequest::parse_line(line).unwrap_err();
            assert_eq!(err.kind, ErrorKind::BadRequest, "line: {line}");
        }
    }

    #[test]
    fn non_finite_fields_are_rejected_at_the_boundary() {
        // 1e999 overflows to +inf in the JSON number parser; every numeric
        // field must catch it (satellite: PR 4 hardening at the wire layer).
        for line in [
            "{\"id\":1,\"tasks\":[[0,0,10,1e999]]}",
            "{\"id\":1,\"tasks\":[[0,1e999,10,1e6]]}",
            "{\"id\":1,\"tasks\":[[0,0,1e999,1e6]]}",
            "{\"id\":1,\"deadline_ms\":1e999,\"tasks\":[[0,0,10,1e6]]}",
            "{\"id\":1,\"deadline_ms\":-1,\"tasks\":[[0,0,10,1e6]]}",
            "{\"id\":1,\"alpha_m_w\":1e999,\"tasks\":[[0,0,10,1e6]]}",
            "{\"id\":1,\"alpha_m_w\":-4,\"tasks\":[[0,0,10,1e6]]}",
            "{\"id\":1,\"xi_m_ms\":-1e999,\"tasks\":[[0,0,10,1e6]]}",
        ] {
            let err = SolveRequest::parse_line(line).unwrap_err();
            assert_eq!(err.kind, ErrorKind::BadRequest, "line: {line}");
        }
    }

    #[test]
    fn execute_canonicalizes_so_permutations_match_bitwise() {
        let fwd = SolveRequest::parse_line(&request_line()).unwrap();
        let rev = SolveRequest::parse_line(
            "{\"v\":1,\"id\":7,\"scheme\":\"auto\",\"cores\":4,\
             \"tasks\":[[1,0.0,70.0,1.2e7],[0,0.0,40.0,8e6]]}",
        )
        .unwrap();
        let platform = fwd.platform().unwrap();
        let a = execute(&fwd, &platform).unwrap();
        let b = execute(&rev, &platform).unwrap();
        assert_eq!(
            a.response.to_json_line(),
            b.response.to_json_line(),
            "permuted task order must not change the response bytes"
        );
        assert_eq!(a.response.energy_j.to_bits(), b.response.energy_j.to_bits());
        assert_eq!(a.solution, b.solution);
    }

    #[test]
    fn response_line_parses_and_carries_exact_bits() {
        let req = SolveRequest::parse_line(&request_line()).unwrap();
        let platform = req.platform().unwrap();
        let executed = execute(&req, &platform).unwrap();
        let line = executed.response.to_json_line();
        let doc = json::parse(&line).unwrap();
        assert_eq!(doc.get("v").and_then(Value::as_u64), Some(API_VERSION));
        assert_eq!(doc.get("id").and_then(Value::as_u64), Some(7));
        assert_eq!(doc.get("ok"), Some(&Value::Bool(true)));
        let bits = doc.get("energy_bits").and_then(Value::as_str).unwrap();
        let bits = u64::from_str_radix(bits.strip_prefix("0x").unwrap(), 16).unwrap();
        assert_eq!(bits, executed.response.energy_j.to_bits());
        assert!(executed.response.energy_j > 0.0);
    }

    #[test]
    fn error_line_spells_stable_codes_and_null_ids() {
        let e = ApiError::new(ErrorKind::Overloaded, "queue full");
        let line = error_line(Some(9), &e);
        let doc = json::parse(&line).unwrap();
        assert_eq!(doc.get("ok"), Some(&Value::Bool(false)));
        assert_eq!(
            doc.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Value::as_str),
            Some("overloaded")
        );
        let anon = error_line(None, &ApiError::bad_request("no id"));
        assert!(anon.contains("\"id\":null"), "{anon}");
        assert_eq!(e.to_string(), "overloaded: queue full");
    }

    #[test]
    fn scheme_errors_fold_into_the_taxonomy() {
        // Staggered releases: a common-release scheme must reject, and the
        // ApiError must carry the scheme-error kind.
        let req = SolveRequest::parse_line(
            "{\"id\":3,\"scheme\":\"cr-alpha-nonzero\",\
             \"tasks\":[[0,0,40,8e6],[1,5,70,1.2e7]]}",
        )
        .unwrap();
        let platform = req.platform().unwrap();
        let err = execute(&req, &platform).unwrap_err();
        assert_eq!(err.kind, ErrorKind::SchemeError);
        // With fallback the same request degrades instead.
        let mut fb = req;
        fb.fallback = true;
        let executed = execute(&fb, &platform).unwrap();
        assert!(executed.response.degraded);
    }

    #[test]
    fn degraded_tier_answers_with_the_explicit_flag() {
        let req = SolveRequest::parse_line(&request_line()).unwrap();
        let platform = req.platform().unwrap();
        let mut ws = Workspace::new();
        let degraded = execute_degraded_in(&req, &platform, &mut ws).unwrap();
        assert!(degraded.response.degraded);
        assert_eq!(degraded.response.resolved, DEGRADED_RESOLVED);
        assert!(degraded.response.energy_j > 0.0);
        // Pressure-tier output is deterministic: same request, same bytes.
        let again = execute_degraded_in(&req, &platform, &mut Workspace::new()).unwrap();
        assert_eq!(
            degraded.response.to_json_line(),
            again.response.to_json_line()
        );
        // The degraded answer solves the same instance the full path
        // would — same task count, a real finite energy — it only skips
        // the requested scheme.
        let full = execute_in(&req, &platform, &mut ws).unwrap();
        assert_eq!(degraded.response.tasks, full.response.tasks);
        assert!(degraded.response.energy_j.is_finite());
        assert!(!full.response.degraded);
    }
}
