//! Injectable service time source.
//!
//! Deadline expiry (`deadline_ms` relative to admission) is the one place
//! the service reads a clock. Production uses a monotonic process-epoch
//! clock; tests inject a [`ManualClock`] and advance it explicitly, so
//! deadline cases are deterministic instead of sleep-timed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Process start reference for the monotonic clock: every `now_ns()` is
/// measured from the first call, so readings fit comfortably in a `u64`.
fn process_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// The time source a [`Service`](crate::Service) stamps admissions with
/// and checks deadlines against.
#[derive(Debug, Clone, Default)]
pub enum ServiceClock {
    /// Wall-free monotonic time (`Instant`-backed), the production source.
    #[default]
    Monotonic,
    /// A test-controlled clock: the atomic holds "now" in nanoseconds and
    /// only moves when the test advances it.
    Manual(Arc<AtomicU64>),
}

impl ServiceClock {
    /// Current reading in nanoseconds since an arbitrary fixed origin.
    pub fn now_ns(&self) -> u64 {
        match self {
            Self::Monotonic => process_epoch().elapsed().as_nanos() as u64,
            Self::Manual(now) => now.load(Ordering::SeqCst),
        }
    }
}

/// Handle that owns a [`ServiceClock::Manual`]'s time line.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    now_ns: Arc<AtomicU64>,
}

impl ManualClock {
    /// A manual clock starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The [`ServiceClock`] view to hand to a service config.
    pub fn clock(&self) -> ServiceClock {
        ServiceClock::Manual(Arc::clone(&self.now_ns))
    }

    /// Moves time forward by `ms` milliseconds.
    pub fn advance_ms(&self, ms: f64) {
        let delta = (ms * 1e6) as u64;
        self.now_ns.fetch_add(delta, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_nondecreasing() {
        let clock = ServiceClock::Monotonic;
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_only_moves_when_advanced() {
        let manual = ManualClock::new();
        let clock = manual.clock();
        assert_eq!(clock.now_ns(), 0);
        assert_eq!(clock.now_ns(), 0);
        manual.advance_ms(2.5);
        assert_eq!(clock.now_ns(), 2_500_000);
        manual.advance_ms(0.5);
        assert_eq!(clock.now_ns(), 3_000_000);
    }
}
