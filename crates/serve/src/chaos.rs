//! Seeded chaos injection for replay runs.
//!
//! A [`ChaosSpec`] names how much of each fault class to inject; a
//! [`ChaosPlan`] materializes it against a concrete event count into
//! four *disjoint* seq sets:
//!
//! * **panics** — the worker thread panics at that seq *outside* the
//!   per-request solver guard, exercising the supervisor (restart budget,
//!   workspace rebuild, backoff). The panic payload is deterministic, so
//!   the resulting `worker-panic` error line is byte-identical across
//!   worker counts.
//! * **poison** — the replay driver corrupts the request line before
//!   submission (a non-finite `alpha_m_w`), exercising the admission
//!   boundary's typed `bad-request` path.
//! * **queue-full** — the request is treated as arriving under overload
//!   and forced through the graceful-degradation tier (race-to-idle with
//!   an explicit `degraded` flag) instead of being shed.
//! * **latency** — the worker sleeps briefly before solving; perturbs
//!   timing without changing a single output byte, which is exactly what
//!   the byte-identity tests want to stress.
//!
//! Disjointness keeps the ledger exact: every injected seq maps to one
//! observable outcome, so `stats --check` can compare counters against
//! the plan with equality, not inequalities.

use core::fmt;

use sdem_prng::SplitMix64;

/// Domain-separation tag for chaos seq sampling.
const TAG_CHAOS: u64 = 0xC4A0_5000;

/// How much chaos to inject, independent of trace length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosSpec {
    /// Seed for seq selection (decorrelated from the trace seed).
    pub seed: u64,
    /// Worker panics to inject.
    pub panics: usize,
    /// Requests to poison before submission.
    pub poison: usize,
    /// Requests to force through the degradation tier.
    pub queue_full: usize,
    /// Requests to delay (timing-only perturbation).
    pub latency: usize,
}

impl Default for ChaosSpec {
    fn default() -> Self {
        Self {
            seed: 0xC4A0,
            panics: 0,
            poison: 0,
            queue_full: 0,
            latency: 0,
        }
    }
}

impl fmt::Display for ChaosSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed={:#x},panics={},poison={},queue-full={},latency={}",
            self.seed, self.panics, self.poison, self.queue_full, self.latency
        )
    }
}

impl ChaosSpec {
    /// Parses a `key=value` comma list (`seed=0x9,panics=4,poison=2,
    /// queue-full=3,latency=8`); omitted keys default to zero injections.
    ///
    /// # Errors
    ///
    /// Unknown keys and unparsable values are reported as human-readable
    /// strings (the CLI maps them to usage errors).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut out = Self::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("chaos spec: `{part}` is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let bad = |k: &str, v: &str| format!("chaos spec: `{k}` has unparsable value `{v}`");
            match key {
                "seed" => {
                    out.seed = match value
                        .strip_prefix("0x")
                        .or_else(|| value.strip_prefix("0X"))
                    {
                        Some(hex) => u64::from_str_radix(hex, 16),
                        None => value.parse(),
                    }
                    .map_err(|_| bad(key, value))?;
                }
                "panics" => out.panics = value.parse().map_err(|_| bad(key, value))?,
                "poison" => out.poison = value.parse().map_err(|_| bad(key, value))?,
                "queue-full" => out.queue_full = value.parse().map_err(|_| bad(key, value))?,
                "latency" => out.latency = value.parse().map_err(|_| bad(key, value))?,
                other => return Err(format!("chaos spec: unknown key `{other}`")),
            }
        }
        Ok(out)
    }

    /// Total injections the spec asks for.
    pub fn total(&self) -> usize {
        self.panics + self.poison + self.queue_full + self.latency
    }
}

/// The spec materialized against a concrete event count: four disjoint,
/// sorted seq sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosPlan {
    panics: Vec<u64>,
    poison: Vec<u64>,
    queue_full: Vec<u64>,
    latency: Vec<u64>,
}

impl ChaosPlan {
    /// Samples the plan's seq sets for a trace of `events` arrivals.
    ///
    /// Sampling is rejection-based over a single SplitMix64 stream, so
    /// the same `(spec, events)` pair always yields the same plan and the
    /// four classes never overlap.
    ///
    /// # Errors
    ///
    /// Rejects specs that ask for more injections than there are events.
    pub fn materialize(spec: &ChaosSpec, events: u64) -> Result<Self, String> {
        let total = spec.total() as u64;
        if total > events {
            return Err(format!(
                "chaos spec asks for {total} injections but the trace has only {events} events"
            ));
        }
        let mut rng = SplitMix64::new(SplitMix64::mix(&[spec.seed, TAG_CHAOS, events]));
        let mut taken = std::collections::BTreeSet::new();
        let mut draw = |count: usize| -> Vec<u64> {
            let mut set = Vec::with_capacity(count);
            while set.len() < count {
                let seq = rng.next_value() % events;
                if taken.insert(seq) {
                    set.push(seq);
                }
            }
            set.sort_unstable();
            set
        };
        Ok(Self {
            panics: draw(spec.panics),
            poison: draw(spec.poison),
            queue_full: draw(spec.queue_full),
            latency: draw(spec.latency),
        })
    }

    /// An empty plan (no injections) — what a chaos-free replay uses.
    pub fn none() -> Self {
        Self {
            panics: Vec::new(),
            poison: Vec::new(),
            queue_full: Vec::new(),
            latency: Vec::new(),
        }
    }

    /// Should the worker panic on this seq?
    pub fn panic_at(&self, seq: u64) -> bool {
        self.panics.binary_search(&seq).is_ok()
    }

    /// Should the driver poison this request line?
    pub fn poison_at(&self, seq: u64) -> bool {
        self.poison.binary_search(&seq).is_ok()
    }

    /// Should this request be forced through the degradation tier?
    pub fn queue_full_at(&self, seq: u64) -> bool {
        self.queue_full.binary_search(&seq).is_ok()
    }

    /// Should the worker inject latency before solving this seq?
    pub fn latency_at(&self, seq: u64) -> bool {
        self.latency.binary_search(&seq).is_ok()
    }

    /// Seqs whose response bytes differ from a clean run (panicked and
    /// poisoned ones); latency and forced degradation change bytes too,
    /// but degradation is still a well-formed `ok` response.
    pub fn injected_panics(&self) -> &[u64] {
        &self.panics
    }

    /// Seqs the driver poisons.
    pub fn injected_poison(&self) -> &[u64] {
        &self.poison
    }

    /// Seqs forced through the degradation tier.
    pub fn injected_queue_full(&self) -> &[u64] {
        &self.queue_full
    }

    /// Seqs with injected latency.
    pub fn injected_latency(&self) -> &[u64] {
        &self.latency
    }

    /// Count of injections of each class with seq ≥ `from` — the portion
    /// of the plan a resumed replay will actually execute (earlier seqs
    /// were recovered from the journal, not re-run).
    pub fn counts_from(&self, from: u64) -> ChaosCounts {
        let tail = |set: &[u64]| set.iter().filter(|&&s| s >= from).count() as u64;
        ChaosCounts {
            panics: tail(&self.panics),
            poison: tail(&self.poison),
            queue_full: tail(&self.queue_full),
            latency: tail(&self.latency),
        }
    }
}

/// Per-class injection counts (used to validate observed counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosCounts {
    /// Worker panics expected.
    pub panics: u64,
    /// Poisoned requests expected.
    pub poison: u64,
    /// Forced degradations expected.
    pub queue_full: u64,
    /// Latency injections expected.
    pub latency: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_its_canonical_rendering() {
        let spec = ChaosSpec {
            seed: 0x1F,
            panics: 3,
            poison: 2,
            queue_full: 5,
            latency: 7,
        };
        assert_eq!(ChaosSpec::parse(&spec.to_string()).unwrap(), spec);
        let partial = ChaosSpec::parse("panics=2").unwrap();
        assert_eq!(partial.panics, 2);
        assert_eq!(partial.poison, 0);
        assert!(ChaosSpec::parse("panics=x").is_err());
        assert!(ChaosSpec::parse("zap=1").is_err());
        assert!(ChaosSpec::parse("panics").is_err());
    }

    #[test]
    fn plan_is_deterministic_disjoint_and_in_range() {
        let spec = ChaosSpec {
            seed: 7,
            panics: 10,
            poison: 10,
            queue_full: 10,
            latency: 10,
        };
        let a = ChaosPlan::materialize(&spec, 500).unwrap();
        let b = ChaosPlan::materialize(&spec, 500).unwrap();
        assert_eq!(a, b, "same (spec, events) ⇒ same plan");
        let mut all: Vec<u64> = [&a.panics, &a.poison, &a.queue_full, &a.latency]
            .iter()
            .flat_map(|s| s.iter().copied())
            .collect();
        assert!(all.iter().all(|&s| s < 500));
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "classes must be disjoint");
        // A different event count reselects.
        let c = ChaosPlan::materialize(&spec, 501).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn overfull_specs_are_rejected() {
        let spec = ChaosSpec {
            panics: 5,
            poison: 5,
            ..ChaosSpec::default()
        };
        assert!(ChaosPlan::materialize(&spec, 9).is_err());
        assert!(ChaosPlan::materialize(&spec, 10).is_ok());
    }

    #[test]
    fn lookups_and_resume_counts_agree_with_the_sets() {
        let spec = ChaosSpec {
            seed: 3,
            panics: 4,
            poison: 3,
            queue_full: 2,
            latency: 1,
        };
        let plan = ChaosPlan::materialize(&spec, 100).unwrap();
        for &s in plan.injected_panics() {
            assert!(plan.panic_at(s) && !plan.poison_at(s));
        }
        for &s in plan.injected_poison() {
            assert!(plan.poison_at(s) && !plan.queue_full_at(s));
        }
        let full = plan.counts_from(0);
        assert_eq!(
            full,
            ChaosCounts {
                panics: 4,
                poison: 3,
                queue_full: 2,
                latency: 1
            }
        );
        assert_eq!(plan.counts_from(100), ChaosCounts::default());
        // Partial resume point: counts must partition.
        let mid = plan.counts_from(50);
        assert!(mid.panics <= full.panics && mid.poison <= full.poison);
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = ChaosPlan::none();
        for seq in 0..32 {
            assert!(!plan.panic_at(seq));
            assert!(!plan.poison_at(seq));
            assert!(!plan.queue_full_at(seq));
            assert!(!plan.latency_at(seq));
        }
    }
}
