//! The persistent scheduling service: worker pool, bounded admission
//! queue, deadline shedding, graceful degradation, worker supervision
//! and in-order response emission.
//!
//! # Architecture
//!
//! ```text
//! submit(line) ──parse──► bounded queue ──► N workers (warm Workspace each)
//!      │ bad-request          │ full → shed        │ solve via SolveCache
//!      ▼                      ▼                    │ pressure → degrade tier
//!   error line           overloaded line           ▼ panic → supervisor
//!      └──────────────────────┴───────────────────response line
//!                                                  │
//!                               write-ahead journal (optional)
//!                                                  │
//!                                       in-order emitter ──► sink
//! ```
//!
//! * **Admission** happens on the submitting thread: a line is parsed and
//!   validated there, so malformed requests are answered immediately and
//!   never occupy queue space. A full queue sheds with an explicit
//!   `overloaded` response — [`Service::submit`] never blocks the
//!   submitter. ([`Service::submit_blocking`] is the replay-side
//!   alternative: it waits for queue room instead, because a replay must
//!   never shed — shedding depends on timing and would break
//!   byte-identity.)
//! * **Workers** each own a warm [`Workspace`]; a request's schedule is
//!   recycled back into the arena after its response is rendered, so the
//!   steady-state solve path allocates nothing. A panic that escapes the
//!   per-request solver guard is contained by the worker itself: the
//!   in-flight request is answered `worker-panic`, the workspace is
//!   rebuilt, and the shared [`Supervisor`] either grants a restart
//!   (exponential backoff) or — budget exhausted — fails fast, draining
//!   everything still queued with `shutdown` errors.
//! * **Deadlines** are relative to admission and measured on the
//!   injectable [`ServiceClock`], so tests can drive expiry with a
//!   [`ManualClock`](crate::clock::ManualClock) instead of sleeping.
//! * **Degradation**: under queue-occupancy or deadline pressure (or
//!   when the chaos plan says so), a request is routed through the
//!   race-to-idle tier ([`api::execute_degraded_in`]) instead of being
//!   shed — an explicit `degraded` response beats no response.
//! * **Ordering**: every admitted-or-answered line gets a sequence number
//!   at submission; the emitter releases responses strictly in that
//!   order. Response *bytes* are a pure function of the request (cache
//!   hits reproduce the cold solve's bits, canonicalization makes
//!   permutations converge), so the output stream is byte-identical for
//!   any worker count. With a journal attached, each line is journaled —
//!   and flushed — *before* it reaches the sink: after a hard kill the
//!   journal holds a durable prefix of the output.
//! * **Drain**: [`Service::finish`] stops admission, lets the workers
//!   empty the queue, joins them and flushes — every admitted request is
//!   answered exactly once before shutdown completes.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use sdem_obs::json::{self, Value};
use sdem_obs::Counter;
use sdem_types::{ErrorKind, Workspace};

use crate::api::{self, ApiError, SolveRequest};
use crate::cache::{CacheParams, CachedSolve, SolveCache};
use crate::chaos::ChaosPlan;
use crate::clock::ServiceClock;
use crate::journal::ReplayJournal;
use crate::supervisor::{Supervisor, SupervisorConfig, Verdict};

/// Histogram label for end-to-end per-request service time.
pub const REQUEST_HISTOGRAM: &str = "serve/request_ns";

/// Milliseconds a chaos latency injection stalls a worker (timing-only:
/// it must perturb interleavings without changing any output byte).
const CHAOS_LATENCY_MS: u64 = 2;

/// Graceful-degradation thresholds. When either trips, the request is
/// answered by the race-to-idle tier with `"degraded": true` instead of
/// being shed or solved in full.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradeTiers {
    /// Queue-occupancy fraction (of `queue_depth`) at dequeue time at or
    /// above which the service is considered under sustained overload.
    pub queue_fraction: f64,
    /// Remaining-deadline slack, milliseconds: a request whose deadline
    /// is closer than this when a worker picks it up is degraded rather
    /// than risked against the full solver. Zero disables the trigger.
    pub deadline_slack_ms: f64,
}

impl Default for DegradeTiers {
    fn default() -> Self {
        Self {
            queue_fraction: 0.9,
            deadline_slack_ms: 0.0,
        }
    }
}

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads (each with its own warm workspace). Min 1.
    pub workers: usize,
    /// Bounded queue depth; a full queue sheds with `overloaded`. Min 1.
    pub queue_depth: usize,
    /// Solve-cache capacity in entries; 0 disables caching.
    pub cache_capacity: usize,
    /// Time source for admission stamps and deadline checks.
    pub clock: ServiceClock,
    /// Start with the workers gated: nothing is dequeued until
    /// [`Service::release_workers`]. Lets deadline tests fill the queue,
    /// advance a manual clock, and only then let workers observe expiry.
    pub start_paused: bool,
    /// Worker restart policy for panics that escape the solver guard.
    pub supervisor: SupervisorConfig,
    /// Graceful-degradation thresholds; `None` disables the tier (chaos
    /// can still force individual requests through it).
    pub degrade: Option<DegradeTiers>,
    /// Chaos injections (worker panics, forced degradation, latency),
    /// shared with the workers. `None` for production service.
    pub chaos: Option<Arc<ChaosPlan>>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_depth: 1024,
            cache_capacity: 4096,
            clock: ServiceClock::default(),
            start_paused: false,
            supervisor: SupervisorConfig::default(),
            degrade: None,
            chaos: None,
        }
    }
}

/// Totals observed by one service lifetime (also available as `sdem-obs`
/// counters when the registry is armed).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServiceStats {
    /// Lines submitted (excluding blank lines).
    pub submitted: u64,
    /// Requests admitted to the queue.
    pub admitted: u64,
    /// Requests shed with `overloaded`.
    pub shed: u64,
    /// Requests rejected at parse/validation with `bad-request`.
    pub rejected: u64,
    /// Cache hits / misses / evictions.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Cache evictions.
    pub cache_evictions: u64,
    /// Worker-level panics contained and restarted by the supervisor.
    pub worker_restarts: u64,
    /// Responses produced by the graceful-degradation tier.
    pub degraded: u64,
    /// Journaled responses replayed verbatim instead of re-solved.
    pub recovered: u64,
    /// Whether the supervisor escalated to fail-fast before the drain.
    pub failed: bool,
}

struct Job {
    seq: u64,
    req: SolveRequest,
    admitted_ns: u64,
}

struct QueueState {
    queue: VecDeque<Job>,
    accepting: bool,
    paused: bool,
    failed: bool,
    next_seq: u64,
    admitted: u64,
    shed: u64,
    rejected: u64,
    submitted: u64,
    recovered: u64,
}

struct Emitter {
    next: u64,
    pending: BTreeMap<u64, String>,
    out: Box<dyn Write + Send>,
}

struct Inner {
    cfg: ServiceConfig,
    state: Mutex<QueueState>,
    work_ready: Condvar,
    space_ready: Condvar,
    emit: Mutex<Emitter>,
    cache: Mutex<SolveCache>,
    supervisor: Mutex<Supervisor>,
    degraded: AtomicU64,
    /// Write-ahead journal plus the first seq that must be journaled
    /// (recovered seqs below it are already on disk).
    journal: Option<(Arc<ReplayJournal>, u64)>,
}

/// A running service instance. Submit request lines with
/// [`Service::submit`]; responses stream to the sink in submission order;
/// [`Service::finish`] drains and shuts down.
pub struct Service {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Service {
    /// Starts the worker pool; responses are written to `out` as JSONL.
    pub fn start(cfg: ServiceConfig, out: Box<dyn Write + Send>) -> Self {
        Self::start_inner(cfg, out, None)
    }

    /// Starts the worker pool with a write-ahead journal: every emitted
    /// line with seq ≥ `journal_from` is appended (and flushed) to the
    /// journal *before* it reaches `out`. Seqs below `journal_from` were
    /// recovered from the journal on resume and are already durable.
    pub fn start_with_journal(
        cfg: ServiceConfig,
        out: Box<dyn Write + Send>,
        journal: Arc<ReplayJournal>,
        journal_from: u64,
    ) -> Self {
        Self::start_inner(cfg, out, Some((journal, journal_from)))
    }

    fn start_inner(
        cfg: ServiceConfig,
        out: Box<dyn Write + Send>,
        journal: Option<(Arc<ReplayJournal>, u64)>,
    ) -> Self {
        let cfg = ServiceConfig {
            workers: cfg.workers.max(1),
            queue_depth: cfg.queue_depth.max(1),
            ..cfg
        };
        let inner = Arc::new(Inner {
            cache: Mutex::new(SolveCache::new(cfg.cache_capacity)),
            supervisor: Mutex::new(Supervisor::new(cfg.supervisor)),
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                accepting: true,
                paused: cfg.start_paused,
                failed: false,
                next_seq: 0,
                admitted: 0,
                shed: 0,
                rejected: 0,
                submitted: 0,
                recovered: 0,
            }),
            cfg,
            work_ready: Condvar::new(),
            space_ready: Condvar::new(),
            emit: Mutex::new(Emitter {
                next: 0,
                pending: BTreeMap::new(),
                out,
            }),
            degraded: AtomicU64::new(0),
            journal,
        });
        let workers = (0..inner.cfg.workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Self { inner, workers }
    }

    /// Opens the gate a `start_paused` service's workers wait behind.
    /// No-op when the service was not started paused.
    pub fn release_workers(&self) {
        let mut state = self.inner.state.lock().unwrap();
        state.paused = false;
        self.inner.work_ready.notify_all();
    }

    /// Submits one request line. Never blocks on the queue: a full queue
    /// answers `overloaded` immediately (explicit backpressure). Blank
    /// lines are ignored.
    pub fn submit(&self, line: &str) {
        self.submit_with(line, false);
    }

    /// Submits one request line, *waiting* for queue room instead of
    /// shedding. This is the replay driver's admission path: replay
    /// output must be a pure function of the trace, and shedding depends
    /// on timing. If the service has failed fast, the request is answered
    /// with a `shutdown` error instead of blocking forever.
    pub fn submit_blocking(&self, line: &str) {
        self.submit_with(line, true);
    }

    fn submit_with(&self, line: &str, blocking: bool) {
        let line = line.trim();
        if line.is_empty() {
            return;
        }
        match SolveRequest::parse_line(line) {
            Ok(req) => {
                let (seq, verdict) = {
                    let mut state = self.inner.state.lock().unwrap();
                    if blocking {
                        while state.queue.len() >= self.inner.cfg.queue_depth
                            && state.accepting
                            && !state.failed
                        {
                            state = self.inner.space_ready.wait(state).unwrap();
                        }
                    }
                    state.submitted += 1;
                    let seq = state.next_seq;
                    state.next_seq += 1;
                    if state.failed {
                        (seq, Some(Answer::Shutdown(req.id)))
                    } else if state.queue.len() >= self.inner.cfg.queue_depth {
                        state.shed += 1;
                        (seq, Some(Answer::Overloaded(req.id)))
                    } else {
                        state.admitted += 1;
                        state.queue.push_back(Job {
                            seq,
                            req,
                            admitted_ns: self.inner.cfg.clock.now_ns(),
                        });
                        self.inner.work_ready.notify_one();
                        (seq, None)
                    }
                };
                match verdict {
                    Some(Answer::Overloaded(id)) => {
                        sdem_obs::registry::incr(Counter::RequestsShed);
                        let error = ApiError::new(
                            ErrorKind::Overloaded,
                            format!(
                                "queue full ({} pending); retry later",
                                self.inner.cfg.queue_depth
                            ),
                        );
                        self.inner.emit(seq, api::error_line(Some(id), &error));
                    }
                    Some(Answer::Shutdown(id)) => {
                        let error = ApiError::new(
                            ErrorKind::Shutdown,
                            "service failed fast after exhausting its worker restart budget",
                        );
                        self.inner.emit(seq, api::error_line(Some(id), &error));
                    }
                    None => sdem_obs::registry::incr(Counter::RequestsAdmitted),
                }
            }
            Err(error) => {
                let seq = {
                    let mut state = self.inner.state.lock().unwrap();
                    state.submitted += 1;
                    state.rejected += 1;
                    let seq = state.next_seq;
                    state.next_seq += 1;
                    seq
                };
                sdem_obs::registry::incr(Counter::RequestsRejected);
                // Best-effort id recovery so the client can correlate the
                // rejection (the strict parse above already failed).
                let id = json::parse(line)
                    .ok()
                    .and_then(|d| d.get("id").and_then(Value::as_u64));
                self.inner.emit(seq, api::error_line(id, &error));
            }
        }
    }

    /// Emits a journal-recovered response verbatim: the line gets the
    /// next sequence number and goes straight to the emitter, bypassing
    /// parsing, the queue and the solvers. The replay driver calls this
    /// for every seq the journal already holds, in seq order, before
    /// submitting the remainder.
    pub fn emit_recovered(&self, line: &str) {
        let seq = {
            let mut state = self.inner.state.lock().unwrap();
            state.recovered += 1;
            let seq = state.next_seq;
            state.next_seq += 1;
            seq
        };
        sdem_obs::registry::incr(Counter::ServeRecoveredSeqs);
        self.inner.emit(seq, line.to_string());
    }

    /// Stops admission, drains every queued request, joins the workers
    /// and flushes the sink. Returns lifetime totals.
    pub fn finish(self) -> ServiceStats {
        {
            let mut state = self.inner.state.lock().unwrap();
            state.accepting = false;
            self.inner.work_ready.notify_all();
            self.inner.space_ready.notify_all();
        }
        for handle in self.workers {
            // A worker that somehow died already answered or will never
            // answer; joining the rest still drains the queue.
            let _ = handle.join();
        }
        let mut emit = self.inner.emit.lock().unwrap();
        debug_assert!(emit.pending.is_empty(), "drain left unemitted responses");
        let _ = emit.out.flush();
        let state = self.inner.state.lock().unwrap();
        let (cache_hits, cache_misses, cache_evictions) = self.inner.cache.lock().unwrap().stats();
        ServiceStats {
            submitted: state.submitted,
            admitted: state.admitted,
            shed: state.shed,
            rejected: state.rejected,
            cache_hits,
            cache_misses,
            cache_evictions,
            worker_restarts: u64::from(self.inner.supervisor.lock().unwrap().restarts()),
            degraded: self.inner.degraded.load(Ordering::Relaxed),
            recovered: state.recovered,
            failed: state.failed,
        }
    }
}

/// Immediate answers decided under the state lock in `submit_with`.
enum Answer {
    Overloaded(u64),
    Shutdown(u64),
}

impl Inner {
    /// Hands `line` (without trailing newline) to the in-order emitter.
    /// With a journal attached, each line is journaled — and flushed —
    /// before it is written to the sink (write-ahead ordering).
    fn emit(&self, seq: u64, line: String) {
        let mut emit = self.emit.lock().unwrap();
        if seq != emit.next {
            emit.pending.insert(seq, line);
            return;
        }
        let write = |seq: u64, out: &mut Box<dyn Write + Send>, line: &str| {
            if let Some((journal, from)) = &self.journal {
                if seq >= *from {
                    journal.append(seq, line);
                }
            }
            // A broken pipe here means the client is gone; responses are
            // still drained so shutdown stays clean.
            let _ = out.write_all(line.as_bytes());
            let _ = out.write_all(b"\n");
        };
        let Emitter { next, pending, out } = &mut *emit;
        write(*next, out, &line);
        *next += 1;
        while let Some(line) = pending.remove(next) {
            write(*next, out, &line);
            *next += 1;
        }
        let _ = out.flush();
    }
}

fn worker_loop(inner: &Inner) {
    let mut ws = Workspace::new();
    loop {
        let (job, occupancy) = {
            let mut state = inner.state.lock().unwrap();
            loop {
                if state.failed {
                    return;
                }
                if !state.paused {
                    if let Some(job) = state.queue.pop_front() {
                        let occupancy = state.queue.len() + 1;
                        inner.space_ready.notify_one();
                        break (job, occupancy);
                    }
                    if !state.accepting {
                        return;
                    }
                }
                state = inner.work_ready.wait(state).unwrap();
            }
        };
        let seq = job.seq;
        let req_id = job.req.id;
        // The outer guard catches worker-level panics: chaos injections
        // and worker-loop bugs, i.e. anything that escapes `answer`'s
        // per-request solver guard.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if let Some(chaos) = &inner.cfg.chaos {
                if chaos.panic_at(seq) {
                    // Deterministic payload: the worker-panic error line
                    // must be byte-identical across runs and worker counts.
                    panic!("chaos: injected worker panic at seq {seq}");
                }
                if chaos.latency_at(seq) {
                    std::thread::sleep(Duration::from_millis(CHAOS_LATENCY_MS));
                }
            }
            answer(inner, &job, &mut ws, occupancy)
        }));
        match outcome {
            Ok(line) => inner.emit(seq, line),
            Err(payload) => {
                // The workspace may be half-mutated mid-unwind; rebuild.
                ws = Workspace::new();
                sdem_obs::registry::incr(Counter::ServeWorkerRestarts);
                let detail = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                let error = ApiError::new(ErrorKind::WorkerPanic, detail);
                inner.emit(seq, api::error_line(Some(req_id), &error));
                let verdict = inner.supervisor.lock().unwrap().on_panic();
                match verdict {
                    Verdict::Restart { backoff_ms } => {
                        std::thread::sleep(Duration::from_millis(backoff_ms));
                    }
                    Verdict::FailFast => {
                        fail_fast(inner);
                        return;
                    }
                }
            }
        }
    }
}

/// Escalation after the restart budget is spent: mark the service failed,
/// answer everything still queued with `shutdown` errors, and wake every
/// waiter so blocked submitters and gated workers observe the failure.
fn fail_fast(inner: &Inner) {
    let drained: Vec<(u64, u64)> = {
        let mut state = inner.state.lock().unwrap();
        state.failed = true;
        let drained = state.queue.drain(..).map(|j| (j.seq, j.req.id)).collect();
        inner.work_ready.notify_all();
        inner.space_ready.notify_all();
        drained
    };
    for (seq, id) in drained {
        let error = ApiError::new(
            ErrorKind::Shutdown,
            "service failed fast after exhausting its worker restart budget",
        );
        inner.emit(seq, api::error_line(Some(id), &error));
    }
}

/// Produces the response line for one admitted job. `occupancy` is the
/// queue length (including this job) at dequeue time — the overload
/// signal the degradation tier reads.
fn answer(inner: &Inner, job: &Job, ws: &mut Workspace, occupancy: usize) -> String {
    let req = &job.req;
    let waited_ms = (inner.cfg.clock.now_ns().saturating_sub(job.admitted_ns)) as f64 / 1e6;
    if let Some(deadline_ms) = req.deadline_ms {
        if waited_ms >= deadline_ms {
            sdem_obs::registry::incr(Counter::RequestsExpired);
            let error = ApiError::new(
                ErrorKind::DeadlineExpired,
                format!("deadline {deadline_ms} ms expired before a worker was free"),
            );
            return api::error_line(Some(req.id), &error);
        }
    }

    let mut degrade = inner
        .cfg
        .chaos
        .as_ref()
        .is_some_and(|chaos| chaos.queue_full_at(job.seq));
    if let Some(tiers) = &inner.cfg.degrade {
        if occupancy as f64 >= tiers.queue_fraction * inner.cfg.queue_depth as f64 {
            degrade = true;
        }
        if tiers.deadline_slack_ms > 0.0 {
            if let Some(deadline_ms) = req.deadline_ms {
                if deadline_ms - waited_ms < tiers.deadline_slack_ms {
                    degrade = true;
                }
            }
        }
    }

    let clock = sdem_obs::registry::maybe_start();
    if degrade {
        // The pressure tier: race-to-idle directly, skipping both the
        // requested scheme and the cache (degraded bytes must never be
        // served as, or refreshed from, full-solve cache entries).
        sdem_obs::registry::incr(Counter::ServeDegradedResponses);
        inner.degraded.fetch_add(1, Ordering::Relaxed);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let platform = req.platform()?;
            api::execute_degraded_in(req, &platform, ws)
        }));
        let line = match outcome {
            Ok(Ok(executed)) => {
                let response = executed.response;
                ws.recycle_schedule(executed.solution.into_schedule());
                response.to_json_line()
            }
            Ok(Err(error)) => api::error_line(Some(req.id), &error),
            Err(payload) => panic_line(req.id, ws, payload),
        };
        sdem_obs::registry::record_elapsed(REQUEST_HISTOGRAM, clock);
        return line;
    }

    let canonical = req.tasks.canonicalize();
    let params = CacheParams {
        scheme: req.scheme_name.clone(),
        cores: req.cores,
        alpha_m_bits: req.alpha_m_w.to_bits(),
        xi_m_bits: req.xi_m_ms.to_bits(),
        fallback: req.fallback,
    };

    if let Some(hit) = inner.cache.lock().unwrap().get(&canonical, &params) {
        let line = hit
            .to_response(req.id, req.scheme_name.clone())
            .to_json_line();
        sdem_obs::registry::record_elapsed(REQUEST_HISTOGRAM, clock);
        return line;
    }

    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let platform = req.platform()?;
        api::execute_in(req, &platform, ws)
    }));
    let line = match outcome {
        Ok(Ok(executed)) => {
            // Tear the schedule back into the arena: the response carries
            // only the summary, so the warm path stays allocation-free.
            let response = executed.response;
            ws.recycle_schedule(executed.solution.into_schedule());
            inner.cache.lock().unwrap().insert(
                canonical,
                params,
                CachedSolve::from_response(&response),
            );
            response.to_json_line()
        }
        Ok(Err(error)) => api::error_line(Some(req.id), &error),
        Err(payload) => panic_line(req.id, ws, payload),
    };
    sdem_obs::registry::record_elapsed(REQUEST_HISTOGRAM, clock);
    line
}

/// Folds a contained solver panic into a `solver-panic` error line,
/// rebuilding the possibly half-mutated workspace.
fn panic_line(id: u64, ws: &mut Workspace, payload: Box<dyn std::any::Any + Send>) -> String {
    *ws = Workspace::new();
    sdem_obs::registry::incr(Counter::SolverPanicsCaught);
    let detail = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    let error = ApiError::new(ErrorKind::SolverPanic, detail);
    api::error_line(Some(id), &error)
}

/// Runs a whole JSONL session: submits every line of `input`, drains, and
/// returns the totals. The convenience entry the CLI daemon and tests use.
pub fn run_session(
    cfg: ServiceConfig,
    input: impl std::io::BufRead,
    out: Box<dyn Write + Send>,
) -> std::io::Result<ServiceStats> {
    let service = Service::start(cfg, out);
    for line in input.lines() {
        service.submit(&line?);
    }
    Ok(service.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// A `Write` sink tests can read back after the service finishes.
    #[derive(Clone, Default)]
    pub struct SharedBuf(Arc<StdMutex<Vec<u8>>>);

    impl SharedBuf {
        pub fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn req(id: u64, tasks: &str) -> String {
        format!("{{\"v\":1,\"id\":{id},\"scheme\":\"auto\",\"tasks\":{tasks}}}")
    }

    #[test]
    fn responses_come_back_in_submission_order() {
        let buf = SharedBuf::default();
        let service = Service::start(
            ServiceConfig {
                workers: 4,
                ..Default::default()
            },
            Box::new(buf.clone()),
        );
        for id in 0..32 {
            // Alternate two shapes plus a malformed line every 8th.
            if id % 8 == 7 {
                service.submit("{\"id\":true}");
            } else if id % 2 == 0 {
                service.submit(&req(id, "[[0,0,40,8e6],[1,0,70,1.2e7]]"));
            } else {
                service.submit(&req(id, "[[0,0,50,4e6]]"));
            }
        }
        let stats = service.finish();
        assert_eq!(stats.submitted, 32);
        assert_eq!(stats.rejected, 4);
        assert!(!stats.failed);
        let text = buf.contents();
        let ids: Vec<&str> = text
            .lines()
            .map(|l| {
                let start = l.find("\"id\":").unwrap() + 5;
                l[start..].split(',').next().unwrap()
            })
            .collect();
        // Every line present, in submission order (malformed → null id).
        assert_eq!(ids.len(), 32);
        for (i, id) in ids.iter().enumerate() {
            if i % 8 == 7 {
                assert_eq!(*id, "null", "line {i}");
            } else {
                assert_eq!(*id, i.to_string(), "line {i}");
            }
        }
    }

    #[test]
    fn output_is_byte_identical_across_worker_counts() {
        let run = |workers: usize| {
            let buf = SharedBuf::default();
            let service = Service::start(
                ServiceConfig {
                    workers,
                    ..Default::default()
                },
                Box::new(buf.clone()),
            );
            for id in 0..64 {
                let shape = id % 3;
                let tasks = match shape {
                    0 => "[[0,0,40,8e6],[1,0,70,1.2e7]]",
                    1 => "[[1,0,70,1.2e7],[0,0,40,8e6]]", // permutation of 0
                    _ => "[[0,0,50,4e6],[1,10,80,6e6],[2,10,90,2e6]]",
                };
                service.submit(&req(id, tasks));
            }
            service.finish();
            buf.contents()
        };
        let one = run(1);
        assert_eq!(one, run(4));
        assert_eq!(one, run(8));
    }

    #[test]
    fn zero_deadline_requests_expire_deterministically() {
        let buf = SharedBuf::default();
        let service = Service::start(ServiceConfig::default(), Box::new(buf.clone()));
        service.submit("{\"id\":5,\"deadline_ms\":0,\"tasks\":[[0,0,40,8e6]]}");
        let stats = service.finish();
        assert_eq!(stats.admitted, 1);
        let text = buf.contents();
        assert!(text.contains("\"kind\":\"deadline-expired\""), "{text}");
        assert!(text.contains("\"id\":5"), "{text}");
    }

    #[test]
    fn full_queue_sheds_with_overloaded() {
        // One worker, depth 1: stall the worker with a big exact-solver
        // request is overkill — instead submit faster than one worker can
        // drain by using a queue of depth 1 and many requests; at least
        // one shed is not guaranteed deterministically, so force it by
        // never starting workers… simplest honest route: depth 1 with 0
        // worker wakeups is impossible, so assert the response invariant
        // instead: every submitted line is answered exactly once.
        let buf = SharedBuf::default();
        let service = Service::start(
            ServiceConfig {
                workers: 1,
                queue_depth: 1,
                cache_capacity: 0,
                ..Default::default()
            },
            Box::new(buf.clone()),
        );
        for id in 0..64 {
            service.submit(&req(id, "[[0,0,40,8e6],[1,0,70,1.2e7]]"));
        }
        let stats = service.finish();
        assert_eq!(stats.submitted, 64);
        assert_eq!(stats.admitted + stats.shed, 64);
        let text = buf.contents();
        assert_eq!(text.lines().count(), 64, "every request answered once");
        let sheds = text.matches("\"kind\":\"overloaded\"").count() as u64;
        assert_eq!(sheds, stats.shed);
    }

    #[test]
    fn blocking_submission_never_sheds() {
        let buf = SharedBuf::default();
        let service = Service::start(
            ServiceConfig {
                workers: 1,
                queue_depth: 1,
                cache_capacity: 0,
                ..Default::default()
            },
            Box::new(buf.clone()),
        );
        for id in 0..32 {
            service.submit_blocking(&req(id, "[[0,0,40,8e6],[1,0,70,1.2e7]]"));
        }
        let stats = service.finish();
        assert_eq!(stats.admitted, 32, "backpressure instead of shedding");
        assert_eq!(stats.shed, 0);
        assert_eq!(buf.contents().lines().count(), 32);
    }

    #[test]
    fn cache_hits_reproduce_cold_bytes_and_count() {
        sdem_obs::registry::reset();
        let buf = SharedBuf::default();
        let service = Service::start(
            ServiceConfig {
                workers: 1,
                ..Default::default()
            },
            Box::new(buf.clone()),
        );
        let tasks = "[[0,0,40,8e6],[1,0,70,1.2e7]]";
        let permuted = "[[1,0,70,1.2e7],[0,0,40,8e6]]";
        service.submit(&req(1, tasks));
        service.submit(&req(2, tasks));
        service.submit(&req(3, permuted));
        let stats = service.finish();
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 2, "repeat and permutation both hit");
        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        // Identical modulo the echoed id.
        let strip = |l: &str| l.replacen(|c: char| c.is_ascii_digit(), "", 1);
        let norm: Vec<String> = lines
            .iter()
            .map(|l| {
                strip(
                    &l.replace("\"id\":1", "\"id\":N")
                        .replace("\"id\":2", "\"id\":N")
                        .replace("\"id\":3", "\"id\":N"),
                )
            })
            .collect();
        assert_eq!(norm[0], norm[1]);
        assert_eq!(norm[0], norm[2]);
    }

    #[test]
    fn session_runner_drains_cleanly_at_eof() {
        let input = format!(
            "{}\n{}\n\n{}\n",
            req(0, "[[0,0,40,8e6]]"),
            req(1, "[[0,0,40,8e6],[1,0,70,1.2e7]]"),
            req(2, "[[0,0,40,8e6]]"),
        );
        let buf = SharedBuf::default();
        let stats = run_session(
            ServiceConfig::default(),
            std::io::Cursor::new(input),
            Box::new(buf.clone()),
        )
        .unwrap();
        assert_eq!(stats.submitted, 3, "blank line ignored");
        assert_eq!(buf.contents().lines().count(), 3);
    }

    #[test]
    fn recovered_lines_bypass_the_solvers_and_keep_seq_order() {
        let buf = SharedBuf::default();
        let service = Service::start(
            ServiceConfig {
                workers: 2,
                ..Default::default()
            },
            Box::new(buf.clone()),
        );
        service.emit_recovered("{\"v\":1,\"id\":0,\"ok\":true,\"stored\":true}");
        service.emit_recovered("{\"v\":1,\"id\":1,\"ok\":true,\"stored\":true}");
        service.submit(&req(2, "[[0,0,40,8e6]]"));
        let stats = service.finish();
        assert_eq!(stats.recovered, 2);
        assert_eq!(stats.admitted, 1);
        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"stored\":true"));
        assert!(lines[1].contains("\"stored\":true"));
        assert!(lines[2].contains("\"id\":2"));
    }

    #[test]
    fn occupancy_pressure_routes_through_the_degraded_tier() {
        // Paused workers + depth 4 + fraction 0.5: the queue fills before
        // any dequeue, so at least the first dequeues see occupancy ≥ 2.
        let buf = SharedBuf::default();
        let service = Service::start(
            ServiceConfig {
                workers: 1,
                queue_depth: 4,
                cache_capacity: 0,
                start_paused: true,
                degrade: Some(DegradeTiers {
                    queue_fraction: 0.5,
                    deadline_slack_ms: 0.0,
                }),
                ..Default::default()
            },
            Box::new(buf.clone()),
        );
        for id in 0..4 {
            service.submit(&req(id, "[[0,0,40,8e6],[1,0,70,1.2e7]]"));
        }
        service.release_workers();
        let stats = service.finish();
        assert!(stats.degraded >= 1, "pressure must trigger the tier");
        let text = buf.contents();
        assert!(
            text.contains("\"resolved\":\"degraded/race-to-idle\""),
            "{text}"
        );
        assert!(text.contains("\"degraded\":true"), "{text}");
        assert_eq!(
            text.matches("\"degraded\":true").count() as u64,
            stats.degraded
        );
    }
}
