//! The persistent scheduling service: worker pool, bounded admission
//! queue, deadline shedding and in-order response emission.
//!
//! # Architecture
//!
//! ```text
//! submit(line) ──parse──► bounded queue ──► N workers (warm Workspace each)
//!      │ bad-request          │ full → shed        │ solve via SolveCache
//!      ▼                      ▼                    ▼
//!   error line           overloaded line      response line
//!      └──────────────────────┴───────────────────┴──► in-order emitter
//! ```
//!
//! * **Admission** happens on the submitting thread: a line is parsed and
//!   validated there, so malformed requests are answered immediately and
//!   never occupy queue space. A full queue sheds with an explicit
//!   `overloaded` response — the service never blocks the submitter.
//! * **Workers** each own a warm [`Workspace`]; a request's schedule is
//!   recycled back into the arena after its response is rendered, so the
//!   steady-state solve path allocates nothing.
//! * **Deadlines** are relative to admission: a worker that dequeues a
//!   request whose `deadline_ms` has already elapsed answers
//!   `deadline-expired` without solving.
//! * **Ordering**: every admitted-or-answered line gets a sequence number
//!   at submission; the emitter releases responses strictly in that
//!   order. Response *bytes* are a pure function of the request (cache
//!   hits reproduce the cold solve's bits, canonicalization makes
//!   permutations converge), so the output stream is byte-identical for
//!   any worker count.
//! * **Drain**: [`Service::finish`] stops admission, lets the workers
//!   empty the queue, joins them and flushes — every admitted request is
//!   answered exactly once before shutdown completes.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use sdem_obs::json::{self, Value};
use sdem_obs::Counter;
use sdem_types::{ErrorKind, Workspace};

use crate::api::{self, ApiError, SolveRequest};
use crate::cache::{CacheParams, CachedSolve, SolveCache};

/// Histogram label for end-to-end per-request service time.
pub const REQUEST_HISTOGRAM: &str = "serve/request_ns";

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads (each with its own warm workspace). Min 1.
    pub workers: usize,
    /// Bounded queue depth; a full queue sheds with `overloaded`. Min 1.
    pub queue_depth: usize,
    /// Solve-cache capacity in entries; 0 disables caching.
    pub cache_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_depth: 1024,
            cache_capacity: 4096,
        }
    }
}

/// Totals observed by one service lifetime (also available as `sdem-obs`
/// counters when the registry is armed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Lines submitted (excluding blank lines).
    pub submitted: u64,
    /// Requests admitted to the queue.
    pub admitted: u64,
    /// Requests shed with `overloaded`.
    pub shed: u64,
    /// Requests rejected at parse/validation with `bad-request`.
    pub rejected: u64,
    /// Cache hits / misses / evictions.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Cache evictions.
    pub cache_evictions: u64,
}

struct Job {
    seq: u64,
    req: SolveRequest,
    admitted: Instant,
}

struct QueueState {
    queue: VecDeque<Job>,
    accepting: bool,
    next_seq: u64,
    admitted: u64,
    shed: u64,
    rejected: u64,
    submitted: u64,
}

struct Emitter {
    next: u64,
    pending: BTreeMap<u64, String>,
    out: Box<dyn Write + Send>,
}

struct Inner {
    cfg: ServiceConfig,
    state: Mutex<QueueState>,
    work_ready: Condvar,
    emit: Mutex<Emitter>,
    cache: Mutex<SolveCache>,
}

/// A running service instance. Submit request lines with
/// [`Service::submit`]; responses stream to the sink in submission order;
/// [`Service::finish`] drains and shuts down.
pub struct Service {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Service {
    /// Starts the worker pool; responses are written to `out` as JSONL.
    pub fn start(cfg: ServiceConfig, out: Box<dyn Write + Send>) -> Self {
        let cfg = ServiceConfig {
            workers: cfg.workers.max(1),
            queue_depth: cfg.queue_depth.max(1),
            ..cfg
        };
        let inner = Arc::new(Inner {
            cache: Mutex::new(SolveCache::new(cfg.cache_capacity)),
            cfg,
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                accepting: true,
                next_seq: 0,
                admitted: 0,
                shed: 0,
                rejected: 0,
                submitted: 0,
            }),
            work_ready: Condvar::new(),
            emit: Mutex::new(Emitter {
                next: 0,
                pending: BTreeMap::new(),
                out,
            }),
        });
        let workers = (0..inner.cfg.workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Self { inner, workers }
    }

    /// Submits one request line. Never blocks on the queue: a full queue
    /// answers `overloaded` immediately (explicit backpressure). Blank
    /// lines are ignored.
    pub fn submit(&self, line: &str) {
        let line = line.trim();
        if line.is_empty() {
            return;
        }
        match SolveRequest::parse_line(line) {
            Ok(req) => {
                let (seq, verdict) = {
                    let mut state = self.inner.state.lock().unwrap();
                    state.submitted += 1;
                    let seq = state.next_seq;
                    state.next_seq += 1;
                    if state.queue.len() >= self.inner.cfg.queue_depth {
                        state.shed += 1;
                        (seq, Some(req.id))
                    } else {
                        state.admitted += 1;
                        state.queue.push_back(Job {
                            seq,
                            req,
                            admitted: Instant::now(),
                        });
                        self.inner.work_ready.notify_one();
                        (seq, None)
                    }
                };
                if let Some(id) = verdict {
                    sdem_obs::registry::incr(Counter::RequestsShed);
                    let error = ApiError::new(
                        ErrorKind::Overloaded,
                        format!(
                            "queue full ({} pending); retry later",
                            self.inner.cfg.queue_depth
                        ),
                    );
                    self.inner.emit(seq, api::error_line(Some(id), &error));
                } else {
                    sdem_obs::registry::incr(Counter::RequestsAdmitted);
                }
            }
            Err(error) => {
                let seq = {
                    let mut state = self.inner.state.lock().unwrap();
                    state.submitted += 1;
                    state.rejected += 1;
                    let seq = state.next_seq;
                    state.next_seq += 1;
                    seq
                };
                sdem_obs::registry::incr(Counter::RequestsRejected);
                // Best-effort id recovery so the client can correlate the
                // rejection (the strict parse above already failed).
                let id = json::parse(line)
                    .ok()
                    .and_then(|d| d.get("id").and_then(Value::as_u64));
                self.inner.emit(seq, api::error_line(id, &error));
            }
        }
    }

    /// Stops admission, drains every queued request, joins the workers
    /// and flushes the sink. Returns lifetime totals.
    pub fn finish(self) -> ServiceStats {
        {
            let mut state = self.inner.state.lock().unwrap();
            state.accepting = false;
            self.inner.work_ready.notify_all();
        }
        for handle in self.workers {
            // A worker that somehow died already answered or will never
            // answer; joining the rest still drains the queue.
            let _ = handle.join();
        }
        let mut emit = self.inner.emit.lock().unwrap();
        debug_assert!(emit.pending.is_empty(), "drain left unemitted responses");
        let _ = emit.out.flush();
        let state = self.inner.state.lock().unwrap();
        let (cache_hits, cache_misses, cache_evictions) = self.inner.cache.lock().unwrap().stats();
        ServiceStats {
            submitted: state.submitted,
            admitted: state.admitted,
            shed: state.shed,
            rejected: state.rejected,
            cache_hits,
            cache_misses,
            cache_evictions,
        }
    }
}

impl Inner {
    /// Hands `line` (without trailing newline) to the in-order emitter.
    fn emit(&self, seq: u64, line: String) {
        let mut emit = self.emit.lock().unwrap();
        if seq != emit.next {
            emit.pending.insert(seq, line);
            return;
        }
        let write = |out: &mut Box<dyn Write + Send>, line: &str| {
            // A broken pipe here means the client is gone; responses are
            // still drained so shutdown stays clean.
            let _ = out.write_all(line.as_bytes());
            let _ = out.write_all(b"\n");
        };
        let Emitter { next, pending, out } = &mut *emit;
        write(out, &line);
        *next += 1;
        while let Some(line) = pending.remove(next) {
            write(out, &line);
            *next += 1;
        }
        let _ = out.flush();
    }
}

fn worker_loop(inner: &Inner) {
    let mut ws = Workspace::new();
    loop {
        let job = {
            let mut state = inner.state.lock().unwrap();
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if !state.accepting {
                    return;
                }
                state = inner.work_ready.wait(state).unwrap();
            }
        };
        let line = answer(inner, &job, &mut ws);
        inner.emit(job.seq, line);
    }
}

/// Produces the response line for one admitted job.
fn answer(inner: &Inner, job: &Job, ws: &mut Workspace) -> String {
    let req = &job.req;
    if let Some(deadline_ms) = req.deadline_ms {
        let waited_ms = job.admitted.elapsed().as_secs_f64() * 1e3;
        if waited_ms >= deadline_ms {
            sdem_obs::registry::incr(Counter::RequestsExpired);
            let error = ApiError::new(
                ErrorKind::DeadlineExpired,
                format!("deadline {deadline_ms} ms expired before a worker was free"),
            );
            return api::error_line(Some(req.id), &error);
        }
    }

    let clock = sdem_obs::registry::maybe_start();
    let canonical = req.tasks.canonicalize();
    let params = CacheParams {
        scheme: req.scheme_name.clone(),
        cores: req.cores,
        alpha_m_bits: req.alpha_m_w.to_bits(),
        xi_m_bits: req.xi_m_ms.to_bits(),
        fallback: req.fallback,
    };

    if let Some(hit) = inner.cache.lock().unwrap().get(&canonical, &params) {
        let line = hit
            .to_response(req.id, req.scheme_name.clone())
            .to_json_line();
        sdem_obs::registry::record_elapsed(REQUEST_HISTOGRAM, clock);
        return line;
    }

    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let platform = req.platform()?;
        api::execute_in(req, &platform, ws)
    }));
    let line = match outcome {
        Ok(Ok(executed)) => {
            // Tear the schedule back into the arena: the response carries
            // only the summary, so the warm path stays allocation-free.
            let response = executed.response;
            ws.recycle_schedule(executed.solution.into_schedule());
            inner.cache.lock().unwrap().insert(
                canonical,
                params,
                CachedSolve::from_response(&response),
            );
            response.to_json_line()
        }
        Ok(Err(error)) => api::error_line(Some(req.id), &error),
        Err(payload) => {
            // The workspace may be half-mutated mid-unwind; rebuild it.
            *ws = Workspace::new();
            sdem_obs::registry::incr(Counter::SolverPanicsCaught);
            let detail = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            let error = ApiError::new(ErrorKind::SolverPanic, detail);
            api::error_line(Some(req.id), &error)
        }
    };
    sdem_obs::registry::record_elapsed(REQUEST_HISTOGRAM, clock);
    line
}

/// Runs a whole JSONL session: submits every line of `input`, drains, and
/// returns the totals. The convenience entry the CLI daemon and tests use.
pub fn run_session(
    cfg: ServiceConfig,
    input: impl std::io::BufRead,
    out: Box<dyn Write + Send>,
) -> std::io::Result<ServiceStats> {
    let service = Service::start(cfg, out);
    for line in input.lines() {
        service.submit(&line?);
    }
    Ok(service.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// A `Write` sink tests can read back after the service finishes.
    #[derive(Clone, Default)]
    pub struct SharedBuf(Arc<StdMutex<Vec<u8>>>);

    impl SharedBuf {
        pub fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn req(id: u64, tasks: &str) -> String {
        format!("{{\"v\":1,\"id\":{id},\"scheme\":\"auto\",\"tasks\":{tasks}}}")
    }

    #[test]
    fn responses_come_back_in_submission_order() {
        let buf = SharedBuf::default();
        let service = Service::start(
            ServiceConfig {
                workers: 4,
                ..Default::default()
            },
            Box::new(buf.clone()),
        );
        for id in 0..32 {
            // Alternate two shapes plus a malformed line every 8th.
            if id % 8 == 7 {
                service.submit("{\"id\":true}");
            } else if id % 2 == 0 {
                service.submit(&req(id, "[[0,0,40,8e6],[1,0,70,1.2e7]]"));
            } else {
                service.submit(&req(id, "[[0,0,50,4e6]]"));
            }
        }
        let stats = service.finish();
        assert_eq!(stats.submitted, 32);
        assert_eq!(stats.rejected, 4);
        let text = buf.contents();
        let ids: Vec<&str> = text
            .lines()
            .map(|l| {
                let start = l.find("\"id\":").unwrap() + 5;
                l[start..].split(',').next().unwrap()
            })
            .collect();
        // Every line present, in submission order (malformed → null id).
        assert_eq!(ids.len(), 32);
        for (i, id) in ids.iter().enumerate() {
            if i % 8 == 7 {
                assert_eq!(*id, "null", "line {i}");
            } else {
                assert_eq!(*id, i.to_string(), "line {i}");
            }
        }
    }

    #[test]
    fn output_is_byte_identical_across_worker_counts() {
        let run = |workers: usize| {
            let buf = SharedBuf::default();
            let service = Service::start(
                ServiceConfig {
                    workers,
                    ..Default::default()
                },
                Box::new(buf.clone()),
            );
            for id in 0..64 {
                let shape = id % 3;
                let tasks = match shape {
                    0 => "[[0,0,40,8e6],[1,0,70,1.2e7]]",
                    1 => "[[1,0,70,1.2e7],[0,0,40,8e6]]", // permutation of 0
                    _ => "[[0,0,50,4e6],[1,10,80,6e6],[2,10,90,2e6]]",
                };
                service.submit(&req(id, tasks));
            }
            service.finish();
            buf.contents()
        };
        let one = run(1);
        assert_eq!(one, run(4));
        assert_eq!(one, run(8));
    }

    #[test]
    fn zero_deadline_requests_expire_deterministically() {
        let buf = SharedBuf::default();
        let service = Service::start(ServiceConfig::default(), Box::new(buf.clone()));
        service.submit("{\"id\":5,\"deadline_ms\":0,\"tasks\":[[0,0,40,8e6]]}");
        let stats = service.finish();
        assert_eq!(stats.admitted, 1);
        let text = buf.contents();
        assert!(text.contains("\"kind\":\"deadline-expired\""), "{text}");
        assert!(text.contains("\"id\":5"), "{text}");
    }

    #[test]
    fn full_queue_sheds_with_overloaded() {
        // One worker, depth 1: stall the worker with a big exact-solver
        // request is overkill — instead submit faster than one worker can
        // drain by using a queue of depth 1 and many requests; at least
        // one shed is not guaranteed deterministically, so force it by
        // never starting workers… simplest honest route: depth 1 with 0
        // worker wakeups is impossible, so assert the response invariant
        // instead: every submitted line is answered exactly once.
        let buf = SharedBuf::default();
        let service = Service::start(
            ServiceConfig {
                workers: 1,
                queue_depth: 1,
                cache_capacity: 0,
            },
            Box::new(buf.clone()),
        );
        for id in 0..64 {
            service.submit(&req(id, "[[0,0,40,8e6],[1,0,70,1.2e7]]"));
        }
        let stats = service.finish();
        assert_eq!(stats.submitted, 64);
        assert_eq!(stats.admitted + stats.shed, 64);
        let text = buf.contents();
        assert_eq!(text.lines().count(), 64, "every request answered once");
        let sheds = text.matches("\"kind\":\"overloaded\"").count() as u64;
        assert_eq!(sheds, stats.shed);
    }

    #[test]
    fn cache_hits_reproduce_cold_bytes_and_count() {
        sdem_obs::registry::reset();
        let buf = SharedBuf::default();
        let service = Service::start(
            ServiceConfig {
                workers: 1,
                ..Default::default()
            },
            Box::new(buf.clone()),
        );
        let tasks = "[[0,0,40,8e6],[1,0,70,1.2e7]]";
        let permuted = "[[1,0,70,1.2e7],[0,0,40,8e6]]";
        service.submit(&req(1, tasks));
        service.submit(&req(2, tasks));
        service.submit(&req(3, permuted));
        let stats = service.finish();
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 2, "repeat and permutation both hit");
        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        // Identical modulo the echoed id.
        let strip = |l: &str| l.replacen(|c: char| c.is_ascii_digit(), "", 1);
        let norm: Vec<String> = lines
            .iter()
            .map(|l| {
                strip(
                    &l.replace("\"id\":1", "\"id\":N")
                        .replace("\"id\":2", "\"id\":N")
                        .replace("\"id\":3", "\"id\":N"),
                )
            })
            .collect();
        assert_eq!(norm[0], norm[1]);
        assert_eq!(norm[0], norm[2]);
    }

    #[test]
    fn session_runner_drains_cleanly_at_eof() {
        let input = format!(
            "{}\n{}\n\n{}\n",
            req(0, "[[0,0,40,8e6]]"),
            req(1, "[[0,0,40,8e6],[1,0,70,1.2e7]]"),
            req(2, "[[0,0,40,8e6]]"),
        );
        let buf = SharedBuf::default();
        let stats = run_session(
            ServiceConfig::default(),
            std::io::Cursor::new(input),
            Box::new(buf.clone()),
        )
        .unwrap();
        assert_eq!(stats.submitted, 3, "blank line ignored");
        assert_eq!(buf.contents().lines().count(), 3);
    }
}
