//! Load generator for `sdem serve`: replays a seeded stream of solve
//! requests against an in-process [`Service`] and records latency
//! percentiles, throughput and cache hit rate.
//!
//! The request mix models sustained planner traffic: `--shapes` distinct
//! task-set shapes are generated once from a SplitMix64 stream, and each
//! request picks a shape and a rotation of its task order — so the wire
//! bytes vary while the canonical task set repeats, exercising the
//! canonicalized cache exactly the way periodic workloads do.
//!
//! Two modes:
//!
//! * `--emit FILE` writes the raw JSONL request batch and exits (CI pipes
//!   the same batch through the daemon at several worker counts and
//!   byte-diffs the responses);
//! * otherwise each worker count in `--workers` runs the full batch
//!   in-process; results land in `--out` (default `BENCH_serve.json`).
//!   Response streams are FNV-hashed per run and the digests compared, so
//!   the benchmark doubles as a cross-worker-count byte-identity check.

use std::io::Write;
use std::time::Instant;

use sdem_prng::{Rng, SeedableRng, SplitMix64};
use sdem_serve::service::REQUEST_HISTOGRAM;
use sdem_serve::{Service, ServiceConfig};

struct Opts {
    requests: u64,
    shapes: usize,
    tasks: usize,
    workers: Vec<usize>,
    queue: usize,
    cache: usize,
    seed: u64,
    bounded: f64,
    out: String,
    emit: Option<String>,
    date: String,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            requests: 100_000,
            shapes: 64,
            tasks: 8,
            workers: vec![1, 4],
            queue: 65_536,
            cache: 4_096,
            seed: 42,
            bounded: 0.0,
            out: "BENCH_serve.json".to_string(),
            emit: None,
            date: "unknown".to_string(),
        }
    }
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts::default();
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--requests" => opts.requests = num(&value("--requests")?)?,
            "--shapes" => opts.shapes = num(&value("--shapes")?)? as usize,
            "--tasks" => opts.tasks = num(&value("--tasks")?)? as usize,
            "--queue" => opts.queue = num(&value("--queue")?)? as usize,
            "--cache" => opts.cache = num(&value("--cache")?)? as usize,
            "--seed" => opts.seed = num(&value("--seed")?)?,
            "--bounded" => opts.bounded = frac(&value("--bounded")?)?,
            "--out" => opts.out = value("--out")?,
            "--emit" => opts.emit = Some(value("--emit")?),
            "--date" => opts.date = value("--date")?,
            "--workers" => {
                opts.workers = value("--workers")?
                    .split(',')
                    .map(|w| num(w).map(|n| n as usize))
                    .collect::<Result<_, _>>()?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if opts.shapes == 0 || opts.tasks == 0 || opts.workers.is_empty() {
        return Err("--shapes, --tasks and --workers must be non-zero".into());
    }
    Ok(opts)
}

fn num(s: &str) -> Result<u64, String> {
    s.parse::<u64>()
        .map_err(|e| format!("bad number {s:?}: {e}"))
}

fn frac(s: &str) -> Result<f64, String> {
    let v = s
        .parse::<f64>()
        .map_err(|e| format!("bad fraction {s:?}: {e}"))?;
    if (0.0..=1.0).contains(&v) {
        Ok(v)
    } else {
        Err(format!("fraction {s:?} must be within 0..=1"))
    }
}

/// One generated task as wire fields.
#[derive(Clone)]
struct WireTask {
    id: usize,
    release_ms: f64,
    deadline_ms: f64,
    work_cycles: f64,
}

/// Generates `shapes` distinct feasible task-set shapes.
fn make_shapes(opts: &Opts, rng: &mut SplitMix64) -> Vec<Vec<WireTask>> {
    (0..opts.shapes)
        .map(|_| {
            let common_release = rng.gen_bool(0.5);
            (0..opts.tasks)
                .map(|id| {
                    let release_ms = if common_release {
                        0.0
                    } else {
                        rng.gen_range(0.0..10.0)
                    };
                    let deadline_ms = release_ms + rng.gen_range(20.0..80.0);
                    let work_cycles = rng.gen_range(1.0e6..8.0e6);
                    WireTask {
                        id,
                        release_ms,
                        deadline_ms,
                        work_cycles,
                    }
                })
                .collect()
        })
        .collect()
}

/// Generates `shapes` distinct Theorem-1 shapes for the bounded tiers:
/// one shared release and one shared deadline per shape, varied works.
fn make_bounded_shapes(opts: &Opts, rng: &mut SplitMix64) -> Vec<Vec<WireTask>> {
    (0..opts.shapes)
        .map(|_| {
            let deadline_ms = rng.gen_range(40.0..120.0);
            (0..opts.tasks)
                .map(|id| WireTask {
                    id,
                    release_ms: 0.0,
                    deadline_ms,
                    work_cycles: rng.gen_range(1.0e6..8.0e6),
                })
                .collect()
        })
        .collect()
}

/// Renders one request line: a seeded shape pick plus a rotation of its
/// task order, so permuted repeats hit the canonicalized cache.
fn request_line(id: u64, scheme: &str, shape: &[WireTask], rotate: usize) -> String {
    let mut line = format!("{{\"v\":1,\"id\":{id},\"scheme\":\"{scheme}\",\"tasks\":[");
    for i in 0..shape.len() {
        let t = &shape[(i + rotate) % shape.len()];
        if i > 0 {
            line.push(',');
        }
        line.push_str(&format!(
            "[{},{},{},{}]",
            t.id, t.release_ms, t.deadline_ms, t.work_cycles
        ));
    }
    line.push_str("]}");
    line
}

/// A `Write` sink that FNV-1a-hashes everything written through it.
struct HashSink {
    hash: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl Write for HashSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let mut h = self.hash.load(std::sync::atomic::Ordering::Relaxed);
        for &b in buf {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.hash.store(h, std::sync::atomic::Ordering::Relaxed);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

struct RunResult {
    workers: usize,
    wall_s: f64,
    req_per_s: f64,
    p50_ns: u64,
    p99_ns: u64,
    cache_hit_rate: f64,
    shed: u64,
    digest: u64,
}

fn run_once(opts: &Opts, workers: usize, lines: &[String]) -> RunResult {
    sdem_obs::registry::reset();
    sdem_obs::registry::set_enabled(true);
    let digest = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0xcbf2_9ce4_8422_2325));
    let service = Service::start(
        ServiceConfig {
            workers,
            queue_depth: opts.queue,
            cache_capacity: opts.cache,
            ..Default::default()
        },
        Box::new(HashSink {
            hash: std::sync::Arc::clone(&digest),
        }),
    );
    let start = Instant::now();
    for line in lines {
        service.submit(line);
    }
    let stats = service.finish();
    let wall_s = start.elapsed().as_secs_f64();
    sdem_obs::registry::set_enabled(false);

    let snapshot = sdem_obs::registry::snapshot();
    let (p50_ns, p99_ns) = snapshot
        .histograms
        .iter()
        .find(|(label, _)| *label == REQUEST_HISTOGRAM)
        .map(|(_, h)| (h.percentile(0.50), h.percentile(0.99)))
        .unwrap_or((0, 0));
    let lookups = stats.cache_hits + stats.cache_misses;
    RunResult {
        workers,
        wall_s,
        req_per_s: stats.submitted as f64 / wall_s,
        p50_ns,
        p99_ns,
        cache_hit_rate: if lookups == 0 {
            0.0
        } else {
            stats.cache_hits as f64 / lookups as f64
        },
        shed: stats.shed,
        digest: digest.load(std::sync::atomic::Ordering::Relaxed),
    }
}

fn main() {
    let opts = match parse_opts() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(2);
        }
    };

    let mut rng = SplitMix64::seed_from_u64(opts.seed);
    let shapes = make_shapes(&opts, &mut rng);
    let bounded_shapes = make_bounded_shapes(&opts, &mut rng);
    let lines: Vec<String> = (0..opts.requests)
        .map(|id| {
            let pick = (rng.next_u64() % opts.shapes as u64) as usize;
            let rotate = (rng.next_u64() % opts.tasks as u64) as usize;
            // A seeded slice of the stream routes through the bounded
            // tiers (Theorem-1 shapes, size-routed by bounded-auto).
            if opts.bounded > 0.0 && rng.gen_bool(opts.bounded) {
                request_line(id, "bounded-auto", &bounded_shapes[pick], rotate)
            } else {
                request_line(id, "auto", &shapes[pick], rotate)
            }
        })
        .collect();

    if let Some(path) = &opts.emit {
        let mut body = lines.join("\n");
        body.push('\n');
        std::fs::write(path, body).expect("write batch");
        eprintln!("loadgen: wrote {} requests to {path}", lines.len());
        return;
    }

    let results: Vec<RunResult> = opts
        .workers
        .iter()
        .map(|&w| {
            let r = run_once(&opts, w, &lines);
            eprintln!(
                "loadgen: workers={} wall={:.3}s req/s={:.0} p50={}ns p99={}ns hit-rate={:.4} shed={}",
                r.workers, r.wall_s, r.req_per_s, r.p50_ns, r.p99_ns, r.cache_hit_rate, r.shed
            );
            r
        })
        .collect();
    let identical = results.windows(2).all(|p| p[0].digest == p[1].digest);

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"benchmark\": \"sdem-serve loadgen ({} requests, {} shapes x {} tasks, seeded shape-repetition mix, {:.0}% bounded-auto)\",\n",
        opts.requests,
        opts.shapes,
        opts.tasks,
        opts.bounded * 100.0
    ));
    out.push_str(&format!(
        "  \"command\": \"cargo run -p sdem-serve --release --bin loadgen -- --requests {} --shapes {} --tasks {} --workers {} --seed {} --bounded {}\",\n",
        opts.requests,
        opts.shapes,
        opts.tasks,
        opts.workers
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(","),
        opts.seed,
        opts.bounded
    ));
    out.push_str(&format!("  \"date\": \"{}\",\n", opts.date));
    out.push_str("  \"host\": {\n");
    out.push_str("    \"os\": \"Linux 6.18.5\",\n");
    out.push_str(&format!(
        "    \"hardware_threads\": {},\n",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    ));
    out.push_str("    \"note\": \"latency percentiles are sdem-obs log2-bucket upper bounds in nanoseconds, measured per request from dequeue (cache lookup + solve + response render). Response streams are FNV-hashed per worker count and compared for byte-identity.\"\n");
    out.push_str("  },\n");
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{ \"workers\": {}, \"requests\": {}, \"wall_s\": {:.3}, \"req_per_s\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {}, \"cache_hit_rate\": {:.4}, \"shed\": {} }}{sep}\n",
            r.workers, opts.requests, r.wall_s, r.req_per_s, r.p50_ns, r.p99_ns, r.cache_hit_rate, r.shed
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"output_identical_across_worker_counts\": {identical}\n"
    ));
    out.push_str("}\n");

    std::fs::write(&opts.out, &out).expect("write results");
    eprintln!("loadgen: wrote {}", opts.out);
    if !identical {
        eprintln!("loadgen: response digests differ across worker counts");
        std::process::exit(1);
    }
}
