//! Durable write-ahead response journal for replay runs.
//!
//! The journal makes `sdem replay` crash-recoverable: every response line
//! is appended (and flushed) *before* it is released to stdout, so after
//! a hard kill the journal holds a prefix of the output — possibly with a
//! torn final record. A restart with `--resume` loads the journal, skips
//! every seq it already holds (emitting the stored bytes verbatim), and
//! re-runs only the remainder. Because the stored lines are the exact
//! bytes the emitter would have produced, the resumed run's output is
//! byte-identical to an uninterrupted run at any worker count.
//!
//! File format (one JSON object per line, same torn-tail discipline as
//! `sdem-exec`'s sweep checkpoint):
//!
//! ```text
//! {"sdem_replay":1,"trace":"seed=0x7ace,…","chaos":"","events":N}
//! {"seq":0,"line":"{\"v\":1,\"id\":0,…}"}
//! {"seq":1,"line":"…"}
//! ```
//!
//! The header pins the run's identity — canonical trace spec, canonical
//! chaos spec and event count, all worker-count-independent — and resume
//! refuses a journal whose header disagrees with the requested replay.
//! Lines that fail to parse (a torn tail from `kill -9` mid-write) are
//! skipped; the affected seq simply re-runs.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use sdem_obs::json::{self, Value};
use sdem_types::ErrorKind;

use crate::api::ApiError;

/// Magic first-line key identifying a replay journal file.
const HEADER_KEY: &str = "sdem_replay";
/// Journal format version this build reads and writes.
const FORMAT_VERSION: u64 = 1;

/// The run identity a journal is bound to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalHeader {
    /// Canonical trace spec string ([`TraceSpec`](sdem_workload::trace::TraceSpec) `Display`).
    pub trace: String,
    /// Canonical chaos spec string; empty when the run is chaos-free.
    pub chaos: String,
    /// Number of arrival events the replay generates.
    pub events: u64,
}

impl JournalHeader {
    fn to_line(&self) -> String {
        format!(
            "{{\"{HEADER_KEY}\":{FORMAT_VERSION},\"trace\":{},\"chaos\":{},\"events\":{}}}",
            json::quote(&self.trace),
            json::quote(&self.chaos),
            self.events
        )
    }

    fn from_line(line: &str) -> Option<Self> {
        let doc = json::parse(line).ok()?;
        if doc.get(HEADER_KEY).and_then(Value::as_u64)? != FORMAT_VERSION {
            return None;
        }
        Some(Self {
            trace: doc.get("trace").and_then(Value::as_str)?.to_string(),
            chaos: doc.get("chaos").and_then(Value::as_str)?.to_string(),
            events: doc.get("events").and_then(Value::as_u64)?,
        })
    }
}

fn entry_from_line(line: &str) -> Option<(u64, String)> {
    let doc = json::parse(line).ok()?;
    let seq = doc.get("seq").and_then(Value::as_u64)?;
    let stored = doc.get("line").and_then(Value::as_str)?.to_string();
    Some((seq, stored))
}

/// Incremental write-ahead journal of emitted response lines.
///
/// Create a fresh journal with [`ReplayJournal::create`] or load an
/// interrupted run's with [`ReplayJournal::resume`]; hand it to
/// [`Service::start_with_journal`](crate::Service::start_with_journal) so
/// every emitted line is journaled before it reaches the sink.
#[derive(Debug)]
pub struct ReplayJournal {
    path: PathBuf,
    header: JournalHeader,
    entries: BTreeMap<u64, String>,
    writer: Mutex<BufWriter<File>>,
    io_error: Mutex<Option<String>>,
}

impl ReplayJournal {
    /// Creates a fresh journal at `path` (truncating any previous file)
    /// and writes the header.
    ///
    /// # Errors
    ///
    /// `checkpoint-error` if the file cannot be created or the header
    /// cannot be written.
    pub fn create(path: impl Into<PathBuf>, header: JournalHeader) -> Result<Self, ApiError> {
        let path = path.into();
        let err = |detail: String| {
            ApiError::new(
                ErrorKind::CheckpointError,
                format!("journal {}: {detail}", path.display()),
            )
        };
        let file = File::create(&path).map_err(|e| err(format!("cannot create: {e}")))?;
        let mut writer = BufWriter::new(file);
        writeln!(writer, "{}", header.to_line())
            .and_then(|()| writer.flush())
            .map_err(|e| err(format!("cannot write header: {e}")))?;
        Ok(Self {
            path,
            header,
            entries: BTreeMap::new(),
            writer: Mutex::new(writer),
            io_error: Mutex::new(None),
        })
    }

    /// Loads an interrupted run's journal and reopens it for appending.
    ///
    /// The stored header must equal `expected` — resuming under a
    /// different trace, chaos plan or event count would stitch two
    /// unrelated runs together. Unparsable entry lines (torn tail) are
    /// skipped; their seqs re-run.
    ///
    /// # Errors
    ///
    /// `checkpoint-error` for unreadable files, missing headers and
    /// header mismatches.
    pub fn resume(path: impl Into<PathBuf>, expected: &JournalHeader) -> Result<Self, ApiError> {
        let path = path.into();
        let err = |detail: String| {
            ApiError::new(
                ErrorKind::CheckpointError,
                format!("journal {}: {detail}", path.display()),
            )
        };
        let file = File::open(&path).map_err(|e| err(format!("cannot open: {e}")))?;
        let mut lines = BufReader::new(file).lines();
        let first = match lines.next() {
            Some(Ok(line)) => line,
            Some(Err(e)) => return Err(err(format!("cannot read: {e}"))),
            None => return Err(err("file is empty".into())),
        };
        let header = JournalHeader::from_line(&first)
            .ok_or_else(|| err("missing or unreadable replay header".into()))?;
        if header != *expected {
            return Err(err(format!(
                "journal recorded trace `{}`, chaos `{}`, {} events; this replay has trace \
                 `{}`, chaos `{}`, {} events",
                header.trace,
                header.chaos,
                header.events,
                expected.trace,
                expected.chaos,
                expected.events
            )));
        }
        let mut entries = BTreeMap::new();
        for line in lines {
            let line = line.map_err(|e| err(format!("cannot read: {e}")))?;
            if let Some((seq, stored)) = entry_from_line(&line) {
                entries.insert(seq, stored);
            }
        }
        let file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| err(format!("cannot reopen for append: {e}")))?;
        Ok(Self {
            path,
            header,
            entries,
            writer: Mutex::new(BufWriter::new(file)),
            io_error: Mutex::new(None),
        })
    }

    /// Path of the journal file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The run identity the journal is bound to.
    pub fn header(&self) -> &JournalHeader {
        &self.header
    }

    /// Number of completed seqs loaded on resume.
    pub fn preloaded(&self) -> usize {
        self.entries.len()
    }

    /// Drains the loaded entries (seq → exact response line) so the
    /// replay driver can emit them verbatim instead of re-solving.
    pub fn take_entries(&mut self) -> BTreeMap<u64, String> {
        std::mem::take(&mut self.entries)
    }

    /// Journals one emitted line (flushed immediately — write-ahead with
    /// respect to the response sink). IO errors are latched, not raised:
    /// the service keeps answering and [`Self::take_error`] surfaces the
    /// failure at the end of the run.
    pub fn append(&self, seq: u64, line: &str) {
        let record = format!("{{\"seq\":{seq},\"line\":{}}}", json::quote(line));
        let mut w = self
            .writer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let outcome = writeln!(w, "{record}").and_then(|()| w.flush());
        if let Err(e) = outcome {
            let mut latch = self
                .io_error
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            latch.get_or_insert_with(|| e.to_string());
        }
    }

    /// First journaling IO error hit during the run, if any.
    pub fn take_error(&self) -> Option<ApiError> {
        let mut latch = self
            .io_error
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        latch.take().map(|detail| {
            ApiError::new(
                ErrorKind::CheckpointError,
                format!("journal {}: write failed: {detail}", self.path.display()),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> JournalHeader {
        JournalHeader {
            trace: "seed=0x7ace,sets=4,tasks=6,poisson=0.25,shapes=32".into(),
            chaos: String::new(),
            events: 100,
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sdem-journal-{name}-{}", std::process::id()))
    }

    #[test]
    fn header_round_trips() {
        let h = header();
        assert_eq!(JournalHeader::from_line(&h.to_line()), Some(h));
        assert_eq!(JournalHeader::from_line("{\"seq\":0,\"line\":\"x\"}"), None);
        assert_eq!(JournalHeader::from_line("{\"sdem_replay\":9}"), None);
    }

    #[test]
    fn entries_round_trip_and_torn_lines_are_skipped() {
        let line = "{\"v\":1,\"id\":0,\"ok\":true,\"energy_bits\":\"0x3ff0000000000000\"}";
        let record = format!("{{\"seq\":7,\"line\":{}}}", json::quote(line));
        assert_eq!(entry_from_line(&record), Some((7, line.to_string())));
        // Torn prefixes of the record never parse.
        for cut in 0..record.len() {
            if let Some((seq, stored)) = entry_from_line(&record[..cut]) {
                panic!("torn prefix {cut} parsed as ({seq}, {stored})");
            }
        }
    }

    #[test]
    fn create_append_resume_round_trips_through_the_file() {
        let path = temp_path("roundtrip");
        let journal = ReplayJournal::create(&path, header()).unwrap();
        journal.append(0, "{\"id\":0}");
        journal.append(1, "{\"id\":1,\"text\":\"with \\\"quotes\\\"\"}");
        assert!(journal.take_error().is_none());
        drop(journal);

        let mut resumed = ReplayJournal::resume(&path, &header()).unwrap();
        assert_eq!(resumed.preloaded(), 2);
        let entries = resumed.take_entries();
        assert_eq!(entries.get(&0).map(String::as_str), Some("{\"id\":0}"));
        assert_eq!(
            entries.get(&1).map(String::as_str),
            Some("{\"id\":1,\"text\":\"with \\\"quotes\\\"\"}")
        );
        // Appends after resume extend the same file.
        resumed.append(2, "{\"id\":2}");
        drop(resumed);
        let mut again = ReplayJournal::resume(&path, &header()).unwrap();
        assert_eq!(again.preloaded(), 3);
        assert!(again.take_entries().contains_key(&2));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_mismatched_headers_and_garbage() {
        let path = temp_path("mismatch");
        drop(ReplayJournal::create(&path, header()).unwrap());
        let mut other = header();
        other.events = 999;
        let err = ReplayJournal::resume(&path, &other).unwrap_err();
        assert_eq!(err.kind, ErrorKind::CheckpointError);

        std::fs::write(&path, "not a journal\n").unwrap();
        let err = ReplayJournal::resume(&path, &header()).unwrap_err();
        assert_eq!(err.kind, ErrorKind::CheckpointError);

        std::fs::write(&path, "").unwrap();
        let err = ReplayJournal::resume(&path, &header()).unwrap_err();
        assert_eq!(err.kind, ErrorKind::CheckpointError);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_a_typed_error() {
        let err = ReplayJournal::resume(temp_path("never-created"), &header()).unwrap_err();
        assert_eq!(err.kind, ErrorKind::CheckpointError);
    }
}
