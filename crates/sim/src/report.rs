//! The itemized energy bill of a simulated schedule.

use core::fmt;

use sdem_types::{Joules, Time};

/// Where the energy of one schedule went.
///
/// All fields are public data (C-STRUCT-PRIVATE exception: this is a passive
/// result record); [`EnergyReport::total`] and the grouping helpers derive
/// the aggregates the paper plots.
///
/// # Examples
///
/// ```
/// use sdem_sim::EnergyReport;
/// use sdem_types::Joules;
///
/// let r = EnergyReport::default();
/// assert_eq!(r.total(), Joules::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyReport {
    /// Dynamic (speed-dependent) energy of all cores: `Σ β·s^λ·t`.
    pub core_dynamic: Joules,
    /// Static energy of all cores while awake (busy or idling awake).
    pub core_static: Joules,
    /// Core sleep/wake round-trip overheads.
    pub core_transition: Joules,
    /// Memory leakage while awake (busy or idling awake).
    pub memory_static: Joules,
    /// Memory access (dynamic) energy: executed cycles × per-cycle cost.
    /// Zero under the paper's model; a schedule-independent constant
    /// otherwise.
    pub memory_dynamic: Joules,
    /// Memory sleep/wake round-trip overheads.
    pub memory_transition: Joules,
    /// Total time the memory was awake.
    pub memory_awake_time: Time,
    /// Total time the memory slept (inside its on-span).
    pub memory_sleep_time: Time,
    /// Number of memory sleep episodes.
    pub memory_sleeps: usize,
    /// Number of core sleep episodes summed over cores.
    pub core_sleeps: usize,
}

impl EnergyReport {
    /// Total system energy: every field summed.
    pub fn total(&self) -> Joules {
        self.core_total() + self.memory_total()
    }

    /// Processor share: dynamic + static + core transitions.
    pub fn core_total(&self) -> Joules {
        self.core_dynamic + self.core_static + self.core_transition
    }

    /// Memory share: leakage + access energy + memory transitions. The
    /// leakage part is the quantity Fig. 6a of the paper compares.
    pub fn memory_total(&self) -> Joules {
        self.memory_static + self.memory_dynamic + self.memory_transition
    }

    /// Component-wise sum of two reports (e.g. across independent trials).
    #[must_use]
    pub fn combined(&self, other: &Self) -> Self {
        Self {
            core_dynamic: self.core_dynamic + other.core_dynamic,
            core_static: self.core_static + other.core_static,
            core_transition: self.core_transition + other.core_transition,
            memory_static: self.memory_static + other.memory_static,
            memory_dynamic: self.memory_dynamic + other.memory_dynamic,
            memory_transition: self.memory_transition + other.memory_transition,
            memory_awake_time: self.memory_awake_time + other.memory_awake_time,
            memory_sleep_time: self.memory_sleep_time + other.memory_sleep_time,
            memory_sleeps: self.memory_sleeps + other.memory_sleeps,
            core_sleeps: self.core_sleeps + other.core_sleeps,
        }
    }
}

impl fmt::Display for EnergyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total {:.6} J (cores: {:.6} J dyn + {:.6} J static + {:.6} J trans; \
             memory: {:.6} J static + {:.6} J access + {:.6} J trans; memory awake {:.3} ms, \
             asleep {:.3} ms over {} episodes)",
            self.total().value(),
            self.core_dynamic.value(),
            self.core_static.value(),
            self.core_transition.value(),
            self.memory_static.value(),
            self.memory_dynamic.value(),
            self.memory_transition.value(),
            self.memory_awake_time.as_millis(),
            self.memory_sleep_time.as_millis(),
            self.memory_sleeps,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EnergyReport {
        EnergyReport {
            core_dynamic: Joules::new(1.0),
            core_static: Joules::new(2.0),
            core_transition: Joules::new(0.5),
            memory_static: Joules::new(4.0),
            memory_dynamic: Joules::new(0.25),
            memory_transition: Joules::new(0.25),
            memory_awake_time: Time::from_millis(100.0),
            memory_sleep_time: Time::from_millis(20.0),
            memory_sleeps: 2,
            core_sleeps: 3,
        }
    }

    #[test]
    fn totals_add_up() {
        let r = sample();
        assert_eq!(r.core_total(), Joules::new(3.5));
        assert_eq!(r.memory_total(), Joules::new(4.5));
        assert_eq!(r.total(), Joules::new(8.0));
    }

    #[test]
    fn combined_sums_fields() {
        let r = sample().combined(&sample());
        assert_eq!(r.total(), Joules::new(16.0));
        assert_eq!(r.memory_sleeps, 4);
        assert_eq!(r.core_sleeps, 6);
        assert!((r.memory_awake_time.as_millis() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_components() {
        let s = sample().to_string();
        assert!(s.contains("total"));
        assert!(s.contains("memory"));
        assert!(s.contains("episodes"));
    }
}
