//! Event-driven reference simulator.
//!
//! Replays a schedule chronologically: every segment boundary is an event,
//! and between consecutive events every core and the memory is in a definite
//! state (`Busy`, `IdleAwake`, `Asleep`, or `Off`). Energy is integrated
//! slice by slice from the instantaneous power of each component, and sleep
//! round-trip overheads are charged per sleep episode.
//!
//! This path exists as an independent cross-check of the closed-form meter
//! in [`crate::meter`]: the two must agree to floating-point tolerance on
//! every schedule (asserted by property tests).

use sdem_power::Platform;
use sdem_types::{IntervalSet, Schedule, ScheduleError, Speed, TaskSet, Time};

use crate::timeline::SleepTimeline;
use crate::{EnergyReport, SimOptions};

/// Component state during one time slice.
#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    /// Executing at the given speed (cores) or serving a busy core (memory).
    Busy(Speed),
    /// Powered and idle: static power accrues.
    IdleAwake,
    /// Sleeping inside the on-span: no power (round trip charged per episode).
    Asleep,
    /// Outside the component's on-span: off, free.
    Off,
}

/// One core's timeline: speed-annotated busy runs plus the shared
/// [`SleepTimeline`] gap decisions.
struct ComponentTimeline {
    /// Sorted disjoint `(start, end, speed)` busy runs.
    busy: Vec<(Time, Time, Speed)>,
    /// Shared busy/gap kernel with per-gap sleep decisions.
    sleep: SleepTimeline,
}

impl ComponentTimeline {
    fn new(
        mut busy: Vec<(Time, Time, Speed)>,
        policy: crate::SleepPolicy,
        xi: Time,
        horizon: Option<(Time, Time)>,
    ) -> Self {
        busy.sort_by(|a, b| a.0.total_cmp(&b.0));
        let spans = IntervalSet::from_spans(busy.iter().map(|&(a, b, _)| (a, b)).collect());
        let sleep = SleepTimeline::new(spans, policy, xi, horizon);
        Self { busy, sleep }
    }

    fn state_at(&self, t: Time) -> State {
        for &(a, b, s) in &self.busy {
            if t >= a && t < b {
                return State::Busy(s);
            }
        }
        if self.sleep.asleep_at(t) {
            State::Asleep
        } else if self.sleep.awake_idle_at(t) {
            State::IdleAwake
        } else {
            State::Off
        }
    }

    fn sleep_episodes(&self) -> usize {
        self.sleep.sleep_episodes()
    }
}

/// Event-driven counterpart of [`crate::simulate_with_options`].
///
/// Produces the same [`EnergyReport`] as the interval meter (up to
/// floating-point noise), computed by explicit chronological state sweeping.
///
/// # Errors
///
/// Returns [`ScheduleError`] when `options.validate` is set and the schedule
/// violates timing constraints or the platform's maximum speed.
///
/// # Examples
///
/// ```
/// use sdem_sim::{simulate_event_driven, SimOptions};
/// use sdem_power::Platform;
/// use sdem_types::{Task, TaskSet, Schedule, Placement, TaskId, CoreId, Time, Speed, Cycles};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let platform = Platform::paper_defaults();
/// let tasks = TaskSet::new(vec![
///     Task::new(0, Time::ZERO, Time::from_millis(20.0), Cycles::new(8.0e6)),
/// ])?;
/// let schedule = Schedule::new(vec![Placement::single(
///     TaskId(0), CoreId(0), Time::ZERO, Time::from_millis(10.0), Speed::from_mhz(800.0),
/// )]);
/// let report = simulate_event_driven(&schedule, &tasks, &platform, SimOptions::default())?;
/// assert!(report.total().value() > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn simulate_event_driven(
    schedule: &Schedule,
    tasks: &TaskSet,
    platform: &Platform,
    options: SimOptions,
) -> Result<EnergyReport, ScheduleError> {
    if options.validate {
        schedule.validate_with_limits(tasks, None, Some(platform.core().max_speed()))?;
    }

    let core_model = platform.core();
    let memory = platform.memory();
    let mut report = EnergyReport::default();

    // Per-core timelines.
    let core_timelines: Vec<ComponentTimeline> = schedule
        .cores()
        .into_iter()
        .map(|core| {
            let busy = schedule
                .placements()
                .iter()
                .filter(|p| p.core() == core)
                .flat_map(|p| p.segments().iter().map(|s| (s.start(), s.end(), s.speed())))
                .collect();
            ComponentTimeline::new(
                busy,
                options.core_policy,
                core_model.break_even(),
                options.horizon,
            )
        })
        .collect();

    // Memory timeline from the merged busy intervals (no speed needed).
    let memory_timeline = SleepTimeline::new(
        schedule.memory_busy_intervals(),
        options.memory_policy,
        memory.break_even(),
        options.horizon,
    );

    // Event instants: every busy boundary of every component.
    let mut events: Vec<Time> = core_timelines
        .iter()
        .flat_map(|tl| tl.busy.iter().flat_map(|&(a, b, _)| [a, b]))
        .chain(memory_timeline.busy().iter().flat_map(|&(a, b)| [a, b]))
        .collect();
    if let Some((t0, t1)) = options.horizon {
        events.push(t0);
        events.push(t1);
    }
    events.sort_by(Time::total_cmp);
    events.dedup_by(|a, b| a == b);

    // Integrate power over each slice.
    for pair in events.windows(2) {
        let (t0, t1) = (pair[0], pair[1]);
        let dt = t1 - t0;
        if dt.value() <= 0.0 {
            continue;
        }
        let mid = t0 + dt * 0.5;
        for tl in &core_timelines {
            match tl.state_at(mid) {
                State::Busy(speed) => {
                    report.core_dynamic += core_model.dynamic_power(speed) * dt;
                    report.core_static += core_model.alpha() * dt;
                    report.memory_dynamic += sdem_types::Joules::new(
                        memory.access_energy_per_cycle() * (speed * dt).value(),
                    );
                }
                State::IdleAwake => report.core_static += core_model.alpha() * dt,
                State::Asleep | State::Off => {}
            }
        }
        if memory_timeline.is_busy_at(mid) || memory_timeline.awake_idle_at(mid) {
            report.memory_static += memory.awake_energy(dt);
            report.memory_awake_time += dt;
        } else if memory_timeline.asleep_at(mid) {
            report.memory_sleep_time += dt;
        }
    }

    // Sleep round trips, charged per episode.
    for tl in &core_timelines {
        let n = tl.sleep_episodes();
        report.core_sleeps += n;
        report.core_transition += core_model.transition_energy() * n as f64;
    }
    let n = memory_timeline.sleep_episodes();
    report.memory_sleeps = n;
    report.memory_transition += memory.transition_energy() * n as f64;

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate_with_options, SleepPolicy};
    use sdem_power::{CorePower, MemoryPower};
    use sdem_types::{CoreId, Cycles, Placement, Task, TaskId, Watts};

    fn sec(v: f64) -> Time {
        Time::from_secs(v)
    }

    fn unit_platform(xi: f64, xi_m: f64) -> Platform {
        Platform::new(
            CorePower::simple(1.0, 1.0, 3.0).with_break_even(sec(xi)),
            MemoryPower::new(Watts::new(2.0)).with_break_even(sec(xi_m)),
        )
    }

    fn staggered_case() -> (TaskSet, Schedule) {
        let tasks = TaskSet::new(vec![
            Task::new(0, sec(0.0), sec(3.0), Cycles::new(2.0)),
            Task::new(1, sec(0.0), sec(12.0), Cycles::new(2.0)),
            Task::new(2, sec(0.0), sec(12.0), Cycles::new(3.0)),
        ])
        .unwrap();
        let sched = Schedule::new(vec![
            Placement::single(
                TaskId(0),
                CoreId(0),
                sec(0.0),
                sec(2.0),
                Speed::from_hz(1.0),
            ),
            Placement::single(
                TaskId(1),
                CoreId(0),
                sec(7.0),
                sec(9.0),
                Speed::from_hz(1.0),
            ),
            Placement::single(
                TaskId(2),
                CoreId(1),
                sec(1.0),
                sec(4.0),
                Speed::from_hz(1.0),
            ),
        ]);
        (tasks, sched)
    }

    #[test]
    fn agrees_with_interval_meter_on_all_policies() {
        let (tasks, sched) = staggered_case();
        for (xi, xi_m) in [(0.0, 0.0), (1.0, 2.0), (10.0, 10.0)] {
            let p = unit_platform(xi, xi_m);
            for policy in [
                SleepPolicy::NeverSleep,
                SleepPolicy::AlwaysSleep,
                SleepPolicy::WhenProfitable,
            ] {
                let opts = SimOptions::uniform(policy);
                let a = simulate_with_options(&sched, &tasks, &p, opts).unwrap();
                let b = simulate_event_driven(&sched, &tasks, &p, opts).unwrap();
                assert!(
                    (a.total().value() - b.total().value()).abs() < 1e-9,
                    "policy {policy:?} ξ={xi} ξm={xi_m}: meter {} vs engine {}",
                    a.total(),
                    b.total()
                );
                assert_eq!(a.memory_sleeps, b.memory_sleeps);
                assert_eq!(a.core_sleeps, b.core_sleeps);
                assert!((a.memory_sleep_time - b.memory_sleep_time).abs().value() < 1e-9);
            }
        }
    }

    #[test]
    fn memory_union_counted_once_in_engine() {
        let (tasks, sched) = staggered_case();
        let p = unit_platform(0.0, 0.0);
        let r = simulate_event_driven(&sched, &tasks, &p, SimOptions::default()).unwrap();
        // Memory busy union: [0,4] ∪ [7,9] = 6 s ⇒ 12 J. Gap slept free.
        assert!((r.memory_static.value() - 12.0).abs() < 1e-9);
        assert_eq!(r.memory_sleeps, 1);
        assert!((r.memory_sleep_time.as_secs() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn state_machine_classification() {
        let tl = ComponentTimeline::new(
            vec![
                (sec(0.0), sec(2.0), Speed::from_hz(1.0)),
                (sec(5.0), sec(6.0), Speed::from_hz(2.0)),
                (sec(6.5), sec(7.0), Speed::from_hz(3.0)),
            ],
            SleepPolicy::WhenProfitable,
            sec(1.0),
            None,
        );
        assert_eq!(tl.state_at(sec(1.0)), State::Busy(Speed::from_hz(1.0)));
        assert_eq!(tl.state_at(sec(3.0)), State::Asleep); // 3 s gap ≥ ξ
        assert_eq!(tl.state_at(sec(6.2)), State::IdleAwake); // 0.5 s gap < ξ
        assert_eq!(tl.state_at(sec(10.0)), State::Off);
        assert_eq!(tl.state_at(sec(-1.0)), State::Off);
        assert_eq!(tl.sleep_episodes(), 1);
    }

    #[test]
    fn validation_respected() {
        let (tasks, _) = staggered_case();
        let p = unit_platform(0.0, 0.0);
        let incomplete = Schedule::new(vec![Placement::single(
            TaskId(0),
            CoreId(0),
            sec(0.0),
            sec(2.0),
            Speed::from_hz(1.0),
        )]);
        assert!(simulate_event_driven(&incomplete, &tasks, &p, SimOptions::default()).is_err());
        let opts = SimOptions {
            validate: false,
            ..SimOptions::default()
        };
        assert!(simulate_event_driven(&incomplete, &tasks, &p, opts).is_ok());
    }
}
