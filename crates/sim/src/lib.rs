//! Multi-core + shared-memory schedule simulator and energy meter.
//!
//! Every scheduler in the `sdem` workspace emits an explicit
//! [`sdem_types::Schedule`]; this crate replays such schedules against a
//! [`sdem_power::Platform`] and reports where the energy went.
//!
//! Two independent implementations are provided and cross-checked in tests:
//!
//! * [`simulate`] — an interval-sweep meter that merges busy intervals and
//!   prices each busy span and idle gap directly;
//! * [`simulate_event_driven`] — a chronological event engine with explicit
//!   per-core and memory state machines (`Off → Busy ↔ Idle ↔ Asleep`),
//!   which is the authoritative reference for transition accounting.
//!
//! # Energy accounting conventions
//!
//! * A core is *on* from its first to its last execution instant; outside
//!   that span it is off and free. Within the span, idle gaps either stay
//!   awake (paying `α·g`) or sleep (paying the round-trip `α·ξ`), according
//!   to the [`SleepPolicy`].
//! * The memory is on from the first instant *any* core is busy to the last;
//!   common-idle gaps within that span follow the memory [`SleepPolicy`]
//!   (`α_m·g` awake vs `α_m·ξ_m` round trip).
//! * With this *gap convention*, a schedule with `k` memory busy blocks pays
//!   `k − 1` memory transitions. The paper's §7 DP instead charges one
//!   transition per block (`k` total); the two differ by the constant
//!   `α_m·ξ_m`, so they rank schedules identically. Comparisons in
//!   `EXPERIMENTS.md` use the gap convention throughout.
//!
//! # Examples
//!
//! ```
//! use sdem_sim::{simulate, SleepPolicy};
//! use sdem_power::Platform;
//! use sdem_types::{Task, TaskSet, Schedule, Placement, TaskId, CoreId, Time, Speed, Cycles};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let platform = Platform::paper_defaults();
//! let tasks = TaskSet::new(vec![
//!     Task::new(0, Time::ZERO, Time::from_millis(50.0), Cycles::new(8.0e6)),
//! ])?;
//! let schedule = Schedule::new(vec![Placement::single(
//!     TaskId(0), CoreId(0), Time::ZERO, Time::from_millis(10.0), Speed::from_mhz(800.0),
//! )]);
//! let report = simulate(&schedule, &tasks, &platform, SleepPolicy::WhenProfitable)?;
//! assert!(report.memory_static.value() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod meter;
mod options;
mod power_trace;
mod report;
mod summary;
mod timeline;
mod trace;

pub use engine::simulate_event_driven;
pub use meter::{simulate, simulate_with_options, simulate_with_options_in};
pub use options::{SimOptions, SleepPolicy};
pub use power_trace::{power_trace, power_trace_in, trace_to_csv, PowerSample};
pub use report::EnergyReport;
pub use summary::{schedule_stats, ScheduleStats};
pub use trace::render_gantt;
