//! Timing summaries of schedules: busy fractions, speeds, concurrency.

use sdem_types::{Schedule, Speed, Time};

/// Timing statistics of one schedule (no energy — that is
/// [`crate::EnergyReport`]'s job).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleStats {
    /// First execution instant.
    pub start: Time,
    /// Last execution instant.
    pub end: Time,
    /// Number of distinct cores used.
    pub cores_used: usize,
    /// Total single-core busy time summed over cores.
    pub total_core_busy: Time,
    /// Time during which at least one core is busy (memory busy time).
    pub memory_busy: Time,
    /// `total_core_busy / (cores_used × span)` — average per-core load.
    pub core_utilization: f64,
    /// `memory_busy / span` — fraction of the span the memory must serve.
    pub memory_utilization: f64,
    /// Work-weighted average execution speed.
    pub mean_speed: Speed,
    /// Fastest commanded speed.
    pub peak_speed: Speed,
}

/// Computes [`ScheduleStats`] for a non-empty schedule, or `None` when no
/// segment executes.
///
/// # Examples
///
/// ```
/// use sdem_sim::schedule_stats;
/// use sdem_types::{Schedule, Placement, TaskId, CoreId, Time, Speed};
///
/// let sched = Schedule::new(vec![
///     Placement::single(TaskId(0), CoreId(0), Time::ZERO, Time::from_millis(10.0),
///                       Speed::from_mhz(800.0)),
///     Placement::single(TaskId(1), CoreId(1), Time::ZERO, Time::from_millis(20.0),
///                       Speed::from_mhz(1600.0)),
/// ]);
/// let stats = schedule_stats(&sched).unwrap();
/// assert_eq!(stats.cores_used, 2);
/// assert!((stats.memory_utilization - 1.0).abs() < 1e-9);
/// assert_eq!(stats.peak_speed, Speed::from_mhz(1600.0));
/// ```
pub fn schedule_stats(schedule: &Schedule) -> Option<ScheduleStats> {
    let (start, end) = schedule.span()?;
    let span = end - start;
    if span.value() <= 0.0 {
        return None;
    }
    let cores_used = schedule.cores_used();
    let total_core_busy: Time = schedule.placements().iter().map(|p| p.busy_time()).sum();
    let memory_busy = schedule.memory_busy_time();

    let mut work = 0.0f64;
    let mut busy_secs = 0.0f64;
    let mut peak = Speed::ZERO;
    for seg in schedule.placements().iter().flat_map(|p| p.segments()) {
        work += seg.work().value();
        busy_secs += seg.length().as_secs();
        peak = peak.max(seg.speed());
    }
    let mean_speed = if busy_secs > 0.0 {
        Speed::from_hz(work / busy_secs)
    } else {
        Speed::ZERO
    };

    Some(ScheduleStats {
        start,
        end,
        cores_used,
        total_core_busy,
        memory_busy,
        core_utilization: total_core_busy.as_secs() / (cores_used as f64 * span.as_secs()),
        memory_utilization: memory_busy.as_secs() / span.as_secs(),
        mean_speed,
        peak_speed: peak,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdem_types::{CoreId, Placement, TaskId};

    fn sec(v: f64) -> Time {
        Time::from_secs(v)
    }

    #[test]
    fn stats_of_two_core_schedule() {
        let sched = Schedule::new(vec![
            Placement::single(
                TaskId(0),
                CoreId(0),
                sec(0.0),
                sec(2.0),
                Speed::from_hz(1.0),
            ),
            Placement::single(
                TaskId(1),
                CoreId(1),
                sec(1.0),
                sec(4.0),
                Speed::from_hz(3.0),
            ),
        ]);
        let s = schedule_stats(&sched).unwrap();
        assert_eq!(s.start, sec(0.0));
        assert_eq!(s.end, sec(4.0));
        assert_eq!(s.cores_used, 2);
        assert!((s.total_core_busy.as_secs() - 5.0).abs() < 1e-12);
        assert!((s.memory_busy.as_secs() - 4.0).abs() < 1e-12);
        assert!((s.core_utilization - 5.0 / 8.0).abs() < 1e-12);
        assert!((s.memory_utilization - 1.0).abs() < 1e-12);
        // Work: 2 + 9 = 11 over 5 s busy → mean 2.2 Hz.
        assert!((s.mean_speed.as_hz() - 2.2).abs() < 1e-12);
        assert_eq!(s.peak_speed, Speed::from_hz(3.0));
    }

    #[test]
    fn empty_schedule_has_no_stats() {
        assert!(schedule_stats(&Schedule::empty()).is_none());
    }

    #[test]
    fn gaps_reduce_memory_utilization() {
        let sched = Schedule::new(vec![
            Placement::single(
                TaskId(0),
                CoreId(0),
                sec(0.0),
                sec(1.0),
                Speed::from_hz(1.0),
            ),
            Placement::single(
                TaskId(1),
                CoreId(0),
                sec(3.0),
                sec(4.0),
                Speed::from_hz(1.0),
            ),
        ]);
        let s = schedule_stats(&sched).unwrap();
        assert!((s.memory_utilization - 0.5).abs() < 1e-12);
        assert_eq!(s.cores_used, 1);
    }
}
