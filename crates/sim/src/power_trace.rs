//! Instantaneous power traces: `P(t)` sampled over a schedule's span.
//!
//! Produces the data behind "power over time" plots: at each sample
//! instant, the total draw is the sum of every core's state power (busy →
//! `α + β·s^λ`, idle-awake → `α`, asleep/off → 0) plus the memory's
//! (`α_m` while awake). Gap sleep decisions follow the same
//! [`crate::SleepPolicy`] logic as the energy meters, so integrating the
//! trace recovers the metered energy (up to transition overheads, which
//! are impulses, and sampling resolution).

use sdem_power::Platform;
use sdem_types::{Schedule, Time, Watts, Workspace};

use crate::timeline::SleepTimeline;
use crate::SimOptions;

/// One sample of the system power trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSample {
    /// Sample instant.
    pub time: Time,
    /// Summed core draw at that instant.
    pub cores: Watts,
    /// Memory draw at that instant.
    pub memory: Watts,
}

impl PowerSample {
    /// Total system draw.
    pub fn total(&self) -> Watts {
        self.cores + self.memory
    }
}

/// Samples the schedule's instantaneous power at `samples` uniformly
/// spaced instants across its span (or the explicit horizon in `options`).
///
/// Returns an empty vector for schedules with no executed segments.
///
/// # Panics
///
/// Panics if `samples == 0`.
///
/// # Examples
///
/// ```
/// use sdem_sim::{power_trace, SimOptions};
/// use sdem_power::Platform;
/// use sdem_types::{Schedule, Placement, TaskId, CoreId, Time, Speed};
///
/// let sched = Schedule::new(vec![Placement::single(
///     TaskId(0), CoreId(0), Time::ZERO, Time::from_millis(10.0), Speed::from_mhz(1000.0),
/// )]);
/// let trace = power_trace(&sched, &Platform::paper_defaults(), SimOptions::default(), 50);
/// assert_eq!(trace.len(), 50);
/// // While busy: memory 4 W + core (0.31 + 0.253) W.
/// assert!((trace[10].total().value() - 4.563).abs() < 1e-3);
/// ```
pub fn power_trace(
    schedule: &Schedule,
    platform: &Platform,
    options: SimOptions,
    samples: usize,
) -> Vec<PowerSample> {
    power_trace_in(schedule, platform, options, samples, &mut Workspace::new())
}

/// In-place [`power_trace`]: timeline scratch comes from `ws`. The
/// returned sample vector itself still allocates (it is the output).
///
/// # Panics
///
/// Panics if `samples == 0`.
pub fn power_trace_in(
    schedule: &Schedule,
    platform: &Platform,
    options: SimOptions,
    samples: usize,
    ws: &mut Workspace,
) -> Vec<PowerSample> {
    assert!(samples > 0, "need at least one sample");
    let (t0, t1) = match options.horizon.or_else(|| schedule.span()) {
        Some(span) => span,
        None => return Vec::new(),
    };
    let span = (t1 - t0).as_secs();
    if span <= 0.0 {
        return Vec::new();
    }
    let core_model = platform.core();
    let memory = platform.memory();

    // Per-core busy runs (for speed lookup) + shared gap sleep decisions.
    struct CoreLine {
        busy: Vec<(Time, Time, f64)>, // (start, end, speed Hz)
        sleep: SleepTimeline,
    }
    let mut core_ids = ws.take_core_ids();
    schedule.cores_into(&mut core_ids);
    let mut lines: Vec<CoreLine> = Vec::with_capacity(core_ids.len());
    for &core in core_ids.iter() {
        let mut busy: Vec<(Time, Time, f64)> = schedule
            .placements()
            .iter()
            .filter(|p| p.core() == core)
            .flat_map(|p| {
                p.segments()
                    .iter()
                    .map(|s| (s.start(), s.end(), s.speed().as_hz()))
            })
            .collect();
        busy.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut core_busy = ws.take_intervals();
        schedule.core_busy_intervals_into(core, &mut core_busy);
        let sleep = SleepTimeline::new_in(
            core_busy,
            options.core_policy,
            core_model.break_even(),
            options.horizon,
            ws,
        );
        lines.push(CoreLine { busy, sleep });
    }

    let mut mem_busy = ws.take_intervals();
    schedule.memory_busy_intervals_into(&mut mem_busy);
    let mem = SleepTimeline::new_in(
        mem_busy,
        options.memory_policy,
        memory.break_even(),
        options.horizon,
        ws,
    );

    // Outside the busy span a component is off — unless a horizon powers the
    // whole window and no priced gap covers the instant.
    let off_span_awake = |sleep: &SleepTimeline, t: Time| {
        let (s0, s1) = sleep.busy_span_or(t0);
        options.horizon.is_some() && !sleep.in_gap(t) && (t < s0 || t >= s1)
    };

    let trace = (0..samples)
        .map(|k| {
            let t = t0 + Time::from_secs(span * (k as f64 + 0.5) / samples as f64);
            let mut cores = Watts::ZERO;
            for line in &lines {
                if let Some(&(_, _, s)) = line.busy.iter().find(|&&(a, b, _)| t >= a && t < b) {
                    cores += core_model.power(sdem_types::Speed::from_hz(s));
                } else if line.sleep.awake_idle_at(t) || off_span_awake(&line.sleep, t) {
                    cores += core_model.alpha();
                }
            }
            let memory_draw =
                if mem.is_busy_at(t) || mem.awake_idle_at(t) || off_span_awake(&mem, t) {
                    memory.alpha_m()
                } else {
                    Watts::ZERO
                };
            PowerSample {
                time: t,
                cores,
                memory: memory_draw,
            }
        })
        .collect();

    ws.recycle_core_ids(core_ids);
    mem.recycle(ws);
    for line in lines {
        line.sleep.recycle(ws);
    }
    trace
}

/// Renders a trace as CSV (`time_s,cores_w,memory_w,total_w`).
pub fn trace_to_csv(trace: &[PowerSample]) -> String {
    let mut out = String::from("time_s,cores_w,memory_w,total_w\n");
    for s in trace {
        out.push_str(&format!(
            "{:.9},{:.6},{:.6},{:.6}\n",
            s.time.as_secs(),
            s.cores.value(),
            s.memory.value(),
            s.total().value(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate_with_options, SleepPolicy};
    use sdem_power::{CorePower, MemoryPower};
    use sdem_types::{CoreId, Cycles, Placement, Speed, Task, TaskId, TaskSet};

    fn sec(v: f64) -> Time {
        Time::from_secs(v)
    }

    fn unit_platform() -> Platform {
        Platform::new(
            CorePower::simple(1.0, 1.0, 3.0),
            MemoryPower::new(Watts::new(2.0)),
        )
    }

    #[test]
    fn busy_sample_includes_dynamic_power() {
        let sched = Schedule::new(vec![Placement::single(
            TaskId(0),
            CoreId(0),
            sec(0.0),
            sec(2.0),
            Speed::from_hz(2.0),
        )]);
        let trace = power_trace(&sched, &unit_platform(), SimOptions::default(), 4);
        // Everywhere busy: core 1 + 8, memory 2 → 11 W.
        for s in &trace {
            assert!((s.total().value() - 11.0).abs() < 1e-9, "{s:?}");
        }
    }

    #[test]
    fn gap_power_follows_policy() {
        let sched = Schedule::new(vec![
            Placement::single(
                TaskId(0),
                CoreId(0),
                sec(0.0),
                sec(1.0),
                Speed::from_hz(1.0),
            ),
            Placement::single(
                TaskId(1),
                CoreId(0),
                sec(3.0),
                sec(4.0),
                Speed::from_hz(1.0),
            ),
        ]);
        let p = unit_platform();
        // Profitable (ξ = 0): gap fully asleep → 0 W mid-gap.
        let t = power_trace(&sched, &p, SimOptions::default(), 16);
        let mid = &t[8]; // ~2.1 s, inside the gap
        assert_eq!(mid.total(), Watts::ZERO, "{mid:?}");
        // NeverSleep: idle core α = 1, memory 2 → 3 W mid-gap.
        let t = power_trace(&sched, &p, SimOptions::uniform(SleepPolicy::NeverSleep), 16);
        assert!((t[8].total().value() - 3.0).abs() < 1e-9, "{:?}", t[8]);
    }

    #[test]
    fn integrated_trace_approximates_metered_energy() {
        let tasks = TaskSet::new(vec![
            Task::new(0, sec(0.0), sec(2.0), Cycles::new(1.0)),
            Task::new(1, sec(0.0), sec(10.0), Cycles::new(2.0)),
        ])
        .unwrap();
        let sched = Schedule::new(vec![
            Placement::single(
                TaskId(0),
                CoreId(0),
                sec(0.0),
                sec(1.0),
                Speed::from_hz(1.0),
            ),
            Placement::single(
                TaskId(1),
                CoreId(1),
                sec(5.0),
                sec(7.0),
                Speed::from_hz(1.0),
            ),
        ]);
        let p = unit_platform();
        let opts = SimOptions::uniform(SleepPolicy::NeverSleep);
        let metered = simulate_with_options(&sched, &tasks, &p, opts)
            .unwrap()
            .total()
            .value();
        let samples = 20_000;
        let trace = power_trace(&sched, &p, opts, samples);
        let dt = 7.0 / samples as f64; // span [0, 7]
        let integrated: f64 = trace.iter().map(|s| s.total().value() * dt).sum();
        assert!(
            (integrated - metered).abs() < 1e-2 * metered,
            "integrated {integrated} vs metered {metered}"
        );
    }

    #[test]
    fn csv_has_header_and_rows() {
        let sched = Schedule::new(vec![Placement::single(
            TaskId(0),
            CoreId(0),
            sec(0.0),
            sec(1.0),
            Speed::from_hz(1.0),
        )]);
        let trace = power_trace(&sched, &unit_platform(), SimOptions::default(), 3);
        let csv = trace_to_csv(&trace);
        assert!(csv.starts_with("time_s,cores_w,memory_w,total_w\n"));
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn empty_schedule_yields_empty_trace() {
        let t = power_trace(
            &Schedule::empty(),
            &unit_platform(),
            SimOptions::default(),
            5,
        );
        assert!(t.is_empty());
    }
}
