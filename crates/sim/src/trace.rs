//! ASCII timeline rendering of schedules.
//!
//! Renders a schedule as one row per core plus a memory row: each column
//! is a time bucket, busy buckets show a speed digit (`1`–`9`, scaled to
//! the fastest speed in the schedule), idle-within-span buckets show `.`,
//! and off time is blank. The memory row shows `#` while any core is busy.
//!
//! Intended for examples, debugging and golden tests — a schedule you can
//! *read* is a schedule you can review.

use sdem_types::{Schedule, Time};

/// Renders `schedule` over its own span into `width` time buckets.
///
/// Returns an empty string for schedules with no executed segments.
///
/// # Panics
///
/// Panics if `width == 0`.
///
/// # Examples
///
/// ```
/// use sdem_sim::render_gantt;
/// use sdem_types::{Schedule, Placement, TaskId, CoreId, Time, Speed};
///
/// let sched = Schedule::new(vec![
///     Placement::single(TaskId(0), CoreId(0), Time::ZERO, Time::from_millis(10.0),
///                       Speed::from_mhz(800.0)),
///     Placement::single(TaskId(1), CoreId(1), Time::from_millis(15.0),
///                       Time::from_millis(20.0), Speed::from_mhz(1600.0)),
/// ]);
/// let art = render_gantt(&sched, 20);
/// assert!(art.contains("core0"));
/// assert!(art.contains("memory"));
/// ```
pub fn render_gantt(schedule: &Schedule, width: usize) -> String {
    assert!(width > 0, "width must be positive");
    let Some((t0, t1)) = schedule.span() else {
        return String::new();
    };
    let span = (t1 - t0).as_secs();
    if span <= 0.0 {
        return String::new();
    }
    let max_speed = schedule
        .placements()
        .iter()
        .flat_map(|p| p.segments())
        .map(|s| s.speed().as_hz())
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);

    let bucket_time =
        |k: usize| -> Time { t0 + Time::from_secs(span * (k as f64 + 0.5) / width as f64) };

    let mut out = String::new();
    out.push_str(&format!(
        "span [{:.3}, {:.3}] s, {} buckets of {:.4} s, digits = speed/9ths of {:.3e} Hz\n",
        t0.as_secs(),
        t1.as_secs(),
        width,
        span / width as f64,
        max_speed,
    ));

    for core in schedule.cores() {
        let busy = schedule.core_busy_intervals(core);
        let (Some(first), Some(last)) = (busy.first(), busy.last()) else {
            continue;
        };
        let mut row = format!("{:>7} |", core.to_string());
        for k in 0..width {
            let t = bucket_time(k);
            let speed = schedule
                .placements()
                .iter()
                .filter(|p| p.core() == core)
                .flat_map(|p| p.segments())
                .find(|s| t >= s.start() && t < s.end())
                .map(|s| s.speed().as_hz());
            row.push(match speed {
                Some(s) => {
                    let digit = ((s / max_speed) * 9.0).ceil().clamp(1.0, 9.0) as u32;
                    char::from_digit(digit, 10).expect("1..=9")
                }
                None if t >= first.0 && t <= last.1 => '.',
                None => ' ',
            });
        }
        row.push('\n');
        out.push_str(&row);
    }

    let mem_busy = schedule.memory_busy_intervals();
    let mut row = format!("{:>7} |", "memory");
    for k in 0..width {
        let t = bucket_time(k);
        let busy = mem_busy.iter().any(|&(a, b)| t >= a && t < b);
        row.push(if busy { '#' } else { '.' });
    }
    row.push('\n');
    out.push_str(&row);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdem_types::{CoreId, Placement, Speed, TaskId};

    fn sec(v: f64) -> Time {
        Time::from_secs(v)
    }

    #[test]
    fn renders_rows_for_each_core_and_memory() {
        let sched = Schedule::new(vec![
            Placement::single(
                TaskId(0),
                CoreId(0),
                sec(0.0),
                sec(1.0),
                Speed::from_hz(1.0),
            ),
            Placement::single(
                TaskId(1),
                CoreId(1),
                sec(2.0),
                sec(4.0),
                Speed::from_hz(2.0),
            ),
        ]);
        let art = render_gantt(&sched, 8);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 4); // header + 2 cores + memory
        assert!(lines[1].starts_with("  core0 |"));
        assert!(lines[3].starts_with(" memory |"));
        // Core 0 runs at half the max speed → digit 5 wherever busy.
        assert!(lines[1].contains('5'), "{art}");
        // Core 1 at max speed → digit 9.
        assert!(lines[2].contains('9'), "{art}");
        // Memory idle in the middle gap.
        assert!(lines[3].contains('.'), "{art}");
        assert!(lines[3].contains('#'), "{art}");
    }

    #[test]
    fn empty_schedule_renders_empty() {
        assert_eq!(render_gantt(&Schedule::empty(), 10), "");
    }

    #[test]
    fn off_time_outside_core_span_is_blank() {
        let sched = Schedule::new(vec![
            Placement::single(
                TaskId(0),
                CoreId(0),
                sec(0.0),
                sec(1.0),
                Speed::from_hz(1.0),
            ),
            Placement::single(
                TaskId(1),
                CoreId(1),
                sec(3.0),
                sec(4.0),
                Speed::from_hz(1.0),
            ),
        ]);
        let art = render_gantt(&sched, 16);
        let core0 = art.lines().nth(1).unwrap();
        // Core 0's trailing buckets are off (blank), not idle dots.
        assert!(core0.trim_end().len() < core0.len() || core0.ends_with(' '));
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        let _ = render_gantt(&Schedule::empty(), 0);
    }
}
