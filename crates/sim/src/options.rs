//! Simulation knobs: sleep policies and validation options.

use sdem_types::{Joules, Time};

/// What a component (core or memory) does during an idle gap of length `g`.
///
/// The break-even time `ξ` is the gap length whose awake-idle energy equals
/// one sleep/wake round trip, so:
///
/// * [`SleepPolicy::NeverSleep`] idles awake: energy `α·g` (the original
///   MBKP baseline's memory behaviour);
/// * [`SleepPolicy::AlwaysSleep`] sleeps every gap, paying the round trip
///   `α·ξ` even when `g < ξ` (the naive MBKPS memory behaviour);
/// * [`SleepPolicy::WhenProfitable`] sleeps exactly when `g ≥ ξ`
///   (what the SDEM schemes assume).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SleepPolicy {
    /// Stay awake through every idle gap.
    NeverSleep,
    /// Sleep through every idle gap, profitable or not.
    AlwaysSleep,
    /// Sleep exactly the gaps of length at least the break-even time.
    #[default]
    WhenProfitable,
}

impl SleepPolicy {
    /// Decides whether a gap of length `gap` is slept under this policy,
    /// given the component's break-even time.
    pub fn sleeps(self, gap: Time, break_even: Time) -> bool {
        match self {
            Self::NeverSleep => false,
            Self::AlwaysSleep => true,
            Self::WhenProfitable => gap >= break_even,
        }
    }

    /// Prices a gap: `(idle_energy, transition_energy, slept)` given the
    /// component's static power×gap product and round-trip cost.
    pub(crate) fn price_gap(
        self,
        gap: Time,
        break_even: Time,
        awake_energy: Joules,
        round_trip: Joules,
    ) -> (Joules, Joules, bool) {
        if self.sleeps(gap, break_even) {
            (Joules::ZERO, round_trip, true)
        } else {
            (awake_energy, Joules::ZERO, false)
        }
    }
}

/// Options for [`crate::simulate_with_options`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOptions {
    /// Idle-gap policy for the shared memory.
    pub memory_policy: SleepPolicy,
    /// Idle-gap policy for each core (only relevant when `α ≠ 0`).
    pub core_policy: SleepPolicy,
    /// Validate the schedule (timing + max-speed) before metering.
    /// Disable only for hot benchmarking loops on known-good schedules.
    pub validate: bool,
    /// Evaluation horizon. `None` (default) is the *gap convention*: each
    /// component is on only between its own first and last busy instant.
    /// `Some((t0, t1))` is the *horizon convention* of the paper's §7
    /// analysis: every used core and the memory are powered across
    /// `[t0, t1]`, so leading and trailing idle periods become gaps subject
    /// to the sleep policy.
    pub horizon: Option<(sdem_types::Time, sdem_types::Time)>,
}

impl SimOptions {
    /// Uses `policy` for both memory and cores, with validation on and the
    /// gap convention.
    pub fn uniform(policy: SleepPolicy) -> Self {
        Self {
            memory_policy: policy,
            core_policy: policy,
            validate: true,
            horizon: None,
        }
    }

    /// Returns a copy evaluating under the horizon convention over
    /// `[t0, t1]`.
    #[must_use]
    pub fn with_horizon(mut self, t0: sdem_types::Time, t1: sdem_types::Time) -> Self {
        self.horizon = Some((t0, t1));
        self
    }
}

impl Default for SimOptions {
    fn default() -> Self {
        Self::uniform(SleepPolicy::WhenProfitable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_decisions() {
        let xi = Time::from_millis(10.0);
        let short = Time::from_millis(5.0);
        let long = Time::from_millis(20.0);
        assert!(!SleepPolicy::NeverSleep.sleeps(long, xi));
        assert!(SleepPolicy::AlwaysSleep.sleeps(short, xi));
        assert!(SleepPolicy::WhenProfitable.sleeps(long, xi));
        assert!(!SleepPolicy::WhenProfitable.sleeps(short, xi));
        assert!(SleepPolicy::WhenProfitable.sleeps(xi, xi));
    }

    #[test]
    fn zero_break_even_always_profitable() {
        assert!(SleepPolicy::WhenProfitable.sleeps(Time::ZERO, Time::ZERO));
    }

    #[test]
    fn price_gap_splits_energy() {
        let xi = Time::from_millis(10.0);
        let awake = Joules::new(0.4);
        let rt = Joules::new(0.04);
        let (idle, trans, slept) =
            SleepPolicy::WhenProfitable.price_gap(Time::from_millis(100.0), xi, awake, rt);
        assert!(slept);
        assert_eq!(idle, Joules::ZERO);
        assert_eq!(trans, rt);
        let (idle, trans, slept) =
            SleepPolicy::NeverSleep.price_gap(Time::from_millis(100.0), xi, awake, rt);
        assert!(!slept);
        assert_eq!(idle, awake);
        assert_eq!(trans, Joules::ZERO);
    }

    #[test]
    fn default_options_are_profitable_and_validating() {
        let o = SimOptions::default();
        assert_eq!(o.memory_policy, SleepPolicy::WhenProfitable);
        assert_eq!(o.core_policy, SleepPolicy::WhenProfitable);
        assert!(o.validate);
    }
}
