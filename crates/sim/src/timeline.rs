//! Shared per-component sleep timeline.
//!
//! Decorates the `sdem-types` [`Timeline`] kernel with the per-gap sleep
//! decision of a [`SleepPolicy`]. Both simulators (the interval meter and
//! the event-driven engine) and the power-trace renderer derive their gap
//! lists from this one type, so "which gaps exist and which are slept" has
//! a single implementation in the workspace.

use sdem_types::{IntervalSet, Time, Timeline, Workspace};

use crate::SleepPolicy;

/// A component's busy timeline plus the policy's decision for every gap.
pub(crate) struct SleepTimeline {
    timeline: Timeline,
    /// Chronological gap spans, parallel to `slept`.
    gap_spans: Vec<(Time, Time)>,
    /// Per-gap sleep decision.
    slept: Vec<bool>,
}

impl SleepTimeline {
    /// Prices every gap of `busy` (under the `horizon` powered-span
    /// convention) with `policy` against break-even time `xi`.
    pub(crate) fn new(
        busy: IntervalSet,
        policy: SleepPolicy,
        xi: Time,
        horizon: Option<(Time, Time)>,
    ) -> Self {
        Self::new_in(busy, policy, xi, horizon, &mut Workspace::new())
    }

    /// In-place [`Self::new`]: the gap buffers come from `ws`. Return all
    /// buffers (including the consumed `busy` set) with
    /// [`Self::recycle`].
    pub(crate) fn new_in(
        busy: IntervalSet,
        policy: SleepPolicy,
        xi: Time,
        horizon: Option<(Time, Time)>,
        ws: &mut Workspace,
    ) -> Self {
        let timeline = Timeline::new(busy, horizon);
        let mut gaps = ws.take_intervals();
        timeline.gaps_into(&mut gaps);
        let mut gap_spans = ws.take_spans();
        let mut slept = ws.take_bools();
        for &(a, b) in gaps.iter() {
            gap_spans.push((a, b));
            slept.push(policy.sleeps(b - a, xi));
        }
        ws.recycle_intervals(gaps);
        Self {
            timeline,
            gap_spans,
            slept,
        }
    }

    /// Returns every owned buffer to the workspace.
    pub(crate) fn recycle(self, ws: &mut Workspace) {
        ws.recycle_spans(self.gap_spans);
        ws.recycle_bools(self.slept);
        ws.recycle_intervals(self.timeline.into_busy());
    }

    /// The coalesced busy intervals.
    pub(crate) fn busy(&self) -> &IntervalSet {
        self.timeline.busy()
    }

    /// The busy set's own span, or `(default, default)` when never busy.
    pub(crate) fn busy_span_or(&self, default: Time) -> (Time, Time) {
        self.timeline.busy().span().unwrap_or((default, default))
    }

    /// `true` while executing work.
    pub(crate) fn is_busy_at(&self, t: Time) -> bool {
        self.timeline.is_busy_at(t)
    }

    /// `true` inside a gap the policy keeps awake.
    pub(crate) fn awake_idle_at(&self, t: Time) -> bool {
        self.gaps().any(|(a, b, slept)| t >= a && t < b && !slept)
    }

    /// `true` inside a gap the policy sleeps through.
    pub(crate) fn asleep_at(&self, t: Time) -> bool {
        self.gaps().any(|(a, b, slept)| t >= a && t < b && slept)
    }

    /// `true` inside any priced gap.
    pub(crate) fn in_gap(&self, t: Time) -> bool {
        self.gaps().any(|(a, b, _)| t >= a && t < b)
    }

    /// Number of slept gaps (one round-trip charge each).
    pub(crate) fn sleep_episodes(&self) -> usize {
        self.slept.iter().filter(|&&s| s).count()
    }

    /// Chronological `(gap_start, gap_end, slept)` decisions.
    fn gaps(&self) -> impl Iterator<Item = (Time, Time, bool)> + '_ {
        self.gap_spans
            .iter()
            .zip(self.slept.iter())
            .map(|(&(a, b), &s)| (a, b, s))
    }
}
