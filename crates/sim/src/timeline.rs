//! Shared per-component sleep timeline.
//!
//! Decorates the `sdem-types` [`Timeline`] kernel with the per-gap sleep
//! decision of a [`SleepPolicy`]. Both simulators (the interval meter and
//! the event-driven engine) and the power-trace renderer derive their gap
//! lists from this one type, so "which gaps exist and which are slept" has
//! a single implementation in the workspace.

use sdem_types::{IntervalSet, Time, Timeline};

use crate::SleepPolicy;

/// A component's busy timeline plus the policy's decision for every gap.
pub(crate) struct SleepTimeline {
    timeline: Timeline,
    /// Chronological `(gap_start, gap_end, slept)` decisions.
    gaps: Vec<(Time, Time, bool)>,
}

impl SleepTimeline {
    /// Prices every gap of `busy` (under the `horizon` powered-span
    /// convention) with `policy` against break-even time `xi`.
    pub(crate) fn new(
        busy: IntervalSet,
        policy: SleepPolicy,
        xi: Time,
        horizon: Option<(Time, Time)>,
    ) -> Self {
        let timeline = Timeline::new(busy, horizon);
        let gaps = timeline
            .gaps()
            .iter()
            .map(|&(a, b)| (a, b, policy.sleeps(b - a, xi)))
            .collect();
        Self { timeline, gaps }
    }

    /// The coalesced busy intervals.
    pub(crate) fn busy(&self) -> &IntervalSet {
        self.timeline.busy()
    }

    /// The busy set's own span, or `(default, default)` when never busy.
    pub(crate) fn busy_span_or(&self, default: Time) -> (Time, Time) {
        self.timeline.busy().span().unwrap_or((default, default))
    }

    /// `true` while executing work.
    pub(crate) fn is_busy_at(&self, t: Time) -> bool {
        self.timeline.is_busy_at(t)
    }

    /// `true` inside a gap the policy keeps awake.
    pub(crate) fn awake_idle_at(&self, t: Time) -> bool {
        self.gaps
            .iter()
            .any(|&(a, b, slept)| t >= a && t < b && !slept)
    }

    /// `true` inside a gap the policy sleeps through.
    pub(crate) fn asleep_at(&self, t: Time) -> bool {
        self.gaps
            .iter()
            .any(|&(a, b, slept)| t >= a && t < b && slept)
    }

    /// `true` inside any priced gap.
    pub(crate) fn in_gap(&self, t: Time) -> bool {
        self.gaps.iter().any(|&(a, b, _)| t >= a && t < b)
    }

    /// Number of slept gaps (one round-trip charge each).
    pub(crate) fn sleep_episodes(&self) -> usize {
        self.gaps.iter().filter(|g| g.2).count()
    }
}
