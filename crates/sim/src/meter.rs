//! Interval-sweep energy meter.
//!
//! Prices a schedule by closed forms: each busy segment contributes its
//! dynamic + static energy directly, and each idle gap is priced by the
//! applicable [`SleepPolicy`]. This is the fast path used by the experiment
//! harness; the event-driven engine in [`crate::engine`] recomputes the same
//! quantities by time integration and the two are cross-checked in tests.

use sdem_power::Platform;
use sdem_types::{IntervalSet, Joules, Schedule, ScheduleError, TaskSet, Time, Workspace};

use crate::{EnergyReport, SimOptions, SleepPolicy};

/// Simulates `schedule` on `platform` using `policy` for both the memory
/// and the cores, with validation enabled.
///
/// # Errors
///
/// Returns [`ScheduleError`] if the schedule violates timing constraints or
/// exceeds the platform's maximum speed.
///
/// # Examples
///
/// ```
/// use sdem_sim::{simulate, SleepPolicy};
/// use sdem_power::Platform;
/// use sdem_types::{Task, TaskSet, Schedule, Placement, TaskId, CoreId, Time, Speed, Cycles};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let platform = Platform::paper_defaults();
/// let tasks = TaskSet::new(vec![
///     Task::new(0, Time::ZERO, Time::from_millis(20.0), Cycles::new(1.6e7)),
/// ])?;
/// let schedule = Schedule::new(vec![Placement::single(
///     TaskId(0), CoreId(0), Time::ZERO, Time::from_millis(10.0), Speed::from_mhz(1600.0),
/// )]);
/// let report = simulate(&schedule, &tasks, &platform, SleepPolicy::WhenProfitable)?;
/// // 10 ms of 4 W memory leakage = 40 mJ.
/// assert!((report.memory_static.value() - 0.040).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn simulate(
    schedule: &Schedule,
    tasks: &TaskSet,
    platform: &Platform,
    policy: SleepPolicy,
) -> Result<EnergyReport, ScheduleError> {
    simulate_with_options(schedule, tasks, platform, SimOptions::uniform(policy))
}

/// Simulates with independent memory/core policies and optional validation.
///
/// # Errors
///
/// Returns [`ScheduleError`] when `options.validate` is set and the schedule
/// violates timing constraints or the platform's maximum speed.
pub fn simulate_with_options(
    schedule: &Schedule,
    tasks: &TaskSet,
    platform: &Platform,
    options: SimOptions,
) -> Result<EnergyReport, ScheduleError> {
    simulate_with_options_in(schedule, tasks, platform, options, &mut Workspace::new())
}

/// In-place [`simulate_with_options`]: the per-core busy/gap interval
/// buffers are drawn from `ws`, so a warmed workspace makes metering
/// allocation-free.
///
/// # Errors
///
/// Same as [`simulate_with_options`].
pub fn simulate_with_options_in(
    schedule: &Schedule,
    tasks: &TaskSet,
    platform: &Platform,
    options: SimOptions,
    ws: &mut Workspace,
) -> Result<EnergyReport, ScheduleError> {
    if options.validate {
        schedule.validate_with_limits_in(tasks, None, Some(platform.core().max_speed()), ws)?;
    }

    let core_model = platform.core();
    let memory = platform.memory();
    let mut report = EnergyReport::default();

    // Busy segments: dynamic energy at the commanded speed, static while
    // busy; memory access energy proportional to the executed cycles.
    let per_cycle = memory.access_energy_per_cycle();
    for placement in schedule.placements() {
        for seg in placement.segments() {
            report.core_dynamic += core_model.dynamic_power(seg.speed()) * seg.length();
            report.memory_dynamic += sdem_types::Joules::new(per_cycle * seg.work().value());
        }
    }

    // Per-core on-span accounting: static power while busy, gaps per
    // policy. Each core's busy set is materialized once into a pooled
    // list so the batched gap kernel and the memory busy-union below both
    // read it without re-deriving intervals from the placements.
    let mut cores = ws.take_core_ids();
    schedule.cores_into(&mut cores);
    let mut per_core = ws.take_interval_list();
    for &core in cores.iter() {
        let mut busy = ws.take_intervals();
        schedule.core_busy_intervals_into(core, &mut busy);
        per_core.push(busy);
    }
    ws.recycle_core_ids(cores);

    let mut flat = ws.take_spans();
    let mut offsets = ws.take_usizes();
    IntervalSet::gaps_many_into(&per_core, options.horizon, &mut flat, &mut offsets);
    for (k, busy) in per_core.iter().enumerate() {
        report.core_static += core_model.alpha() * busy.total();
        for &(a, b) in &flat[offsets[k]..offsets[k + 1]] {
            let gap = b - a;
            let (idle, trans, slept) = options.core_policy.price_gap(
                gap,
                core_model.break_even(),
                core_model.alpha() * gap,
                core_model.transition_energy(),
            );
            report.core_static += idle;
            report.core_transition += trans;
            if slept {
                report.core_sleeps += 1;
            }
        }
    }
    ws.recycle_spans(flat);
    ws.recycle_usizes(offsets);

    // Memory on-span accounting: the memory must be awake exactly when
    // some core is busy, i.e. over the union of the per-core busy sets
    // (bit-identical to re-collecting every segment; see
    // [`IntervalSet::union_many_into`]).
    let mut busy = ws.take_intervals();
    let mut gaps = ws.take_intervals();
    IntervalSet::union_many_into(&per_core, &mut busy);
    ws.recycle_interval_list(per_core);
    let mem_busy_time: Time = busy.total();
    report.memory_static += memory.awake_energy(mem_busy_time);
    report.memory_awake_time += mem_busy_time;
    busy.gaps_into(options.horizon, &mut gaps);
    for &(a, b) in gaps.iter() {
        let gap = b - a;
        let (idle, trans, slept) = options.memory_policy.price_gap(
            gap,
            memory.break_even(),
            memory.awake_energy(gap),
            memory.transition_energy(),
        );
        report.memory_static += idle;
        report.memory_transition += trans;
        if slept {
            report.memory_sleeps += 1;
            report.memory_sleep_time += gap;
        } else {
            report.memory_awake_time += gap;
        }
    }
    ws.recycle_intervals(busy);
    ws.recycle_intervals(gaps);

    // Guard against numerically negative artifacts.
    debug_assert!(report.total() >= Joules::ZERO);
    observe(&report);
    Ok(report)
}

/// Publishes a finished report to the `sdem-obs` registry: core-vs-memory
/// energy split (integer nanojoules, so concurrent sweeps accumulate an
/// order-independent total), sleep-episode tallies and memory
/// awake/sleep time. One relaxed load when observability is off.
fn observe(report: &EnergyReport) {
    use sdem_obs::registry::{self, Counter};
    if !registry::enabled() {
        return;
    }
    registry::incr(Counter::MeterRuns);
    registry::add_joules(Counter::CoreDynamicNj, report.core_dynamic.value());
    registry::add_joules(Counter::CoreStaticNj, report.core_static.value());
    registry::add_joules(Counter::CoreTransitionNj, report.core_transition.value());
    registry::add_joules(Counter::MemoryStaticNj, report.memory_static.value());
    registry::add_joules(Counter::MemoryDynamicNj, report.memory_dynamic.value());
    registry::add_joules(
        Counter::MemoryTransitionNj,
        report.memory_transition.value(),
    );
    registry::add_seconds(Counter::MemoryAwakeNs, report.memory_awake_time.as_secs());
    registry::add_seconds(Counter::MemorySleepNs, report.memory_sleep_time.as_secs());
    registry::add(Counter::MemorySleeps, report.memory_sleeps as u64);
    registry::add(Counter::CoreSleeps, report.core_sleeps as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdem_power::{CorePower, MemoryPower};
    use sdem_types::{CoreId, Cycles, Placement, Speed, Task, TaskId, Watts};

    fn ms(v: f64) -> Time {
        Time::from_millis(v)
    }

    /// α = 1 W, β = 1 W/Hz³ (λ = 3), memory 2 W — clean numbers in seconds.
    fn unit_platform() -> Platform {
        Platform::new(
            CorePower::simple(1.0, 1.0, 3.0),
            MemoryPower::new(Watts::new(2.0)),
        )
    }

    fn sec(v: f64) -> Time {
        Time::from_secs(v)
    }

    #[test]
    fn single_task_energy_matches_closed_form() {
        let p = unit_platform();
        let tasks = TaskSet::new(vec![Task::new(0, sec(0.0), sec(4.0), Cycles::new(4.0))]).unwrap();
        // Run 4 cycles over 2 s at 2 Hz: dynamic = 2³·2 = 16 J, static = 2 J,
        // memory = 2·2 = 4 J. Trailing time is outside the on-span: free.
        let sched = Schedule::new(vec![Placement::single(
            TaskId(0),
            CoreId(0),
            sec(0.0),
            sec(2.0),
            Speed::from_hz(2.0),
        )]);
        let r = simulate(&sched, &tasks, &p, SleepPolicy::WhenProfitable).unwrap();
        assert!((r.core_dynamic.value() - 16.0).abs() < 1e-9);
        assert!((r.core_static.value() - 2.0).abs() < 1e-9);
        assert!((r.memory_static.value() - 4.0).abs() < 1e-9);
        assert_eq!(r.memory_sleeps, 0);
        assert!((r.total().value() - 22.0).abs() < 1e-9);
    }

    fn two_block_schedule() -> (TaskSet, Schedule) {
        let tasks = TaskSet::new(vec![
            Task::new(0, sec(0.0), sec(2.0), Cycles::new(1.0)),
            Task::new(1, sec(0.0), sec(10.0), Cycles::new(1.0)),
        ])
        .unwrap();
        // Two unit-length busy blocks separated by a 4 s common idle gap.
        let sched = Schedule::new(vec![
            Placement::single(
                TaskId(0),
                CoreId(0),
                sec(0.0),
                sec(1.0),
                Speed::from_hz(1.0),
            ),
            Placement::single(
                TaskId(1),
                CoreId(0),
                sec(5.0),
                sec(6.0),
                Speed::from_hz(1.0),
            ),
        ]);
        (tasks, sched)
    }

    #[test]
    fn memory_gap_policies() {
        let p = unit_platform();
        let (tasks, sched) = two_block_schedule();

        // NeverSleep: memory awake 6 s ⇒ 12 J. Core idles awake 4 s ⇒ +4 J.
        let r = simulate(&sched, &tasks, &p, SleepPolicy::NeverSleep).unwrap();
        assert!((r.memory_static.value() - 12.0).abs() < 1e-9);
        assert!((r.core_static.value() - 6.0).abs() < 1e-9);
        assert!((r.memory_awake_time.as_secs() - 6.0).abs() < 1e-9);

        // WhenProfitable with ξ_m = 0: sleep the gap for free.
        let r = simulate(&sched, &tasks, &p, SleepPolicy::WhenProfitable).unwrap();
        assert!((r.memory_static.value() - 4.0).abs() < 1e-9);
        assert_eq!(r.memory_sleeps, 1);
        assert!((r.memory_sleep_time.as_secs() - 4.0).abs() < 1e-9);
        // Core also sleeps its gap (ξ = 0): static only while busy (2 s).
        assert!((r.core_static.value() - 2.0).abs() < 1e-9);
        assert_eq!(r.core_sleeps, 1);
    }

    #[test]
    fn break_even_threshold_controls_profitable_sleep() {
        let core = CorePower::simple(1.0, 1.0, 3.0);
        let (tasks, sched) = two_block_schedule();
        // Gap is 4 s. With ξ_m = 6 s sleeping is unprofitable.
        let p = Platform::new(
            core,
            MemoryPower::new(Watts::new(2.0)).with_break_even(sec(6.0)),
        );
        let r = simulate(&sched, &tasks, &p, SleepPolicy::WhenProfitable).unwrap();
        assert_eq!(r.memory_sleeps, 0);
        assert!((r.memory_static.value() - 12.0).abs() < 1e-9);
        assert_eq!(r.memory_transition, Joules::ZERO);

        // AlwaysSleep pays the 12 J round trip even though idling costs 8 J.
        let r = simulate(&sched, &tasks, &p, SleepPolicy::AlwaysSleep).unwrap();
        assert_eq!(r.memory_sleeps, 1);
        assert!((r.memory_transition.value() - 12.0).abs() < 1e-9);
        assert!((r.memory_static.value() - 4.0).abs() < 1e-9);

        // With ξ_m = 3 s the profitable policy sleeps and pays 6 J.
        let p = Platform::new(
            core,
            MemoryPower::new(Watts::new(2.0)).with_break_even(sec(3.0)),
        );
        let r = simulate(&sched, &tasks, &p, SleepPolicy::WhenProfitable).unwrap();
        assert!((r.memory_transition.value() - 6.0).abs() < 1e-9);
        assert!((r.memory_static.value() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn core_break_even_accounting() {
        let core = CorePower::simple(1.0, 1.0, 3.0).with_break_even(sec(1.0));
        let p = Platform::new(core, MemoryPower::new(Watts::new(2.0)));
        let (tasks, sched) = two_block_schedule();
        let r = simulate(&sched, &tasks, &p, SleepPolicy::WhenProfitable).unwrap();
        // Gap 4 s ≥ ξ = 1 s: core sleeps, paying α·ξ = 1 J.
        assert_eq!(r.core_sleeps, 1);
        assert!((r.core_transition.value() - 1.0).abs() < 1e-9);
        assert!((r.core_static.value() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn validation_can_be_disabled() {
        let p = unit_platform();
        let (tasks, _) = two_block_schedule();
        // Bogus schedule (misses task 1) passes with validate = false.
        let bad = Schedule::new(vec![Placement::single(
            TaskId(0),
            CoreId(0),
            sec(0.0),
            sec(1.0),
            Speed::from_hz(1.0),
        )]);
        assert!(simulate(&bad, &tasks, &p, SleepPolicy::NeverSleep).is_err());
        let mut opts = SimOptions::uniform(SleepPolicy::NeverSleep);
        opts.validate = false;
        assert!(simulate_with_options(&bad, &tasks, &p, opts).is_ok());
    }

    #[test]
    fn multi_core_overlap_memory_counts_once() {
        let p = unit_platform();
        let tasks = TaskSet::new(vec![
            Task::new(0, sec(0.0), sec(4.0), Cycles::new(2.0)),
            Task::new(1, sec(0.0), sec(4.0), Cycles::new(2.0)),
        ])
        .unwrap();
        let sched = Schedule::new(vec![
            Placement::single(
                TaskId(0),
                CoreId(0),
                sec(0.0),
                sec(2.0),
                Speed::from_hz(1.0),
            ),
            Placement::single(
                TaskId(1),
                CoreId(1),
                sec(1.0),
                sec(3.0),
                Speed::from_hz(1.0),
            ),
        ]);
        let r = simulate(&sched, &tasks, &p, SleepPolicy::WhenProfitable).unwrap();
        // Memory awake over the union [0, 3]: 6 J, not 8 J.
        assert!((r.memory_static.value() - 6.0).abs() < 1e-9);
        // Each core static only over its own 2 s.
        assert!((r.core_static.value() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn speed_above_platform_max_is_rejected() {
        let p = Platform::paper_defaults();
        let tasks = TaskSet::new(vec![Task::new(0, ms(0.0), ms(1.0), Cycles::new(2.0e6))]).unwrap();
        let sched = Schedule::new(vec![Placement::single(
            TaskId(0),
            CoreId(0),
            ms(0.0),
            ms(1.0),
            Speed::from_mhz(2000.0),
        )]);
        assert_eq!(
            simulate(&sched, &tasks, &p, SleepPolicy::NeverSleep),
            Err(ScheduleError::SpeedAboveMax(TaskId(0)))
        );
    }

    #[test]
    fn independent_policies_for_memory_and_cores() {
        let core = CorePower::simple(1.0, 1.0, 3.0);
        let p = Platform::new(core, MemoryPower::new(Watts::new(2.0)));
        let (tasks, sched) = two_block_schedule();
        let opts = SimOptions {
            memory_policy: SleepPolicy::NeverSleep,
            core_policy: SleepPolicy::WhenProfitable,
            ..SimOptions::default()
        };
        let r = simulate_with_options(&sched, &tasks, &p, opts).unwrap();
        assert_eq!(r.memory_sleeps, 0);
        assert_eq!(r.core_sleeps, 1);
    }
}
